package streamhist_test

import (
	"testing"

	"streamhist"
	"streamhist/internal/bins"
	"streamhist/internal/datagen"
	"streamhist/internal/hist"
)

func TestScanFacade(t *testing.T) {
	vals := datagen.Take(datagen.NewZipf(1, -500, 3000, 0.8, true), 40_000)
	res, err := streamhist.Scan(vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins.Total() != int64(len(vals)) {
		t.Fatalf("binned %d values, want %d", res.Bins.Total(), len(vals))
	}
	truth := bins.Build(vals, 1)
	want := hist.BuildEquiDepth(truth, 256)
	if len(res.EquiDepth.Buckets) != len(want.Buckets) {
		t.Fatalf("buckets %d != %d", len(res.EquiDepth.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		if res.EquiDepth.Buckets[i] != want.Buckets[i] {
			t.Errorf("bucket %d differs", i)
		}
	}
	if len(res.TopK) != 64 {
		t.Errorf("topk = %d entries", len(res.TopK))
	}
	if res.MaxDiff == nil || res.Compressed == nil {
		t.Error("missing histogram flavours")
	}
	if res.TotalSeconds <= 0 {
		t.Error("no simulated timing")
	}
}

func TestScanEmptyColumn(t *testing.T) {
	if _, err := streamhist.Scan(nil); err == nil {
		t.Error("empty column accepted")
	}
}

func TestScanSingleValue(t *testing.T) {
	res, err := streamhist.Scan([]int64{42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins.Total() != 1 || res.Bins.Cardinality() != 1 {
		t.Error("single-value scan wrong")
	}
	if est := res.EquiDepth.EstimateEquals(42); est != 1 {
		t.Errorf("estimate = %v", est)
	}
}
