# Developer entry points. `make check` is the full gate the serving
# subsystem is held to: vet, build, and the whole suite under the race
# detector (the scan server is aggressively concurrent).

GO ?= go

.PHONY: check vet build test race fuzz bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over every decoder that faces attacker-controlled bytes.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/server/
	$(GO) test -run=^$$ -fuzz=FuzzHistogramUnmarshal -fuzztime=30s ./internal/hist/

bench:
	$(GO) test -bench=. -benchmem ./...
