# Developer entry points. `make check` is the full gate the serving
# subsystem is held to: vet, build, and the whole suite under the race
# detector (the scan server is aggressively concurrent). CI runs check,
# lint, fuzz (30s smoke on PRs, longer nightly) and bench-json.

GO ?= go
FUZZTIME ?= 30s
BENCHJSON ?= BENCH_PR10.json

# Perf-gate settings. The gated subset is the hot-path suite (the parallel
# data path with and without the sketch chain, plus the Table 1 binner
# cases); the iteration budget and scheduler width are pinned so a base run
# and a head run on the same machine are comparable, and the 5 repeats are
# collapsed to a per-metric median by benchjson.
PERF_BENCH ?= BenchmarkParallelDataPathSketch|BenchmarkTable1Binner
PERF_BENCHTIME ?= 2s
PERF_COUNT ?= 5
PERF_GOMAXPROCS ?= 4
PERF_OUT ?= perf_head.json
PERF_BASE ?= perf_base.json
PERF_HEAD ?= perf_head.json

.PHONY: check vet build test race fuzz bench bench-json perf-bench perf-gate lint chaos-durable

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz passes over every decoder that faces attacker-controlled bytes.
# FUZZTIME=30s is the CI smoke setting; the nightly job raises it.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -run=^$$ -fuzz=FuzzHistogramUnmarshal -fuzztime=$(FUZZTIME) ./internal/hist/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeSnapshot -fuzztime=$(FUZZTIME) ./internal/durable/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeWALRecord -fuzztime=$(FUZZTIME) ./internal/durable/

# chaos-durable is the crash-recovery chaos gate: the in-process prefix
# property (100 randomized kill points under disk-fault injection) plus the
# real kill -9 harness (child server process SIGKILLed mid-scan, restarted
# from disk, client resume must deliver a byte-identical stream). Widen with
# CHAOS_SEEDS / CRASH_SEEDS.
CHAOS_SEEDS ?= 100
CRASH_SEEDS ?= 5
chaos-durable:
	STREAMHIST_CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -run 'TestDurableChaos' ./internal/durable/ -v -timeout 20m
	STREAMHIST_CRASH_SEEDS=$(CRASH_SEEDS) $(GO) test -race -run 'TestCrash|TestServerRestart|TestServerNoDurability' ./internal/server/ -v -timeout 20m

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json captures the root-package benchmark suite (one bench per paper
# artifact plus the parallel data-path scaling group) as a JSON trajectory
# point for CI artifacts.
bench-json:
	$(GO) test -bench=. -benchmem -run='^$$' -count=1 -timeout=60m . | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out $(BENCHJSON)

# perf-bench runs the gated benchmark subset under pinned conditions and
# writes one median-collapsed benchjson artifact. Run it twice — once on the
# merge base, once on the head, same machine — then `make perf-gate`.
perf-bench:
	GOMAXPROCS=$(PERF_GOMAXPROCS) $(GO) test -run='^$$' -bench='$(PERF_BENCH)' \
		-benchmem -benchtime=$(PERF_BENCHTIME) -count=$(PERF_COUNT) -timeout=30m . \
		| tee perf.out
	$(GO) run ./cmd/benchjson -in perf.out -out $(PERF_OUT)

# perf-gate fails on >10% same-runner throughput drop or >5% allocs/op
# growth between two perf-bench artifacts (allocs are machine-independent;
# the throughput gate is only sound because CI produces both files in one
# job on one runner).
perf-gate:
	$(GO) run ./cmd/benchdiff -base $(PERF_BASE) -head $(PERF_HEAD) \
		-gate-throughput -max-throughput-drop 10 -max-allocs-growth 5

# lint runs staticcheck when it is installed (CI installs it; locally it is
# optional because the repo builds with the stdlib toolchain alone).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
