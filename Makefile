# Developer entry points. `make check` is the full gate the serving
# subsystem is held to: vet, build, and the whole suite under the race
# detector (the scan server is aggressively concurrent). CI runs check,
# lint, fuzz (30s smoke on PRs, longer nightly) and bench-json.

GO ?= go
FUZZTIME ?= 30s
BENCHJSON ?= BENCH_PR6.json

.PHONY: check vet build test race fuzz bench bench-json lint

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz passes over every decoder that faces attacker-controlled bytes.
# FUZZTIME=30s is the CI smoke setting; the nightly job raises it.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -run=^$$ -fuzz=FuzzHistogramUnmarshal -fuzztime=$(FUZZTIME) ./internal/hist/

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json captures the root-package benchmark suite (one bench per paper
# artifact plus the parallel data-path scaling group) as a JSON trajectory
# point for CI artifacts.
bench-json:
	$(GO) test -bench=. -benchmem -run='^$$' -count=1 -timeout=60m . | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out $(BENCHJSON)

# lint runs staticcheck when it is installed (CI installs it; locally it is
# optional because the repo builds with the stdlib toolchain alone).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
