// Quickstart: run the statistical accelerator over a table as it "moves"
// from storage to the host, and inspect the histograms that fall out.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"streamhist/internal/core"
	"streamhist/internal/page"
	"streamhist/internal/tpch"
)

func main() {
	// A scaled-down TPC-H lineitem table (100k rows, SF1 value domains).
	rel := tpch.Lineitem(100_000, 1, 42)
	fmt.Printf("table %s: %d rows, %d columns, %.1f MB on pages\n",
		rel.Name, rel.NumRows(), rel.Schema.NumColumns(),
		float64(rel.SizeBytes())/1e6)

	// Encode it to database pages — this byte stream is what the host
	// would read; the accelerator taps a copy of it.
	pages := page.Encode(rel)

	// Configure the circuit for the l_quantity column. The host supplies
	// the column's byte offset/type (the metadata packet of §4) and the
	// value range for the preprocessor.
	spec, err := core.SpecFor(rel.Schema, "l_quantity")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(spec, 1, 50)
	cfg.EquiDepthBuckets = 10
	cfg.TopK = 5
	circuit, err := core.NewCircuit(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Stream the pages through. The host-visible stream is delayed only by
	// the splitter latency; the statistics are computed on the side.
	res, err := circuit.Process(pages)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nhost-path added latency: %.1f µs (the \"bump in the wire\")\n",
		res.HostPathAddedSeconds*1e6)
	fmt.Printf("simulated accelerator time: %.2f ms binning + %.2f ms histograms\n",
		res.BinningSeconds*1e3, res.HistogramSeconds*1e3)
	fmt.Printf("binner sustained %.1f M values/s (cache hit rate %.0f%%)\n",
		res.BinnerStats.ValuesPerSecond(cfg.Binner.Clock)/1e6,
		100*float64(res.BinnerStats.CacheHits)/
			float64(res.BinnerStats.CacheHits+res.BinnerStats.CacheMisses))

	fmt.Println("\ntop-5 most frequent quantities:")
	for i, f := range res.TopK {
		fmt.Printf("  #%d: value %d × %d\n", i+1, f.Value, f.Count)
	}

	fmt.Println("\nequi-depth histogram (10 buckets):")
	for _, b := range res.EquiDepth.Buckets {
		fmt.Printf("  [%2d .. %2d]  %6d rows, %2d distinct values\n",
			b.Low, b.High, b.Count, b.Distinct)
	}

	// The histograms answer optimizer questions immediately:
	fmt.Printf("\nestimated rows with l_quantity = 25: %.0f\n",
		res.EquiDepth.EstimateEquals(25))
	fmt.Printf("estimated rows with l_quantity < 10: %.0f\n",
		res.EquiDepth.EstimateLess(10))
}
