// Freshness: the paper's second headline benefit (§1): "If histograms can
// be refreshed every time a table is scanned, the global freshness of
// statistics will be higher than that of current systems."
//
// This example simulates a day of operations — batches of updates
// interleaved with table scans — under two regimes:
//
//   - conventional: statistics refresh only in the nightly maintenance
//     window (one ANALYZE at the end);
//   - accelerator: every scan refreshes the histogram for free.
//
// After each batch it measures how far the catalog's estimate of a moving
// hot value has drifted from the truth.
//
//	go run ./examples/freshness
package main

import (
	"fmt"
	"log"
	"math"

	"streamhist/internal/core"
	"streamhist/internal/datagen"
	"streamhist/internal/dbms"
	"streamhist/internal/table"
	"streamhist/internal/tpch"
)

func main() {
	const rows = 300_000
	const batches = 8

	// Two identical databases, one per regime.
	conventional := dbms.NewDatabase(dbms.DBx())
	accelerated := dbms.NewDatabase(dbms.DBx())
	conventional.AddTable(tpch.Lineitem(rows, 1, 31))
	accelerated.AddTable(tpch.Lineitem(rows, 1, 31))

	gather := func(db *dbms.Database) {
		if _, err := db.GatherStats("lineitem", "l_extendedprice", 100, 32); err != nil {
			log.Fatal(err)
		}
	}
	gather(conventional)
	gather(accelerated)

	rng := datagen.NewRNG(33)
	fmt.Println("batch | hot value | true count | conventional est (err) | accelerator est (err)")
	var convErrSum, accErrSum float64
	for b := 1; b <= batches; b++ {
		// A batch of updates concentrates rows on a new hot price.
		hot := int64(100_000 + rng.Int63n(400_000))
		count := 1_000 + int(rng.Int63n(3_000))
		for _, db := range []*dbms.Database{conventional, accelerated} {
			db.MutateColumn("lineitem", func(rel *table.Relation) {
				tpch.InflateValue(rel, "l_extendedprice", hot, count, uint64(40+b))
			})
		}
		trueCount := exactCount(accelerated, hot)

		// Both systems serve queries, which scan the table. Only the
		// accelerated one gets fresh statistics out of those scans.
		res, err := core.ProcessRelation(accelerated.Table("lineitem").Rel, "l_extendedprice", nil)
		if err != nil {
			log.Fatal(err)
		}
		accelerated.InstallStats("lineitem", "l_extendedprice", res.Compressed,
			int64(res.Bins.Cardinality()))

		convEst := conventional.Catalog.EstimateEquals("lineitem", "l_extendedprice", hot)
		accEst := accelerated.Catalog.EstimateEquals("lineitem", "l_extendedprice", hot)
		convErr := relErr(convEst, trueCount)
		accErr := relErr(accEst, trueCount)
		convErrSum += convErr
		accErrSum += accErr
		fmt.Printf("%5d | %9d | %10d | %12.1f (%5.1f%%) | %12.1f (%5.1f%%)\n",
			b, hot, trueCount, convEst, 100*convErr, accEst, 100*accErr)
	}

	// The nightly window finally arrives for the conventional system.
	gather(conventional)
	fmt.Printf("\nmean estimate error across the day: conventional %.0f%%, accelerator %.0f%%\n",
		100*convErrSum/batches, 100*accErrSum/batches)
	fmt.Println("the conventional catalog only becomes accurate after the nightly ANALYZE;")
	fmt.Println("the accelerator's catalog was fresh after every single scan, at no extra cost.")
}

func exactCount(db *dbms.Database, value int64) int64 {
	var n int64
	for _, v := range db.Table("lineitem").Rel.ColumnByName("l_extendedprice") {
		if v == value {
			n++
		}
	}
	return n
}

func relErr(est float64, truth int64) float64 {
	if truth == 0 {
		return 0
	}
	return math.Abs(est-float64(truth)) / float64(truth)
}
