// Autostats: the §3 automation integrated with the accelerator. The
// automated statistics job tracks modifications and refreshes stale columns
// in budget-bound maintenance windows; the accelerator turns every table
// scan into a free refresh and tells the automation which column to point
// the circuit at next (the host's metadata packet).
//
//	go run ./examples/autostats
package main

import (
	"fmt"
	"log"

	"streamhist/internal/core"
	"streamhist/internal/dbms"
	"streamhist/internal/table"
	"streamhist/internal/tpch"
)

func main() {
	db := dbms.NewDatabase(dbms.DBx())
	db.AddTable(tpch.Lineitem(200_000, 1, 17))
	for _, col := range []string{"l_quantity", "l_extendedprice", "l_partkey"} {
		if _, err := db.GatherStats("lineitem", col, 100, 18); err != nil {
			log.Fatal(err)
		}
	}

	auto := dbms.NewAutoStats(db, dbms.DefaultAutoStatsPolicy())
	auto.Track("lineitem", "l_quantity")
	auto.Track("lineitem", "l_extendedprice")
	auto.Track("lineitem", "l_partkey")

	// A burst of updates makes everything stale.
	db.MutateColumn("lineitem", func(rel *table.Relation) {
		tpch.InflateValue(rel, "l_extendedprice", 200100, 30_000, 19)
	})
	auto.RecordModifications("lineitem", 30_000)
	for _, col := range []string{"l_quantity", "l_extendedprice", "l_partkey"} {
		fmt.Printf("stale fraction %-17s %.0f%%\n", col+":", auto.StaleFraction("lineitem", col))
	}

	// The conventional path: a maintenance window with a tight budget.
	policyBudget := 0.000001 // modelled seconds; deliberately tiny
	tight := dbms.NewAutoStats(db, dbms.AutoStatsPolicy{StalePercent: 10, WindowBudgetSeconds: policyBudget, SamplePct: 5})
	tight.Track("lineitem", "l_quantity")
	tight.Track("lineitem", "l_extendedprice")
	tight.Track("lineitem", "l_partkey")
	tight.RecordModifications("lineitem", 30_000)
	rep, err := tight.RunMaintenanceWindow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbudget-bound window: %d actions, %d deferred (the freshness debt)\n",
		len(rep.Actions), rep.Deferred)
	for _, act := range rep.Actions {
		fmt.Printf("  %-18s analyzed=%v reason=%s\n", act.Column, act.Analyzed, act.Reason)
	}

	// The accelerator path: scans happen anyway; the automation picks the
	// most-stale column for each scan's metadata packet, and the circuit's
	// result packet lands in the catalog — no budget, no deferral.
	fmt.Println("\naccelerator-backed refresh, one column per scan:")
	for scan := 1; ; scan++ {
		col, ok := auto.NextColumnForScan("lineitem")
		if !ok || auto.StaleFraction("lineitem", col) < 10 {
			break
		}
		res, err := core.ProcessRelation(db.Table("lineitem").Rel, col, nil)
		if err != nil {
			log.Fatal(err)
		}
		// The result travels to the host as the wire packet and is
		// decoded there before installation.
		host, err := core.DecodeResults(core.EncodeResults(res))
		if err != nil {
			log.Fatal(err)
		}
		db.InstallStats("lineitem", col, host.Compressed, host.Distinct)
		auto.NotifyScanHistogram("lineitem", col)
		fmt.Printf("  scan %d refreshed %-17s (%.2f ms simulated, %d distinct)\n",
			scan, col, res.TotalSeconds*1e3, host.Distinct)
	}
	fmt.Println("\nall tracked columns fresh; the maintenance window has nothing left to do:")
	rep2, err := auto.RunMaintenanceWindow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  window actions: %d\n", len(rep2.Actions))
}
