// Querytuning: the paper's §2 motivation end to end. A bulk update skews a
// column; the stale catalog misleads the planner into a nested-loops join;
// the accelerator's free histogram (delivered as a side effect of the next
// table scan) fixes the plan without ever running ANALYZE.
//
//	go run ./examples/querytuning
package main

import (
	"fmt"
	"log"

	"streamhist/internal/core"
	"streamhist/internal/dbms"
	"streamhist/internal/table"
	"streamhist/internal/tpch"
)

const spikePrice = 200100 // the query's price literal, in cents

func main() {
	db := dbms.NewDatabase(dbms.DBx())
	db.AddTable(tpch.Lineitem(1_000_000, 10, 7))
	db.AddTable(tpch.Customer(50_000, 8))

	// Gather statistics the conventional way, then mutate the table.
	if _, err := db.GatherStats("lineitem", "l_extendedprice", 100, 9); err != nil {
		log.Fatal(err)
	}
	if _, err := db.GatherStats("customer", "c_custkey", 100, 10); err != nil {
		log.Fatal(err)
	}
	db.MutateColumn("lineitem", func(rel *table.Relation) {
		tpch.InflateValue(rel, "l_extendedprice", spikePrice, 4_000, 11)
	})
	fmt.Println("after the bulk update:")
	fmt.Println(" ", db.Catalog.Describe("lineitem", "l_extendedprice"))

	// Q1 with the stale catalog: the planner expects a handful of
	// somelines rows and picks nested loops.
	params := dbms.Q1Params{Price: spikePrice, KeyLimit: 20_000}
	stale := dbms.RunQ1(db, params)
	fmt.Printf("\nstale stats:  plan=%v estOuter=%.1f actual=%d join=%v\n",
		stale.Plan.Method, stale.Plan.EstOuter, stale.ActualOuter, stale.JoinTime)

	// Now the table is scanned for an unrelated reason — and the
	// accelerator, sitting in the data path, hands back fresh histograms
	// for free. Install them into the catalog.
	res, err := core.ProcessRelation(db.Table("lineitem").Rel, "l_extendedprice", nil)
	if err != nil {
		log.Fatal(err)
	}
	db.InstallStats("lineitem", "l_extendedprice", res.Compressed, int64(res.Bins.Cardinality()))
	fmt.Printf("\naccelerator refreshed the stats as a side effect of the scan (%.1f ms simulated, %d distinct values)\n",
		res.TotalSeconds*1e3, res.Bins.Cardinality())
	fmt.Println(" ", db.Catalog.Describe("lineitem", "l_extendedprice"))

	fresh := dbms.RunQ1(db, params)
	fmt.Printf("\nfresh stats:  plan=%v estOuter=%.1f actual=%d join=%v\n",
		fresh.Plan.Method, fresh.Plan.EstOuter, fresh.ActualOuter, fresh.JoinTime)

	fmt.Printf("\nspeedup from the free histogram: %.1fx on the join phase\n",
		float64(stale.JoinTime)/float64(fresh.JoinTime))
	if len(stale.Groups) != len(fresh.Groups) {
		log.Fatal("plans disagree on the result!")
	}
	fmt.Printf("both plans returned the same %d groups\n", len(fresh.Groups))
}
