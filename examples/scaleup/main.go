// Scaleup: the §7 future-work design, sized and simulated. A single-column
// stream at 10 Gbps delivers ~312 M values/s — far beyond one Binner — so
// the Parser/Binner pair is replicated, values are distributed round-robin,
// and the per-replica partial counts are aggregated in constant time before
// the unchanged Histogram module.
//
//	go run ./examples/scaleup
package main

import (
	"fmt"
	"log"

	"streamhist/internal/core"
	"streamhist/internal/datagen"
	"streamhist/internal/hist"
	"streamhist/internal/hw"
)

func main() {
	clk := hw.NewClock(hw.DefaultClockHz)
	const targetGbps = 10.0

	fmt.Printf("target: one 32-bit column at %.0f Gbps = %.1f M values/s\n",
		targetGbps, targetGbps*1e9/8/4/1e6)
	worst := core.ReplicasForLineRate(targetGbps, 20e6)
	best := core.ReplicasForLineRate(targetGbps, 50e6)
	fmt.Printf("replicas needed: %d at the worst-case 20 M/s per Binner, %d if the cache always hits\n\n",
		worst, best)

	// Worst-case traffic (never hits the cache) through increasing
	// replica counts.
	vals := make([]int64, 800_000)
	for i := range vals {
		vals[i] = int64(i%4096) * int64(hw.DefaultBinsPerLine)
	}
	fmt.Println("replicas | aggregate rate | line rate | 10Gbps?")
	for _, n := range []int{1, 4, 8, worst} {
		pb, err := core.NewParallelBinner(n, core.DefaultBinnerConfig(), 0, 4096*8, 1)
		if err != nil {
			log.Fatal(err)
		}
		pb.PushAll(vals)
		_, stats, err := pb.Finish()
		if err != nil {
			log.Fatal(err)
		}
		rate := stats.ValuesPerSecond(clk)
		gbps := core.LineRateGbps(rate)
		ok := "no"
		if gbps >= targetGbps {
			ok = "YES"
		}
		fmt.Printf("%8d | %11.0f M/s | %6.1f Gbps | %s\n", n, rate/1e6, gbps, ok)
	}

	// Functional check on skewed data: the merged partial counts feed the
	// same Histogram module and yield the same equi-depth histogram a
	// single Binner would have produced.
	skewed := datagen.Take(datagen.NewZipf(5, 0, 10_000, 0.9, true), 400_000)
	pb, err := core.NewParallelBinner(worst, core.DefaultBinnerConfig(), 0, 9_999, 1)
	if err != nil {
		log.Fatal(err)
	}
	pb.PushAll(skewed)
	merged, stats, err := pb.Finish()
	if err != nil {
		log.Fatal(err)
	}
	ed := core.NewEquiDepthBlock(16, merged.Total())
	chain := core.NewScanner().Run(merged, ed)
	fmt.Printf("\nskewed column through %d replicas: %d values binned in %.2f ms (+%d aggregation cycles),\n",
		pb.Replicas(), merged.Total(), stats.Seconds(clk)*1e3, stats.AggregationCycles)
	fmt.Printf("histogram module unchanged, finished in %.2f ms:\n", chain.Seconds(clk)*1e3)

	reference := hist.BuildEquiDepth(merged, 16)
	match := len(reference.Buckets) == len(ed.Result())
	for i := range reference.Buckets {
		if !match || ed.Result()[i] != reference.Buckets[i] {
			match = false
			break
		}
	}
	fmt.Printf("buckets identical to the software reference: %v\n", match)
	for i, b := range ed.Result() {
		if i >= 4 {
			fmt.Printf("  ... %d more buckets\n", len(ed.Result())-4)
			break
		}
		fmt.Printf("  [%5d .. %5d]  %6d rows\n", b.Low, b.High, b.Count)
	}
}
