// Multihist: one pass over a skewed column produces four different
// statistics in parallel — the §5.2 daisy chain. The example also prints
// the Table 2 cycle accounting so you can see what each block costs in
// hardware terms, and compares estimation accuracy across the histogram
// types on the same data.
//
//	go run ./examples/multihist
package main

import (
	"fmt"
	"log"

	"streamhist/internal/bins"
	"streamhist/internal/core"
	"streamhist/internal/datagen"
	"streamhist/internal/hist"
	"streamhist/internal/hw"
)

func main() {
	// A heavily skewed column: Zipf 1.0 over 4096 distinct values.
	vals := datagen.Take(datagen.NewZipf(3, 0, 4096, 1.0, true), 500_000)
	truth := bins.Build(vals, 1)

	cfg := core.DefaultConfig(core.ColumnSpec{}, 0, 4095)
	cfg.TopK = 10
	cfg.EquiDepthBuckets = 32
	cfg.MaxDiffBuckets = 32
	cfg.CompressedT = 10
	cfg.CompressedBuckets = 32
	circuit, err := core.NewCircuit(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := circuit.ProcessValues(vals)

	clk := hw.NewClock(hw.DefaultClockHz)
	fmt.Printf("one scan of %d bins produced %d statistics (%d scanner passes):\n",
		res.Chain.Delta, len(res.Chain.Timings), res.Chain.Scans)
	for _, t := range res.Chain.Timings {
		fmt.Printf("  %-24s first result after %8.3f ms, done at %8.3f ms, %4d result bytes\n",
			t.Name, clk.Seconds(t.FirstResultCycles)*1e3,
			clk.Seconds(t.CompletionCycles)*1e3, t.ResultBytes)
	}
	fmt.Printf("whole Histogram module finished in %.3f ms — \"not additive\": it costs what the slowest block costs\n\n",
		res.HistogramSeconds*1e3)

	// How well does each flavour estimate point selectivities?
	fmt.Println("mean point-estimate error against ground truth:")
	for _, h := range []*hist.Histogram{res.EquiDepth, res.MaxDiff, res.Compressed} {
		fmt.Printf("  %-12s %.6f\n", h.Kind, hist.PointError(h, truth))
	}
	vopt := hist.BuildVOptimal(truth, 32)
	fmt.Printf("  %-12s %.6f (offline optimum, too expensive for production)\n",
		vopt.Kind, hist.PointError(vopt, truth))

	// The heavy hitters every flavour has to cope with:
	fmt.Println("\ntop-5 heavy hitters (exact, from the TopK block):")
	for i, f := range res.TopK[:5] {
		fmt.Printf("  #%d: value %4d × %6d (%.1f%% of all rows)\n",
			i+1, f.Value, f.Count, 100*float64(f.Count)/float64(truth.Total()))
	}

	// The hardware result encoding (§6.3: 8 bytes per bucket).
	enc := core.EncodeBuckets(res.EquiDepth.Buckets)
	fmt.Printf("\nequi-depth result wire size: %d bytes (%d buckets × 8)\n",
		len(enc), len(res.EquiDepth.Buckets))
}
