// Package streamhist reproduces "Histograms as a Side Effect of Data
// Movement for Big Data" (István, Woods, Alonso — SIGMOD 2014): a
// statistical accelerator that sits in the storage-to-host data path and
// computes Equi-depth, Compressed and Max-diff histograms plus TopK
// frequency lists while the data streams by, at no cost to the stream.
//
// The implementation lives under internal/:
//
//   - internal/core — the accelerator (Parser, Binner, statistic blocks)
//     as a cycle-accounted simulation of the paper's FPGA prototype;
//   - internal/hist — the software reference histogram library;
//   - internal/dbms — the commercial-DBMS substrate the paper compares
//     against (sampling analyzer, planner, executor);
//   - internal/bench — one runner per table and figure of the evaluation.
//
// Scan is the one-call facade for the most common use: histograms for a
// column that just streamed past.
package streamhist

import (
	"streamhist/internal/core"
)

// Results re-exports the accelerator's output type.
type Results = core.Results

// Scan runs the default accelerator configuration (§6: 256-bucket
// equi-depth, T=64 TopK, 64-bucket Max-diff and Compressed) over a column
// of values and returns every histogram plus the simulated hardware timing.
func Scan(values []int64) (*Results, error) {
	if len(values) == 0 {
		return nil, errEmptyColumn
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	cfg := core.DefaultConfig(core.ColumnSpec{}, min, max)
	circuit, err := core.NewCircuit(cfg)
	if err != nil {
		return nil, err
	}
	return circuit.ProcessValues(values), nil
}

// errEmptyColumn reports a Scan over no data.
var errEmptyColumn = scanError("streamhist: cannot scan an empty column")

type scanError string

func (e scanError) Error() string { return string(e) }
