package hw

import "streamhist/internal/faults"

// Memory models the off-chip bin region as an addressable array of 64-bit
// counters protected by SEC-DED check bits, with optional fault injection.
// It exists for the chaos path: when no injector is wired the Binner keeps
// its direct array updates, and when one is wired every increment goes
// through this model so that injected upsets are either corrected (single
// bit flips — the histogram stays exact) or detected and quarantined
// (multi-bit flips — the bin is zeroed and counted, so the histogram is
// explicitly Degraded rather than silently wrong). Injected latency spikes
// surface as extra cycles for the caller's completion-time accounting.
type Memory struct {
	words []int64
	ecc   []uint8
	inj   *faults.Injector

	corrected   int64
	quarantined int64
	spikes      int64
	spikeCycles int64

	events MemEvents
}

// NewMemory builds a zeroed, ECC-clean memory of n words. The injector may
// be nil (no faults ever fire).
func NewMemory(n int, inj *faults.Injector) *Memory {
	m := &Memory{
		words: make([]int64, n),
		ecc:   make([]uint8, n),
		inj:   inj,
	}
	clean := ECCEncode(0)
	for i := range m.ecc {
		m.ecc[i] = clean
	}
	return m
}

// Words returns the number of addressable words.
func (m *Memory) Words() int { return len(m.words) }

// scrubWord verifies one resident word, correcting what ECC can correct and
// zero-quarantining what it cannot. It returns the trustworthy value.
func (m *Memory) scrubWord(addr int64) int64 {
	w, status := ECCCorrect(uint64(m.words[addr]), m.ecc[addr])
	switch status {
	case ECCCorrected:
		m.noteCorrected()
		m.words[addr] = int64(w)
	case ECCUncorrectable:
		// The count is unrecoverable; zero the bin so downstream consumers
		// see a well-formed (if incomplete) view, and count the loss.
		m.noteQuarantined()
		m.words[addr] = 0
		m.ecc[addr] = ECCEncode(0)
		return 0
	}
	return int64(w)
}

func (m *Memory) noteCorrected() {
	m.corrected++
	if m.events.Corrected != nil {
		m.events.Corrected.Add(1)
	}
}

func (m *Memory) noteQuarantined() {
	m.quarantined++
	if m.events.Quarantined != nil {
		m.events.Quarantined.Add(1)
	}
}

// Increment performs the read-modify-write of one binning update, applying
// any injected faults, and returns the extra cycles of an injected latency
// spike (0 almost always).
func (m *Memory) Increment(addr int64) (spike int64) {
	if m.inj.Should(faults.MemLatencySpike) {
		// A spike stretches the access by 1–10× the nominal latency.
		spike = DefaultMemLatencyCycles * (1 + m.inj.Intn(faults.MemLatencySpike, 10))
		m.spikes++
		m.spikeCycles += spike
		if m.events.SpikeCycles != nil {
			m.events.SpikeCycles.Add(spike)
		}
	}

	// Read path: a transient upset flips a bit of the data as it crosses
	// the channel; the stored copy is intact, so ECC always corrects it.
	w := m.words[addr]
	if m.inj.Should(faults.MemReadFlip) {
		w = int64(uint64(w) ^ 1<<uint(m.inj.Intn(faults.MemReadFlip, 64)))
	}
	fixed, status := ECCCorrect(uint64(w), m.ecc[addr])
	switch status {
	case ECCCorrected:
		m.noteCorrected()
	case ECCUncorrectable:
		m.noteQuarantined()
		fixed = 0
	}

	v := int64(fixed) + 1
	m.words[addr] = v
	m.ecc[addr] = ECCEncode(uint64(v))

	// Write path: a persistent upset lands in the stored cell after the
	// check bits were computed. Singles are corrected on the next touch of
	// the word (or the final scrub); occasionally the upset takes two bits,
	// which is detectable but not correctable.
	if m.inj.Should(faults.MemWriteFlip) {
		flipped := uint64(v) ^ 1<<uint(m.inj.Intn(faults.MemWriteFlip, 64))
		if m.inj.Intn(faults.MemWriteFlip, 4) == 0 { // 1-in-4 upsets are double-bit
			flipped ^= 1 << uint(m.inj.Intn(faults.MemWriteFlip, 64))
		}
		m.words[addr] = int64(flipped)
	}
	return spike
}

// Counts scrubs the whole memory — the ECC pass a controller would run
// before handing the region to the histogram chain — and returns the
// per-word counters. Corrupt words found here are corrected or
// quarantined exactly as on the read path. The returned slice is the
// memory's own storage.
func (m *Memory) Counts() []int64 {
	for addr := range m.words {
		m.scrubWord(int64(addr))
	}
	return m.words
}

// Corrected returns how many single-bit upsets ECC has repaired.
func (m *Memory) Corrected() int64 { return m.corrected }

// Quarantined returns how many words were lost to uncorrectable upsets.
func (m *Memory) Quarantined() int64 { return m.quarantined }

// Spikes returns how many latency spikes fired.
func (m *Memory) Spikes() int64 { return m.spikes }

// SpikeCycles returns the total injected extra access latency.
func (m *Memory) SpikeCycles() int64 { return m.spikeCycles }
