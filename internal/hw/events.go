package hw

// Adder receives monotonically increasing event deltas. It is the narrow
// waist between the hardware model and whatever observability layer is
// listening (internal/obs counters satisfy it); hw stays free of any
// dependency on the metrics code. A nil Adder field means nobody is
// listening — every bump site checks for nil.
type Adder interface {
	Add(delta int64)
}

// MemEvents is the set of live event sinks a Memory reports into as faults
// are handled, in addition to its own cumulative accessors (Corrected,
// Quarantined, SpikeCycles). The accessors answer "what happened to this
// scan's bin region"; the sinks feed process-lifetime totals a monitoring
// scrape can watch move in real time. Zero value: no reporting.
type MemEvents struct {
	// Corrected receives 1 per single-bit upset ECC repaired.
	Corrected Adder
	// Quarantined receives 1 per word lost to an uncorrectable upset.
	Quarantined Adder
	// SpikeCycles receives the extra cycles of each injected latency spike.
	SpikeCycles Adder
}

// SetEvents wires live event sinks into the memory. Safe to leave unset.
func (m *Memory) SetEvents(ev MemEvents) {
	if m == nil {
		return
	}
	m.events = ev
}
