package hw

import (
	"math/rand"
	"testing"

	"streamhist/internal/faults"
)

// Every single-bit flip of every tested word must be corrected to the
// original, and every double-bit flip must be detected as uncorrectable.
func TestECCSingleAndDoubleBitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	words := []uint64{0, 1, ^uint64(0), 0x8000000000000000, 42}
	for i := 0; i < 50; i++ {
		words = append(words, rng.Uint64())
	}
	for _, w := range words {
		ecc := ECCEncode(w)
		if got, status := ECCCorrect(w, ecc); status != ECCOK || got != w {
			t.Fatalf("clean word %#x reported status %d", w, status)
		}
		for bit := 0; bit < 64; bit++ {
			flipped := w ^ 1<<bit
			got, status := ECCCorrect(flipped, ecc)
			if status != ECCCorrected || got != w {
				t.Fatalf("single flip of bit %d in %#x: status %d, got %#x", bit, w, status, got)
			}
		}
		for i := 0; i < 64; i++ {
			a, b := rng.Intn(64), rng.Intn(64)
			if a == b {
				continue
			}
			flipped := w ^ 1<<a ^ 1<<b
			if _, status := ECCCorrect(flipped, ecc); status != ECCUncorrectable {
				t.Fatalf("double flip (%d,%d) of %#x not detected", a, b, w)
			}
		}
	}
}

// Without an injector the memory is a plain counter array.
func TestMemoryFaultFree(t *testing.T) {
	m := NewMemory(16, nil)
	for i := 0; i < 1000; i++ {
		if spike := m.Increment(int64(i % 16)); spike != 0 {
			t.Fatalf("spike %d cycles with no injector", spike)
		}
	}
	counts := m.Counts()
	for i, c := range counts {
		if c != 1000/16+map[bool]int64{true: 1, false: 0}[i < 1000%16] {
			t.Fatalf("bin %d = %d", i, c)
		}
	}
	if m.Corrected() != 0 || m.Quarantined() != 0 || m.SpikeCycles() != 0 {
		t.Fatal("fault counters moved without faults")
	}
}

// Read-path upsets are transient: ECC corrects every one, so the final
// counts are exact and only the corrected counter moves.
func TestMemoryReadFlipsAlwaysCorrected(t *testing.T) {
	inj := faults.New(7, faults.Profile{faults.MemReadFlip: 0.5})
	m := NewMemory(8, inj)
	const n = 4000
	for i := 0; i < n; i++ {
		m.Increment(int64(i % 8))
	}
	var total int64
	for _, c := range m.Counts() {
		total += c
	}
	if total != n {
		t.Fatalf("total %d after read flips, want %d (reads are transient)", total, n)
	}
	if m.Corrected() == 0 {
		t.Fatal("no corrections despite 50% read-flip rate")
	}
	if m.Quarantined() != 0 {
		t.Fatalf("%d quarantined words from read flips", m.Quarantined())
	}
}

// Write-path upsets either correct (single-bit) or quarantine (double-bit):
// the final counts are never silently wrong — total counted plus lost mass
// accounts for every increment, and any shortfall is flagged.
func TestMemoryWriteFlipsNeverSilentlyWrong(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		inj := faults.New(seed, faults.Profile{faults.MemWriteFlip: 0.05})
		m := NewMemory(4, inj)
		const n = 2000
		for i := 0; i < n; i++ {
			m.Increment(int64(i % 4))
		}
		var total int64
		for _, c := range m.Counts() {
			if c < 0 {
				t.Fatalf("seed %d: negative bin count %d", seed, c)
			}
			total += c
		}
		if total > n {
			t.Fatalf("seed %d: total %d exceeds pushed %d", seed, total, n)
		}
		if total < n && m.Quarantined() == 0 {
			t.Fatalf("seed %d: lost %d increments with no quarantine reported", seed, n-total)
		}
		if total == n && m.Quarantined() != 0 {
			// A quarantine zeroes a nonzero bin, so mass must be missing.
			// (The bins here are hot, so a quarantined bin had real mass.)
			t.Fatalf("seed %d: quarantine reported but no mass lost", seed)
		}
	}
}

// Latency spikes surface as extra cycles and touch nothing else.
func TestMemoryLatencySpikes(t *testing.T) {
	inj := faults.New(3, faults.Profile{faults.MemLatencySpike: 1.0})
	m := NewMemory(2, inj)
	var spikes int64
	for i := 0; i < 100; i++ {
		s := m.Increment(0)
		if s <= 0 {
			t.Fatal("rate-1.0 spike point produced no spike")
		}
		spikes += s
	}
	if m.SpikeCycles() != spikes {
		t.Fatalf("SpikeCycles %d != summed %d", m.SpikeCycles(), spikes)
	}
	if got := m.Counts()[0]; got != 100 {
		t.Fatalf("spikes corrupted counts: %d", got)
	}
}
