// Package hw models the hardware substrate of the prototype platform from
// §6 of the paper: a custom circuit clocked at 150 MHz on a Virtex-6,
// attached to DDR3 memory whose controller sustains 40 million random
// accesses per second in the worst case with an average access latency of
// about 60 cycles (0.4 µs). Bins are 64-bit counters and memory lines pack
// eight bins (§5.1.2).
//
// Nothing here executes on real hardware; the package provides the clock
// and memory arithmetic plus cycle-faithful FIFO/cache building blocks that
// internal/core assembles into the statistical circuit. The constraints the
// paper's design works around — long memory latency, a bounded op rate,
// tiny on-chip state — are enforced by these models, which is what makes
// the reproduced throughput and latency curves meaningful.
package hw

import (
	"fmt"
	"time"
)

// Default platform parameters, taken from §6 of the paper.
const (
	// DefaultClockHz is the circuit clock (150 MHz).
	DefaultClockHz = 150_000_000
	// DefaultMemLatencyCycles is the average off-chip access latency
	// ("around 0.4µs (60 cycles at 150 MHz)", §4).
	DefaultMemLatencyCycles = 60
	// DefaultMemRandomOpsPerSec is the worst-case number of small random
	// read-or-write operations the memory controller sustains per second
	// (§6.1: "40 million read or write accesses per second in the worst
	// case").
	DefaultMemRandomOpsPerSec = 40_000_000
	// DefaultMemBurstOpsPerSec is the faster rate observed for accesses to
	// recently touched lines (§6.1: "when accessing rows in a less random
	// manner, the memory also exhibits a higher access speed"). With one
	// write per cache-hitting update this yields the measured best-case
	// Binner rate of 50 million values per second (Table 1).
	DefaultMemBurstOpsPerSec = 50_000_000
	// DefaultBinsPerLine is how many 64-bit bins one memory line packs
	// (§5.1.2: "memory lines pack multiple bins (in our implementation
	// eight)").
	DefaultBinsPerLine = 8
	// DefaultCacheBytes is the size of the on-chip write-through cache
	// (§5.1.3: "a small amount of on-chip memory ... (1KB)").
	DefaultCacheBytes = 1024
	// DefaultScanCyclesPerBin is the worst-case delivery rate of the
	// sequential bin scan feeding the statistic blocks: one 64-bit bin
	// every two cycles. Together with the paper's observation that the
	// TopK block may need two cycles per item while equi-depth needs one,
	// this reproduces the Table 2 result-latency formulas exactly.
	DefaultScanCyclesPerBin = 2
	// DefaultBlockPassCycles is the per-block pass-through latency in the
	// daisy chain (§6.3: "In our implementation this latency is 2 cycles
	// per block").
	DefaultBlockPassCycles = 2
	// LineBytes is the size of one memory line (8 bins × 8 bytes).
	LineBytes = DefaultBinsPerLine * 8
)

// Clock converts between cycle counts and wall-clock time at a fixed
// frequency.
type Clock struct {
	Hz int64
}

// NewClock returns a clock at the given frequency; hz must be positive.
func NewClock(hz int64) Clock {
	if hz <= 0 {
		panic("hw: clock frequency must be positive")
	}
	return Clock{Hz: hz}
}

// Seconds converts a cycle count to seconds.
func (c Clock) Seconds(cycles int64) float64 { return float64(cycles) / float64(c.Hz) }

// Duration converts a cycle count to a time.Duration.
func (c Clock) Duration(cycles int64) time.Duration {
	return time.Duration(float64(cycles) / float64(c.Hz) * float64(time.Second))
}

// Cycles converts a duration to (rounded-down) cycles.
func (c Clock) Cycles(d time.Duration) int64 {
	return int64(d.Seconds() * float64(c.Hz))
}

// String formats the clock.
func (c Clock) String() string { return fmt.Sprintf("%.0f MHz", float64(c.Hz)/1e6) }

// MemParams captures the off-chip memory model.
type MemParams struct {
	// LatencyCycles is the average access latency in clock cycles.
	LatencyCycles int64
	// RandomOpsPerSec is the worst-case sustainable rate of small random
	// read/write operations.
	RandomOpsPerSec int64
	// BurstOpsPerSec is the higher op rate for accesses with locality
	// (recently touched lines).
	BurstOpsPerSec int64
	// BinsPerLine is how many bins one memory line holds.
	BinsPerLine int
}

// DefaultMemParams returns the Maxeler-box DDR3 model from the paper.
func DefaultMemParams() MemParams {
	return MemParams{
		LatencyCycles:   DefaultMemLatencyCycles,
		RandomOpsPerSec: DefaultMemRandomOpsPerSec,
		BurstOpsPerSec:  DefaultMemBurstOpsPerSec,
		BinsPerLine:     DefaultBinsPerLine,
	}
}

// OpsCyclePeriod returns the minimum number of clock cycles between two
// memory operations under the op-rate bound for the given clock.
func (m MemParams) OpsCyclePeriod(clk Clock) float64 {
	return float64(clk.Hz) / float64(m.RandomOpsPerSec)
}

// AggregationCycles returns the cost of merging replicated bin regions into
// one before histogram creation (§7, Future Work): the regions live in
// separate memories and are streamed out in lockstep, one line per cycle per
// region, with the adds happening line-parallel in logic. The cost is
// therefore ⌈Δ/binsPerLine⌉ cycles — independent of how many replicas are
// merged. binsPerLine <= 0 falls back to the platform default.
func AggregationCycles(numBins int, binsPerLine int) int64 {
	if numBins <= 0 {
		return 0
	}
	if binsPerLine <= 0 {
		binsPerLine = DefaultBinsPerLine
	}
	return (int64(numBins) + int64(binsPerLine) - 1) / int64(binsPerLine)
}

// CriticalPath returns the completion cycle of a parallel fan-in: every lane
// runs concurrently, so the merged state is ready when the slowest lane has
// committed its last write plus the aggregation pass over the bin regions.
// This is the merged-lane analogue of the single-lane completion cycle that
// feeds the Table 2 arithmetic.
func CriticalPath(laneCycles []int64, aggregationCycles int64) int64 {
	var slowest int64
	for _, c := range laneCycles {
		if c > slowest {
			slowest = c
		}
	}
	return slowest + aggregationCycles
}

// FIFO is a bounded queue of int64 payloads, the decoupling element between
// pipeline stages (the read→update queue of §5.1.2). A capacity of zero
// means unbounded.
type FIFO struct {
	buf []int64
	cap int
}

// NewFIFO creates a FIFO with the given capacity (0 = unbounded).
func NewFIFO(capacity int) *FIFO { return &FIFO{cap: capacity} }

// Len returns the number of queued items.
func (f *FIFO) Len() int { return len(f.buf) }

// Full reports whether the FIFO is at capacity.
func (f *FIFO) Full() bool { return f.cap > 0 && len(f.buf) >= f.cap }

// Push enqueues v; it reports false when the FIFO is full.
func (f *FIFO) Push(v int64) bool {
	if f.Full() {
		return false
	}
	f.buf = append(f.buf, v)
	return true
}

// Pop dequeues the oldest item; ok is false when empty.
func (f *FIFO) Pop() (v int64, ok bool) {
	if len(f.buf) == 0 {
		return 0, false
	}
	v = f.buf[0]
	f.buf = f.buf[1:]
	return v, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO) Peek() (v int64, ok bool) {
	if len(f.buf) == 0 {
		return 0, false
	}
	return f.buf[0], true
}
