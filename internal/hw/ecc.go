package hw

import "math/bits"

// SEC-DED protection for the 64-bit bin counters of the off-chip memory.
// DDR3 DIMMs of the paper's era carry 8 check bits per 64-bit word; this is
// the software model of that channel. The code is the classic
// position-XOR construction: the 7-bit component is the XOR of the
// (1-based) positions of every set data bit, so a single flipped bit shows
// up as its own position in the syndrome and can be corrected in place; the
// eighth bit is overall parity, which disambiguates single (odd) from
// double (even) errors. Double errors are detected but not correctable —
// the memory quarantines the word instead of serving a silently wrong
// count.

// ECC status codes returned by ECCCorrect.
const (
	// ECCOK means the word matched its check bits.
	ECCOK = iota
	// ECCCorrected means a single-bit error was repaired.
	ECCCorrected
	// ECCUncorrectable means a multi-bit error was detected; the word
	// cannot be trusted.
	ECCUncorrectable
)

// ECCEncode computes the 8 check bits for a 64-bit word.
func ECCEncode(w uint64) uint8 {
	var pos uint8
	for x := w; x != 0; x &= x - 1 {
		pos ^= uint8(bits.TrailingZeros64(x)+1) & 0x7f
	}
	parity := uint8(bits.OnesCount64(w) & 1)
	return pos&0x7f | parity<<7
}

// ECCCorrect checks w against its stored check bits. It returns the
// (possibly repaired) word and one of ECCOK, ECCCorrected, or
// ECCUncorrectable.
func ECCCorrect(w uint64, ecc uint8) (uint64, int) {
	want := ECCEncode(w)
	if want == ecc {
		return w, ECCOK
	}
	dpos := (want ^ ecc) & 0x7f
	dparity := (want ^ ecc) >> 7
	if dparity == 1 {
		// Odd number of flipped data bits; a single flip at position
		// dpos-1 is the only correctable case.
		if dpos >= 1 && dpos <= 64 {
			return w ^ 1<<(dpos-1), ECCCorrected
		}
		return w, ECCUncorrectable
	}
	if dpos == 0 {
		// Parity matches, positions match, yet ecc differs: impossible —
		// covered by the want == ecc test above. Defensive.
		return w, ECCUncorrectable
	}
	// Even number of flips (the injected double-bit upset): detected,
	// not correctable.
	return w, ECCUncorrectable
}
