package hw

// Cache models the small on-chip write-through cache of §5.1.3. Its job in
// the hardware is to forward the values of recently accessed memory lines
// between pipeline stages so that "read after write" conflicts never stall
// the binning pipeline, making throughput independent of data skew.
//
// The cache stores whole memory lines in a block RAM indexed through a
// lookup table of line addresses — modelled here as a fixed-size
// FIFO-replacement table, which matches the hardware's "items currently in
// the pipeline" framing (the set of recently touched lines within the
// memory-latency window).
type Cache struct {
	lines   int
	order   []int64         // insertion order of resident line addresses
	present map[int64]int64 // line address -> generation tag (for stats only)

	hits   int64
	misses int64
	gen    int64
}

// NewCache builds a cache holding sizeBytes worth of memory lines of
// lineBytes each. A size of zero disables the cache (every access misses).
func NewCache(sizeBytes, lineBytes int) *Cache {
	if lineBytes <= 0 {
		panic("hw: cache line size must be positive")
	}
	n := sizeBytes / lineBytes
	return &Cache{
		lines:   n,
		present: make(map[int64]int64, n+1),
	}
}

// Lines returns the capacity in memory lines.
func (c *Cache) Lines() int { return c.lines }

// Lookup reports whether the line is resident, counting a hit or a miss.
func (c *Cache) Lookup(lineAddr int64) bool {
	if _, ok := c.present[lineAddr]; ok {
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Contains reports residence without touching the statistics.
func (c *Cache) Contains(lineAddr int64) bool {
	_, ok := c.present[lineAddr]
	return ok
}

// Insert makes the line resident (write-through: the caller has also issued
// the memory write). The oldest line is evicted when at capacity.
func (c *Cache) Insert(lineAddr int64) {
	if c.lines == 0 {
		return
	}
	if _, ok := c.present[lineAddr]; ok {
		c.gen++
		c.present[lineAddr] = c.gen
		return
	}
	if len(c.order) >= c.lines {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.present, evict)
	}
	c.order = append(c.order, lineAddr)
	c.gen++
	c.present[lineAddr] = c.gen
}

// Hits returns the number of lookup hits so far.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of lookup misses so far.
func (c *Cache) Misses() int64 { return c.misses }

// HitRate returns hits / (hits + misses), or 0 when no lookups happened.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	c.order = c.order[:0]
	c.present = make(map[int64]int64, c.lines+1)
	c.hits, c.misses, c.gen = 0, 0, 0
}
