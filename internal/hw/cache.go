package hw

// Cache models the small on-chip write-through cache of §5.1.3. Its job in
// the hardware is to forward the values of recently accessed memory lines
// between pipeline stages so that "read after write" conflicts never stall
// the binning pipeline, making throughput independent of data skew.
//
// The cache stores whole memory lines in a block RAM indexed through a
// lookup table of line addresses — modelled here as a fixed-size
// FIFO-replacement table, which matches the hardware's "items currently in
// the pipeline" framing (the set of recently touched lines within the
// memory-latency window).
//
// Two representations back the same semantics. When the caller can bound the
// line universe (NewCacheFor), residence is a flat byte array indexed by
// line address and the FIFO is a fixed ring — zero allocation per access,
// the form the hot binning loop uses. Otherwise residence is a map keyed by
// line address with the same fixed ring, so even the unbounded form never
// reallocates in steady state.
type Cache struct {
	lines int

	// ring is the FIFO of resident line addresses, a fixed circular buffer
	// of capacity lines; head is the oldest entry once full.
	ring []int64
	head int

	// resident is the flat residence table (dense form); universe is its
	// extent. present is the map fallback.
	resident []uint8
	universe int64
	present  map[int64]struct{}

	hits   int64
	misses int64
}

// NewCache builds a cache holding sizeBytes worth of memory lines of
// lineBytes each. A size of zero disables the cache (every access misses).
func NewCache(sizeBytes, lineBytes int) *Cache {
	if lineBytes <= 0 {
		panic("hw: cache line size must be positive")
	}
	n := sizeBytes / lineBytes
	return &Cache{
		lines:   n,
		ring:    make([]int64, 0, n),
		present: make(map[int64]struct{}, n+1),
	}
}

// maxDenseUniverse bounds the flat residence table (1 MiB of bytes).
const maxDenseUniverse = 1 << 20

// NewCacheFor builds a cache like NewCache for accesses known to stay in
// [0, universe). Small universes get the dense allocation-free residence
// table; larger ones fall back to the map form.
func NewCacheFor(sizeBytes, lineBytes int, universe int64) *Cache {
	c := NewCache(sizeBytes, lineBytes)
	if universe > 0 && universe <= maxDenseUniverse {
		c.resident = make([]uint8, universe)
		c.universe = universe
		c.present = nil
	}
	return c
}

// Lines returns the capacity in memory lines.
func (c *Cache) Lines() int { return c.lines }

// Universe returns the dense residence extent (0 for the map form) — the
// geometry key pooled reuse matches on.
func (c *Cache) Universe() int64 { return c.universe }

// Lookup reports whether the line is resident, counting a hit or a miss.
func (c *Cache) Lookup(lineAddr int64) bool {
	if c.Contains(lineAddr) {
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Contains reports residence without touching the statistics.
func (c *Cache) Contains(lineAddr int64) bool {
	if c.resident != nil {
		return uint64(lineAddr) < uint64(c.universe) && c.resident[lineAddr] != 0
	}
	_, ok := c.present[lineAddr]
	return ok
}

// Insert makes the line resident (write-through: the caller has also issued
// the memory write). The oldest line is evicted when at capacity.
func (c *Cache) Insert(lineAddr int64) {
	if c.lines == 0 || c.Contains(lineAddr) {
		return
	}
	if c.resident != nil && uint64(lineAddr) >= uint64(c.universe) {
		// Outside the declared universe the dense table cannot track the
		// line; treat it as uncacheable rather than corrupt the ring.
		return
	}
	if len(c.ring) < c.lines {
		c.ring = append(c.ring, lineAddr)
	} else {
		evict := c.ring[c.head]
		if c.resident != nil {
			c.resident[evict] = 0
		} else {
			delete(c.present, evict)
		}
		c.ring[c.head] = lineAddr
		c.head++
		if c.head == c.lines {
			c.head = 0
		}
	}
	if c.resident != nil {
		c.resident[lineAddr] = 1
	} else {
		c.present[lineAddr] = struct{}{}
	}
}

// Hits returns the number of lookup hits so far.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of lookup misses so far.
func (c *Cache) Misses() int64 { return c.misses }

// HitRate returns hits / (hits + misses), or 0 when no lookups happened.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

// Reset clears contents and statistics, keeping the backing storage — a
// reset cache is indistinguishable from a new one with the same geometry.
func (c *Cache) Reset() {
	if c.resident != nil {
		for _, line := range c.ring {
			c.resident[line] = 0
		}
	} else {
		clear(c.present)
	}
	c.ring = c.ring[:0]
	c.head = 0
	c.hits, c.misses = 0, 0
}
