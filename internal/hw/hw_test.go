package hw

import (
	"testing"
	"time"
)

func TestClockConversions(t *testing.T) {
	clk := NewClock(150_000_000)
	if s := clk.Seconds(150_000_000); s != 1 {
		t.Errorf("Seconds(1s of cycles) = %v", s)
	}
	if d := clk.Duration(150); d != time.Microsecond {
		t.Errorf("Duration(150 cycles) = %v, want 1µs", d)
	}
	if c := clk.Cycles(time.Second); c != 150_000_000 {
		t.Errorf("Cycles(1s) = %d", c)
	}
	if clk.String() != "150 MHz" {
		t.Errorf("String = %q", clk.String())
	}
}

func TestClockRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClock(0)
}

func TestMemParamsDefaults(t *testing.T) {
	m := DefaultMemParams()
	if m.LatencyCycles != 60 {
		t.Errorf("latency = %d", m.LatencyCycles)
	}
	if m.RandomOpsPerSec != 40_000_000 {
		t.Errorf("random ops = %d", m.RandomOpsPerSec)
	}
	if m.BinsPerLine != 8 {
		t.Errorf("bins/line = %d", m.BinsPerLine)
	}
	clk := NewClock(DefaultClockHz)
	if p := m.OpsCyclePeriod(clk); p != 3.75 {
		t.Errorf("op period = %v cycles, want 3.75", p)
	}
	// The measured 0.4µs latency of §4: 60 cycles at 150 MHz.
	if d := clk.Duration(m.LatencyCycles); d != 400*time.Nanosecond {
		t.Errorf("latency duration = %v, want 400ns", d)
	}
}

func TestFIFOOrdering(t *testing.T) {
	f := NewFIFO(0)
	for i := int64(0); i < 10; i++ {
		if !f.Push(i) {
			t.Fatal("unbounded FIFO rejected push")
		}
	}
	if f.Len() != 10 {
		t.Errorf("Len = %d", f.Len())
	}
	if v, ok := f.Peek(); !ok || v != 0 {
		t.Errorf("Peek = %d, %v", v, ok)
	}
	for i := int64(0); i < 10; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Error("Pop on empty FIFO succeeded")
	}
	if _, ok := f.Peek(); ok {
		t.Error("Peek on empty FIFO succeeded")
	}
}

func TestFIFOCapacity(t *testing.T) {
	f := NewFIFO(2)
	if !f.Push(1) || !f.Push(2) {
		t.Fatal("pushes under capacity failed")
	}
	if f.Push(3) {
		t.Error("push over capacity succeeded")
	}
	if !f.Full() {
		t.Error("Full() false at capacity")
	}
	f.Pop()
	if !f.Push(3) {
		t.Error("push after pop failed")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1024, LineBytes) // 16 lines
	if c.Lines() != 16 {
		t.Fatalf("lines = %d", c.Lines())
	}
	if c.Lookup(1) {
		t.Error("cold lookup hit")
	}
	c.Insert(1)
	if !c.Lookup(1) {
		t.Error("resident lookup missed")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestCacheEvictionFIFO(t *testing.T) {
	c := NewCache(2*LineBytes, LineBytes) // 2 lines
	c.Insert(1)
	c.Insert(2)
	c.Insert(3) // evicts 1
	if c.Contains(1) {
		t.Error("line 1 should have been evicted")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("lines 2 and 3 should be resident")
	}
	// Re-inserting a resident line must not evict anything.
	c.Insert(2)
	if !c.Contains(3) {
		t.Error("refresh of resident line evicted another line")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0, LineBytes)
	c.Insert(1)
	if c.Lookup(1) {
		t.Error("zero-size cache should always miss")
	}
	if c.Lines() != 0 {
		t.Errorf("lines = %d", c.Lines())
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1024, LineBytes)
	c.Insert(7)
	c.Lookup(7)
	c.Reset()
	if c.Contains(7) || c.Hits() != 0 || c.Misses() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCacheHitRateEmpty(t *testing.T) {
	c := NewCache(1024, LineBytes)
	if c.HitRate() != 0 {
		t.Error("hit rate of untouched cache should be 0")
	}
}

func TestCacheRejectsBadLineSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCache(1024, 0)
}

// TestCacheCoversLatencyWindow checks the §5.1.3 sizing argument: the 1 KB
// cache (16 lines of 8 bins) can hold the maximum number of distinct lines
// touched within the memory access latency window. At the worst-case rate
// of one item per 7.5 cycles (20 M/s) and 60 cycles latency, at most 8
// items are in flight — at most 8 distinct lines, comfortably below 16.
func TestCacheCoversLatencyWindow(t *testing.T) {
	itemsInFlight := int(float64(DefaultMemLatencyCycles) /
		(float64(DefaultClockHz) / float64(DefaultMemRandomOpsPerSec) * 2))
	lines := DefaultCacheBytes / LineBytes
	if itemsInFlight > lines {
		t.Errorf("latency window holds %d items but cache has only %d lines", itemsInFlight, lines)
	}
}

func TestAggregationCycles(t *testing.T) {
	// Δ=4096 bins at 8 bins per line: 512 lockstep line reads, regardless
	// of replica count.
	if c := AggregationCycles(4096, DefaultBinsPerLine); c != 512 {
		t.Errorf("AggregationCycles(4096) = %d, want 512", c)
	}
	// Partial last line rounds up.
	if c := AggregationCycles(9, 8); c != 2 {
		t.Errorf("AggregationCycles(9) = %d, want 2", c)
	}
	// Zero-size region costs nothing; default bins-per-line kicks in for
	// non-positive line sizes.
	if c := AggregationCycles(0, 8); c != 0 {
		t.Errorf("AggregationCycles(0) = %d, want 0", c)
	}
	if c := AggregationCycles(16, 0); c != 2 {
		t.Errorf("AggregationCycles(16, default) = %d, want 2", c)
	}
}

func TestCriticalPath(t *testing.T) {
	if c := CriticalPath([]int64{100, 350, 200}, 12); c != 362 {
		t.Errorf("CriticalPath = %d, want 362", c)
	}
	// No lanes: just the aggregation pass.
	if c := CriticalPath(nil, 7); c != 7 {
		t.Errorf("CriticalPath(nil) = %d, want 7", c)
	}
}
