package tpch

import (
	"testing"

	"streamhist/internal/datagen"
	"streamhist/internal/table"
)

func TestLineitemSchemaShape(t *testing.T) {
	s := LineitemSchema()
	if s.NumColumns() != 8 {
		t.Fatalf("columns = %d", s.NumColumns())
	}
	if s.Column(s.ColumnIndex("l_extendedprice")).Type != table.Decimal {
		t.Error("l_extendedprice should be Decimal")
	}
	if s.RowWidth() != 64 {
		t.Errorf("row width = %d, want 64", s.RowWidth())
	}
}

func TestLineitemDeterministic(t *testing.T) {
	a := Lineitem(1000, 1, 42)
	b := Lineitem(1000, 1, 42)
	for i := 0; i < 1000; i++ {
		for c := 0; c < 8; c++ {
			if a.Value(i, c) != b.Value(i, c) {
				t.Fatalf("row %d col %d differs across same-seed runs", i, c)
			}
		}
	}
	c := Lineitem(1000, 1, 43)
	same := true
	for i := 0; i < 100 && same; i++ {
		if a.Value(i, 1) != c.Value(i, 1) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical partkeys")
	}
}

func TestLineitemDistributions(t *testing.T) {
	rel := Lineitem(50000, 1, 1)
	qIdx := rel.Schema.ColumnIndex("l_quantity")
	pIdx := rel.Schema.ColumnIndex("l_extendedprice")
	okIdx := rel.Schema.ColumnIndex("l_orderkey")

	quantities := make(map[int64]bool)
	prevOrder := int64(0)
	for i := 0; i < rel.NumRows(); i++ {
		q := rel.Value(i, qIdx)
		if q < 1 || q > 50 {
			t.Fatalf("l_quantity = %d out of [1,50]", q)
		}
		quantities[q] = true
		p := rel.Value(i, pIdx)
		if p < 90000 || p > 50*(90000+20000+100*999) {
			t.Fatalf("l_extendedprice = %d implausible", p)
		}
		ok := rel.Value(i, okIdx)
		if ok < prevOrder {
			t.Fatal("l_orderkey not non-decreasing")
		}
		prevOrder = ok
	}
	// Low cardinality for quantity (Fig 19's point: < 100 distinct).
	if len(quantities) > 50 {
		t.Errorf("quantity cardinality = %d", len(quantities))
	}
	// High cardinality for extendedprice.
	prices := datagen.Counts(rel.Column(pIdx))
	if len(prices) < 10000 {
		t.Errorf("extendedprice cardinality = %d, expected high", len(prices))
	}
}

func TestLineitemOrderkeySparse(t *testing.T) {
	rel := Lineitem(10000, 1, 2)
	keys := datagen.Counts(rel.ColumnByName("l_orderkey"))
	// Lineitems per order must be 1..7.
	for k, c := range keys {
		if c < 1 || c > 7 {
			t.Fatalf("order %d has %d lineitems", k, c)
		}
	}
}

func TestLineitemColumnVariant(t *testing.T) {
	full := Lineitem(2000, 1, 3)
	one := LineitemColumn("l_quantity", 2000, 1, 3)
	if one.Schema.NumColumns() != 1 {
		t.Fatalf("columns = %d", one.Schema.NumColumns())
	}
	wantCol := full.ColumnByName("l_quantity")
	gotCol := one.ColumnByName("l_quantity")
	for i := range wantCol {
		if wantCol[i] != gotCol[i] {
			t.Fatal("one-column variant diverges from full table")
		}
	}
	if one.Schema.RowWidth() != 8 {
		t.Errorf("one-column row width = %d", one.Schema.RowWidth())
	}
}

func TestCustomer(t *testing.T) {
	rel := Customer(5000, 4)
	for i := 0; i < rel.NumRows(); i++ {
		if rel.Value(i, 0) != int64(i+1) {
			t.Fatal("custkey not sequential")
		}
		bal := rel.Value(i, 2)
		if bal < -99999 || bal > 999999 {
			t.Fatalf("acctbal = %d out of range", bal)
		}
		nk := rel.Value(i, 1)
		if nk < 0 || nk > 24 {
			t.Fatalf("nationkey = %d", nk)
		}
	}
}

func TestInflateValue(t *testing.T) {
	rel := Lineitem(10000, 1, 5)
	const spike = 200100
	before := datagen.Counts(rel.ColumnByName("l_extendedprice"))[spike]
	InflateValue(rel, "l_extendedprice", spike, 2000, 6)
	after := datagen.Counts(rel.ColumnByName("l_extendedprice"))[spike]
	if after < 2000 {
		t.Errorf("spike count = %d (was %d), want >= 2000", after, before)
	}
	if rel.NumRows() != 10000 {
		t.Error("inflation changed the row count")
	}
}

func TestInflateValueTooMany(t *testing.T) {
	rel := Lineitem(10, 1, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	InflateValue(rel, "l_extendedprice", 1, 11, 8)
}

func TestSyntheticZipf(t *testing.T) {
	rel := Synthetic(30000, 8, 2048, 1.0, 9)
	if rel.Schema.NumColumns() != 8 {
		t.Fatalf("columns = %d", rel.Schema.NumColumns())
	}
	col := rel.Column(0)
	counts := datagen.Counts(col)
	if len(counts) > 2048 {
		t.Errorf("cardinality %d exceeds 2048", len(counts))
	}
	// Skewed: the most frequent value should hold far more than 1/2048 of
	// the mass.
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/30000 < 5.0/2048 {
		t.Errorf("top value share %.4f too small for Zipf 1.0", float64(max)/30000)
	}
}

func TestSyntheticUniform(t *testing.T) {
	rel := Synthetic(20000, 2, 100, 0, 10)
	counts := datagen.Counts(rel.Column(1))
	for v, c := range counts {
		if c < 100 || c > 320 {
			t.Errorf("value %d count %d far from uniform 200", v, c)
		}
	}
}

func TestRowsPerSFConstants(t *testing.T) {
	if RowsPerSF != 6_000_000 || CustomersPerSF != 150_000 {
		t.Error("TPC-H constants wrong")
	}
}

func TestOneColumnSchemaUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneColumnSchema("nope")
}
