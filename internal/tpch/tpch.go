// Package tpch generates TPC-H-shaped relations for the evaluation: the
// lineitem table (the paper's workhorse, in full 8-numeric-column and
// 1-column variants) and the customer table for the Q1 join experiments.
//
// The generators follow the TPC-H specification's column formulas — the
// point is to reproduce the distributions that drive the paper's results:
//
//   - l_quantity: uniform integers 1..50 (cardinality < 100; the "cheap to
//     analyze" column of Fig 19),
//   - l_extendedprice: quantity × part retail price, a high-cardinality
//     fixed-point column (the "expensive" column of Fig 19 and the skewed
//     column of the Q1 motivation),
//   - l_orderkey: a sparse ascending key (high cardinality, integer),
//   - c_acctbal: uniform fixed-point -999.99..9999.99.
//
// Row counts are decoupled from the nominal scale factor so experiments can
// run scaled-down replicas of the paper's 30–450 M-row tables; the value
// *domains* still follow the given scale factor.
package tpch

import (
	"streamhist/internal/datagen"
	"streamhist/internal/table"
)

// RowsPerSF is the TPC-H lineitem row count per unit scale factor.
const RowsPerSF = 6_000_000

// CustomersPerSF is the TPC-H customer row count per unit scale factor.
const CustomersPerSF = 150_000

// LineitemSchema returns the 8-numeric-column lineitem variant used for the
// Fig 16/17 experiments ("an eight column version of lineitem using the
// first eight numeric columns of the original table").
func LineitemSchema() *table.Schema {
	return table.NewSchema(
		table.Column{Name: "l_orderkey", Type: table.Int64},
		table.Column{Name: "l_partkey", Type: table.Int64},
		table.Column{Name: "l_suppkey", Type: table.Int64},
		table.Column{Name: "l_linenumber", Type: table.Int64},
		table.Column{Name: "l_quantity", Type: table.Int64},
		table.Column{Name: "l_extendedprice", Type: table.Decimal, Scale: 2},
		table.Column{Name: "l_discount", Type: table.Decimal, Scale: 2},
		table.Column{Name: "l_tax", Type: table.Decimal, Scale: 2},
	)
}

// OneColumnSchema returns the single-column lineitem variant of Fig 17.
func OneColumnSchema(column string) *table.Schema {
	full := LineitemSchema()
	idx := full.ColumnIndex(column)
	if idx < 0 {
		panic("tpch: unknown lineitem column " + column)
	}
	return table.NewSchema(full.Column(idx))
}

// CustomerSchema returns the columns of customer used by Q1.
func CustomerSchema() *table.Schema {
	return table.NewSchema(
		table.Column{Name: "c_custkey", Type: table.Int64},
		table.Column{Name: "c_nationkey", Type: table.Int64},
		table.Column{Name: "c_acctbal", Type: table.Decimal, Scale: 2},
	)
}

// retailPriceCents computes p_retailprice for a part key per the TPC-H
// specification: (90000 + ((partkey/10) mod 20001) + 100*(partkey mod 1000))
// in cents.
func retailPriceCents(partkey int64) int64 {
	return 90000 + (partkey/10)%20001 + 100*(partkey%1000)
}

// Lineitem generates rows of the 8-column lineitem variant. The value
// domains scale with sf; the row count is explicit.
func Lineitem(rows int, sf float64, seed uint64) *table.Relation {
	if sf <= 0 {
		sf = 1
	}
	rel := table.NewRelation("lineitem", LineitemSchema())
	rel.Grow(rows)
	rng := datagen.NewRNG(seed)

	maxPart := int64(200_000 * sf)
	if maxPart < 1 {
		maxPart = 1
	}
	maxSupp := int64(10_000 * sf)
	if maxSupp < 1 {
		maxSupp = 1
	}

	orderkey := int64(0)
	lineno := int64(0)
	linesInOrder := int64(0)
	row := make(table.Row, 8)
	for i := 0; i < rows; i++ {
		if lineno == linesInOrder {
			// Start a new order: TPC-H order keys are sparse (8 of every
			// 32 key values are used); each order has 1..7 lineitems.
			orderkey++
			if orderkey%8 == 0 {
				orderkey += 24
			}
			linesInOrder = 1 + rng.Int63n(7)
			lineno = 0
		}
		lineno++
		partkey := 1 + rng.Int63n(maxPart)
		quantity := 1 + rng.Int63n(50)
		row[0] = orderkey
		row[1] = partkey
		row[2] = 1 + rng.Int63n(maxSupp)
		row[3] = lineno
		row[4] = quantity
		row[5] = quantity * retailPriceCents(partkey) // l_extendedprice in cents
		row[6] = rng.Int63n(11)                       // l_discount 0.00..0.10
		row[7] = rng.Int63n(9)                        // l_tax 0.00..0.08
		rel.Append(row)
	}
	return rel
}

// LineitemColumn generates just one column of lineitem as a single-column
// relation (the Fig 17 variant), with the same distribution as the full
// generator.
func LineitemColumn(column string, rows int, sf float64, seed uint64) *table.Relation {
	full := Lineitem(rows, sf, seed)
	idx := full.Schema.ColumnIndex(column)
	if idx < 0 {
		panic("tpch: unknown lineitem column " + column)
	}
	rel := table.NewRelation("lineitem_"+column, OneColumnSchema(column))
	rel.Grow(rows)
	row := make(table.Row, 1)
	for i := 0; i < full.NumRows(); i++ {
		row[0] = full.Value(i, idx)
		rel.Append(row)
	}
	return rel
}

// Customer generates the customer table: sequential keys, uniform account
// balances in [-999.99, 9999.99].
func Customer(rows int, seed uint64) *table.Relation {
	rel := table.NewRelation("customer", CustomerSchema())
	rel.Grow(rows)
	rng := datagen.NewRNG(seed)
	row := make(table.Row, 3)
	for i := 0; i < rows; i++ {
		row[0] = int64(i + 1)
		row[1] = rng.Int63n(25)
		row[2] = rng.Int63n(9999_99+999_99+1) - 999_99
		rel.Append(row)
	}
	return rel
}

// InflateValue rewrites the named column of count randomly chosen rows to
// value — the paper's §2 skew injection ("increased the number of records
// with price 2001 to 120,000"). Rows are chosen without replacement; the
// relation must have at least count rows.
func InflateValue(rel *table.Relation, column string, value int64, count int, seed uint64) {
	idx := rel.Schema.ColumnIndex(column)
	if idx < 0 {
		panic("tpch: unknown column " + column)
	}
	n := rel.NumRows()
	if count > n {
		panic("tpch: cannot inflate more rows than the relation has")
	}
	rng := datagen.NewRNG(seed)
	// Partial Fisher–Yates over row indices picks `count` distinct rows.
	pick := make([]int, n)
	for i := range pick {
		pick[i] = i
	}
	for i := 0; i < count; i++ {
		j := i + rng.Intn(n-i)
		pick[i], pick[j] = pick[j], pick[i]
		rel.SetValue(pick[i], idx, value)
	}
}

// Synthetic builds the Fig 20 table: cols columns, each filled from a
// Zipf distribution with the given skew over the given cardinality.
func Synthetic(rows, cols int, cardinality int64, zipfS float64, seed uint64) *table.Relation {
	sch := &table.Schema{}
	for c := 0; c < cols; c++ {
		sch.Columns = append(sch.Columns, table.Column{
			Name: "c" + string(rune('0'+c)), Type: table.Int64,
		})
	}
	rel := table.NewRelation("synthetic", sch)
	rel.Grow(rows)
	gens := make([]datagen.Generator, cols)
	for c := 0; c < cols; c++ {
		if zipfS == 0 {
			gens[c] = datagen.NewUniform(seed+uint64(c), 0, cardinality)
		} else {
			gens[c] = datagen.NewZipf(seed+uint64(c), 0, cardinality, zipfS, true)
		}
	}
	row := make(table.Row, cols)
	for i := 0; i < rows; i++ {
		for c := 0; c < cols; c++ {
			row[c] = gens[c].Next()
		}
		rel.Append(row)
	}
	return rel
}
