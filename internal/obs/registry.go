package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing instrument. The zero value is ready
// to use; a nil *Counter is a valid no-op, so call sites never need to guard.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n. Negative deltas are ignored — counters
// only go up; use a Gauge for values that move both ways.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the full metric name the counter was registered under.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a settable instrument for values that can rise and fall. Nil
// receivers are valid no-ops.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates the instrument behind a registry entry.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindDist
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindDist:
		return "summary"
	default:
		return "untyped"
	}
}

// metric is one registry entry: a full name (labels included), its base name
// for HELP/TYPE grouping, and exactly one live instrument.
type metric struct {
	name string // full name, e.g. streamhist_server_lane_cycles{lane="3"}
	base string // name with the label block stripped
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	// fn is atomic (not guarded by the registry mutex) because scrapes read
	// it after snapshot() has released the lock; re-registration may race
	// with an in-flight scrape and last-writer-wins is the intended outcome.
	fn   atomic.Pointer[func() float64]
	dist *Distribution
}

// fnValue calls the registered gauge function, or returns 0 when the entry
// was registered but never wired.
func (m *metric) fnValue() float64 {
	if f := m.fn.Load(); f != nil {
		return (*f)()
	}
	return 0
}

// Registry is the process-wide instrument dictionary. Registration
// (get-or-create by name) takes a lock and is meant for wiring time; the
// returned instruments are updated lock-free. A nil *Registry is valid
// everywhere and yields nil (no-op) instruments — that is the "no-op
// registry" the instrumentation-overhead benchmark compares against.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// splitName separates a full metric name into its base name and label block.
// Both parts are validated; registration panics on malformed names because a
// bad name is a programming error that would poison every scrape.
func splitName(full string) (base string, err error) {
	base = full
	if i := strings.IndexByte(full, '{'); i >= 0 {
		if !strings.HasSuffix(full, "}") {
			return "", fmt.Errorf("obs: metric %q: unterminated label block", full)
		}
		base = full[:i]
		if err := validateLabels(full[i+1 : len(full)-1]); err != nil {
			return "", fmt.Errorf("obs: metric %q: %v", full, err)
		}
	}
	if !validMetricName(base) {
		return "", fmt.Errorf("obs: invalid metric name %q", base)
	}
	return base, nil
}

// validMetricName enforces the Prometheus identifier charset.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validateLabels checks a comma-separated name="value" list. Values must be
// pre-escaped by the caller (LabelValue does this).
func validateLabels(s string) error {
	if s == "" {
		return fmt.Errorf("empty label block")
	}
	for _, pair := range splitLabelPairs(s) {
		eq := strings.Index(pair, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		name, val := pair[:eq], pair[eq+1:]
		if !validMetricName(name) || strings.ContainsAny(name, ":") {
			return fmt.Errorf("invalid label name %q", name)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("label %q value must be quoted", name)
		}
	}
	return nil
}

// splitLabelPairs splits on commas that are not inside a quoted value.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// LabelValue escapes a raw string for use inside a label block: backslash,
// double quote, and newline get escaped per the exposition format.
func LabelValue(raw string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(raw)
}

// register get-or-creates the entry for name, enforcing kind agreement. The
// instrument itself is instantiated here, before the entry becomes visible
// to scrapes: an entry published with its instrument still nil would crash a
// concurrent WritePrometheus. scale only applies to distributions.
func (r *Registry) register(name, help string, kind metricKind, scale float64) *metric {
	base, err := splitName(name)
	if err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, base: base, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{name: name}
	case kindGauge:
		m.gauge = &Gauge{name: name}
	case kindDist:
		m.dist = newDistribution(name, scale)
	}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter registered under name (labels allowed in the
// name, e.g. `foo_total{shard="2"}`), creating it on first use. Nil
// registries return nil counters.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, 0).counter
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, 0).gauge
}

// GaugeFunc registers a computed gauge: fn is called at scrape time. The
// function must be safe for concurrent use. Re-registering the same name
// replaces the function (last writer wins), which lets a restarted component
// re-wire its gauges.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.register(name, help, kindGaugeFunc, 0).fn.Store(&fn)
}

// Distribution returns the distribution registered under name, creating it
// on first use with the given exposition scale (multiplied into quantile,
// sum, and bucket values at scrape time — e.g. 1e-9 to record nanoseconds
// and expose seconds). Scale is fixed at first registration.
func (r *Registry) Distribution(name, help string, scale float64) *Distribution {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindDist, scale).dist
}

// SampleKind discriminates what a Sample carries.
type SampleKind uint8

const (
	// SampleCounter marks a cumulative value (timeline consumers take
	// deltas between samples).
	SampleCounter SampleKind = iota
	// SampleGauge marks a point-in-time value (gauges and gauge funcs).
	SampleGauge
	// SampleDist marks a distribution; Dist is set instead of Value.
	SampleDist
)

// Sample is one instrument's scrape-time reading, the unit the timeline
// sampler consumes. Counters and gauges carry Value; distributions carry the
// live *Distribution so the consumer can snapshot its bins.
type Sample struct {
	Name string
	Kind SampleKind
	// Value is the instrument reading for counters, gauges, and gauge funcs.
	Value float64
	// Dist is the live distribution for SampleDist entries.
	Dist *Distribution
}

// Samples appends one Sample per registered instrument to buf (reusing its
// capacity) and returns the extended slice, in registration order. It takes
// the registration lock only to copy the entry list; the instrument reads
// are the same lock-free atomics a scrape performs. A nil registry returns
// buf unchanged.
func (r *Registry) Samples(buf []Sample) []Sample {
	if r == nil {
		return buf
	}
	for _, m := range r.snapshot() {
		switch m.kind {
		case kindCounter:
			buf = append(buf, Sample{Name: m.name, Kind: SampleCounter, Value: float64(m.counter.Value())})
		case kindGauge:
			buf = append(buf, Sample{Name: m.name, Kind: SampleGauge, Value: float64(m.gauge.Value())})
		case kindGaugeFunc:
			buf = append(buf, Sample{Name: m.name, Kind: SampleGauge, Value: m.fnValue()})
		case kindDist:
			buf = append(buf, Sample{Name: m.name, Kind: SampleDist, Dist: m.dist})
		}
	}
	return buf
}

// snapshot returns the ordered metric list for the exposition writer.
func (r *Registry) snapshot() []*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*metric, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// sortedForExposition groups metrics by base name (stable within a group by
// registration order) so HELP/TYPE headers are emitted exactly once per
// family, as the exposition format requires.
func sortedForExposition(ms []*metric) []*metric {
	firstSeen := make(map[string]int, len(ms))
	for i, m := range ms {
		if _, ok := firstSeen[m.base]; !ok {
			firstSeen[m.base] = i
		}
	}
	out := make([]*metric, len(ms))
	copy(out, ms)
	sort.SliceStable(out, func(i, j int) bool {
		return firstSeen[out[i].base] < firstSeen[out[j].base]
	})
	return out
}
