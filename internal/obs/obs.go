package obs

import (
	"context"
	"log/slog"

	"streamhist/internal/hwprof"
)

// Obs bundles the observability facilities a component needs: the metrics
// registry, the scan tracer, the hardware-cycle profiler, and a structured
// logger. A nil *Obs is valid everywhere (all accessors degrade to no-ops),
// so components accept one without guarding.
type Obs struct {
	Reg    *Registry
	Trace  *Tracer
	Prof   *hwprof.Profiler
	Log    *slog.Logger
	Flight *FlightRecorder
}

// New returns a fully wired Obs: fresh registry, a DefaultTraceRing-deep
// tracer, a hardware-cycle profiler, an always-on flight recorder, and a
// no-op logger (replace Log to get output).
func New() *Obs {
	return &Obs{
		Reg:    NewRegistry(),
		Trace:  NewTracer(0),
		Prof:   hwprof.New(),
		Log:    NopLogger(),
		Flight: NewFlightRecorder(0, 0),
	}
}

// Registry returns the bundle's registry; nil for a nil bundle.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the bundle's tracer; nil for a nil bundle.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Profiler returns the bundle's hardware-cycle profiler; nil for a nil
// bundle (a nil profiler is itself a valid no-op).
func (o *Obs) Profiler() *hwprof.Profiler {
	if o == nil {
		return nil
	}
	return o.Prof
}

// FlightRec returns the bundle's scan flight recorder; nil for a nil bundle
// (a nil recorder is itself a valid no-op).
func (o *Obs) FlightRec() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// Logger returns the bundle's logger, or the shared no-op logger when the
// bundle (or its Log field) is nil — callers can always log unconditionally.
func (o *Obs) Logger() *slog.Logger {
	if o == nil || o.Log == nil {
		return nopLogger
	}
	return o.Log
}

// nopHandler drops everything; Enabled short-circuits before any attribute
// work happens, so an unconfigured logger costs one interface call.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// NopLogger returns a logger that discards every record.
func NopLogger() *slog.Logger { return nopLogger }
