package obs

import (
	"strconv"
	"strings"
	"testing"
)

// buildTestRegistry wires one of every instrument kind, including a labeled
// family spread over two entries, the way the server registers lane gauges.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("streamhist_expo_scans_total", "Completed scans.").Add(42)
	r.Gauge(`streamhist_expo_lane_cycles{lane="0"}`, "Per-lane cycles.").Set(100)
	r.Gauge(`streamhist_expo_lane_cycles{lane="1"}`, "Per-lane cycles.").Set(200)
	r.GaugeFunc("streamhist_expo_uptime", "Computed gauge.", func() float64 { return 1.5 })
	d := r.Distribution("streamhist_expo_latency_seconds", "Scan latency.", 1e-9)
	for i := int64(1); i <= 1000; i++ {
		d.Observe(i * 1e6) // 1ms..1s in ns
	}
	return r
}

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

func TestWritePrometheusShape(t *testing.T) {
	out := scrape(t, buildTestRegistry())

	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("our own exposition does not validate: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE streamhist_expo_scans_total counter\n",
		"streamhist_expo_scans_total 42\n",
		"# TYPE streamhist_expo_lane_cycles gauge\n",
		"streamhist_expo_lane_cycles{lane=\"0\"} 100\n",
		"streamhist_expo_lane_cycles{lane=\"1\"} 200\n",
		"streamhist_expo_uptime 1.5\n",
		"# TYPE streamhist_expo_latency_seconds summary\n",
		"streamhist_expo_latency_seconds{quantile=\"0.5\"} ",
		"streamhist_expo_latency_seconds{quantile=\"0.99\"} ",
		"streamhist_expo_latency_seconds_count 1000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per family even though the lane
	// family has two member time series.
	if n := strings.Count(out, "# TYPE streamhist_expo_lane_cycles "); n != 1 {
		t.Fatalf("labeled family emitted %d TYPE headers, want 1", n)
	}
	// A family's samples must be contiguous under its header.
	lane0 := strings.Index(out, `streamhist_expo_lane_cycles{lane="0"}`)
	lane1 := strings.Index(out, `streamhist_expo_lane_cycles{lane="1"}`)
	typeIdx := strings.Index(out, "# TYPE streamhist_expo_lane_cycles ")
	if !(typeIdx < lane0 && lane0 < lane1) {
		t.Fatal("labeled family samples not grouped under their TYPE header")
	}
}

// TestWritePrometheusSummaryScale checks the ns->seconds exposition scale:
// observations recorded in nanoseconds come out as seconds in quantile and
// sum samples.
func TestWritePrometheusSummaryScale(t *testing.T) {
	out := scrape(t, buildTestRegistry())
	var p50 float64
	var sum float64
	for _, line := range strings.Split(out, "\n") {
		if v, ok := strings.CutPrefix(line, `streamhist_expo_latency_seconds{quantile="0.5"} `); ok {
			p50, _ = strconv.ParseFloat(v, 64)
		}
		if v, ok := strings.CutPrefix(line, "streamhist_expo_latency_seconds_sum "); ok {
			sum, _ = strconv.ParseFloat(v, 64)
		}
	}
	// Uniform 1ms..1s: the median is ~0.5s and the sum ~500.5s.
	if p50 < 0.4 || p50 > 0.6 {
		t.Fatalf("scaled p50 = %v, want ~0.5s", p50)
	}
	if sum < 480 || sum > 520 {
		t.Fatalf("scaled sum = %v, want ~500.5s", sum)
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	good := strings.Join([]string{
		"# HELP a_total docs",
		"# TYPE a_total counter",
		"a_total 1",
		`b{l="x",m="y"} 2.5`,
		"c 3 1712345678",
		"d +Inf",
		"# arbitrary comment",
		"",
	}, "\n")
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no samples":          "# TYPE a counter\n",
		"bad metric name":     "9bad 1\n",
		"missing value":       "lonely\n",
		"unparseable value":   "a one\n",
		"bad timestamp":       "a 1 soon\n",
		"unterminated labels": "a{l=\"x\" 1\n",
		"unquoted label":      "a{l=x} 1\n",
		"bad TYPE":            "# TYPE a sometype\na 1\n",
		"malformed HELP":      "# HELP 9bad docs\na 1\n",
		"too many fields":     "a 1 2 3\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition([]byte(doc)); err == nil {
			t.Errorf("%s: %q validated, want error", name, doc)
		}
	}
}
