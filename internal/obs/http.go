package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler mounts the live introspection surface over an Obs bundle:
//
//	/metrics        Prometheus text exposition of every registered metric
//	/healthz        200 "ok" (or 503 + reason when healthy() returns an error)
//	/scans          recent scan traces as JSON, newest first (?n=K, default 32)
//	/traces         one assembled distributed trace as JSON (?id=<trace id>,
//	                hex or decimal): client-reported spans stitched with every
//	                server scan that continued the trace, redials included
//	/debug/tracez   the same assembled trace as Chrome trace-event JSON,
//	                loadable in Perfetto / chrome://tracing (?id=<trace id>)
//	/events         flight-recorder wide events as JSON, newest first
//	                (?n=K, default 64); tail-sampled, anomalous scans always kept
//	/debug/hwprof   simulated-hardware cycle profile in pprof wire format
//	                (?seconds=N for a delta window, ?format=text for the
//	                line-oriented form histcli's renderers consume)
//	/debug/pprof/*  the standard Go profiling endpoints
//
// healthy may be nil (always healthy). The handler holds no locks across
// requests and is safe to serve concurrently with the instrumented workload.
func Handler(o *Obs, healthy func() error) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry().WritePrometheus(w)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("/scans", func(w http.ResponseWriter, r *http.Request) {
		n := 32
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "scans: n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		traces := o.Tracer().Recent(n)
		if traces == nil {
			traces = []*ScanTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(traces)
	})

	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		at, ok := assembleParam(w, r, o)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(at)
	})

	mux.HandleFunc("/debug/tracez", func(w http.ResponseWriter, r *http.Request) {
		at, ok := assembleParam(w, r, o)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		WriteTraceEvents(w, at)
	})

	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 64
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "events: n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		events := o.FlightRec().Recent(n)
		if events == nil {
			events = []ScanEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(events)
	})

	mux.HandleFunc("/debug/hwprof", func(w http.ResponseWriter, r *http.Request) {
		p := o.Profiler()
		if p == nil {
			http.Error(w, "hwprof: no profiler wired", http.StatusServiceUnavailable)
			return
		}
		var seconds int
		if q := r.URL.Query().Get("seconds"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "hwprof: seconds must be a non-negative integer", http.StatusBadRequest)
				return
			}
			seconds = v
		}
		prof := p.Snapshot()
		if seconds > 0 {
			// Delta profile: what accumulated over the window, in the style
			// of /debug/pprof/profile?seconds=N. The wait is bounded by the
			// request context so a dropped client frees the handler.
			before := prof
			select {
			case <-time.After(time.Duration(seconds) * time.Second):
			case <-r.Context().Done():
				return
			}
			prof = p.Snapshot().Sub(before)
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			b, _ := prof.MarshalText()
			w.Write(b)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="hwprof.pb.gz"`)
		prof.WritePprof(w)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// ParseTraceID parses a trace ID as printed by the tools: canonical
// zero-padded hex (%016x), 0x-prefixed hex, or plain decimal.
func ParseTraceID(s string) (uint64, error) {
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return v, nil
	}
	return strconv.ParseUint(s, 16, 64)
}

// assembleParam resolves the ?id= query of /traces and /debug/tracez into
// an assembled trace, writing the error response (400 malformed, 404
// unknown) itself when it cannot.
func assembleParam(w http.ResponseWriter, r *http.Request, o *Obs) (*AssembledTrace, bool) {
	q := r.URL.Query().Get("id")
	if q == "" {
		http.Error(w, "traces: missing id parameter", http.StatusBadRequest)
		return nil, false
	}
	id, err := ParseTraceID(q)
	if err != nil || id == 0 {
		http.Error(w, "traces: id must be a hex or decimal trace id", http.StatusBadRequest)
		return nil, false
	}
	at := o.Tracer().Assemble(id)
	if at == nil {
		http.Error(w, "traces: unknown trace id", http.StatusNotFound)
		return nil, false
	}
	return at, true
}
