package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp, body
}

func TestHandlerEndpoints(t *testing.T) {
	o := New()
	o.Reg.Counter("streamhist_httptest_total", "docs").Add(11)
	tt := o.Trace.Start(42, "lineitem", "l_quantity", 4)
	tt.End(tt.Begin("accept"), 0)
	o.Trace.Publish(tt)

	var unhealthy atomic.Bool
	srv := httptest.NewServer(Handler(o, func() error {
		if unhealthy.Load() {
			return errors.New("drain pool saturated")
		}
		return nil
	}))
	defer srv.Close()

	resp, body := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}
	if !strings.Contains(string(body), "streamhist_httptest_total 11\n") {
		t.Fatalf("/metrics missing registered counter:\n%s", body)
	}

	resp, body = get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	unhealthy.Store(true)
	resp, body = get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "drain pool saturated") {
		t.Fatalf("unhealthy /healthz = %d %q", resp.StatusCode, body)
	}

	resp, body = get(t, srv, "/scans")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/scans status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/scans content type %q", ct)
	}
	var traces []ScanTrace
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatalf("/scans JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].ID != 42 || traces[0].Table != "lineitem" {
		t.Fatalf("/scans traces: %+v", traces)
	}

	if resp, _ := get(t, srv, "/scans?n=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/scans?n=bogus status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, srv, "/scans?n=-3"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/scans?n=-3 status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, srv, "/scans?n=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/scans?n=0 status %d, want 400", resp.StatusCode)
	}
	// A huge n clamps to the ring depth rather than overallocating or erroring.
	resp, body = get(t, srv, "/scans?n=1000000000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/scans?n=1e9 status %d, want 200", resp.StatusCode)
	}
	traces = nil
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatalf("/scans?n=1e9 JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 {
		t.Fatalf("/scans?n=1e9 returned %d traces, want the 1 published", len(traces))
	}

	if resp, _ := get(t, srv, "/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

// TestHandlerNilHealthAndEmptyState checks the degenerate wiring: no health
// probe, no traces, empty registry — the endpoints still answer (an empty
// registry legitimately fails exposition validation, so /metrics is just
// checked for 200).
func TestHandlerNilHealthAndEmptyState(t *testing.T) {
	srv := httptest.NewServer(Handler(New(), nil))
	defer srv.Close()

	if resp, _ := get(t, srv, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with nil probe = %d", resp.StatusCode)
	}
	resp, body := get(t, srv, "/scans")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("empty /scans = %d %q, want 200 []", resp.StatusCode, body)
	}
	if resp, _ := get(t, srv, "/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("empty /metrics = %d", resp.StatusCode)
	}
}

// TestHandlerHwprofEdgeCases: the profile endpoint must reject malformed
// seconds values, serve an empty-but-valid profile before any scan ran, and
// answer 503 (not panic) when the bundle has no profiler wired at all.
func TestHandlerHwprofEdgeCases(t *testing.T) {
	srv := httptest.NewServer(Handler(New(), nil))
	defer srv.Close()

	for _, q := range []string{"?seconds=bogus", "?seconds=-1"} {
		if resp, body := get(t, srv, "/debug/hwprof"+q); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/debug/hwprof%s = %d %q, want 400", q, resp.StatusCode, body)
		}
	}
	resp, body := get(t, srv, "/debug/hwprof?format=text")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/hwprof on idle profiler = %d %q", resp.StatusCode, body)
	}
	if !strings.HasPrefix(string(body), "# hwprof/1") {
		t.Fatalf("idle text profile missing header: %q", firstOf(body))
	}

	noProf := httptest.NewServer(Handler(&Obs{Reg: NewRegistry(), Trace: NewTracer(8)}, nil))
	defer noProf.Close()
	if resp, body := get(t, noProf, "/debug/hwprof"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/debug/hwprof with no profiler = %d %q, want 503", resp.StatusCode, body)
	}
}

func firstOf(b []byte) string {
	if i := strings.IndexByte(string(b), '\n'); i >= 0 {
		return string(b[:i])
	}
	return string(b)
}
