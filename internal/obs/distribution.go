package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"streamhist/internal/bins"
	"streamhist/internal/hist"
)

// Distribution geometry: log-linear bins, the classic HDR layout. Values
// below 2·subBuckets are recorded exactly; above that, each power-of-two
// octave is sliced into subBuckets linear sub-bins, bounding the relative
// quantisation error at 1/subBuckets (6.25%) across the whole int64 range.
// The result is a fixed array of atomic counters — the same "binned sorted
// view in bounded memory" shape as the paper's Binner region, just keyed by
// magnitude instead of column value — over which the repository's own
// equi-depth construction computes quantiles at scrape time.
const (
	distSubBits     = 4
	distSubBuckets  = 1 << distSubBits // 16
	distFirstOctave = distSubBits + 1  // values < 1<<distFirstOctave are exact
	distNumBins     = 2*distSubBuckets + (63-distFirstOctave)*distSubBuckets
)

// distIndex maps a non-negative value to its bin.
func distIndex(v int64) int {
	if v < 2*distSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= distFirstOctave
	sub := (v >> uint(exp-distSubBits)) - distSubBuckets
	return 2*distSubBuckets + (exp-distFirstOctave)*distSubBuckets + int(sub)
}

// distLow returns the lowest value mapping to bin i — the representative the
// quantile machinery uses. Monotonically increasing in i.
func distLow(i int) int64 {
	if i < 2*distSubBuckets {
		return int64(i)
	}
	i -= 2 * distSubBuckets
	exp := distFirstOctave + i/distSubBuckets
	sub := int64(i % distSubBuckets)
	base := int64(1) << uint(exp)
	return base + sub*(base>>distSubBits)
}

// Distribution is a lock-free streaming summary of an observed quantity
// (latency, size): Observe costs three atomic adds and zero allocations.
// Quantiles are produced on demand by running the recorded bins through the
// hist package's equi-depth construction — the paper's own algorithm
// summarising the system's own telemetry. Nil receivers no-op.
type Distribution struct {
	name  string
	scale float64 // exposition multiplier (1e-9: observe ns, expose seconds)

	count atomic.Int64
	sum   atomic.Int64
	bin   [distNumBins]atomic.Int64

	// Exemplar slot, strictly off the Observe hot path: only
	// ObserveWithExemplar (called at most once per scan, never per page)
	// takes the mutex. See Exemplar for the retention policy.
	exMu sync.Mutex
	ex   Exemplar
}

// Exemplar links an observed tail value to the distributed trace that
// produced it, in the OpenMetrics sense: a /metrics scrape of a latency
// summary can jump straight to the trace behind its p99.
type Exemplar struct {
	// Value is the observed value in pre-scale units (the exposition
	// multiplies by Scale, same as the quantile samples).
	Value int64
	// TraceID is the distributed trace the observation belonged to.
	TraceID uint64
	// WhenNS is when the exemplar was recorded (unix nanoseconds).
	WhenNS int64
}

// exemplarTTL bounds how long a large exemplar shadows smaller, fresher
// ones: after this window any traced observation may take the slot, so the
// exposed exemplar always points at a recent trace even when the historic
// tail was worse.
const exemplarTTL = 60 * time.Second

// ObserveWithExemplar records v like Observe and offers (v, traceID) to the
// exemplar slot. Retention policy: the slot keeps the largest traced value
// seen recently — a candidate replaces the incumbent when its value is at
// least as large, or when the incumbent is older than a minute. Zero
// traceIDs record the value but never touch the slot. Nil-safe.
func (d *Distribution) ObserveWithExemplar(v int64, traceID uint64) {
	d.Observe(v)
	if d == nil || traceID == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	now := time.Now().UnixNano()
	d.exMu.Lock()
	if v >= d.ex.Value || d.ex.TraceID == 0 || now-d.ex.WhenNS > int64(exemplarTTL) {
		d.ex = Exemplar{Value: v, TraceID: traceID, WhenNS: now}
	}
	d.exMu.Unlock()
}

// Exemplar returns the current exemplar and whether one is set.
func (d *Distribution) Exemplar() (Exemplar, bool) {
	if d == nil {
		return Exemplar{}, false
	}
	d.exMu.Lock()
	ex := d.ex
	d.exMu.Unlock()
	return ex, ex.TraceID != 0
}

func newDistribution(name string, scale float64) *Distribution {
	if scale == 0 {
		scale = 1
	}
	return &Distribution{name: name, scale: scale}
}

// Observe records one value. Negative values clamp to zero.
func (d *Distribution) Observe(v int64) {
	if d == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	d.bin[distIndex(v)].Add(1)
	d.count.Add(1)
	d.sum.Add(v)
}

// Count returns how many values have been observed.
func (d *Distribution) Count() int64 {
	if d == nil {
		return 0
	}
	return d.count.Load()
}

// Sum returns the total of all observed values (pre-scale units).
func (d *Distribution) Sum() int64 {
	if d == nil {
		return 0
	}
	return d.sum.Load()
}

// Histogram builds an equi-depth histogram over the recorded bins using the
// hist package — the same construction the accelerator's Histogram module
// runs over the Binner's region. Returns nil when nothing was observed.
// Under concurrent Observes the view is a consistent-enough snapshot for
// monitoring: each bin is read once, atomically.
func (d *Distribution) Histogram(buckets int) *hist.Histogram {
	if d == nil {
		return nil
	}
	nz := make([]bins.Bin, 0, 64)
	for i := 0; i < distNumBins; i++ {
		if n := d.bin[i].Load(); n > 0 {
			nz = append(nz, bins.Bin{Value: distLow(i), Count: n})
		}
	}
	if len(nz) == 0 {
		return nil
	}
	return hist.BuildEquiDepthFromBins(nz, buckets)
}

// Quantile returns the approximate value (pre-scale units) at q ∈ [0,1], or
// 0 when nothing was observed yet.
func (d *Distribution) Quantile(q float64) int64 {
	h := d.Histogram(distQuantileBuckets)
	if h == nil {
		return 0
	}
	v, err := h.Quantile(q)
	if err != nil {
		return 0
	}
	return v
}

// DistNumBins is the fixed bin count of every Distribution: the size of the
// counts slice CountsInto fills. Exported for the timeline's window
// accumulators, which mirror the same geometry.
const DistNumBins = distNumBins

// DistBinLow returns the lowest value mapping to bin i — the representative
// value the timeline's window-merged quantile reconstruction keys its
// run-length bins by. Monotonically increasing in i.
func DistBinLow(i int) int64 { return distLow(i) }

// CountsInto copies the distribution's raw per-bin counters into buf, which
// must have length DistNumBins, and returns the observation count and sum at
// the same moment (each bin read once, atomically — the usual
// consistent-enough monitoring snapshot). Nil receivers zero the buffer.
func (d *Distribution) CountsInto(buf []int64) (count, sum int64) {
	if d == nil {
		for i := range buf {
			buf[i] = 0
		}
		return 0, 0
	}
	for i := 0; i < distNumBins && i < len(buf); i++ {
		buf[i] = d.bin[i].Load()
	}
	return d.count.Load(), d.sum.Load()
}

// Scale returns the exposition multiplier the distribution was registered
// with (e.g. 1e-9 for observe-nanoseconds-expose-seconds).
func (d *Distribution) Scale() float64 {
	if d == nil || d.scale == 0 {
		return 1
	}
	return d.scale
}

// distQuantileBuckets is the equi-depth resolution used for scrape-time
// quantiles; 64 buckets bounds per-bucket mass at ~1.6% of observations.
const distQuantileBuckets = 64

// distQuantiles are the quantiles every distribution exposes on /metrics.
var distQuantiles = []float64{0.5, 0.9, 0.99}
