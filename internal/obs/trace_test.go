package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTracer(8)
	tt := tr.Start(7, "lineitem", "l_quantity", 6)
	if tt.ID != 7 || tt.Table != "lineitem" || tt.Column != "l_quantity" {
		t.Fatalf("trace identity: %+v", tt)
	}
	if tt.StartNS == 0 {
		t.Fatal("trace start not stamped")
	}

	i := tt.Begin("accept")
	time.Sleep(2 * time.Millisecond)
	tt.End(i, 123)
	sp := tt.Spans[i]
	if sp.Name != "accept" || sp.Lane != -1 {
		t.Fatalf("wall span: %+v", sp)
	}
	if sp.DurNS < int64(time.Millisecond) {
		t.Fatalf("span duration %dns, slept 2ms", sp.DurNS)
	}
	if sp.HWCycles != 123 {
		t.Fatalf("span cycles = %d, want 123", sp.HWCycles)
	}
	if sp.StartNS < tt.StartNS {
		t.Fatal("span started before its trace")
	}

	// End on a bad index must not panic or touch existing spans.
	tt.End(-1, 1)
	tt.End(99, 1)
	if len(tt.Spans) != 1 {
		t.Fatalf("bad End calls changed the span slab: %d spans", len(tt.Spans))
	}

	// AddSpan with explicit endpoints (the lane-join path).
	tt.AddSpan("lane", 2, tt.StartNS+10, tt.StartNS+50, 77, false)
	lane := tt.Spans[1]
	if lane.Lane != 2 || lane.DurNS != 40 || lane.HWCycles != 77 {
		t.Fatalf("lane span: %+v", lane)
	}
	// AddSpan with zero endpoints falls back to the trace window.
	tt.AddSpan("lane", 3, 0, 0, 0, true)
	ghost := tt.Spans[2]
	if ghost.StartNS != tt.StartNS || ghost.DurNS < 0 || !ghost.Retired {
		t.Fatalf("fallback span: %+v", ghost)
	}

	tr.Publish(tt)
	if tt.WallNS <= 0 {
		t.Fatal("publish did not stamp the wall clock")
	}
	if got := tr.Total(); got != 1 {
		t.Fatalf("Total = %d, want 1", got)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(4)
	for id := uint64(1); id <= 6; id++ {
		tr.Publish(tr.Start(id, "t", "", 4))
	}
	if got := tr.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d traces, ring holds 4", len(recent))
	}
	for i, want := range []uint64{6, 5, 4, 3} {
		if recent[i].ID != want {
			t.Fatalf("Recent[%d].ID = %d, want %d (newest first)", i, recent[i].ID, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].ID != 6 || got[1].ID != 5 {
		t.Fatalf("Recent(2) = %v", got)
	}
	if tr.Recent(0) != nil || tr.Recent(-1) != nil {
		t.Fatal("Recent with n<=0 returned traces")
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	for id := uint64(1); id <= DefaultTraceRing+5; id++ {
		tr.Publish(tr.Start(id, "t", "", 4))
	}
	if got := len(tr.Recent(DefaultTraceRing * 2)); got != DefaultTraceRing {
		t.Fatalf("default ring held %d traces, want %d", got, DefaultTraceRing)
	}
}

// TestTraceJSONShape pins the wire names the /scans endpoint (and the README
// examples) promise.
func TestTraceJSONShape(t *testing.T) {
	tr := NewTracer(2)
	tt := tr.Start(1, "lineitem", "l_tax", 4)
	tt.End(tt.Begin("accept"), 0)
	tt.AddSpan("lane", 0, tt.StartNS, tt.StartNS+5, 9, true)
	tt.AccelCycles = 99
	tt.Degraded = true
	tr.Publish(tt)

	raw, err := json.Marshal(tr.Recent(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"id", "table", "column", "start_ns", "wall_ns", "accel_cycles", "refreshed", "degraded", "spans"} {
		if _, ok := m[key]; !ok {
			t.Errorf("trace JSON missing %q: %s", key, raw)
		}
	}
	spans := m["spans"].([]any)
	lane := spans[1].(map[string]any)
	for _, key := range []string{"name", "lane", "start_ns", "dur_ns", "hw_cycles", "retired"} {
		if _, ok := lane[key]; !ok {
			t.Errorf("span JSON missing %q: %s", key, raw)
		}
	}
}
