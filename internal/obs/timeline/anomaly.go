package timeline

import (
	"fmt"
	"time"

	"streamhist/internal/obs"
)

// DetectorKind selects a detector's evaluation rule.
type DetectorKind uint8

const (
	// KindDrop trips when the mean of the last Window base windows falls
	// below Threshold × the mean of the Trailing windows before them — the
	// burn-rate shape: a short window compared against a long baseline.
	// MinActivity gates it so an idle system never "drops".
	KindDrop DetectorKind = iota
	// KindRatio trips when sum(Metric deltas)/sum(Denom deltas) over the last
	// Window base windows exceeds Threshold (denominator must be positive).
	KindRatio
	// KindNonZero trips when the last Window base windows contain any
	// activity at all on Metric — for counters whose every increment is bad
	// news (WAL drops).
	KindNonZero
	// KindNotEquals trips when Metric's latest sealed gauge reading differs
	// from Want — for invariant gauges like hwprof consistency.
	KindNotEquals
	// KindAbove trips when Metric's latest sealed gauge reading exceeds
	// Threshold — for age/backlog gauges.
	KindAbove
)

func (k DetectorKind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindRatio:
		return "ratio"
	case KindNonZero:
		return "nonzero"
	case KindNotEquals:
		return "notequals"
	case KindAbove:
		return "above"
	default:
		return "unknown"
	}
}

// Detector is one anomaly rule evaluated over the timeline's base tier after
// every sealed window.
type Detector struct {
	Name   string
	Kind   DetectorKind
	Metric string
	// Denom is the denominator metric for KindRatio.
	Denom string
	// Window is how many recent base windows the rule looks at (default 1).
	Window int
	// Trailing is the baseline length for KindDrop (default 6×Window).
	Trailing int
	// Threshold is the trip level: the drop fraction for KindDrop, the ratio
	// for KindRatio, the gauge level for KindAbove.
	Threshold float64
	// Want is the required value for KindNotEquals.
	Want float64
	// MinActivity gates KindDrop: the trailing mean must be at least this
	// large for a drop to be meaningful.
	MinActivity float64
}

// DefaultDetectors is the stock rule set, covering the failure modes the
// rest of the repo can produce: throughput collapse, fault-path pressure,
// accelerator-model drift, and durability backlog.
func DefaultDetectors() []Detector {
	return []Detector{
		{
			Name: "throughput-drop", Kind: KindDrop,
			Metric: "streamhist_server_bytes_moved_total",
			Window: 5, Trailing: 30, Threshold: 0.3, MinActivity: 4096,
		},
		{
			Name: "quarantine-ratio", Kind: KindRatio,
			Metric: "streamhist_server_pages_quarantined_total",
			Denom:  "streamhist_server_pages_moved_total",
			Window: 10, Threshold: 0.05,
		},
		{
			Name: "degraded-ratio", Kind: KindRatio,
			Metric: "streamhist_server_scans_degraded_total",
			Denom:  "streamhist_server_scans_served_total",
			Window: 10, Threshold: 0.5,
		},
		{
			Name: "hwprof-consistency", Kind: KindNotEquals,
			Metric: "streamhist_hwprof_consistency", Want: 1,
		},
		{
			Name: "wal-drops", Kind: KindNonZero,
			Metric: "streamhist_durable_wal_dropped_total", Window: 1,
		},
		{
			Name: "checkpoint-age", Kind: KindAbove,
			Metric:    "streamhist_durable_checkpoint_age_seconds",
			Threshold: 300,
		},
	}
}

// Anomaly is one detector trip: the verdict served by /anomalies, decorated
// onto /healthz, and written at the head of a debug bundle.
type Anomaly struct {
	TimeMS    int64   `json:"t_ms"`
	Detector  string  `json:"detector"`
	Kind      string  `json:"kind"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
	// Bundle is the debug-bundle directory this trip produced, if any.
	Bundle string `json:"bundle,omitempty"`
}

// engine evaluates detectors after every sealed base window, debounces trips
// per detector, keeps a bounded anomaly ring, counts trips in the registry,
// and triggers debug bundles. It runs under the timeline's mutex.
type engine struct {
	t    *Timeline
	dets []Detector

	lastTrip map[string]time.Time
	ring     []Anomaly
	next     int
	n        int
	trips    uint64

	counters  map[string]*obs.Counter
	bundleSeq uint64
}

func newEngine(t *Timeline, dets []Detector) *engine {
	e := &engine{
		t:        t,
		dets:     make([]Detector, 0, len(dets)),
		lastTrip: make(map[string]time.Time, len(dets)),
		ring:     make([]Anomaly, defaultAnomalyRing),
		counters: make(map[string]*obs.Counter, len(dets)),
	}
	for _, d := range dets {
		if d.Window <= 0 {
			d.Window = 1
		}
		if d.Kind == KindDrop && d.Trailing <= 0 {
			d.Trailing = 6 * d.Window
		}
		e.dets = append(e.dets, d)
		e.counters[d.Name] = t.cfg.Registry.Counter(
			fmt.Sprintf(`streamhist_anomaly_trips_total{detector="%s"}`, obs.LabelValue(d.Name)),
			"Anomaly detector trips.")
	}
	return e
}

// evaluate runs every detector against the freshly sealed base windows.
// Caller holds t.mu.
func (e *engine) evaluate(now time.Time) {
	for i := range e.dets {
		d := &e.dets[i]
		if last, ok := e.lastTrip[d.Name]; ok && now.Sub(last) < e.t.cfg.Cooldown {
			continue
		}
		a, tripped := e.check(d)
		if !tripped {
			continue
		}
		a.TimeMS = now.UnixMilli()
		e.lastTrip[d.Name] = now
		e.trips++
		e.counters[d.Name].Inc()
		e.t.writeBundleLocked(&a, now)
		e.ring[e.next] = a
		e.next = (e.next + 1) % len(e.ring)
		if e.n < len(e.ring) {
			e.n++
		}
		e.t.cfg.Log.Warn("anomaly detected",
			"detector", a.Detector, "metric", a.Metric,
			"value", a.Value, "threshold", a.Threshold, "bundle", a.Bundle)
	}
}

func (e *engine) check(d *Detector) (Anomaly, bool) {
	a := Anomaly{Detector: d.Name, Kind: d.Kind.String(), Metric: d.Metric, Threshold: d.Threshold}
	switch d.Kind {
	case KindDrop:
		vals := e.t.lastVals(d.Metric, d.Window+d.Trailing)
		if len(vals) < d.Window+d.Trailing {
			return a, false // not enough history for a baseline yet
		}
		trailing := mean(vals[:d.Trailing])
		recent := mean(vals[d.Trailing:])
		if trailing < d.MinActivity {
			return a, false
		}
		if recent >= d.Threshold*trailing {
			return a, false
		}
		a.Value = recent / trailing
		a.Message = fmt.Sprintf("%s: recent mean %.1f is %.0f%% of trailing mean %.1f (trip below %.0f%%)",
			d.Metric, recent, 100*a.Value, trailing, 100*d.Threshold)
		return a, true
	case KindRatio:
		num := sum(e.t.lastVals(d.Metric, d.Window))
		den := sum(e.t.lastVals(d.Denom, d.Window))
		if den <= 0 {
			return a, false
		}
		ratio := num / den
		if ratio <= d.Threshold {
			return a, false
		}
		a.Value = ratio
		a.Message = fmt.Sprintf("%s/%s = %.3f over last %d windows (trip above %.3f)",
			d.Metric, d.Denom, ratio, d.Window, d.Threshold)
		return a, true
	case KindNonZero:
		v := sum(e.t.lastVals(d.Metric, d.Window))
		if v <= 0 {
			return a, false
		}
		a.Value = v
		a.Message = fmt.Sprintf("%s: %.0f in last %d windows (any is a trip)", d.Metric, v, d.Window)
		return a, true
	case KindNotEquals:
		vals := e.t.lastVals(d.Metric, 1)
		if len(vals) == 0 || vals[0] == d.Want {
			return a, false
		}
		a.Value = vals[0]
		a.Threshold = d.Want
		a.Message = fmt.Sprintf("%s = %g, want %g", d.Metric, vals[0], d.Want)
		return a, true
	case KindAbove:
		vals := e.t.lastVals(d.Metric, 1)
		if len(vals) == 0 || vals[0] <= d.Threshold {
			return a, false
		}
		a.Value = vals[0]
		a.Message = fmt.Sprintf("%s = %g (trip above %g)", d.Metric, vals[0], d.Threshold)
		return a, true
	}
	return a, false
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return sum(vals) / float64(len(vals))
}

func sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// Anomalies returns up to n recorded trips, newest first. Nil-safe.
func (t *Timeline) Anomalies(n int) []Anomaly {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.eng
	if n > e.n {
		n = e.n
	}
	out := make([]Anomaly, 0, n)
	newest := e.n - 1
	if e.n == len(e.ring) {
		newest = (e.next - 1 + len(e.ring)) % len(e.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, e.ring[(newest-i+2*len(e.ring))%len(e.ring)])
	}
	return out
}

// Trips returns the total number of detector trips. Nil-safe.
func (t *Timeline) Trips() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eng.trips
}
