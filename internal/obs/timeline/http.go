package timeline

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"streamhist/internal/obs"
)

// Handler extends obs.Handler with the timeline surface:
//
//	/timeline                 index: resolutions, tracked metrics, trip count
//	/timeline?metric=&res=    one series' sealed windows as JSON, oldest first
//	                          (res defaults to the base tier)
//	/anomalies                recorded detector trips, newest first (?n=K)
//	/healthz                  the obs health check, decorated with anomaly
//	                          lines — still 200 so probes keyed on liveness
//	                          don't flap on a tripped detector
//
// Everything obs.Handler serves (/metrics, /scans, /events, /debug/*) passes
// through unchanged. A nil *Timeline returns obs.Handler unwrapped.
func Handler(t *Timeline, o *obs.Obs, healthy func() error) http.Handler {
	base := obs.Handler(o, healthy)
	if t == nil {
		return base
	}
	mux := http.NewServeMux()
	mux.Handle("/", base)

	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		metric := r.URL.Query().Get("metric")
		if metric == "" {
			writeJSONResp(w, struct {
				Resolutions []string `json:"resolutions"`
				Metrics     []string `json:"metrics"`
				Trips       uint64   `json:"anomaly_trips"`
				Dropped     int      `json:"series_dropped"`
			}{t.Resolutions(), t.Metrics(), t.Trips(), t.Dropped()})
			return
		}
		sd, ok := t.Series(metric, r.URL.Query().Get("res"))
		if !ok {
			http.Error(w, fmt.Sprintf("timeline: unknown metric %q or resolution %q",
				metric, r.URL.Query().Get("res")), http.StatusNotFound)
			return
		}
		writeJSONResp(w, sd)
	})

	mux.HandleFunc("/anomalies", func(w http.ResponseWriter, r *http.Request) {
		n := defaultAnomalyRing
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "anomalies: n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		out := t.Anomalies(n)
		if out == nil {
			out = []Anomaly{}
		}
		writeJSONResp(w, out)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		fmt.Fprintf(w, "anomaly_trips %d\n", t.Trips())
		for _, a := range t.Anomalies(3) {
			fmt.Fprintf(w, "anomaly detector=%s metric=%s value=%g threshold=%g t_ms=%d bundle=%s\n",
				a.Detector, a.Metric, a.Value, a.Threshold, a.TimeMS, a.Bundle)
		}
	})

	return mux
}

func writeJSONResp(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
