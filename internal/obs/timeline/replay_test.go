package timeline_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamhist/internal/client"
	"streamhist/internal/faults"
	"streamhist/internal/obs"
	"streamhist/internal/obs/timeline"
	"streamhist/internal/server"
	"streamhist/internal/stream"
	"streamhist/internal/tpch"
)

// TestTimelineReplaysFaultBurst is the PR's acceptance scenario: a chaos
// server takes a burst of fault-riddled scans, the burst ends, and the whole
// incident is then diagnosed purely from /timeline and /events — after the
// fact, with no debugger attached while it happened.
func TestTimelineReplaysFaultBurst(t *testing.T) {
	rel := tpch.Synthetic(4000, 4, 512, 1.1, 7)
	want, err := io.ReadAll(stream.NewPagesReader(rel))
	if err != nil {
		t.Fatal(err)
	}

	profile, err := faults.ByName(faults.ProfileCorruptionHeavy)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	srv := server.New(server.Config{
		Obs:              o,
		Faults:           faults.New(11, profile),
		PagesPerFrame:    2,
		ShardLanes:       4,
		SideStallTimeout: 50 * time.Millisecond,
	})
	if err := srv.Register(rel); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tl := timeline.New(timeline.Config{
		Registry:    o.Reg,
		Flight:      o.Flight,
		Resolutions: []timeline.Res{{Step: time.Second, Len: 60}},
		Detectors: []timeline.Detector{{
			Name: "quarantine-ratio", Kind: timeline.KindRatio,
			Metric: "streamhist_server_pages_quarantined_total",
			Denom:  "streamhist_server_pages_moved_total",
			Window: 4, Threshold: 0.01,
		}},
		BundleDir: t.TempDir(),
	})

	dial := func() (net.Conn, error) {
		sc, cc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	}
	conn, _ := dial()
	c := client.New(conn)
	c.SetRedial(dial)
	c.SetRetryPolicy(32, time.Millisecond)

	// Quiet lead-in, then the burst (simulated clock: one tick per second),
	// then a quiet tail. The corruption-heavy profile quarantines side-path
	// pages on nearly every scan at these settings.
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tl.Tick(now)
	for i := 0; i < 3; i++ {
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	burstStart := now
	var quarantined uint32
	for i := 0; i < 4; i++ {
		var got bytes.Buffer
		sum, err := c.Scan("synthetic", "c1", &got)
		if err != nil {
			t.Fatalf("scan %d failed outright: %v", i, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("scan %d delivered bytes differ from storage", i)
		}
		quarantined += sum.QuarantinedPages
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	if quarantined == 0 {
		t.Fatal("chaos profile produced no quarantined pages; test premise broken")
	}
	burstEnd := now
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		tl.Tick(now)
	}

	// Everything below uses only the HTTP surface — the burst is over.
	h := timeline.Handler(tl, o, nil)
	get := func(path string) []byte {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body)
		}
		return rec.Body.Bytes()
	}

	series := func(metric string) timeline.SeriesData {
		var sd timeline.SeriesData
		if err := json.Unmarshal(get("/timeline?metric="+metric), &sd); err != nil {
			t.Fatalf("decoding %s series: %v", metric, err)
		}
		return sd
	}
	inBurst := func(ms int64) bool {
		return ms > burstStart.UnixMilli() && ms <= burstEnd.UnixMilli()
	}

	// The quarantine spike is visible in exactly the burst windows.
	quar := series("streamhist_server_pages_quarantined_total")
	var inside, outside float64
	for _, p := range quar.Points {
		if inBurst(p.T) {
			inside += p.V
		} else {
			outside += p.V
		}
	}
	// The server can quarantine more than the client's final summary shows
	// (retried attempts quarantine too), but never less — and none of it may
	// land outside the burst windows.
	if inside < float64(quarantined) {
		t.Errorf("burst windows hold %v quarantined pages, client saw %d", inside, quarantined)
	}
	if outside != 0 {
		t.Errorf("quarantine activity leaked outside the burst: %v", outside)
	}

	// So is the data movement, and the quiet tail really is quiet.
	moved := series("streamhist_server_bytes_moved_total")
	inside, outside = 0, 0
	for _, p := range moved.Points {
		if inBurst(p.T) {
			inside += p.V
		} else {
			outside += p.V
		}
	}
	if inside == 0 || outside != 0 {
		t.Errorf("bytes_moved: burst=%v tail=%v, want all movement inside the burst", inside, outside)
	}

	// The detector tripped on the burst and /healthz carries the verdict
	// without failing the probe.
	hz := string(get("/healthz"))
	if !strings.HasPrefix(hz, "ok\n") || !strings.Contains(hz, "detector=quarantine-ratio") {
		t.Errorf("/healthz verdict:\n%s", hz)
	}

	// /events replays the individual scans: wide events flagged anomalous by
	// the fault fallout (degraded, resumed, retried), scan IDs matching the
	// /scans traces.
	var evs []obs.ScanEvent
	if err := json.Unmarshal(get("/events"), &evs); err != nil {
		t.Fatalf("decoding /events: %v", err)
	}
	var anomalous int
	ids := make(map[uint64]bool)
	for _, ev := range evs {
		if ev.Source != "server" {
			continue
		}
		ids[ev.ScanID] = true
		if ev.Anomalous {
			anomalous++
		}
	}
	if anomalous == 0 {
		t.Errorf("no anomalous events in /events: %+v", evs)
	}
	var traces []obs.ScanTrace
	if err := json.Unmarshal(get("/scans"), &traces); err != nil {
		t.Fatalf("decoding /scans: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("/scans empty")
	}
	joined := 0
	for _, tr := range traces {
		if ids[tr.ID] {
			joined++
		}
	}
	if joined == 0 {
		t.Errorf("no /scans trace joins a /events record by scan ID (events %v, traces %d)", ids, len(traces))
	}
}
