package timeline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"streamhist/internal/obs"
)

// bundleManifest is the top-level anomaly.json of a debug bundle: the
// verdict that tripped, plus enough identity to line the bundle up with
// logs and traces from the same instant.
type bundleManifest struct {
	Anomaly   Anomaly  `json:"anomaly"`
	WrittenMS int64    `json:"written_ms"`
	Trips     uint64   `json:"trips_total"`
	Files     []string `json:"files"`
}

// writeBundleLocked writes a self-contained debug bundle for a — a directory
// under cfg.BundleDir holding the verdict, a full timeline slice, the flight
// recorder's retained events, and heap + simulated-hardware profiles in
// pprof format — then prunes the oldest bundles beyond BundleLimit and
// records the bundle path in a.Bundle. Caller holds t.mu; bundle writes are
// rare (cooldown-debounced) so the held lock is cheaper than a consistent
// copy of every series.
func (t *Timeline) writeBundleLocked(a *Anomaly, now time.Time) {
	dir := t.cfg.BundleDir
	if dir == "" {
		return
	}
	t.eng.bundleSeq++
	name := filepath.Join(dir, bundleName(t.eng.bundleSeq, a.Detector, now))
	if err := os.MkdirAll(name, 0o755); err != nil {
		t.cfg.Log.Warn("debug bundle failed", "dir", name, "err", err)
		return
	}

	man := bundleManifest{Anomaly: *a, WrittenMS: now.UnixMilli(), Trips: t.eng.trips}

	// Timeline slice: every tracked series at every resolution.
	var slice []SeriesData
	for _, s := range t.order {
		for _, r := range t.res {
			if sd, ok := t.seriesLocked(s.name, r.Label()); ok {
				slice = append(slice, sd)
			}
		}
	}
	if writeJSON(filepath.Join(name, "timeline.json"), slice) == nil {
		man.Files = append(man.Files, "timeline.json")
	}

	// Flight-recorder dump: every retained wide event.
	if evs := t.cfg.Flight.Recent(1 << 20); len(evs) > 0 {
		if writeJSON(filepath.Join(name, "events.json"), evs) == nil {
			man.Files = append(man.Files, "events.json")
		}
	}

	// Exemplar join: every distribution's retained exemplar, resolved to its
	// assembled distributed trace when the tracer still holds it — the bundle
	// then carries not just "the tail was this slow" but the exact traced
	// scan that put it there, spans and all.
	if t.cfg.Tracer != nil {
		type exemplarEntry struct {
			Metric  string              `json:"metric"`
			Value   int64               `json:"value"`
			TraceID string              `json:"trace_id"`
			Trace   *obs.AssembledTrace `json:"trace,omitempty"`
		}
		var exs []exemplarEntry
		for _, s := range t.cfg.Registry.Samples(nil) {
			if s.Kind != obs.SampleDist {
				continue
			}
			ex, ok := s.Dist.Exemplar()
			if !ok {
				continue
			}
			exs = append(exs, exemplarEntry{
				Metric:  s.Name,
				Value:   ex.Value,
				TraceID: fmt.Sprintf("%016x", ex.TraceID),
				Trace:   t.cfg.Tracer.Assemble(ex.TraceID),
			})
		}
		if len(exs) > 0 && writeJSON(filepath.Join(name, "exemplars.json"), exs) == nil {
			man.Files = append(man.Files, "exemplars.json")
		}
	}

	// Recent anomaly history (this trip is appended after the bundle write,
	// so the file holds the trips that preceded it).
	if e := t.eng; e.n > 0 {
		hist := make([]Anomaly, 0, e.n)
		for i := 0; i < e.n; i++ {
			idx := i
			if e.n == len(e.ring) {
				idx = (e.next + i) % len(e.ring)
			}
			hist = append(hist, e.ring[idx])
		}
		if writeJSON(filepath.Join(name, "anomalies.json"), hist) == nil {
			man.Files = append(man.Files, "anomalies.json")
		}
	}

	// Simulated-hardware cycle profile, pprof wire format.
	if p := t.cfg.Prof; p != nil && p.TotalCycles() > 0 {
		if f, err := os.Create(filepath.Join(name, "hwprof.pb.gz")); err == nil {
			if p.Snapshot().WritePprof(f) == nil {
				man.Files = append(man.Files, "hwprof.pb.gz")
			}
			f.Close()
		}
	}

	// Live heap profile — standard runtime pprof, always `go tool pprof`-able.
	if f, err := os.Create(filepath.Join(name, "heap.pb.gz")); err == nil {
		if pprof.WriteHeapProfile(f) == nil {
			man.Files = append(man.Files, "heap.pb.gz")
		}
		f.Close()
	}

	// Goroutine dump for hang diagnosis.
	if f, err := os.Create(filepath.Join(name, "goroutines.txt")); err == nil {
		if pprof.Lookup("goroutine").WriteTo(f, 1) == nil {
			man.Files = append(man.Files, "goroutines.txt")
		}
		f.Close()
	}

	a.Bundle = name
	man.Anomaly.Bundle = name
	writeJSON(filepath.Join(name, "anomaly.json"), man)

	t.pruneBundles(dir)
}

// bundleName builds a sortable directory name: zero-padded sequence first so
// lexical order is creation order, then the detector and a wall-clock stamp
// for the humans.
func bundleName(seq uint64, detector string, now time.Time) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, detector)
	return "bundle-" + pad6(seq) + "-" + safe + "-" + now.UTC().Format("20060102T150405")
}

func pad6(n uint64) string {
	s := make([]byte, 6)
	for i := 5; i >= 0; i-- {
		s[i] = byte('0' + n%10)
		n /= 10
	}
	return string(s)
}

// pruneBundles removes the oldest bundle directories beyond BundleLimit.
func (t *Timeline) pruneBundles(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			names = append(names, e.Name())
		}
	}
	if len(names) <= t.cfg.BundleLimit {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-t.cfg.BundleLimit] {
		os.RemoveAll(filepath.Join(dir, n))
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
