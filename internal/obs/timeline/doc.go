// Package timeline is the history plane of the observability stack: it
// turns the registry's point-in-time instruments into bounded, queryable
// time series, the same way the paper turns a data stream into statistics —
// as a side effect of movement that was happening anyway, in fixed memory.
//
// Three cooperating pieces:
//
//   - A multi-resolution ring (default 1s×120, 10s×360, 5m×288) samples
//     every registered instrument once per base period, off the hot path.
//     Counters are recorded delta-aware (per-window rates survive counter
//     monotonicity), gauges keep their last reading, and distributions are
//     window-merged: each window accumulates the per-bin count deltas in a
//     bins.Vector mirroring the Distribution's fixed HDR geometry, coarse
//     windows fold sealed base windows in via bins.MergeAll, and per-window
//     p50/p90/p99 come out of hist.BuildEquiDepthFromBins — the repo's own
//     equi-depth builder summarising the repo's own telemetry history.
//     Per-window HyperLogLog blocks track distinct tables and clients
//     (merged into coarser windows with the sketch package's pointwise-max
//     HLL merge), exposed as the synthetic timeline_distinct_* series.
//
//   - The flight recorder (obs.FlightRecorder) feeds the timeline one wide
//     event per scan; the timeline drains it each tick for the distinct-
//     entity sketches, and /events serves its tail-sampled ring directly.
//
//   - An anomaly engine runs burn-rate-style detectors over the base ring
//     after every sealed window: throughput drop versus a trailing mean,
//     quarantine/degradation ratios, hwprof-consistency drift, WAL drops,
//     and checkpoint age. A trip (debounced per detector) appends a verdict
//     surfaced through /healthz and /anomalies, and — when a bundle
//     directory is configured — writes a self-contained debug bundle:
//     anomaly verdict, a timeline slice, the flight-recorder dump, the
//     simulated-hardware profile, and a live heap profile, both profiles in
//     pprof format `go tool pprof` accepts.
//
// Everything is fixed-memory: rings never grow, the series population is
// capped, sealed distribution windows keep five numbers (count, sum, three
// quantiles) rather than their bins, and only the currently open window per
// resolution holds a bin vector or an HLL. A nil *Timeline no-ops on every
// method, so a timeline-disabled build stays on the nil-obs baseline.
package timeline
