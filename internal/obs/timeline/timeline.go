package timeline

import (
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"time"

	"streamhist/internal/bins"
	"streamhist/internal/hist"
	"streamhist/internal/hwprof"
	"streamhist/internal/obs"
	"streamhist/internal/sketch"
)

// Res is one retention tier of the timeline: windows of Step duration, Len of
// them retained in a ring. Coarser tiers are built by merging sealed base
// windows, so every Step must be a multiple of the base resolution's Step.
type Res struct {
	Step time.Duration
	Len  int
}

// Label is the resolution's query name ("1s", "10s", "5m") — the value the
// /timeline?res= parameter matches against.
func (r Res) Label() string { return fmtStep(r.Step) }

func fmtStep(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	default:
		return fmt.Sprintf("%dms", d/time.Millisecond)
	}
}

// DefaultResolutions is the stock three-tier retention: two minutes at 1s,
// an hour at 10s, a day at 5m.
func DefaultResolutions() []Res {
	return []Res{
		{Step: time.Second, Len: 120},
		{Step: 10 * time.Second, Len: 360},
		{Step: 5 * time.Minute, Len: 288},
	}
}

// ParseResolutions parses the histserved flag syntax "1s:120,10s:360,5m:288"
// into a resolution list.
func ParseResolutions(s string) ([]Res, error) {
	var out []Res
	for _, part := range splitComma(s) {
		i := indexByte(part, ':')
		if i < 0 {
			return nil, fmt.Errorf("timeline: resolution %q: want step:len", part)
		}
		step, err := time.ParseDuration(part[:i])
		if err != nil {
			return nil, fmt.Errorf("timeline: resolution %q: %v", part, err)
		}
		var n int
		if _, err := fmt.Sscanf(part[i+1:], "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("timeline: resolution %q: bad length", part)
		}
		out = append(out, Res{Step: step, Len: n})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("timeline: no resolutions in %q", s)
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			out = append(out, trimSpace(s[start:i]))
			start = i + 1
		}
	}
	return append(out, trimSpace(s[start:]))
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Defaults for Config fields left zero.
const (
	DefaultBase        = time.Second
	DefaultMaxSeries   = 512
	DefaultHLLPrec     = 10
	DefaultBundleLimit = 16
	DefaultCooldown    = time.Minute
	defaultAnomalyRing = 64
)

// Synthetic series names the timeline derives from the flight recorder's
// entity stream rather than from a registry instrument.
const (
	MetricDistinctTables  = "timeline_distinct_tables"
	MetricDistinctClients = "timeline_distinct_clients"
)

// Config wires a Timeline. Zero-value fields take the defaults above;
// Registry is the only field without which the timeline is pointless
// (it still runs, recording only the synthetic distinct-entity series).
type Config struct {
	// Base is the sampling period; every instrument is read once per Base.
	Base time.Duration
	// Resolutions are the retention tiers, finest first. Steps are rounded up
	// to multiples of the base step so window boundaries align with ticks.
	Resolutions []Res
	// MaxSeries caps the instrument population; instruments registered after
	// the cap is hit are counted but not tracked (fixed memory beats
	// completeness for a flight recorder).
	MaxSeries int
	// HLLPrecision is the register-count exponent for the per-window
	// distinct-entity sketches.
	HLLPrecision int

	Registry *obs.Registry
	Flight   *obs.FlightRecorder
	Prof     *hwprof.Profiler
	Log      *slog.Logger
	// Tracer, when set alongside Registry, joins metric exemplars to their
	// distributed traces in debug bundles: each anomaly bundle gains an
	// exemplars.json mapping every distribution's retained exemplar to the
	// assembled trace it points at (when the tracer still holds it).
	Tracer *obs.Tracer

	// Detectors override DefaultDetectors; nil keeps the stock set, an empty
	// non-nil slice disables detection.
	Detectors []Detector
	// BundleDir, when set, is where anomaly trips drop debug bundles.
	BundleDir string
	// BundleLimit caps how many bundles are kept (oldest pruned).
	BundleLimit int
	// Cooldown debounces each detector: once tripped, it stays quiet this long.
	Cooldown time.Duration
}

// seriesKind discriminates how a tracked series turns samples into windows.
type seriesKind uint8

const (
	kindCounter seriesKind = iota
	kindGauge
	kindDist
	kindEntity
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindDist:
		return "distribution"
	case kindEntity:
		return "distinct"
	default:
		return "untyped"
	}
}

// window is one sealed ring slot. Only distributions use the quantile
// fields; keeping them inline (vs. a side table) trades 32 bytes per slot
// for branch-free sealing.
type window struct {
	endMS int64
	val   float64 // counter: window delta; gauge: last reading; dist: count delta; entity: distinct estimate
	sum   float64 // dist only: scaled sum delta
	p50   float64
	p90   float64
	p99   float64
}

// resRing is one series × one resolution: a fixed ring of sealed windows
// plus the open window's accumulator. Open-window state is the only part
// whose size depends on the series kind — a float for counters/gauges, a
// bins.Vector for distributions, an HLL for the distinct-entity series.
type resRing struct {
	stepTicks int // window length in base windows (1 for the base tier)
	ring      []window
	head      int // next write slot
	n         int // slots filled

	acc      float64
	accSet   bool // gauge: a reading landed in this window
	accVec   *bins.Vector
	accCount int64
	accSum   int64
	accHLL   *sketch.HLL
}

func (rr *resRing) seal(w window) {
	if len(rr.ring) == 0 {
		return
	}
	rr.ring[rr.head] = w
	rr.head = (rr.head + 1) % len(rr.ring)
	if rr.n < len(rr.ring) {
		rr.n++
	}
}

// series is one tracked metric across all resolutions.
type series struct {
	name string
	kind seriesKind

	// Delta state for counters and distributions: the previous cumulative
	// reading. primed distinguishes "never seen" from "previous was zero" so
	// an instrument discovered mid-flight doesn't book its lifetime total as
	// one burst.
	primed    bool
	prev      float64
	prevBins  []int64
	prevCount int64
	prevSum   int64
	scale     float64

	rings []resRing
}

// Timeline is the multi-resolution metrics history ring. One mutex guards
// everything: sampling happens once per base period off the hot path, and
// readers copy out; instruments themselves stay lock-free. A nil *Timeline
// no-ops on every method.
type Timeline struct {
	cfg       Config
	base      time.Duration
	baseTicks int // base-tier window length in sampling ticks
	res       []Res
	maxSeries int

	mu       sync.Mutex
	series   map[string]*series
	order    []*series
	ticks    uint64
	dropped  int // instruments beyond MaxSeries
	flightAt uint64

	sampleBuf []obs.Sample
	distBuf   []int64
	deltaVec  *bins.Vector

	eng *engine

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a Timeline from cfg, normalising zero fields to defaults and
// rounding resolution steps up to multiples of the base period so every
// window boundary lands on a tick.
func New(cfg Config) *Timeline {
	if cfg.Base <= 0 {
		cfg.Base = DefaultBase
	}
	res := cfg.Resolutions
	if len(res) == 0 {
		res = DefaultResolutions()
	}
	norm := make([]Res, 0, len(res))
	for _, r := range res {
		if r.Len <= 0 {
			continue
		}
		if r.Step < cfg.Base {
			r.Step = cfg.Base
		}
		if rem := r.Step % cfg.Base; rem != 0 {
			r.Step += cfg.Base - rem
		}
		norm = append(norm, r)
	}
	if len(norm) == 0 {
		norm = []Res{{Step: cfg.Base, Len: 120}}
	}
	sort.SliceStable(norm, func(i, j int) bool { return norm[i].Step < norm[j].Step })
	// Coarser tiers fold sealed base windows, so they must tile base windows.
	for i := 1; i < len(norm); i++ {
		if rem := norm[i].Step % norm[0].Step; rem != 0 {
			norm[i].Step += norm[0].Step - rem
		}
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = DefaultMaxSeries
	}
	if cfg.HLLPrecision <= 0 {
		cfg.HLLPrecision = DefaultHLLPrec
	}
	if cfg.BundleLimit <= 0 {
		cfg.BundleLimit = DefaultBundleLimit
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	baseTicks := int(norm[0].Step / cfg.Base)
	if baseTicks < 1 {
		baseTicks = 1
	}
	t := &Timeline{
		cfg:       cfg,
		base:      cfg.Base,
		baseTicks: baseTicks,
		res:       norm,
		maxSeries: cfg.MaxSeries,
		series:    make(map[string]*series),
		distBuf:   make([]int64, obs.DistNumBins),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	dets := cfg.Detectors
	if dets == nil {
		dets = DefaultDetectors()
	}
	t.eng = newEngine(t, dets)
	// The entity series exist from the start so /timeline lists them even
	// before the first scan.
	t.getOrCreate(MetricDistinctTables, kindEntity, 1)
	t.getOrCreate(MetricDistinctClients, kindEntity, 1)
	return t
}

// Base returns the sampling period (the base tier's window length).
func (t *Timeline) Base() time.Duration {
	if t == nil {
		return 0
	}
	return t.base
}

// Start launches the sampling goroutine, ticking every base period. Safe to
// call once; Close stops it. Nil-safe.
func (t *Timeline) Start() {
	if t == nil {
		return
	}
	t.startOnce.Do(func() {
		go func() {
			defer close(t.done)
			tick := time.NewTicker(t.base)
			defer tick.Stop()
			for {
				select {
				case now := <-tick.C:
					t.Tick(now)
				case <-t.stop:
					return
				}
			}
		}()
	})
}

// Close stops the sampling goroutine and waits for it to exit. Nil-safe,
// idempotent, and valid even if Start was never called.
func (t *Timeline) Close() {
	if t == nil {
		return
	}
	t.stopOnce.Do(func() { close(t.stop) })
	t.startOnce.Do(func() { close(t.done) }) // never started: unblock the wait
	<-t.done
}

// getOrCreate returns the tracked series for name, creating rings on first
// sight. Caller holds t.mu (or is inside New, before publication).
func (t *Timeline) getOrCreate(name string, kind seriesKind, scale float64) *series {
	if s, ok := t.series[name]; ok {
		return s
	}
	if len(t.order) >= t.maxSeries {
		t.dropped++
		return nil
	}
	s := &series{name: name, kind: kind, scale: scale, rings: make([]resRing, len(t.res))}
	if kind == kindDist {
		s.prevBins = make([]int64, obs.DistNumBins)
	}
	for i, r := range t.res {
		st := t.baseTicks
		if i > 0 {
			st = int(r.Step / t.res[0].Step)
		}
		s.rings[i] = resRing{stepTicks: st, ring: make([]window, r.Len)}
	}
	t.series[name] = s
	t.order = append(t.order, s)
	return s
}

// Tick performs one sampling pass as of now: read every instrument, fold the
// deltas into open base windows, seal windows whose boundary this tick is,
// drain the flight recorder into the distinct-entity sketches, and run the
// anomaly detectors over freshly sealed base windows. Exported so tests (and
// the chaos CI job) can drive time deterministically; production use goes
// through Start. Nil-safe.
func (t *Timeline) Tick(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ticks++

	t.sampleBuf = t.cfg.Registry.Samples(t.sampleBuf[:0])
	for i := range t.sampleBuf {
		smp := &t.sampleBuf[i]
		switch smp.Kind {
		case obs.SampleCounter:
			s := t.getOrCreate(smp.Name, kindCounter, 1)
			if s == nil {
				continue
			}
			d := smp.Value - s.prev
			if !s.primed || d < 0 {
				// First sight or counter reset: don't book history as a burst.
				d = 0
			}
			s.primed = true
			s.prev = smp.Value
			s.rings[0].acc += d
		case obs.SampleGauge:
			s := t.getOrCreate(smp.Name, kindGauge, 1)
			if s == nil {
				continue
			}
			s.rings[0].acc = smp.Value
			s.rings[0].accSet = true
		case obs.SampleDist:
			s := t.getOrCreate(smp.Name, kindDist, smp.Dist.Scale())
			if s == nil {
				continue
			}
			t.tickDist(s, smp.Dist)
		}
	}

	t.tickEntities()

	// Seal base windows at base boundaries, folding each sealed window into
	// the coarser open windows; seal those at their own boundaries.
	if t.ticks%uint64(t.baseTicks) == 0 {
		endMS := now.UnixMilli()
		for _, s := range t.order {
			t.sealSeries(s, endMS)
		}
		t.eng.evaluate(now)
	}
}

// tickDist folds one distribution's per-bin deltas since the last tick into
// the series' open base window.
func (t *Timeline) tickDist(s *series, d *obs.Distribution) {
	count, sum := d.CountsInto(t.distBuf)
	if !s.primed {
		copy(s.prevBins, t.distBuf)
		s.prevCount, s.prevSum = count, sum
		s.primed = true
		return
	}
	if t.deltaVec == nil {
		t.deltaVec = bins.FromCounts(0, 1, make([]int64, obs.DistNumBins))
	}
	t.deltaVec.Reset()
	dirty := false
	for i, cur := range t.distBuf {
		if dd := cur - s.prevBins[i]; dd > 0 {
			t.deltaVec.AddCount(int64(i), dd)
			dirty = true
		}
		s.prevBins[i] = cur
	}
	dc, ds := count-s.prevCount, sum-s.prevSum
	s.prevCount, s.prevSum = count, sum
	if dc < 0 {
		dc = 0
	}
	if ds < 0 {
		ds = 0
	}
	if !dirty && dc == 0 {
		return
	}
	rr := &s.rings[0]
	if rr.accVec == nil {
		rr.accVec = bins.FromCounts(0, 1, make([]int64, obs.DistNumBins))
	}
	rr.accVec.Merge(t.deltaVec)
	rr.accCount += dc
	rr.accSum += ds
}

// tickEntities drains new flight-recorder entities into the open
// distinct-table/client sketches on the base tier.
func (t *Timeline) tickEntities() {
	tables, clients, last := t.cfg.Flight.EntitiesSince(t.flightAt)
	t.flightAt = last
	if len(tables) == 0 && len(clients) == 0 {
		return
	}
	push := func(name string, vals []string) {
		s := t.series[name]
		if s == nil || len(vals) == 0 {
			return
		}
		rr := &s.rings[0]
		if rr.accHLL == nil {
			rr.accHLL = sketch.NewHLL(t.cfg.HLLPrecision)
		}
		for _, v := range vals {
			rr.accHLL.Push(0, hashString(v))
		}
	}
	push(MetricDistinctTables, tables)
	push(MetricDistinctClients, clients)
}

func hashString(s string) int64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return int64(h.Sum64())
}

// sealSeries closes the base window for s, folds it into coarser open
// windows, and closes any coarser window whose boundary this base seal is.
// Caller holds t.mu.
func (t *Timeline) sealSeries(s *series, endMS int64) {
	baseSealed := t.ticks / uint64(t.baseTicks)
	base := &s.rings[0]
	w := closeOpen(s, base, endMS)
	base.seal(w)

	for i := 1; i < len(s.rings); i++ {
		rr := &s.rings[i]
		t.foldBase(s, rr, base, w)
		if baseSealed%uint64(rr.stepTicks) == 0 {
			rr.seal(closeOpen(s, rr, endMS))
			resetOpen(s, rr)
		}
	}
	resetOpen(s, base)
}

// closeOpen materialises rr's open accumulator into a sealed window value;
// it does not reset (the base tier is folded into coarser tiers first).
func closeOpen(s *series, rr *resRing, endMS int64) window {
	w := window{endMS: endMS}
	switch s.kind {
	case kindCounter:
		w.val = rr.acc
	case kindGauge:
		w.val = rr.acc // last reading persists across quiet windows
	case kindDist:
		w.val = float64(rr.accCount)
		w.sum = float64(rr.accSum) * s.scale
		if rr.accVec != nil && rr.accCount > 0 {
			w.p50, w.p90, w.p99 = distQuantiles(rr.accVec, s.scale)
		}
	case kindEntity:
		if rr.accHLL != nil {
			w.val = rr.accHLL.Estimate()
		}
	}
	return w
}

// resetOpen clears rr's open-window accumulator for the next window.
// Gauges keep their last reading so quiet windows repeat it rather than
// dropping to zero.
func resetOpen(s *series, rr *resRing) {
	switch s.kind {
	case kindCounter:
		rr.acc = 0
	case kindGauge:
		rr.accSet = false
	case kindDist:
		if rr.accVec != nil {
			rr.accVec.Reset()
		}
		rr.accCount, rr.accSum = 0, 0
	case kindEntity:
		rr.accHLL = nil
	}
}

// foldBase merges a sealed base window into a coarser tier's open window:
// counters add deltas, gauges take the latest reading, distributions merge
// bin vectors via bins.MergeAll, entity sketches merge HLL registers.
func (t *Timeline) foldBase(s *series, rr, baseRing *resRing, w window) {
	switch s.kind {
	case kindCounter:
		rr.acc += w.val
	case kindGauge:
		rr.acc = w.val
		rr.accSet = true
	case kindDist:
		if baseRing.accVec != nil && baseRing.accCount > 0 {
			if rr.accVec == nil {
				rr.accVec = baseRing.accVec.Clone()
			} else if merged, err := bins.MergeAll(rr.accVec, baseRing.accVec); err == nil {
				rr.accVec = merged
			}
			rr.accCount += baseRing.accCount
			rr.accSum += baseRing.accSum
		}
	case kindEntity:
		if baseRing.accHLL != nil {
			if rr.accHLL == nil {
				rr.accHLL = sketch.NewHLL(t.cfg.HLLPrecision)
			}
			rr.accHLL.Merge(baseRing.accHLL)
		}
	}
}

// distQuantiles reconstructs p50/p90/p99 from a window's bin-delta vector by
// mapping bin indices back to their representative values and running the
// repo's equi-depth builder over them.
func distQuantiles(v *bins.Vector, scale float64) (p50, p90, p99 float64) {
	nz := v.NonZero()
	if len(nz) == 0 {
		return 0, 0, 0
	}
	for i := range nz {
		nz[i].Value = obs.DistBinLow(int(nz[i].Value))
	}
	h := hist.BuildEquiDepthFromBins(nz, distWindowBuckets)
	if h == nil {
		return 0, 0, 0
	}
	q := func(p float64) float64 {
		val, err := h.Quantile(p)
		if err != nil {
			return 0
		}
		return float64(val) * scale
	}
	return q(0.5), q(0.9), q(0.99)
}

// distWindowBuckets is the equi-depth resolution for per-window quantiles;
// windows hold far fewer observations than a lifetime distribution, so 32
// buckets is plenty.
const distWindowBuckets = 32

// Point is one sealed window as served by /timeline.
type Point struct {
	// T is the window's end time, unix milliseconds.
	T int64   `json:"t_ms"`
	V float64 `json:"v"`
	// Distribution windows also carry the window's scaled sum and quantiles
	// (V is the observation count in the window).
	Sum float64 `json:"sum,omitempty"`
	P50 float64 `json:"p50,omitempty"`
	P90 float64 `json:"p90,omitempty"`
	P99 float64 `json:"p99,omitempty"`
}

// SeriesData is one metric at one resolution: the sealed windows, oldest
// first, plus enough metadata to interpret them.
type SeriesData struct {
	Metric string  `json:"metric"`
	Kind   string  `json:"kind"`
	Res    string  `json:"res"`
	StepMS int64   `json:"step_ms"`
	Points []Point `json:"points"`
}

// Series returns the sealed windows of metric at the resolution labelled res
// ("" means the base tier), oldest first, or ok=false when the metric or
// resolution is unknown. Nil-safe.
func (t *Timeline) Series(metric, res string) (SeriesData, bool) {
	if t == nil {
		return SeriesData{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seriesLocked(metric, res)
}

func (t *Timeline) seriesLocked(metric, res string) (SeriesData, bool) {
	s, ok := t.series[metric]
	if !ok {
		return SeriesData{}, false
	}
	ri := 0
	if res != "" {
		ri = -1
		for i, r := range t.res {
			if r.Label() == res {
				ri = i
				break
			}
		}
		if ri < 0 {
			return SeriesData{}, false
		}
	}
	rr := &s.rings[ri]
	out := SeriesData{
		Metric: s.name,
		Kind:   s.kind.String(),
		Res:    t.res[ri].Label(),
		StepMS: t.res[ri].Step.Milliseconds(),
		Points: make([]Point, 0, rr.n),
	}
	// Oldest window sits at the write cursor once the ring is full, at 0
	// while still filling.
	for i := 0; i < rr.n; i++ {
		idx := i
		if rr.n == len(rr.ring) {
			idx = (rr.head + i) % len(rr.ring)
		}
		w := rr.ring[idx]
		out.Points = append(out.Points, Point{T: w.endMS, V: w.val, Sum: w.sum, P50: w.p50, P90: w.p90, P99: w.p99})
	}
	return out, true
}

// Metrics returns the tracked metric names, sorted. Nil-safe.
func (t *Timeline) Metrics() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.order))
	for _, s := range t.order {
		out = append(out, s.name)
	}
	sort.Strings(out)
	return out
}

// Resolutions returns the tier labels, finest first. Nil-safe.
func (t *Timeline) Resolutions() []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t.res))
	for i, r := range t.res {
		out[i] = r.Label()
	}
	return out
}

// Dropped reports how many instruments were seen beyond the MaxSeries cap.
func (t *Timeline) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// lastVals returns up to n most recent sealed base-window values of metric,
// oldest first. Caller holds t.mu. Used by the anomaly detectors.
func (t *Timeline) lastVals(metric string, n int) []float64 {
	s, ok := t.series[metric]
	if !ok || n <= 0 {
		return nil
	}
	rr := &s.rings[0]
	if n > rr.n {
		n = rr.n
	}
	out := make([]float64, 0, n)
	for i := rr.n - n; i < rr.n; i++ {
		idx := i
		if rr.n == len(rr.ring) {
			idx = (rr.head + i) % len(rr.ring)
		}
		out = append(out, rr.ring[idx].val)
	}
	return out
}
