package timeline

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamhist/internal/obs"
)

func TestRatioDetectorTripsAndCoolsDown(t *testing.T) {
	reg := obs.NewRegistry()
	quar := reg.Counter("streamhist_server_pages_quarantined_total", "")
	moved := reg.Counter("streamhist_server_pages_moved_total", "")
	tl := New(Config{
		Registry:    reg,
		Resolutions: []Res{{Step: time.Second, Len: 32}},
		Detectors: []Detector{{
			Name: "quarantine-ratio", Kind: KindRatio,
			Metric: "streamhist_server_pages_quarantined_total",
			Denom:  "streamhist_server_pages_moved_total",
			Window: 4, Threshold: 0.05,
		}},
		Cooldown: 10 * time.Second,
	})

	now := testEpoch
	tl.Tick(now) // prime

	// Healthy traffic: 1% quarantine. Must not trip.
	for i := 0; i < 4; i++ {
		moved.Add(100)
		quar.Add(1)
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	if tl.Trips() != 0 {
		t.Fatalf("healthy traffic tripped: %+v", tl.Anomalies(4))
	}

	// Fault burst: 30% quarantine.
	moved.Add(100)
	quar.Add(30)
	now = now.Add(time.Second)
	tl.Tick(now)
	if tl.Trips() != 1 {
		t.Fatalf("burst did not trip (trips=%d)", tl.Trips())
	}
	a := tl.Anomalies(1)[0]
	if a.Detector != "quarantine-ratio" || a.Kind != "ratio" || a.Value <= 0.05 {
		t.Errorf("anomaly = %+v", a)
	}
	if a.TimeMS != now.UnixMilli() {
		t.Errorf("anomaly stamped %d, want %d", a.TimeMS, now.UnixMilli())
	}

	// The burst keeps the windowed ratio high — but cooldown debounces.
	for i := 0; i < 3; i++ {
		moved.Add(100)
		quar.Add(30)
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	if tl.Trips() != 1 {
		t.Errorf("cooldown failed to debounce: trips=%d", tl.Trips())
	}

	// Past the cooldown the still-bad ratio trips again.
	now = now.Add(11 * time.Second)
	moved.Add(100)
	quar.Add(30)
	tl.Tick(now)
	if tl.Trips() != 2 {
		t.Errorf("post-cooldown re-trip missing: trips=%d", tl.Trips())
	}

	// The trip counter is a first-class registry metric.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `streamhist_anomaly_trips_total{detector="quarantine-ratio"} 2`) {
		t.Errorf("trip counter missing from exposition:\n%s", buf.String())
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

func TestDropDetectorNeedsBaselineAndActivity(t *testing.T) {
	reg := obs.NewRegistry()
	bytes := reg.Counter("streamhist_server_bytes_moved_total", "")
	tl := New(Config{
		Registry:    reg,
		Resolutions: []Res{{Step: time.Second, Len: 64}},
		Detectors: []Detector{{
			Name: "throughput-drop", Kind: KindDrop,
			Metric: "streamhist_server_bytes_moved_total",
			Window: 2, Trailing: 6, Threshold: 0.3, MinActivity: 1000,
		}},
	})

	now := testEpoch
	tl.Tick(now)

	// Idle system: zero trailing mean stays under MinActivity — never trips
	// even though "recent vs trailing" is degenerate.
	now = tickN(tl, now, 10)
	if tl.Trips() != 0 {
		t.Fatal("idle system tripped throughput-drop")
	}

	// Steady 10KB/s for the trailing baseline, then a collapse to ~0.
	for i := 0; i < 6; i++ {
		bytes.Add(10_000)
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	for i := 0; i < 2; i++ {
		bytes.Add(10) // >0 but far below 30% of baseline
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	if tl.Trips() != 1 {
		t.Fatalf("collapse did not trip (trips=%d, anomalies=%+v)", tl.Trips(), tl.Anomalies(4))
	}
	a := tl.Anomalies(1)[0]
	if a.Value >= 0.3 {
		t.Errorf("drop fraction %v, want < 0.3", a.Value)
	}
}

func TestTripWritesDebugBundle(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(32, 1)
	c := reg.Counter("streamhist_durable_wal_dropped_total", "")
	tl := New(Config{
		Registry:    reg,
		Flight:      fr,
		Resolutions: []Res{{Step: time.Second, Len: 8}},
		Detectors: []Detector{{
			Name: "wal-drops", Kind: KindNonZero,
			Metric: "streamhist_durable_wal_dropped_total", Window: 1,
		}},
		BundleDir:   dir,
		BundleLimit: 2,
		Cooldown:    time.Nanosecond,
	})
	fr.Record(obs.ScanEvent{ScanID: 7, Table: "lineitem", QuarantinedPages: 3})

	now := testEpoch
	tl.Tick(now)
	c.Add(5)
	now = now.Add(time.Second)
	tl.Tick(now)

	if tl.Trips() != 1 {
		t.Fatalf("trips = %d", tl.Trips())
	}
	a := tl.Anomalies(1)[0]
	if a.Bundle == "" {
		t.Fatal("trip produced no bundle")
	}
	if filepath.Dir(a.Bundle) != dir {
		t.Errorf("bundle %q not under %q", a.Bundle, dir)
	}

	// The manifest is self-describing: every listed file exists.
	raw, err := os.ReadFile(filepath.Join(a.Bundle, "anomaly.json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var man struct {
		Anomaly Anomaly  `json:"anomaly"`
		Trips   uint64   `json:"trips_total"`
		Files   []string `json:"files"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatalf("manifest parse: %v", err)
	}
	if man.Anomaly.Detector != "wal-drops" || man.Trips != 1 {
		t.Errorf("manifest = %+v", man)
	}
	have := make(map[string]bool)
	for _, f := range man.Files {
		have[f] = true
		if _, err := os.Stat(filepath.Join(a.Bundle, f)); err != nil {
			t.Errorf("manifest lists %s but: %v", f, err)
		}
	}
	for _, want := range []string{"timeline.json", "events.json", "heap.pb.gz", "goroutines.txt"} {
		if !have[want] {
			t.Errorf("bundle missing %s (have %v)", want, man.Files)
		}
	}

	// timeline.json replays the WAL-drop burst; events.json holds the scan.
	var slice []SeriesData
	raw, _ = os.ReadFile(filepath.Join(a.Bundle, "timeline.json"))
	if err := json.Unmarshal(raw, &slice); err != nil {
		t.Fatalf("timeline.json: %v", err)
	}
	found := false
	for _, sd := range slice {
		if sd.Metric == "streamhist_durable_wal_dropped_total" && sd.Res == "1s" {
			for _, p := range sd.Points {
				if p.V == 5 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("timeline.json does not replay the WAL-drop burst")
	}
	var evs []obs.ScanEvent
	raw, _ = os.ReadFile(filepath.Join(a.Bundle, "events.json"))
	if err := json.Unmarshal(raw, &evs); err != nil {
		t.Fatalf("events.json: %v", err)
	}
	if len(evs) != 1 || evs[0].ScanID != 7 {
		t.Errorf("events.json = %+v", evs)
	}

	// heap.pb.gz must parse with the real pprof tool (the acceptance bar).
	if _, err := exec.LookPath("go"); err == nil {
		out, err := exec.Command("go", "tool", "pprof", "-top",
			filepath.Join(a.Bundle, "heap.pb.gz")).CombinedOutput()
		if err != nil {
			t.Errorf("go tool pprof on heap.pb.gz: %v\n%s", err, out)
		}
	} else {
		t.Log("go binary not on PATH; skipping pprof parse check")
	}

	// More trips than BundleLimit: oldest bundles are pruned.
	for i := 0; i < 4; i++ {
		c.Add(1)
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("bundle dir holds %d entries, want BundleLimit=2", len(entries))
	}
	// The survivors are the newest (names sort by sequence).
	if _, err := os.Stat(a.Bundle); !os.IsNotExist(err) {
		t.Errorf("oldest bundle %s not pruned (err=%v)", a.Bundle, err)
	}
}

func TestHTTPHandlerSurfaces(t *testing.T) {
	o := obs.New()
	reg := o.Reg
	c := reg.Counter("streamhist_durable_wal_dropped_total", "")
	tl := New(Config{
		Registry:    reg,
		Resolutions: []Res{{Step: time.Second, Len: 8}},
		Detectors: []Detector{{
			Name: "wal-drops", Kind: KindNonZero,
			Metric: "streamhist_durable_wal_dropped_total", Window: 1,
		}},
	})
	h := Handler(tl, o, nil)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	now := testEpoch
	tl.Tick(now)
	c.Add(3)
	tl.Tick(now.Add(time.Second))

	// Index.
	rec := get("/timeline")
	var idx struct {
		Resolutions []string `json:"resolutions"`
		Metrics     []string `json:"metrics"`
		Trips       uint64   `json:"anomaly_trips"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("/timeline index: %v", err)
	}
	if len(idx.Resolutions) != 1 || idx.Resolutions[0] != "1s" || idx.Trips != 1 {
		t.Errorf("index = %+v", idx)
	}

	// Series, including explicit res.
	for _, u := range []string{
		"/timeline?metric=streamhist_durable_wal_dropped_total",
		"/timeline?metric=streamhist_durable_wal_dropped_total&res=1s",
	} {
		rec = get(u)
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d: %s", u, rec.Code, rec.Body)
		}
		var sd SeriesData
		if err := json.Unmarshal(rec.Body.Bytes(), &sd); err != nil {
			t.Fatalf("series decode: %v", err)
		}
		if len(sd.Points) != 2 || sd.Points[1].V != 3 {
			t.Errorf("GET %s points = %+v", u, sd.Points)
		}
	}
	if rec = get("/timeline?metric=nope"); rec.Code != 404 {
		t.Errorf("unknown metric: %d", rec.Code)
	}
	if rec = get("/timeline?metric=streamhist_durable_wal_dropped_total&res=9h"); rec.Code != 404 {
		t.Errorf("unknown res: %d", rec.Code)
	}

	// Anomalies.
	rec = get("/anomalies")
	var as []Anomaly
	if err := json.Unmarshal(rec.Body.Bytes(), &as); err != nil || len(as) != 1 {
		t.Errorf("/anomalies = %s (err %v)", rec.Body, err)
	}
	if rec = get("/anomalies?n=bogus"); rec.Code != 400 {
		t.Errorf("bad n: %d", rec.Code)
	}

	// /healthz stays 200 under anomalies but carries the verdict.
	rec = get("/healthz")
	if rec.Code != 200 {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "anomaly_trips 1") || !strings.Contains(body, "detector=wal-drops") {
		t.Errorf("/healthz verdict missing:\n%s", body)
	}

	// The obs surface passes through.
	if rec = get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "streamhist_durable_wal_dropped_total") {
		t.Errorf("/metrics passthrough broken: %d", rec.Code)
	}

	// Nil timeline degrades to the plain obs handler: no /timeline route.
	nilH := Handler(nil, o, nil)
	rec = httptest.NewRecorder()
	nilH.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("nil-timeline /metrics = %d", rec.Code)
	}
}
