package timeline

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamhist/internal/obs"
)

// tickN drives n manual ticks spaced one base period apart, starting at t0.
func tickN(tl *Timeline, t0 time.Time, n int) time.Time {
	for i := 0; i < n; i++ {
		t0 = t0.Add(tl.Base())
		tl.Tick(t0)
	}
	return t0
}

var testEpoch = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func TestCounterDeltasPerWindow(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("test_total", "")
	c.Add(1000) // pre-existing total: must not appear as a burst
	tl := New(Config{
		Registry:    reg,
		Resolutions: []Res{{Step: time.Second, Len: 8}, {Step: 4 * time.Second, Len: 4}},
		Detectors:   []Detector{},
	})

	now := testEpoch
	tl.Tick(now) // primes the counter at 1000
	deltas := []int64{5, 0, 7, 3, 0, 0, 2, 1}
	for _, d := range deltas {
		c.Add(d)
		now = now.Add(time.Second)
		tl.Tick(now)
	}

	sd, ok := tl.Series("test_total", "1s")
	if !ok {
		t.Fatal("series not tracked")
	}
	if sd.Kind != "counter" || sd.StepMS != 1000 {
		t.Fatalf("series meta wrong: %+v", sd)
	}
	// 9 ticks → 9 sealed windows but ring holds 8; the first (priming, delta
	// 0) was evicted... ring len 8 keeps the last 8: exactly our deltas.
	if len(sd.Points) != 8 {
		t.Fatalf("got %d points, want 8", len(sd.Points))
	}
	for i, want := range deltas {
		if got := sd.Points[i].V; got != float64(want) {
			t.Errorf("window %d: delta %v, want %d", i, got, want)
		}
	}

	// Coarse tier: 4s windows fold four sealed 1s windows each. Nine base
	// seals produced two complete 4s windows: ticks 1-4 (0+5+0+7=12) and
	// 5-8 (3+0+0+2=5); the final delta (1) is still in the open window.
	cd, ok := tl.Series("test_total", "4s")
	if !ok {
		t.Fatal("coarse series missing")
	}
	if len(cd.Points) != 2 {
		t.Fatalf("coarse windows: got %d, want 2 (%+v)", len(cd.Points), cd.Points)
	}
	if cd.Points[0].V != 12 || cd.Points[1].V != 5 {
		t.Fatalf("coarse deltas = %v, %v; want 12, 5", cd.Points[0].V, cd.Points[1].V)
	}
}

func TestGaugeKeepsLastReading(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("test_gauge", "")
	tl := New(Config{Registry: reg, Resolutions: []Res{{Step: time.Second, Len: 4}}, Detectors: []Detector{}})

	g.Set(42)
	now := tickN(tl, testEpoch, 1)
	g.Set(7)
	now = tickN(tl, now, 1)
	tickN(tl, now, 1) // no movement: the reading persists

	sd, _ := tl.Series("test_gauge", "")
	if len(sd.Points) != 3 {
		t.Fatalf("got %d points", len(sd.Points))
	}
	for i, want := range []float64{42, 7, 7} {
		if sd.Points[i].V != want {
			t.Errorf("window %d = %v, want %v", i, sd.Points[i].V, want)
		}
	}
}

func TestDistributionWindowQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	d := reg.Distribution("test_seconds", "", 1e-9)
	tl := New(Config{
		Registry:    reg,
		Resolutions: []Res{{Step: time.Second, Len: 8}, {Step: 2 * time.Second, Len: 4}},
		Detectors:   []Detector{},
	})

	// Two empty windows (the first sight of a series books delta 0), then a
	// thousand 1ms observations, then a thousand 100ms ones — with the two
	// bursts aligned into the same 2s coarse window.
	now := testEpoch
	tl.Tick(now)
	now = tickN(tl, now, 1)
	for i := 0; i < 1000; i++ {
		d.Observe(int64(time.Millisecond))
	}
	now = tickN(tl, now, 1)
	for i := 0; i < 1000; i++ {
		d.Observe(int64(100 * time.Millisecond))
	}
	now = tickN(tl, now, 1)

	sd, ok := tl.Series("test_seconds", "1s")
	if !ok || len(sd.Points) != 4 {
		t.Fatalf("distribution windows missing: %+v", sd)
	}
	w1, w2 := sd.Points[2], sd.Points[3]
	if w1.V != 1000 || w2.V != 1000 {
		t.Fatalf("window counts = %v, %v; want 1000 each", w1.V, w2.V)
	}
	// The windows see ONLY their own observations — that is the whole point
	// versus the lifetime distribution. p50 of window 2 must be ~100ms even
	// though the lifetime median is between the two bursts.
	if w1.P50 < 0.0008 || w1.P50 > 0.0012 {
		t.Errorf("window 1 p50 = %v s, want ≈0.001", w1.P50)
	}
	if w2.P50 < 0.08 || w2.P50 > 0.12 {
		t.Errorf("window 2 p50 = %v s, want ≈0.1", w2.P50)
	}
	if w1.Sum < 0.9 || w1.Sum > 1.1 {
		t.Errorf("window 1 sum = %v s, want ≈1.0", w1.Sum)
	}

	// The second 2s coarse window merged both bursts via bins.MergeAll:
	// 2000 counts spanning the 1ms and 100ms populations.
	cd, _ := tl.Series("test_seconds", "2s")
	if len(cd.Points) != 2 || cd.Points[1].V != 2000 {
		t.Fatalf("coarse windows = %+v, want second with 2000 counts", cd.Points)
	}
	if p50 := cd.Points[1].P50; p50 < 0.0008 || p50 > 0.12 {
		t.Errorf("merged p50 = %v, want within the two bursts' range", p50)
	}
}

func TestDistinctEntitySketches(t *testing.T) {
	fr := obs.NewFlightRecorder(64, 1)
	tl := New(Config{
		Registry:    obs.NewRegistry(),
		Flight:      fr,
		Resolutions: []Res{{Step: time.Second, Len: 4}},
		Detectors:   []Detector{},
	})

	for i := 0; i < 30; i++ {
		fr.Record(obs.ScanEvent{
			Table:  fmt.Sprintf("table%d", i%5),
			Client: fmt.Sprintf("10.0.0.%d:555", i%3),
		})
	}
	tickN(tl, testEpoch, 1)

	td, ok := tl.Series(MetricDistinctTables, "")
	if !ok || len(td.Points) != 1 {
		t.Fatalf("distinct-tables series missing: %+v", td)
	}
	if got := td.Points[0].V; got < 4 || got > 6 {
		t.Errorf("distinct tables ≈ %v, want ≈5", got)
	}
	cd, _ := tl.Series(MetricDistinctClients, "")
	if got := cd.Points[0].V; got < 2 || got > 4 {
		t.Errorf("distinct clients ≈ %v, want ≈3", got)
	}
	if td.Kind != "distinct" {
		t.Errorf("kind = %q, want distinct", td.Kind)
	}

	// Sampling must not hide entities: a recorder that samples away every
	// healthy event still feeds the sketches the full population.
	fr2 := obs.NewFlightRecorder(64, 1000)
	tl2 := New(Config{Registry: obs.NewRegistry(), Flight: fr2,
		Resolutions: []Res{{Step: time.Second, Len: 4}}, Detectors: []Detector{}})
	for i := 0; i < 20; i++ {
		fr2.Record(obs.ScanEvent{Table: fmt.Sprintf("t%d", i)})
	}
	tickN(tl2, testEpoch, 1)
	td2, _ := tl2.Series(MetricDistinctTables, "")
	if got := td2.Points[0].V; got < 17 || got > 23 {
		t.Errorf("sampled-away entities lost: distinct ≈ %v, want ≈20", got)
	}
}

func TestNilTimelineNoops(t *testing.T) {
	var tl *Timeline
	tl.Start()
	tl.Tick(time.Now())
	if _, ok := tl.Series("x", ""); ok {
		t.Error("nil timeline returned a series")
	}
	if tl.Metrics() != nil || tl.Resolutions() != nil || tl.Anomalies(5) != nil {
		t.Error("nil timeline returned data")
	}
	if tl.Trips() != 0 || tl.Dropped() != 0 || tl.Base() != 0 {
		t.Error("nil timeline returned nonzero scalars")
	}
	tl.Close()
}

func TestMaxSeriesCap(t *testing.T) {
	reg := obs.NewRegistry()
	tl := New(Config{Registry: reg, MaxSeries: 4,
		Resolutions: []Res{{Step: time.Second, Len: 2}}, Detectors: []Detector{}})
	for i := 0; i < 10; i++ {
		reg.Counter(fmt.Sprintf("overflow_%d_total", i), "")
	}
	tickN(tl, testEpoch, 1)
	// 2 entity series pre-exist; cap 4 leaves room for 2 counters; 8 drop.
	if got := len(tl.Metrics()); got != 4 {
		t.Errorf("tracked %d series, want 4", got)
	}
	if tl.Dropped() != 8 {
		t.Errorf("dropped = %d, want 8", tl.Dropped())
	}
	// Dropping is stable: another tick must not grow anything.
	tickN(tl, testEpoch.Add(time.Second), 1)
	if got := len(tl.Metrics()); got != 4 {
		t.Errorf("series grew past cap: %d", got)
	}
}

func TestParseResolutions(t *testing.T) {
	rs, err := ParseResolutions("1s:120, 10s:360,5m:288")
	if err != nil {
		t.Fatal(err)
	}
	want := []Res{{time.Second, 120}, {10 * time.Second, 360}, {5 * time.Minute, 288}}
	for i, r := range rs {
		if r != want[i] {
			t.Errorf("res %d = %+v, want %+v", i, r, want[i])
		}
	}
	if want[2].Label() != "5m" || want[0].Label() != "1s" {
		t.Errorf("labels: %q %q", want[2].Label(), want[0].Label())
	}
	for _, bad := range []string{"", "1s", "1s:0", "x:5", "1s:-3"} {
		if _, err := ParseResolutions(bad); err == nil {
			t.Errorf("ParseResolutions(%q) accepted", bad)
		}
	}
}

func TestRingWraps(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("wrap_total", "")
	tl := New(Config{Registry: reg,
		Resolutions: []Res{{Step: time.Second, Len: 4}}, Detectors: []Detector{}})
	now := testEpoch
	tl.Tick(now)
	for i := 1; i <= 10; i++ {
		c.Add(int64(i))
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	sd, _ := tl.Series("wrap_total", "")
	if len(sd.Points) != 4 {
		t.Fatalf("ring holds %d, want 4", len(sd.Points))
	}
	for i, want := range []float64{7, 8, 9, 10} {
		if sd.Points[i].V != want {
			t.Errorf("wrapped window %d = %v, want %v", i, sd.Points[i].V, want)
		}
	}
	// Timestamps strictly increase across the wrap.
	for i := 1; i < len(sd.Points); i++ {
		if sd.Points[i].T <= sd.Points[i-1].T {
			t.Errorf("timestamps not increasing: %v", sd.Points)
		}
	}
}

// TestTimelineRaceHammer drives concurrent instrument updates, flight
// recording, ticks, and reads through every public surface at once; its
// value is running under -race (the tier-1 suite does).
func TestTimelineRaceHammer(t *testing.T) {
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(128, 2)
	tl := New(Config{
		Registry: reg, Flight: fr,
		Resolutions: []Res{{Step: time.Second, Len: 16}, {Step: 3 * time.Second, Len: 8}},
		BundleDir:   t.TempDir(),
		Detectors: []Detector{{
			Name: "hammer-nonzero", Kind: KindNonZero,
			Metric: "hammer_total", Window: 1,
		}},
		Cooldown: 10 * time.Second, // simulated time: a handful of bundles
	})
	c := reg.Counter("hammer_total", "")
	d := reg.Distribution("hammer_seconds", "", 1e-9)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				d.Observe(int64(i%1000) * 1000)
				fr.Record(obs.ScanEvent{Table: fmt.Sprintf("t%d", i%7), Client: "c", QuarantinedPages: uint32(i % 2)})
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tl.Series("hammer_total", "")
				tl.Series("hammer_seconds", "3s")
				tl.Metrics()
				tl.Anomalies(8)
				tl.Trips()
			}
		}()
	}
	// Ticks run on the test goroutine, with a synchronous Inc before each so
	// every window is guaranteed nonzero no matter how the hammers schedule.
	now := testEpoch
	for i := 0; i < 50; i++ {
		c.Inc()
		now = now.Add(time.Second)
		tl.Tick(now)
	}
	close(stop)
	wg.Wait()

	if tl.Trips() == 0 {
		t.Error("hammer never tripped the nonzero detector")
	}
	sd, ok := tl.Series("hammer_total", "")
	if !ok || len(sd.Points) == 0 {
		t.Fatal("hammer series empty after 50 ticks")
	}
}

// TestStartCloseLifecycle exercises the real ticker goroutine briefly.
func TestStartCloseLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("life_total", "")
	tl := New(Config{Base: time.Millisecond, Registry: reg,
		Resolutions: []Res{{Step: time.Millisecond, Len: 64}}, Detectors: []Detector{}})
	tl.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.Inc()
		if sd, ok := tl.Series("life_total", ""); ok && len(sd.Points) > 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	tl.Close()
	sd, _ := tl.Series("life_total", "")
	if len(sd.Points) == 0 {
		t.Fatal("ticker never sealed a window")
	}
	n := len(sd.Points)
	time.Sleep(5 * time.Millisecond)
	if sd2, _ := tl.Series("life_total", ""); len(sd2.Points) < n {
		t.Error("Close lost windows")
	}
	tl.Close() // idempotent
}
