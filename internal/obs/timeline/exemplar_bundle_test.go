package timeline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streamhist/internal/obs"
)

// A debug bundle written while a Tracer is wired joins metric exemplars to
// their distributed traces: exemplars.json names the metric, the trace ID,
// and — when the tracer still holds it — the assembled trace itself.
func TestBundleIncludesExemplarTraces(t *testing.T) {
	const traceID = uint64(0x5eed)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(4)

	d := reg.Distribution("streamhist_scan_seconds", "docs", 1e-9)
	d.ObserveWithExemplar(2_000_000, traceID)
	st := tracer.Start(1, "lineitem", "l_tax", 4)
	st.EnableTrace(traceID, 0, obs.SpanSideServer)
	st.End(st.Begin("accept"), 0)
	tracer.Publish(st)

	c := reg.Counter("streamhist_durable_wal_dropped_total", "")
	tl := New(Config{
		Registry:    reg,
		Tracer:      tracer,
		Resolutions: []Res{{Step: time.Second, Len: 8}},
		Detectors: []Detector{{
			Name: "wal-drops", Kind: KindNonZero,
			Metric: "streamhist_durable_wal_dropped_total", Window: 1,
		}},
		BundleDir: dir,
		Cooldown:  time.Nanosecond,
	})

	now := testEpoch
	tl.Tick(now)
	c.Add(1)
	tl.Tick(now.Add(time.Second))
	if tl.Trips() != 1 {
		t.Fatalf("trips = %d", tl.Trips())
	}
	bundle := tl.Anomalies(1)[0].Bundle

	raw, err := os.ReadFile(filepath.Join(bundle, "anomaly.json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var man struct {
		Files []string `json:"files"`
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	listed := false
	for _, f := range man.Files {
		if f == "exemplars.json" {
			listed = true
		}
	}
	if !listed {
		t.Fatalf("manifest lacks exemplars.json: %v", man.Files)
	}

	raw, err = os.ReadFile(filepath.Join(bundle, "exemplars.json"))
	if err != nil {
		t.Fatal(err)
	}
	var exs []struct {
		Metric  string              `json:"metric"`
		Value   int64               `json:"value"`
		TraceID string              `json:"trace_id"`
		Trace   *obs.AssembledTrace `json:"trace"`
	}
	if err := json.Unmarshal(raw, &exs); err != nil {
		t.Fatalf("exemplars.json: %v", err)
	}
	if len(exs) != 1 {
		t.Fatalf("exemplars.json holds %d entries, want 1", len(exs))
	}
	ex := exs[0]
	if ex.Metric != "streamhist_scan_seconds" || ex.Value != 2_000_000 {
		t.Fatalf("exemplar entry = %+v", ex)
	}
	if ex.TraceID != fmt.Sprintf("%016x", traceID) {
		t.Fatalf("exemplar trace id %q", ex.TraceID)
	}
	if ex.Trace == nil || ex.Trace.TraceID != traceID || ex.Trace.ServerScans != 1 {
		t.Fatalf("exemplar's assembled trace = %+v", ex.Trace)
	}
}
