package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Span-ID derivation is the whole coordination protocol between the two
// sides of a traced scan: IDs must be deterministic, never zero, and
// distinct across sides, ordinals, and the high-bit attempt salt the server
// folds in for redialled traces.
func TestDeriveSpanIDDistinct(t *testing.T) {
	const traceID = uint64(0xdeadbeefcafef00d)
	sides := []uint64{
		SpanSideClient,
		SpanSideServer,
		SpanSideStream,
		SpanSideServer | 1<<8,
		SpanSideServer | 2<<8,
		SpanSideServer | 3<<8,
	}
	seen := make(map[uint64]string)
	for _, side := range sides {
		for n := 0; n < 16; n++ {
			id := DeriveSpanID(traceID, side, n)
			if id == 0 {
				t.Fatalf("DeriveSpanID(%#x, %#x, %d) = 0", traceID, side, n)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("span id %#x collides: side=%#x n=%d and %s", id, side, n, prev)
			}
			seen[id] = "earlier"
			if again := DeriveSpanID(traceID, side, n); again != id {
				t.Fatalf("DeriveSpanID not deterministic: %#x then %#x", id, again)
			}
		}
	}
	// Different traces must not share span IDs either (same side/ordinal).
	if DeriveSpanID(1, SpanSideClient, 0) == DeriveSpanID(2, SpanSideClient, 0) {
		t.Fatal("distinct traces derived the same root span id")
	}
}

// EnableTrace flips a scan trace into distributed mode: spans get derived
// IDs parented under the root, BeginRoot takes the root ID itself, and
// Reparent moves lane spans under a phase span.
func TestScanTraceDistributedIDs(t *testing.T) {
	const traceID, parent = uint64(0x1234), uint64(0x9999)
	tr := StartScanTrace(1, "lineitem", "l_tax", 8)
	if got := tr.EnableTrace(traceID, parent, SpanSideClient); got != DeriveSpanID(traceID, SpanSideClient, 0) {
		t.Fatalf("EnableTrace root = %#x", got)
	}
	root := tr.BeginRoot("scan")
	child := tr.Begin("request")
	tr.End(child, 0)
	tr.End(root, 0)
	lane := tr.AddSpan("lane", 0, 0, 0, 7, false)
	tr.Reparent(lane, tr.SpanIDAt(child))

	if tr.Spans[root].SpanID != tr.RootSpanID || tr.Spans[root].ParentID != parent {
		t.Fatalf("root span = %+v, want span id %#x parent %#x", tr.Spans[root], tr.RootSpanID, parent)
	}
	if tr.Spans[child].ParentID != tr.RootSpanID {
		t.Fatalf("child parent = %#x, want root %#x", tr.Spans[child].ParentID, tr.RootSpanID)
	}
	if tr.Spans[lane].ParentID != tr.Spans[child].SpanID {
		t.Fatalf("reparent did not move the lane span: %+v", tr.Spans[lane])
	}
	// Out-of-range and zero-parent reparents are no-ops, not panics.
	tr.Reparent(99, 1)
	tr.Reparent(lane, 0)
	if tr.Spans[lane].ParentID != tr.Spans[child].SpanID {
		t.Fatal("zero-parent reparent moved the span")
	}
}

// An untraced ScanTrace must keep the legacy JSON shape: no span IDs, no
// trace fields — EnableTrace with a zero trace ID stays off.
func TestScanTraceUntracedKeepsLegacyShape(t *testing.T) {
	tr := StartScanTrace(1, "t", "c", 4)
	if got := tr.EnableTrace(0, 5, SpanSideClient); got != 0 {
		t.Fatalf("EnableTrace(0) = %#x, want 0", got)
	}
	tr.End(tr.Begin("accept"), 0)
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"trace_id", "span_id", "parent_id", "root_span_id"} {
		if bytes.Contains(b, []byte(field)) {
			t.Fatalf("untraced JSON leaks %q: %s", field, b)
		}
	}
}

// The tracer's report store and Assemble stitch both halves of a trace: the
// client's shipped spans plus every server scan that continued the trace —
// one synthesized "serve" root each — ordered by start time.
func TestTracerReportAndAssemble(t *testing.T) {
	const traceID = uint64(0xabc123)
	tracer := NewTracer(8)

	if tracer.Assemble(traceID) != nil {
		t.Fatal("Assemble of an unknown trace must be nil")
	}
	if tracer.Assemble(0) != nil {
		t.Fatal("Assemble(0) must be nil")
	}

	clientRoot := DeriveSpanID(traceID, SpanSideClient, 0)
	tracer.Report(traceID, []Span{
		{Name: "scan", Lane: -1, StartNS: 100, DurNS: 900, SpanID: clientRoot},
		{Name: "request", Lane: -1, StartNS: 110, DurNS: 20,
			SpanID: DeriveSpanID(traceID, SpanSideClient, 1), ParentID: clientRoot},
	})
	if got := tracer.Reported(traceID); len(got) != 2 {
		t.Fatalf("Reported = %d spans, want 2", len(got))
	}
	// A retried trailer appends rather than replacing.
	tracer.Report(traceID, []Span{{Name: "redial", Lane: -1, StartNS: 400, DurNS: 10,
		SpanID: DeriveSpanID(traceID, SpanSideClient, 2), ParentID: clientRoot}})
	if got := tracer.Reported(traceID); len(got) != 3 {
		t.Fatalf("after second report: %d spans, want 3", len(got))
	}

	// Two server attempts continuing the same trace (a redialled scan): each
	// gets its own side salt, so its own serve root at assembly.
	for attempt := uint64(1); attempt <= 2; attempt++ {
		st := tracer.Start(attempt, "lineitem", "l_tax", 4)
		st.EnableTrace(traceID, clientRoot, SpanSideServer|attempt<<8)
		st.End(st.Begin("accept"), 3)
		tracer.Publish(st)
	}

	at := tracer.Assemble(traceID)
	if at == nil {
		t.Fatal("Assemble returned nil for a known trace")
	}
	if at.TraceID != traceID || at.ServerScans != 2 || at.ClientSpans != 3 {
		t.Fatalf("assembled = %+v, want 2 server scans / 3 client spans", at)
	}
	if at.Table != "lineitem" || at.Column != "l_tax" {
		t.Fatalf("assembled table = %s.%s", at.Table, at.Column)
	}
	serveRoots := map[uint64]bool{}
	ids := map[uint64]bool{0: true}
	for _, sp := range at.Spans {
		ids[sp.SpanID] = true
		if sp.Name == "serve" {
			if sp.Source != "server" || sp.ParentID != clientRoot {
				t.Fatalf("serve root %+v, want server-sourced child of %#x", sp, clientRoot)
			}
			serveRoots[sp.SpanID] = true
		}
	}
	if len(serveRoots) != 2 {
		t.Fatalf("%d distinct serve roots, want 2", len(serveRoots))
	}
	// Every span's parent must resolve inside the tree (or be the root's 0).
	for _, sp := range at.Spans {
		if !ids[sp.ParentID] {
			t.Fatalf("span %q parent %#x not in the tree", sp.Name, sp.ParentID)
		}
	}
	// Spans are ordered by start time.
	for i := 1; i < len(at.Spans); i++ {
		if at.Spans[i].StartNS < at.Spans[i-1].StartNS {
			t.Fatalf("spans out of order at %d: %d after %d", i, at.Spans[i].StartNS, at.Spans[i-1].StartNS)
		}
	}
	if at.EndNS < at.StartNS {
		t.Fatalf("assembled window [%d, %d] inverted", at.StartNS, at.EndNS)
	}
}

// The Chrome trace-event export must be valid JSON with the documented
// shape: process-name metadata for both sides, one "X" event per span, and
// the trace identity in otherData.
func TestWriteTraceEventsShape(t *testing.T) {
	const traceID = uint64(0x77aa)
	tracer := NewTracer(4)
	clientRoot := DeriveSpanID(traceID, SpanSideClient, 0)
	tracer.Report(traceID, []Span{{Name: "scan", Lane: -1, StartNS: 1000, DurNS: 5000, SpanID: clientRoot}})
	st := tracer.Start(1, "t", "c", 4)
	st.EnableTrace(traceID, clientRoot, SpanSideServer)
	st.End(st.Begin("accept"), 0)
	tracer.Publish(st)

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, tracer.Assemble(traceID)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			TS   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("tracez output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	var meta, slices int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if ev.TS == nil || ev.Dur == nil || *ev.TS < 0 || *ev.Dur < 0 {
				t.Fatalf("slice %q lacks a sane ts/dur: %+v", ev.Name, ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta < 2 || slices < 3 {
		t.Fatalf("%d metadata + %d slice events, want >=2 and >=3", meta, slices)
	}
	if doc.OtherData["trace_id"] != "00000000000077aa" {
		t.Fatalf("otherData trace_id = %q", doc.OtherData["trace_id"])
	}

	// A nil assembled trace still writes parseable (empty) JSON.
	buf.Reset()
	if err := WriteTraceEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil || len(doc.TraceEvents) != 0 {
		t.Fatalf("nil trace export: %s (err %v)", buf.Bytes(), err)
	}
}
