package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// /traces and /debug/tracez share the ?id= contract: 400 for a missing,
// malformed, or zero id; 404 for a well-formed id the tracer holds nothing
// for; 200 with the assembled tree otherwise (hex or decimal id).
func TestTraceEndpointsParamErrors(t *testing.T) {
	o := New()
	srv := httptest.NewServer(Handler(o, nil))
	defer srv.Close()

	for _, endpoint := range []string{"/traces", "/debug/tracez"} {
		for _, tc := range []struct {
			query string
			want  int
		}{
			{"", 400},              // missing id
			{"?id=", 400},          // empty id
			{"?id=zz", 400},        // not hex, not decimal
			{"?id=0", 400},         // zero is the untraced sentinel
			{"?id=0x0", 400},       // zero in hex
			{"?id=deadbeef", 404},  // well-formed, unknown
			{"?id=123456789", 404}, // decimal, unknown
		} {
			resp, body := get(t, srv, endpoint+tc.query)
			if resp.StatusCode != tc.want {
				t.Errorf("GET %s%s = %d, want %d (%s)", endpoint, tc.query, resp.StatusCode, tc.want, body)
			}
		}
	}
}

func TestTraceEndpointsServeAssembledTrace(t *testing.T) {
	const traceID = uint64(0xabc123)
	o := New()
	clientRoot := DeriveSpanID(traceID, SpanSideClient, 0)
	o.Trace.Report(traceID, []Span{{Name: "scan", Lane: -1, StartNS: 10, DurNS: 50, SpanID: clientRoot}})
	st := o.Trace.Start(1, "lineitem", "l_tax", 4)
	st.EnableTrace(traceID, clientRoot, SpanSideServer)
	st.End(st.Begin("accept"), 0)
	o.Trace.Publish(st)

	srv := httptest.NewServer(Handler(o, nil))
	defer srv.Close()

	// The id parses in canonical %016x, 0x-prefixed, and decimal forms.
	for _, q := range []string{
		fmt.Sprintf("%016x", traceID),
		fmt.Sprintf("%#x", traceID),
		fmt.Sprintf("%d", traceID),
	} {
		resp, body := get(t, srv, "/traces?id="+q)
		if resp.StatusCode != 200 {
			t.Fatalf("GET /traces?id=%s = %d: %s", q, resp.StatusCode, body)
		}
		var at AssembledTrace
		if err := json.Unmarshal(body, &at); err != nil {
			t.Fatalf("/traces?id=%s: %v", q, err)
		}
		if at.TraceID != traceID || at.ServerScans != 1 || at.ClientSpans != 1 {
			t.Fatalf("/traces?id=%s assembled %+v", q, at)
		}
	}

	resp, body := get(t, srv, fmt.Sprintf("/debug/tracez?id=%016x", traceID))
	if resp.StatusCode != 200 {
		t.Fatalf("GET /debug/tracez = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Fatalf("tracez content type = %q", ct)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("tracez is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("tracez served no events for a known trace")
	}
}
