package obs

import (
	"math"
	"testing"
)

// TestDistBinRoundTrip pins the log-linear geometry: every bin's lowest
// representative maps back to that bin, and representatives are strictly
// increasing, so the quantile machinery sees a sorted binned view.
func TestDistBinRoundTrip(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < distNumBins; i++ {
		low := distLow(i)
		if low <= prev {
			t.Fatalf("distLow not strictly increasing at bin %d: %d <= %d", i, low, prev)
		}
		prev = low
		if got := distIndex(low); got != i {
			t.Fatalf("distIndex(distLow(%d)) = %d", i, got)
		}
	}
}

// TestDistIndexErrorBound checks the quantisation contract: a value lands in
// a bin whose representative is no more than 1/subBuckets (6.25%) below it.
func TestDistIndexErrorBound(t *testing.T) {
	for _, v := range []int64{
		0, 1, 15, 31, 32, 33, 100, 1000, 4095, 4096, 65537,
		1 << 20, 1<<20 + 12345, 1 << 40, math.MaxInt64 - 1, math.MaxInt64,
	} {
		i := distIndex(v)
		if i < 0 || i >= distNumBins {
			t.Fatalf("distIndex(%d) = %d out of range", v, i)
		}
		low := distLow(i)
		if low > v {
			t.Fatalf("bin representative %d above value %d", low, v)
		}
		if v >= 2*distSubBuckets {
			if relErr := float64(v-low) / float64(v); relErr > 1.0/distSubBuckets {
				t.Fatalf("value %d binned to %d: relative error %.4f > %.4f",
					v, low, relErr, 1.0/distSubBuckets)
			}
		} else if low != v {
			t.Fatalf("small value %d not recorded exactly (bin low %d)", v, low)
		}
	}
}

func TestDistributionQuantiles(t *testing.T) {
	d := newDistribution("q", 1)
	const n = 100000
	for v := int64(1); v <= n; v++ {
		d.Observe(v)
	}
	if d.Count() != n {
		t.Fatalf("count = %d, want %d", d.Count(), n)
	}
	if d.Sum() != n*(n+1)/2 {
		t.Fatalf("sum = %d, want %d", d.Sum(), int64(n)*(n+1)/2)
	}
	// Uniform 1..n: quantile q should sit near q*n. The log-linear bins
	// quantise at 6.25% and the equi-depth pass adds bucket-width slack, so
	// allow 10% relative error.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := d.Quantile(q)
		want := q * n
		if relErr := math.Abs(float64(got)-want) / want; relErr > 0.10 {
			t.Fatalf("Quantile(%.2f) = %d, want ~%.0f (rel err %.3f)", q, got, want, relErr)
		}
	}
}

func TestDistributionNegativeClampsAndEmpty(t *testing.T) {
	d := newDistribution("neg", 1)
	if d.Histogram(8) != nil {
		t.Fatal("empty distribution produced a histogram")
	}
	if d.Quantile(0.5) != 0 {
		t.Fatal("empty distribution produced a quantile")
	}
	d.Observe(-50)
	if d.Count() != 1 || d.Sum() != 0 {
		t.Fatalf("negative observation: count=%d sum=%d, want 1/0", d.Count(), d.Sum())
	}
	if got := d.Quantile(0.5); got != 0 {
		t.Fatalf("clamped observation quantile = %d, want 0", got)
	}
}

// TestDistributionSingleSample: one observation is the smallest population a
// scrape can see mid-flight. Every quantile must come back finite — the
// observed value up to bin quantisation, never 0-by-accident, NaN, or a
// panic — and count/sum must reflect the one sample.
func TestDistributionSingleSample(t *testing.T) {
	d := newDistribution("one", 1)
	const v = 1000
	d.Observe(v)
	if d.Count() != 1 || d.Sum() != v {
		t.Fatalf("count=%d sum=%d, want 1/%d", d.Count(), d.Sum(), v)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		got := d.Quantile(q)
		if got <= 0 || got > v {
			t.Fatalf("Quantile(%.2f) = %d with one sample of %d", q, got, v)
		}
		// Log-linear bins quantise at 6.25%: the answer is the sample's bin.
		if float64(v-got)/v > 0.0625 {
			t.Fatalf("Quantile(%.2f) = %d, more than one bin below the sample %d", q, got, v)
		}
	}
	// Out-of-range q must degrade to a harmless value, not panic.
	for _, q := range []float64{-0.5, 1.5} {
		if got := d.Quantile(q); got < 0 || got > v {
			t.Fatalf("Quantile(%v) = %d, want clamped into [0, %d]", q, got, v)
		}
	}
}

// TestDistributionSkewedQuantiles feeds a bimodal latency shape (fast bulk,
// slow tail) and checks the tail quantile lands in the slow mode — the whole
// point of backing /metrics with the streaming histogram.
func TestDistributionSkewedQuantiles(t *testing.T) {
	d := newDistribution("skew", 1)
	for i := 0; i < 9800; i++ {
		d.Observe(1000) // 1µs bulk
	}
	for i := 0; i < 200; i++ {
		d.Observe(5000000) // 5ms tail
	}
	p50 := d.Quantile(0.5)
	p99 := d.Quantile(0.99)
	if p50 > 1100 {
		t.Fatalf("p50 = %d, want ~1000", p50)
	}
	if p99 < 900000 {
		t.Fatalf("p99 = %d, want to land in the slow mode", p99)
	}
}
