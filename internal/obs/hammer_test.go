package obs

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryScrapeHammer is the concurrency gate for the whole metrics
// path (run it under -race): writer goroutines hammer counters, gauges,
// distributions, trace publication, and GaugeFunc re-registration while a
// scraper loops over the real /metrics handler. Every scrape must be a
// well-formed exposition, and the hammered counter must read monotonically
// non-decreasing across scrapes — a torn or racy read would show up as a
// dip. The writers run until the scraper has seen enough overlapping
// scrapes, so the test cannot degenerate into scraping a quiesced registry.
func TestRegistryScrapeHammer(t *testing.T) {
	const (
		writers      = 8
		minIters     = 1000 // per writer, even if the scraper finishes first
		minScrapes   = 50   // scrapes guaranteed to overlap the writers
		labeledLanes = 4
	)
	o := New()
	handler := Handler(o, nil)

	// Pre-register the shared counter so even a scrape that wins the race
	// against every writer's first iteration sees a well-formed exposition.
	o.Reg.Counter("hammer_total", "hammered counter")

	var stopWriters atomic.Bool
	counts := make([]int64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns one labeled gauge and shares everything else,
			// so the scrape sees both contended and uncontended instruments.
			lane := o.Reg.Gauge(fmt.Sprintf("hammer_lane_cycles{lane=%q}", fmt.Sprint(w%labeledLanes)), "")
			c := o.Reg.Counter("hammer_total", "hammered counter")
			d := o.Reg.Distribution("hammer_latency_seconds", "", 1e-9)
			i := 0
			for ; i < minIters || !stopWriters.Load(); i++ {
				c.Inc()
				lane.Set(int64(i))
				d.Observe(int64(i%1000) * 1000)
				if i%500 == 0 {
					// Re-wiring a computed gauge mid-scrape must be safe.
					v := float64(i)
					o.Reg.GaugeFunc("hammer_rewired", "", func() float64 { return v })
				}
				if i%100 == 0 {
					tt := o.Trace.Start(uint64(w<<32+i), "hammer", "c0", 4)
					tt.End(tt.Begin("accept"), int64(i))
					o.Trace.Publish(tt)
				}
			}
			counts[w] = int64(i)
		}(w)
	}

	scrapeOnce := func(path string) []byte {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		return rec.Body.Bytes()
	}
	check := func(prev int64) int64 {
		body := scrapeOnce("/metrics")
		if err := ValidateExposition(body); err != nil {
			t.Fatalf("scrape produced a malformed exposition: %v\n%s", err, body)
		}
		cur, ok := sampleValue(body, "hammer_total")
		if !ok {
			t.Fatalf("scrape lost the hammered counter:\n%s", body)
		}
		if cur < prev {
			t.Fatalf("hammer_total went backwards (%d -> %d)", prev, cur)
		}
		// Interleave a /scans read so the trace ring is hammered too.
		scrapeOnce("/scans?n=8")
		return cur
	}

	var prev int64 = -1
	for s := 0; s < minScrapes; s++ {
		prev = check(prev)
	}
	stopWriters.Store(true)
	wg.Wait()

	// The writers have joined: the next scrape must see every increment.
	final := check(prev)
	var want int64
	for _, n := range counts {
		want += n
	}
	if final != want {
		t.Fatalf("final hammer_total = %d, want %d", final, want)
	}
	t.Logf("%d overlapping scrapes validated against %d writers (%d increments)", minScrapes, writers, want)
}

// sampleValue extracts one un-labeled integer sample from an exposition.
func sampleValue(body []byte, name string) (int64, bool) {
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), name+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}
