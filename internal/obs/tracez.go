package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Chrome trace-event export: the hand-rolled encoder that makes an
// assembled distributed trace loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing — the same spirit as hwprof's hand-rolled pprof encoder,
// no external dependencies. The JSON Object Format is used: a traceEvents
// array of complete ("ph":"X") events with microsecond timestamps, one fake
// pid per process role so the client and server rows render side by side.

// tracezPid maps a span source to its synthetic process id in the export.
func tracezPid(source string) int {
	if source == "client" {
		return 1
	}
	return 2 // server (and anything unlabelled recorded server-side)
}

// WriteTraceEvents renders an assembled trace as Chrome trace-event JSON.
// Timestamps are rebased to the trace's start so the viewer opens at t=0.
func WriteTraceEvents(w io.Writer, at *AssembledTrace) error {
	if at == nil || len(at.Spans) == 0 {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	bw := bufio.NewWriter(w)
	io.WriteString(bw, `{"traceEvents":[`)
	// Metadata events name the two process rows.
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"histclient"}}`)
	fmt.Fprintf(bw, `,{"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"histserved"}}`)
	for _, sp := range at.Spans {
		ts := float64(sp.StartNS-at.StartNS) / 1e3 // µs
		dur := float64(sp.DurNS) / 1e3
		if dur < 0 {
			dur = 0
		}
		tid := 0
		if sp.Lane >= 0 {
			tid = sp.Lane + 1
		}
		fmt.Fprintf(bw, `,{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"span_id":"%016x","parent_id":"%016x","hw_cycles":%d,"retired":%t}}`,
			strconv.Quote(sp.Name), strconv.Quote(sp.Source),
			formatFloat(ts), formatFloat(dur),
			tracezPid(sp.Source), tid,
			sp.SpanID, sp.ParentID, sp.HWCycles, sp.Retired)
	}
	fmt.Fprintf(bw, `],"displayTimeUnit":"ms","otherData":{"trace_id":"%016x","table":%s,"column":%s}}`,
		at.TraceID, strconv.Quote(at.Table), strconv.Quote(at.Column))
	return bw.Flush()
}
