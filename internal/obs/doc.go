// Package obs is the repository's self-hosted observability layer: a
// zero-dependency metrics registry, per-scan trace spans, and the HTTP
// introspection surface histserved mounts on -metrics-addr.
//
// The design discipline mirrors the paper's no-cost-to-the-stream rule: the
// instrumentation primitives are single atomics (counters, gauges) or a
// handful of atomics (distributions), registry lookups happen at wiring time
// rather than on the hot path, and trace spans live in slabs allocated once
// per scan — never per page. Turning every instrument off is a nil registry:
// all instrument methods are nil-safe no-ops, so the same call sites compile
// to a pointer check when observability is unwired (the pattern
// internal/faults established for chaos hooks).
//
// Dogfooding is the point, not a gimmick: latency and size distributions are
// recorded into a fixed array of atomic bins — the same "binned sorted view"
// the paper's Binner maintains in accelerator memory — and their p50/p90/p99
// are produced by streaming the bins through this repository's own equi-depth
// histogram construction (hist.BuildEquiDepthFromBins + Histogram.Quantile).
// The system's telemetry is summarised by the algorithm the system exists to
// accelerate.
package obs
