package obs

import (
	"sync"
)

// ScanEvent is one wide flight-recorder record: everything a single scan did,
// in one row — identity, volume, outcome, fault accounting, and the span
// timings — correlated with the scan's trace (ScanTrace.ID) and its slog
// records by the shared scan ID. Wide events are the paper's thesis applied
// to the monitoring plane: the scan already computed every one of these
// numbers while it moved the data; recording them is one struct copy at the
// tail of the scan, never per page or per value.
type ScanEvent struct {
	// Seq is the recorder-assigned sequence number. It counts every event
	// *offered*, including those tail-sampling chose not to retain, so gaps
	// in the retained ring quantify exactly what sampling dropped.
	Seq uint64 `json:"seq"`
	// ScanID is the scan's process-wide identifier — the same number in the
	// ScanTrace, in the slog "scan" attribute, and here.
	ScanID uint64 `json:"scan_id"`
	// TraceID is the distributed trace the scan belonged to; zero for
	// untraced scans (the legacy JSON shape is unchanged).
	TraceID uint64 `json:"trace_id,omitempty"`
	// Source is the layer that emitted the event: "server", "client", or
	// "stream".
	Source string `json:"source"`
	Table  string `json:"table"`
	Column string `json:"column,omitempty"`
	// Client is the peer address for server-side events.
	Client string `json:"client,omitempty"`

	StartNS int64 `json:"start_ns"`
	WallNS  int64 `json:"wall_ns"`

	Pages       uint32 `json:"pages"`
	Bytes       uint64 `json:"bytes"`
	Rows        uint64 `json:"rows"`
	AccelCycles uint64 `json:"accel_cycles,omitempty"`

	Refreshed bool   `json:"refreshed"`
	Degraded  bool   `json:"degraded,omitempty"`
	Resumed   bool   `json:"resumed,omitempty"`
	Retries   uint32 `json:"retries,omitempty"`
	Err       string `json:"error,omitempty"`

	QuarantinedPages uint32 `json:"quarantined_pages,omitempty"`
	LanesRetired     uint32 `json:"lanes_retired,omitempty"`
	SkippedTuples    uint64 `json:"skipped_tuples,omitempty"`
	ReplayedChunks   uint32 `json:"replayed_chunks,omitempty"`

	// Spans are copied from the scan's trace after it is published (and so
	// immutable), joining the wide row to the per-phase timing breakdown.
	Spans []Span `json:"spans,omitempty"`

	// Anomalous is the recorder's tail-sampling verdict: anomalous events
	// are always retained; healthy ones are 1-in-SampleEvery sampled.
	Anomalous bool `json:"anomalous"`
}

// anomalous is the tail-sampling predicate: anything that failed, degraded,
// retried, resumed, or shed work is worth keeping unconditionally.
func (ev *ScanEvent) anomalous() bool {
	return ev.Err != "" || ev.Degraded || ev.Resumed || ev.Retries > 0 ||
		ev.QuarantinedPages > 0 || ev.LanesRetired > 0 || ev.SkippedTuples > 0 ||
		ev.ReplayedChunks > 0
}

// flightEntity is the always-recorded identity pair of an offered event,
// kept even when the wide event itself is sampled away, so per-window
// distinct-table/client sketches see the full population.
type flightEntity struct {
	seq           uint64
	table, client string
}

// DefaultFlightRing is how many wide events the recorder retains.
const DefaultFlightRing = 1024

// DefaultFlightSample keeps one in this many healthy events (anomalous
// events are always kept).
const DefaultFlightSample = 4

// FlightRecorder is the always-on scan flight recorder: a bounded ring of
// wide per-scan events with tail-based sampling. Every completed scan offers
// one event; anomalous scans (errors, degradation, quarantine, retries) are
// always retained, healthy scans are 1-in-N sampled so a long quiet stretch
// cannot evict the interesting tail. A nil *FlightRecorder no-ops everywhere,
// so recording sites never guard.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []ScanEvent
	next int

	entities    []flightEntity
	entitiesNxt int

	seq     uint64 // events offered (and sequence source)
	kept    uint64
	sampled uint64 // healthy events dropped by sampling

	sampleEvery uint64
	healthySeen uint64
}

// NewFlightRecorder returns a recorder retaining up to capacity events
// (<=0 means DefaultFlightRing) and keeping one in sampleEvery healthy
// events (<=0 means DefaultFlightSample; 1 keeps everything).
func NewFlightRecorder(capacity, sampleEvery int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRing
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultFlightSample
	}
	return &FlightRecorder{
		ring:        make([]ScanEvent, 0, capacity),
		entities:    make([]flightEntity, 0, capacity),
		sampleEvery: uint64(sampleEvery),
	}
}

// Record offers one completed scan's wide event. The recorder assigns the
// sequence number, applies the tail-sampling policy, and always notes the
// event's (table, client) identity for the distinct-entity sketches even
// when the wide row is sampled away. Nil-safe.
func (f *FlightRecorder) Record(ev ScanEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	ev.Seq = f.seq
	ev.Anomalous = ev.anomalous()

	ent := flightEntity{seq: ev.Seq, table: ev.Table, client: ev.Client}
	if len(f.entities) < cap(f.entities) {
		f.entities = append(f.entities, ent)
	} else {
		f.entities[f.entitiesNxt] = ent
		f.entitiesNxt = (f.entitiesNxt + 1) % len(f.entities)
	}

	if !ev.Anomalous {
		f.healthySeen++
		if f.sampleEvery > 1 && f.healthySeen%f.sampleEvery != 1 {
			f.sampled++
			return
		}
	}
	f.kept++
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.next] = ev
		f.next = (f.next + 1) % len(f.ring)
	}
}

// Recent returns up to n retained events, newest first. Nil-safe.
func (f *FlightRecorder) Recent(n int) []ScanEvent {
	if f == nil || n <= 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n > len(f.ring) {
		n = len(f.ring)
	}
	out := make([]ScanEvent, 0, n)
	// The newest event sits just behind the write cursor once the ring is
	// full; while still filling, it is the last appended element.
	newest := len(f.ring) - 1
	if len(f.ring) == cap(f.ring) && cap(f.ring) > 0 {
		newest = (f.next - 1 + len(f.ring)) % len(f.ring)
	}
	for i := 0; i < len(f.ring) && len(out) < n; i++ {
		idx := (newest - i + 2*len(f.ring)) % len(f.ring)
		out = append(out, f.ring[idx])
	}
	return out
}

// EntitiesSince returns the (table, client) identities of events offered
// after seq — all of them, retained or sampled away — oldest first, along
// with the highest sequence number covered. Nil-safe.
func (f *FlightRecorder) EntitiesSince(seq uint64) (tables, clients []string, last uint64) {
	if f == nil {
		return nil, nil, seq
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	last = seq
	for i := 0; i < len(f.entities); i++ {
		// Walk oldest → newest: the oldest entry sits at the write cursor
		// once the ring is full, at index 0 while it is still filling.
		idx := i
		if len(f.entities) == cap(f.entities) && cap(f.entities) > 0 {
			idx = (f.entitiesNxt + i) % len(f.entities)
		}
		e := f.entities[idx]
		if e.seq <= seq {
			continue
		}
		if e.table != "" {
			tables = append(tables, e.table)
		}
		if e.client != "" {
			clients = append(clients, e.client)
		}
		if e.seq > last {
			last = e.seq
		}
	}
	return tables, clients, last
}

// Stats reports the recorder's accounting: events offered, events retained,
// and healthy events dropped by sampling. Nil-safe.
func (f *FlightRecorder) Stats() (offered, kept, sampledAway uint64) {
	if f == nil {
		return 0, 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq, f.kept, f.sampled
}
