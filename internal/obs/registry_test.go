package obs

import (
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("streamhist_test_total", "help")
	b := r.Counter("streamhist_test_total", "other help ignored")
	if a != b {
		t.Fatal("second registration of the same counter returned a different instrument")
	}
	a.Add(3)
	b.Inc()
	if got := a.Value(); got != 4 {
		t.Fatalf("shared counter = %d, want 4", got)
	}

	g := r.Gauge("streamhist_test_gauge", "")
	if g2 := r.Gauge("streamhist_test_gauge", ""); g2 != g {
		t.Fatal("gauge get-or-create returned a different instrument")
	}
	d := r.Distribution("streamhist_test_seconds", "", 1e-9)
	if d2 := r.Distribution("streamhist_test_seconds", "", 123); d2 != d {
		t.Fatal("distribution get-or-create returned a different instrument")
	}
	if d.scale != 1e-9 {
		t.Fatalf("scale = %v, want the first registration's 1e-9", d.scale)
	}
}

func TestRegistryLabeledNamesAreDistinct(t *testing.T) {
	r := NewRegistry()
	l0 := r.Gauge(`lane_cycles{lane="0"}`, "")
	l1 := r.Gauge(`lane_cycles{lane="1"}`, "")
	if l0 == l1 {
		t.Fatal("different label sets shared an instrument")
	}
	l0.Set(7)
	l1.Set(9)
	if l0.Value() != 7 || l1.Value() != 9 {
		t.Fatal("labeled gauges shared state")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("streamhist_mixed", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("streamhist_mixed", "")
}

func TestRegistryBadNamesPanic(t *testing.T) {
	bad := []string{
		"",                   // empty
		"9starts_with_digit", // leading digit
		"has-dash",           // illegal rune
		"ok{",                // unterminated label block
		"ok{}",               // empty label block
		`ok{lane=3}`,         // unquoted value
		`ok{=three}`,         // missing label name
		`ok{la-ne="3"}`,      // bad label name
		`ok{lane="3"}extra`,  // trailing junk after the block
		`ok{lane:sep="3"}`,   // colon not allowed in label names
	}
	r := NewRegistry()
	for _, name := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %q did not panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestLabelValueEscaping(t *testing.T) {
	raw := "a\"b\\c\nd"
	esc := LabelValue(raw)
	if want := `a\"b\\c\nd`; esc != want {
		t.Fatalf("LabelValue(%q) = %q, want %q", raw, esc, want)
	}
	// The escaped value must register and expose cleanly.
	r := NewRegistry()
	r.Counter(`streamhist_escaped_total{path="`+esc+`"}`, "").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition([]byte(sb.String())); err != nil {
		t.Fatalf("escaped label broke the exposition: %v", err)
	}
}

func TestGaugeFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("streamhist_fn", "", func() float64 { return 1 })
	r.GaugeFunc("streamhist_fn", "", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "streamhist_fn 2\n") {
		t.Fatalf("re-registered GaugeFunc did not win:\n%s", sb.String())
	}
}

func TestCounterRejectsNegativeDeltas(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("streamhist_mono_total", "")
	c.Add(5)
	c.Add(-3)
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after negative add = %d, want 5", got)
	}
	g := r.Gauge("streamhist_updown", "")
	g.Add(5)
	g.Add(-3)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after negative add = %d, want 2", got)
	}
}

// TestNilSafety pins the contract the whole codebase leans on: a nil
// registry hands out nil instruments and every operation on them (and on nil
// traces) is a no-op, so instrumented components never guard.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	d := r.Distribution("x", "", 1)
	if c != nil || g != nil || d != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	d.Observe(1)
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || d.Count() != 0 || d.Sum() != 0 {
		t.Fatal("nil instruments reported nonzero values")
	}
	if d.Histogram(4) != nil || d.Quantile(0.5) != 0 {
		t.Fatal("nil distribution produced a histogram")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}

	var tr *Tracer
	tt := tr.Start(1, "t", "c", 4)
	if tt != nil {
		t.Fatal("nil tracer handed out a live trace")
	}
	tt.End(tt.Begin("x"), 1)
	tt.AddSpan("x", 0, 0, 0, 0, false)
	tr.Publish(tt)
	if tr.Total() != 0 || tr.Recent(4) != nil {
		t.Fatal("nil tracer reported published traces")
	}

	var o *Obs
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("nil Obs handed out live facilities")
	}
	o.Logger().Info("dropped")
}
