package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers once per metric
// family, counters and gauges as single samples, distributions as summaries
// with p50/p90/p99 quantile samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, m := range sortedForExposition(r.snapshot()) {
		if m.base != lastBase {
			lastBase = m.base
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.base, escapeHelp(m.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.base, m.kind)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", m.name, formatFloat(m.fnValue()))
		case kindDist:
			writeSummary(bw, m)
		}
	}
	return bw.Flush()
}

// writeSummary renders one distribution as a Prometheus summary family.
func writeSummary(w io.Writer, m *metric) {
	d := m.dist
	h := d.Histogram(distQuantileBuckets)
	base, labels := m.base, ""
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		labels = m.name[i+1 : len(m.name)-1]
	}
	ex, hasEx := d.Exemplar()
	for _, q := range distQuantiles {
		var v int64
		if h != nil {
			if qv, err := h.Quantile(q); err == nil {
				v = qv
			}
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		fmt.Fprintf(w, "%s{%s%squantile=\"%s\"} %s",
			base, labels, sep, formatFloat(q), formatFloat(float64(v)*d.scale))
		// The tail quantile carries the OpenMetrics exemplar: the p99 sample
		// links to the distributed trace behind the tail.
		if hasEx && q == distQuantiles[len(distQuantiles)-1] {
			fmt.Fprintf(w, " # {trace_id=\"%016x\"} %s", ex.TraceID, formatFloat(float64(ex.Value)*d.scale))
		}
		fmt.Fprintln(w)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(float64(d.Sum())*d.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, d.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ValidateExposition parses a Prometheus text exposition document and
// returns the first malformed line it finds, or nil when every line is
// well-formed. It checks comment structure, metric-name and label syntax,
// and that every sample value parses as a float. The CI metrics-smoke job
// and `histcli metrics -check` both gate on this, so a formatting
// regression in the registry fails fast instead of silently breaking
// scrapers.
func ValidateExposition(data []byte) error {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	sawSample := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			continue
		}
		if err := validateSample(line); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		sawSample = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSample {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

func validateComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment, allowed
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "summary", "histogram", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	default:
		// Other comments are legal and ignored.
	}
	return nil
}

func validateSample(line string) error {
	// name[{labels}] value [timestamp] [# {labels} value [timestamp]]
	// The trailing section is an OpenMetrics exemplar; split it off first
	// and validate it with the same label/value rules as the sample proper.
	if i := strings.Index(line, " # "); i >= 0 {
		if err := validateExemplar(strings.TrimSpace(line[i+3:])); err != nil {
			return fmt.Errorf("%v in %q", err, line)
		}
		line = line[:i]
	}
	rest := line
	var name string
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return fmt.Errorf("unterminated label block in %q", line)
		}
		if err := validateLabels(rest[i+1 : end]); err != nil {
			return fmt.Errorf("%v in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		// The format also allows +Inf/-Inf/NaN which ParseFloat accepts.
		return fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return nil
}

// validateExemplar checks the OpenMetrics exemplar section after " # ":
// {labels} value [timestamp].
func validateExemplar(s string) error {
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("exemplar %q lacks label block", s)
	}
	end := strings.IndexByte(s, '}')
	if end < 0 {
		return fmt.Errorf("unterminated exemplar label block in %q", s)
	}
	if err := validateLabels(s[1:end]); err != nil {
		return fmt.Errorf("exemplar %v", err)
	}
	fields := strings.Fields(s[end+1:])
	if len(fields) == 0 || len(fields) > 2 {
		return fmt.Errorf("exemplar %q: want value [timestamp]", s)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("exemplar %q: bad value %q", s, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("exemplar %q: bad timestamp %q", s, fields[1])
		}
	}
	return nil
}
