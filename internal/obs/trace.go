package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// Span is one timed phase of a scan: request decode, page streaming, one
// side-path lane, the fan-in merge, the catalog install. Spans carry both
// wall-clock nanoseconds (what the goroutines actually took) and simulated
// hardware cycles (what the modelled accelerator charged), so a trace shows
// exactly where the two accounts diverge.
type Span struct {
	Name string `json:"name"`
	// Lane is the side-path lane index for lane spans, -1 otherwise.
	Lane    int   `json:"lane"`
	StartNS int64 `json:"start_ns"` // unix nanoseconds
	DurNS   int64 `json:"dur_ns"`
	// HWCycles is the simulated accelerator cost attributed to this span
	// (per-lane binning cycles for lane spans; aggregation pass plus
	// histogram chain for the merge span; zero for wall-only spans).
	HWCycles int64 `json:"hw_cycles"`
	// Retired marks a lane span whose lane was removed by the supervisor;
	// its partial hardware accounting was discarded.
	Retired bool `json:"retired,omitempty"`
	// SpanID and ParentID place the span in a distributed trace tree. Both
	// are zero outside distributed tracing, so the legacy JSON shape is
	// unchanged for untraced scans.
	SpanID   uint64 `json:"span_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Source names the process that recorded the span ("client", "server");
	// filled in during cross-process assembly, empty inside one process.
	Source string `json:"source,omitempty"`
}

// ScanTrace is the per-scan trace record. It has a single-writer lifecycle:
// the serving goroutine mutates it while the scan runs and publishes it to
// the tracer's ring exactly once, after which it is immutable — readers only
// ever see published traces. The span slab is allocated once at Start (sized
// by the expected span count), never per page. All methods are nil-safe so
// an unwired tracer costs one pointer check per scan phase.
type ScanTrace struct {
	ID     uint64 `json:"id"`
	Table  string `json:"table"`
	Column string `json:"column,omitempty"`
	// StartNS is the scan's start in unix nanoseconds.
	StartNS int64 `json:"start_ns"`
	// WallNS is the scan's total wall-clock duration.
	WallNS int64 `json:"wall_ns"`
	// AccelCycles is the scan's simulated accelerator total (max lane
	// critical path + aggregation + histogram chain): the lane spans'
	// maximum HWCycles plus the merge span's HWCycles reproduce it.
	AccelCycles uint64 `json:"accel_cycles"`
	Refreshed   bool   `json:"refreshed"`
	Degraded    bool   `json:"degraded"`
	Err         string `json:"error,omitempty"`
	// TraceID links this scan into a distributed trace: the client
	// originates the ID, the server continues it from the wire. Zero for
	// untraced scans, which keeps the legacy JSON shape byte-identical.
	TraceID uint64 `json:"trace_id,omitempty"`
	// ParentSpanID is the remote span this scan's root parents under (the
	// client's root scan span, carried in the request's trace context).
	ParentSpanID uint64 `json:"parent_span_id,omitempty"`
	// RootSpanID is the span every locally recorded span parents under by
	// default; derived deterministically from TraceID and the side salt.
	RootSpanID uint64 `json:"root_span_id,omitempty"`
	Spans      []Span `json:"spans"`

	begin time.Time // monotonic anchor for Begin/End
	side  uint64    // span-ID derivation salt while tracing
}

// Span-ID derivation salts: one per process role, so the two sides of a
// scan can both number their spans 1..N without colliding in the tree. A
// side may OR extra identity into the salt's high bits (bits 8 and up) to
// separate repeated continuations of one trace.
const (
	SpanSideClient uint64 = 1
	SpanSideServer uint64 = 2
	SpanSideStream uint64 = 3
)

// NewTraceID originates a 64-bit distributed trace ID (never zero — zero is
// the "untraced" sentinel on the wire and in JSON).
func NewTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// DeriveSpanID maps (trace, side, ordinal) to a span ID via a splitmix64
// finalizer. Deterministic derivation means neither side needs to coordinate
// ID allocation with the other: the client and the server each hash their
// own ordinals under different salts and the tree still joins. The full
// 64-bit salt participates, so a side may fold extra identity into its high
// bits (the server mixes its local scan id in, giving each attempt of a
// redialled trace distinct span IDs). Ordinal 0 is the side's root span.
// Never returns zero.
func DeriveSpanID(traceID, side uint64, n int) uint64 {
	x := traceID ^ side*0x9e3779b97f4a7c15 ^ (uint64(n)+1)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// EnableTrace joins this scan to a distributed trace: subsequent Begin and
// AddSpan calls assign span IDs derived from traceID under the given side
// salt, parented under the scan's root span. Returns the root span ID (zero
// when t is nil or traceID is zero — tracing stays off and the record keeps
// its legacy shape).
func (t *ScanTrace) EnableTrace(traceID, parentSpanID, side uint64) uint64 {
	if t == nil || traceID == 0 {
		return 0
	}
	t.TraceID = traceID
	t.ParentSpanID = parentSpanID
	t.side = side
	t.RootSpanID = DeriveSpanID(traceID, side, 0)
	return t.RootSpanID
}

// Begin opens a wall-clock span and returns its index for End. Nil-safe.
func (t *ScanTrace) Begin(name string) int {
	if t == nil {
		return -1
	}
	t.Spans = append(t.Spans, Span{
		Name:    name,
		Lane:    -1,
		StartNS: t.StartNS + int64(time.Since(t.begin)),
	})
	idx := len(t.Spans) - 1
	t.assignID(idx)
	return idx
}

// BeginRoot opens the trace's root span: it takes the root span ID itself
// and parents under the remote ParentSpanID instead of the local root. The
// side that originates a trace records its root explicitly (the spans ship
// across the wire); the continuing side's root is synthesized at assembly.
func (t *ScanTrace) BeginRoot(name string) int {
	idx := t.Begin(name)
	if idx >= 0 && t.TraceID != 0 {
		t.Spans[idx].SpanID = t.RootSpanID
		t.Spans[idx].ParentID = t.ParentSpanID
	}
	return idx
}

// assignID gives span idx its derived ID and default root parent when the
// trace is distributed; a no-op (all zeros) otherwise.
func (t *ScanTrace) assignID(idx int) {
	if t.TraceID == 0 {
		return
	}
	sp := &t.Spans[idx]
	sp.SpanID = DeriveSpanID(t.TraceID, t.side, idx+1)
	sp.ParentID = t.RootSpanID
}

// SpanIDAt returns the distributed span ID of span idx (zero when the trace
// is not distributed or idx is out of range). Nil-safe.
func (t *ScanTrace) SpanIDAt(idx int) uint64 {
	if t == nil || idx < 0 || idx >= len(t.Spans) {
		return 0
	}
	return t.Spans[idx].SpanID
}

// Reparent moves span idx under parentID — how lane spans nest under the
// streaming phase instead of the root. Nil-safe, no-op outside tracing.
func (t *ScanTrace) Reparent(idx int, parentID uint64) {
	if t == nil || idx < 0 || idx >= len(t.Spans) || t.TraceID == 0 || parentID == 0 {
		return
	}
	t.Spans[idx].ParentID = parentID
}

// End closes the span opened by Begin, attributing hw simulated cycles.
func (t *ScanTrace) End(idx int, hwCycles int64) {
	if t == nil || idx < 0 || idx >= len(t.Spans) {
		return
	}
	sp := &t.Spans[idx]
	sp.DurNS = t.StartNS + int64(time.Since(t.begin)) - sp.StartNS
	sp.HWCycles = hwCycles
}

// AddSpan records a span whose endpoints were captured elsewhere (lane
// goroutines record their own start/end into atomics; the serving goroutine
// copies them here after joining the lane). Zero start/end fall back to the
// trace's own window so a lane that never ran still renders.
func (t *ScanTrace) AddSpan(name string, lane int, startNS, endNS, hwCycles int64, retired bool) int {
	if t == nil {
		return -1
	}
	now := t.StartNS + int64(time.Since(t.begin))
	if startNS == 0 {
		startNS = t.StartNS
	}
	if endNS == 0 || endNS < startNS {
		endNS = now
	}
	t.Spans = append(t.Spans, Span{
		Name:     name,
		Lane:     lane,
		StartNS:  startNS,
		DurNS:    endNS - startNS,
		HWCycles: hwCycles,
		Retired:  retired,
	})
	idx := len(t.Spans) - 1
	t.assignID(idx)
	return idx
}

// Tracer keeps the most recent published scan traces in a fixed ring, plus
// a bounded store of client-reported span sets for cross-process assembly.
// Nil tracers hand out nil traces, so tracing disables to pointer checks.
type Tracer struct {
	mu      sync.Mutex
	ring    []*ScanTrace
	next    int
	total   uint64
	reports []reportEntry
	rnext   int
}

// reportEntry is one client-shipped span set, keyed by trace ID.
type reportEntry struct {
	traceID uint64
	spans   []Span
}

// DefaultTraceRing is how many recent scans a tracer retains by default.
const DefaultTraceRing = 64

// DefaultReportRing is how many client span reports a tracer retains.
const DefaultReportRing = 64

// NewTracer returns a tracer retaining the last capacity published traces
// (capacity <= 0 means DefaultTraceRing).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{
		ring:    make([]*ScanTrace, capacity),
		reports: make([]reportEntry, DefaultReportRing),
	}
}

// StartScanTrace opens a scan trace record outside any tracer — the client
// side records spans this way even when it has no local ring to publish to,
// because the spans' real destination is the trailer frame. spanCap sizes
// the span slab (expected span count); the slab grows if the estimate is
// short, but a correct estimate means one allocation per scan.
func StartScanTrace(id uint64, table, column string, spanCap int) *ScanTrace {
	if spanCap < 4 {
		spanCap = 4
	}
	now := time.Now()
	return &ScanTrace{
		ID:      id,
		Table:   table,
		Column:  column,
		StartNS: now.UnixNano(),
		Spans:   make([]Span, 0, spanCap),
		begin:   now,
	}
}

// Start opens a trace for one scan. spanCap sizes the span slab (expected
// span count: lanes + a few fixed phases); the slab grows if the estimate is
// short, but a correct estimate means one allocation per scan.
func (tr *Tracer) Start(id uint64, table, column string, spanCap int) *ScanTrace {
	if tr == nil {
		return nil
	}
	return StartScanTrace(id, table, column, spanCap)
}

// Publish finalises the trace's wall clock and makes it visible to readers.
// The caller must not mutate t afterwards.
func (tr *Tracer) Publish(t *ScanTrace) {
	if tr == nil || t == nil {
		return
	}
	t.WallNS = int64(time.Since(t.begin))
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.total++
	tr.mu.Unlock()
}

// Total returns how many traces have ever been published.
func (tr *Tracer) Total() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Recent returns up to n published traces, newest first.
func (tr *Tracer) Recent(n int) []*ScanTrace {
	if tr == nil || n <= 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n > len(tr.ring) {
		n = len(tr.ring)
	}
	out := make([]*ScanTrace, 0, n)
	for i := 0; i < len(tr.ring) && len(out) < n; i++ {
		idx := (tr.next - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		if t := tr.ring[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Report stores a client-shipped span set for later assembly. A second
// report for the same trace appends (one logical scan is still one report,
// but the store tolerates retries of the trailer). The store is a bounded
// ring: old reports are evicted, never accumulated. Nil-safe, fail-open.
func (tr *Tracer) Report(traceID uint64, spans []Span) {
	if tr == nil || traceID == 0 || len(spans) == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.reports) == 0 {
		tr.reports = make([]reportEntry, DefaultReportRing)
	}
	for i := range tr.reports {
		if tr.reports[i].traceID == traceID {
			tr.reports[i].spans = append(tr.reports[i].spans, spans...)
			return
		}
	}
	tr.reports[tr.rnext] = reportEntry{traceID: traceID, spans: spans}
	tr.rnext = (tr.rnext + 1) % len(tr.reports)
}

// Reported returns the client-shipped spans stored for traceID, nil if none.
func (tr *Tracer) Reported(traceID uint64) []Span {
	if tr == nil || traceID == 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.reports {
		if tr.reports[i].traceID == traceID {
			return tr.reports[i].spans
		}
	}
	return nil
}

// TracesFor returns every published scan trace belonging to traceID, oldest
// first. A redialled scan legitimately yields several: each server-side
// attempt is its own ScanTrace continuing the same distributed trace.
func (tr *Tracer) TracesFor(traceID uint64) []*ScanTrace {
	if tr == nil || traceID == 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []*ScanTrace
	for i := 0; i < len(tr.ring); i++ {
		idx := (tr.next + i) % len(tr.ring) // oldest first
		if t := tr.ring[idx]; t != nil && t.TraceID == traceID {
			out = append(out, t)
		}
	}
	return out
}

// AssembledTrace is the cross-process view of one distributed trace: the
// client's reported spans and every server-side scan trace that continued
// the same trace ID, stitched into a single tree via span/parent IDs.
type AssembledTrace struct {
	TraceID uint64 `json:"trace_id"`
	Table   string `json:"table,omitempty"`
	Column  string `json:"column,omitempty"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	// ServerScans counts the server-side scan traces folded in (>1 when the
	// client redialled and the resume was served as a fresh scan).
	ServerScans int `json:"server_scans"`
	// ClientSpans counts spans the client shipped back over the trailer.
	ClientSpans int    `json:"client_spans"`
	Spans       []Span `json:"spans"`
}

// Assemble stitches everything known about traceID into one span tree:
// client-reported spans (Source "client") plus, for each server scan trace,
// a synthesized "serve" root span parented under the client's root and the
// scan's recorded spans beneath it (Source "server"). Spans are ordered by
// start time, parents before children on ties. Returns nil when the tracer
// holds nothing for traceID.
func (tr *Tracer) Assemble(traceID uint64) *AssembledTrace {
	if tr == nil || traceID == 0 {
		return nil
	}
	reported := tr.Reported(traceID)
	scans := tr.TracesFor(traceID)
	if len(reported) == 0 && len(scans) == 0 {
		return nil
	}
	at := &AssembledTrace{TraceID: traceID, ClientSpans: len(reported), ServerScans: len(scans)}
	for _, sp := range reported {
		sp.Source = "client"
		at.Spans = append(at.Spans, sp)
	}
	for _, t := range scans {
		at.Table, at.Column = t.Table, t.Column
		at.Spans = append(at.Spans, Span{
			Name:     "serve",
			Lane:     -1,
			StartNS:  t.StartNS,
			DurNS:    t.WallNS,
			SpanID:   t.RootSpanID,
			ParentID: t.ParentSpanID,
			Source:   "server",
		})
		for _, sp := range t.Spans {
			sp.Source = "server"
			at.Spans = append(at.Spans, sp)
		}
	}
	sort.SliceStable(at.Spans, func(i, j int) bool {
		a, b := at.Spans[i], at.Spans[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		return a.DurNS > b.DurNS // parents (longer) first on ties
	})
	at.StartNS = at.Spans[0].StartNS
	for _, sp := range at.Spans {
		if end := sp.StartNS + sp.DurNS; end > at.EndNS {
			at.EndNS = end
		}
	}
	return at
}
