package obs

import (
	"sync"
	"time"
)

// Span is one timed phase of a scan: request decode, page streaming, one
// side-path lane, the fan-in merge, the catalog install. Spans carry both
// wall-clock nanoseconds (what the goroutines actually took) and simulated
// hardware cycles (what the modelled accelerator charged), so a trace shows
// exactly where the two accounts diverge.
type Span struct {
	Name string `json:"name"`
	// Lane is the side-path lane index for lane spans, -1 otherwise.
	Lane    int   `json:"lane"`
	StartNS int64 `json:"start_ns"` // unix nanoseconds
	DurNS   int64 `json:"dur_ns"`
	// HWCycles is the simulated accelerator cost attributed to this span
	// (per-lane binning cycles for lane spans; aggregation pass plus
	// histogram chain for the merge span; zero for wall-only spans).
	HWCycles int64 `json:"hw_cycles"`
	// Retired marks a lane span whose lane was removed by the supervisor;
	// its partial hardware accounting was discarded.
	Retired bool `json:"retired,omitempty"`
}

// ScanTrace is the per-scan trace record. It has a single-writer lifecycle:
// the serving goroutine mutates it while the scan runs and publishes it to
// the tracer's ring exactly once, after which it is immutable — readers only
// ever see published traces. The span slab is allocated once at Start (sized
// by the expected span count), never per page. All methods are nil-safe so
// an unwired tracer costs one pointer check per scan phase.
type ScanTrace struct {
	ID     uint64 `json:"id"`
	Table  string `json:"table"`
	Column string `json:"column,omitempty"`
	// StartNS is the scan's start in unix nanoseconds.
	StartNS int64 `json:"start_ns"`
	// WallNS is the scan's total wall-clock duration.
	WallNS int64 `json:"wall_ns"`
	// AccelCycles is the scan's simulated accelerator total (max lane
	// critical path + aggregation + histogram chain): the lane spans'
	// maximum HWCycles plus the merge span's HWCycles reproduce it.
	AccelCycles uint64 `json:"accel_cycles"`
	Refreshed   bool   `json:"refreshed"`
	Degraded    bool   `json:"degraded"`
	Err         string `json:"error,omitempty"`
	Spans       []Span `json:"spans"`

	begin time.Time // monotonic anchor for Begin/End
}

// Begin opens a wall-clock span and returns its index for End. Nil-safe.
func (t *ScanTrace) Begin(name string) int {
	if t == nil {
		return -1
	}
	t.Spans = append(t.Spans, Span{
		Name:    name,
		Lane:    -1,
		StartNS: t.StartNS + int64(time.Since(t.begin)),
	})
	return len(t.Spans) - 1
}

// End closes the span opened by Begin, attributing hw simulated cycles.
func (t *ScanTrace) End(idx int, hwCycles int64) {
	if t == nil || idx < 0 || idx >= len(t.Spans) {
		return
	}
	sp := &t.Spans[idx]
	sp.DurNS = t.StartNS + int64(time.Since(t.begin)) - sp.StartNS
	sp.HWCycles = hwCycles
}

// AddSpan records a span whose endpoints were captured elsewhere (lane
// goroutines record their own start/end into atomics; the serving goroutine
// copies them here after joining the lane). Zero start/end fall back to the
// trace's own window so a lane that never ran still renders.
func (t *ScanTrace) AddSpan(name string, lane int, startNS, endNS, hwCycles int64, retired bool) {
	if t == nil {
		return
	}
	now := t.StartNS + int64(time.Since(t.begin))
	if startNS == 0 {
		startNS = t.StartNS
	}
	if endNS == 0 || endNS < startNS {
		endNS = now
	}
	t.Spans = append(t.Spans, Span{
		Name:     name,
		Lane:     lane,
		StartNS:  startNS,
		DurNS:    endNS - startNS,
		HWCycles: hwCycles,
		Retired:  retired,
	})
}

// Tracer keeps the most recent published scan traces in a fixed ring.
// Nil tracers hand out nil traces, so tracing disables to pointer checks.
type Tracer struct {
	mu    sync.Mutex
	ring  []*ScanTrace
	next  int
	total uint64
}

// DefaultTraceRing is how many recent scans a tracer retains by default.
const DefaultTraceRing = 64

// NewTracer returns a tracer retaining the last capacity published traces
// (capacity <= 0 means DefaultTraceRing).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{ring: make([]*ScanTrace, capacity)}
}

// Start opens a trace for one scan. spanCap sizes the span slab (expected
// span count: lanes + a few fixed phases); the slab grows if the estimate is
// short, but a correct estimate means one allocation per scan.
func (tr *Tracer) Start(id uint64, table, column string, spanCap int) *ScanTrace {
	if tr == nil {
		return nil
	}
	if spanCap < 4 {
		spanCap = 4
	}
	now := time.Now()
	return &ScanTrace{
		ID:      id,
		Table:   table,
		Column:  column,
		StartNS: now.UnixNano(),
		Spans:   make([]Span, 0, spanCap),
		begin:   now,
	}
}

// Publish finalises the trace's wall clock and makes it visible to readers.
// The caller must not mutate t afterwards.
func (tr *Tracer) Publish(t *ScanTrace) {
	if tr == nil || t == nil {
		return
	}
	t.WallNS = int64(time.Since(t.begin))
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.total++
	tr.mu.Unlock()
}

// Total returns how many traces have ever been published.
func (tr *Tracer) Total() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Recent returns up to n published traces, newest first.
func (tr *Tracer) Recent(n int) []*ScanTrace {
	if tr == nil || n <= 0 {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n > len(tr.ring) {
		n = len(tr.ring)
	}
	out := make([]*ScanTrace, 0, n)
	for i := 0; i < len(tr.ring) && len(out) < n; i++ {
		idx := (tr.next - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		if t := tr.ring[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}
