package obs

import (
	"bytes"
	"strings"
	"testing"
)

// The exemplar slot's retention policy: largest traced value wins while
// fresh, zero trace IDs never touch the slot, and a nil distribution
// swallows everything.
func TestExemplarRetention(t *testing.T) {
	d := newDistribution("streamhist_test_latency_seconds", 1e-9)

	if _, ok := d.Exemplar(); ok {
		t.Fatal("fresh distribution reports an exemplar")
	}
	// Untraced observations record the value but never the slot.
	d.ObserveWithExemplar(500, 0)
	if _, ok := d.Exemplar(); ok {
		t.Fatal("zero trace id took the exemplar slot")
	}
	if d.Count() != 1 {
		t.Fatalf("untraced ObserveWithExemplar did not observe: count %d", d.Count())
	}

	d.ObserveWithExemplar(100, 7)
	ex, ok := d.Exemplar()
	if !ok || ex.Value != 100 || ex.TraceID != 7 {
		t.Fatalf("exemplar = %+v ok=%v, want value 100 trace 7", ex, ok)
	}
	// A smaller traced value within the TTL does not displace the incumbent.
	d.ObserveWithExemplar(50, 8)
	if ex, _ = d.Exemplar(); ex.TraceID != 7 {
		t.Fatalf("smaller value displaced the exemplar: %+v", ex)
	}
	// An equal-or-larger traced value does.
	d.ObserveWithExemplar(100, 9)
	if ex, _ = d.Exemplar(); ex.TraceID != 9 {
		t.Fatalf("equal value did not take the slot: %+v", ex)
	}
	// Negative values clamp, matching Observe.
	d.ObserveWithExemplar(-5, 10)
	if ex, _ = d.Exemplar(); ex.TraceID != 9 {
		t.Fatalf("clamped zero displaced a live exemplar: %+v", ex)
	}

	var nilDist *Distribution
	nilDist.ObserveWithExemplar(1, 2) // must not panic
	if _, ok := nilDist.Exemplar(); ok {
		t.Fatal("nil distribution reports an exemplar")
	}
}

// The Prometheus writer emits the exemplar as an OpenMetrics section on the
// tail-quantile line only, and the repo's own exposition validator accepts
// the result.
func TestExpositionExemplar(t *testing.T) {
	reg := NewRegistry()
	d := reg.Distribution("streamhist_test_scan_seconds", "docs", 1e-9)
	d.ObserveWithExemplar(1_000_000, 0xfeed)
	// A second, exemplar-free distribution keeps its legacy shape.
	reg.Distribution("streamhist_test_plain_seconds", "docs", 1e-9).Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var sawTail bool
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "streamhist_test_scan_seconds{quantile=\"0.99\"}"):
			sawTail = true
			if !strings.Contains(line, `# {trace_id="000000000000feed"}`) {
				t.Fatalf("p99 line lacks the exemplar: %q", line)
			}
		case strings.HasPrefix(line, "streamhist_test_scan_seconds{"),
			strings.HasPrefix(line, "streamhist_test_plain_seconds"):
			if strings.Contains(line, "#") {
				t.Fatalf("exemplar leaked onto %q", line)
			}
		}
	}
	if !sawTail {
		t.Fatalf("no p99 line in exposition:\n%s", buf.String())
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition with exemplar fails validation: %v", err)
	}
}
