package bins

import "testing"

// Degenerate lane counts that the parallel path can legitimately produce:
// a fleet reduced to a single lane, and lanes that saw no tuples at all.

func TestMergeAllZeroLanes(t *testing.T) {
	if v, err := MergeAll(); err == nil {
		t.Fatalf("MergeAll with zero lanes returned %v, want error", v)
	}
}

func TestMergeAllSingleEmptyLane(t *testing.T) {
	empty := NewVector(0, 9, 1)
	merged, err := MergeAll(empty)
	if err != nil {
		t.Fatalf("MergeAll(single empty): %v", err)
	}
	if merged.Total() != 0 {
		t.Fatalf("total %d from an empty lane", merged.Total())
	}
	if merged.NumBins() != empty.NumBins() || merged.Min != empty.Min || merged.Divisor != empty.Divisor {
		t.Fatalf("merged shape (%d bins, min %d, div %d) does not match input",
			merged.NumBins(), merged.Min, merged.Divisor)
	}
	// The result must be a fresh vector, not an alias of the lone input.
	merged.Add(3)
	if empty.Total() != 0 {
		t.Fatal("MergeAll aliased its single input")
	}
}

func TestMergeAllSingleLanePreservesCounts(t *testing.T) {
	lane := NewVector(10, 29, 10)
	for _, x := range []int64{10, 15, 22, 29, 29} {
		lane.Add(x)
	}
	merged, err := MergeAll(lane)
	if err != nil {
		t.Fatalf("MergeAll(single lane): %v", err)
	}
	if merged.Total() != lane.Total() {
		t.Fatalf("total %d != %d", merged.Total(), lane.Total())
	}
	for i := 0; i < lane.NumBins(); i++ {
		if merged.Count(i) != lane.Count(i) {
			t.Fatalf("bin %d: %d != %d", i, merged.Count(i), lane.Count(i))
		}
	}
}

func TestMergeAllEmptyLanesAmongFull(t *testing.T) {
	full := NewVector(0, 4, 1)
	for _, x := range []int64{0, 1, 1, 4} {
		full.Add(x)
	}
	e1, e2 := NewVector(0, 4, 1), NewVector(0, 4, 1)
	merged, err := MergeAll(e1, full, e2)
	if err != nil {
		t.Fatalf("MergeAll with empty lanes interleaved: %v", err)
	}
	if merged.Total() != full.Total() {
		t.Fatalf("total %d != %d — empty lanes must be no-ops", merged.Total(), full.Total())
	}
}
