package bins

import (
	"testing"
	"testing/quick"

	"streamhist/internal/datagen"
)

func TestNewVectorGeometry(t *testing.T) {
	v := NewVector(10, 29, 1)
	if v.NumBins() != 20 {
		t.Errorf("NumBins = %d, want 20", v.NumBins())
	}
	v2 := NewVector(0, 99, 10)
	if v2.NumBins() != 10 {
		t.Errorf("divisor 10: NumBins = %d, want 10", v2.NumBins())
	}
}

func TestNewVectorRejectsBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewVector(0, 10, 0) },
		func() { NewVector(10, 0, 1) },
		func() { FromCounts(0, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAddAndCount(t *testing.T) {
	v := NewVector(100, 199, 1)
	v.Add(100)
	v.Add(100)
	v.Add(150)
	if v.Total() != 3 {
		t.Errorf("Total = %d", v.Total())
	}
	if v.CountValue(100) != 2 {
		t.Errorf("CountValue(100) = %d", v.CountValue(100))
	}
	if v.CountValue(150) != 1 {
		t.Errorf("CountValue(150) = %d", v.CountValue(150))
	}
	if v.CountValue(151) != 0 {
		t.Errorf("CountValue(151) = %d", v.CountValue(151))
	}
	if v.CountValue(99) != 0 {
		t.Errorf("out-of-range CountValue = %d", v.CountValue(99))
	}
	if v.Cardinality() != 2 {
		t.Errorf("Cardinality = %d", v.Cardinality())
	}
}

func TestAddCount(t *testing.T) {
	v := NewVector(0, 99, 1)
	v.AddCount(10, 5)
	v.AddCount(10, 3)
	if v.CountValue(10) != 8 || v.Total() != 8 {
		t.Errorf("count=%d total=%d", v.CountValue(10), v.Total())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range AddCount")
		}
	}()
	v.AddCount(200, 1)
}

func TestFromCounts(t *testing.T) {
	v := FromCounts(5, 2, []int64{3, 0, 7})
	if v.Total() != 10 {
		t.Errorf("total = %d", v.Total())
	}
	if v.Value(2) != 9 {
		t.Errorf("Value(2) = %d", v.Value(2))
	}
	if v.CountValue(5) != 3 || v.CountValue(6) != 3 { // divisor 2: 5 and 6 share bin 0
		t.Error("divisor mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero divisor")
		}
	}()
	FromCounts(0, 0, []int64{1})
}

func TestAddOutOfRangePanics(t *testing.T) {
	v := NewVector(0, 9, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	v.Add(10)
}

func TestDivisorCoarsening(t *testing.T) {
	// Seconds-to-days style coarsening: divisor 86400.
	v := NewVector(0, 86400*10-1, 86400)
	if v.NumBins() != 10 {
		t.Fatalf("NumBins = %d", v.NumBins())
	}
	v.Add(0)
	v.Add(86399)  // same day
	v.Add(86400)  // next day
	v.Add(500000) // day 5
	if v.Count(0) != 2 {
		t.Errorf("day 0 count = %d", v.Count(0))
	}
	if v.Count(1) != 1 {
		t.Errorf("day 1 count = %d", v.Count(1))
	}
	if v.Count(5) != 1 {
		t.Errorf("day 5 count = %d", v.Count(5))
	}
	if v.Value(5) != 5*86400 {
		t.Errorf("Value(5) = %d", v.Value(5))
	}
}

func TestIndexBoundaries(t *testing.T) {
	v := NewVector(10, 19, 1)
	if v.Index(9) != -1 {
		t.Error("below-range Index should be -1")
	}
	if v.Index(20) != -1 {
		t.Error("above-range Index should be -1")
	}
	if v.Index(10) != 0 || v.Index(19) != 9 {
		t.Error("boundary indices wrong")
	}
}

func TestBuildMatchesReferenceCounts(t *testing.T) {
	rng := datagen.NewRNG(1)
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(300) - 100
	}
	v := Build(vals, 1)
	want := datagen.Counts(vals)
	if v.Total() != int64(len(vals)) {
		t.Fatalf("Total = %d", v.Total())
	}
	if v.Cardinality() != len(want) {
		t.Fatalf("Cardinality = %d, want %d", v.Cardinality(), len(want))
	}
	for val, c := range want {
		if got := v.CountValue(val); got != c {
			t.Errorf("CountValue(%d) = %d, want %d", val, got, c)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	v := Build(nil, 1)
	if v.Total() != 0 || v.Cardinality() != 0 {
		t.Error("empty build should be empty")
	}
}

func TestNonZeroSortedAndComplete(t *testing.T) {
	vals := []int64{5, 3, 5, 9, 3, 3}
	v := Build(vals, 1)
	nz := v.NonZero()
	if len(nz) != 3 {
		t.Fatalf("NonZero len = %d", len(nz))
	}
	if nz[0].Value != 3 || nz[0].Count != 3 {
		t.Errorf("nz[0] = %+v", nz[0])
	}
	if nz[1].Value != 5 || nz[1].Count != 2 {
		t.Errorf("nz[1] = %+v", nz[1])
	}
	if nz[2].Value != 9 || nz[2].Count != 1 {
		t.Errorf("nz[2] = %+v", nz[2])
	}
}

func TestCloneAndReset(t *testing.T) {
	v := Build([]int64{1, 2, 2, 3}, 1)
	c := v.Clone()
	v.Reset()
	if v.Total() != 0 || v.Cardinality() != 0 {
		t.Error("Reset did not clear")
	}
	if c.Total() != 4 || c.CountValue(2) != 2 {
		t.Error("Clone was affected by Reset")
	}
}

func TestMergeEqualsConcatenatedBuild(t *testing.T) {
	// Invariant from DESIGN.md: merging partial counts (the §7 scale-up
	// path) equals binning the concatenated input.
	f := func(a, b []uint8) bool {
		all := make([]int64, 0, len(a)+len(b))
		va := NewVector(0, 255, 1)
		vb := NewVector(0, 255, 1)
		for _, x := range a {
			va.Add(int64(x))
			all = append(all, int64(x))
		}
		for _, x := range b {
			vb.Add(int64(x))
			all = append(all, int64(x))
		}
		if err := va.Merge(vb); err != nil {
			return false
		}
		want := datagen.Counts(all)
		if va.Total() != int64(len(all)) {
			return false
		}
		for val, c := range want {
			if va.CountValue(val) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeRejectsMismatchedGeometry(t *testing.T) {
	a := NewVector(0, 9, 1)
	b := NewVector(0, 19, 1)
	if err := a.Merge(b); err == nil {
		t.Error("mismatched bin counts should not merge")
	}
	c := NewVector(1, 10, 1)
	if err := a.Merge(c); err == nil {
		t.Error("mismatched min should not merge")
	}
	d := NewVector(0, 19, 2)
	if err := a.Merge(d); err == nil {
		t.Error("mismatched divisor should not merge")
	}
}

func TestTotalInvariant(t *testing.T) {
	f := func(raw []uint16) bool {
		v := NewVector(0, 1<<16-1, 1)
		for _, x := range raw {
			v.Add(int64(x))
		}
		var sum int64
		for _, c := range v.Counts() {
			sum += c
		}
		return sum == v.Total() && v.Total() == int64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeAll(t *testing.T) {
	mk := func(vals ...int64) *Vector {
		v := NewVector(0, 9, 1)
		for _, x := range vals {
			v.Add(x)
		}
		return v
	}
	a, b, c := mk(1, 1, 3), mk(2, 3), mk()
	merged, err := MergeAll(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Total() != 5 {
		t.Errorf("total = %d, want 5", merged.Total())
	}
	for v, want := range map[int64]int64{1: 2, 2: 1, 3: 2} {
		if got := merged.CountValue(v); got != want {
			t.Errorf("count(%d) = %d, want %d", v, got, want)
		}
	}
	// Inputs untouched.
	if a.Total() != 3 || b.Total() != 2 || c.Total() != 0 {
		t.Error("MergeAll modified an input vector")
	}
	if _, err := MergeAll(); err == nil {
		t.Error("MergeAll() with no inputs should error")
	}
	if _, err := MergeAll(a, NewVector(0, 19, 1)); err == nil {
		t.Error("mismatched geometry should not merge")
	}
}
