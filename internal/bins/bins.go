// Package bins implements the "in-memory sorted representation" at the heart
// of the paper (§4, "Histograms in linear time"): a dense array of
// occurrence counts indexed by value, filled by a bin-sort pass over the
// column. Because the array is indexed by value, reading it front to back
// yields the column's values in sorted order together with their exact
// frequencies — which is what the statistic blocks consume.
//
// The memory the vector occupies depends on the column's value range (its
// cardinality upper bound), not on the number of rows, matching the paper's
// linear-space argument.
package bins

import (
	"fmt"
)

// Vector is a dense bin array over the value range [Min, Min+len*Divisor).
// Bin i counts occurrences of values v with (v-Min)/Divisor == i.
//
// Divisor > 1 coarsens the mapping, assigning several consecutive values to
// one bin — the paper's example is second-granularity timestamps binned per
// day (§5.1.1).
type Vector struct {
	Min     int64
	Divisor int64

	counts []int64
	total  int64
}

// NewVector creates a zeroed vector covering [min, max] inclusive with the
// given divisor (use 1 for exact per-value bins).
func NewVector(min, max, divisor int64) *Vector {
	if divisor <= 0 {
		panic("bins: divisor must be positive")
	}
	if max < min {
		panic(fmt.Sprintf("bins: max %d < min %d", max, min))
	}
	n := (max-min)/divisor + 1
	return &Vector{Min: min, Divisor: divisor, counts: make([]int64, n)}
}

// FromCounts builds a vector directly from a per-bin count slice (bin i at
// value min+i*divisor). The slice is retained.
func FromCounts(min, divisor int64, counts []int64) *Vector {
	if divisor <= 0 {
		panic("bins: divisor must be positive")
	}
	v := &Vector{Min: min, Divisor: divisor, counts: counts}
	for _, c := range counts {
		v.total += c
	}
	return v
}

// NumBins returns the number of bins (the Δ of Table 2).
func (v *Vector) NumBins() int { return len(v.counts) }

// Total returns the total number of values added.
func (v *Vector) Total() int64 { return v.total }

// Index maps a value to its bin index, or -1 when out of range.
func (v *Vector) Index(value int64) int {
	if value < v.Min {
		return -1
	}
	i := (value - v.Min) / v.Divisor
	if i >= int64(len(v.counts)) {
		return -1
	}
	return int(i)
}

// Value returns the lowest value mapped to bin i.
func (v *Vector) Value(i int) int64 { return v.Min + int64(i)*v.Divisor }

// Add records one occurrence of value. It panics when the value is outside
// the configured range — the preprocessor is responsible for range setup.
func (v *Vector) Add(value int64) {
	i := v.Index(value)
	if i < 0 {
		panic(fmt.Sprintf("bins: value %d outside range [%d, %d]", value, v.Min, v.Min+int64(len(v.counts))*v.Divisor-1))
	}
	v.counts[i]++
	v.total++
}

// AddCount records count occurrences of value.
func (v *Vector) AddCount(value, count int64) {
	i := v.Index(value)
	if i < 0 {
		panic(fmt.Sprintf("bins: value %d outside range", value))
	}
	v.counts[i] += count
	v.total += count
}

// Count returns the count in bin i.
func (v *Vector) Count(i int) int64 { return v.counts[i] }

// CountValue returns the count of the bin containing value (0 when out of
// range).
func (v *Vector) CountValue(value int64) int64 {
	i := v.Index(value)
	if i < 0 {
		return 0
	}
	return v.counts[i]
}

// Counts exposes the underlying count slice (read-only by convention).
func (v *Vector) Counts() []int64 { return v.counts }

// Cardinality returns the number of non-empty bins.
func (v *Vector) Cardinality() int {
	n := 0
	for _, c := range v.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := make([]int64, len(v.counts))
	copy(c, v.counts)
	return &Vector{Min: v.Min, Divisor: v.Divisor, counts: c, total: v.total}
}

// Reset zeroes all counts, keeping the range configuration. This mirrors the
// accelerator reusing a memory region for the next table.
func (v *Vector) Reset() {
	for i := range v.counts {
		v.counts[i] = 0
	}
	v.total = 0
}

// Merge adds other's counts into v. Both vectors must have identical range
// configuration. This implements the §7 (Future Work) scale-up path where
// replicated Binner modules produce partial counts in separate memories that
// are aggregated before histogram creation.
func (v *Vector) Merge(other *Vector) error {
	if v.Min != other.Min || v.Divisor != other.Divisor || len(v.counts) != len(other.counts) {
		return fmt.Errorf("bins: cannot merge vectors with different geometry (min %d/%d divisor %d/%d bins %d/%d)",
			v.Min, other.Min, v.Divisor, other.Divisor, len(v.counts), len(other.counts))
	}
	for i, c := range other.counts {
		v.counts[i] += c
		v.total += c
	}
	return nil
}

// MergeAll merges any number of identically configured vectors into a fresh
// vector — the software form of the adder tree that aggregates replicated
// Binner memories (§7). The inputs are not modified. At least one vector is
// required; it defines the geometry the rest must match.
func MergeAll(vs ...*Vector) (*Vector, error) {
	if len(vs) == 0 {
		return nil, fmt.Errorf("bins: MergeAll needs at least one vector")
	}
	out := FromCounts(vs[0].Min, vs[0].Divisor, make([]int64, len(vs[0].counts)))
	for _, v := range vs {
		if err := out.Merge(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Build bin-sorts values into a fresh vector sized to their range; the
// software-reference equivalent of the Binner module.
func Build(values []int64, divisor int64) *Vector {
	if len(values) == 0 {
		return NewVector(0, 0, max64(divisor, 1))
	}
	lo, hi := values[0], values[0]
	for _, x := range values {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	v := NewVector(lo, hi, divisor)
	for _, x := range values {
		v.Add(x)
	}
	return v
}

// Bin couples a representative value with its count; the unit streamed from
// the Scanner into the statistic blocks.
type Bin struct {
	Value int64
	Count int64
}

// NonZero returns the non-empty bins in ascending value order.
func (v *Vector) NonZero() []Bin {
	out := make([]Bin, 0, 64)
	for i, c := range v.counts {
		if c > 0 {
			out = append(out, Bin{Value: v.Value(i), Count: c})
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
