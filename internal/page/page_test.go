package page

import (
	"bytes"
	"testing"
	"testing/quick"

	"streamhist/internal/datagen"
	"streamhist/internal/table"
)

func mixedSchema() *table.Schema {
	return table.NewSchema(
		table.Column{Name: "k", Type: table.Int64},
		table.Column{Name: "price", Type: table.Decimal, Scale: 2},
		table.Column{Name: "d", Type: table.Date},
		table.Column{Name: "od", Type: table.DateUnpacked},
	)
}

func TestNewPageHeader(t *testing.T) {
	s := mixedSchema()
	p := New(s)
	if p.NumRows() != 0 {
		t.Errorf("fresh page NumRows = %d", p.NumRows())
	}
	if p.RowWidth() != s.RowWidth() {
		t.Errorf("RowWidth = %d, want %d", p.RowWidth(), s.RowWidth())
	}
	if p.NumColumns() != 4 {
		t.Errorf("NumColumns = %d", p.NumColumns())
	}
	if p.Capacity() != (Size-HeaderSize)/s.RowWidth() {
		t.Errorf("Capacity = %d", p.Capacity())
	}
	if len(p.Bytes()) != Size {
		t.Errorf("page image is %d bytes", len(p.Bytes()))
	}
}

func TestAppendAndReadRow(t *testing.T) {
	s := mixedSchema()
	p := New(s)
	in := table.Row{42, 12345, 10957, table.PackDate(1998, 12, 1)}
	if !p.AppendRow(s, in) {
		t.Fatal("AppendRow failed on empty page")
	}
	out, err := p.Row(s, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("col %d: got %d, want %d", i, out[i], in[i])
		}
	}
}

func TestRowOutOfRange(t *testing.T) {
	p := New(mixedSchema())
	if _, err := p.Row(mixedSchema(), 0, nil); err == nil {
		t.Error("reading row 0 of empty page should fail")
	}
	if _, err := p.Row(mixedSchema(), -1, nil); err == nil {
		t.Error("negative row should fail")
	}
}

func TestPageFillsToCapacity(t *testing.T) {
	s := mixedSchema()
	p := New(s)
	n := 0
	for p.AppendRow(s, table.Row{int64(n), 0, 0, 0}) {
		n++
	}
	if n != p.Capacity() {
		t.Errorf("filled %d rows, capacity %d", n, p.Capacity())
	}
	if p.NumRows() != n {
		t.Errorf("NumRows = %d, want %d", p.NumRows(), n)
	}
}

func TestFromBytesValidation(t *testing.T) {
	if _, err := FromBytes(make([]byte, 100)); err == nil {
		t.Error("short buffer should be rejected")
	}
	buf := make([]byte, Size)
	if _, err := FromBytes(buf); err == nil {
		t.Error("zero magic should be rejected")
	}
	p := New(mixedSchema())
	if _, err := FromBytes(p.Bytes()); err != nil {
		t.Errorf("valid page rejected: %v", err)
	}
	// Corrupt the row count so rows overflow the page.
	img := append([]byte(nil), p.Bytes()...)
	img[2] = 0xff
	img[3] = 0xff
	if _, err := FromBytes(img); err == nil {
		t.Error("overflowing row count should be rejected")
	}
}

func TestEncodeDecodeRelationRoundTrip(t *testing.T) {
	s := mixedSchema()
	rel := table.NewRelation("t", s)
	rng := datagen.NewRNG(7)
	for i := 0; i < 2500; i++ { // several pages worth
		rel.Append(table.Row{
			rng.Int63n(1 << 40),
			rng.Int63n(1_000_000),
			rng.Int63n(20000),
			rng.Int63n(20000),
		})
	}
	pages := Encode(rel)
	if len(pages) < 2 {
		t.Fatalf("expected multiple pages, got %d", len(pages))
	}
	back, err := Decode("t", s, pages)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != rel.NumRows() {
		t.Fatalf("row count %d != %d", back.NumRows(), rel.NumRows())
	}
	for i := 0; i < rel.NumRows(); i++ {
		for c := 0; c < s.NumColumns(); c++ {
			if rel.Value(i, c) != back.Value(i, c) {
				t.Fatalf("row %d col %d: %d != %d", i, c, rel.Value(i, c), back.Value(i, c))
			}
		}
	}
}

func TestEncodeEmptyRelation(t *testing.T) {
	rel := table.NewRelation("t", mixedSchema())
	if pages := Encode(rel); len(pages) != 0 {
		t.Errorf("empty relation produced %d pages", len(pages))
	}
}

func TestDecodeValueRejectsShortInput(t *testing.T) {
	for _, typ := range []table.Type{table.Int64, table.Date, table.DateUnpacked} {
		if _, _, err := DecodeValue([]byte{1, 2}, typ); err == nil {
			t.Errorf("%v: short input accepted", typ)
		}
	}
}

func TestDecodeValueRejectsBadUnpackedDate(t *testing.T) {
	// month 13 is invalid
	buf := []byte{119, 198, 13, 1, 1, 1, 1}
	if _, _, err := DecodeValue(buf, table.DateUnpacked); err == nil {
		t.Error("bad unpacked date accepted")
	}
}

func TestUnpackedDateOracleEncoding(t *testing.T) {
	// 1998-12-01 must encode century 119, year-of-century 198 (excess-100).
	s := table.NewSchema(table.Column{Name: "d", Type: table.DateUnpacked})
	var buf [7]byte
	EncodeRow(buf[:], s, table.Row{table.PackDate(1998, 12, 1)})
	want := []byte{119, 198, 12, 1, 1, 1, 1}
	if !bytes.Equal(buf[:], want) {
		t.Errorf("unpacked encoding = %v, want %v", buf, want)
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(raw int64, pick uint8) bool {
		types := []table.Type{table.Int64, table.Decimal, table.Date, table.DateUnpacked}
		typ := types[int(pick)%len(types)]
		v := raw
		switch typ {
		case table.Date:
			v = raw % (1 << 22) // keep int32-representable and sane
			if v < 0 {
				v = -v
			}
		case table.DateUnpacked:
			v = raw % 100_000 // stay within plausible year bounds
			if v < 0 {
				v = -v
			}
		}
		var buf [8]byte
		s := table.NewSchema(table.Column{Name: "x", Type: typ})
		EncodeRow(buf[:], s, table.Row{v})
		got, n, err := DecodeValue(buf[:], typ)
		return err == nil && n == typ.Width() && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
