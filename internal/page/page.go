// Package page implements the on-the-wire database page format that moves
// between storage and the host, and that the accelerator's Parser understands.
//
// The format is deliberately simple but realistic: fixed-size pages with a
// small header followed by densely packed fixed-width rows. Values are
// little-endian. Oracle-style unpacked dates are stored using the excess-100
// century/year encoding described in the Oracle Call Interface documentation
// (and referenced by §5.1.1 of the paper).
package page

import (
	"encoding/binary"
	"errors"
	"fmt"

	"streamhist/internal/table"
)

// Size is the fixed page size in bytes (8 KiB, a common DBMS default).
const Size = 8192

// HeaderSize is the number of bytes of metadata at the start of each page.
const HeaderSize = 8

// Magic identifies a valid page.
const Magic uint16 = 0xD0C5

// Header layout (8 bytes):
//
//	[0:2]  magic
//	[2:4]  number of rows on this page
//	[4:6]  row width in bytes
//	[6:8]  number of columns
type Page struct {
	buf []byte
}

// ErrCorrupt reports a malformed page.
var ErrCorrupt = errors.New("page: corrupt page")

// New returns an empty page for rows of the given schema.
func New(schema *table.Schema) *Page {
	p := &Page{buf: make([]byte, Size)}
	binary.LittleEndian.PutUint16(p.buf[0:2], Magic)
	binary.LittleEndian.PutUint16(p.buf[2:4], 0)
	binary.LittleEndian.PutUint16(p.buf[4:6], uint16(schema.RowWidth()))
	binary.LittleEndian.PutUint16(p.buf[6:8], uint16(schema.NumColumns()))
	return p
}

// FromBytes wraps an existing page image. The slice is retained, not copied.
func FromBytes(buf []byte) (*Page, error) {
	if len(buf) != Size {
		return nil, fmt.Errorf("%w: page is %d bytes, want %d", ErrCorrupt, len(buf), Size)
	}
	p := &Page{buf: buf}
	if binary.LittleEndian.Uint16(buf[0:2]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, binary.LittleEndian.Uint16(buf[0:2]))
	}
	if int(p.NumRows())*p.RowWidth()+HeaderSize > Size {
		return nil, fmt.Errorf("%w: %d rows of width %d overflow the page", ErrCorrupt, p.NumRows(), p.RowWidth())
	}
	return p, nil
}

// Bytes returns the raw page image.
func (p *Page) Bytes() []byte { return p.buf }

// NumRows returns the number of rows stored on the page.
func (p *Page) NumRows() int { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }

// RowWidth returns the encoded width of one row in bytes.
func (p *Page) RowWidth() int { return int(binary.LittleEndian.Uint16(p.buf[4:6])) }

// NumColumns returns the number of columns in each row.
func (p *Page) NumColumns() int { return int(binary.LittleEndian.Uint16(p.buf[6:8])) }

// Capacity returns how many rows of this page's width fit on a page.
func (p *Page) Capacity() int {
	w := p.RowWidth()
	if w == 0 {
		return 0
	}
	return (Size - HeaderSize) / w
}

// AppendRow encodes row at the end of the page. It reports false when the
// page is full.
func (p *Page) AppendRow(schema *table.Schema, row table.Row) bool {
	n := p.NumRows()
	if n >= p.Capacity() {
		return false
	}
	off := HeaderSize + n*p.RowWidth()
	EncodeRow(p.buf[off:off+p.RowWidth()], schema, row)
	binary.LittleEndian.PutUint16(p.buf[2:4], uint16(n+1))
	return true
}

// Row decodes row i into dst and returns it.
func (p *Page) Row(schema *table.Schema, i int, dst table.Row) (table.Row, error) {
	if i < 0 || i >= p.NumRows() {
		return nil, fmt.Errorf("page: row %d out of range [0,%d)", i, p.NumRows())
	}
	off := HeaderSize + i*p.RowWidth()
	return DecodeRow(p.buf[off:off+p.RowWidth()], schema, dst)
}

// EncodeRow writes the fixed-width binary encoding of row into dst, which
// must be at least schema.RowWidth() bytes.
func EncodeRow(dst []byte, schema *table.Schema, row table.Row) {
	off := 0
	for i, col := range schema.Columns {
		off += encodeValue(dst[off:], col.Type, row[i])
	}
}

// DecodeRow parses one encoded row, appending the decoded values into dst.
func DecodeRow(src []byte, schema *table.Schema, dst table.Row) (table.Row, error) {
	if cap(dst) < schema.NumColumns() {
		dst = make(table.Row, schema.NumColumns())
	}
	dst = dst[:schema.NumColumns()]
	off := 0
	for i, col := range schema.Columns {
		v, n, err := DecodeValue(src[off:], col.Type)
		if err != nil {
			return nil, err
		}
		dst[i] = v
		off += n
	}
	return dst, nil
}

func encodeValue(dst []byte, t table.Type, v int64) int {
	switch t {
	case table.Int64, table.Decimal:
		binary.LittleEndian.PutUint64(dst, uint64(v))
		return 8
	case table.Date:
		binary.LittleEndian.PutUint32(dst, uint32(int32(v)))
		return 4
	case table.DateUnpacked:
		y, m, d := table.UnpackDate(v)
		// Oracle DATE: century and year-of-century stored excess-100,
		// month/day plain, hour/min/sec excess-1 (we store midnight).
		dst[0] = byte(y/100 + 100)
		dst[1] = byte(y%100 + 100)
		dst[2] = byte(m)
		dst[3] = byte(d)
		dst[4] = 1
		dst[5] = 1
		dst[6] = 1
		return 7
	default:
		panic(fmt.Sprintf("page: unknown type %v", t))
	}
}

// DecodeValue parses one value of type t from src, returning the raw value
// and the number of bytes consumed. DateUnpacked values are normalised back
// to days-since-epoch, mirroring what the accelerator's preprocessor does in
// hardware.
func DecodeValue(src []byte, t table.Type) (int64, int, error) {
	switch t {
	case table.Int64, table.Decimal:
		if len(src) < 8 {
			return 0, 0, ErrCorrupt
		}
		return int64(binary.LittleEndian.Uint64(src)), 8, nil
	case table.Date:
		if len(src) < 4 {
			return 0, 0, ErrCorrupt
		}
		return int64(int32(binary.LittleEndian.Uint32(src))), 4, nil
	case table.DateUnpacked:
		if len(src) < 7 {
			return 0, 0, ErrCorrupt
		}
		year := (int(src[0])-100)*100 + int(src[1]) - 100
		month := int(src[2])
		day := int(src[3])
		if month < 1 || month > 12 || day < 1 || day > 31 {
			return 0, 0, fmt.Errorf("%w: bad unpacked date %d-%d-%d", ErrCorrupt, year, month, day)
		}
		return table.PackDate(year, month, day), 7, nil
	default:
		return 0, 0, fmt.Errorf("page: unknown type %v", t)
	}
}

// Encode converts an entire relation to its sequence of page images. The
// returned slice of pages is what "moves" from storage to the host in the
// experiments.
func Encode(rel *table.Relation) []*Page {
	var pages []*Page
	cur := New(rel.Schema)
	var row table.Row
	for i := 0; i < rel.NumRows(); i++ {
		row = rel.RowAt(i, row)
		if !cur.AppendRow(rel.Schema, row) {
			pages = append(pages, cur)
			cur = New(rel.Schema)
			if !cur.AppendRow(rel.Schema, row) {
				panic("page: row does not fit on an empty page")
			}
		}
	}
	if cur.NumRows() > 0 {
		pages = append(pages, cur)
	}
	return pages
}

// Decode reassembles a relation from its page images.
func Decode(name string, schema *table.Schema, pages []*Page) (*table.Relation, error) {
	rel := table.NewRelation(name, schema)
	var row table.Row
	for _, p := range pages {
		for i := 0; i < p.NumRows(); i++ {
			var err error
			row, err = p.Row(schema, i, row)
			if err != nil {
				return nil, err
			}
			rel.Append(row)
		}
	}
	return rel, nil
}
