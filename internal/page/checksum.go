package page

import "hash/crc32"

// Page integrity checking. Storage computes a CRC32C (Castagnoli, the
// polynomial with hardware support on both x86 and ARM) over the full page
// image at encode time; the scan path carries it alongside the page so that
// any layer — the side-path splitter, the network client — can detect a
// corrupted image without trusting the layer before it. The checksum is
// deliberately kept out of the 8 KiB image itself: the wire format of the
// rows is unchanged, and a page that was corrupted before the checksum was
// taken is indistinguishable from valid data, exactly as in a real DBMS.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of a full page image.
func Checksum(buf []byte) uint32 {
	return crc32.Checksum(buf, castagnoli)
}

// Checksum returns the CRC32C of the page's current image.
func (p *Page) Checksum() uint32 {
	return Checksum(p.buf)
}

// Verify reports whether the page's current image still matches a checksum
// taken earlier.
func (p *Page) Verify(sum uint32) bool {
	return p.Checksum() == sum
}
