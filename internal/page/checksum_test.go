package page

import (
	"testing"

	"streamhist/internal/table"
)

func checksumTestPage(t *testing.T) *Page {
	t.Helper()
	schema := table.NewSchema(table.Column{Name: "v", Type: table.Int64})
	p := New(schema)
	for i := int64(0); i < 100; i++ {
		if !p.AppendRow(schema, table.Row{i * 3}) {
			t.Fatal("page full too early")
		}
	}
	return p
}

func TestChecksumDetectsEveryByteFlip(t *testing.T) {
	p := checksumTestPage(t)
	sum := p.Checksum()
	if !p.Verify(sum) {
		t.Fatal("clean page fails its own checksum")
	}
	buf := p.Bytes()
	// Walk the image with a stride so the test stays fast but covers the
	// header, row area, and unused tail.
	for off := 0; off < len(buf); off += 37 {
		orig := buf[off]
		buf[off] ^= 0xFF
		if p.Verify(sum) {
			t.Fatalf("flip at offset %d not detected", off)
		}
		buf[off] = orig
	}
	if !p.Verify(sum) {
		t.Fatal("restored page fails checksum")
	}
}

func TestChecksumStableAcrossCopies(t *testing.T) {
	p := checksumTestPage(t)
	img := make([]byte, Size)
	copy(img, p.Bytes())
	if Checksum(img) != p.Checksum() {
		t.Fatal("checksum differs between a page and its copied image")
	}
}

func TestChecksumChangesWithContent(t *testing.T) {
	schema := table.NewSchema(table.Column{Name: "v", Type: table.Int64})
	a, b := New(schema), New(schema)
	a.AppendRow(schema, table.Row{1})
	b.AppendRow(schema, table.Row{2})
	if a.Checksum() == b.Checksum() {
		t.Fatal("different contents share a checksum")
	}
}
