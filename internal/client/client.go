// Package client is the host side of the histserved wire protocol: it
// requests table scans, consumes the raw page byte stream (the data that
// was moving anyway), and fetches the histograms that movement produced.
package client

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"streamhist/internal/hist"
	"streamhist/internal/obs"
	"streamhist/internal/page"
	"streamhist/internal/server"
	"streamhist/internal/sketch"
)

// Client is one connection to a histserved server. It is not safe for
// concurrent use; open one Client per goroutine (the server is built for
// many connections).
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration

	redial      func() (net.Conn, error)
	maxAttempts int
	backoff     time.Duration

	// Observability hooks; all nil-safe, wired by SetObs.
	o           *obs.Obs
	redials     *obs.Counter
	badPages    *obs.Counter
	scansFailed *obs.Counter
	// scanSeq numbers this client's logical scans for its flight-recorder
	// events (the server's events carry the server-side scan id).
	scanSeq uint64

	// Distributed tracing state (EnableTracing): the client originates a
	// trace per logical scan, records its own spans, and ships them back to
	// the server in a trailer frame once the handshake proved the server
	// tracing-capable.
	tracing bool
	// serverLegacy remembers a server that rejected the trace-context tail;
	// every later request is sent in the legacy layout, byte-identical to a
	// pre-tracing client.
	serverLegacy bool
	lastTraceID  uint64
	ct           *obs.ScanTrace // the in-flight scan's client-side trace
	ctRoot       int            // root span index in ct
	// traceOK records whether the current attempt saw FrameTraceInfo — the
	// server's half of the handshake, and the licence to send the trailer.
	traceOK bool
}

// EnableTracing opts this client into distributed tracing: every Scan
// originates a 64-bit trace ID, carries it to the server in the request's
// trace context, records client-side spans (request, stream, sink, backoff,
// redials), and ships them back on scan close. Against a server that
// predates tracing the client falls back to the legacy request layout after
// one rejected attempt and stays there for the connection's lifetime.
func (c *Client) EnableTracing() { c.tracing = true }

// LastTraceID returns the trace ID the most recent Scan originated (zero
// before any traced scan) — the handle for /traces?id= on the server.
func (c *Client) LastTraceID() uint64 { return c.lastTraceID }

// SetObs wires the client's retry machinery into an observability bundle:
// redials, in-flight checksum failures, and abandoned scans become counters,
// and each reconnect/backoff decision is logged through the bundle's logger.
// Never required — an unwired client skips all of it.
func (c *Client) SetObs(o *obs.Obs) {
	c.o = o
	reg := o.Registry()
	c.redials = reg.Counter("streamhist_client_redials_total",
		"Reconnects performed to resume interrupted scans.")
	c.badPages = reg.Counter("streamhist_client_bad_pages_total",
		"Received pages rejected for an in-flight checksum mismatch.")
	c.scansFailed = reg.Counter("streamhist_client_scans_failed_total",
		"Scans abandoned after exhausting the retry budget (or with no redial installed).")
}

// Dial connects to a histserved address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return New(conn), nil
}

// New wraps an established connection (e.g. one side of a net.Pipe).
func New(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		bw:      bufio.NewWriterSize(conn, 64<<10),
		timeout: time.Minute,
	}
}

// SetTimeout bounds each request round-trip and each response frame read.
// Zero disables deadlines.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetRedial installs a reconnect function, enabling resumable scans: when a
// scan dies mid-stream (connection reset, timeout) or a page arrives with a
// bad checksum, the client redials and re-requests the scan from the first
// page it has not yet verifiably delivered, backing off exponentially
// between attempts. Without a redial function every such failure is final.
func (c *Client) SetRedial(f func() (net.Conn, error)) {
	c.redial = f
	if c.maxAttempts == 0 {
		c.maxAttempts = 8
	}
	if c.backoff == 0 {
		c.backoff = 2 * time.Millisecond
	}
}

// SetRetryPolicy tunes resumable-scan behaviour: a scan is abandoned after
// attempts consecutive tries that deliver no new verified pages (tries that
// make progress do not consume the budget), with the given backoff before
// the first retry, doubling after each fruitless one.
func (c *Client) SetRetryPolicy(attempts int, backoff time.Duration) {
	c.maxAttempts = attempts
	c.backoff = backoff
}

// reconnect swaps in a fresh connection from the redial function.
func (c *Client) reconnect() error {
	conn, err := c.redial()
	if err != nil {
		return fmt.Errorf("client: redial: %w", err)
	}
	c.conn.Close()
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, 64<<10)
	c.bw = bufio.NewWriterSize(conn, 64<<10)
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) deadline() time.Time {
	if c.timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(c.timeout)
}

// send writes one request frame.
func (c *Client) send(typ uint8, payload []byte) error {
	c.conn.SetWriteDeadline(c.deadline())
	if err := server.WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// serverReplyError marks an error the server reported in a FrameError reply
// (unknown table or column, bad resume offset, internal failure). It unwraps
// to the protocol sentinels, so errors.Is still matches across the wire.
type serverReplyError struct{ err error }

func (e *serverReplyError) Error() string { return e.err.Error() }
func (e *serverReplyError) Unwrap() error { return e.err }

// recv reads one response frame, translating FrameError payloads into
// errors that wrap the protocol sentinels.
func (c *Client) recv() (server.Frame, error) {
	c.conn.SetReadDeadline(c.deadline())
	f, err := server.ReadFrame(c.br)
	if err != nil {
		return server.Frame{}, err
	}
	if f.Type == server.FrameError {
		return server.Frame{}, &serverReplyError{server.DecodeError(f.Payload)}
	}
	return f, nil
}

// retryable reports whether a scan failure could plausibly resolve on a
// fresh connection: transport failures and in-flight page corruption are
// worth a resume. A server FrameError reply is not — redialling would only
// re-send the same doomed request through the whole backoff budget — and
// neither is a protocol violation (ErrBadFrame): a peer that framed one
// response wrong will frame it wrong again.
func retryable(err error) bool {
	var reply *serverReplyError
	if errors.As(err, &reply) {
		return false
	}
	return !errors.Is(err, server.ErrBadFrame)
}

// ScanSummary reports one completed scan from the client's side.
type ScanSummary = server.ScanSummary

// errBadPage marks a checksum failure on a received page: retryable when a
// redial function is installed, final otherwise.
var errBadPage = fmt.Errorf("client: page failed checksum in flight")

// Scan streams table's raw pages into sink — byte-identical to what storage
// holds — and returns the server's end-of-scan summary. Pass column "" to
// move the data without refreshing any statistics; pass io.Discard as sink
// when only the side effect matters.
//
// Checksummed frames are verified page by page and only verified pages ever
// reach the sink, so what the sink holds is always a clean prefix of the
// relation. When a redial function is installed (SetRedial), a mid-scan
// failure — reset, timeout, or a corrupt page — restarts the scan from the
// first undelivered page with exponential backoff; the returned summary then
// covers the whole logical scan, with Retries recording the reconnects. A
// server rejection (unknown table or column, bad resume offset) is terminal
// and surfaces immediately, without consuming the retry budget.
func (c *Client) Scan(table, column string, sink io.Writer) (*ScanSummary, error) {
	start := time.Now()
	// The scan id is assigned before any work so the retry loop's log
	// records carry it (they used to log without one).
	c.scanSeq++
	if c.tracing {
		traceID := obs.NewTraceID()
		c.lastTraceID = traceID
		c.ct = obs.StartScanTrace(c.scanSeq, table, column, 16)
		c.ct.EnableTrace(traceID, 0, obs.SpanSideClient)
		c.ctRoot = c.ct.BeginRoot("scan")
	}
	sum, err := c.scanWithRetry(table, column, sink)
	if ct := c.ct; ct != nil {
		c.ct = nil
		ct.End(c.ctRoot, 0)
		if err != nil {
			ct.Err = err.Error()
		}
		if sum != nil {
			ct.Refreshed, ct.Degraded = sum.Refreshed, sum.Degraded
		}
		// Publish into this process's own ring (nil-safe) so the client's
		// /scans shows its half of the trace too, then ship the spans to
		// the server — but only when the handshake proved it can take them.
		c.o.Tracer().Publish(ct)
		if err == nil && c.traceOK {
			c.sendTraceReport(ct)
		}
	}
	// One wide event per logical scan (all redial rounds folded in), so the
	// client's view of a scan joins the server's by table and wall-clock
	// overlap even across process boundaries.
	ev := obs.ScanEvent{
		ScanID: c.scanSeq, Source: "client", Table: table, Column: column,
		StartNS: start.UnixNano(), WallNS: time.Since(start).Nanoseconds(),
	}
	if c.tracing {
		ev.TraceID = c.lastTraceID
	}
	if sum != nil {
		ev.Pages, ev.Bytes, ev.Rows = sum.Pages, sum.Bytes, sum.Rows
		ev.AccelCycles = sum.AccelCycles
		ev.Refreshed, ev.Degraded = sum.Refreshed, sum.Degraded
		ev.Retries = sum.Retries
		ev.QuarantinedPages = sum.QuarantinedPages
		ev.LanesRetired = sum.LanesRetired
		ev.SkippedTuples = sum.SkippedTuples
	}
	if err != nil {
		ev.Err = err.Error()
	}
	c.o.FlightRec().Record(ev)
	return sum, err
}

// sendTraceReport ships the client's recorded spans back to the server in a
// FrameTraceReport trailer. Strictly fail-open: the scan already succeeded,
// so a failed or refused trailer only costs trace completeness — the error
// is logged at debug level and dropped, and no response is ever read (the
// server never writes one).
func (c *Client) sendTraceReport(ct *obs.ScanTrace) {
	spans := ct.Spans
	if len(spans) > server.MaxTraceReportSpans {
		spans = spans[:server.MaxTraceReportSpans]
	}
	payload := server.EncodeTraceReport(server.TraceReport{TraceID: ct.TraceID, Spans: spans})
	if err := c.send(server.FrameTraceReport, payload); err != nil {
		c.o.Logger().Debug("trace report dropped", "scan", ct.ID, "err", err.Error())
	}
}

// timedWriter wraps the scan sink to time its writes: the window from the
// first to the last sink write becomes the client's "sink" span.
type timedWriter struct {
	w           io.Writer
	first, last int64
}

func (tw *timedWriter) Write(p []byte) (int, error) {
	if tw.first == 0 {
		tw.first = time.Now().UnixNano()
	}
	n, err := tw.w.Write(p)
	tw.last = time.Now().UnixNano()
	return n, err
}

// scanWithRetry is Scan's redial loop, separated so the flight-recorder
// event wraps every attempt.
func (c *Client) scanWithRetry(table, column string, sink io.Writer) (*ScanSummary, error) {
	var (
		delivered uint64 // verified pages written to sink, all attempts
		bytesOut  uint64
		retries   uint32
		stalled   int // consecutive attempts that delivered nothing new
	)
	backoff := c.backoff
	for {
		before := delivered
		sum, err := c.scanAttempt(table, column, sink, &delivered, &bytesOut)
		if err == nil {
			sum.Pages = uint32(delivered)
			sum.Bytes = bytesOut
			sum.Retries = retries
			return sum, nil
		}
		if errors.Is(err, errBadPage) {
			c.badPages.Inc()
		}
		if c.attachTrace() && errors.Is(err, server.ErrBadRequest) {
			var reply *serverReplyError
			if errors.As(err, &reply) {
				// The server rejected a request whose only novelty was the
				// trace-context tail: it predates tracing. Fall back to the
				// legacy layout once — every subsequent request is
				// byte-identical to an untraced client's — and re-send
				// immediately, outside the stall budget.
				c.serverLegacy = true
				c.o.Logger().Warn("server rejected trace context, retrying legacy",
					"scan", c.scanSeq, "table", table, "column", column)
				continue
			}
		}
		if delivered > before {
			// Forward progress: the failure budget is for getting stuck,
			// not for how often a long scan trips, so it resets — the loop
			// still terminates, because progress is bounded by the table.
			stalled = 0
			backoff = c.backoff
		} else {
			stalled++
		}
		if !retryable(err) || c.redial == nil || stalled >= c.maxAttempts {
			c.scansFailed.Inc()
			c.o.Logger().Warn("scan abandoned", "scan", c.scanSeq, "table", table,
				"column", column, "retries", retries, "delivered_pages", delivered,
				"err", err.Error())
			return nil, err
		}
		retries++
		c.redials.Inc()
		c.o.Logger().Warn("scan interrupted, redialling", "scan", c.scanSeq,
			"table", table, "column", column, "resume_page", delivered,
			"backoff", backoff, "err", err.Error())
		bi := c.ct.Begin("backoff")
		time.Sleep(backoff)
		c.ct.End(bi, 0)
		backoff *= 2
		di := c.ct.Begin("redial")
		rerr := c.reconnect()
		c.ct.End(di, 0)
		if rerr != nil {
			c.scansFailed.Inc()
			return nil, fmt.Errorf("%w (reconnect failed: %v)", err, rerr)
		}
	}
}

// attachTrace reports whether the next request should carry trace context:
// tracing is on, a trace is in flight, and the server has not already
// rejected the tail as a legacy peer.
func (c *Client) attachTrace() bool {
	return c.tracing && !c.serverLegacy && c.ct != nil
}

// scanAttempt runs one scan request starting at *delivered pages, sinking
// every page it can verify and advancing the cursors as it goes. Any error
// return leaves the cursors at the resume point.
func (c *Client) scanAttempt(table, column string, sink io.Writer, delivered, bytesOut *uint64) (*ScanSummary, error) {
	sreq := server.ScanRequest{
		Table:  table,
		Column: column,
		Offset: uint32(*delivered),
	}
	// Each attempt re-handshakes: a redial may land on a different (or
	// differently-versioned) server, so the trailer licence never outlives
	// the connection that granted it.
	c.traceOK = false
	if c.attachTrace() {
		sreq.TraceID = c.ct.TraceID
		sreq.ParentSpanID = c.ct.RootSpanID
	}
	ri := c.ct.Begin("request")
	err := c.send(server.FrameScan, server.EncodeScanRequest(sreq))
	c.ct.End(ri, 0)
	if err != nil {
		return nil, fmt.Errorf("client: sending SCAN: %w", err)
	}
	if c.ct != nil {
		// Time the sink's writes: first-to-last write becomes the "sink"
		// span, recorded however the attempt ends.
		tw := &timedWriter{w: sink}
		sink = tw
		defer func() {
			if tw.first != 0 {
				c.ct.AddSpan("sink", -1, tw.first, tw.last, 0, false)
			}
		}()
	}
	si := c.ct.Begin("stream")
	defer func() { c.ct.End(si, 0) }()
	var received uint64 // page bytes this attempt, as the server counts them
	// skip counts re-delivered duplicate pages still to swallow: a server
	// that aligns the resume down to a frame boundary (FrameResumeInfo)
	// re-sends pages the sink already holds. They are verified and counted
	// as received — the server delivered them — but never sunk twice.
	var skip uint64
	vi := -1 // open "verify-skip" span while duplicates are being swallowed
	for {
		f, err := c.recv()
		if err != nil {
			return nil, fmt.Errorf("client: SCAN %s.%s: %w", table, column, err)
		}
		switch f.Type {
		case server.FrameTraceInfo:
			ti, err := server.DecodeTraceInfo(f.Payload)
			if err != nil {
				return nil, fmt.Errorf("client: SCAN %s.%s: %w", table, column, err)
			}
			if c.ct != nil && ti.TraceID == c.ct.TraceID {
				c.traceOK = true
			}
		case server.FrameResumeInfo:
			start, err := server.DecodeResumeInfo(f.Payload)
			if err != nil {
				return nil, fmt.Errorf("client: SCAN %s.%s: %w", table, column, err)
			}
			if uint64(start) > *delivered {
				return nil, fmt.Errorf("client: %w: resume start %d beyond %d delivered pages",
					server.ErrBadFrame, start, *delivered)
			}
			skip = *delivered - uint64(start)
			if skip > 0 {
				vi = c.ct.Begin("verify-skip")
			}
		case server.FramePages:
			// Legacy unchecksummed frames: nothing to verify, sink as-is.
			if len(f.Payload) == 0 {
				return nil, fmt.Errorf("client: %w: empty pages frame", server.ErrBadFrame)
			}
			received += uint64(len(f.Payload))
			payload := f.Payload
			for skip > 0 && len(payload) >= page.Size {
				payload = payload[page.Size:]
				skip--
			}
			if _, err := sink.Write(payload); err != nil {
				return nil, fmt.Errorf("client: writing to sink: %w", err)
			}
			*bytesOut += uint64(len(payload))
			*delivered += uint64(len(payload) / page.Size)
		case server.FramePagesCk:
			unit := page.Size + server.PageChecksumSize
			n := len(f.Payload) / unit
			if n == 0 || len(f.Payload)%unit != 0 {
				return nil, fmt.Errorf("client: %w: pages+ck frame of %d bytes", server.ErrBadFrame, len(f.Payload))
			}
			trailer := f.Payload[n*page.Size:]
			for i := 0; i < n; i++ {
				img := f.Payload[i*page.Size : (i+1)*page.Size]
				want := binary.LittleEndian.Uint32(trailer[i*4:])
				if page.Checksum(img) != want {
					// The page was damaged in flight. Everything verified
					// so far is already safely in the sink; abandon the
					// attempt here so a retry resumes at exactly this page.
					return nil, fmt.Errorf("%w (page %d of %s)", errBadPage, *delivered, table)
				}
				received += page.Size
				if skip > 0 {
					// Duplicate from the frame-aligned overlap; the sink
					// already holds its verified copy.
					skip--
					continue
				}
				if _, err := sink.Write(img); err != nil {
					return nil, fmt.Errorf("client: writing to sink: %w", err)
				}
				*delivered++
				*bytesOut += page.Size
			}
		case server.FrameScanEnd:
			sum, err := server.DecodeScanSummary(f.Payload)
			if err != nil {
				return nil, fmt.Errorf("client: SCAN summary: %w", err)
			}
			if sum.Bytes != received {
				return nil, fmt.Errorf("client: server reports %d bytes, received %d", sum.Bytes, received)
			}
			return &sum, nil
		default:
			return nil, fmt.Errorf("client: %w: unexpected frame type %d in scan", server.ErrBadFrame, f.Type)
		}
		if vi >= 0 && skip == 0 {
			// The frame-aligned overlap has been re-verified; close the
			// verify-skip span at the first frame past it.
			c.ct.End(vi, 0)
			vi = -1
		}
	}
}

// Stats is a column's catalog entry as served over the wire.
type Stats struct {
	Table, Column string
	// RowCount and NDistinct describe the relation at gather time.
	RowCount  int64
	NDistinct int64
	// Version is the catalog's table-modification counter at gather time.
	Version uint64
	// Histogram is the freshest served-scan histogram.
	Histogram *hist.Histogram
	// Sketches are the statistic blocks the same scan refreshed beside the
	// histogram (HLL NDV, heavy hitters, sliding window). Empty when the
	// server runs without a sketch chain or predates it.
	Sketches sketch.Blocks
}

// Stats fetches the freshest histogram for table.column. A corrupt
// histogram payload surfaces as an error wrapping hist.ErrCorruptHistogram,
// never as garbage buckets.
func (c *Client) Stats(table, column string) (*Stats, error) {
	req := server.EncodeScanRequest(server.ScanRequest{Table: table, Column: column})
	if err := c.send(server.FrameStats, req); err != nil {
		return nil, fmt.Errorf("client: sending STATS: %w", err)
	}
	f, err := c.recv()
	if err != nil {
		return nil, fmt.Errorf("client: STATS %s.%s: %w", table, column, err)
	}
	if f.Type != server.FrameStatsResult {
		return nil, fmt.Errorf("client: %w: unexpected frame type %d in stats", server.ErrBadFrame, f.Type)
	}
	res, err := server.DecodeStatsResult(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: STATS payload: %w", err)
	}
	h := new(hist.Histogram)
	if err := h.UnmarshalBinary(res.Histogram); err != nil {
		return nil, fmt.Errorf("client: decoding STATS histogram for %s.%s: %w", table, column, err)
	}
	blocks, err := sketch.DecodeBlocks(res.Sketches)
	if err != nil {
		return nil, fmt.Errorf("client: decoding STATS sketches for %s.%s: %w", table, column, err)
	}
	return &Stats{
		Table:     table,
		Column:    column,
		RowCount:  res.RowCount,
		NDistinct: res.NDistinct,
		Version:   res.Version,
		Histogram: h,
		Sketches:  blocks,
	}, nil
}

// TableInfo is re-exported for callers listing the served tables.
type TableInfo = server.TableInfo

// Tables lists the relations the server is serving.
func (c *Client) Tables() ([]TableInfo, error) {
	if err := c.send(server.FrameList, nil); err != nil {
		return nil, fmt.Errorf("client: sending LIST: %w", err)
	}
	f, err := c.recv()
	if err != nil {
		return nil, fmt.Errorf("client: LIST: %w", err)
	}
	if f.Type != server.FrameTables {
		return nil, fmt.Errorf("client: %w: unexpected frame type %d in list", server.ErrBadFrame, f.Type)
	}
	tables, err := server.DecodeTableList(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: LIST payload: %w", err)
	}
	return tables, nil
}
