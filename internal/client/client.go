// Package client is the host side of the histserved wire protocol: it
// requests table scans, consumes the raw page byte stream (the data that
// was moving anyway), and fetches the histograms that movement produced.
package client

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"streamhist/internal/hist"
	"streamhist/internal/server"
)

// Client is one connection to a histserved server. It is not safe for
// concurrent use; open one Client per goroutine (the server is built for
// many connections).
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration
}

// Dial connects to a histserved address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return New(conn), nil
}

// New wraps an established connection (e.g. one side of a net.Pipe).
func New(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		bw:      bufio.NewWriterSize(conn, 64<<10),
		timeout: time.Minute,
	}
}

// SetTimeout bounds each request round-trip and each response frame read.
// Zero disables deadlines.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) deadline() time.Time {
	if c.timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(c.timeout)
}

// send writes one request frame.
func (c *Client) send(typ uint8, payload []byte) error {
	c.conn.SetWriteDeadline(c.deadline())
	if err := server.WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv reads one response frame, translating FrameError payloads into
// errors that wrap the protocol sentinels.
func (c *Client) recv() (server.Frame, error) {
	c.conn.SetReadDeadline(c.deadline())
	f, err := server.ReadFrame(c.br)
	if err != nil {
		return server.Frame{}, err
	}
	if f.Type == server.FrameError {
		return server.Frame{}, server.DecodeError(f.Payload)
	}
	return f, nil
}

// ScanSummary reports one completed scan from the client's side.
type ScanSummary = server.ScanSummary

// Scan streams table's raw pages into sink — byte-identical to what storage
// holds — and returns the server's end-of-scan summary. Pass column "" to
// move the data without refreshing any statistics; pass io.Discard as sink
// when only the side effect matters.
func (c *Client) Scan(table, column string, sink io.Writer) (*ScanSummary, error) {
	req := server.EncodeScanRequest(server.ScanRequest{Table: table, Column: column})
	if err := c.send(server.FrameScan, req); err != nil {
		return nil, fmt.Errorf("client: sending SCAN: %w", err)
	}
	var received uint64
	for {
		f, err := c.recv()
		if err != nil {
			return nil, fmt.Errorf("client: SCAN %s.%s: %w", table, column, err)
		}
		switch f.Type {
		case server.FramePages:
			if len(f.Payload) == 0 {
				return nil, fmt.Errorf("client: %w: empty pages frame", server.ErrBadFrame)
			}
			if _, err := sink.Write(f.Payload); err != nil {
				return nil, fmt.Errorf("client: writing to sink: %w", err)
			}
			received += uint64(len(f.Payload))
		case server.FrameScanEnd:
			sum, err := server.DecodeScanSummary(f.Payload)
			if err != nil {
				return nil, fmt.Errorf("client: SCAN summary: %w", err)
			}
			if sum.Bytes != received {
				return nil, fmt.Errorf("client: server reports %d bytes, received %d", sum.Bytes, received)
			}
			return &sum, nil
		default:
			return nil, fmt.Errorf("client: %w: unexpected frame type %d in scan", server.ErrBadFrame, f.Type)
		}
	}
}

// Stats is a column's catalog entry as served over the wire.
type Stats struct {
	Table, Column string
	// RowCount and NDistinct describe the relation at gather time.
	RowCount  int64
	NDistinct int64
	// Version is the catalog's table-modification counter at gather time.
	Version uint64
	// Histogram is the freshest served-scan histogram.
	Histogram *hist.Histogram
}

// Stats fetches the freshest histogram for table.column. A corrupt
// histogram payload surfaces as an error wrapping hist.ErrCorruptHistogram,
// never as garbage buckets.
func (c *Client) Stats(table, column string) (*Stats, error) {
	req := server.EncodeScanRequest(server.ScanRequest{Table: table, Column: column})
	if err := c.send(server.FrameStats, req); err != nil {
		return nil, fmt.Errorf("client: sending STATS: %w", err)
	}
	f, err := c.recv()
	if err != nil {
		return nil, fmt.Errorf("client: STATS %s.%s: %w", table, column, err)
	}
	if f.Type != server.FrameStatsResult {
		return nil, fmt.Errorf("client: %w: unexpected frame type %d in stats", server.ErrBadFrame, f.Type)
	}
	res, err := server.DecodeStatsResult(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: STATS payload: %w", err)
	}
	h := new(hist.Histogram)
	if err := h.UnmarshalBinary(res.Histogram); err != nil {
		return nil, fmt.Errorf("client: decoding STATS histogram for %s.%s: %w", table, column, err)
	}
	return &Stats{
		Table:     table,
		Column:    column,
		RowCount:  res.RowCount,
		NDistinct: res.NDistinct,
		Version:   res.Version,
		Histogram: h,
	}, nil
}

// TableInfo is re-exported for callers listing the served tables.
type TableInfo = server.TableInfo

// Tables lists the relations the server is serving.
func (c *Client) Tables() ([]TableInfo, error) {
	if err := c.send(server.FrameList, nil); err != nil {
		return nil, fmt.Errorf("client: sending LIST: %w", err)
	}
	f, err := c.recv()
	if err != nil {
		return nil, fmt.Errorf("client: LIST: %w", err)
	}
	if f.Type != server.FrameTables {
		return nil, fmt.Errorf("client: %w: unexpected frame type %d in list", server.ErrBadFrame, f.Type)
	}
	tables, err := server.DecodeTableList(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: LIST payload: %w", err)
	}
	return tables, nil
}
