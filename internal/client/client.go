// Package client is the host side of the histserved wire protocol: it
// requests table scans, consumes the raw page byte stream (the data that
// was moving anyway), and fetches the histograms that movement produced.
package client

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"streamhist/internal/hist"
	"streamhist/internal/obs"
	"streamhist/internal/page"
	"streamhist/internal/server"
	"streamhist/internal/sketch"
)

// Client is one connection to a histserved server. It is not safe for
// concurrent use; open one Client per goroutine (the server is built for
// many connections).
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration

	redial      func() (net.Conn, error)
	maxAttempts int
	backoff     time.Duration

	// Observability hooks; all nil-safe, wired by SetObs.
	o           *obs.Obs
	redials     *obs.Counter
	badPages    *obs.Counter
	scansFailed *obs.Counter
	// scanSeq numbers this client's logical scans for its flight-recorder
	// events (the server's events carry the server-side scan id).
	scanSeq uint64
}

// SetObs wires the client's retry machinery into an observability bundle:
// redials, in-flight checksum failures, and abandoned scans become counters,
// and each reconnect/backoff decision is logged through the bundle's logger.
// Never required — an unwired client skips all of it.
func (c *Client) SetObs(o *obs.Obs) {
	c.o = o
	reg := o.Registry()
	c.redials = reg.Counter("streamhist_client_redials_total",
		"Reconnects performed to resume interrupted scans.")
	c.badPages = reg.Counter("streamhist_client_bad_pages_total",
		"Received pages rejected for an in-flight checksum mismatch.")
	c.scansFailed = reg.Counter("streamhist_client_scans_failed_total",
		"Scans abandoned after exhausting the retry budget (or with no redial installed).")
}

// Dial connects to a histserved address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return New(conn), nil
}

// New wraps an established connection (e.g. one side of a net.Pipe).
func New(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		bw:      bufio.NewWriterSize(conn, 64<<10),
		timeout: time.Minute,
	}
}

// SetTimeout bounds each request round-trip and each response frame read.
// Zero disables deadlines.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetRedial installs a reconnect function, enabling resumable scans: when a
// scan dies mid-stream (connection reset, timeout) or a page arrives with a
// bad checksum, the client redials and re-requests the scan from the first
// page it has not yet verifiably delivered, backing off exponentially
// between attempts. Without a redial function every such failure is final.
func (c *Client) SetRedial(f func() (net.Conn, error)) {
	c.redial = f
	if c.maxAttempts == 0 {
		c.maxAttempts = 8
	}
	if c.backoff == 0 {
		c.backoff = 2 * time.Millisecond
	}
}

// SetRetryPolicy tunes resumable-scan behaviour: a scan is abandoned after
// attempts consecutive tries that deliver no new verified pages (tries that
// make progress do not consume the budget), with the given backoff before
// the first retry, doubling after each fruitless one.
func (c *Client) SetRetryPolicy(attempts int, backoff time.Duration) {
	c.maxAttempts = attempts
	c.backoff = backoff
}

// reconnect swaps in a fresh connection from the redial function.
func (c *Client) reconnect() error {
	conn, err := c.redial()
	if err != nil {
		return fmt.Errorf("client: redial: %w", err)
	}
	c.conn.Close()
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, 64<<10)
	c.bw = bufio.NewWriterSize(conn, 64<<10)
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) deadline() time.Time {
	if c.timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(c.timeout)
}

// send writes one request frame.
func (c *Client) send(typ uint8, payload []byte) error {
	c.conn.SetWriteDeadline(c.deadline())
	if err := server.WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// serverReplyError marks an error the server reported in a FrameError reply
// (unknown table or column, bad resume offset, internal failure). It unwraps
// to the protocol sentinels, so errors.Is still matches across the wire.
type serverReplyError struct{ err error }

func (e *serverReplyError) Error() string { return e.err.Error() }
func (e *serverReplyError) Unwrap() error { return e.err }

// recv reads one response frame, translating FrameError payloads into
// errors that wrap the protocol sentinels.
func (c *Client) recv() (server.Frame, error) {
	c.conn.SetReadDeadline(c.deadline())
	f, err := server.ReadFrame(c.br)
	if err != nil {
		return server.Frame{}, err
	}
	if f.Type == server.FrameError {
		return server.Frame{}, &serverReplyError{server.DecodeError(f.Payload)}
	}
	return f, nil
}

// retryable reports whether a scan failure could plausibly resolve on a
// fresh connection: transport failures and in-flight page corruption are
// worth a resume. A server FrameError reply is not — redialling would only
// re-send the same doomed request through the whole backoff budget — and
// neither is a protocol violation (ErrBadFrame): a peer that framed one
// response wrong will frame it wrong again.
func retryable(err error) bool {
	var reply *serverReplyError
	if errors.As(err, &reply) {
		return false
	}
	return !errors.Is(err, server.ErrBadFrame)
}

// ScanSummary reports one completed scan from the client's side.
type ScanSummary = server.ScanSummary

// errBadPage marks a checksum failure on a received page: retryable when a
// redial function is installed, final otherwise.
var errBadPage = fmt.Errorf("client: page failed checksum in flight")

// Scan streams table's raw pages into sink — byte-identical to what storage
// holds — and returns the server's end-of-scan summary. Pass column "" to
// move the data without refreshing any statistics; pass io.Discard as sink
// when only the side effect matters.
//
// Checksummed frames are verified page by page and only verified pages ever
// reach the sink, so what the sink holds is always a clean prefix of the
// relation. When a redial function is installed (SetRedial), a mid-scan
// failure — reset, timeout, or a corrupt page — restarts the scan from the
// first undelivered page with exponential backoff; the returned summary then
// covers the whole logical scan, with Retries recording the reconnects. A
// server rejection (unknown table or column, bad resume offset) is terminal
// and surfaces immediately, without consuming the retry budget.
func (c *Client) Scan(table, column string, sink io.Writer) (*ScanSummary, error) {
	start := time.Now()
	sum, err := c.scanWithRetry(table, column, sink)
	// One wide event per logical scan (all redial rounds folded in), so the
	// client's view of a scan joins the server's by table and wall-clock
	// overlap even across process boundaries.
	c.scanSeq++
	ev := obs.ScanEvent{
		ScanID: c.scanSeq, Source: "client", Table: table, Column: column,
		StartNS: start.UnixNano(), WallNS: time.Since(start).Nanoseconds(),
	}
	if sum != nil {
		ev.Pages, ev.Bytes, ev.Rows = sum.Pages, sum.Bytes, sum.Rows
		ev.AccelCycles = sum.AccelCycles
		ev.Refreshed, ev.Degraded = sum.Refreshed, sum.Degraded
		ev.Retries = sum.Retries
		ev.QuarantinedPages = sum.QuarantinedPages
		ev.LanesRetired = sum.LanesRetired
		ev.SkippedTuples = sum.SkippedTuples
	}
	if err != nil {
		ev.Err = err.Error()
	}
	c.o.FlightRec().Record(ev)
	return sum, err
}

// scanWithRetry is Scan's redial loop, separated so the flight-recorder
// event wraps every attempt.
func (c *Client) scanWithRetry(table, column string, sink io.Writer) (*ScanSummary, error) {
	var (
		delivered uint64 // verified pages written to sink, all attempts
		bytesOut  uint64
		retries   uint32
		stalled   int // consecutive attempts that delivered nothing new
	)
	backoff := c.backoff
	for {
		before := delivered
		sum, err := c.scanAttempt(table, column, sink, &delivered, &bytesOut)
		if err == nil {
			sum.Pages = uint32(delivered)
			sum.Bytes = bytesOut
			sum.Retries = retries
			return sum, nil
		}
		if errors.Is(err, errBadPage) {
			c.badPages.Inc()
		}
		if delivered > before {
			// Forward progress: the failure budget is for getting stuck,
			// not for how often a long scan trips, so it resets — the loop
			// still terminates, because progress is bounded by the table.
			stalled = 0
			backoff = c.backoff
		} else {
			stalled++
		}
		if !retryable(err) || c.redial == nil || stalled >= c.maxAttempts {
			c.scansFailed.Inc()
			c.o.Logger().Warn("scan abandoned", "table", table, "column", column,
				"retries", retries, "delivered_pages", delivered, "err", err.Error())
			return nil, err
		}
		retries++
		c.redials.Inc()
		c.o.Logger().Warn("scan interrupted, redialling", "table", table,
			"column", column, "resume_page", delivered, "backoff", backoff,
			"err", err.Error())
		time.Sleep(backoff)
		backoff *= 2
		if rerr := c.reconnect(); rerr != nil {
			c.scansFailed.Inc()
			return nil, fmt.Errorf("%w (reconnect failed: %v)", err, rerr)
		}
	}
}

// scanAttempt runs one scan request starting at *delivered pages, sinking
// every page it can verify and advancing the cursors as it goes. Any error
// return leaves the cursors at the resume point.
func (c *Client) scanAttempt(table, column string, sink io.Writer, delivered, bytesOut *uint64) (*ScanSummary, error) {
	req := server.EncodeScanRequest(server.ScanRequest{
		Table:  table,
		Column: column,
		Offset: uint32(*delivered),
	})
	if err := c.send(server.FrameScan, req); err != nil {
		return nil, fmt.Errorf("client: sending SCAN: %w", err)
	}
	var received uint64 // page bytes this attempt, as the server counts them
	// skip counts re-delivered duplicate pages still to swallow: a server
	// that aligns the resume down to a frame boundary (FrameResumeInfo)
	// re-sends pages the sink already holds. They are verified and counted
	// as received — the server delivered them — but never sunk twice.
	var skip uint64
	for {
		f, err := c.recv()
		if err != nil {
			return nil, fmt.Errorf("client: SCAN %s.%s: %w", table, column, err)
		}
		switch f.Type {
		case server.FrameResumeInfo:
			start, err := server.DecodeResumeInfo(f.Payload)
			if err != nil {
				return nil, fmt.Errorf("client: SCAN %s.%s: %w", table, column, err)
			}
			if uint64(start) > *delivered {
				return nil, fmt.Errorf("client: %w: resume start %d beyond %d delivered pages",
					server.ErrBadFrame, start, *delivered)
			}
			skip = *delivered - uint64(start)
		case server.FramePages:
			// Legacy unchecksummed frames: nothing to verify, sink as-is.
			if len(f.Payload) == 0 {
				return nil, fmt.Errorf("client: %w: empty pages frame", server.ErrBadFrame)
			}
			received += uint64(len(f.Payload))
			payload := f.Payload
			for skip > 0 && len(payload) >= page.Size {
				payload = payload[page.Size:]
				skip--
			}
			if _, err := sink.Write(payload); err != nil {
				return nil, fmt.Errorf("client: writing to sink: %w", err)
			}
			*bytesOut += uint64(len(payload))
			*delivered += uint64(len(payload) / page.Size)
		case server.FramePagesCk:
			unit := page.Size + server.PageChecksumSize
			n := len(f.Payload) / unit
			if n == 0 || len(f.Payload)%unit != 0 {
				return nil, fmt.Errorf("client: %w: pages+ck frame of %d bytes", server.ErrBadFrame, len(f.Payload))
			}
			trailer := f.Payload[n*page.Size:]
			for i := 0; i < n; i++ {
				img := f.Payload[i*page.Size : (i+1)*page.Size]
				want := binary.LittleEndian.Uint32(trailer[i*4:])
				if page.Checksum(img) != want {
					// The page was damaged in flight. Everything verified
					// so far is already safely in the sink; abandon the
					// attempt here so a retry resumes at exactly this page.
					return nil, fmt.Errorf("%w (page %d of %s)", errBadPage, *delivered, table)
				}
				received += page.Size
				if skip > 0 {
					// Duplicate from the frame-aligned overlap; the sink
					// already holds its verified copy.
					skip--
					continue
				}
				if _, err := sink.Write(img); err != nil {
					return nil, fmt.Errorf("client: writing to sink: %w", err)
				}
				*delivered++
				*bytesOut += page.Size
			}
		case server.FrameScanEnd:
			sum, err := server.DecodeScanSummary(f.Payload)
			if err != nil {
				return nil, fmt.Errorf("client: SCAN summary: %w", err)
			}
			if sum.Bytes != received {
				return nil, fmt.Errorf("client: server reports %d bytes, received %d", sum.Bytes, received)
			}
			return &sum, nil
		default:
			return nil, fmt.Errorf("client: %w: unexpected frame type %d in scan", server.ErrBadFrame, f.Type)
		}
	}
}

// Stats is a column's catalog entry as served over the wire.
type Stats struct {
	Table, Column string
	// RowCount and NDistinct describe the relation at gather time.
	RowCount  int64
	NDistinct int64
	// Version is the catalog's table-modification counter at gather time.
	Version uint64
	// Histogram is the freshest served-scan histogram.
	Histogram *hist.Histogram
	// Sketches are the statistic blocks the same scan refreshed beside the
	// histogram (HLL NDV, heavy hitters, sliding window). Empty when the
	// server runs without a sketch chain or predates it.
	Sketches sketch.Blocks
}

// Stats fetches the freshest histogram for table.column. A corrupt
// histogram payload surfaces as an error wrapping hist.ErrCorruptHistogram,
// never as garbage buckets.
func (c *Client) Stats(table, column string) (*Stats, error) {
	req := server.EncodeScanRequest(server.ScanRequest{Table: table, Column: column})
	if err := c.send(server.FrameStats, req); err != nil {
		return nil, fmt.Errorf("client: sending STATS: %w", err)
	}
	f, err := c.recv()
	if err != nil {
		return nil, fmt.Errorf("client: STATS %s.%s: %w", table, column, err)
	}
	if f.Type != server.FrameStatsResult {
		return nil, fmt.Errorf("client: %w: unexpected frame type %d in stats", server.ErrBadFrame, f.Type)
	}
	res, err := server.DecodeStatsResult(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: STATS payload: %w", err)
	}
	h := new(hist.Histogram)
	if err := h.UnmarshalBinary(res.Histogram); err != nil {
		return nil, fmt.Errorf("client: decoding STATS histogram for %s.%s: %w", table, column, err)
	}
	blocks, err := sketch.DecodeBlocks(res.Sketches)
	if err != nil {
		return nil, fmt.Errorf("client: decoding STATS sketches for %s.%s: %w", table, column, err)
	}
	return &Stats{
		Table:     table,
		Column:    column,
		RowCount:  res.RowCount,
		NDistinct: res.NDistinct,
		Version:   res.Version,
		Histogram: h,
		Sketches:  blocks,
	}, nil
}

// TableInfo is re-exported for callers listing the served tables.
type TableInfo = server.TableInfo

// Tables lists the relations the server is serving.
func (c *Client) Tables() ([]TableInfo, error) {
	if err := c.send(server.FrameList, nil); err != nil {
		return nil, fmt.Errorf("client: sending LIST: %w", err)
	}
	f, err := c.recv()
	if err != nil {
		return nil, fmt.Errorf("client: LIST: %w", err)
	}
	if f.Type != server.FrameTables {
		return nil, fmt.Errorf("client: %w: unexpected frame type %d in list", server.ErrBadFrame, f.Type)
	}
	tables, err := server.DecodeTableList(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("client: LIST payload: %w", err)
	}
	return tables, nil
}
