package client_test

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"streamhist/internal/client"
	"streamhist/internal/hist"
	"streamhist/internal/server"
)

// fakeServer runs fn as the server side of a pipe and returns a connected
// client. fn gets the raw server-side conn to speak whatever (mis)behaviour
// the test needs.
func fakeServer(t *testing.T, fn func(conn net.Conn)) *client.Client {
	t.Helper()
	sc, cc := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer sc.Close()
		fn(sc)
	}()
	t.Cleanup(func() {
		cc.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("fake server did not exit")
		}
	})
	c := client.New(cc)
	c.SetTimeout(5 * time.Second)
	return c
}

// readRequest consumes one request frame on the fake server side.
func readRequest(t *testing.T, conn net.Conn) server.Frame {
	t.Helper()
	f, err := server.ReadFrame(conn)
	if err != nil {
		t.Errorf("fake server read: %v", err)
	}
	return f
}

// TestStatsCorruptHistogramSurfacesError is the wire-corruption satellite:
// a truncated histogram payload must surface as an error wrapping
// hist.ErrCorruptHistogram — never as garbage buckets.
func TestStatsCorruptHistogramSurfacesError(t *testing.T) {
	good, err := (&hist.Histogram{
		Kind:          hist.Compressed,
		Total:         10,
		DistinctTotal: 3,
		Buckets:       []hist.Bucket{{Low: 1, High: 9, Count: 10, Distinct: 3}},
	}).MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	corruptions := map[string][]byte{
		"truncated": good[:len(good)-5],
		"bad magic": append([]byte{0xDE, 0xAD}, good[2:]...),
		"empty":     nil,
	}
	for name, raw := range corruptions {
		t.Run(name, func(t *testing.T) {
			c := fakeServer(t, func(conn net.Conn) {
				readRequest(t, conn)
				payload := server.EncodeStatsResult(server.StatsResult{
					RowCount: 10, NDistinct: 3, Histogram: raw,
				})
				server.WriteFrame(conn, server.FrameStatsResult, payload)
			})
			st, err := c.Stats("t", "c")
			if err == nil {
				t.Fatalf("corrupt histogram decoded into %+v", st.Histogram)
			}
			if !errors.Is(err, hist.ErrCorruptHistogram) {
				t.Fatalf("error does not wrap hist.ErrCorruptHistogram: %v", err)
			}
		})
	}
}

func TestStatsIntactHistogramRoundTrips(t *testing.T) {
	want := &hist.Histogram{
		Kind:          hist.Compressed,
		Total:         42,
		DistinctTotal: 7,
		Frequent:      []hist.FrequentValue{{Value: 3, Count: 12}},
		Buckets:       []hist.Bucket{{Low: 0, High: 30, Count: 30, Distinct: 6}},
	}
	raw, _ := want.MarshalBinary()
	c := fakeServer(t, func(conn net.Conn) {
		readRequest(t, conn)
		server.WriteFrame(conn, server.FrameStatsResult,
			server.EncodeStatsResult(server.StatsResult{RowCount: 42, NDistinct: 7, Version: 3, Histogram: raw}))
	})
	st, err := c.Stats("t", "c")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !st.Histogram.Equal(want) || st.Version != 3 {
		t.Fatalf("stats changed across the wire: %+v", st)
	}
}

func TestScanServerErrorFrame(t *testing.T) {
	c := fakeServer(t, func(conn net.Conn) {
		readRequest(t, conn)
		server.WriteFrame(conn, server.FrameError, server.EncodeError(server.ErrUnknownTable))
	})
	if _, err := c.Scan("ghost", "c", io.Discard); !errors.Is(err, server.ErrUnknownTable) {
		t.Fatalf("got %v, want ErrUnknownTable", err)
	}
}

// Regression: with a redial installed, a server rejection (unknown table,
// bad resume offset) used to be retried like a transport failure — the same
// doomed request re-sent through the whole backoff budget. It must surface
// immediately, without a single reconnect.
func TestScanServerRejectionNotRetried(t *testing.T) {
	c := fakeServer(t, func(conn net.Conn) {
		readRequest(t, conn)
		server.WriteFrame(conn, server.FrameError, server.EncodeError(server.ErrUnknownTable))
	})
	var redials int
	c.SetRedial(func() (net.Conn, error) {
		redials++
		return nil, errors.New("no second server to dial")
	})
	_, err := c.Scan("ghost", "c", io.Discard)
	if !errors.Is(err, server.ErrUnknownTable) {
		t.Fatalf("got %v, want ErrUnknownTable", err)
	}
	if redials != 0 {
		t.Fatalf("terminal server rejection triggered %d redials", redials)
	}
}

func TestScanByteCountMismatchDetected(t *testing.T) {
	c := fakeServer(t, func(conn net.Conn) {
		readRequest(t, conn)
		server.WriteFrame(conn, server.FramePages, bytes.Repeat([]byte{1}, 100))
		// Lie about how much was sent.
		server.WriteFrame(conn, server.FrameScanEnd,
			server.EncodeScanSummary(server.ScanSummary{Pages: 1, Bytes: 50}))
	})
	if _, err := c.Scan("t", "c", io.Discard); err == nil {
		t.Fatal("byte-count mismatch not detected")
	}
}

func TestScanRejectsUnexpectedFrame(t *testing.T) {
	c := fakeServer(t, func(conn net.Conn) {
		readRequest(t, conn)
		server.WriteFrame(conn, server.FrameTables, server.EncodeTableList(nil))
	})
	if _, err := c.Scan("t", "c", io.Discard); err == nil {
		t.Fatal("out-of-protocol frame accepted mid-scan")
	}
}
