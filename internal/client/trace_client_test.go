package client_test

import (
	"io"
	"net"
	"testing"

	"streamhist/internal/server"
)

// writeFrame is the fake server's reply primitive.
func writeFrame(t *testing.T, conn net.Conn, typ uint8, payload []byte) {
	t.Helper()
	if err := server.WriteFrame(conn, typ, payload); err != nil {
		t.Errorf("fake server write: %v", err)
	}
}

// emptySummary closes a zero-page fake scan consistently with the client's
// received-byte accounting.
func emptySummary() []byte {
	return server.EncodeScanSummary(server.ScanSummary{})
}

// A tracing client against a legacy server: the first request carries the
// trace-context tail, the server rejects it as a bad request, and the
// client falls back — immediately, without burning the retry budget — to a
// request byte-identical to an untraced client's, then never sends a
// trailer (no FrameTraceInfo means no licence).
func TestTracingClientFallsBackOnLegacyServer(t *testing.T) {
	requests := make(chan server.ScanRequest, 2)
	c := fakeServer(t, func(conn net.Conn) {
		// First request: traced. Reject it the way a pre-tracing server
		// would reject trailing bytes it cannot parse.
		f := readRequest(t, conn)
		req, err := server.DecodeScanRequest(f.Payload)
		if err != nil {
			t.Errorf("first request: %v", err)
			return
		}
		requests <- req
		writeFrame(t, conn, server.FrameError, server.EncodeError(server.ErrBadRequest))

		// Second request: must be the legacy layout. Serve an empty scan.
		f = readRequest(t, conn)
		req, err = server.DecodeScanRequest(f.Payload)
		if err != nil {
			t.Errorf("second request: %v", err)
			return
		}
		requests <- req
		writeFrame(t, conn, server.FrameScanEnd, emptySummary())

		// The client must NOT send a trace report; the next read should
		// see the connection close, not a trailer frame.
		if f, err := server.ReadFrame(conn); err == nil {
			t.Errorf("legacy fallback still sent frame type %d", f.Type)
		}
	})
	c.EnableTracing()

	sum, err := c.Scan("lineitem", "l_tax", io.Discard)
	if err != nil {
		t.Fatalf("scan with legacy fallback: %v", err)
	}
	if sum.Retries != 0 {
		t.Fatalf("legacy fallback consumed the retry budget: %d retries", sum.Retries)
	}

	first, second := <-requests, <-requests
	if first.TraceID == 0 || first.ParentSpanID == 0 {
		t.Fatalf("first request carried no trace context: %+v", first)
	}
	if second.TraceID != 0 || second.ParentSpanID != 0 {
		t.Fatalf("fallback request still carried trace context: %+v", second)
	}
	if c.LastTraceID() != first.TraceID {
		t.Fatalf("LastTraceID %#x, want the originated %#x", c.LastTraceID(), first.TraceID)
	}
}

// Against a tracing server (FrameTraceInfo echoed), the client ships its
// spans in a FrameTraceReport trailer after the scan summary: same trace
// ID, client-side span names, root span parented at zero.
func TestTracingClientShipsTrailerAfterTraceInfo(t *testing.T) {
	reports := make(chan server.TraceReport, 1)
	c := fakeServer(t, func(conn net.Conn) {
		f := readRequest(t, conn)
		req, err := server.DecodeScanRequest(f.Payload)
		if err != nil || req.TraceID == 0 {
			t.Errorf("traced request: %+v (%v)", req, err)
			return
		}
		writeFrame(t, conn, server.FrameTraceInfo, server.EncodeTraceInfo(server.TraceInfo{
			TraceID:    req.TraceID,
			RootSpanID: 0x1234,
		}))
		writeFrame(t, conn, server.FrameScanEnd, emptySummary())

		f, err = server.ReadFrame(conn)
		if err != nil {
			t.Errorf("reading trailer: %v", err)
			return
		}
		if f.Type != server.FrameTraceReport {
			t.Errorf("trailer frame type %d, want FrameTraceReport", f.Type)
			return
		}
		rep, err := server.DecodeTraceReport(f.Payload)
		if err != nil {
			t.Errorf("decoding trailer: %v", err)
			return
		}
		reports <- rep
	})
	c.EnableTracing()

	if _, err := c.Scan("lineitem", "l_tax", io.Discard); err != nil {
		t.Fatalf("traced scan: %v", err)
	}

	rep := <-reports
	if rep.TraceID != c.LastTraceID() {
		t.Fatalf("trailer trace %#x, want %#x", rep.TraceID, c.LastTraceID())
	}
	if len(rep.Spans) == 0 {
		t.Fatal("trailer carried no spans")
	}
	names := map[string]bool{}
	for _, sp := range rep.Spans {
		names[sp.Name] = true
		if sp.SpanID == 0 {
			t.Fatalf("span %q shipped without an id", sp.Name)
		}
	}
	for _, want := range []string{"scan", "request", "stream"} {
		if !names[want] {
			t.Fatalf("trailer lacks the %q span: %v", want, names)
		}
	}
	// The root scan span parents at zero — it IS the tree's root.
	if rep.Spans[0].Name != "scan" || rep.Spans[0].ParentID != 0 {
		t.Fatalf("first trailer span %+v, want the root scan span", rep.Spans[0])
	}
}

// A FrameTraceInfo echoing the WRONG trace id (a confused proxy, a stale
// server) must not license the trailer.
func TestTracingClientIgnoresMismatchedTraceInfo(t *testing.T) {
	c := fakeServer(t, func(conn net.Conn) {
		readRequest(t, conn)
		writeFrame(t, conn, server.FrameTraceInfo, server.EncodeTraceInfo(server.TraceInfo{
			TraceID:    0x1, // never the client's random id
			RootSpanID: 0x2,
		}))
		writeFrame(t, conn, server.FrameScanEnd, emptySummary())
		if f, err := server.ReadFrame(conn); err == nil {
			t.Errorf("mismatched trace info still drew a trailer (type %d)", f.Type)
		}
	})
	c.EnableTracing()
	if _, err := c.Scan("lineitem", "l_tax", io.Discard); err != nil {
		t.Fatalf("scan: %v", err)
	}
}
