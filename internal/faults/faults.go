// Package faults is the deterministic fault-injection framework of the
// chaos-testing story: named injection points wired through every layer of
// the data path (simulated accelerator memory, page images, shard lanes,
// network connections, the drain pool), driven by a seeded per-point random
// stream so that a failing run is reproducible from its seed alone.
//
// The production code never imports a testing package to use this: every
// hook is a nil-safe method on *Injector, so the zero configuration (a nil
// injector) compiles to a pointer check and the fault machinery costs
// nothing when chaos is off.
//
// The posture this package exists to verify is the paper's: the cut-through
// data path is fail-open by construction, so any injected fault may degrade
// the statistics side effect — observable through quarantine counters and
// the histogram's Degraded marking — but must never corrupt or stall the
// raw page stream the host receives.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Point names one injection site. The convention is layer.site.effect so a
// profile reads like a fault model.
type Point string

// The injection points wired through the repository.
const (
	// MemReadFlip flips one bit on the read path of the simulated bin
	// memory (a transient upset; ECC corrects it).
	MemReadFlip Point = "hw.mem.read-flip"
	// MemWriteFlip flips bits in a stored bin word after a write commits
	// (a persistent upset; single flips correct, double flips quarantine
	// the bin).
	MemWriteFlip Point = "hw.mem.write-flip"
	// MemLatencySpike stretches one memory access by an extra latency.
	MemLatencySpike Point = "hw.mem.latency-spike"

	// PageCorrupt flips bytes in a page image on the storage read path.
	PageCorrupt Point = "page.corrupt"
	// PageTruncate cuts the side-path copy of a frame short of a page
	// boundary (a slipped DMA transfer into the splitter buffer).
	PageTruncate Point = "page.truncate"

	// LanePanic makes a shard lane panic mid-chunk.
	LanePanic Point = "lane.panic"
	// LaneStall makes a shard lane stop draining its channel for a while.
	LaneStall Point = "lane.stall"

	// SketchCorrupt marks one statistic block of a sketch chain degraded
	// (a soft upset in a daisy-chained block's state; the block keeps
	// consuming but its answer is advisory).
	SketchCorrupt Point = "sketch.corrupt"
	// SketchRetire detaches one statistic block from the stream entirely;
	// the rest of the chain — and the histogram path — keep running.
	SketchRetire Point = "sketch.retire"

	// ConnReset drops a serving connection mid-scan.
	ConnReset Point = "server.conn.reset"
	// DrainSaturate makes the drain-worker pool report itself full, so a
	// scan streams without a side path.
	DrainSaturate Point = "server.drain.saturate"

	// WALTorn tears one WAL append mid-record — only a prefix of the
	// record reaches the file, as if the process died inside write(2).
	// The durable layer then drops everything behind the tear until a
	// checkpoint re-baselines, mirroring a crashed tail.
	WALTorn Point = "wal.torn"
	// WALFsync makes one WAL fsync barrier silently do nothing (a drive
	// that acknowledged a flush it never performed).
	WALFsync Point = "wal.fsync"
	// SnapCorrupt flips one byte of a snapshot image on its way to disk,
	// so recovery must reject it by checksum and fall back.
	SnapCorrupt Point = "snap.corrupt"
	// DiskSlow stretches one durable-layer disk operation by an injected
	// delay (a saturated device), exercising checkpoint backpressure.
	DiskSlow Point = "disk.slow"
)

// Points lists every defined injection point, in a stable order.
func Points() []Point {
	return []Point{
		MemReadFlip, MemWriteFlip, MemLatencySpike,
		PageCorrupt, PageTruncate,
		LanePanic, LaneStall,
		SketchCorrupt, SketchRetire,
		ConnReset, DrainSaturate,
		WALTorn, WALFsync, SnapCorrupt, DiskSlow,
	}
}

// Profile maps injection points to firing probabilities in [0, 1]. Points
// absent from the profile never fire.
type Profile map[Point]float64

// Clone returns an independent copy of the profile.
func (p Profile) Clone() Profile {
	out := make(Profile, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// String renders the profile as a stable point=rate list.
func (p Profile) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, p[Point(k)]))
	}
	return strings.Join(parts, ",")
}

// Named chaos profiles. Each one leans on a different failure surface so CI
// can exercise them separately; rates are tuned so a few-hundred-page scan
// sees several faults without drowning.
const (
	ProfileCorruptionHeavy  = "corruption-heavy"
	ProfileLaneFailureHeavy = "lane-failure-heavy"
	ProfileNetworkFlaky     = "network-flaky"
	ProfileDiskFailureHeavy = "disk-failure-heavy"
)

// ProfileNames lists the named profiles in a stable order.
func ProfileNames() []string {
	return []string{ProfileCorruptionHeavy, ProfileLaneFailureHeavy, ProfileNetworkFlaky, ProfileDiskFailureHeavy}
}

// ByName returns a named profile, or an error listing the valid names.
func ByName(name string) (Profile, error) {
	switch name {
	case ProfileCorruptionHeavy:
		return Profile{
			PageCorrupt:     0.10,
			PageTruncate:    0.05,
			MemReadFlip:     0.002,
			MemWriteFlip:    0.002,
			MemLatencySpike: 0.01,
			SketchCorrupt:   0.02,
			SketchRetire:    0.01,
		}, nil
	case ProfileLaneFailureHeavy:
		return Profile{
			LanePanic:       0.08,
			LaneStall:       0.05,
			MemLatencySpike: 0.05,
		}, nil
	case ProfileNetworkFlaky:
		return Profile{
			ConnReset:     0.10,
			DrainSaturate: 0.25,
			PageCorrupt:   0.01,
		}, nil
	case ProfileDiskFailureHeavy:
		return Profile{
			WALTorn:     0.05,
			WALFsync:    0.10,
			SnapCorrupt: 0.10,
			DiskSlow:    0.10,
		}, nil
	default:
		return nil, fmt.Errorf("faults: unknown profile %q (want one of %s)",
			name, strings.Join(ProfileNames(), ", "))
	}
}

// Injector decides, deterministically from a seed, whether each visit to an
// injection point fires. Every point owns an independent splitmix64 stream
// derived from the seed and the point's name, so adding calls at one point
// never perturbs the decisions at another, and a Fork'd child (one per shard
// lane, say) is deterministic regardless of goroutine interleaving between
// siblings.
//
// A nil *Injector is valid everywhere and never fires, so production code
// wires hooks unconditionally.
type Injector struct {
	seed    uint64
	profile Profile

	mu     sync.Mutex
	states map[Point]*pointState

	// agg accumulates hits across this injector and every descendant of the
	// same Fork tree, so a monitoring scrape sees one process-lifetime count
	// per point even though each scan and lane works from its own fork.
	agg *hitTotals
}

// hitTotals is the fork-shared hit aggregate.
type hitTotals struct {
	mu   sync.Mutex
	hits map[Point]int64
}

func (h *hitTotals) add(p Point) {
	h.mu.Lock()
	h.hits[p]++
	h.mu.Unlock()
}

func (h *hitTotals) get(p Point) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits[p]
}

func (h *hitTotals) all() map[Point]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[Point]int64, len(h.hits))
	for p, n := range h.hits {
		out[p] = n
	}
	return out
}

type pointState struct {
	rng   uint64
	rate  float64
	calls int64
	hits  int64
}

// New builds an injector for the profile. A nil or empty profile yields an
// injector that never fires (but still counts calls).
func New(seed uint64, profile Profile) *Injector {
	return &Injector{
		seed:    seed,
		profile: profile.Clone(),
		states:  make(map[Point]*pointState),
		agg:     &hitTotals{hits: make(map[Point]int64)},
	}
}

// Seed returns the injector's seed.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// splitmix64 is the standard 64-bit mixer; one step per decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a label into a 64-bit stream selector (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (in *Injector) state(p Point) *pointState {
	st, ok := in.states[p]
	if !ok {
		st = &pointState{
			rng:  splitmix64(in.seed ^ hashString(string(p))),
			rate: in.profile[p],
		}
		in.states[p] = st
	}
	return st
}

// next draws one uniform float64 in [0, 1) from the point's stream.
func (st *pointState) next() float64 {
	st.rng = splitmix64(st.rng)
	return float64(st.rng>>11) / float64(1<<53)
}

// Should reports whether this visit to p fires, consuming one draw from p's
// stream. Safe for concurrent use; nil receivers never fire.
func (in *Injector) Should(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.state(p)
	st.calls++
	if st.rate <= 0 {
		return false
	}
	if st.rate >= 1 || st.next() < st.rate {
		st.hits++
		in.agg.add(p)
		return true
	}
	return false
}

// Enabled reports whether p can ever fire — its configured rate is positive
// — without consuming a draw or counting a call. Hot paths use it to skip
// work that only exists to make an armed fault observable (e.g. a defensive
// copy of bytes a corruption point might damage). Nil injectors fire
// nothing.
func (in *Injector) Enabled(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.profile[p] > 0
}

// Intn draws a deterministic value in [0, n) from p's stream, for fault
// parameters (which bit to flip, where to cut a frame). n must be positive.
// A nil injector returns 0.
func (in *Injector) Intn(p Point, n int64) int64 {
	if in == nil || n <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.state(p)
	v := st.next() * float64(n)
	if v >= float64(n) { // guard the 1.0-adjacent edge
		v = math.Nextafter(float64(n), 0)
	}
	return int64(v)
}

// Fork derives a child injector whose streams are independent of the
// parent's and of any sibling with a different label. Use one child per
// shard lane (or per scan) so concurrent lanes stay individually
// deterministic. Forking a nil injector yields nil.
func (in *Injector) Fork(label string) *Injector {
	if in == nil {
		return nil
	}
	child := New(splitmix64(in.seed^hashString(label)), in.profile)
	child.agg = in.agg // the whole fork tree shares one hit aggregate
	return child
}

// Hits returns how many times p has fired on this injector.
func (in *Injector) Hits(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.states[p]; ok {
		return st.hits
	}
	return 0
}

// Calls returns how many times p has been visited on this injector.
func (in *Injector) Calls(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.states[p]; ok {
		return st.calls
	}
	return 0
}

// TotalHits returns how many times p has fired across this injector's whole
// Fork tree (every scan's and lane's child injector included). Nil injectors
// return 0.
func (in *Injector) TotalHits(p Point) int64 {
	if in == nil {
		return 0
	}
	return in.agg.get(p)
}

// AllTotalHits returns the fork-tree-wide hit counts for every point that has
// fired at least once. Nil injectors return nil.
func (in *Injector) AllTotalHits() map[Point]int64 {
	if in == nil {
		return nil
	}
	return in.agg.all()
}

// Snapshot returns the per-point hit counts (points never visited are
// absent). Nil injectors return nil.
func (in *Injector) Snapshot() map[Point]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Point]int64, len(in.states))
	for p, st := range in.states {
		if st.hits > 0 {
			out[p] = st.hits
		}
	}
	return out
}
