package faults

import (
	"sync"
	"testing"
)

// A nil injector must be safe at every entry point and never fire.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Should(PageCorrupt) {
		t.Fatal("nil injector fired")
	}
	if got := in.Intn(PageCorrupt, 100); got != 0 {
		t.Fatalf("nil Intn = %d, want 0", got)
	}
	if in.Fork("lane-0") != nil {
		t.Fatal("nil Fork should stay nil")
	}
	if in.Hits(PageCorrupt) != 0 || in.Calls(PageCorrupt) != 0 || in.Snapshot() != nil {
		t.Fatal("nil injector reported activity")
	}
}

// The same seed must reproduce the exact per-point decision sequence.
func TestDeterministicSequences(t *testing.T) {
	profile := Profile{PageCorrupt: 0.3, LanePanic: 0.1}
	run := func() ([]bool, []int64) {
		in := New(42, profile)
		var fires []bool
		var params []int64
		for i := 0; i < 200; i++ {
			fires = append(fires, in.Should(PageCorrupt))
			params = append(params, in.Intn(LanePanic, 64))
		}
		return fires, params
	}
	f1, p1 := run()
	f2, p2 := run()
	for i := range f1 {
		if f1[i] != f2[i] || p1[i] != p2[i] {
			t.Fatalf("run diverged at step %d", i)
		}
	}
}

// Decisions at one point must not perturb another point's stream: the
// PageCorrupt sequence is identical whether or not LanePanic is also being
// consulted in between.
func TestPointStreamsAreIndependent(t *testing.T) {
	profile := Profile{PageCorrupt: 0.5, LanePanic: 0.5}
	solo := New(7, profile)
	mixed := New(7, profile)
	for i := 0; i < 500; i++ {
		want := solo.Should(PageCorrupt)
		mixed.Should(LanePanic) // interleave traffic at another point
		if got := mixed.Should(PageCorrupt); got != want {
			t.Fatalf("PageCorrupt stream perturbed at step %d", i)
		}
	}
}

// Fork must produce children that are deterministic per label and diverge
// across labels.
func TestForkDeterminism(t *testing.T) {
	parent := New(99, Profile{LaneStall: 0.5})
	a1 := parent.Fork("lane-0")
	a2 := parent.Fork("lane-0")
	b := parent.Fork("lane-1")
	same, diff := true, true
	for i := 0; i < 256; i++ {
		x, y, z := a1.Should(LaneStall), a2.Should(LaneStall), b.Should(LaneStall)
		if x != y {
			same = false
		}
		if x != z {
			diff = false
		}
	}
	if !same {
		t.Fatal("same-label forks diverged")
	}
	if diff {
		t.Fatal("different-label forks produced identical sequences")
	}
}

// Observed rates must track configured rates, and rate 0 / rate 1 must be
// exact.
func TestRates(t *testing.T) {
	in := New(3, Profile{PageCorrupt: 0.25, ConnReset: 1.0})
	const n = 20000
	for i := 0; i < n; i++ {
		in.Should(PageCorrupt)
		if !in.Should(ConnReset) {
			t.Fatal("rate-1.0 point failed to fire")
		}
		if in.Should(LanePanic) { // absent from profile => rate 0
			t.Fatal("unconfigured point fired")
		}
	}
	got := float64(in.Hits(PageCorrupt)) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("observed rate %.3f for configured 0.25", got)
	}
	if in.Calls(LanePanic) != n {
		t.Fatalf("calls at silent point = %d, want %d", in.Calls(LanePanic), n)
	}
	snap := in.Snapshot()
	if snap[ConnReset] != n || snap[PageCorrupt] == 0 || snap[LanePanic] != 0 {
		t.Fatalf("snapshot %v inconsistent with activity", snap)
	}
}

func TestIntnBounds(t *testing.T) {
	in := New(11, nil)
	seen := make(map[int64]bool)
	for i := 0; i < 5000; i++ {
		v := in.Intn(MemWriteFlip, 8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Intn covered %d of 8 values", len(seen))
	}
}

func TestNamedProfiles(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if len(p) == 0 {
			t.Fatalf("profile %q is empty", name)
		}
		for pt, r := range p {
			if r <= 0 || r > 1 {
				t.Fatalf("profile %q: point %q has rate %g outside (0,1]", name, pt, r)
			}
		}
	}
	if _, err := ByName("no-such-profile"); err == nil {
		t.Fatal("unknown profile name did not error")
	}
}

// The injector is used from concurrent shard lanes; hammer it under -race.
func TestConcurrentUse(t *testing.T) {
	in := New(5, Profile{LaneStall: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				in.Should(LaneStall)
				in.Intn(LaneStall, 100)
			}
		}()
	}
	wg.Wait()
	if in.Calls(LaneStall) != 8*2000 {
		t.Fatalf("calls = %d, want %d", in.Calls(LaneStall), 8*2000)
	}
}
