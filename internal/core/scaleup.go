package core

import (
	"fmt"

	"streamhist/internal/bins"
	"streamhist/internal/hw"
)

// This file implements the §7 (Future Work) scale-up design: to sustain a
// single column arriving at 10 Gbps line rate, the Parser and Binner are
// replicated, input items are distributed round-robin across the copies,
// and each copy accumulates partial counts in its own memory. Because the
// partial counts live in separate memories, they can be aggregated "in
// constant time" (line-parallel) before being fed into the unchanged
// Histogram module.

// ParallelBinner fans one input stream out to n replicated Binner modules.
type ParallelBinner struct {
	binners []*Binner
	next    int // round-robin cursor
	geom    *Preprocessor
}

// NewParallelBinner builds n Binner replicas sharing one preprocessor
// geometry; each replica gets its own preprocessor instance (its own
// address logic) and its own memory region.
func NewParallelBinner(n int, cfg BinnerConfig, min, max, divisor int64) (*ParallelBinner, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: need at least one binner replica, got %d", n)
	}
	geom, err := RangeFor(min, max, divisor)
	if err != nil {
		return nil, err
	}
	p := &ParallelBinner{geom: geom}
	for i := 0; i < n; i++ {
		pre, err := RangeFor(min, max, divisor)
		if err != nil {
			return nil, err
		}
		p.binners = append(p.binners, NewBinner(cfg, pre))
	}
	return p, nil
}

// Replicas returns the number of Binner copies.
func (p *ParallelBinner) Replicas() int { return len(p.binners) }

// Push distributes one value round-robin, as the splitter's distribution
// logic would in hardware (Figure 23).
func (p *ParallelBinner) Push(value int64) {
	p.binners[p.next].Push(value)
	p.next++
	if p.next == len(p.binners) {
		p.next = 0
	}
}

// PushAll streams a whole column through the distributor.
func (p *ParallelBinner) PushAll(values []int64) {
	for _, v := range values {
		p.Push(v)
	}
}

// ParallelStats aggregates the replicas' accounting.
type ParallelStats struct {
	PerBinner []BinnerStats
	// Cycles is the completion time of the slowest replica plus the
	// aggregation pass over the bin region.
	Cycles int64
	// AggregationCycles is the constant-time (per line) merge of partial
	// counts before histogram creation.
	AggregationCycles int64
}

// Seconds converts completion to seconds.
func (s ParallelStats) Seconds(clk hw.Clock) float64 { return clk.Seconds(s.Cycles) }

// ValuesPerSecond is the aggregate sustained rate across replicas.
func (s ParallelStats) ValuesPerSecond(clk hw.Clock) float64 {
	sec := s.Seconds(clk)
	if sec == 0 {
		return 0
	}
	var items int64
	for _, b := range s.PerBinner {
		items += b.Items
	}
	return float64(items) / sec
}

// Finish merges the partial counts into one vector — the adder tree in
// front of the Histogram module — and returns the combined accounting.
// The aggregation streams all regions in lockstep, one memory line per
// cycle per region, so it costs Δ/binsPerLine cycles regardless of how
// many replicas exist (they are read in parallel from separate memories).
func (p *ParallelBinner) Finish() (*bins.Vector, ParallelStats, error) {
	merged := bins.FromCounts(p.geom.Min, p.geom.Divisor, make([]int64, p.geom.NumBins))
	var stats ParallelStats
	laneCycles := make([]int64, 0, len(p.binners))
	for _, b := range p.binners {
		vec, bs := b.Finish()
		stats.PerBinner = append(stats.PerBinner, bs)
		laneCycles = append(laneCycles, bs.Cycles)
		if err := merged.Merge(vec); err != nil {
			return nil, ParallelStats{}, err
		}
	}
	stats.AggregationCycles = hw.AggregationCycles(int(p.geom.NumBins), hw.DefaultBinsPerLine)
	stats.Cycles = hw.CriticalPath(laneCycles, stats.AggregationCycles)
	return merged, stats, nil
}

// LineRateGbps converts a sustained value rate (32-bit values) to the
// equivalent single-column network line rate, the unit §7 argues in.
func LineRateGbps(valuesPerSecond float64) float64 {
	return valuesPerSecond * 4 * 8 / 1e9
}

// ReplicasForLineRate returns how many worst-case Binner replicas are
// needed to keep up with a single column arriving at the given line rate —
// the sizing exercise of §7 (e.g. 10 Gbps needs ⌈312.5M/s ÷ 20M/s⌉ = 16
// worst-case replicas, or 7 with the cache always hitting).
func ReplicasForLineRate(gbps float64, perBinnerValuesPerSec float64) int {
	valuesPerSec := gbps * 1e9 / 8 / 4
	n := int(valuesPerSec / perBinnerValuesPerSec)
	if float64(n)*perBinnerValuesPerSec < valuesPerSec {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
