package core

import (
	"testing"
	"testing/quick"

	"streamhist/internal/bins"
	"streamhist/internal/datagen"
	"streamhist/internal/hist"
)

// TestCircuitMatchesReferenceForRandomConfigs is the repository's central
// correctness property: for random distributions, random block parameters
// and random bin granularities, every histogram the simulated hardware
// produces is bit-identical to the software reference built from the same
// binned view.
func TestCircuitMatchesReferenceForRandomConfigs(t *testing.T) {
	f := func(seed uint64, skewRaw, cardRaw uint16, tRaw, bRaw, divRaw uint8) bool {
		card := int64(cardRaw%5000) + 10
		skew := float64(skewRaw%120) / 100 // 0 .. 1.19
		T := int(tRaw%32) + 1
		B := int(bRaw%128) + 2
		div := int64(divRaw%8) + 1

		var gen datagen.Generator
		if skew == 0 {
			gen = datagen.NewUniform(seed, 0, card)
		} else {
			gen = datagen.NewZipf(seed, 0, card, skew, true)
		}
		vals := datagen.Take(gen, 4000)

		cfg := DefaultConfig(ColumnSpec{}, 0, card-1)
		cfg.Divisor = div
		cfg.TopK = T
		cfg.EquiDepthBuckets = B
		cfg.MaxDiffBuckets = B
		cfg.CompressedT = T
		cfg.CompressedBuckets = B
		circuit, err := NewCircuit(cfg)
		if err != nil {
			return false
		}
		res := circuit.ProcessValues(vals)

		truth := bins.NewVector(0, card-1, div)
		for _, v := range vals {
			truth.Add(v)
		}

		wantTop := hist.BuildTopK(truth, T)
		if len(res.TopK) != len(wantTop) {
			return false
		}
		for i := range wantTop {
			if res.TopK[i] != wantTop[i] {
				return false
			}
		}
		for _, pair := range []struct {
			got, want *hist.Histogram
		}{
			{res.EquiDepth, hist.BuildEquiDepth(truth, B)},
			{res.MaxDiff, hist.BuildMaxDiff(truth, B)},
			{res.Compressed, hist.BuildCompressed(truth, T, B)},
		} {
			if len(pair.got.Buckets) != len(pair.want.Buckets) {
				return false
			}
			for i := range pair.want.Buckets {
				if pair.got.Buckets[i] != pair.want.Buckets[i] {
					return false
				}
			}
			if len(pair.got.Frequent) != len(pair.want.Frequent) {
				return false
			}
			for i := range pair.want.Frequent {
				if pair.got.Frequent[i] != pair.want.Frequent[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
