package core

import (
	"encoding/binary"
	"fmt"

	"streamhist/internal/hist"
)

// The statistic blocks of §5.2. Each block is a streaming state machine
// that consumes the bin sequence produced by the Scanner, relays it
// unchanged to the next block in the daisy chain, and emits its result on a
// separate result port. Blocks that need two passes over the bins signal
// the Scanner through the repeat channel.

// insertionList models the pipelined insertion-sort register file of the
// TopK block (Figure 12): K slots; an arriving item travels right until it
// finds an empty slot or a slot holding a lower-ranked item, which it
// displaces (the displaced item continues travelling, possibly falling off
// the end). Rank order is (count descending, value ascending) — the
// comparator includes the value so that ties resolve deterministically,
// which keeps the block bit-identical to the software reference; in
// hardware this is one extra comparison in the same register pipeline.
type insertionList struct {
	slots []hist.FrequentValue
	used  int
}

func newInsertionList(k int) *insertionList {
	return &insertionList{slots: make([]hist.FrequentValue, k)}
}

// ranksAbove reports whether a outranks b in (count desc, value asc) order.
func ranksAbove(a, b hist.FrequentValue) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Value < b.Value
}

// insert pushes one item through the register pipeline.
func (l *insertionList) insert(value, count int64) {
	cur := hist.FrequentValue{Value: value, Count: count}
	for i := 0; i < len(l.slots); i++ {
		if i >= l.used {
			l.slots[i] = cur
			l.used++
			return
		}
		if ranksAbove(cur, l.slots[i]) {
			l.slots[i], cur = cur, l.slots[i]
		}
	}
}

// contents returns the occupied slots in list order (descending count).
func (l *insertionList) contents() []hist.FrequentValue {
	out := make([]hist.FrequentValue, l.used)
	copy(out, l.slots[:l.used])
	return out
}

// contains reports whether value is present in the list.
func (l *insertionList) contains(value int64) bool {
	for i := 0; i < l.used; i++ {
		if l.slots[i].Value == value {
			return true
		}
	}
	return false
}

func (l *insertionList) reset() { l.used = 0 }

// Block is the daisy-chain element interface. The Scanner calls BeginScan /
// Consume / EndScan for each pass; NeedsScan reports whether the block wants
// pass s (0-based) — the "repeat" feedback channel of Figure 11.
type Block interface {
	// Name identifies the block in reports.
	Name() string
	// NeedsScan reports whether the block participates in pass s.
	NeedsScan(s int) bool
	// BeginScan resets per-pass state.
	BeginScan(s int)
	// Consume processes one non-empty bin during pass s. Bins arrive in
	// ascending value order. The Scanner has already filtered empty bins
	// (the valid flag of the hardware).
	Consume(s int, value, count int64)
	// EndScan finalises pass s.
	EndScan(s int)
	// Scans returns the total number of passes the block needs.
	Scans() int
}

// TopKBlock maintains the K most frequent values (§5.2.1).
type TopKBlock struct {
	K    int
	list *insertionList
}

// NewTopKBlock returns a TopK block with list size k.
func NewTopKBlock(k int) *TopKBlock {
	if k <= 0 {
		panic("core: TopK needs a positive K")
	}
	return &TopKBlock{K: k, list: newInsertionList(k)}
}

// Name implements Block.
func (b *TopKBlock) Name() string { return fmt.Sprintf("TopK(T=%d)", b.K) }

// NeedsScan implements Block.
func (b *TopKBlock) NeedsScan(s int) bool { return s == 0 }

// Scans implements Block.
func (b *TopKBlock) Scans() int { return 1 }

// BeginScan implements Block.
func (b *TopKBlock) BeginScan(s int) {
	if s == 0 {
		b.list.reset()
	}
}

// Consume implements Block.
func (b *TopKBlock) Consume(s int, value, count int64) {
	if s == 0 {
		b.list.insert(value, count)
	}
}

// EndScan implements Block.
func (b *TopKBlock) EndScan(int) {}

// Result returns the frequency list (descending count, ascending value on
// ties).
func (b *TopKBlock) Result() []hist.FrequentValue { return b.list.contents() }

// EquiDepthBlock builds an equi-depth histogram in one scan (§5.2.1).
type EquiDepthBlock struct {
	B     int
	total int64 // provided by the Binner when it signals completion

	limit   int64
	cur     hist.Bucket
	buckets []hist.Bucket
}

// NewEquiDepthBlock returns an equi-depth block creating b buckets over a
// column with the given total row count.
func NewEquiDepthBlock(b int, total int64) *EquiDepthBlock {
	if b <= 0 {
		panic("core: equi-depth needs a positive bucket count")
	}
	return &EquiDepthBlock{B: b, total: total}
}

// Name implements Block.
func (b *EquiDepthBlock) Name() string { return fmt.Sprintf("EquiDepth(B=%d)", b.B) }

// NeedsScan implements Block.
func (b *EquiDepthBlock) NeedsScan(s int) bool { return s == 0 }

// Scans implements Block.
func (b *EquiDepthBlock) Scans() int { return 1 }

// BeginScan implements Block.
func (b *EquiDepthBlock) BeginScan(s int) {
	if s != 0 {
		return
	}
	b.limit = b.total / int64(b.B)
	if b.limit < 1 {
		b.limit = 1
	}
	b.cur = hist.Bucket{}
	b.buckets = b.buckets[:0]
}

// Consume implements Block.
func (b *EquiDepthBlock) Consume(s int, value, count int64) {
	if s != 0 {
		return
	}
	if b.cur.Distinct == 0 {
		b.cur.Low = value
	}
	b.cur.Count += count
	b.cur.Distinct++
	b.cur.High = value
	if b.cur.Count >= b.limit {
		b.buckets = append(b.buckets, b.cur)
		b.cur = hist.Bucket{}
	}
}

// EndScan implements Block.
func (b *EquiDepthBlock) EndScan(s int) {
	if s == 0 && b.cur.Distinct > 0 {
		b.buckets = append(b.buckets, b.cur)
		b.cur = hist.Bucket{}
	}
}

// Result returns the buckets.
func (b *EquiDepthBlock) Result() []hist.Bucket { return b.buckets }

// MaxDiffBlock builds a Max-diff histogram in two scans (§5.2.2): the first
// scan routes the differences between consecutive bins through a modified
// TopK block; the second closes a bucket after every bin that created one of
// the B-1 largest differences.
type MaxDiffBlock struct {
	B int

	diffs *insertionList // entries: Value = boundary ordinal, Count = |diff|

	ordinal   int64 // index of the current bin within the non-empty sequence
	prevCount int64
	havePrev  bool

	boundary map[int64]bool // ordinals after which a bucket closes

	cur     hist.Bucket
	buckets []hist.Bucket
}

// NewMaxDiffBlock returns a Max-diff block creating b buckets.
func NewMaxDiffBlock(b int) *MaxDiffBlock {
	if b <= 0 {
		panic("core: max-diff needs a positive bucket count")
	}
	return &MaxDiffBlock{B: b, diffs: newInsertionList(b - 1 + 1)} // list size B-1 boundaries (+1 slot keeps K>=1 valid for B=1)
}

// Name implements Block.
func (b *MaxDiffBlock) Name() string { return fmt.Sprintf("MaxDiff(B=%d)", b.B) }

// NeedsScan implements Block.
func (b *MaxDiffBlock) NeedsScan(s int) bool { return s == 0 || s == 1 }

// Scans implements Block.
func (b *MaxDiffBlock) Scans() int { return 2 }

// BeginScan implements Block.
func (b *MaxDiffBlock) BeginScan(s int) {
	switch s {
	case 0:
		b.diffs.reset()
		b.ordinal = 0
		b.havePrev = false
	case 1:
		// Freeze the boundary set from the first scan's diff list.
		k := b.B - 1
		b.boundary = make(map[int64]bool, k)
		for i, e := range b.diffs.contents() {
			if i >= k {
				break
			}
			b.boundary[e.Value] = true
		}
		b.ordinal = 0
		b.cur = hist.Bucket{}
		b.buckets = b.buckets[:0]
	}
}

// Consume implements Block.
func (b *MaxDiffBlock) Consume(s int, value, count int64) {
	switch s {
	case 0:
		// The subtract logic at the block entry replaces the bin count
		// with the difference to the previous bin. The "value" tracked in
		// the list is the ordinal of the earlier bin of the pair, i.e.
		// the position after which a boundary would be placed.
		if b.havePrev {
			d := count - b.prevCount
			if d < 0 {
				d = -d
			}
			b.diffs.insert(b.ordinal-1, d)
		}
		b.prevCount = count
		b.havePrev = true
		b.ordinal++
	case 1:
		if b.cur.Distinct == 0 {
			b.cur.Low = value
		}
		b.cur.Count += count
		b.cur.Distinct++
		b.cur.High = value
		if b.boundary[b.ordinal] {
			b.buckets = append(b.buckets, b.cur)
			b.cur = hist.Bucket{}
		}
		b.ordinal++
	}
}

// EndScan implements Block.
func (b *MaxDiffBlock) EndScan(s int) {
	if s == 1 && b.cur.Distinct > 0 {
		b.buckets = append(b.buckets, b.cur)
		b.cur = hist.Bucket{}
	}
}

// Result returns the buckets.
func (b *MaxDiffBlock) Result() []hist.Bucket { return b.buckets }

// CompressedBlock builds a Compressed histogram in two scans (§5.2.2): the
// first scan fills a TopK list with the T most frequent values; the second
// filters those values out (flagging them invalid) and routes the rest into
// an internal equi-depth block.
type CompressedBlock struct {
	T, B  int
	total int64

	top *insertionList
	ed  *EquiDepthBlock
}

// NewCompressedBlock returns a Compressed block keeping t exact frequent
// values and b equi-depth buckets over the rest; total is the column's row
// count as reported by the Binner.
func NewCompressedBlock(t, b int, total int64) *CompressedBlock {
	if t <= 0 {
		panic("core: compressed needs a positive T")
	}
	if b <= 0 {
		panic("core: compressed needs a positive bucket count")
	}
	return &CompressedBlock{T: t, B: b, total: total, top: newInsertionList(t)}
}

// Name implements Block.
func (b *CompressedBlock) Name() string { return fmt.Sprintf("Compressed(T=%d,B=%d)", b.T, b.B) }

// NeedsScan implements Block.
func (b *CompressedBlock) NeedsScan(s int) bool { return s == 0 || s == 1 }

// Scans implements Block.
func (b *CompressedBlock) Scans() int { return 2 }

// BeginScan implements Block.
func (b *CompressedBlock) BeginScan(s int) {
	switch s {
	case 0:
		b.top.reset()
	case 1:
		var topMass int64
		for _, f := range b.top.contents() {
			topMass += f.Count
		}
		b.ed = NewEquiDepthBlock(b.B, b.total-topMass)
		b.ed.BeginScan(0)
	}
}

// Consume implements Block.
func (b *CompressedBlock) Consume(s int, value, count int64) {
	switch s {
	case 0:
		b.top.insert(value, count)
	case 1:
		if b.top.contains(value) {
			return // flagged invalid: exact heavy hitter, not bucketed
		}
		b.ed.Consume(0, value, count)
	}
}

// EndScan implements Block.
func (b *CompressedBlock) EndScan(s int) {
	if s == 1 {
		b.ed.EndScan(0)
	}
}

// Frequent returns the exact heavy-hitter list.
func (b *CompressedBlock) Frequent() []hist.FrequentValue { return b.top.contents() }

// Buckets returns the equi-depth buckets over the residual values.
func (b *CompressedBlock) Buckets() []hist.Bucket {
	if b.ed == nil {
		return nil
	}
	return b.ed.Result()
}

// EncodeBuckets serialises buckets the way the hardware outputs them: each
// bucket as a pair of 32-bit integers (aggregate count, number of bins),
// 8 bytes per bucket (§6.3, "each bucket is output as a pair of 32-bit
// integers").
func EncodeBuckets(buckets []hist.Bucket) []byte {
	out := make([]byte, 8*len(buckets))
	for i, b := range buckets {
		binary.LittleEndian.PutUint32(out[i*8:], uint32(b.Count))
		binary.LittleEndian.PutUint32(out[i*8+4:], uint32(b.Distinct))
	}
	return out
}

// EncodeFrequent serialises a frequency list as (value, count) pairs of
// 32-bit integers, 8 bytes per entry.
func EncodeFrequent(freq []hist.FrequentValue) []byte {
	out := make([]byte, 8*len(freq))
	for i, f := range freq {
		binary.LittleEndian.PutUint32(out[i*8:], uint32(f.Value))
		binary.LittleEndian.PutUint32(out[i*8+4:], uint32(f.Count))
	}
	return out
}
