package core

import (
	"math"
	"testing"
	"testing/quick"

	"streamhist/internal/datagen"
	"streamhist/internal/hw"
)

func rtlRun(t *testing.T, vals []int64, max int64, cfg BinnerConfig) ( /*vec*/ map[int64]int64, BinnerStats) {
	t.Helper()
	pre, err := RangeFor(0, max, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRTLBinner(cfg, pre)
	vec, stats := r.Run(vals)
	out := make(map[int64]int64)
	for _, b := range vec.NonZero() {
		out[b.Value] = b.Count
	}
	return out, stats
}

func TestRTLBinnerFunctionalCorrectness(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
		}
		pre, _ := RangeFor(0, 1<<16-1, 1)
		r := NewRTLBinner(DefaultBinnerConfig(), pre)
		vec, stats := r.Run(vals)
		if stats.Items != int64(len(vals)) || vec.Total() != int64(len(vals)) {
			return false
		}
		for v, c := range datagen.Counts(vals) {
			if vec.CountValue(v) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRTLMatchesFastModelFunctionally(t *testing.T) {
	vals := datagen.Take(datagen.NewZipf(1, 0, 4096, 0.9, true), 30_000)
	pre1, _ := RangeFor(0, 4095, 1)
	fast := NewBinner(DefaultBinnerConfig(), pre1)
	fast.PushAll(vals)
	fv, fstats := fast.Finish()

	pre2, _ := RangeFor(0, 4095, 1)
	rtl := NewRTLBinner(DefaultBinnerConfig(), pre2)
	rv, rstats := rtl.Run(vals)

	if fv.Total() != rv.Total() {
		t.Fatalf("totals differ: %d vs %d", fv.Total(), rv.Total())
	}
	for i := 0; i < fv.NumBins(); i++ {
		if fv.Count(i) != rv.Count(i) {
			t.Fatalf("bin %d differs: %d vs %d", i, fv.Count(i), rv.Count(i))
		}
	}
	// Op accounting identical: same misses → same reads; writes per item.
	if fstats.MemWriteOps != rstats.MemWriteOps {
		t.Errorf("write ops differ: %d vs %d", fstats.MemWriteOps, rstats.MemWriteOps)
	}
	if fstats.CacheHits != rstats.CacheHits || fstats.CacheMisses != rstats.CacheMisses {
		t.Errorf("cache accounting differs: fast %d/%d vs rtl %d/%d",
			fstats.CacheHits, fstats.CacheMisses, rstats.CacheHits, rstats.CacheMisses)
	}
}

// tickRates validates the fast model's Table 1 rates against the tick-level
// ground truth.
func TestRTLValidatesTable1Rates(t *testing.T) {
	clk := hw.NewClock(hw.DefaultClockHz)

	// Worst case: never hits.
	anti := make([]int64, 60_000)
	for i := range anti {
		anti[i] = int64(i%4096) * int64(hw.DefaultBinsPerLine)
	}
	_, worst := rtlRun(t, anti, 4096*8, DefaultBinnerConfig())
	worstRate := worst.ValuesPerSecond(clk)
	if math.Abs(worstRate-20e6)/20e6 > 0.05 {
		t.Errorf("RTL worst-case rate = %.2f M/s, want ~20", worstRate/1e6)
	}

	// Best case: constant value.
	_, best := rtlRun(t, make([]int64, 60_000), 100, DefaultBinnerConfig())
	bestRate := best.ValuesPerSecond(clk)
	if math.Abs(bestRate-50e6)/50e6 > 0.05 {
		t.Errorf("RTL best-case rate = %.2f M/s, want ~50", bestRate/1e6)
	}

	// Ideal: memory out of the picture.
	cfg := DefaultBinnerConfig()
	cfg.Mem.RandomOpsPerSec = 150_000_000 * 4 // effectively unconstrained
	cfg.Mem.BurstOpsPerSec = 150_000_000 * 4
	cfg.Mem.LatencyCycles = 0
	_, ideal := rtlRun(t, anti, 4096*8, cfg)
	idealRate := ideal.ValuesPerSecond(clk)
	if math.Abs(idealRate-75e6)/75e6 > 0.05 {
		t.Errorf("RTL ideal rate = %.2f M/s, want ~75", idealRate/1e6)
	}
}

func TestRTLSkewStallsWithoutCache(t *testing.T) {
	cfg := DefaultBinnerConfig()
	cfg.CacheBytes = 0
	_, stats := rtlRun(t, make([]int64, 5_000), 100, cfg)
	if stats.StallCycles == 0 {
		t.Error("no RAW stalls on constant stream without cache")
	}
	// With the cache the same stream is stall-free.
	_, cached := rtlRun(t, make([]int64, 5_000), 100, DefaultBinnerConfig())
	if cached.StallCycles != 0 {
		t.Errorf("cache enabled but %d stall cycles", cached.StallCycles)
	}
	if cached.Cycles >= stats.Cycles {
		t.Errorf("cached run (%d cycles) not faster than stalled (%d)", cached.Cycles, stats.Cycles)
	}
}

func TestRTLAgreesWithFastModelOnTiming(t *testing.T) {
	// The two models' completion cycles agree within 10% across mixes of
	// hit rates.
	for _, tc := range []struct {
		name string
		vals []int64
	}{
		{"zipf", datagen.Take(datagen.NewZipf(7, 0, 1<<14, 1.0, false), 40_000)},
		{"uniform", datagen.Take(datagen.NewUniform(8, 0, 1<<14), 40_000)},
		{"sequential", datagen.Take(datagen.NewSequential(0, 1<<14), 40_000)},
	} {
		pre1, _ := RangeFor(0, 1<<14-1, 1)
		fast := NewBinner(DefaultBinnerConfig(), pre1)
		fast.PushAll(tc.vals)
		_, fstats := fast.Finish()

		pre2, _ := RangeFor(0, 1<<14-1, 1)
		rtl := NewRTLBinner(DefaultBinnerConfig(), pre2)
		_, rstats := rtl.Run(tc.vals)

		// The RTL's port cannot bank idle cycles indefinitely (credit cap),
		// which the fast model's unbounded budget slightly underestimates
		// on bursty patterns — hence the 15% band rather than exactness.
		ratio := float64(fstats.Cycles) / float64(rstats.Cycles)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: fast model %d cycles vs RTL %d cycles (ratio %.3f)",
				tc.name, fstats.Cycles, rstats.Cycles, ratio)
		}
	}
}

func TestRTLDropsOutOfRange(t *testing.T) {
	pre, _ := RangeFor(0, 9, 1)
	r := NewRTLBinner(DefaultBinnerConfig(), pre)
	vec, stats := r.Run([]int64{1, 100, 2, -3})
	if stats.Items != 2 || stats.Dropped != 2 || vec.Total() != 2 {
		t.Errorf("items=%d dropped=%d total=%d", stats.Items, stats.Dropped, vec.Total())
	}
}

func TestRTLEmptyRun(t *testing.T) {
	pre, _ := RangeFor(0, 9, 1)
	r := NewRTLBinner(DefaultBinnerConfig(), pre)
	vec, stats := r.Run(nil)
	if stats.Cycles != 0 || vec.Total() != 0 {
		t.Errorf("empty run produced cycles=%d total=%d", stats.Cycles, vec.Total())
	}
}
