package core

import (
	"sync"

	"streamhist/internal/hw"
)

// maxFlatPendingLines bounds the flat RAW-hazard table (8 MiB of float64s);
// wider line universes fall back to the pending map.
const maxFlatPendingLines = 1 << 20

// binnerScratch is the reusable allocation footprint of one binner lane: the
// bin-count row, the flat pending-commit table, and the on-chip cache model.
// The parallel scan path builds N lanes per scan and discards all but the
// merge survivor; recycling the rows keeps the steady-state scan loop free
// of per-lane allocations. Rows are cleared on reuse, so a recycled lane is
// observationally identical to a fresh one (the pooled-reuse property tests
// compare histograms bytewise).
type binnerScratch struct {
	binCounts []int64
	pending   []float64
	cache     *hw.Cache
}

var binnerScratchPool sync.Pool

// getBinnerScratch returns pooled scratch, or an empty one; the per-part
// helpers below decide what fits the requested geometry.
func getBinnerScratch() *binnerScratch {
	if v := binnerScratchPool.Get(); v != nil {
		return v.(*binnerScratch)
	}
	return &binnerScratch{}
}

// counts returns a zeroed bin row of length n, reusing the pooled row when
// it is large enough.
func (sc *binnerScratch) counts(n int64) []int64 {
	if int64(cap(sc.binCounts)) >= n {
		row := sc.binCounts[:n]
		sc.binCounts = nil
		clear(row)
		return row
	}
	return make([]int64, n)
}

// pendingFor returns a zeroed flat pending-commit table for numLines lines.
func (sc *binnerScratch) pendingFor(numLines int64) []float64 {
	if int64(cap(sc.pending)) >= numLines {
		t := sc.pending[:numLines]
		sc.pending = nil
		clear(t)
		return t
	}
	return make([]float64, numLines)
}

// cacheFor returns a reset cache with the requested geometry, reusing the
// pooled one when it matches.
func (sc *binnerScratch) cacheFor(sizeBytes, lineBytes int, universe int64) *hw.Cache {
	if universe > 0 && universe <= maxFlatPendingLines {
		if c := sc.cache; c != nil && c.Lines() == sizeBytes/lineBytes && c.Universe() == universe {
			sc.cache = nil
			c.Reset()
			return c
		}
		return hw.NewCacheFor(sizeBytes, lineBytes, universe)
	}
	if c := sc.cache; c != nil && c.Lines() == sizeBytes/lineBytes && c.Universe() == 0 {
		sc.cache = nil
		c.Reset()
		return c
	}
	return hw.NewCache(sizeBytes, lineBytes)
}

// Release parks the binner's reusable state for a future lane. It must only
// be called once the binner is provably done and private: the lane goroutine
// joined, and neither the binner, its Finish/Vector results, nor its sketch
// chain escaped into a scan result or catalog entry. The merge survivor of a
// parallel scan must never be released — its vector and blocks are the scan
// result. The sketch chain is NOT released here (its blocks may be shared by
// a Merge adoption); call SketchChain().Release() separately under the
// caller's aliasing guarantees. Idempotent.
func (b *Binner) Release() {
	if b == nil || b.cache == nil {
		return
	}
	sc := &binnerScratch{pending: b.pending, cache: b.cache}
	if b.mem == nil && b.vec != nil {
		sc.binCounts = b.vec.Counts()
	}
	binnerScratchPool.Put(sc)
	b.vec = nil
	b.pending = nil
	b.pendingMap = nil
	b.cache = nil
	b.chain = nil
}
