package core

import (
	"bytes"
	"testing"

	"streamhist/internal/datagen"
	"streamhist/internal/sketch"
)

func poolTestValues(n int) []int64 {
	return datagen.Take(datagen.NewZipf(77, 0, 1<<14, 1.1, true), n)
}

// poolTestRun builds a Binner (with a sketch chain riding it) over fresh or
// pooled scratch — whatever the pools hold — feeds it vals, and captures
// everything observable: bin counts, completion stats, and the canonical
// sketch encodings. The binner and chain are released afterwards, so each
// call hands its state to the next one.
func poolTestRun(t *testing.T, vals []int64) ([]int64, BinnerStats, [][]byte) {
	t.Helper()
	pre, err := RangeFor(0, 1<<14-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBinnerConfig()
	cfg.Sketches = sketch.NewChain(sketch.ChainSpec{NDVPrecision: 10, HeavyK: 16, WindowW: 64})
	b := NewBinner(cfg, pre)
	b.PushAll(vals)
	vec, stats := b.Finish()
	counts := append([]int64(nil), vec.Counts()...)
	raws, err := sketch.EncodeBlocks(b.SketchChain().Blocks())
	if err != nil {
		t.Fatal(err)
	}
	b.SketchChain().Release()
	b.Release()
	return counts, stats, raws
}

// TestBinnerReleaseReuseBitIdentical: a Binner assembled from pooled scratch
// (bin counts, pending table, cache, sketch blocks) must be observationally
// identical to one built from fresh allocations — same histogram, same cycle
// accounting, byte-identical sketch encodings. The pools are a pure
// allocation optimisation, never a semantic one.
func TestBinnerReleaseReuseBitIdentical(t *testing.T) {
	vals := poolTestValues(30_000)
	wantCounts, wantStats, wantRaws := poolTestRun(t, vals)
	for round := 0; round < 4; round++ {
		counts, stats, raws := poolTestRun(t, vals)
		if stats != wantStats {
			t.Fatalf("round %d: stats drifted under pooled reuse: %+v != %+v", round, stats, wantStats)
		}
		for i := range wantCounts {
			if counts[i] != wantCounts[i] {
				t.Fatalf("round %d: bin %d count %d != %d", round, i, counts[i], wantCounts[i])
			}
		}
		for i := range wantRaws {
			if !bytes.Equal(raws[i], wantRaws[i]) {
				t.Fatalf("round %d: sketch block %d encoding drifted under pooled reuse", round, i)
			}
		}
	}
}

// TestBinnerReuseAfterAbandonedLane: a lane retired mid-chunk (injected
// panic, stall timeout) releases a binner that was never finished — its
// pending table half full, its cache warm, its sketch blocks partially fed.
// The next binner built from that dirty scratch must still match a fresh one
// exactly: reset on reuse, not reset on release, is the invariant.
func TestBinnerReuseAfterAbandonedLane(t *testing.T) {
	vals := poolTestValues(30_000)
	want, wantStats, wantRaws := poolTestRun(t, vals)

	// The "fault-retired" lane: feed half the stream, never Finish, release.
	pre, err := RangeFor(0, 1<<14-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultBinnerConfig()
	cfg.Sketches = sketch.NewChain(sketch.ChainSpec{NDVPrecision: 10, HeavyK: 16, WindowW: 64})
	dead := NewBinner(cfg, pre)
	dead.PushAll(vals[:len(vals)/2])
	dead.SketchChain().Release()
	dead.Release()

	counts, stats, raws := poolTestRun(t, vals)
	if stats != wantStats {
		t.Fatalf("stats drifted after abandoned-lane reuse: %+v != %+v", stats, wantStats)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bin %d count %d != %d after abandoned-lane reuse", i, counts[i], want[i])
		}
	}
	for i := range wantRaws {
		if !bytes.Equal(raws[i], wantRaws[i]) {
			t.Fatalf("sketch block %d encoding drifted after abandoned-lane reuse", i)
		}
	}
}
