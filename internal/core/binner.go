package core

import (
	"streamhist/internal/bins"
	"streamhist/internal/faults"
	"streamhist/internal/hw"
	"streamhist/internal/hwprof"
	"streamhist/internal/sketch"
)

// BinnerConfig parameterises the Binner module simulation.
type BinnerConfig struct {
	// Clock is the circuit clock; zero value means the default 150 MHz.
	Clock hw.Clock
	// Mem is the off-chip memory model.
	Mem hw.MemParams
	// CacheBytes sizes the on-chip write-through cache; 0 disables it,
	// which re-introduces read-after-write stalls (§5.1.3).
	CacheBytes int
	// PipelineCyclesPerItem is the intrinsic pipeline issue rate — how
	// often a new item can enter the PREPROCESS stage. Two cycles per item
	// yields the 75 M values/s "Pipeline (Ideal)" row of Table 1.
	PipelineCyclesPerItem float64
	// Faults, when non-nil, routes every bin update through the ECC-checked
	// hw.Memory model so the injector's hw.mem.* points apply. Injected
	// single-bit upsets are corrected for free; uncorrectable upsets zero
	// the bin and surface as BinnerStats.BinsQuarantined so a histogram
	// built over the view can be marked degraded instead of silently wrong.
	Faults *faults.Injector
	// MemEvents, when any sink is set, receives live ECC/latency events from
	// the fault-injected memory model as they happen (in addition to the
	// cumulative BinnerStats accounting). Ignored when Faults is nil.
	MemEvents hw.MemEvents
	// Prof, when non-nil, attributes every advance of this binner's
	// completion cycle to hardware-profile nodes (lane → module → stage →
	// reason; see internal/hwprof). Per-item attribution accumulates in
	// plain local floats and is flushed to the shared profiler once, at
	// Finish/Merge time, so the profiled hot path stays branch-cheap and the
	// nil-Prof path is the untouched baseline.
	Prof *hwprof.Profiler
	// ProfLane is the outermost profile frame for this binner's cycles
	// (e.g. "lane3"); empty means "lane0". Ignored when Prof is nil.
	ProfLane string
	// Sketches, when non-nil, is the daisy chain of statistic blocks riding
	// this lane of the side path (internal/sketch). The chain sees every raw
	// value — including ones the preprocessor drops as out of range — before
	// binning, and merges across lanes like the bin state does. Nil is the
	// zero-cost baseline.
	Sketches *sketch.Chain
}

// DefaultBinnerConfig returns the paper's prototype parameters.
func DefaultBinnerConfig() BinnerConfig {
	return BinnerConfig{
		Clock:                 hw.NewClock(hw.DefaultClockHz),
		Mem:                   hw.DefaultMemParams(),
		CacheBytes:            hw.DefaultCacheBytes,
		PipelineCyclesPerItem: float64(hw.DefaultClockHz) / 75_000_000,
	}
}

// BinnerStats reports what the Binner did and how long the simulated
// hardware took.
type BinnerStats struct {
	Items       int64
	Dropped     int64
	MemReadOps  int64
	MemWriteOps int64
	CacheHits   int64
	CacheMisses int64
	// StallCycles counts cycles lost to read-after-write hazards; always 0
	// when the cache covers the memory-latency window.
	StallCycles int64
	// Cycles is the completion time: the cycle at which the last write
	// commits to memory.
	Cycles int64
	// FaultsCorrected counts injected memory upsets that ECC repaired; the
	// binned view is still exact when only this counter is nonzero.
	FaultsCorrected int64
	// BinsQuarantined counts bins lost to uncorrectable memory upsets
	// (zeroed rather than served wrong); nonzero means the view is
	// incomplete and any histogram built over it must be marked degraded.
	BinsQuarantined int64
}

// Seconds converts the completion time using the given clock.
func (s BinnerStats) Seconds(clk hw.Clock) float64 { return clk.Seconds(s.Cycles) }

// Merge combines the accounting of two lanes that ran concurrently: work
// counters (items, drops, memory ops, cache traffic, stalls) add up, while
// Cycles takes the maximum — parallel lanes finish when the slowest one
// does, so the merged completion time is the critical path, not the sum.
// The aggregation pass that folds the lanes' bin regions together is not
// included here; see hw.AggregationCycles.
func (s BinnerStats) Merge(o BinnerStats) BinnerStats {
	s.Items += o.Items
	s.Dropped += o.Dropped
	s.MemReadOps += o.MemReadOps
	s.MemWriteOps += o.MemWriteOps
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.StallCycles += o.StallCycles
	s.FaultsCorrected += o.FaultsCorrected
	s.BinsQuarantined += o.BinsQuarantined
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	return s
}

// ValuesPerSecond is the sustained update rate.
func (s BinnerStats) ValuesPerSecond(clk hw.Clock) float64 {
	sec := s.Seconds(clk)
	if sec == 0 {
		return 0
	}
	return float64(s.Items) / sec
}

// Binner is the cycle-accounted simulation of the binning pipeline of
// §5.1.2: PREPROCESS → READ → UPDATE → WRITE, decoupled by a FIFO, with the
// §5.1.3 write-through cache forwarding in-flight lines so that throughput
// does not depend on data skew.
//
// Timing model. The pipeline hides memory latency (that is its purpose), so
// steady-state progress is limited by two rates, not by latency:
//
//   - the pipeline issue rate (one item per PipelineCyclesPerItem), and
//   - the memory-op budget (each cache miss costs a random-rate read plus a
//     write; each hit costs only a burst-rate write).
//
// Latency still matters in exactly the places it matters in hardware: the
// completion tail (the last write commits LatencyCycles after it issues)
// and read-after-write hazards. When the cache cannot forward a line that
// has an in-flight write, the pipeline stalls until the write commits —
// reproducing the skew-dependent slowdown the cache exists to eliminate.
// The simulation advances virtual time per item, which is exact for these
// linear constraints, and lets the model stream hundreds of millions of
// values in seconds of host time.
type Binner struct {
	cfg   BinnerConfig
	pre   *Preprocessor
	cache *hw.Cache

	vec *bins.Vector
	// mem is the ECC-checked memory model, wired only when cfg.Faults is
	// set; finalizeMem folds it back into vec before the view is read.
	mem *hw.Memory

	pipeTime float64 // pipeline front time, cycles
	opTime   float64 // memory port budget time, cycles

	lastCommit float64

	// pending tracks, per memory line, the cycle at which the line's most
	// recent write commits; used to detect RAW hazards when the cache
	// cannot forward. For the bounded line universes real columns produce it
	// is a flat array indexed by line (allocation-free, branch-cheap);
	// pendingMap is the fallback for astronomically wide bin ranges.
	pending    []float64
	pendingMap map[int64]float64

	randomPeriod float64
	burstPeriod  float64
	latency      float64

	stats BinnerStats
	// merged accumulates the state folded in from other lanes via Merge;
	// Finish combines it with this lane's own accounting.
	merged BinnerStats

	// prof accumulates this lane's cycle attribution; nil when profiling is
	// off (the zero-cost baseline).
	prof *binnerProf

	// chain is this lane's sketch chain; nil when sketches are off (the
	// zero-cost baseline, same discipline as prof).
	chain *sketch.Chain
}

// NewBinner wires a Binner for the given preprocessor. The returned
// Binner's vector models the off-chip bin region.
func NewBinner(cfg BinnerConfig, pre *Preprocessor) *Binner {
	if cfg.Clock.Hz == 0 {
		cfg.Clock = hw.NewClock(hw.DefaultClockHz)
	}
	if cfg.Mem.BinsPerLine == 0 {
		cfg.Mem = hw.DefaultMemParams()
	}
	if cfg.PipelineCyclesPerItem == 0 {
		cfg.PipelineCyclesPerItem = float64(hw.DefaultClockHz) / 75_000_000
	}
	numLines := (pre.NumBins + int64(cfg.Mem.BinsPerLine) - 1) / int64(cfg.Mem.BinsPerLine)
	scratch := getBinnerScratch()
	vec := bins.FromCounts(pre.Min, pre.Divisor, scratch.counts(pre.NumBins))
	var mem *hw.Memory
	if cfg.Faults != nil {
		mem = hw.NewMemory(int(pre.NumBins), cfg.Faults)
		mem.SetEvents(cfg.MemEvents)
	}
	b := &Binner{
		cfg:          cfg,
		pre:          pre,
		cache:        scratch.cacheFor(cfg.CacheBytes, hw.LineBytes, numLines),
		vec:          vec,
		mem:          mem,
		randomPeriod: float64(cfg.Clock.Hz) / float64(cfg.Mem.RandomOpsPerSec),
		burstPeriod:  float64(cfg.Clock.Hz) / float64(cfg.Mem.BurstOpsPerSec),
		latency:      float64(cfg.Mem.LatencyCycles),
	}
	if numLines > 0 && numLines <= maxFlatPendingLines {
		b.pending = scratch.pendingFor(numLines)
	} else {
		b.pendingMap = make(map[int64]float64)
	}
	if cfg.Prof != nil {
		lane := cfg.ProfLane
		if lane == "" {
			lane = "lane0"
		}
		b.prof = &binnerProf{p: cfg.Prof, lane: lane}
	}
	b.chain = cfg.Sketches
	return b
}

// Push streams one value through the pipeline.
func (b *Binner) Push(value int64) {
	// The sketch chain taps the raw stream ahead of the preprocessor, so
	// values the address map drops still count toward NDV, heavy hitters,
	// and the window — the chain summarises data movement, not the binned
	// view. Nil chain costs one pointer test.
	if b.chain != nil {
		b.chain.Push(value)
	}
	one := [1]int64{value}
	b.pushBatch(one[:])
}

// PushAll streams a whole column (one page chunk on the parallel path). The
// sketch chain consumes the batch block-major, and the pipeline model runs
// as one chunk so profiled runs pay the cause decomposition once per chunk,
// not once per item.
func (b *Binner) PushAll(values []int64) {
	if b.chain != nil {
		b.chain.PushAll(values)
	}
	b.pushBatch(values)
}

// pushBatch advances the pipeline model over a batch of values. Profiled
// runs accumulate the per-cause raw sums in locals and decompose the chunk's
// total completion-cycle advance once at the end (profile.go); the nil-prof
// path pays one pointer test per chunk.
func (b *Binner) pushBatch(values []int64) {
	prof := b.prof
	var prevCommit, opBefore float64
	var issueN int64
	var bpSum, stallSum, spikeSum float64
	if prof != nil {
		prevCommit = b.lastCommit
		opBefore = b.opTime
	}

	binsPerLine := int64(b.cfg.Mem.BinsPerLine)
	for _, value := range values {
		addr, ok := b.pre.Address(value)
		if !ok {
			b.stats.Dropped++
			continue
		}
		b.stats.Items++
		issueN++

		// A new item enters the pipeline no faster than the issue rate
		// allows, and no earlier than backpressure from the bounded FIFO in
		// front of the memory port permits (the queue between READ and
		// UPDATE of §5.1.2 is finite).
		const maxBacklogCycles = 512
		b.pipeTime += b.cfg.PipelineCyclesPerItem
		if b.opTime-b.pipeTime > maxBacklogCycles {
			if prof != nil {
				bpSum += (b.opTime - maxBacklogCycles) - b.pipeTime
				prof.bpN++
			}
			b.pipeTime = b.opTime - maxBacklogCycles
		}

		line := addr / binsPerLine

		var dataReady float64
		if b.cache.Lookup(line) {
			// READ served by the cache: the freshest value of the line is
			// forwarded between pipeline stages; no memory read op.
			b.stats.CacheHits++
			dataReady = b.pipeTime
		} else {
			b.stats.CacheMisses++
			readIssue := maxf(b.pipeTime, b.opTime)
			// Without forwarding, a read that overlaps an in-flight write to
			// the same line must stall the pipeline until that write commits
			// (§5.1.3). The flat table's zero value never exceeds readIssue,
			// so untouched lines behave exactly like absent map entries.
			var pendingCommit float64
			if b.pending != nil {
				pendingCommit = b.pending[line]
			} else {
				pendingCommit = b.pendingMap[line]
			}
			if pendingCommit > readIssue {
				if prof != nil {
					stallSum += pendingCommit - readIssue
					prof.stallN++
				}
				b.stats.StallCycles += int64(pendingCommit - readIssue)
				b.pipeTime = pendingCommit
				readIssue = pendingCommit
			}
			b.opTime = maxf(b.opTime, readIssue) + b.randomPeriod
			dataReady = readIssue + b.latency
			b.stats.MemReadOps++
		}

		// UPDATE: increment the bin (the functional effect). Under fault
		// injection the update goes through the ECC-checked memory model and
		// an injected latency spike stretches this item's commit.
		var spike float64
		if b.mem != nil {
			spike = float64(b.mem.Increment(addr))
			if prof != nil && spike > 0 {
				spikeSum += spike
				prof.spikeN++
			}
		} else {
			b.vec.AddCount(b.pre.Min+addr*b.pre.Divisor, 1)
		}

		// WRITE: write-through. Ops to recently touched (cached) lines go at
		// burst rate; cold lines pay the random-access rate. The write op
		// only consumes port bandwidth — it does not hold back reads of
		// later items, which is what the FIFO between the stages buys.
		period := b.randomPeriod
		if b.cache.Contains(line) {
			period = b.burstPeriod
		}
		b.opTime += period
		writeIssue := maxf(b.opTime, dataReady)
		commit := writeIssue + b.latency + spike
		b.stats.MemWriteOps++
		if b.pending != nil {
			b.pending[line] = commit
		} else {
			b.pendingMap[line] = commit
		}
		if commit > b.lastCommit {
			b.lastCommit = commit
		}
		b.cache.Insert(line)

		// Retire pending-commit entries lazily so the fallback map stays
		// small (the flat table needs no retirement).
		if b.pendingMap != nil && len(b.pendingMap) > 4*b.cache.Lines()+1024 {
			horizon := minf(b.pipeTime, b.opTime)
			for l, c := range b.pendingMap {
				if c <= horizon {
					delete(b.pendingMap, l)
				}
			}
		}
	}

	if prof != nil {
		prof.attributeChunk(b.lastCommit-prevCommit,
			float64(issueN)*b.cfg.PipelineCyclesPerItem,
			bpSum, stallSum, b.opTime-opBefore, spikeSum)
	}
}

// Merge folds another lane's state into b: bin counts add up (the §7 adder
// tree over replicated memories) and the accounting merges per
// BinnerStats.Merge, so a subsequent Finish reports the combined work with
// the max-lane critical path as the completion cycle. Both binners must
// share the same preprocessor geometry; other is left untouched and must
// not receive further Pushes that are expected to show up in b.
func (b *Binner) Merge(other *Binner) error {
	b.finalizeMem()
	other.finalizeMem()
	if err := b.vec.Merge(other.vec); err != nil {
		return err
	}
	// Fold the other lane's sketch chain in alongside its bin state. A lane
	// without a chain contributes nothing; if only the other lane carries
	// one (an inline replay lane, say), adopt it wholesale.
	if other.chain != nil {
		if b.chain == nil {
			b.chain = other.chain
		} else if err := b.chain.Merge(other.chain); err != nil {
			return err
		}
	}
	b.merged = b.merged.Merge(other.snapshotStats())
	return nil
}

// SetStreamPos repositions the sketch chain's global stream cursor. The
// parallel path calls this at every page boundary with pageIndex·capacity —
// pages are fully packed, so that is the page's first row ordinal — which
// keeps position-sensitive blocks (the sliding window) exact no matter which
// lane a page lands on or when a retired lane's pages are replayed. A no-op
// without a chain.
func (b *Binner) SetStreamPos(pos int64) {
	if b.chain != nil {
		b.chain.SetPos(pos)
	}
}

// SketchChain returns the lane's sketch chain (nil when sketches are off).
// After Merge it covers every merged lane.
func (b *Binner) SketchChain() *sketch.Chain { return b.chain }

// finalizeMem folds the ECC-checked memory model (if one is wired) back
// into the plain bin vector: the final scrub pass corrects what it can,
// quarantines what it cannot, and the fault counters move into the lane's
// statistics. Idempotent; a no-op without fault injection.
func (b *Binner) finalizeMem() {
	if b.mem == nil {
		return
	}
	b.vec = bins.FromCounts(b.pre.Min, b.pre.Divisor, b.mem.Counts())
	b.stats.FaultsCorrected = b.mem.Corrected()
	b.stats.BinsQuarantined = b.mem.Quarantined()
	b.mem = nil
}

// snapshotStats returns the lane's current accounting — own work plus
// anything already folded in via Merge — without disturbing the lane.
func (b *Binner) snapshotStats() BinnerStats {
	s := b.stats
	s.Cycles = int64(b.lastCommit + 0.5)
	s.CacheHits = b.cache.Hits()
	s.CacheMisses = b.cache.Misses()
	// Publish this lane's cycle attribution (own work only — merged lanes
	// flushed themselves when Merge snapshotted them); idempotent.
	b.flushProf(s)
	return s.Merge(b.merged)
}

// Finish returns the binned view and final statistics. The completion cycle
// is when the last write has committed — the moment the Binner "will send
// the total count to the Histogram module, signaling that it finished".
// After Merge the statistics cover every merged lane and Cycles is the
// slowest lane's completion (see BinnerStats.Merge).
func (b *Binner) Finish() (*bins.Vector, BinnerStats) {
	b.finalizeMem()
	return b.vec, b.snapshotStats()
}

// Vector exposes the bin region (useful mid-stream for tests). Under fault
// injection this finalizes the ECC scrub first.
func (b *Binner) Vector() *bins.Vector {
	b.finalizeMem()
	return b.vec
}

// CacheHitRate returns the hit rate of the on-chip cache so far.
func (b *Binner) CacheHitRate() float64 { return b.cache.HitRate() }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
