package core

import (
	"testing"

	"streamhist/internal/page"
	"streamhist/internal/table"
	"streamhist/internal/tpch"
)

// FuzzParserFeed feeds arbitrary bytes through the page-parsing FSM in
// arbitrary chunkings. The parser must either produce values or return an
// error — never panic, never read out of bounds — because in deployment it
// watches a wire it does not control.
func FuzzParserFeed(f *testing.F) {
	rel := tpch.Lineitem(50, 1, 71)
	for _, pg := range page.Encode(rel) {
		f.Add(pg.Bytes(), uint16(64))
	}
	f.Add([]byte{0xC5, 0xD0, 0xff, 0xff}, uint16(1))
	f.Add(make([]byte, page.Size), uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint16) {
		c := int(chunk)
		if c == 0 {
			c = 1
		}
		for _, typ := range []table.Type{table.Int64, table.Decimal, table.Date, table.DateUnpacked} {
			p := NewParser(ColumnSpec{Offset: int(chunk) % 32, Type: typ})
			var out []int64
			var err error
			for off := 0; off < len(data) && err == nil; off += c {
				end := off + c
				if end > len(data) {
					end = len(data)
				}
				out, err = p.Feed(data[off:end], out)
			}
			if err == nil && p.BytesConsumed() != int64(len(data)) {
				t.Fatalf("type %v: consumed %d of %d bytes without error", typ, p.BytesConsumed(), len(data))
			}
		}
	})
}

// FuzzCommandUnmarshal hammers the control-plane packet decoder.
func FuzzCommandUnmarshal(f *testing.F) {
	good, _ := validCommand().MarshalBinary()
	f.Add(good)
	f.Add(make([]byte, CommandSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var cmd Command
		if err := cmd.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything that decodes must validate and re-encode to the same
		// bytes.
		if err := cmd.Validate(); err != nil {
			t.Fatalf("decoded command does not validate: %v", err)
		}
		out, err := cmd.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		for i := range out {
			// Reserved bytes may differ only if the input set them; the
			// decoder ignores them, the encoder zeroes them.
			if i == 5 || i >= 40 {
				continue
			}
			if out[i] != data[i] {
				t.Fatalf("byte %d changed across round trip", i)
			}
		}
	})
}
