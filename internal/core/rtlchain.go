package core

import (
	"streamhist/internal/bins"
)

// RTLChain is the event-timed counterpart of Scanner.Run: instead of
// evaluating the Table 2 formulas, it walks the bin region slot by slot —
// the memory delivers one bin slot every ScanCyclesPerBin cycles, empty or
// not — observes when each block actually produces its first result, and
// accounts list drains and repeat scans as they happen. The unit tests pin
// the formula-based accounting against these observed times.
type RTLChain struct {
	scanner *Scanner
}

// NewRTLChain wraps a scanner's rate parameters.
func NewRTLChain(s *Scanner) *RTLChain {
	if s == nil {
		s = NewScanner()
	}
	return &RTLChain{scanner: s}
}

// chainProbe watches one block for result emission during the walk.
type chainProbe struct {
	block Block
	pos   int

	firstResult int64 // 0 = not yet
	completion  int64
	lastBuckets int
}

// observe checks whether the block emitted new output at the given cycle.
func (p *chainProbe) observe(cycle int64) {
	n := p.resultLen()
	if n > p.lastBuckets {
		if p.firstResult == 0 {
			p.firstResult = cycle
		}
		p.completion = cycle
		p.lastBuckets = n
	}
}

// resultLen returns the block's current output length.
func (p *chainProbe) resultLen() int {
	switch b := p.block.(type) {
	case *TopKBlock:
		return len(b.Result())
	case *EquiDepthBlock:
		return len(b.Result())
	case *MaxDiffBlock:
		return len(b.Result())
	case *CompressedBlock:
		return len(b.Buckets())
	default:
		return 0
	}
}

// Run streams the vector through the blocks slot by slot and returns the
// observed timings in the same shape as Scanner.Run's accounting.
func (c *RTLChain) Run(vec *bins.Vector, blocks ...Block) ChainResult {
	probes := make([]*chainProbe, len(blocks))
	for i, b := range blocks {
		probes[i] = &chainProbe{block: b, pos: i}
	}
	maxScans := 1
	for _, b := range blocks {
		if n := b.Scans(); n > maxScans {
			maxScans = n
		}
	}

	period := c.scanner.ScanCyclesPerBin
	pass := c.scanner.BlockPassCycles
	delta := int64(vec.NumBins())
	var cycle int64 // end of the most recent scan activity

	res := ChainResult{Delta: delta, Scans: maxScans}

	for scan := 0; scan < maxScans; scan++ {
		for _, p := range probes {
			if p.block.NeedsScan(scan) {
				p.block.BeginScan(scan)
			}
		}
		scanStart := cycle
		for i := int64(0); i < delta; i++ {
			slotCycle := scanStart + (i+1)*period
			count := vec.Count(int(i))
			if count == 0 {
				continue // invalid slot still occupies delivery time
			}
			v := vec.Value(int(i))
			for _, p := range probes {
				if !p.block.NeedsScan(scan) {
					continue
				}
				p.block.Consume(scan, v, count)
				p.observe(slotCycle + int64(p.pos)*pass)
			}
		}
		scanEnd := scanStart + delta*period
		for _, p := range probes {
			if !p.block.NeedsScan(scan) {
				continue
			}
			p.block.EndScan(scan)
			p.observe(scanEnd + int64(p.pos)*pass)
		}
		// Between scans, blocks that keep internal lists drain them before
		// the repeat begins: TopK-style registers shift out one entry per
		// two cycles (this is where the +2T / +2B terms come from).
		drain := int64(0)
		for _, p := range probes {
			var entries int64
			switch b := p.block.(type) {
			case *TopKBlock:
				if scan == 0 {
					entries = int64(b.K)
					// The TopK list IS the result: its first byte appears
					// once the drain completes.
					p.firstResult = scanEnd + 2*entries + int64(p.pos)*pass
					p.completion = p.firstResult
				}
			case *MaxDiffBlock:
				if scan == 0 && b.Scans() > scan+1 {
					entries = int64(b.B)
				}
			case *CompressedBlock:
				if scan == 0 && b.Scans() > scan+1 {
					entries = int64(b.T)
				}
			}
			if 2*entries > drain {
				drain = 2 * entries
			}
		}
		cycle = scanEnd + drain
	}

	for _, p := range probes {
		t := ChainTiming{
			Name:              p.block.Name(),
			Position:          p.pos,
			Scans:             p.block.Scans(),
			FirstResultCycles: p.firstResult,
			CompletionCycles:  p.completion,
		}
		if t.CompletionCycles > res.TotalCycles {
			res.TotalCycles = t.CompletionCycles
		}
		res.Timings = append(res.Timings, t)
	}
	return res
}
