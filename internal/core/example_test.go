package core_test

import (
	"fmt"

	"streamhist/internal/core"
	"streamhist/internal/table"
)

// ExampleCircuit runs the full statistical circuit over a small column.
func ExampleCircuit() {
	cfg := core.DefaultConfig(core.ColumnSpec{Offset: 0, Type: table.Int64}, 0, 9)
	cfg.TopK = 2
	cfg.EquiDepthBuckets = 2
	cfg.MaxDiffBuckets = 2
	cfg.CompressedT = 1
	cfg.CompressedBuckets = 2
	circuit, err := core.NewCircuit(cfg)
	if err != nil {
		panic(err)
	}
	res := circuit.ProcessValues([]int64{0, 0, 0, 1, 2, 3, 7, 8, 8, 9})
	fmt.Println("top value:", res.TopK[0].Value, "x", res.TopK[0].Count)
	for _, b := range res.EquiDepth.Buckets {
		fmt.Printf("equi-depth [%d..%d] %d rows\n", b.Low, b.High, b.Count)
	}
	fmt.Println("compressed exact:", res.Compressed.Frequent[0].Value)
	// Output:
	// top value: 0 x 3
	// equi-depth [0..2] 5 rows
	// equi-depth [3..9] 5 rows
	// compressed exact: 0
}

// ExampleParallelBinner shows the §7 scale-up path: replicated binners with
// merged partial counts.
func ExampleParallelBinner() {
	pb, err := core.NewParallelBinner(4, core.DefaultBinnerConfig(), 0, 9, 1)
	if err != nil {
		panic(err)
	}
	pb.PushAll([]int64{1, 1, 2, 3, 3, 3, 9})
	merged, _, err := pb.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Println("count(3) =", merged.CountValue(3))
	fmt.Println("total =", merged.Total())
	// Output:
	// count(3) = 3
	// total = 7
}

// ExampleCommand shows the §4 control plane: the host serialises the
// metadata packet, the accelerator configures itself from it.
func ExampleCommand() {
	cmd := core.Command{
		Column:           core.ColumnSpec{Offset: 8, Type: table.Decimal},
		Min:              0,
		Max:              999_999,
		Divisor:          1,
		EquiDepthBuckets: 256,
	}
	packet, err := cmd.MarshalBinary()
	if err != nil {
		panic(err)
	}
	fmt.Println("packet bytes:", len(packet))
	var decoded core.Command
	if err := decoded.UnmarshalBinary(packet); err != nil {
		panic(err)
	}
	fmt.Println("decoded buckets:", decoded.EquiDepthBuckets)
	// Output:
	// packet bytes: 44
	// decoded buckets: 256
}
