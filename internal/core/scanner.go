package core

import (
	"streamhist/internal/bins"
	"streamhist/internal/hw"
)

// Scanner streams the binned region from memory into the daisy chain of
// statistic blocks (Figure 11), re-reading it when a block's repeat channel
// asks for another pass. In the prototype the memory delivers one 64-bit
// bin every two cycles in the worst case (hw.DefaultScanCyclesPerBin);
// Δ — the number of bins that must be read out — is the full reserved
// region, empty bins included, which is why scan cost depends on the value
// range and not on the number of rows.
type Scanner struct {
	// ScanCyclesPerBin is the bin delivery period.
	ScanCyclesPerBin int64
	// BlockPassCycles is the per-block pass-through latency in the chain.
	BlockPassCycles int64
}

// NewScanner returns a scanner with the prototype's delivery rate.
func NewScanner() *Scanner {
	return &Scanner{
		ScanCyclesPerBin: hw.DefaultScanCyclesPerBin,
		BlockPassCycles:  hw.DefaultBlockPassCycles,
	}
}

// ChainTiming reports the cycle accounting for one block after a chain run.
type ChainTiming struct {
	Name string
	// Position is the 0-based slot in the daisy chain.
	Position int
	// Scans is how many passes over the bins the block consumed.
	Scans int
	// FirstResultCycles is the Table 2 "result latency": cycles from the
	// first bin retrieved from memory until the block's first result byte.
	FirstResultCycles int64
	// CompletionCycles is when the block's last result byte is out.
	CompletionCycles int64
	// ResultBytes is the size of the block's result output.
	ResultBytes int64
}

// ChainResult is the outcome of running a chain over a binned view.
type ChainResult struct {
	// Delta is the number of bins read per scan (Δ of Table 2).
	Delta int64
	// Scans is the number of passes the scanner performed.
	Scans int
	// Timings holds per-block cycle accounting, in chain order.
	Timings []ChainTiming
	// TotalCycles is when the last block finished.
	TotalCycles int64
	// ScanCyclesPerBin and BlockPassCycles echo the scanner parameters the
	// run used, so the result can be decomposed after the fact (see
	// ChargeProfile).
	ScanCyclesPerBin int64
	BlockPassCycles  int64
}

// Seconds converts total completion to seconds at the given clock.
func (r ChainResult) Seconds(clk hw.Clock) float64 { return clk.Seconds(r.TotalCycles) }

// Run streams the vector through the blocks, performing as many passes as
// the blocks request, and returns the functional results (via the blocks
// themselves) plus the cycle accounting.
func (s *Scanner) Run(vec *bins.Vector, blocks ...Block) ChainResult {
	maxScans := 1
	for _, b := range blocks {
		if n := b.Scans(); n > maxScans {
			maxScans = n
		}
	}
	for scan := 0; scan < maxScans; scan++ {
		for _, b := range blocks {
			if b.NeedsScan(scan) {
				b.BeginScan(scan)
			}
		}
		n := vec.NumBins()
		for i := 0; i < n; i++ {
			c := vec.Count(i)
			if c == 0 {
				continue // invalid-flagged: empty bin
			}
			v := vec.Value(i)
			for _, b := range blocks {
				if b.NeedsScan(scan) {
					b.Consume(scan, v, c)
				}
			}
		}
		for _, b := range blocks {
			if b.NeedsScan(scan) {
				b.EndScan(scan)
			}
		}
	}
	return s.account(int64(vec.NumBins()), maxScans, blocks)
}

// account computes the Table 2 cycle model for each block.
func (s *Scanner) account(delta int64, scans int, blocks []Block) ChainResult {
	res := ChainResult{
		Delta: delta, Scans: scans,
		ScanCyclesPerBin: s.ScanCyclesPerBin,
		BlockPassCycles:  s.BlockPassCycles,
	}
	scanCost := s.ScanCyclesPerBin * delta
	for pos, b := range blocks {
		pass := int64(pos) * s.BlockPassCycles
		t := ChainTiming{Name: b.Name(), Position: pos, Scans: b.Scans()}
		switch blk := b.(type) {
		case *TopKBlock:
			// The top list is final only after all bins passed, then the
			// list drains: 2Δ + 2T.
			t.FirstResultCycles = scanCost + 2*int64(blk.K) + pass
			t.CompletionCycles = t.FirstResultCycles
			t.ResultBytes = int64(blk.K) * 8
		case *EquiDepthBlock:
			// The first bucket closes as soon as the running sum reaches
			// the limit — after about Δ/B bins: 2Δ/B.
			t.FirstResultCycles = scanCost/int64(blk.B) + pass
			t.CompletionCycles = scanCost + pass
			t.ResultBytes = int64(blk.B) * 8
		case *MaxDiffBlock:
			// First scan fills the diff list (2Δ+2B), second scan emits
			// the first bucket after 2Δ/B more cycles.
			t.FirstResultCycles = scanCost + 2*int64(blk.B) + scanCost/int64(blk.B) + pass
			t.CompletionCycles = scanCost + 2*int64(blk.B) + scanCost + pass
			t.ResultBytes = int64(blk.B) * 8
		case *CompressedBlock:
			// First scan fills the TopK list (2Δ+2T), second scan's first
			// bucket arrives 2Δ/B later.
			t.FirstResultCycles = scanCost + 2*int64(blk.T) + scanCost/int64(blk.B) + pass
			t.CompletionCycles = scanCost + 2*int64(blk.T) + scanCost + pass
			t.ResultBytes = int64(blk.T+blk.B) * 8
		default:
			t.FirstResultCycles = scanCost + pass
			t.CompletionCycles = scanCost + pass
		}
		if t.CompletionCycles > res.TotalCycles {
			res.TotalCycles = t.CompletionCycles
		}
		res.Timings = append(res.Timings, t)
	}
	return res
}

// ResultLatency returns the Table 2 first-result cycle count for one block
// at chain position pos over a Δ-bin region, without running the blocks —
// pure cycle arithmetic for paper-scale bin counts.
func (s *Scanner) ResultLatency(delta int64, b Block, pos int) int64 {
	res := s.account(delta, b.Scans(), []Block{b})
	return res.Timings[0].FirstResultCycles + int64(pos)*s.BlockPassCycles
}

// Completion returns the cycle at which the block's last result byte is out,
// at chain position pos over a Δ-bin region.
func (s *Scanner) Completion(delta int64, b Block, pos int) int64 {
	res := s.account(delta, b.Scans(), []Block{b})
	return res.Timings[0].CompletionCycles + int64(pos)*s.BlockPassCycles
}

// ResourceEstimate reports the Table 2 synthesis characteristics of a block
// configuration on the Virtex-6 SXT475 prototype: the fraction of chip
// resources used, how usage scales, and the maximum clock frequency.
type ResourceEstimate struct {
	Name string
	// UsagePct is the percentage of the FPGA's logic resources.
	UsagePct float64
	// Scaling describes asymptotic growth with the block's parameter.
	Scaling string
	// MaxFreqMHz is the block's maximum synthesisable clock.
	MaxFreqMHz int
}

// Resources returns the Table 2 resource model for the block. Usage scales
// linearly from the synthesis data points the paper reports (TopK 2.5 % at
// T=64; equi-depth <1 % constant; Max-diff <3 % at B=64; Compressed <3 % at
// T=64).
func Resources(b Block) ResourceEstimate {
	switch blk := b.(type) {
	case *TopKBlock:
		return ResourceEstimate{Name: blk.Name(), UsagePct: 2.5 * float64(blk.K) / 64, Scaling: "O(T)", MaxFreqMHz: 170}
	case *EquiDepthBlock:
		return ResourceEstimate{Name: blk.Name(), UsagePct: 0.9, Scaling: "O(1)", MaxFreqMHz: 240}
	case *MaxDiffBlock:
		return ResourceEstimate{Name: blk.Name(), UsagePct: 2.9 * float64(blk.B) / 64, Scaling: "O(B)", MaxFreqMHz: 170}
	case *CompressedBlock:
		return ResourceEstimate{Name: blk.Name(), UsagePct: 2.9 * float64(blk.T) / 64, Scaling: "O(T)", MaxFreqMHz: 170}
	default:
		return ResourceEstimate{Name: b.Name(), UsagePct: 0, Scaling: "?", MaxFreqMHz: 150}
	}
}
