package core

import (
	"testing"

	"streamhist/internal/datagen"
	"streamhist/internal/table"
)

// regionScans builds a batch of scans whose histogram phase is substantial
// relative to binning (small row count, large bin region), so overlap is
// visible in the timeline.
func regionScans(n int) []TableScan {
	scans := make([]TableScan, n)
	for i := range scans {
		scans[i] = TableScan{
			Name:   "t" + string(rune('0'+i)),
			Values: datagen.Take(datagen.NewUniform(uint64(10+i), 0, 1<<20), 50_000),
			Min:    0, Max: 1<<20 - 1, Divisor: 1,
		}
	}
	return scans
}

func regionConfig() Config {
	cfg := DefaultConfig(ColumnSpec{Offset: 0, Type: table.Int64}, 0, 1<<20-1)
	return cfg
}

func TestPipelinedCircuitFunctionalEquivalence(t *testing.T) {
	scans := regionScans(3)
	pc, err := NewPipelinedCircuit(regionConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Process(scans)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	// Each scan's binned view must equal a standalone run.
	for i, out := range res.Outcomes {
		want := datagen.Counts(scans[i].Values)
		if out.Bins.Total() != int64(len(scans[i].Values)) {
			t.Errorf("scan %d total = %d", i, out.Bins.Total())
		}
		for v, c := range want {
			if out.Bins.CountValue(v) != c {
				t.Errorf("scan %d count(%d) = %d, want %d", i, v, out.Bins.CountValue(v), c)
				break
			}
		}
	}
}

func TestPipelinedCircuitOverlap(t *testing.T) {
	scans := regionScans(4)

	one, err := NewPipelinedCircuit(regionConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := one.Process(scans)
	if err != nil {
		t.Fatal(err)
	}
	// One region: no overlap possible; total equals the sequential sum.
	if seq.TotalCycles != seq.SequentialCycles {
		t.Errorf("single region: total %d != sequential %d", seq.TotalCycles, seq.SequentialCycles)
	}
	if seq.Overlap() != 0 {
		t.Errorf("single region overlap = %v", seq.Overlap())
	}

	two, err := NewPipelinedCircuit(regionConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := two.Process(scans)
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalCycles >= seq.TotalCycles {
		t.Errorf("two regions (%d cycles) not faster than one (%d cycles)",
			par.TotalCycles, seq.TotalCycles)
	}
	if par.Overlap() <= 0 {
		t.Errorf("overlap = %v, want positive", par.Overlap())
	}
	// Scan N+1's binning must start before scan N's histogram finished.
	overlapped := false
	for i := 1; i < len(par.Outcomes); i++ {
		if par.Outcomes[i].BinStartCycle < par.Outcomes[i-1].HistEndCycle {
			overlapped = true
		}
	}
	if !overlapped {
		t.Error("no scan's binning overlapped the previous scan's histogram phase")
	}
}

func TestPipelinedCircuitTimelineConsistency(t *testing.T) {
	pc, err := NewPipelinedCircuit(regionConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Process(regionScans(5))
	if err != nil {
		t.Fatal(err)
	}
	var prevBinEnd, prevHistEnd int64
	regionBusyUntil := map[int]int64{}
	for i, out := range res.Outcomes {
		if out.BinEndCycle-out.BinStartCycle != out.BinnerStats.Cycles {
			t.Errorf("scan %d: bin phase length mismatch", i)
		}
		if out.HistEndCycle-out.HistStartCycle != out.Chain.TotalCycles {
			t.Errorf("scan %d: hist phase length mismatch", i)
		}
		if out.HistStartCycle < out.BinEndCycle {
			t.Errorf("scan %d: histogram started before binning finished", i)
		}
		// There is one Binner and one Histogram module: phases of the same
		// kind never overlap across scans.
		if out.BinStartCycle < prevBinEnd {
			t.Errorf("scan %d: binner double-booked", i)
		}
		if out.HistStartCycle < prevHistEnd {
			t.Errorf("scan %d: histogram module double-booked", i)
		}
		// A region is not reused while its histogram is still reading it.
		if busy, ok := regionBusyUntil[out.Region]; ok && out.BinStartCycle < busy {
			t.Errorf("scan %d: region %d reused at cycle %d while busy until %d",
				i, out.Region, out.BinStartCycle, busy)
		}
		regionBusyUntil[out.Region] = out.HistEndCycle
		prevBinEnd = out.BinEndCycle
		prevHistEnd = out.HistEndCycle
	}
}

func TestPipelinedCircuitRegionAssignment(t *testing.T) {
	pc, err := NewPipelinedCircuit(regionConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pc.Process(regionScans(4))
	if err != nil {
		t.Fatal(err)
	}
	// With two regions and uniform work the scans alternate regions.
	for i, out := range res.Outcomes {
		if out.Region != i%2 {
			t.Errorf("scan %d on region %d, want %d", i, out.Region, i%2)
		}
	}
}

func TestPipelinedCircuitValidation(t *testing.T) {
	if _, err := NewPipelinedCircuit(regionConfig(), 0); err == nil {
		t.Error("zero regions accepted")
	}
	pc, _ := NewPipelinedCircuit(regionConfig(), 2)
	if _, err := pc.Process([]TableScan{{Name: "bad", Min: 10, Max: 0}}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestPipelinedCircuitEmptyBatch(t *testing.T) {
	pc, _ := NewPipelinedCircuit(regionConfig(), 2)
	res, err := pc.Process(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != 0 || len(res.Outcomes) != 0 {
		t.Error("empty batch should be empty")
	}
}
