package core

import "streamhist/internal/hwprof"

// binnerProf accumulates one lane's cycle attribution in plain local floats
// while the lane streams, and flushes to the shared hwprof.Profiler exactly
// once at Finish/Merge time. The hot loop accumulates raw cause sums per
// page chunk and decomposes them once per chunk (attributeChunk), so the
// profiled hot path costs a pointer test plus a handful of float adds per
// item, and the nil-prof path is the untouched baseline.
//
// The invariant the flush maintains: the six cycle components sum exactly
// to the lane's own BinnerStats.Cycles (integer), so a profile snapshot can
// be checked against the PR 2 critical-path arithmetic cycle-for-cycle.
type binnerProf struct {
	p    *hwprof.Profiler
	lane string

	// Cycle components, in simulated cycles (floats until flush).
	compute   float64 // pipeline issue: what the item costs on infinitely fast memory
	stall     float64 // read-after-write hazard stalls at READ (§5.1.3)
	memWait   float64 // memory-port budget: random/burst op periods at READ+WRITE
	fifoFull  float64 // backpressure: the bounded FIFO ahead of the port filled up
	fifoEmpty float64 // remainder: UPDATE waiting on data (read-latency tail, slack)
	spike     float64 // injected memory latency spikes (fault path)

	// Occurrence counts for the components that are events, not rates.
	stallN, bpN, spikeN int64

	flushed bool
}

// attributeChunk decomposes one page chunk's advance of the lane completion
// cycle (delta) into causes, taking them in a fixed order until the delta
// is used up: spike, then RAW stall, then pipeline issue, then memory-port
// advance, then backpressure, with any remainder charged to the UPDATE
// stage waiting on data. Taking compute before memWait makes "compute" mean
// what the chunk would cost on infinitely fast memory; the remainder is the
// read-latency tail the FIFO could not hide. The hot loop only sums the raw
// per-cause cycles (pushBatch) and pays this clamped decomposition once per
// chunk; event counts (stallN, bpN, spikeN) are incremented at the point
// each event fires.
func (bp *binnerProf) attributeChunk(delta, issue, backpressure, stall, opAdv, spike float64) {
	if delta <= 0 {
		return
	}
	take := func(x float64) float64 {
		if x < 0 {
			x = 0
		}
		if x > delta {
			x = delta
		}
		delta -= x
		return x
	}
	bp.spike += take(spike)
	bp.stall += take(stall)
	bp.compute += take(issue)
	bp.memWait += take(opAdv)
	bp.fifoFull += take(backpressure)
	bp.fifoEmpty += delta
}

// flushProf publishes the lane's accumulated attribution to the shared
// profiler, exactly once (snapshotStats may run more than once: Finish can
// be called repeatedly, and Merge snapshots the absorbed lane). own must be
// this lane's accounting before folding in merged lanes — merged lanes
// flush themselves. Rounding error is forced onto the largest component so
// the integer node values sum exactly to own.Cycles.
func (b *Binner) flushProf(own BinnerStats) {
	bp := b.prof
	if bp == nil || bp.flushed {
		return
	}
	bp.flushed = true
	comps := []struct {
		module, stage, reason string
		cycles                float64
		events                int64
	}{
		{"binner", "preprocess", hwprof.ReasonCompute, bp.compute, own.Items},
		{"binner", "preprocess", hwprof.ReasonFIFOFull, bp.fifoFull, bp.bpN},
		{"binner", "read", hwprof.ReasonMemWait, bp.stall, bp.stallN},
		{"binner", "write", hwprof.ReasonMemWait, bp.memWait, own.MemWriteOps},
		{"binner", "update", hwprof.ReasonFIFOEmpty, bp.fifoEmpty, own.Items},
		{"mem", "update", hwprof.ReasonSpike, bp.spike, bp.spikeN},
	}
	ints := make([]int64, len(comps))
	var sum int64
	largest := 0
	for i, c := range comps {
		ints[i] = int64(c.cycles + 0.5)
		sum += ints[i]
		if c.cycles > comps[largest].cycles {
			largest = i
		}
	}
	ints[largest] += own.Cycles - sum
	for i, c := range comps {
		n := bp.p.Node(bp.lane, c.module, c.stage, c.reason)
		n.Add(ints[i])
		n.AddEvents(c.events)
	}
	// Event-only nodes: happenings whose cycle cost is zero (cache hits) or
	// already attributed above (ECC corrections ride the memory op periods).
	bp.p.Node(bp.lane, "cache", "lookup", "hit").AddEvents(own.CacheHits)
	bp.p.Node(bp.lane, "cache", "lookup", "miss").AddEvents(own.CacheMisses)
	bp.p.Node(bp.lane, "mem", "update", hwprof.ReasonECC).AddEvents(own.FaultsCorrected)
	bp.p.Node(bp.lane, "mem", "update", "quarantine").AddEvents(own.BinsQuarantined)
}

// ChargeProfile attributes the chain run's cycles to profile nodes under
// the given lane frame, decomposing the critical block's completion per the
// Table 2 formulas: memory scan-out (ScanCyclesPerBin·Δ per pass), the
// daisy-chain pass-through to the block's slot, and the block's own
// processing as the remainder. The three node values sum exactly to
// TotalCycles, so the chain keeps the profile/arithmetic consistency
// invariant. No-op on a nil profiler.
func (r ChainResult) ChargeProfile(p *hwprof.Profiler, lane string) {
	if p == nil || r.TotalCycles <= 0 {
		return
	}
	crit := -1
	for i, t := range r.Timings {
		if crit < 0 || t.CompletionCycles > r.Timings[crit].CompletionCycles {
			crit = i
		}
	}
	total := r.TotalCycles
	blockName := "block"
	var scanPart, daisy int64
	scans := int64(1)
	if crit >= 0 {
		t := r.Timings[crit]
		blockName = t.Name
		scans = int64(t.Scans)
		scanPart = r.ScanCyclesPerBin * r.Delta * scans
		daisy = int64(t.Position) * r.BlockPassCycles
	}
	if daisy > total {
		daisy = total
	}
	if scanPart > total-daisy {
		scanPart = total - daisy
	}
	blockPart := total - daisy - scanPart

	scan := p.Node(lane, "chain", "scan", hwprof.ReasonMemWait)
	scan.Add(scanPart)
	scan.AddEvents(scans)
	p.Node(lane, "chain", "daisy", hwprof.ReasonCompute).Add(daisy)
	p.Node(lane, "chain", blockName, hwprof.ReasonCompute).Add(blockPart)
}
