package core

import (
	"math"
	"testing"
	"testing/quick"

	"streamhist/internal/datagen"
	"streamhist/internal/hw"
)

func TestParallelBinnerFunctionalEquivalence(t *testing.T) {
	// Replication must not change the result: merged partial counts equal
	// a single Binner's counts for any input and any replica count.
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%7) + 1
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
		}
		pb, err := NewParallelBinner(n, DefaultBinnerConfig(), 0, 1<<16-1, 1)
		if err != nil {
			return false
		}
		pb.PushAll(vals)
		merged, _, err := pb.Finish()
		if err != nil {
			return false
		}
		want := datagen.Counts(vals)
		if merged.Total() != int64(len(vals)) {
			return false
		}
		for v, c := range want {
			if merged.CountValue(v) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParallelBinnerThroughputScalesLinearly(t *testing.T) {
	// Figure 23: "achieving higher data rates by replication". With a
	// worst-case (never-hitting) stream, k replicas sustain ~k × 20 M/s.
	clk := hw.NewClock(hw.DefaultClockHz)
	vals := make([]int64, 240_000)
	for i := range vals {
		vals[i] = int64(i%4096) * int64(hw.DefaultBinsPerLine)
	}
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		pb, err := NewParallelBinner(n, DefaultBinnerConfig(), 0, 4096*8, 1)
		if err != nil {
			t.Fatal(err)
		}
		pb.PushAll(vals)
		_, stats, err := pb.Finish()
		if err != nil {
			t.Fatal(err)
		}
		rate := stats.ValuesPerSecond(clk)
		if n == 1 {
			base = rate
			if math.Abs(base-20e6)/20e6 > 0.03 {
				t.Fatalf("single-replica rate = %.1f M/s, want 20", base/1e6)
			}
			continue
		}
		if math.Abs(rate-float64(n)*base)/(float64(n)*base) > 0.05 {
			t.Errorf("%d replicas: rate %.1f M/s, want ~%.1f M/s", n, rate/1e6, float64(n)*base/1e6)
		}
	}
}

func TestParallelBinnerAggregationConstantInReplicas(t *testing.T) {
	// The partial-count merge cost depends on Δ only, not on the number
	// of replicas ("aggregated in constant time", §7).
	var aggCycles []int64
	for _, n := range []int{1, 2, 8} {
		pb, err := NewParallelBinner(n, DefaultBinnerConfig(), 0, 79999, 1)
		if err != nil {
			t.Fatal(err)
		}
		pb.PushAll(datagen.Take(datagen.NewUniform(1, 0, 80000), 10000))
		_, stats, err := pb.Finish()
		if err != nil {
			t.Fatal(err)
		}
		aggCycles = append(aggCycles, stats.AggregationCycles)
	}
	if aggCycles[0] != aggCycles[1] || aggCycles[1] != aggCycles[2] {
		t.Errorf("aggregation cycles vary with replica count: %v", aggCycles)
	}
	if aggCycles[0] != 10000 { // 80000 bins / 8 per line
		t.Errorf("aggregation cycles = %d, want 10000", aggCycles[0])
	}
}

func TestReplicasForLineRate(t *testing.T) {
	// §7's sizing: a 10 Gbps single-column stream is 312.5 M values/s.
	if got := ReplicasForLineRate(10, 20e6); got != 16 {
		t.Errorf("10 Gbps at worst-case rate needs %d replicas, want 16", got)
	}
	if got := ReplicasForLineRate(10, 50e6); got != 7 {
		t.Errorf("10 Gbps at best-case rate needs %d replicas, want 7", got)
	}
	if got := ReplicasForLineRate(1, 20e6); got != 2 {
		t.Errorf("1 Gbps needs %d replicas, want 2", got)
	}
	if got := ReplicasForLineRate(0.1, 20e6); got != 1 {
		t.Errorf("0.1 Gbps needs %d replicas, want 1", got)
	}
}

func TestLineRateGbps(t *testing.T) {
	if got := LineRateGbps(312.5e6); math.Abs(got-10) > 1e-9 {
		t.Errorf("312.5 M values/s = %.2f Gbps, want 10", got)
	}
	if got := LineRateGbps(20e6); math.Abs(got-0.64) > 1e-9 {
		t.Errorf("20 M values/s = %.3f Gbps, want 0.64", got)
	}
}

func TestParallelBinnerHistogramModuleUnchanged(t *testing.T) {
	// §7: "The histogram module would not need to be modified" — the
	// merged vector feeds the same chain and produces the same histograms
	// as the single-binner path.
	vals := datagen.Take(datagen.NewZipf(9, 0, 3000, 0.8, true), 60000)

	single := NewBinner(DefaultBinnerConfig(), mustRange(t, 0, 2999))
	single.PushAll(vals)
	sv, _ := single.Finish()
	sBlk := NewEquiDepthBlock(32, sv.Total())
	NewScanner().Run(sv, sBlk)

	pb, err := NewParallelBinner(4, DefaultBinnerConfig(), 0, 2999, 1)
	if err != nil {
		t.Fatal(err)
	}
	pb.PushAll(vals)
	mv, _, err := pb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	pBlk := NewEquiDepthBlock(32, mv.Total())
	NewScanner().Run(mv, pBlk)

	a, b := sBlk.Result(), pBlk.Result()
	if len(a) != len(b) {
		t.Fatalf("bucket counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("bucket %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNewParallelBinnerValidation(t *testing.T) {
	if _, err := NewParallelBinner(0, DefaultBinnerConfig(), 0, 10, 1); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := NewParallelBinner(2, DefaultBinnerConfig(), 10, 0, 1); err == nil {
		t.Error("empty range accepted")
	}
}

func mustRange(t *testing.T, min, max int64) *Preprocessor {
	t.Helper()
	pre, err := RangeFor(min, max, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pre
}
