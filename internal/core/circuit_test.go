package core

import (
	"testing"

	"streamhist/internal/bins"
	"streamhist/internal/datagen"
	"streamhist/internal/hist"
	"streamhist/internal/page"
	"streamhist/internal/table"
	"streamhist/internal/tpch"
)

func TestCircuitEndToEndMatchesSoftwareReference(t *testing.T) {
	// Full path: relation → pages → Parser → Binner → blocks, compared
	// against histograms built directly from the column.
	rel := tpch.Lineitem(20000, 1, 7)
	res, err := ProcessRelation(rel, "l_quantity", nil)
	if err != nil {
		t.Fatal(err)
	}
	col := rel.ColumnByName("l_quantity")
	truth := bins.Build(col, 1)

	if res.Bins.Total() != int64(len(col)) {
		t.Fatalf("binned %d values, want %d", res.Bins.Total(), len(col))
	}

	wantED := hist.BuildEquiDepth(truth, 256)
	if len(res.EquiDepth.Buckets) != len(wantED.Buckets) {
		t.Fatalf("equi-depth buckets %d != %d", len(res.EquiDepth.Buckets), len(wantED.Buckets))
	}
	for i := range wantED.Buckets {
		if res.EquiDepth.Buckets[i] != wantED.Buckets[i] {
			t.Errorf("equi-depth bucket %d differs", i)
		}
	}

	wantTop := hist.BuildTopK(truth, 64)
	for i := range wantTop {
		if res.TopK[i] != wantTop[i] {
			t.Errorf("topk entry %d differs: %+v != %+v", i, res.TopK[i], wantTop[i])
		}
	}

	wantMD := hist.BuildMaxDiff(truth, 64)
	for i := range wantMD.Buckets {
		if res.MaxDiff.Buckets[i] != wantMD.Buckets[i] {
			t.Errorf("max-diff bucket %d differs", i)
		}
	}

	wantC := hist.BuildCompressed(truth, 64, 64)
	for i := range wantC.Frequent {
		if res.Compressed.Frequent[i] != wantC.Frequent[i] {
			t.Errorf("compressed frequent %d differs", i)
		}
	}
	for i := range wantC.Buckets {
		if res.Compressed.Buckets[i] != wantC.Buckets[i] {
			t.Errorf("compressed bucket %d differs", i)
		}
	}
}

func TestCircuitDecimalColumn(t *testing.T) {
	rel := tpch.Lineitem(5000, 1, 8)
	res, err := ProcessRelation(rel, "l_extendedprice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins.Total() != 5000 {
		t.Fatalf("binned %d values", res.Bins.Total())
	}
	if res.EquiDepth == nil || len(res.EquiDepth.Buckets) == 0 {
		t.Fatal("no equi-depth histogram")
	}
}

func TestCircuitDateUnpackedColumn(t *testing.T) {
	// Oracle-style unpacked dates must flow through parser+preprocessor.
	sch := table.NewSchema(table.Column{Name: "d", Type: table.DateUnpacked})
	rel := table.NewRelation("dates", sch)
	rng := datagen.NewRNG(9)
	for i := 0; i < 3000; i++ {
		rel.Append(table.Row{10000 + rng.Int63n(365)})
	}
	res, err := ProcessRelation(rel, "d", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins.Total() != 3000 {
		t.Fatalf("binned %d values", res.Bins.Total())
	}
	truth := bins.Build(rel.ColumnByName("d"), 1)
	if res.Bins.Cardinality() != truth.Cardinality() {
		t.Errorf("cardinality %d != %d", res.Bins.Cardinality(), truth.Cardinality())
	}
}

func TestCircuitSelectiveBlocks(t *testing.T) {
	rel := tpch.Lineitem(2000, 1, 10)
	res, err := ProcessRelation(rel, "l_quantity", func(c Config) Config {
		c.TopK = 0
		c.MaxDiffBuckets = 0
		c.CompressedBuckets = 0
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopK != nil || res.MaxDiff != nil || res.Compressed != nil {
		t.Error("disabled blocks produced results")
	}
	if res.EquiDepth == nil {
		t.Error("enabled block missing")
	}
}

func TestCircuitTimingFields(t *testing.T) {
	rel := tpch.Lineitem(10000, 1, 11)
	res, err := ProcessRelation(rel, "l_quantity", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BinningSeconds <= 0 || res.HistogramSeconds <= 0 {
		t.Errorf("phases: binning=%v histogram=%v", res.BinningSeconds, res.HistogramSeconds)
	}
	if res.TotalSeconds < res.BinningSeconds+res.HistogramSeconds {
		t.Error("total below the sum of phases")
	}
	// The "bump in the wire": added host-path latency is micro-scale and
	// independent of the table size.
	if res.HostPathAddedSeconds <= 0 || res.HostPathAddedSeconds > 1e-3 {
		t.Errorf("host path latency = %v", res.HostPathAddedSeconds)
	}
	big := tpch.Lineitem(20000, 1, 11)
	res2, _ := ProcessRelation(big, "l_quantity", nil)
	if res2.HostPathAddedSeconds != res.HostPathAddedSeconds {
		t.Error("host-path latency should not depend on table size")
	}
}

func TestCircuitRejectsBadConfig(t *testing.T) {
	if _, err := NewCircuit(Config{Min: 10, Max: 5}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestProcessRelationUnknownColumn(t *testing.T) {
	rel := tpch.Lineitem(100, 1, 12)
	if _, err := ProcessRelation(rel, "nope", nil); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestProcessRelationEmptyColumn(t *testing.T) {
	rel := table.NewRelation("e", table.NewSchema(table.Column{Name: "v", Type: table.Int64}))
	if _, err := ProcessRelation(rel, "v", nil); err == nil {
		t.Error("empty relation accepted")
	}
}

func TestCircuitHistogramVariety(t *testing.T) {
	// §6.3 "Histogram variety": one pass provides TopK + equi-depth +
	// Max-diff + Compressed together, the superset of what the four
	// commercial engines offer individually.
	rel := tpch.Synthetic(20000, 1, 2048, 0.75, 13)
	res, err := ProcessRelation(rel, "c0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 || res.EquiDepth == nil || res.MaxDiff == nil || res.Compressed == nil {
		t.Error("missing a histogram flavour")
	}
}

func TestCircuitProcessValuesAvoidsParser(t *testing.T) {
	vals := datagen.Take(datagen.NewUniform(3, 0, 1000), 5000)
	cfg := DefaultConfig(ColumnSpec{Offset: 0, Type: table.Int64}, 0, 999)
	c, err := NewCircuit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.ProcessValues(vals)
	if res.Bins.Total() != 5000 {
		t.Errorf("binned %d", res.Bins.Total())
	}
}

func TestCircuitPagesRoundTrip(t *testing.T) {
	// Process(pages) path (not just ProcessRelation).
	rel := tpch.Lineitem(3000, 1, 14)
	spec, _ := SpecFor(rel.Schema, "l_quantity")
	cfg := DefaultConfig(spec, 1, 50)
	c, err := NewCircuit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Process(page.Encode(rel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins.Total() != 3000 {
		t.Errorf("binned %d", res.Bins.Total())
	}
}
