package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"streamhist/internal/table"
)

// The host configures the statistical circuit by piggybacking "a metadata
// packet ... on the original command to the data storage" (§4). Command is
// that packet: which bytes of each row hold the column, how to map values
// to bins, and how each statistic block should be parameterised. The
// wire format is a fixed 44-byte little-endian layout:
//
//	[0:2]   magic 0xACC0
//	[2:4]   column byte offset
//	[4]     column type
//	[5]     flags (reserved, zero)
//	[6:14]  min value
//	[14:22] max value
//	[22:30] divisor
//	[30:32] TopK T
//	[32:34] equi-depth buckets B
//	[34:36] max-diff buckets
//	[36:38] compressed T
//	[38:40] compressed buckets
//	[40:44] reserved (zero)
type Command struct {
	Column            ColumnSpec
	Min, Max          int64
	Divisor           int64
	TopK              int
	EquiDepthBuckets  int
	MaxDiffBuckets    int
	CompressedT       int
	CompressedBuckets int
}

// CommandSize is the packet's wire size in bytes.
const CommandSize = 44

// commandMagic identifies a configuration packet.
const commandMagic uint16 = 0xACC0

// ErrBadCommand reports an undecodable or invalid packet.
var ErrBadCommand = errors.New("core: bad configuration command")

// CommandFromConfig extracts the wire-transmissible part of a Config.
func CommandFromConfig(cfg Config) Command {
	return Command{
		Column:            cfg.Column,
		Min:               cfg.Min,
		Max:               cfg.Max,
		Divisor:           cfg.Divisor,
		TopK:              cfg.TopK,
		EquiDepthBuckets:  cfg.EquiDepthBuckets,
		MaxDiffBuckets:    cfg.MaxDiffBuckets,
		CompressedT:       cfg.CompressedT,
		CompressedBuckets: cfg.CompressedBuckets,
	}
}

// Config expands the command back into a full circuit configuration with
// the default platform model.
func (c Command) Config() Config {
	cfg := DefaultConfig(c.Column, c.Min, c.Max)
	cfg.Divisor = c.Divisor
	cfg.TopK = c.TopK
	cfg.EquiDepthBuckets = c.EquiDepthBuckets
	cfg.MaxDiffBuckets = c.MaxDiffBuckets
	cfg.CompressedT = c.CompressedT
	cfg.CompressedBuckets = c.CompressedBuckets
	return cfg
}

// Validate checks the command's internal consistency.
func (c Command) Validate() error {
	if c.Max < c.Min {
		return fmt.Errorf("%w: empty value range [%d, %d]", ErrBadCommand, c.Min, c.Max)
	}
	if c.Divisor < 1 {
		return fmt.Errorf("%w: divisor %d", ErrBadCommand, c.Divisor)
	}
	if c.Column.Offset < 0 || c.Column.Offset > 0xffff {
		return fmt.Errorf("%w: column offset %d", ErrBadCommand, c.Column.Offset)
	}
	switch c.Column.Type {
	case table.Int64, table.Decimal, table.Date, table.DateUnpacked:
	default:
		return fmt.Errorf("%w: column type %d", ErrBadCommand, c.Column.Type)
	}
	for _, p := range []struct {
		name string
		v    int
	}{
		{"TopK", c.TopK},
		{"equi-depth buckets", c.EquiDepthBuckets},
		{"max-diff buckets", c.MaxDiffBuckets},
		{"compressed T", c.CompressedT},
		{"compressed buckets", c.CompressedBuckets},
	} {
		if p.v < 0 || p.v > 0xffff {
			return fmt.Errorf("%w: %s %d out of range", ErrBadCommand, p.name, p.v)
		}
	}
	if c.TopK == 0 && c.EquiDepthBuckets == 0 && c.MaxDiffBuckets == 0 &&
		(c.CompressedBuckets == 0 || c.CompressedT == 0) {
		return fmt.Errorf("%w: no statistic block enabled", ErrBadCommand)
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c Command) MarshalBinary() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, CommandSize)
	binary.LittleEndian.PutUint16(out[0:], commandMagic)
	binary.LittleEndian.PutUint16(out[2:], uint16(c.Column.Offset))
	out[4] = byte(c.Column.Type)
	binary.LittleEndian.PutUint64(out[6:], uint64(c.Min))
	binary.LittleEndian.PutUint64(out[14:], uint64(c.Max))
	binary.LittleEndian.PutUint64(out[22:], uint64(c.Divisor))
	binary.LittleEndian.PutUint16(out[30:], uint16(c.TopK))
	binary.LittleEndian.PutUint16(out[32:], uint16(c.EquiDepthBuckets))
	binary.LittleEndian.PutUint16(out[34:], uint16(c.MaxDiffBuckets))
	binary.LittleEndian.PutUint16(out[36:], uint16(c.CompressedT))
	binary.LittleEndian.PutUint16(out[38:], uint16(c.CompressedBuckets))
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Command) UnmarshalBinary(data []byte) error {
	if len(data) != CommandSize {
		return fmt.Errorf("%w: %d bytes, want %d", ErrBadCommand, len(data), CommandSize)
	}
	if binary.LittleEndian.Uint16(data[0:]) != commandMagic {
		return fmt.Errorf("%w: bad magic", ErrBadCommand)
	}
	out := Command{
		Column: ColumnSpec{
			Offset: int(binary.LittleEndian.Uint16(data[2:])),
			Type:   table.Type(data[4]),
		},
		Min:               int64(binary.LittleEndian.Uint64(data[6:])),
		Max:               int64(binary.LittleEndian.Uint64(data[14:])),
		Divisor:           int64(binary.LittleEndian.Uint64(data[22:])),
		TopK:              int(binary.LittleEndian.Uint16(data[30:])),
		EquiDepthBuckets:  int(binary.LittleEndian.Uint16(data[32:])),
		MaxDiffBuckets:    int(binary.LittleEndian.Uint16(data[34:])),
		CompressedT:       int(binary.LittleEndian.Uint16(data[36:])),
		CompressedBuckets: int(binary.LittleEndian.Uint16(data[38:])),
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*c = out
	return nil
}

// NewCircuitFromCommand decodes a configuration packet and builds the
// circuit it describes — the accelerator's control-plane entry point.
func NewCircuitFromCommand(packet []byte) (*Circuit, error) {
	var cmd Command
	if err := cmd.UnmarshalBinary(packet); err != nil {
		return nil, err
	}
	return NewCircuit(cmd.Config())
}
