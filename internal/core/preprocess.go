package core

import (
	"fmt"
)

// Preprocessor translates column values into bin addresses (§5.1.1): it
// subtracts the column minimum and optionally divides by a constant so that
// several consecutive values share a bin (e.g. second-granularity timestamps
// binned per day). Type unpacking (Oracle dates) has already happened in the
// Parser's value decoding, exactly where the paper places "convert a handful
// of predefined unpacked types to integers".
//
// Values outside [Min, Min+NumBins*Divisor) cannot be mapped to a bin; the
// hardware would drop them and raise a flag, and the model counts them.
type Preprocessor struct {
	// Min is the smallest value the host declared for the column.
	Min int64
	// Divisor coarsens the mapping; must be >= 1.
	Divisor int64
	// NumBins is the size of the memory region reserved for bins (Δ).
	NumBins int64

	dropped int64
}

// NewPreprocessor validates and builds a preprocessor.
func NewPreprocessor(min, divisor, numBins int64) (*Preprocessor, error) {
	if divisor < 1 {
		return nil, fmt.Errorf("core: preprocessor divisor must be >= 1, got %d", divisor)
	}
	if numBins < 1 {
		return nil, fmt.Errorf("core: preprocessor needs at least one bin, got %d", numBins)
	}
	return &Preprocessor{Min: min, Divisor: divisor, NumBins: numBins}, nil
}

// RangeFor sizes a preprocessor to cover [min, max] at the given divisor.
func RangeFor(min, max, divisor int64) (*Preprocessor, error) {
	if max < min {
		return nil, fmt.Errorf("core: preprocessor range [%d, %d] is empty", min, max)
	}
	if divisor < 1 {
		return nil, fmt.Errorf("core: preprocessor divisor must be >= 1, got %d", divisor)
	}
	return NewPreprocessor(min, divisor, (max-min)/divisor+1)
}

// Address maps a value to its bin address; ok is false for out-of-range
// values (which are counted as dropped).
func (p *Preprocessor) Address(value int64) (addr int64, ok bool) {
	if value < p.Min {
		p.dropped++
		return 0, false
	}
	a := (value - p.Min) / p.Divisor
	if a >= p.NumBins {
		p.dropped++
		return 0, false
	}
	return a, true
}

// Dropped returns how many values fell outside the configured range.
func (p *Preprocessor) Dropped() int64 { return p.dropped }
