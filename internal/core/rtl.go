package core

import (
	"streamhist/internal/bins"
	"streamhist/internal/hw"
)

// RTLBinner is a literal cycle-stepped simulation of the binning pipeline
// of Figure 10 — every clock tick advances the PREPROCESS, READ, UPDATE and
// WRITE stages one step, the memory port issues at most what its op-rate
// budget allows, reads come back after the access latency, and the
// write-through cache forwards in-flight lines.
//
// The fast Binner (binner.go) advances virtual time per item, which is
// exact for steady-state throughput but approximates transient interleaving.
// RTLBinner is the ground-truth model the fast one is validated against in
// tests: identical functional output always, throughput within a few
// percent on the Table 1 workloads. It is ~50× slower per item, so the
// experiment harness uses the fast model and the test suite uses this one
// on smaller inputs.
type RTLBinner struct {
	cfg   BinnerConfig
	pre   *Preprocessor
	cache *hw.Cache
	vec   *bins.Vector

	cycle int64

	// Memory port: a token bucket in units of one random op.
	credit         float64
	creditPerCycle float64
	burstCost      float64
	latency        int64

	// Pipeline issue pacing.
	issueEvery  float64
	issueCarry  float64
	issuedItems int64

	// Stage queues. readQ feeds the READ stage; waitQ is the FIFO between
	// READ and UPDATE (§5.1.2); writeQ feeds the WRITE stage.
	readQ  []rtlItem
	waitQ  []rtlItem
	writeQ []rtlItem

	// pendingWrites maps a memory line to its latest commit cycle.
	pendingWrites map[int64]int64

	lastCommit int64
	stats      BinnerStats
}

// rtlItem is one value in flight.
type rtlItem struct {
	addr, line  int64
	dataReadyAt int64
	forwarded   bool
	counted     bool // hit/miss already recorded (avoids recount on stalls)
}

// rtlFIFOCap bounds the READ→UPDATE queue, providing backpressure.
const rtlFIFOCap = 64

// NewRTLBinner builds the tick-level model.
func NewRTLBinner(cfg BinnerConfig, pre *Preprocessor) *RTLBinner {
	if cfg.Clock.Hz == 0 {
		cfg.Clock = hw.NewClock(hw.DefaultClockHz)
	}
	if cfg.Mem.BinsPerLine == 0 {
		cfg.Mem = hw.DefaultMemParams()
	}
	if cfg.PipelineCyclesPerItem == 0 {
		cfg.PipelineCyclesPerItem = float64(hw.DefaultClockHz) / 75_000_000
	}
	burstCost := float64(cfg.Mem.RandomOpsPerSec) / float64(cfg.Mem.BurstOpsPerSec)
	return &RTLBinner{
		cfg:            cfg,
		pre:            pre,
		cache:          hw.NewCache(cfg.CacheBytes, hw.LineBytes),
		vec:            bins.FromCounts(pre.Min, pre.Divisor, make([]int64, pre.NumBins)),
		creditPerCycle: float64(cfg.Mem.RandomOpsPerSec) / float64(cfg.Clock.Hz),
		burstCost:      burstCost,
		latency:        cfg.Mem.LatencyCycles,
		issueEvery:     cfg.PipelineCyclesPerItem,
		pendingWrites:  make(map[int64]int64),
	}
}

// Run streams the values through the pipeline tick by tick and returns the
// binned view and statistics.
func (r *RTLBinner) Run(values []int64) (*bins.Vector, BinnerStats) {
	idx := 0
	for idx < len(values) || len(r.readQ) > 0 || len(r.waitQ) > 0 || len(r.writeQ) > 0 {
		r.cycle++
		r.credit += r.creditPerCycle
		if r.credit > 2 {
			r.credit = 2 // the port cannot bank unused slots indefinitely
		}

		r.tickWrite()
		r.tickUpdate()
		r.tickRead()
		idx = r.tickInput(values, idx)

		// Retire old pending-write records.
		if len(r.pendingWrites) > 4*r.cache.Lines()+256 {
			for l, c := range r.pendingWrites {
				if c <= r.cycle {
					delete(r.pendingWrites, l)
				}
			}
		}
	}
	r.stats.Cycles = r.lastCommit
	r.stats.CacheHits = r.cache.Hits()
	r.stats.CacheMisses = r.cache.Misses()
	return r.vec, r.stats
}

// tickWrite issues the oldest completed update's write when the port has
// budget. Writes have port priority so the pipeline drains. The burst
// discount applies only to lines that were already cache-resident when the
// item entered the pipeline (row-buffer locality); a cold line's first
// write pays the random-access rate, which is what bounds the worst case
// at 20 M values/s.
func (r *RTLBinner) tickWrite() {
	if len(r.writeQ) == 0 {
		return
	}
	it := r.writeQ[0]
	cost := 1.0
	if it.forwarded {
		cost = r.burstCost
	}
	if r.credit < cost {
		return
	}
	r.credit -= cost
	commit := r.cycle + r.latency
	r.pendingWrites[it.line] = commit
	if commit > r.lastCommit {
		r.lastCommit = commit
	}
	r.stats.MemWriteOps++
	r.writeQ = r.writeQ[1:]
}

// tickUpdate pops the FIFO head once its data is available (forwarded from
// the cache or returned by memory), increments the bin, and hands the line
// to the write stage. One update per cycle.
func (r *RTLBinner) tickUpdate() {
	if len(r.waitQ) == 0 {
		return
	}
	it := r.waitQ[0]
	if !it.forwarded && r.cycle < it.dataReadyAt {
		return
	}
	r.vec.AddCount(r.pre.Min+it.addr*r.pre.Divisor, 1)
	r.waitQ = r.waitQ[1:]
	r.writeQ = append(r.writeQ, it)
}

// tickRead serves the oldest preprocessed item. A cache hit forwards the
// line immediately (its freshest value lives with the in-flight items
// ahead in the FIFO). A miss needs port budget, must respect in-flight
// writes to the same line (the RAW hazard of §5.1.3), and registers the
// line in the cache right away — the lookup table "stores the memory
// addresses belonging to the items currently in the pipeline", so
// subsequent same-line items forward instead of re-reading.
func (r *RTLBinner) tickRead() {
	if len(r.readQ) == 0 || len(r.waitQ) >= rtlFIFOCap {
		return
	}
	it := &r.readQ[0]
	if r.cache.Contains(it.line) {
		if !it.counted {
			r.cache.Lookup(it.line) // record the hit
			it.counted = true
		}
		it.forwarded = true
		r.waitQ = append(r.waitQ, *it)
		r.readQ = r.readQ[1:]
		return
	}
	if !it.counted {
		r.cache.Lookup(it.line) // record the miss
		it.counted = true
	}
	if commit, busy := r.pendingWrites[it.line]; busy && commit > r.cycle {
		r.stats.StallCycles++
		return
	}
	if r.credit < 1 {
		return
	}
	r.credit--
	it.dataReadyAt = r.cycle + r.latency
	r.stats.MemReadOps++
	r.cache.Insert(it.line)
	r.waitQ = append(r.waitQ, *it)
	r.readQ = r.readQ[1:]
}

// tickInput admits new values at the pipeline issue rate, subject to
// backpressure from the read queue.
func (r *RTLBinner) tickInput(values []int64, idx int) int {
	r.issueCarry++
	for r.issueCarry >= r.issueEvery && idx < len(values) && len(r.readQ) < rtlFIFOCap {
		r.issueCarry -= r.issueEvery
		v := values[idx]
		idx++
		addr, ok := r.pre.Address(v)
		if !ok {
			r.stats.Dropped++
			continue
		}
		r.stats.Items++
		r.readQ = append(r.readQ, rtlItem{addr: addr, line: addr / int64(r.cfg.Mem.BinsPerLine)})
	}
	if r.issueCarry > 4*r.issueEvery {
		r.issueCarry = 4 * r.issueEvery // stalled input cannot bank issue slots forever
	}
	return idx
}
