package core

import (
	"testing"

	"streamhist/internal/faults"
)

func faultBinner(t *testing.T, inj *faults.Injector) *Binner {
	t.Helper()
	pre, err := RangeFor(0, 255, 1)
	if err != nil {
		t.Fatalf("RangeFor: %v", err)
	}
	cfg := DefaultBinnerConfig()
	cfg.Faults = inj
	return NewBinner(cfg, pre)
}

// Read-path upsets are always corrected by ECC, so the binned view stays
// exactly equal to the fault-free run and only FaultsCorrected moves.
func TestBinnerReadFlipsStayExact(t *testing.T) {
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = int64(i % 256)
	}

	clean := faultBinner(t, nil)
	clean.PushAll(vals)
	wantVec, _ := clean.Finish()

	inj := faults.New(5, faults.Profile{faults.MemReadFlip: 0.3, faults.MemLatencySpike: 0.1})
	b := faultBinner(t, inj)
	b.PushAll(vals)
	vec, stats := b.Finish()

	for i := 0; i < vec.NumBins(); i++ {
		if vec.Count(i) != wantVec.Count(i) {
			t.Fatalf("bin %d: %d != fault-free %d", i, vec.Count(i), wantVec.Count(i))
		}
	}
	if stats.FaultsCorrected == 0 {
		t.Fatal("no corrections recorded despite 30% read-flip rate")
	}
	if stats.BinsQuarantined != 0 {
		t.Fatalf("read flips must never quarantine, got %d", stats.BinsQuarantined)
	}
}

// Write-path upsets either leave an exact view (everything corrected) or
// quarantine bins — in which case the loss must be visible through
// BinsQuarantined and a reduced total. No silent third state.
func TestBinnerWriteFlipsNeverSilent(t *testing.T) {
	vals := make([]int64, 2000)
	for i := range vals {
		vals[i] = int64(i % 64)
	}
	for seed := uint64(0); seed < 25; seed++ {
		inj := faults.New(seed, faults.Profile{faults.MemWriteFlip: 0.02})
		b := faultBinner(t, inj)
		b.PushAll(vals)
		vec, stats := b.Finish()
		switch {
		case stats.BinsQuarantined == 0:
			if vec.Total() != int64(len(vals)) {
				t.Fatalf("seed %d: total %d != %d with no quarantine", seed, vec.Total(), len(vals))
			}
		default:
			if vec.Total() >= int64(len(vals)) {
				t.Fatalf("seed %d: quarantined %d bins yet total %d not reduced",
					seed, stats.BinsQuarantined, vec.Total())
			}
		}
	}
}

// Latency spikes must stretch the completion cycle without touching counts.
func TestBinnerLatencySpikesOnlyCostCycles(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i % 100)
	}
	clean := faultBinner(t, nil)
	clean.PushAll(vals)
	cleanVec, cleanStats := clean.Finish()

	inj := faults.New(9, faults.Profile{faults.MemLatencySpike: 0.5})
	b := faultBinner(t, inj)
	b.PushAll(vals)
	vec, stats := b.Finish()

	if vec.Total() != cleanVec.Total() {
		t.Fatalf("spikes changed the total: %d != %d", vec.Total(), cleanVec.Total())
	}
	if stats.Cycles <= cleanStats.Cycles {
		t.Fatalf("50%% spike rate did not stretch completion: %d <= %d", stats.Cycles, cleanStats.Cycles)
	}
}

// Fault counters must survive a lane merge, and merging a faulted lane into
// a clean one keeps the combined view consistent.
func TestBinnerMergeCarriesFaultCounters(t *testing.T) {
	vals := make([]int64, 1500)
	for i := range vals {
		vals[i] = int64(i % 32)
	}
	inj := faults.New(2, faults.Profile{faults.MemReadFlip: 0.4})
	a := faultBinner(t, nil)
	b := faultBinner(t, inj)
	a.PushAll(vals)
	b.PushAll(vals)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	vec, stats := a.Finish()
	if vec.Total() != int64(2*len(vals)) {
		t.Fatalf("merged total %d, want %d", vec.Total(), 2*len(vals))
	}
	if stats.FaultsCorrected == 0 {
		t.Fatal("merge dropped the faulted lane's corrected counter")
	}
}

// ---- satellite: degenerate merge inputs (zero work, empty lanes) ----

// Merging a lane that binned nothing must be an exact no-op on the counts
// and must not disturb the receiving lane's completion cycle.
func TestBinnerMergeEmptyLane(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 5, 5}
	a := faultBinner(t, nil)
	a.PushAll(vals)
	empty := faultBinner(t, nil)

	_, before := a.Finish()
	if err := a.Merge(empty); err != nil {
		t.Fatalf("merge empty: %v", err)
	}
	vec, after := a.Finish()
	if vec.Total() != int64(len(vals)) {
		t.Fatalf("total %d after empty merge, want %d", vec.Total(), len(vals))
	}
	if after.Items != before.Items || after.Cycles != before.Cycles {
		t.Fatalf("empty merge disturbed stats: %+v -> %+v", before, after)
	}
}

// Two empty lanes merge into an empty view with zero-valued stats.
func TestBinnerMergeBothEmpty(t *testing.T) {
	a := faultBinner(t, nil)
	b := faultBinner(t, nil)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	vec, stats := a.Finish()
	if vec.Total() != 0 || stats.Items != 0 || stats.Cycles != 0 {
		t.Fatalf("empty+empty produced total=%d items=%d cycles=%d", vec.Total(), stats.Items, stats.Cycles)
	}
}

// Merging into an empty lane (the reverse direction) adopts the populated
// lane's counts and critical path.
func TestBinnerMergeIntoEmptyLane(t *testing.T) {
	vals := []int64{7, 7, 8, 9}
	empty := faultBinner(t, nil)
	full := faultBinner(t, nil)
	full.PushAll(vals)
	_, fullStats := full.Finish()

	if err := empty.Merge(full); err != nil {
		t.Fatalf("merge: %v", err)
	}
	vec, stats := empty.Finish()
	if vec.Total() != int64(len(vals)) {
		t.Fatalf("total %d, want %d", vec.Total(), len(vals))
	}
	if stats.Items != fullStats.Items || stats.Cycles != fullStats.Cycles {
		t.Fatalf("merged stats %+v do not adopt the populated lane's %+v", stats, fullStats)
	}
}
