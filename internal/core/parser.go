package core

import (
	"encoding/binary"
	"fmt"

	"streamhist/internal/page"
	"streamhist/internal/table"
)

// ColumnSpec is the metadata packet the host piggybacks on the read command
// (§4): which byte range of each row carries the column of interest and how
// to interpret it. The "simple counting state machine" of the Parser is
// configured from this.
type ColumnSpec struct {
	// Offset is the byte offset of the column within an encoded row.
	Offset int
	// Type determines the column's width and decoding.
	Type table.Type
}

// SpecFor derives the ColumnSpec for a named column of a schema.
func SpecFor(schema *table.Schema, column string) (ColumnSpec, error) {
	idx := schema.ColumnIndex(column)
	if idx < 0 {
		return ColumnSpec{}, fmt.Errorf("core: schema has no column %q", column)
	}
	return ColumnSpec{Offset: schema.Offset(idx), Type: schema.Column(idx).Type}, nil
}

// parserState enumerates the FSM states of the Parser.
type parserState uint8

const (
	psHeader   parserState = iota // consuming the page header
	psSkipPre                     // skipping row bytes before the column
	psColumn                      // accumulating the column's bytes
	psSkipPost                    // skipping row bytes after the column
)

// Parser is the first module of the statistical circuit (§4): a counting
// finite-state machine that walks the byte stream of database pages and
// extracts the raw values of one column. It keeps constant state — a page
// header image, per-row byte counters, and a small value accumulator —
// matching the paper's constant-space parsing claim.
type Parser struct {
	spec ColumnSpec

	state    parserState
	hdr      [page.HeaderSize]byte
	hdrFill  int
	rowWidth int
	rowsLeft int
	pageByte int // bytes consumed of the current page (to skip padding)

	pos     int // bytes consumed within the current row section
	colBuf  [8]byte
	colFill int

	emitted int64
	bytes   int64
}

// NewParser builds a Parser for the given column spec.
func NewParser(spec ColumnSpec) *Parser {
	return &Parser{spec: spec}
}

// Feed consumes a chunk of the page byte stream, appending every completed
// column value to out and returning the extended slice. Chunks may split
// pages, rows, and even single values at any byte boundary — the FSM carries
// its state across calls, as the hardware does across clock cycles.
func (p *Parser) Feed(chunk []byte, out []int64) ([]int64, error) {
	colWidth := p.spec.Type.Width()
	// Fast path: when the FSM sits at a page boundary and the chunk holds a
	// whole page image, decode the column with a strided walk over the page
	// buffer — zero copies into the FSM's accumulator, no per-byte loop. Any
	// anomaly (bad magic, inconsistent geometry, a validating column type)
	// falls back to the FSM below without consuming a byte, so error text,
	// byte counters, and partial output stay bit-identical to the FSM's.
	for p.state == psHeader && p.hdrFill == 0 && p.pageByte == 0 && len(chunk) >= page.Size {
		fastOut, ok := p.fastPage(chunk[:page.Size], out, colWidth)
		if !ok {
			break
		}
		out = fastOut
		chunk = chunk[page.Size:]
	}
	for _, b := range chunk {
		p.bytes++
		p.pageByte++
		switch p.state {
		case psHeader:
			p.hdr[p.hdrFill] = b
			p.hdrFill++
			if p.hdrFill == page.HeaderSize {
				if magic := uint16(p.hdr[0]) | uint16(p.hdr[1])<<8; magic != page.Magic {
					return out, fmt.Errorf("core: parser: %w: bad magic %#x", page.ErrCorrupt, magic)
				}
				p.rowsLeft = int(uint16(p.hdr[2]) | uint16(p.hdr[3])<<8)
				p.rowWidth = int(uint16(p.hdr[4]) | uint16(p.hdr[5])<<8)
				p.hdrFill = 0
				if p.rowsLeft == 0 {
					p.state = psSkipPost // page of padding only
					p.pos = 0
				} else {
					p.startRow()
				}
			}
		case psSkipPre:
			p.pos++
			if p.pos == p.spec.Offset {
				p.state = psColumn
				p.colFill = 0
			}
		case psColumn:
			p.colBuf[p.colFill] = b
			p.colFill++
			p.pos++
			if p.colFill == colWidth {
				v, _, err := page.DecodeValue(p.colBuf[:colWidth], p.spec.Type)
				if err != nil {
					return out, fmt.Errorf("core: parser: %w", err)
				}
				out = append(out, v)
				p.emitted++
				if p.pos == p.rowWidth {
					p.endRow()
				} else {
					p.state = psSkipPost
				}
			}
		case psSkipPost:
			p.pos++
			if p.rowsLeft > 0 && p.pos == p.rowWidth {
				p.endRow()
			}
		}
		// Page padding: once all rows are consumed, skip to the page end.
		if p.pageByte == page.Size {
			p.state = psHeader
			p.hdrFill = 0
			p.pageByte = 0
		}
	}
	return out, nil
}

// fastPage decodes one aligned, whole page image without running the FSM.
// It reports ok=false — having consumed nothing — whenever byte-at-a-time
// parsing could behave differently: bad magic (the FSM raises the error),
// geometry that walks outside the row region (the FSM's wrap-around
// semantics apply), or a column type whose decoder can reject values
// mid-page (DateUnpacked). On success the parser's counters advance exactly
// as the FSM would have advanced them.
func (p *Parser) fastPage(pg []byte, out []int64, colWidth int) ([]int64, bool) {
	if magic := uint16(pg[0]) | uint16(pg[1])<<8; magic != page.Magic {
		return out, false
	}
	rows := int(uint16(pg[2]) | uint16(pg[3])<<8)
	rowWidth := int(uint16(pg[4]) | uint16(pg[5])<<8)
	if rows == 0 {
		p.bytes += page.Size // page of padding only
		return out, true
	}
	if rowWidth <= 0 || page.HeaderSize+rows*rowWidth > page.Size ||
		p.spec.Offset+colWidth > rowWidth {
		return out, false
	}
	off := page.HeaderSize + p.spec.Offset
	switch p.spec.Type {
	case table.Int64, table.Decimal:
		for r := 0; r < rows; r++ {
			out = append(out, int64(binary.LittleEndian.Uint64(pg[off:])))
			off += rowWidth
		}
	case table.Date:
		for r := 0; r < rows; r++ {
			out = append(out, int64(int32(binary.LittleEndian.Uint32(pg[off:]))))
			off += rowWidth
		}
	default:
		return out, false
	}
	p.bytes += page.Size
	p.emitted += int64(rows)
	return out, true
}

// startRow arms the FSM for the next row of the current page.
func (p *Parser) startRow() {
	p.pos = 0
	if p.spec.Offset == 0 {
		p.state = psColumn
		p.colFill = 0
	} else {
		p.state = psSkipPre
	}
}

// endRow finishes the current row and either starts the next row or begins
// skipping page padding.
func (p *Parser) endRow() {
	p.rowsLeft--
	if p.rowsLeft > 0 {
		p.startRow()
	} else {
		p.state = psSkipPost
		p.pos = 0
	}
}

// Emitted returns the number of values extracted so far.
func (p *Parser) Emitted() int64 { return p.emitted }

// BytesConsumed returns the number of stream bytes processed so far.
func (p *Parser) BytesConsumed() int64 { return p.bytes }

// ParsePages is a convenience wrapper that streams whole page images through
// the FSM and returns the extracted column.
func (p *Parser) ParsePages(pages []*page.Page) ([]int64, error) {
	var out []int64
	for _, pg := range pages {
		var err error
		out, err = p.Feed(pg.Bytes(), out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
