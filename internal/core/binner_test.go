package core

import (
	"math"
	"testing"
	"testing/quick"

	"streamhist/internal/datagen"
	"streamhist/internal/hw"
)

func binnerFor(t *testing.T, min, max int64, cfg BinnerConfig) *Binner {
	t.Helper()
	pre, err := RangeFor(min, max, 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewBinner(cfg, pre)
}

func TestBinnerFunctionalCorrectness(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
		}
		pre, _ := RangeFor(0, 1<<16-1, 1)
		b := NewBinner(DefaultBinnerConfig(), pre)
		b.PushAll(vals)
		vec, stats := b.Finish()
		if stats.Items != int64(len(vals)) {
			return false
		}
		want := datagen.Counts(vals)
		if vec.Total() != int64(len(vals)) {
			return false
		}
		for v, c := range want {
			if vec.CountValue(v) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinnerCacheIsPureOptimisation(t *testing.T) {
	// Identical functional output with the cache enabled, disabled, or
	// tiny — the cache only changes timing.
	vals := datagen.Take(datagen.NewZipf(1, 0, 5000, 0.9, true), 20000)
	var reference []int64
	for _, cacheBytes := range []int{0, 64, 1024, 65536} {
		cfg := DefaultBinnerConfig()
		cfg.CacheBytes = cacheBytes
		pre, _ := RangeFor(0, 4999, 1)
		b := NewBinner(cfg, pre)
		b.PushAll(vals)
		vec, _ := b.Finish()
		counts := vec.Counts()
		if reference == nil {
			reference = append([]int64(nil), counts...)
			continue
		}
		for i := range counts {
			if counts[i] != reference[i] {
				t.Fatalf("cache %dB changed bin %d: %d != %d", cacheBytes, i, counts[i], reference[i])
			}
		}
	}
}

func TestBinnerDropsOutOfRange(t *testing.T) {
	pre, _ := RangeFor(0, 9, 1)
	b := NewBinner(DefaultBinnerConfig(), pre)
	b.PushAll([]int64{1, 2, 100, -5, 3})
	vec, stats := b.Finish()
	if stats.Items != 3 || stats.Dropped != 2 {
		t.Errorf("items=%d dropped=%d", stats.Items, stats.Dropped)
	}
	if vec.Total() != 3 {
		t.Errorf("total = %d", vec.Total())
	}
}

// antiCacheStream yields values that cycle through far more memory lines
// than the cache holds, so every access misses.
func antiCacheStream(n int) []int64 {
	const lines = 4096 // 16-line cache can never hit with a 4096-line cycle
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i%lines) * int64(hw.DefaultBinsPerLine)
	}
	return vals
}

func TestTable1WorstCase20M(t *testing.T) {
	// "Cache never hit (Worst): 20 Million values/second".
	vals := antiCacheStream(200_000)
	b := binnerFor(t, 0, 4096*8, DefaultBinnerConfig())
	b.PushAll(vals)
	_, stats := b.Finish()
	if stats.CacheHits != 0 {
		t.Fatalf("expected zero hits, got %d", stats.CacheHits)
	}
	rate := stats.ValuesPerSecond(hw.NewClock(hw.DefaultClockHz))
	if math.Abs(rate-20e6)/20e6 > 0.02 {
		t.Errorf("worst-case rate = %.2f M/s, want 20 M/s", rate/1e6)
	}
}

func TestTable1BestCase50M(t *testing.T) {
	// "Cache always hit (Best): 50 Million values/second".
	vals := make([]int64, 200_000) // constant value: all hits after the first
	b := binnerFor(t, 0, 100, DefaultBinnerConfig())
	b.PushAll(vals)
	_, stats := b.Finish()
	if stats.CacheMisses != 1 {
		t.Fatalf("expected a single compulsory miss, got %d", stats.CacheMisses)
	}
	rate := stats.ValuesPerSecond(hw.NewClock(hw.DefaultClockHz))
	if math.Abs(rate-50e6)/50e6 > 0.02 {
		t.Errorf("best-case rate = %.2f M/s, want 50 M/s", rate/1e6)
	}
}

func TestTable1PipelineIdeal75M(t *testing.T) {
	// "Pipeline (Ideal): 75 Million values/second" — with memory taken out
	// of the equation the 2-cycle issue rate is the limit.
	cfg := DefaultBinnerConfig()
	cfg.Mem.RandomOpsPerSec = 1 << 40
	cfg.Mem.BurstOpsPerSec = 1 << 40
	cfg.Mem.LatencyCycles = 0
	vals := antiCacheStream(200_000)
	b := binnerFor(t, 0, 4096*8, cfg)
	b.PushAll(vals)
	_, stats := b.Finish()
	rate := stats.ValuesPerSecond(hw.NewClock(hw.DefaultClockHz))
	if math.Abs(rate-75e6)/75e6 > 0.02 {
		t.Errorf("ideal rate = %.2f M/s, want 75 M/s", rate/1e6)
	}
}

func TestBinnerSkewIndependentWithCache(t *testing.T) {
	// §5.1.3: "We want to guarantee same performance for the Binner
	// module, regardless of the amount of skew." With the cache on,
	// heavily skewed input must not be slower than spread-out input —
	// and there must be no RAW stalls.
	n := 100_000
	skewed := make([]int64, n) // all the same value
	uniform := datagen.Take(datagen.NewUniform(2, 0, 32768), n)

	run := func(vals []int64, cacheBytes int) BinnerStats {
		cfg := DefaultBinnerConfig()
		cfg.CacheBytes = cacheBytes
		b := binnerFor(t, 0, 32767, cfg)
		b.PushAll(vals)
		_, stats := b.Finish()
		return stats
	}

	withCacheSkew := run(skewed, hw.DefaultCacheBytes)
	withCacheUni := run(uniform, hw.DefaultCacheBytes)
	if withCacheSkew.StallCycles != 0 {
		t.Errorf("cache enabled but %d stall cycles on skewed input", withCacheSkew.StallCycles)
	}
	if withCacheSkew.Cycles > withCacheUni.Cycles {
		t.Errorf("skewed input slower than uniform with cache: %d > %d cycles",
			withCacheSkew.Cycles, withCacheUni.Cycles)
	}

	// Without the cache, the same skewed input must stall on RAW hazards.
	noCacheSkew := run(skewed, 0)
	if noCacheSkew.StallCycles == 0 {
		t.Error("cache disabled but skewed input shows no RAW stalls")
	}
	if noCacheSkew.Cycles <= withCacheSkew.Cycles {
		t.Errorf("stalled run not slower: %d <= %d cycles", noCacheSkew.Cycles, withCacheSkew.Cycles)
	}
}

func TestBinnerSkewImprovesThroughputViaCache(t *testing.T) {
	// §6.1: "In case the data is heavily skewed ... it is possible to
	// perform a higher number of updates per second."
	n := 100_000
	clk := hw.NewClock(hw.DefaultClockHz)

	runRate := func(vals []int64) float64 {
		b := binnerFor(t, 0, 1<<20, DefaultBinnerConfig())
		b.PushAll(vals)
		_, stats := b.Finish()
		return stats.ValuesPerSecond(clk)
	}
	skewRate := runRate(datagen.Take(datagen.NewZipf(3, 0, 1<<20, 1.2, false), n))
	uniRate := runRate(antiCacheStream(n))
	if skewRate <= uniRate {
		t.Errorf("skewed rate %.1f M/s not above uniform %.1f M/s", skewRate/1e6, uniRate/1e6)
	}
}

func TestBinnerMemOpAccounting(t *testing.T) {
	vals := antiCacheStream(10_000)
	b := binnerFor(t, 0, 4096*8, DefaultBinnerConfig())
	b.PushAll(vals)
	_, stats := b.Finish()
	// Every miss costs one read and one write.
	if stats.MemReadOps != 10_000 {
		t.Errorf("reads = %d", stats.MemReadOps)
	}
	if stats.MemWriteOps != 10_000 {
		t.Errorf("writes = %d", stats.MemWriteOps)
	}

	b2 := binnerFor(t, 0, 100, DefaultBinnerConfig())
	b2.PushAll(make([]int64, 10_000))
	_, stats2 := b2.Finish()
	// Hits skip the read ("we do not issue read commands for items that
	// are already in the cache", §6.1) but write-through always writes.
	if stats2.MemReadOps != 1 {
		t.Errorf("hit-path reads = %d, want 1", stats2.MemReadOps)
	}
	if stats2.MemWriteOps != 10_000 {
		t.Errorf("hit-path writes = %d", stats2.MemWriteOps)
	}
}

func TestBinnerZeroItems(t *testing.T) {
	b := binnerFor(t, 0, 10, DefaultBinnerConfig())
	vec, stats := b.Finish()
	if stats.Items != 0 || stats.Cycles != 0 || vec.Total() != 0 {
		t.Errorf("empty run: %+v, total=%d", stats, vec.Total())
	}
	if stats.ValuesPerSecond(hw.NewClock(hw.DefaultClockHz)) != 0 {
		t.Error("rate of empty run should be 0")
	}
}

func TestEquivalentTableRates(t *testing.T) {
	// Table 1's derived columns: 20 M values/s over 4-byte values is
	// 80 MB/s for a one-column table; lineitem's wider rows make the
	// equivalent whole-table rate 2.9 GB/s (144-byte rows in the paper's
	// arithmetic: 80 MB/s × 36 ≈ 2.9 GB/s).
	oneCol := 20e6 * 4
	if oneCol != 80e6 {
		t.Errorf("one-column equivalent = %v", oneCol)
	}
}

func TestBinnerMergeMatchesSerial(t *testing.T) {
	// Splitting a stream across lanes and merging must reproduce the serial
	// bin counts exactly, with summed work counters and the max-lane
	// completion cycle.
	vals := datagen.Take(datagen.NewZipf(7, 0, 4096, 0.9, true), 50_000)

	serial := binnerFor(t, 0, 4095, DefaultBinnerConfig())
	serial.PushAll(vals)
	serialVec, serialStats := serial.Finish()

	lanes := make([]*Binner, 4)
	for i := range lanes {
		lanes[i] = binnerFor(t, 0, 4095, DefaultBinnerConfig())
	}
	for i, v := range vals {
		lanes[i%len(lanes)].Push(v)
	}
	var maxLane int64
	for _, l := range lanes[1:] {
		_, ls := l.Finish()
		if ls.Cycles > maxLane {
			maxLane = ls.Cycles
		}
		if err := lanes[0].Merge(l); err != nil {
			t.Fatal(err)
		}
	}
	vec, stats := lanes[0].Finish()

	if vec.Total() != serialVec.Total() {
		t.Fatalf("merged total %d != serial %d", vec.Total(), serialVec.Total())
	}
	for i, c := range serialVec.Counts() {
		if vec.Counts()[i] != c {
			t.Fatalf("bin %d: merged %d != serial %d", i, vec.Counts()[i], c)
		}
	}
	if stats.Items != serialStats.Items {
		t.Errorf("merged items %d != serial %d", stats.Items, serialStats.Items)
	}
	if stats.Cycles < maxLane {
		t.Errorf("merged cycles %d below slowest merged lane %d", stats.Cycles, maxLane)
	}
	// Parallel lanes each see ~1/4 of the stream, so the critical path must
	// be well below the serial completion time.
	if stats.Cycles >= serialStats.Cycles {
		t.Errorf("merged critical path %d not below serial %d", stats.Cycles, serialStats.Cycles)
	}
}

func TestBinnerMergePartiallyFilledLanes(t *testing.T) {
	// Lanes with wildly different fill levels — including an empty one —
	// must merge into exact combined counts and critical-path cycles.
	a := binnerFor(t, 0, 99, DefaultBinnerConfig())
	b := binnerFor(t, 0, 99, DefaultBinnerConfig())
	empty := binnerFor(t, 0, 99, DefaultBinnerConfig())
	a.PushAll([]int64{1, 2, 3, 3, 200}) // one out-of-range drop
	b.PushAll([]int64{3, 50})

	_, as := a.Finish()
	_, bs := b.Finish()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(empty); err != nil {
		t.Fatal(err)
	}
	vec, stats := a.Finish()
	if stats.Items != 6 || stats.Dropped != 1 {
		t.Errorf("items=%d dropped=%d, want 6/1", stats.Items, stats.Dropped)
	}
	if got := vec.CountValue(3); got != 3 {
		t.Errorf("count(3) = %d, want 3", got)
	}
	if vec.Total() != 6 {
		t.Errorf("total = %d, want 6", vec.Total())
	}
	want := as.Cycles
	if bs.Cycles > want {
		want = bs.Cycles
	}
	if stats.Cycles != want {
		t.Errorf("merged cycles %d, want max-lane %d", stats.Cycles, want)
	}
	if stats.MemWriteOps != as.MemWriteOps+bs.MemWriteOps {
		t.Errorf("write ops %d, want %d", stats.MemWriteOps, as.MemWriteOps+bs.MemWriteOps)
	}
}

func TestBinnerMergeRejectsMismatchedGeometry(t *testing.T) {
	a := binnerFor(t, 0, 99, DefaultBinnerConfig())
	b := binnerFor(t, 0, 199, DefaultBinnerConfig())
	if err := a.Merge(b); err == nil {
		t.Error("mismatched geometry should not merge")
	}
}

func TestBinnerStatsMerge(t *testing.T) {
	a := BinnerStats{Items: 10, Dropped: 1, MemReadOps: 5, MemWriteOps: 10, CacheHits: 5, CacheMisses: 5, StallCycles: 3, Cycles: 700}
	b := BinnerStats{Items: 4, MemReadOps: 4, MemWriteOps: 4, CacheMisses: 4, Cycles: 900}
	m := a.Merge(b)
	if m.Items != 14 || m.Dropped != 1 || m.MemReadOps != 9 || m.MemWriteOps != 14 {
		t.Errorf("work counters wrong: %+v", m)
	}
	if m.CacheHits != 5 || m.CacheMisses != 9 || m.StallCycles != 3 {
		t.Errorf("cache/stall counters wrong: %+v", m)
	}
	if m.Cycles != 900 {
		t.Errorf("cycles = %d, want max 900", m.Cycles)
	}
}
