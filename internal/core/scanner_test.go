package core

import (
	"testing"

	"streamhist/internal/bins"
	"streamhist/internal/hw"
)

// fixedVec builds a vector with a known number of bins (Δ), all non-empty.
func fixedVec(delta int) *bins.Vector {
	counts := make([]int64, delta)
	for i := range counts {
		counts[i] = int64(i%7) + 1
	}
	return bins.FromCounts(0, 1, counts)
}

func timingOf(t *testing.T, res ChainResult, name string) ChainTiming {
	t.Helper()
	for _, tm := range res.Timings {
		if tm.Name == name {
			return tm
		}
	}
	t.Fatalf("no timing for %q in %+v", name, res.Timings)
	return ChainTiming{}
}

// TestTable2ResultLatencyFormulas asserts the exact cycle formulas of
// Table 2 with each block first in the chain (no pass-through term):
//
//	TopK:       2Δ + 2T
//	Equi-depth: 2Δ/B
//	Max-diff:   (2Δ+2B) + 2Δ/B
//	Compressed: (2Δ+2T) + 2Δ/B
func TestTable2ResultLatencyFormulas(t *testing.T) {
	const delta = 10000
	const T = 64
	const B = 64
	vec := fixedVec(delta)

	topk := NewTopKBlock(T)
	res := NewScanner().Run(vec, topk)
	if got, want := timingOf(t, res, topk.Name()).FirstResultCycles, int64(2*delta+2*T); got != want {
		t.Errorf("TopK result latency = %d, want %d", got, want)
	}

	ed := NewEquiDepthBlock(B, vec.Total())
	res = NewScanner().Run(vec, ed)
	if got, want := timingOf(t, res, ed.Name()).FirstResultCycles, int64(2*delta/B); got != want {
		t.Errorf("EquiDepth result latency = %d, want %d", got, want)
	}
	if got, want := timingOf(t, res, ed.Name()).CompletionCycles, int64(2*delta); got != want {
		t.Errorf("EquiDepth completion = %d, want %d", got, want)
	}

	md := NewMaxDiffBlock(B)
	res = NewScanner().Run(vec, md)
	if got, want := timingOf(t, res, md.Name()).FirstResultCycles, int64(2*delta+2*B+2*delta/B); got != want {
		t.Errorf("MaxDiff result latency = %d, want %d", got, want)
	}

	comp := NewCompressedBlock(T, B, vec.Total())
	res = NewScanner().Run(vec, comp)
	if got, want := timingOf(t, res, comp.Name()).FirstResultCycles, int64(2*delta+2*T+2*delta/B); got != want {
		t.Errorf("Compressed result latency = %d, want %d", got, want)
	}
}

func TestTable2ResultSizes(t *testing.T) {
	// "each bucket needs 8 bytes": T*8, B*8, B*8, (T+B)*8.
	vec := fixedVec(1000)
	topk := NewTopKBlock(64)
	ed := NewEquiDepthBlock(64, vec.Total())
	md := NewMaxDiffBlock(64)
	comp := NewCompressedBlock(64, 64, vec.Total())
	res := NewScanner().Run(vec, topk, ed, md, comp)
	wants := map[string]int64{
		topk.Name(): 64 * 8,
		ed.Name():   64 * 8,
		md.Name():   64 * 8,
		comp.Name(): (64 + 64) * 8,
	}
	for name, want := range wants {
		if got := timingOf(t, res, name).ResultBytes; got != want {
			t.Errorf("%s result size = %d, want %d", name, got, want)
		}
	}
}

func TestTable2Scans(t *testing.T) {
	vec := fixedVec(100)
	cases := []struct {
		blk  Block
		want int
	}{
		{NewTopKBlock(8), 1},
		{NewEquiDepthBlock(8, vec.Total()), 1},
		{NewMaxDiffBlock(8), 2},
		{NewCompressedBlock(4, 8, vec.Total()), 2},
	}
	for _, c := range cases {
		if got := c.blk.Scans(); got != c.want {
			t.Errorf("%s scans = %d, want %d", c.blk.Name(), got, c.want)
		}
	}
	res := NewScanner().Run(vec, cases[0].blk, cases[2].blk)
	if res.Scans != 2 {
		t.Errorf("chain scans = %d, want 2 (max over blocks)", res.Scans)
	}
}

func TestDaisyChainPassThroughLatency(t *testing.T) {
	// §6.3: each block adds 2 cycles; the fourth block sees the first bin
	// 6 cycles after the first (3 blocks ahead × 2 cycles).
	vec := fixedVec(5000)
	topk := NewTopKBlock(8)
	ed := NewEquiDepthBlock(8, vec.Total())
	md := NewMaxDiffBlock(8)
	comp := NewCompressedBlock(4, 8, vec.Total())
	res := NewScanner().Run(vec, topk, ed, md, comp)

	soloComp := NewCompressedBlock(4, 8, vec.Total())
	solo := NewScanner().Run(vec, soloComp)
	chained := timingOf(t, res, comp.Name()).FirstResultCycles
	alone := timingOf(t, solo, soloComp.Name()).FirstResultCycles
	if chained-alone != 3*hw.DefaultBlockPassCycles {
		t.Errorf("pass-through delta = %d cycles, want %d", chained-alone, 3*hw.DefaultBlockPassCycles)
	}
}

func TestChainTimesAreNotAdditive(t *testing.T) {
	// §6.3: "The times in the graph are not additive" — chaining all
	// blocks costs (almost) the same as the slowest block alone.
	vec := fixedVec(20000)
	all := NewScanner().Run(vec,
		NewTopKBlock(64),
		NewEquiDepthBlock(64, vec.Total()),
		NewMaxDiffBlock(64),
		NewCompressedBlock(64, 64, vec.Total()))
	soloMD := NewMaxDiffBlock(64)
	solo := NewScanner().Run(vec, soloMD)
	slowest := timingOf(t, solo, soloMD.Name()).CompletionCycles
	if float64(all.TotalCycles) > float64(slowest)*1.01 {
		t.Errorf("chained total %d far above slowest solo block %d", all.TotalCycles, slowest)
	}
}

func TestChainLinearInDelta(t *testing.T) {
	// Fig 22: creation time grows linearly with the bin count.
	t1 := NewScanner().Run(fixedVec(10000), NewEquiDepthBlock(64, 1)).TotalCycles
	t2 := NewScanner().Run(fixedVec(20000), NewEquiDepthBlock(64, 1)).TotalCycles
	if t2 != 2*t1 {
		t.Errorf("doubling Δ: %d -> %d, want exactly 2x", t1, t2)
	}
}

func TestScannerSkipsEmptyBins(t *testing.T) {
	counts := []int64{5, 0, 0, 3, 0, 2}
	vec := bins.FromCounts(100, 1, counts)
	blk := NewEquiDepthBlock(100, vec.Total()) // limit 1: bucket per bin
	NewScanner().Run(vec, blk)
	got := blk.Result()
	if len(got) != 3 {
		t.Fatalf("buckets = %d, want 3 (empty bins skipped)", len(got))
	}
	if got[0].Low != 100 || got[1].Low != 103 || got[2].Low != 105 {
		t.Errorf("bucket lows wrong: %+v", got)
	}
	// But Δ counts all bins, empty included — scan cost covers the region.
	res := NewScanner().Run(vec, NewEquiDepthBlock(4, vec.Total()))
	if res.Delta != 6 {
		t.Errorf("Delta = %d, want 6", res.Delta)
	}
}

func TestResourceEstimates(t *testing.T) {
	// Table 2's resource column: TopK 2.5% at T=64, equi-depth <1%,
	// Max-diff and Compressed <3% at 64, with the listed max frequencies.
	vecTotal := int64(100)
	topk := Resources(NewTopKBlock(64))
	if topk.UsagePct != 2.5 || topk.Scaling != "O(T)" || topk.MaxFreqMHz != 170 {
		t.Errorf("TopK resources = %+v", topk)
	}
	ed := Resources(NewEquiDepthBlock(64, vecTotal))
	if ed.UsagePct >= 1.0 || ed.Scaling != "O(1)" || ed.MaxFreqMHz != 240 {
		t.Errorf("EquiDepth resources = %+v", ed)
	}
	md := Resources(NewMaxDiffBlock(64))
	if md.UsagePct >= 3.0 || md.Scaling != "O(B)" || md.MaxFreqMHz != 170 {
		t.Errorf("MaxDiff resources = %+v", md)
	}
	comp := Resources(NewCompressedBlock(64, 64, vecTotal))
	if comp.UsagePct >= 3.0 || comp.Scaling != "O(T)" || comp.MaxFreqMHz != 170 {
		t.Errorf("Compressed resources = %+v", comp)
	}
	// Usage scales linearly: T=128 doubles TopK usage.
	if Resources(NewTopKBlock(128)).UsagePct != 5.0 {
		t.Error("TopK usage not linear in T")
	}
}

func TestChainSecondsAt150MHz(t *testing.T) {
	// Sanity: 35 M bins through Max-diff ≈ 0.93 s at 150 MHz (the Fig 22
	// right edge is in this regime).
	s := &Scanner{ScanCyclesPerBin: hw.DefaultScanCyclesPerBin, BlockPassCycles: hw.DefaultBlockPassCycles}
	res := s.account(35_000_000, 2, []Block{NewMaxDiffBlock(64)})
	sec := res.Seconds(hw.NewClock(hw.DefaultClockHz))
	if sec < 0.8 || sec > 1.1 {
		t.Errorf("35M-bin MaxDiff = %.3fs, expected ≈0.93s", sec)
	}
}
