package core

import (
	"fmt"

	"streamhist/internal/bins"
	"streamhist/internal/hist"
	"streamhist/internal/hw"
	"streamhist/internal/page"
	"streamhist/internal/sketch"
	"streamhist/internal/table"
)

// Splitter models the cut-through element of Figure 9: it duplicates the
// byte stream, forwarding the original to the host untouched and feeding
// the copy to the statistical circuit. Its contribution to the host-visible
// path is pure wire latency.
type Splitter struct {
	// CutThroughNanos is the replication delay ("in the order of
	// nanoseconds", §4).
	CutThroughNanos float64
	// IOLatencyMicros is the platform I/O logic latency ("in the order of
	// microseconds, depending almost exclusively on the transmission
	// medium and protocol", §4).
	IOLatencyMicros float64
}

// DefaultSplitter returns the latencies discussed in §4.
func DefaultSplitter() Splitter {
	return Splitter{CutThroughNanos: 10, IOLatencyMicros: 2}
}

// AddedLatencySeconds is the total delay the accelerator inserts into the
// storage→host path — the "bump in the wire".
func (s Splitter) AddedLatencySeconds() float64 {
	return s.CutThroughNanos*1e-9 + s.IOLatencyMicros*1e-6
}

// Config assembles a statistical circuit.
type Config struct {
	// Column tells the Parser which bytes of each row to extract.
	Column ColumnSpec
	// Min and Max bound the column's value domain (host-provided metadata).
	Min, Max int64
	// Divisor coarsens binning; 1 for exact bins.
	Divisor int64
	// TopK is the frequency-list length T (0 disables the block).
	TopK int
	// EquiDepthBuckets enables the equi-depth block with B buckets.
	EquiDepthBuckets int
	// MaxDiffBuckets enables the Max-diff block with B buckets.
	MaxDiffBuckets int
	// CompressedT and CompressedBuckets enable the Compressed block.
	CompressedT, CompressedBuckets int

	// Binner overrides the default Binner model when non-zero.
	Binner BinnerConfig
	// Splitter models the cut-through path.
	Splitter Splitter

	// ParseLatencyMicros is the Parser's fixed FSM latency ("below 2µs for
	// all data source types", §4).
	ParseLatencyMicros float64
}

// DefaultConfig returns the evaluation setup of §6: 256-bucket equi-depth,
// T=64 TopK, B=64 Max-diff and Compressed, default platform.
func DefaultConfig(col ColumnSpec, min, max int64) Config {
	return Config{
		Column:             col,
		Min:                min,
		Max:                max,
		Divisor:            1,
		TopK:               64,
		EquiDepthBuckets:   256,
		MaxDiffBuckets:     64,
		CompressedT:        64,
		CompressedBuckets:  64,
		Binner:             DefaultBinnerConfig(),
		Splitter:           DefaultSplitter(),
		ParseLatencyMicros: 2,
	}
}

// Results carries everything the accelerator produced for one table scan.
type Results struct {
	// TopK is the exact frequency list (nil when disabled).
	TopK []hist.FrequentValue
	// EquiDepth, MaxDiff, Compressed are the produced histograms (nil when
	// the corresponding block is disabled).
	EquiDepth  *hist.Histogram
	MaxDiff    *hist.Histogram
	Compressed *hist.Histogram

	// Bins is the binned sorted view left in accelerator memory.
	Bins *bins.Vector

	// Sketches are the daisy-chained statistic blocks' results (nil when the
	// sketch chain is disabled). After a parallel scan they are the merged
	// chain, covering every lane.
	Sketches sketch.Blocks
	// SketchCycles is the chain's simulated processing cost, charged beside
	// (not inside) the Binner's completion time: the blocks are pipelined on
	// the side path, so they never stall the host stream.
	SketchCycles int64
	// SketchSeconds converts SketchCycles with the circuit clock.
	SketchSeconds float64

	// BinnerStats is the binning pipeline's cycle accounting.
	BinnerStats BinnerStats
	// Chain is the Histogram module's cycle accounting.
	Chain ChainResult

	// BinningSeconds and HistogramSeconds are the two phases' simulated
	// durations; TotalSeconds includes the parser latency.
	BinningSeconds   float64
	HistogramSeconds float64
	TotalSeconds     float64

	// HostPathAddedSeconds is the delay the host-visible data stream
	// suffered — splitter plus I/O only, independent of table size.
	HostPathAddedSeconds float64
}

// Circuit is the assembled statistical accelerator.
type Circuit struct {
	cfg    Config
	clock  hw.Clock
	parser *Parser
	pre    *Preprocessor
}

// NewCircuit validates the configuration and builds the circuit.
func NewCircuit(cfg Config) (*Circuit, error) {
	if cfg.Max < cfg.Min {
		return nil, fmt.Errorf("core: empty value range [%d, %d]", cfg.Min, cfg.Max)
	}
	if cfg.Divisor == 0 {
		cfg.Divisor = 1
	}
	if cfg.Binner.Clock.Hz == 0 {
		cfg.Binner = DefaultBinnerConfig()
	}
	pre, err := RangeFor(cfg.Min, cfg.Max, cfg.Divisor)
	if err != nil {
		return nil, err
	}
	return &Circuit{
		cfg:    cfg,
		clock:  cfg.Binner.Clock,
		parser: NewParser(cfg.Column),
		pre:    pre,
	}, nil
}

// Process streams the table's pages through the circuit and returns the
// histograms plus cycle accounting.
func (c *Circuit) Process(pages []*page.Page) (*Results, error) {
	values, err := c.parser.ParsePages(pages)
	if err != nil {
		return nil, err
	}
	return c.ProcessValues(values), nil
}

// ProcessValues runs the circuit on an already-extracted column (the
// synthetic-workload path; skips the Parser but keeps its fixed latency in
// the accounting).
func (c *Circuit) ProcessValues(values []int64) *Results {
	binner := NewBinner(c.cfg.Binner, c.pre)
	binner.PushAll(values)
	vec, bstats := binner.Finish()

	var blocks []Block
	var topk *TopKBlock
	var ed *EquiDepthBlock
	var md *MaxDiffBlock
	var comp *CompressedBlock
	if c.cfg.TopK > 0 {
		topk = NewTopKBlock(c.cfg.TopK)
		blocks = append(blocks, topk)
	}
	if c.cfg.EquiDepthBuckets > 0 {
		ed = NewEquiDepthBlock(c.cfg.EquiDepthBuckets, vec.Total())
		blocks = append(blocks, ed)
	}
	if c.cfg.MaxDiffBuckets > 0 {
		md = NewMaxDiffBlock(c.cfg.MaxDiffBuckets)
		blocks = append(blocks, md)
	}
	if c.cfg.CompressedBuckets > 0 && c.cfg.CompressedT > 0 {
		comp = NewCompressedBlock(c.cfg.CompressedT, c.cfg.CompressedBuckets, vec.Total())
		blocks = append(blocks, comp)
	}

	chain := NewScanner().Run(vec, blocks...)

	res := &Results{
		Bins:                 vec,
		BinnerStats:          bstats,
		Chain:                chain,
		BinningSeconds:       bstats.Seconds(c.clock),
		HistogramSeconds:     chain.Seconds(c.clock),
		HostPathAddedSeconds: c.cfg.Splitter.AddedLatencySeconds(),
	}
	res.TotalSeconds = c.cfg.ParseLatencyMicros*1e-6 + res.BinningSeconds + res.HistogramSeconds
	if sc := binner.SketchChain(); sc != nil {
		res.Sketches = sc.Blocks()
		res.SketchCycles = sc.TotalCycles()
		res.SketchSeconds = c.clock.Seconds(res.SketchCycles)
	}

	distinct := int64(vec.Cardinality())
	if topk != nil {
		res.TopK = topk.Result()
	}
	if ed != nil {
		res.EquiDepth = &hist.Histogram{
			Kind: hist.EquiDepth, Buckets: ed.Result(),
			Total: vec.Total(), DistinctTotal: distinct,
		}
	}
	if md != nil {
		res.MaxDiff = &hist.Histogram{
			Kind: hist.MaxDiff, Buckets: md.Result(),
			Total: vec.Total(), DistinctTotal: distinct,
		}
	}
	if comp != nil {
		res.Compressed = &hist.Histogram{
			Kind: hist.Compressed, Buckets: comp.Buckets(), Frequent: comp.Frequent(),
			Total: vec.Total(), DistinctTotal: distinct,
		}
	}
	return res
}

// ProcessRelation encodes the relation to pages and processes them —
// the full storage→accelerator path in one call.
func ProcessRelation(rel *table.Relation, column string, cfg func(Config) Config) (*Results, error) {
	spec, err := SpecFor(rel.Schema, column)
	if err != nil {
		return nil, err
	}
	col := rel.ColumnByName(column)
	min, max, err := columnRange(col)
	if err != nil {
		return nil, err
	}
	c := DefaultConfig(spec, min, max)
	if cfg != nil {
		c = cfg(c)
	}
	circuit, err := NewCircuit(c)
	if err != nil {
		return nil, err
	}
	return circuit.Process(page.Encode(rel))
}

func columnRange(col []int64) (min, max int64, err error) {
	if len(col) == 0 {
		return 0, 0, fmt.Errorf("core: empty column")
	}
	min, max = col[0], col[0]
	for _, v := range col {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, nil
}
