// Package core implements the paper's primary contribution: the statistical
// circuit that computes histograms as a side effect of data movement.
//
// The circuit mirrors Figure 9 of the paper:
//
//	storage ──► Splitter ──────────────────────────► host   (cut-through)
//	               │ copy
//	               ▼
//	            Parser ──► Binner ──► [bins in memory] ──► Scanner ──► TopK ─► EquiDepth ─► MaxDiff ─► Compressed
//	                                                                   (daisy chain of statistic blocks)
//
// Every module is a cycle-accounted simulation of the corresponding FPGA
// block, driven by the platform model in internal/hw. The functional outputs
// (histograms) are bit-identical to the software reference implementations
// in internal/hist, and the cycle accounting reproduces Table 1 (Binner
// throughput) and Table 2 (per-block result latency) of the paper.
package core
