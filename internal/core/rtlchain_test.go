package core

import (
	"testing"

	"streamhist/internal/bins"
)

// uniformVec builds a vector with delta bins of equal count.
func uniformVec(delta int, count int64) *bins.Vector {
	counts := make([]int64, delta)
	for i := range counts {
		counts[i] = count
	}
	return bins.FromCounts(0, 1, counts)
}

func TestRTLChainEquiDepthMatchesFormulaExactly(t *testing.T) {
	// Uniform counts with Δ divisible by B: the first bucket closes after
	// exactly Δ/B bins, so the observed first result must equal the
	// Table 2 formula 2Δ/B to the cycle.
	const delta, B = 6400, 64
	vec := uniformVec(delta, 10)
	blk := NewEquiDepthBlock(B, vec.Total())
	res := NewRTLChain(nil).Run(vec, blk)
	tm := res.Timings[0]
	if tm.FirstResultCycles != 2*delta/B {
		t.Errorf("observed first result %d, formula %d", tm.FirstResultCycles, 2*delta/B)
	}
	if tm.CompletionCycles != 2*delta {
		t.Errorf("observed completion %d, formula %d", tm.CompletionCycles, 2*delta)
	}
	// And the formula-based accounting agrees.
	acct := NewScanner().Run(uniformVec(delta, 10), NewEquiDepthBlock(B, vec.Total()))
	if acct.Timings[0].FirstResultCycles != tm.FirstResultCycles {
		t.Errorf("account() %d != RTL %d", acct.Timings[0].FirstResultCycles, tm.FirstResultCycles)
	}
}

func TestRTLChainTopKMatchesFormulaExactly(t *testing.T) {
	const delta, T = 5000, 64
	vec := uniformVec(delta, 3)
	blk := NewTopKBlock(T)
	res := NewRTLChain(nil).Run(vec, blk)
	tm := res.Timings[0]
	if tm.FirstResultCycles != 2*delta+2*T {
		t.Errorf("observed %d, formula %d", tm.FirstResultCycles, 2*delta+2*T)
	}
}

func TestRTLChainTwoScanBlocksStructure(t *testing.T) {
	// Max-diff: scan 1 (2Δ) + diff-list drain (2B) + full scan 2 (2Δ).
	const delta, B, T = 4000, 64, 32
	vec := uniformVec(delta, 5)
	md := NewMaxDiffBlock(B)
	res := NewRTLChain(nil).Run(vec, md)
	if got, want := res.Timings[0].CompletionCycles, int64(2*delta+2*B+2*delta); got != want {
		t.Errorf("max-diff completion %d, want %d", got, want)
	}

	comp := NewCompressedBlock(T, B, vec.Total())
	res2 := NewRTLChain(nil).Run(uniformVec(delta, 5), comp)
	if got, want := res2.Timings[0].CompletionCycles, int64(2*delta+2*T+2*delta); got != want {
		t.Errorf("compressed completion %d, want %d", got, want)
	}
	// The formula-based accounting matches the observed structure.
	acct := NewScanner().Run(uniformVec(delta, 5), NewMaxDiffBlock(B))
	if acct.Timings[0].CompletionCycles != res.Timings[0].CompletionCycles {
		t.Errorf("account() %d != RTL %d",
			acct.Timings[0].CompletionCycles, res.Timings[0].CompletionCycles)
	}
}

func TestRTLChainPassThrough(t *testing.T) {
	// The same block one position later sees everything 2 cycles later.
	const delta, B = 3200, 32
	vec := uniformVec(delta, 7)
	first := NewEquiDepthBlock(B, vec.Total())
	second := NewEquiDepthBlock(B, vec.Total())
	res := NewRTLChain(nil).Run(vec, first, second)
	d := res.Timings[1].FirstResultCycles - res.Timings[0].FirstResultCycles
	if d != 2 {
		t.Errorf("pass-through delta = %d cycles, want 2", d)
	}
}

func TestRTLChainEmptySlotsStillCostTime(t *testing.T) {
	// Δ includes empty bins: a mostly-empty region takes as long to scan
	// as a full one (the §6.3 point that cost depends on the bin count).
	counts := make([]int64, 5000)
	counts[0] = 1
	counts[4999] = 1
	sparse := bins.FromCounts(0, 1, counts)
	blk := NewEquiDepthBlock(4, sparse.Total())
	res := NewRTLChain(nil).Run(sparse, blk)
	if res.Timings[0].CompletionCycles != 2*5000 {
		t.Errorf("sparse completion %d, want %d", res.Timings[0].CompletionCycles, 2*5000)
	}
}

func TestRTLChainFunctionalResultsUnchanged(t *testing.T) {
	// The RTL walk must produce identical buckets to the plain run.
	vec := zipfVec(20000, 700, 0.9, 77)
	a := NewEquiDepthBlock(32, vec.Total())
	NewRTLChain(nil).Run(vec, a)
	b := NewEquiDepthBlock(32, vec.Total())
	NewScanner().Run(vec, b)
	ra, rb := a.Result(), b.Result()
	if len(ra) != len(rb) {
		t.Fatalf("bucket count %d != %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("bucket %d differs", i)
		}
	}
}
