package core

import (
	"fmt"

	"streamhist/internal/bins"
	"streamhist/internal/hw"
)

// This file implements the §4 decoupling: "Memory acts as a decoupling
// element between the Binner and the Histogram module, as they interact in
// a producer-consumer-like manner. ... while for some data the histogram is
// calculated in the Histogram module, another input table can be already
// processed and binned at a different region in memory."
//
// PipelinedCircuit runs a sequence of column scans through one Binner and
// one Histogram module, overlapping table N's histogram creation with table
// N+1's binning whenever a free memory region exists.

// TableScan is one unit of work for the pipelined circuit: a column to
// process and its preconfigured value geometry.
type TableScan struct {
	// Name labels the scan in reports.
	Name string
	// Values is the extracted column (post-Parser).
	Values []int64
	// Min, Max, Divisor configure the preprocessor for this scan.
	Min, Max, Divisor int64
}

// PipelineOutcome reports one scan's results and its slot in the timeline.
type PipelineOutcome struct {
	Name   string
	Region int

	Bins        *bins.Vector
	BinnerStats BinnerStats
	Chain       ChainResult

	// Timeline, in cycles from the start of the whole run.
	BinStartCycle  int64
	BinEndCycle    int64
	HistStartCycle int64
	HistEndCycle   int64
}

// PipelineResult is the outcome of processing a batch of scans.
type PipelineResult struct {
	Outcomes []PipelineOutcome
	// TotalCycles is when the last histogram finished.
	TotalCycles int64
	// SequentialCycles is what the same work would cost with no
	// overlap (one region, strict bin-then-histogram per table).
	SequentialCycles int64
}

// Seconds converts total completion to seconds.
func (r PipelineResult) Seconds(clk hw.Clock) float64 { return clk.Seconds(r.TotalCycles) }

// Overlap returns the fraction of sequential time saved by the
// producer-consumer decoupling (0 = none, approaching the histogram
// phase's share of total work when fully overlapped).
func (r PipelineResult) Overlap() float64 {
	if r.SequentialCycles == 0 {
		return 0
	}
	return 1 - float64(r.TotalCycles)/float64(r.SequentialCycles)
}

// PipelinedCircuit schedules scans across memory regions.
type PipelinedCircuit struct {
	cfg     Config
	regions int
}

// NewPipelinedCircuit builds a pipelined circuit with the given number of
// bin-memory regions (the paper's design implies two; more regions only
// help if histogram creation is slower than binning).
func NewPipelinedCircuit(cfg Config, regions int) (*PipelinedCircuit, error) {
	if regions < 1 {
		return nil, fmt.Errorf("core: need at least one memory region, got %d", regions)
	}
	if cfg.Binner.Clock.Hz == 0 {
		cfg.Binner = DefaultBinnerConfig()
	}
	return &PipelinedCircuit{cfg: cfg, regions: regions}, nil
}

// Regions returns the number of bin-memory regions.
func (p *PipelinedCircuit) Regions() int { return p.regions }

// Process runs the scans in order. Functionally each scan is identical to a
// standalone Circuit run; the timeline models the overlap the decoupling
// buys: the Binner may start scan N+1 as soon as a region is free, while
// the Histogram module is still consuming scan N's region.
func (p *PipelinedCircuit) Process(scans []TableScan) (*PipelineResult, error) {
	res := &PipelineResult{}
	regionFree := make([]int64, p.regions) // cycle when each region frees up
	var binnerFree, histFree int64

	for i, scan := range scans {
		if scan.Divisor == 0 {
			scan.Divisor = 1
		}
		pre, err := RangeFor(scan.Min, scan.Max, scan.Divisor)
		if err != nil {
			return nil, fmt.Errorf("core: scan %q: %w", scan.Name, err)
		}

		// Run the functional work (timing comes from the module stats).
		binner := NewBinner(p.cfg.Binner, pre)
		binner.PushAll(scan.Values)
		vec, bstats := binner.Finish()

		blocks := p.blocksFor(vec)
		chain := NewScanner().Run(vec, blocks...)

		// Schedule: pick the region that frees earliest.
		region := 0
		for r := 1; r < p.regions; r++ {
			if regionFree[r] < regionFree[region] {
				region = r
			}
		}
		binStart := max64(binnerFree, regionFree[region])
		binEnd := binStart + bstats.Cycles
		histStart := max64(binEnd, histFree)
		histEnd := histStart + chain.TotalCycles

		binnerFree = binEnd
		histFree = histEnd
		regionFree[region] = histEnd

		res.Outcomes = append(res.Outcomes, PipelineOutcome{
			Name:           scan.Name,
			Region:         region,
			Bins:           vec,
			BinnerStats:    bstats,
			Chain:          chain,
			BinStartCycle:  binStart,
			BinEndCycle:    binEnd,
			HistStartCycle: histStart,
			HistEndCycle:   histEnd,
		})
		res.SequentialCycles += bstats.Cycles + chain.TotalCycles
		if histEnd > res.TotalCycles {
			res.TotalCycles = histEnd
		}
		_ = i
	}
	return res, nil
}

// blocksFor instantiates the configured statistic blocks for one scan.
func (p *PipelinedCircuit) blocksFor(vec *bins.Vector) []Block {
	var blocks []Block
	if p.cfg.TopK > 0 {
		blocks = append(blocks, NewTopKBlock(p.cfg.TopK))
	}
	if p.cfg.EquiDepthBuckets > 0 {
		blocks = append(blocks, NewEquiDepthBlock(p.cfg.EquiDepthBuckets, vec.Total()))
	}
	if p.cfg.MaxDiffBuckets > 0 {
		blocks = append(blocks, NewMaxDiffBlock(p.cfg.MaxDiffBuckets))
	}
	if p.cfg.CompressedBuckets > 0 && p.cfg.CompressedT > 0 {
		blocks = append(blocks, NewCompressedBlock(p.cfg.CompressedT, p.cfg.CompressedBuckets, vec.Total()))
	}
	if len(blocks) == 0 {
		blocks = append(blocks, NewEquiDepthBlock(256, vec.Total()))
	}
	return blocks
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
