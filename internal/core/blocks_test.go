package core

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"streamhist/internal/bins"
	"streamhist/internal/datagen"
	"streamhist/internal/hist"
)

func zipfVec(n int, card int64, s float64, seed uint64) *bins.Vector {
	return bins.Build(datagen.Take(datagen.NewZipf(seed, 0, card, s, true), n), 1)
}

func runChain(vec *bins.Vector, blocks ...Block) ChainResult {
	return NewScanner().Run(vec, blocks...)
}

func TestInsertionListMatchesSortSemantics(t *testing.T) {
	l := newInsertionList(3)
	l.insert(10, 5)
	l.insert(20, 9)
	l.insert(30, 1)
	l.insert(40, 7)
	got := l.contents()
	want := []hist.FrequentValue{{Value: 20, Count: 9}, {Value: 40, Count: 7}, {Value: 10, Count: 5}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v, want %v", got, want)
		}
	}
	if !l.contains(20) || l.contains(30) {
		t.Error("contains wrong")
	}
}

func TestInsertionListTieKeepsEarlierArrival(t *testing.T) {
	l := newInsertionList(2)
	l.insert(1, 5)
	l.insert(2, 5)
	l.insert(3, 5)
	got := l.contents()
	if got[0].Value != 1 || got[1].Value != 2 {
		t.Errorf("ties reordered: %v", got)
	}
}

func TestTopKBlockMatchesReference(t *testing.T) {
	vec := zipfVec(30000, 500, 0.9, 1)
	blk := NewTopKBlock(16)
	runChain(vec, blk)
	got := blk.Result()
	want := hist.BuildTopK(vec, 16)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestTopKBlockProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r % 64)
		}
		vec := bins.Build(vals, 1)
		blk := NewTopKBlock(8)
		runChain(vec, blk)
		got := blk.Result()
		want := hist.BuildTopK(vec, 8)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquiDepthBlockMatchesReference(t *testing.T) {
	vec := zipfVec(30000, 500, 0.8, 2)
	blk := NewEquiDepthBlock(32, vec.Total())
	runChain(vec, blk)
	got := blk.Result()
	want := hist.BuildEquiDepth(vec, 32).Buckets
	if len(got) != len(want) {
		t.Fatalf("buckets %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestEquiDepthBlockReconfigurableBuckets(t *testing.T) {
	// §5.2.1: the bucket count is a parameter that can change per request.
	vec := zipfVec(10000, 300, 0.6, 3)
	for _, b := range []int{4, 64, 256} {
		blk := NewEquiDepthBlock(b, vec.Total())
		runChain(vec, blk)
		if len(blk.Result()) == 0 {
			t.Errorf("B=%d produced no buckets", b)
		}
		var mass int64
		for _, bkt := range blk.Result() {
			mass += bkt.Count
		}
		if mass != vec.Total() {
			t.Errorf("B=%d mass = %d, want %d", b, mass, vec.Total())
		}
	}
}

func TestMaxDiffBlockMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		vec := zipfVec(20000, 400, 0.9, 10+seed)
		blk := NewMaxDiffBlock(16)
		runChain(vec, blk)
		got := blk.Result()
		want := hist.BuildMaxDiff(vec, 16).Buckets
		if len(got) != len(want) {
			t.Fatalf("seed %d: buckets %d != %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("seed %d bucket %d: %+v != %+v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestCompressedBlockMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		vec := zipfVec(20000, 400, 1.0, 20+seed)
		blk := NewCompressedBlock(8, 16, vec.Total())
		runChain(vec, blk)
		ref := hist.BuildCompressed(vec, 8, 16)
		gotF := blk.Frequent()
		if len(gotF) != len(ref.Frequent) {
			t.Fatalf("seed %d: frequent %d != %d", seed, len(gotF), len(ref.Frequent))
		}
		for i := range ref.Frequent {
			if gotF[i] != ref.Frequent[i] {
				t.Errorf("seed %d frequent %d: %+v != %+v", seed, i, gotF[i], ref.Frequent[i])
			}
		}
		gotB := blk.Buckets()
		if len(gotB) != len(ref.Buckets) {
			t.Fatalf("seed %d: buckets %d != %d", seed, len(gotB), len(ref.Buckets))
		}
		for i := range ref.Buckets {
			if gotB[i] != ref.Buckets[i] {
				t.Errorf("seed %d bucket %d: %+v != %+v", seed, i, gotB[i], ref.Buckets[i])
			}
		}
	}
}

func TestAllBlocksInOneChain(t *testing.T) {
	// §5.2: up to four statistical blocks operate on the same scan(s)
	// "in parallel, without additional overhead". Daisy-chaining all four
	// must give each block the same result as running alone.
	vec := zipfVec(25000, 600, 0.85, 30)
	topk := NewTopKBlock(8)
	ed := NewEquiDepthBlock(32, vec.Total())
	md := NewMaxDiffBlock(16)
	comp := NewCompressedBlock(8, 16, vec.Total())
	runChain(vec, topk, ed, md, comp)

	soloTopK := NewTopKBlock(8)
	runChain(vec, soloTopK)
	for i, f := range soloTopK.Result() {
		if topk.Result()[i] != f {
			t.Error("TopK differs when chained")
			break
		}
	}
	soloED := NewEquiDepthBlock(32, vec.Total())
	runChain(vec, soloED)
	for i, b := range soloED.Result() {
		if ed.Result()[i] != b {
			t.Error("EquiDepth differs when chained")
			break
		}
	}
	soloMD := NewMaxDiffBlock(16)
	runChain(vec, soloMD)
	for i, b := range soloMD.Result() {
		if md.Result()[i] != b {
			t.Error("MaxDiff differs when chained")
			break
		}
	}
}

func TestBlocksRejectBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTopKBlock(0) },
		func() { NewEquiDepthBlock(0, 10) },
		func() { NewMaxDiffBlock(0) },
		func() { NewCompressedBlock(0, 4, 10) },
		func() { NewCompressedBlock(4, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEncodeBuckets(t *testing.T) {
	bks := []hist.Bucket{{Low: 0, High: 4, Count: 100, Distinct: 5}, {Low: 5, High: 9, Count: 101, Distinct: 3}}
	enc := EncodeBuckets(bks)
	if len(enc) != 16 {
		t.Fatalf("encoded %d bytes", len(enc))
	}
	if binary.LittleEndian.Uint32(enc[0:4]) != 100 || binary.LittleEndian.Uint32(enc[4:8]) != 5 {
		t.Error("first bucket encoding wrong")
	}
	if binary.LittleEndian.Uint32(enc[8:12]) != 101 || binary.LittleEndian.Uint32(enc[12:16]) != 3 {
		t.Error("second bucket encoding wrong")
	}
}

func TestEncodeFrequent(t *testing.T) {
	enc := EncodeFrequent([]hist.FrequentValue{{Value: 7, Count: 9}})
	if len(enc) != 8 {
		t.Fatalf("encoded %d bytes", len(enc))
	}
	if binary.LittleEndian.Uint32(enc[0:4]) != 7 || binary.LittleEndian.Uint32(enc[4:8]) != 9 {
		t.Error("frequent encoding wrong")
	}
}
