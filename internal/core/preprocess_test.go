package core

import "testing"

func TestPreprocessorBasicMapping(t *testing.T) {
	p, err := NewPreprocessor(100, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := p.Address(100); !ok || a != 0 {
		t.Errorf("Address(100) = %d, %v", a, ok)
	}
	if a, ok := p.Address(149); !ok || a != 49 {
		t.Errorf("Address(149) = %d, %v", a, ok)
	}
}

func TestPreprocessorOutOfRange(t *testing.T) {
	p, _ := NewPreprocessor(100, 1, 50)
	if _, ok := p.Address(99); ok {
		t.Error("below-min value mapped")
	}
	if _, ok := p.Address(150); ok {
		t.Error("above-range value mapped")
	}
	if p.Dropped() != 2 {
		t.Errorf("Dropped = %d", p.Dropped())
	}
}

func TestPreprocessorDivisor(t *testing.T) {
	// Timestamp-seconds to days: divisor 86400 (the §5.1.1 example).
	p, err := RangeFor(0, 10*86400-1, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBins != 10 {
		t.Fatalf("NumBins = %d", p.NumBins)
	}
	if a, _ := p.Address(0); a != 0 {
		t.Errorf("Address(0) = %d", a)
	}
	if a, _ := p.Address(86399); a != 0 {
		t.Errorf("Address(86399) = %d", a)
	}
	if a, _ := p.Address(86400); a != 1 {
		t.Errorf("Address(86400) = %d", a)
	}
}

func TestPreprocessorNegativeDomain(t *testing.T) {
	// c_acctbal spans [-99999, 999999]; subtraction of the min must map
	// the whole domain onto non-negative addresses.
	p, err := RangeFor(-99999, 999999, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := p.Address(-99999); !ok || a != 0 {
		t.Errorf("Address(min) = %d, %v", a, ok)
	}
	if a, ok := p.Address(0); !ok || a != 99999 {
		t.Errorf("Address(0) = %d, %v", a, ok)
	}
}

func TestPreprocessorValidation(t *testing.T) {
	if _, err := NewPreprocessor(0, 0, 10); err == nil {
		t.Error("divisor 0 accepted")
	}
	if _, err := NewPreprocessor(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := RangeFor(10, 5, 1); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := RangeFor(0, 10, 0); err == nil {
		t.Error("RangeFor divisor 0 accepted")
	}
}
