package core

import (
	"testing"
	"testing/quick"

	"streamhist/internal/page"
	"streamhist/internal/table"
	"streamhist/internal/tpch"
)

func validCommand() Command {
	return Command{
		Column:            ColumnSpec{Offset: 32, Type: table.Decimal},
		Min:               0,
		Max:               1_000_000,
		Divisor:           1,
		TopK:              64,
		EquiDepthBuckets:  256,
		MaxDiffBuckets:    64,
		CompressedT:       64,
		CompressedBuckets: 64,
	}
}

func TestCommandRoundTrip(t *testing.T) {
	cmd := validCommand()
	data, err := cmd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != CommandSize {
		t.Fatalf("packet is %d bytes, want %d", len(data), CommandSize)
	}
	var back Command
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back != cmd {
		t.Errorf("round trip: %+v != %+v", back, cmd)
	}
}

func TestCommandRoundTripProperty(t *testing.T) {
	f := func(offset uint16, typ uint8, min int32, span uint16, div uint8, t1, b1 uint8) bool {
		cmd := Command{
			Column: ColumnSpec{
				Offset: int(offset),
				Type:   table.Type(typ % 4),
			},
			Min:              int64(min),
			Max:              int64(min) + int64(span),
			Divisor:          int64(div%16) + 1,
			TopK:             int(t1%63) + 1,
			EquiDepthBuckets: int(b1%255) + 1,
		}
		data, err := cmd.MarshalBinary()
		if err != nil {
			return false
		}
		var back Command
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back == cmd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommandValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Command)
	}{
		{"empty range", func(c *Command) { c.Min, c.Max = 10, 5 }},
		{"zero divisor", func(c *Command) { c.Divisor = 0 }},
		{"bad type", func(c *Command) { c.Column.Type = 200 }},
		{"negative offset", func(c *Command) { c.Column.Offset = -1 }},
		{"huge TopK", func(c *Command) { c.TopK = 1 << 20 }},
		{"no blocks", func(c *Command) {
			c.TopK, c.EquiDepthBuckets, c.MaxDiffBuckets, c.CompressedBuckets = 0, 0, 0, 0
		}},
	}
	for _, tc := range cases {
		cmd := validCommand()
		tc.mutate(&cmd)
		if err := cmd.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
		if _, err := cmd.MarshalBinary(); err == nil {
			t.Errorf("%s: marshalled", tc.name)
		}
	}
}

func TestCommandUnmarshalRejectsGarbage(t *testing.T) {
	var c Command
	if err := c.UnmarshalBinary(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := c.UnmarshalBinary(make([]byte, CommandSize)); err == nil {
		t.Error("zero packet accepted")
	}
	good, _ := validCommand().MarshalBinary()
	if err := c.UnmarshalBinary(good[:CommandSize-1]); err == nil {
		t.Error("short packet accepted")
	}
	// Valid wire layout but semantically invalid content.
	bad := append([]byte(nil), good...)
	bad[22] = 0 // divisor -> 0
	for i := 23; i < 30; i++ {
		bad[i] = 0
	}
	if err := c.UnmarshalBinary(bad); err == nil {
		t.Error("invalid divisor accepted")
	}
}

func TestNewCircuitFromCommandEndToEnd(t *testing.T) {
	// The full control-plane flow: host derives the command from the
	// schema, serialises it, the accelerator decodes it and processes the
	// data plane.
	rel := tpch.Lineitem(5000, 1, 51)
	spec, err := SpecFor(rel.Schema, "l_quantity")
	if err != nil {
		t.Fatal(err)
	}
	cmd := CommandFromConfig(DefaultConfig(spec, 1, 50))
	packet, err := cmd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	circuit, err := NewCircuitFromCommand(packet)
	if err != nil {
		t.Fatal(err)
	}
	res, err := circuit.Process(page.Encode(rel))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins.Total() != 5000 {
		t.Errorf("binned %d values", res.Bins.Total())
	}
	if res.EquiDepth == nil || len(res.EquiDepth.Buckets) == 0 {
		t.Error("no histogram from command-configured circuit")
	}
}

func TestNewCircuitFromCommandRejectsBadPacket(t *testing.T) {
	if _, err := NewCircuitFromCommand([]byte{1, 2, 3}); err == nil {
		t.Error("bad packet accepted")
	}
}

func TestCommandConfigDefaults(t *testing.T) {
	cfg := validCommand().Config()
	if cfg.Binner.Clock.Hz == 0 {
		t.Error("command config missing platform defaults")
	}
	if cfg.ParseLatencyMicros == 0 {
		t.Error("command config missing parser latency")
	}
}
