package core

import (
	"fmt"
	"testing"

	"streamhist/internal/faults"
	"streamhist/internal/hwprof"
)

// pushSkewed streams a deterministic, moderately skewed workload: enough
// distinct addresses to miss the cache, enough repetition to hit it and to
// provoke read-after-write hazards when the cache is off.
func pushSkewed(b *Binner, n int) {
	for i := 0; i < n; i++ {
		v := int64(i % 977)
		if i%3 == 0 {
			v = int64(i % 7) // hot values: cache hits / RAW hazards
		}
		b.Push(v)
	}
}

// TestProfileSumsToOwnCycles is the core attribution invariant: the profile
// nodes a lane flushes sum exactly — not approximately — to the lane's own
// completion cycles, for cached, uncached, and fault-injected runs.
func TestProfileSumsToOwnCycles(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*BinnerConfig)
	}{
		{"cached", func(cfg *BinnerConfig) {}},
		{"no-cache-raw-stalls", func(cfg *BinnerConfig) { cfg.CacheBytes = 0 }},
		{"fault-injected", func(cfg *BinnerConfig) {
			cfg.Faults = faults.New(7, faults.Profile{
				faults.MemReadFlip:     0.01,
				faults.MemWriteFlip:    0.01,
				faults.MemLatencySpike: 0.05,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := hwprof.New()
			cfg := DefaultBinnerConfig()
			tc.mut(&cfg)
			cfg.Prof = p
			cfg.ProfLane = "laneX"
			pre, err := RangeFor(0, 1000, 1)
			if err != nil {
				t.Fatal(err)
			}
			b := NewBinner(cfg, pre)
			pushSkewed(b, 50_000)
			_, stats := b.Finish()
			if stats.Cycles == 0 {
				t.Fatal("workload produced zero cycles")
			}
			prof := p.Snapshot()
			if got := prof.TotalCycles(); got != stats.Cycles {
				t.Fatalf("profile total %d != BinnerStats.Cycles %d", got, stats.Cycles)
			}
			if got := prof.SubtreeCycles("laneX"); got != stats.Cycles {
				t.Fatalf("lane subtree %d != BinnerStats.Cycles %d", got, stats.Cycles)
			}
			// Finish again: the flush must be idempotent.
			_, again := b.Finish()
			if again.Cycles != stats.Cycles {
				t.Fatalf("second Finish changed cycles: %d != %d", again.Cycles, stats.Cycles)
			}
			if got := p.Snapshot().TotalCycles(); got != stats.Cycles {
				t.Fatalf("second Finish double-flushed: profile total %d != %d", got, stats.Cycles)
			}
		})
	}
}

// TestProfileFaultAttribution checks that injected faults are attributed,
// not lost: latency spikes show up under mem/update/spike (cycles and
// firings), ECC corrections and quarantines as event nodes — and the exact
// cycle-sum invariant still holds with all of it included.
func TestProfileFaultAttribution(t *testing.T) {
	p := hwprof.New()
	cfg := DefaultBinnerConfig()
	cfg.Faults = faults.New(3, faults.Profile{
		faults.MemReadFlip:     0.01,
		faults.MemWriteFlip:    0.05,
		faults.MemLatencySpike: 0.05,
	})
	cfg.Prof = p
	cfg.ProfLane = "lane0"
	pre, err := RangeFor(0, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinner(cfg, pre)
	pushSkewed(b, 50_000)
	_, stats := b.Finish()
	prof := p.Snapshot()

	if got := prof.TotalCycles(); got != stats.Cycles {
		t.Fatalf("profile total %d != Cycles %d under fault injection", got, stats.Cycles)
	}
	var spike, ecc, quarantine hwprof.Sample
	for _, s := range prof.Samples {
		switch fmt.Sprint(s.Stack) {
		case fmt.Sprint([]string{"lane0", "mem", "update", hwprof.ReasonSpike}):
			spike = s
		case fmt.Sprint([]string{"lane0", "mem", "update", hwprof.ReasonECC}):
			ecc = s
		case fmt.Sprint([]string{"lane0", "mem", "update", "quarantine"}):
			quarantine = s
		}
	}
	if spike.Cycles == 0 || spike.Events == 0 {
		t.Fatalf("latency spikes not attributed: %+v", spike)
	}
	if stats.FaultsCorrected > 0 && ecc.Events != stats.FaultsCorrected {
		t.Fatalf("ECC events %d != FaultsCorrected %d", ecc.Events, stats.FaultsCorrected)
	}
	if stats.BinsQuarantined > 0 && quarantine.Events != stats.BinsQuarantined {
		t.Fatalf("quarantine events %d != BinsQuarantined %d", quarantine.Events, stats.BinsQuarantined)
	}
}

// TestProfileMergeFlushesOnce: merging lanes must flush each lane exactly
// once, with the combined profile summing to the sum of the lanes' own
// cycles (work adds; only the completion time takes the max).
func TestProfileMergeFlushesOnce(t *testing.T) {
	p := hwprof.New()
	pre := func() *Preprocessor {
		pr, err := RangeFor(0, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	var own []int64
	mk := func(lane string, n int) *Binner {
		cfg := DefaultBinnerConfig()
		cfg.Prof = p
		cfg.ProfLane = lane
		b := NewBinner(cfg, pre())
		pushSkewed(b, n)
		return b
	}
	a := mk("lane0", 30_000)
	c := mk("lane1", 20_000)
	_, sa := a.Finish()
	_, sc := c.Finish()
	own = append(own, sa.Cycles, sc.Cycles)
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	_, merged := a.Finish()
	if want := maxi(own[0], own[1]); merged.Cycles != want {
		t.Fatalf("merged Cycles %d != max lane %d", merged.Cycles, want)
	}
	prof := p.Snapshot()
	if got, want := prof.TotalCycles(), own[0]+own[1]; got != want {
		t.Fatalf("profile total %d != sum of lane cycles %d", got, want)
	}
	if got := prof.SubtreeCycles("lane0"); got != own[0] {
		t.Fatalf("lane0 subtree %d != %d", got, own[0])
	}
	if got := prof.SubtreeCycles("lane1"); got != own[1] {
		t.Fatalf("lane1 subtree %d != %d", got, own[1])
	}
}

// TestChainChargeProfile re-derives the Table 2 latency formulas from the
// profile: the chain's three nodes (memory scan-out, daisy pass-through,
// block processing) must sum exactly to TotalCycles, with the scan node
// equal to ScanCyclesPerBin·Δ per pass of the critical block.
func TestChainChargeProfile(t *testing.T) {
	pre, err := RangeFor(0, 9999, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinner(DefaultBinnerConfig(), pre)
	for i := 0; i < 40_000; i++ {
		b.Push(int64(i % 10_000))
	}
	vec, _ := b.Finish()

	blocks := []Block{
		NewTopKBlock(32),
		NewEquiDepthBlock(16, vec.Total()),
		NewMaxDiffBlock(16),
		NewCompressedBlock(16, 16, vec.Total()),
	}
	res := NewScanner().Run(vec, blocks...)

	p := hwprof.New()
	res.ChargeProfile(p, "merged")
	prof := p.Snapshot()
	if got := prof.TotalCycles(); got != res.TotalCycles {
		t.Fatalf("chain profile total %d != ChainResult.TotalCycles %d", got, res.TotalCycles)
	}
	if got := prof.SubtreeCycles("merged", "chain"); got != res.TotalCycles {
		t.Fatalf("chain subtree %d != %d", got, res.TotalCycles)
	}
	// The critical block is the slowest completion; its scan-out share is
	// ScanCyclesPerBin·Δ per pass (Table 2's 2Δ terms at the default rate).
	crit := res.Timings[0]
	for _, tm := range res.Timings {
		if tm.CompletionCycles > crit.CompletionCycles {
			crit = tm
		}
	}
	wantScan := res.ScanCyclesPerBin * res.Delta * int64(crit.Scans)
	if got := prof.SubtreeCycles("merged", "chain", "scan"); got != wantScan {
		t.Fatalf("scan node %d != ScanCyclesPerBin*Delta*Scans = %d", got, wantScan)
	}
	wantDaisy := int64(crit.Position) * res.BlockPassCycles
	if got := prof.SubtreeCycles("merged", "chain", "daisy"); got != wantDaisy {
		t.Fatalf("daisy node %d != Position*BlockPassCycles = %d", got, wantDaisy)
	}
	if got := prof.SubtreeCycles("merged", "chain", crit.Name); got != res.TotalCycles-wantScan-wantDaisy {
		t.Fatalf("block node %d != remainder %d", got, res.TotalCycles-wantScan-wantDaisy)
	}
}

// TestProfileNilIsFree: with no profiler wired, the binner must behave and
// account identically to a profiled run — attribution must never perturb
// the simulation itself.
func TestProfileNilIsFree(t *testing.T) {
	run := func(p *hwprof.Profiler) BinnerStats {
		cfg := DefaultBinnerConfig()
		cfg.Prof = p
		pre, err := RangeFor(0, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBinner(cfg, pre)
		pushSkewed(b, 40_000)
		_, s := b.Finish()
		return s
	}
	bare := run(nil)
	profiled := run(hwprof.New())
	if bare != profiled {
		t.Fatalf("profiling changed the simulation: %+v != %+v", bare, profiled)
	}
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
