package core

import (
	"testing"

	"streamhist/internal/tpch"
)

func wireFixture(t *testing.T) *Results {
	t.Helper()
	rel := tpch.Synthetic(20000, 1, 2000, 0.8, 61)
	res, err := ProcessRelation(rel, "c0", func(c Config) Config {
		c.TopK = 8
		c.EquiDepthBuckets = 32
		c.MaxDiffBuckets = 16
		c.CompressedT = 8
		c.CompressedBuckets = 16
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultsWireRoundTrip(t *testing.T) {
	res := wireFixture(t)
	packet := EncodeResults(res)
	host, err := DecodeResults(packet)
	if err != nil {
		t.Fatal(err)
	}
	if host.Total != res.Bins.Total() {
		t.Errorf("total = %d, want %d", host.Total, res.Bins.Total())
	}
	if host.Distinct != int64(res.Bins.Cardinality()) {
		t.Errorf("distinct = %d", host.Distinct)
	}
	if len(host.TopK) != len(res.TopK) {
		t.Fatalf("topk %d != %d", len(host.TopK), len(res.TopK))
	}
	for i := range res.TopK {
		if host.TopK[i] != res.TopK[i] {
			t.Errorf("topk %d differs", i)
		}
	}
	if len(host.EquiDepth.Buckets) != len(res.EquiDepth.Buckets) {
		t.Fatalf("equi-depth buckets differ in count")
	}
	for i := range res.EquiDepth.Buckets {
		if host.EquiDepth.Buckets[i] != res.EquiDepth.Buckets[i] {
			t.Errorf("equi-depth bucket %d differs", i)
		}
	}
	for i := range res.MaxDiff.Buckets {
		if host.MaxDiff.Buckets[i] != res.MaxDiff.Buckets[i] {
			t.Errorf("max-diff bucket %d differs", i)
		}
	}
	for i := range res.Compressed.Frequent {
		if host.Compressed.Frequent[i] != res.Compressed.Frequent[i] {
			t.Errorf("compressed frequent %d differs", i)
		}
	}
	for i := range res.Compressed.Buckets {
		if host.Compressed.Buckets[i] != res.Compressed.Buckets[i] {
			t.Errorf("compressed bucket %d differs", i)
		}
	}
	// Decoded histograms estimate identically.
	for v := int64(0); v < 2000; v += 37 {
		if host.EquiDepth.EstimateEquals(v) != res.EquiDepth.EstimateEquals(v) {
			t.Fatalf("estimate differs at %d", v)
		}
	}
}

func TestResultsWirePartialBlocks(t *testing.T) {
	rel := tpch.Synthetic(3000, 1, 100, 0.5, 62)
	res, err := ProcessRelation(rel, "c0", func(c Config) Config {
		c.TopK = 0
		c.MaxDiffBuckets = 0
		c.CompressedBuckets = 0
		c.EquiDepthBuckets = 8
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := DecodeResults(EncodeResults(res))
	if err != nil {
		t.Fatal(err)
	}
	if host.TopK != nil || host.MaxDiff != nil || host.Compressed != nil {
		t.Error("disabled blocks appeared on the wire")
	}
	if host.EquiDepth == nil {
		t.Error("enabled block missing from the wire")
	}
}

func TestDecodeResultsRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10),
		make([]byte, 20), // header-sized, wrong magic
	}
	for i, data := range cases {
		if _, err := DecodeResults(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	res := wireFixture(t)
	good := EncodeResults(res)
	if _, err := DecodeResults(good[:len(good)-4]); err == nil {
		t.Error("truncated packet accepted")
	}
	if _, err := DecodeResults(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte(nil), good...)
	bad[20] = 99 // unknown section kind
	if _, err := DecodeResults(bad); err == nil {
		t.Error("unknown section kind accepted")
	}
}

func TestResultsWireSizeIsCompact(t *testing.T) {
	// The packet should be a few KB — Table 2's point that results are
	// tiny relative to the data (T+B entries, not the table).
	res := wireFixture(t)
	packet := EncodeResults(res)
	if len(packet) > 4096 {
		t.Errorf("packet is %d bytes; expected compact", len(packet))
	}
}
