package core

import (
	"testing"

	"streamhist/internal/datagen"
	"streamhist/internal/page"
	"streamhist/internal/table"
)

func parserSchema() *table.Schema {
	return table.NewSchema(
		table.Column{Name: "k", Type: table.Int64},
		table.Column{Name: "price", Type: table.Decimal, Scale: 2},
		table.Column{Name: "d", Type: table.Date},
		table.Column{Name: "od", Type: table.DateUnpacked},
	)
}

func parserRelation(rows int, seed uint64) *table.Relation {
	rel := table.NewRelation("t", parserSchema())
	rng := datagen.NewRNG(seed)
	for i := 0; i < rows; i++ {
		rel.Append(table.Row{
			rng.Int63n(1 << 30),
			rng.Int63n(1_000_000),
			rng.Int63n(25000),
			rng.Int63n(25000),
		})
	}
	return rel
}

func TestSpecFor(t *testing.T) {
	s := parserSchema()
	spec, err := SpecFor(s, "price")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Offset != 8 || spec.Type != table.Decimal {
		t.Errorf("spec = %+v", spec)
	}
	if _, err := SpecFor(s, "missing"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestParserExtractsEveryColumn(t *testing.T) {
	rel := parserRelation(3000, 1)
	pages := page.Encode(rel)
	for ci, col := range rel.Schema.Columns {
		spec, err := SpecFor(rel.Schema, col.Name)
		if err != nil {
			t.Fatal(err)
		}
		p := NewParser(spec)
		got, err := p.ParsePages(pages)
		if err != nil {
			t.Fatalf("column %s: %v", col.Name, err)
		}
		want := rel.Column(ci)
		if len(got) != len(want) {
			t.Fatalf("column %s: %d values, want %d", col.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %s row %d: %d != %d", col.Name, i, got[i], want[i])
			}
		}
		if p.Emitted() != int64(len(want)) {
			t.Errorf("Emitted = %d", p.Emitted())
		}
	}
}

func TestParserChunkedFeedingAnyBoundary(t *testing.T) {
	// The FSM must survive arbitrary chunk boundaries — single bytes,
	// prime-sized chunks, chunks spanning pages.
	rel := parserRelation(900, 2)
	pages := page.Encode(rel)
	var stream []byte
	for _, pg := range pages {
		stream = append(stream, pg.Bytes()...)
	}
	want := rel.ColumnByName("price")
	spec, _ := SpecFor(rel.Schema, "price")

	for _, chunk := range []int{1, 3, 7, 13, 101, 8191, 8192, 8193, 100000} {
		p := NewParser(spec)
		var got []int64
		var err error
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			got, err = p.Feed(stream[off:end], got)
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d values, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d row %d: %d != %d", chunk, i, got[i], want[i])
			}
		}
		if p.BytesConsumed() != int64(len(stream)) {
			t.Errorf("chunk %d: consumed %d bytes, want %d", chunk, p.BytesConsumed(), len(stream))
		}
	}
}

func TestParserFirstColumnAndLastColumn(t *testing.T) {
	// Offsets 0 and rowWidth-width exercise the psSkipPre/psSkipPost edges.
	rel := parserRelation(500, 3)
	pages := page.Encode(rel)
	for _, name := range []string{"k", "od"} {
		spec, _ := SpecFor(rel.Schema, name)
		p := NewParser(spec)
		got, err := p.ParsePages(pages)
		if err != nil {
			t.Fatal(err)
		}
		want := rel.ColumnByName(name)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s row %d: %d != %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestParserRejectsBadMagic(t *testing.T) {
	spec, _ := SpecFor(parserSchema(), "k")
	p := NewParser(spec)
	garbage := make([]byte, page.Size)
	if _, err := p.Feed(garbage, nil); err == nil {
		t.Error("garbage page accepted")
	}
}

func TestParserSingleColumnTable(t *testing.T) {
	// The Fig 17 one-column variant: column width == row width.
	sch := table.NewSchema(table.Column{Name: "v", Type: table.Int64})
	rel := table.NewRelation("one", sch)
	for i := int64(0); i < 5000; i++ {
		rel.Append(table.Row{i * 3})
	}
	spec, _ := SpecFor(sch, "v")
	p := NewParser(spec)
	got, err := p.ParsePages(page.Encode(rel))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 {
		t.Fatalf("extracted %d values", len(got))
	}
	for i, v := range got {
		if v != int64(i)*3 {
			t.Fatalf("row %d = %d", i, v)
		}
	}
}

func TestParserEmptyStream(t *testing.T) {
	spec, _ := SpecFor(parserSchema(), "k")
	p := NewParser(spec)
	got, err := p.Feed(nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty feed: %v, %v", got, err)
	}
}
