package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"streamhist/internal/hist"
)

// The statistic blocks emit their results on dedicated result ports (§5.2,
// Figure 11), which the platform multiplexes back to the host. This file
// defines that wire format end to end: a packet header, one section per
// enabled block, and the host-side decoder.
//
// Packet layout (little-endian):
//
//	[0:2]   magic 0xACC1
//	[2:4]   section count
//	[4:12]  total row count
//	[12:20] distinct count
//	then per section:
//	  [0]    section kind (wireTopK | wireEquiDepth | wireMaxDiff | wireCompressed)
//	  [1:3]  bucket count n
//	  [3:5]  frequent-entry count m
//	  m 16-byte frequent entries: value int64, count int64
//	  n 24-byte bucket entries:   low int64, high int64, count uint32, distinct uint32
//
// This is a superset of the paper's minimal (count, bins) pairs (§6.3):
// carrying the bucket boundaries explicitly makes the packet
// self-describing, so the host can install it in a catalog without
// consulting the bin region.

// Result-section kinds.
const (
	wireTopK       = 1
	wireEquiDepth  = 2
	wireMaxDiff    = 3
	wireCompressed = 4
)

// resultsMagic identifies a result packet.
const resultsMagic uint16 = 0xACC1

// ErrBadResults reports an undecodable result packet.
var ErrBadResults = errors.New("core: bad results packet")

// EncodeResults serialises the accelerator's outputs for the host.
func EncodeResults(r *Results) []byte {
	var out []byte
	var sections uint16

	hdr := make([]byte, 20)
	binary.LittleEndian.PutUint16(hdr[0:], resultsMagic)
	var total, distinct int64
	if r.Bins != nil {
		total = r.Bins.Total()
		distinct = int64(r.Bins.Cardinality())
	}
	binary.LittleEndian.PutUint64(hdr[4:], uint64(total))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(distinct))
	out = append(out, hdr...)

	appendSection := func(kind byte, freq []hist.FrequentValue, buckets []hist.Bucket) {
		sec := make([]byte, 5, 5+16*len(freq)+24*len(buckets))
		sec[0] = kind
		binary.LittleEndian.PutUint16(sec[1:], uint16(len(buckets)))
		binary.LittleEndian.PutUint16(sec[3:], uint16(len(freq)))
		var tmp [24]byte
		for _, f := range freq {
			binary.LittleEndian.PutUint64(tmp[0:], uint64(f.Value))
			binary.LittleEndian.PutUint64(tmp[8:], uint64(f.Count))
			sec = append(sec, tmp[:16]...)
		}
		for _, b := range buckets {
			binary.LittleEndian.PutUint64(tmp[0:], uint64(b.Low))
			binary.LittleEndian.PutUint64(tmp[8:], uint64(b.High))
			binary.LittleEndian.PutUint32(tmp[16:], uint32(b.Count))
			binary.LittleEndian.PutUint32(tmp[20:], uint32(b.Distinct))
			sec = append(sec, tmp[:24]...)
		}
		out = append(out, sec...)
		sections++
	}

	if r.TopK != nil {
		appendSection(wireTopK, r.TopK, nil)
	}
	if r.EquiDepth != nil {
		appendSection(wireEquiDepth, r.EquiDepth.Frequent, r.EquiDepth.Buckets)
	}
	if r.MaxDiff != nil {
		appendSection(wireMaxDiff, r.MaxDiff.Frequent, r.MaxDiff.Buckets)
	}
	if r.Compressed != nil {
		appendSection(wireCompressed, r.Compressed.Frequent, r.Compressed.Buckets)
	}
	binary.LittleEndian.PutUint16(out[2:], sections)
	return out
}

// HostResults is the host-side view decoded from a result packet.
type HostResults struct {
	Total      int64
	Distinct   int64
	TopK       []hist.FrequentValue
	EquiDepth  *hist.Histogram
	MaxDiff    *hist.Histogram
	Compressed *hist.Histogram
}

// DecodeResults parses a result packet.
func DecodeResults(data []byte) (*HostResults, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("%w: %d-byte packet", ErrBadResults, len(data))
	}
	if binary.LittleEndian.Uint16(data[0:]) != resultsMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadResults)
	}
	sections := int(binary.LittleEndian.Uint16(data[2:]))
	out := &HostResults{
		Total:    int64(binary.LittleEndian.Uint64(data[4:])),
		Distinct: int64(binary.LittleEndian.Uint64(data[12:])),
	}
	off := 20
	need := func(n int) error {
		if len(data)-off < n {
			return fmt.Errorf("%w: truncated section at %d", ErrBadResults, off)
		}
		return nil
	}

	for s := 0; s < sections; s++ {
		if err := need(5); err != nil {
			return nil, err
		}
		kind := data[off]
		n := int(binary.LittleEndian.Uint16(data[off+1:]))
		m := int(binary.LittleEndian.Uint16(data[off+3:]))
		off += 5
		if err := need(16*m + 24*n); err != nil {
			return nil, err
		}
		freq := make([]hist.FrequentValue, m)
		for i := range freq {
			freq[i].Value = int64(binary.LittleEndian.Uint64(data[off:]))
			freq[i].Count = int64(binary.LittleEndian.Uint64(data[off+8:]))
			off += 16
		}
		buckets := make([]hist.Bucket, n)
		for i := range buckets {
			buckets[i].Low = int64(binary.LittleEndian.Uint64(data[off:]))
			buckets[i].High = int64(binary.LittleEndian.Uint64(data[off+8:]))
			buckets[i].Count = int64(binary.LittleEndian.Uint32(data[off+16:]))
			buckets[i].Distinct = int64(binary.LittleEndian.Uint32(data[off+20:]))
			off += 24
		}
		if len(freq) == 0 {
			freq = nil
		}
		if len(buckets) == 0 {
			buckets = nil
		}
		switch kind {
		case wireTopK:
			out.TopK = freq
		case wireEquiDepth, wireMaxDiff, wireCompressed:
			h := &hist.Histogram{Buckets: buckets, Frequent: freq, Total: out.Total, DistinctTotal: out.Distinct}
			switch kind {
			case wireEquiDepth:
				h.Kind = hist.EquiDepth
				out.EquiDepth = h
			case wireMaxDiff:
				h.Kind = hist.MaxDiff
				out.MaxDiff = h
			default:
				h.Kind = hist.Compressed
				out.Compressed = h
			}
		default:
			return nil, fmt.Errorf("%w: unknown section kind %d", ErrBadResults, kind)
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadResults, len(data)-off)
	}
	return out, nil
}
