package server

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, FrameScan, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if f.Type != FrameScan || !bytes.Equal(f.Payload, p) {
			t.Fatalf("round trip mismatch: type=%d len=%d want len=%d", f.Type, len(f.Payload), len(p))
		}
		// DecodeFrame must agree with the streaming reader.
		enc := AppendFrame(nil, FrameScan, p)
		df, n, err := DecodeFrame(enc)
		if err != nil || n != len(enc) || df.Type != FrameScan || !bytes.Equal(df.Payload, p) {
			t.Fatalf("DecodeFrame mismatch: %v n=%d", err, n)
		}
	}
}

func TestReadFrameRejectsOversizedPayload(t *testing.T) {
	enc := AppendFrame(nil, FramePages, []byte{1, 2, 3})
	enc[4] = 0xFF
	enc[5] = 0xFF
	enc[6] = 0xFF
	enc[7] = 0x7F // declares ~2 GiB
	if _, err := ReadFrame(bytes.NewReader(enc)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized payload: got %v, want ErrBadFrame", err)
	}
	if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("DecodeFrame oversized payload: got %v, want ErrBadFrame", err)
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	enc := AppendFrame(nil, FrameScan, nil)
	enc[0] = 0x00
	if _, err := ReadFrame(bytes.NewReader(enc)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: got %v, want ErrBadFrame", err)
	}
}

func TestReadFrameEOFSemantics(t *testing.T) {
	// A clean end between frames is io.EOF; a mid-frame end is unexpected.
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
	enc := AppendFrame(nil, FrameScan, []byte{1, 2, 3})
	for _, cut := range []int{1, FrameHeaderSize - 1, FrameHeaderSize + 1} {
		if _, err := ReadFrame(bytes.NewReader(enc[:cut])); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestScanRequestRoundTrip(t *testing.T) {
	for _, req := range []ScanRequest{
		{Table: "lineitem", Column: "l_extendedprice"},
		{Table: "t", Column: ""},
	} {
		back, err := DecodeScanRequest(EncodeScanRequest(req))
		if err != nil {
			t.Fatalf("decode %+v: %v", req, err)
		}
		if back != req {
			t.Fatalf("round trip changed request: %+v -> %+v", req, back)
		}
	}
}

func TestScanRequestRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"empty table":   EncodeScanRequest(ScanRequest{Table: "", Column: "c"}),
		"trailing junk": append(EncodeScanRequest(ScanRequest{Table: "t", Column: "c"}), 0xFF),
		"huge name len": {0xFF, 0xFF},
	}
	for name, buf := range cases {
		if _, err := DecodeScanRequest(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestScanSummaryRoundTrip(t *testing.T) {
	s := ScanSummary{Pages: 7, Bytes: 7 * 8192, Rows: 7161, Refreshed: true, AccelCycles: 123456, AccelSeconds: 0.000823}
	back, err := DecodeScanSummary(EncodeScanSummary(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back != s {
		t.Fatalf("round trip changed summary: %+v -> %+v", s, back)
	}
	if _, err := DecodeScanSummary(EncodeScanSummary(s)[:20]); err == nil {
		t.Fatal("truncated summary decoded without error")
	}
}

func TestStatsResultRoundTrip(t *testing.T) {
	s := StatsResult{RowCount: 10, NDistinct: 3, Version: 2, Histogram: []byte{1, 2, 3, 4}}
	back, err := DecodeStatsResult(EncodeStatsResult(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.RowCount != s.RowCount || back.NDistinct != s.NDistinct ||
		back.Version != s.Version || !bytes.Equal(back.Histogram, s.Histogram) {
		t.Fatalf("round trip changed stats: %+v -> %+v", s, back)
	}
	if _, err := DecodeStatsResult(make([]byte, 23)); err == nil {
		t.Fatal("short stats result decoded without error")
	}
}

func TestTableListRoundTrip(t *testing.T) {
	tables := []TableInfo{
		{Name: "lineitem", Rows: 100, Columns: []string{"a", "b"}, StatsColumns: []string{"a"}},
		{Name: "empty", Rows: 0},
	}
	back, err := DecodeTableList(EncodeTableList(tables))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back) != len(tables) {
		t.Fatalf("got %d tables, want %d", len(back), len(tables))
	}
	for i := range tables {
		a, b := tables[i], back[i]
		if a.Name != b.Name || a.Rows != b.Rows ||
			strings.Join(a.Columns, ",") != strings.Join(b.Columns, ",") ||
			strings.Join(a.StatsColumns, ",") != strings.Join(b.StatsColumns, ",") {
			t.Fatalf("table %d changed: %+v -> %+v", i, a, b)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	for _, sentinel := range []error{ErrUnknownTable, ErrUnknownColumn, ErrNoStats, ErrBadRequest} {
		wrapped := DecodeError(EncodeError(sentinel))
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("sentinel %v lost across the wire: got %v", sentinel, wrapped)
		}
	}
	other := DecodeError(EncodeError(errors.New("disk on fire")))
	if other == nil || !strings.Contains(other.Error(), "disk on fire") {
		t.Fatalf("generic error lost its message: %v", other)
	}
}
