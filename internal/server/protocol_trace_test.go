package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"streamhist/internal/obs"
)

// A traced scan request round-trips through the versioned trace-context
// tail, and an untraced request's encoding is byte-identical to the
// pre-tracing layouts (no tail / offset-only tail).
func TestScanRequestTraceContextRoundTrip(t *testing.T) {
	req := ScanRequest{
		Table: "lineitem", Column: "l_tax", Offset: 96,
		TraceID: 0xdeadbeefcafef00d, ParentSpanID: 0x0123456789abcdef,
	}
	enc := EncodeScanRequest(req)
	got, err := DecodeScanRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("decoded %+v, want %+v", got, req)
	}
	// The tail always carries the offset field, even at zero, so length
	// alone discriminates the layouts.
	req.Offset = 0
	if got, err = DecodeScanRequest(EncodeScanRequest(req)); err != nil || got != req {
		t.Fatalf("zero-offset traced request: %+v (%v)", got, err)
	}
}

// legacyRequestBytes hand-builds the pre-tracing wire layouts.
func legacyRequestBytes(table, column string, offset uint32) []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint16(out, uint16(len(table)))
	out = append(out, table...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(column)))
	out = append(out, column...)
	if offset > 0 {
		out = binary.LittleEndian.AppendUint32(out, offset)
	}
	return out
}

func TestScanRequestUntracedStaysLegacyBytes(t *testing.T) {
	for _, offset := range []uint32{0, 7} {
		req := ScanRequest{Table: "lineitem", Column: "l_tax", Offset: offset}
		if got, want := EncodeScanRequest(req), legacyRequestBytes("lineitem", "l_tax", offset); !bytes.Equal(got, want) {
			t.Fatalf("offset %d: encoded % x, legacy layout % x", offset, got, want)
		}
	}
}

// Version gating on the trace tail: version 0 is malformed, a future
// version is accepted but served untraced (never an error — a newer client
// must not be locked out of its data).
func TestScanRequestTraceVersionGate(t *testing.T) {
	req := ScanRequest{Table: "t", Column: "c", Offset: 5, TraceID: 9, ParentSpanID: 11}
	enc := EncodeScanRequest(req)
	verAt := len(enc) - traceContextSize

	enc[verAt] = 0
	if _, err := DecodeScanRequest(enc); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("version 0 decoded: %v", err)
	}

	enc[verAt] = traceContextVersion + 1
	got, err := DecodeScanRequest(enc)
	if err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
	if got.TraceID != 0 || got.ParentSpanID != 0 || got.Offset != 5 {
		t.Fatalf("future version decoded %+v, want untraced with offset kept", got)
	}

	// A tail length between the known layouts is malformed.
	if _, err := DecodeScanRequest(enc[:len(enc)-1]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("odd tail length decoded: %v", err)
	}
}

func TestTraceInfoCodec(t *testing.T) {
	ti := TraceInfo{TraceID: 0x1122334455667788, RootSpanID: 0x99aabbccddeeff00}
	enc := EncodeTraceInfo(ti)
	if len(enc) != traceContextSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), traceContextSize)
	}
	got, err := DecodeTraceInfo(enc)
	if err != nil || got != ti {
		t.Fatalf("round trip: %+v (%v)", got, err)
	}

	if _, err := DecodeTraceInfo(enc[:16]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short payload decoded: %v", err)
	}
	if _, err := DecodeTraceInfo(append(enc, 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("long payload decoded: %v", err)
	}
	enc[0] = 0
	if _, err := DecodeTraceInfo(enc); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("version 0 decoded: %v", err)
	}
	// Forward compat: a future version with the v1 size still decodes.
	enc[0] = traceContextVersion + 3
	if got, err := DecodeTraceInfo(enc); err != nil || got != ti {
		t.Fatalf("future version: %+v (%v)", got, err)
	}
}

func TestTraceReportCodec(t *testing.T) {
	rep := TraceReport{
		TraceID: 0xf00d,
		Spans: []obs.Span{
			{Name: "scan", Lane: -1, StartNS: 100, DurNS: 900, SpanID: 4},
			{Name: "lane", Lane: 2, StartNS: 120, DurNS: 40, HWCycles: 33, SpanID: 5, ParentID: 4, Retired: true},
		},
	}
	enc := EncodeTraceReport(rep)
	got, err := DecodeTraceReport(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != rep.TraceID || len(got.Spans) != 2 ||
		got.Spans[0] != rep.Spans[0] || got.Spans[1] != rep.Spans[1] {
		t.Fatalf("round trip: %+v", got)
	}
	if !bytes.Equal(EncodeTraceReport(got), enc) {
		t.Fatal("re-encoding differs")
	}

	mutate := func(f func(b []byte) []byte) error {
		b := f(append([]byte(nil), enc...))
		_, err := DecodeTraceReport(b)
		return err
	}
	cases := map[string]func(b []byte) []byte{
		"short header":  func(b []byte) []byte { return b[:10] },
		"version 0":     func(b []byte) []byte { b[0] = 0; return b },
		"zero trace id": func(b []byte) []byte { copy(b[1:9], make([]byte, 8)); return b },
		"count overflow": func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[9:11], uint16(maxListEntries+1))
			return b
		},
		"truncated span": func(b []byte) []byte { return b[:len(b)-3] },
		"trailing bytes": func(b []byte) []byte { return append(b, 0xff) },
		"reserved flags": func(b []byte) []byte { b[len(b)-1] |= 0x30; return b },
	}
	for name, f := range cases {
		if err := mutate(f); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: decoded with err %v, want ErrBadFrame", name, err)
		}
	}

	// An empty span list is well-formed (a client may have nothing to say).
	empty := EncodeTraceReport(TraceReport{TraceID: 1})
	if got, err := DecodeTraceReport(empty); err != nil || len(got.Spans) != 0 || got.TraceID != 1 {
		t.Fatalf("empty report: %+v (%v)", got, err)
	}
}
