package server

import "sync/atomic"

// metrics is the server's hot-path instrumentation. Counters are plain
// atomics so a scan never takes a lock to account for itself.
type metrics struct {
	scansServed   atomic.Int64
	pagesMoved    atomic.Int64
	bytesMoved    atomic.Int64
	rowsBinned    atomic.Int64
	histRefreshed atomic.Int64
	statsServed   atomic.Int64
	sideSkipped   atomic.Int64
	parseErrors   atomic.Int64
	accelCycles   atomic.Int64
	activeConns   atomic.Int64
	laneMerges    atomic.Int64

	pagesQuarantined atomic.Int64
	lanesRetired     atomic.Int64
	scansDegraded    atomic.Int64
	retriesServed    atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of the server counters.
type MetricsSnapshot struct {
	// ScansServed counts completed SCAN requests; BytesMoved and PagesMoved
	// count the page payload delivered across all of them.
	ScansServed int64
	PagesMoved  int64
	BytesMoved  int64
	// RowsBinned counts column values pushed through the Binner side path.
	RowsBinned int64
	// HistogramsRefreshed counts catalog installs produced by served scans.
	HistogramsRefreshed int64
	// StatsServed counts answered STATS requests.
	StatsServed int64
	// SideSkipped counts scans that streamed without a side path because
	// the drain pool was saturated (the fail-open case).
	SideSkipped int64
	// ParseErrors counts side paths abandoned on malformed page bytes.
	ParseErrors int64
	// AccelCycles accumulates the simulated accelerator cycles (binning
	// pipeline + histogram chain) across refreshes.
	AccelCycles int64
	// ActiveConns is the number of currently registered connections.
	ActiveConns int64
	// ShardLanes is the configured side-path fan-out: how many parallel
	// Parser+Binner lanes each served scan shards its page frames across.
	ShardLanes int64
	// LaneMerges counts binner-state merges performed at side-path fan-in
	// (ShardLanes-1 per refreshed scan).
	LaneMerges int64
	// PagesQuarantined counts side-path page copies that failed their
	// storage checksum and were skipped by the binner.
	PagesQuarantined int64
	// LanesRetired counts side-path lanes abandoned after a panic or a
	// stall past the supervision timeout.
	LanesRetired int64
	// ScansDegraded counts scans whose summary reported a degraded (or
	// absent) statistics side effect while the raw stream completed.
	ScansDegraded int64
	// RetriesServed counts scans resumed from a nonzero page offset by a
	// reconnecting client.
	RetriesServed int64
}

// Metrics returns a snapshot of the server's counters.
func (s *Server) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		ScansServed:         s.metrics.scansServed.Load(),
		PagesMoved:          s.metrics.pagesMoved.Load(),
		BytesMoved:          s.metrics.bytesMoved.Load(),
		RowsBinned:          s.metrics.rowsBinned.Load(),
		HistogramsRefreshed: s.metrics.histRefreshed.Load(),
		StatsServed:         s.metrics.statsServed.Load(),
		SideSkipped:         s.metrics.sideSkipped.Load(),
		ParseErrors:         s.metrics.parseErrors.Load(),
		AccelCycles:         s.metrics.accelCycles.Load(),
		ActiveConns:         s.metrics.activeConns.Load(),
		ShardLanes:          int64(s.cfg.ShardLanes),
		LaneMerges:          s.metrics.laneMerges.Load(),
		PagesQuarantined:    s.metrics.pagesQuarantined.Load(),
		LanesRetired:        s.metrics.lanesRetired.Load(),
		ScansDegraded:       s.metrics.scansDegraded.Load(),
		RetriesServed:       s.metrics.retriesServed.Load(),
	}
}
