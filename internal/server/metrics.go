package server

import (
	"fmt"

	"streamhist/internal/hw"
	"streamhist/internal/obs"
	"streamhist/internal/sketch"
)

// metrics is the server's instrumentation, backed by registry instruments so
// a single atomic update feeds both MetricsSnapshot and the /metrics
// exposition. Counters are bumped once per scan/phase, never per page or per
// value, so the hot path cost is unchanged from the old plain-atomics struct.
type metrics struct {
	scansServed   *obs.Counter
	pagesMoved    *obs.Counter
	bytesMoved    *obs.Counter
	rowsBinned    *obs.Counter
	histRefreshed *obs.Counter
	statsServed   *obs.Counter
	sideSkipped   *obs.Counter
	parseErrors   *obs.Counter
	accelCycles   *obs.Counter
	laneMerges    *obs.Counter

	pagesQuarantined *obs.Counter
	lanesRetired     *obs.Counter
	scansDegraded    *obs.Counter
	retriesServed    *obs.Counter
	resumesAdopted   *obs.Counter

	// traceReports / traceReportsBad count the client span trailers the
	// tracing handshake delivered — and the malformed ones dropped without
	// a reply (the trailer is one-way by contract).
	traceReports    *obs.Counter
	traceReportsBad *obs.Counter

	// faultsCorrected / binsQuarantined fold the merged side path's ECC
	// accounting (BinnerStats.FaultsCorrected / BinsQuarantined) in at
	// fan-in, scan by scan.
	faultsCorrected *obs.Counter
	binsQuarantined *obs.Counter

	// hwprofAttributed accumulates what the scan arithmetic says the
	// hardware profile should hold: Σ healthy-lane cycles + aggregation +
	// chain per refreshed scan. The streamhist_hwprof_consistency gauge
	// compares the profiler's live total against this counter — the Table 2
	// re-derivation as a scrapeable self-check.
	hwprofAttributed *obs.Counter

	activeConns *obs.Gauge
	shardLanes  *obs.Gauge

	// laneCycles holds the last refreshed scan's per-lane binning cycles,
	// one gauge per configured shard lane.
	laneCycles []*obs.Gauge

	// scanLatency records every served scan's wall-clock duration
	// (nanoseconds in, seconds out) through the streaming-histogram
	// distribution, so /metrics p50/p90/p99 come from the repository's own
	// equi-depth construction.
	scanLatency *obs.Distribution

	// memEvents feeds live ECC/latency events from the fault-injected bin
	// memories, including lanes later retired (unlike the folded counters
	// above, which only see state that survived to the merge).
	memEvents hw.MemEvents
}

// newMetrics registers the server's instruments. A nil registry yields nil
// instruments throughout — every update degrades to a pointer check.
func newMetrics(reg *obs.Registry, lanes int) metrics {
	m := metrics{
		scansServed:   reg.Counter("streamhist_server_scans_served_total", "Completed SCAN requests."),
		pagesMoved:    reg.Counter("streamhist_server_pages_moved_total", "Page images delivered across all served scans."),
		bytesMoved:    reg.Counter("streamhist_server_bytes_moved_total", "Page payload bytes delivered across all served scans."),
		rowsBinned:    reg.Counter("streamhist_server_rows_binned_total", "Column values pushed through the Binner side path."),
		histRefreshed: reg.Counter("streamhist_server_histograms_refreshed_total", "Catalog installs produced by served scans."),
		statsServed:   reg.Counter("streamhist_server_stats_served_total", "Answered STATS requests."),
		sideSkipped:   reg.Counter("streamhist_server_side_skipped_total", "Scans streamed without a side path because the drain pool was saturated."),
		parseErrors:   reg.Counter("streamhist_server_parse_errors_total", "Side paths abandoned on malformed page bytes."),
		accelCycles:   reg.Counter("streamhist_server_accel_cycles_total", "Simulated accelerator cycles (binning pipeline plus histogram chain) across refreshes."),
		laneMerges:    reg.Counter("streamhist_server_lane_merges_total", "Binner-state merges performed at side-path fan-in."),

		pagesQuarantined: reg.Counter("streamhist_server_pages_quarantined_total", "Side-path page copies that failed their storage checksum and were skipped."),
		lanesRetired:     reg.Counter("streamhist_server_lanes_retired_total", "Side-path lanes abandoned after a panic or a stall past the supervision timeout."),
		scansDegraded:    reg.Counter("streamhist_server_scans_degraded_total", "Scans whose summary reported a degraded (or absent) statistics side effect."),
		retriesServed:    reg.Counter("streamhist_server_retries_served_total", "Scans resumed from a nonzero page offset by a reconnecting client."),
		resumesAdopted:   reg.Counter("streamhist_server_resumes_adopted_total", "Resumed scans matched to an in-flight journal entry recovered from a previous process."),

		traceReports:    reg.Counter("streamhist_server_trace_reports_total", "Client span trailers accepted and stored for trace assembly."),
		traceReportsBad: reg.Counter("streamhist_server_trace_reports_bad_total", "Malformed client span trailers dropped without a reply."),

		faultsCorrected: reg.Counter("streamhist_server_ecc_corrected_total", "Injected bin-memory upsets ECC repaired in merged side-path state."),
		binsQuarantined: reg.Counter("streamhist_server_bins_quarantined_total", "Bins lost to uncorrectable memory upsets in merged side-path state."),

		hwprofAttributed: reg.Counter("streamhist_hwprof_attributed_cycles_total", "Cycles the scan arithmetic (healthy lanes + aggregation + chain) expects the hardware profile to hold."),

		activeConns: reg.Gauge("streamhist_server_active_conns", "Currently registered connections."),
		shardLanes:  reg.Gauge("streamhist_server_shard_lanes", "Configured side-path fan-out (parallel Parser+Binner lanes per scan)."),

		scanLatency: reg.Distribution("streamhist_server_scan_duration_seconds", "Wall-clock duration of served scans.", 1e-9),

		memEvents: hw.MemEvents{
			Corrected:   reg.Counter("streamhist_hw_ecc_corrected_events_total", "Live single-bit bin-memory upsets repaired by ECC (all lanes, retired included)."),
			Quarantined: reg.Counter("streamhist_hw_ecc_quarantined_events_total", "Live bin-memory words lost to uncorrectable upsets (all lanes, retired included)."),
			SpikeCycles: reg.Counter("streamhist_hw_mem_spike_cycles_total", "Extra cycles injected by memory latency spikes."),
		},
	}
	m.shardLanes.Set(int64(lanes))
	m.laneCycles = make([]*obs.Gauge, lanes)
	for i := range m.laneCycles {
		m.laneCycles[i] = reg.Gauge(
			fmt.Sprintf("streamhist_server_lane_cycles{lane=%q}", fmt.Sprint(i)),
			"Binning cycles charged to each side-path lane by the most recent refreshed scan.")
	}
	return m
}

// setLaneCycles records one healthy lane's binning cycles from the most
// recent refreshed scan.
func (m *metrics) setLaneCycles(lane int, cycles int64) {
	if lane >= 0 && lane < len(m.laneCycles) {
		m.laneCycles[lane].Set(cycles)
	}
}

// publishHwprof mirrors the hardware profiler's cycle totals into gauges,
// aggregated over lanes to per-(module,stage,reason) so the exposition's
// cardinality stays bounded by the stack vocabulary, not the lane count.
// Runs once per refreshed scan, off the data path.
func (s *Server) publishHwprof() {
	p := s.obs.Profiler()
	reg := s.obs.Registry()
	if p == nil || reg == nil {
		return
	}
	totals := make(map[[3]string]int64)
	for _, smp := range p.Snapshot().Samples {
		if len(smp.Stack) != 4 || smp.Cycles == 0 {
			continue
		}
		totals[[3]string{smp.Stack[1], smp.Stack[2], smp.Stack[3]}] += smp.Cycles
	}
	for k, v := range totals {
		reg.Gauge(
			fmt.Sprintf("streamhist_hwprof_cycles{module=%q,stage=%q,reason=%q}",
				obs.LabelValue(k[0]), obs.LabelValue(k[1]), obs.LabelValue(k[2])),
			"Simulated cycles attributed by the hardware profiler, summed over lanes.").Set(v)
	}
}

// publishSketch mirrors the most recent refreshed scan's merged sketch chain
// into gauges: items consumed and degradation per block, plus the HLL NDV
// estimate. Cardinality is bounded by the chain's block vocabulary. Runs once
// per refreshed scan, off the data path; a nil chain publishes nothing.
func (s *Server) publishSketch(c *sketch.Chain) {
	reg := s.obs.Registry()
	if c == nil || reg == nil {
		return
	}
	for _, b := range c.Blocks() {
		name := obs.LabelValue(b.Name())
		reg.Gauge(
			fmt.Sprintf("streamhist_sketch_items{block=%q}", name),
			"Values consumed per sketch block by the most recent refreshed scan's merged chain.").Set(b.Items())
		var deg int64
		if b.Degraded() {
			deg = 1
		}
		reg.Gauge(
			fmt.Sprintf("streamhist_sketch_degraded{block=%q}", name),
			"1 when the sketch block's state is suspect (fault-corrupted, retired, or fed an incomplete stream).").Set(deg)
	}
	if ndv, ok := c.Blocks().NDVEstimate(); ok {
		reg.Gauge("streamhist_sketch_ndv_estimate",
			"HyperLogLog distinct-count estimate from the most recent refreshed scan.").Set(int64(ndv + 0.5))
	}
}

// MetricsSnapshot is a point-in-time copy of the server counters.
type MetricsSnapshot struct {
	// ScansServed counts completed SCAN requests; BytesMoved and PagesMoved
	// count the page payload delivered across all of them.
	ScansServed int64
	PagesMoved  int64
	BytesMoved  int64
	// RowsBinned counts column values pushed through the Binner side path.
	RowsBinned int64
	// HistogramsRefreshed counts catalog installs produced by served scans.
	HistogramsRefreshed int64
	// StatsServed counts answered STATS requests.
	StatsServed int64
	// SideSkipped counts scans that streamed without a side path because
	// the drain pool was saturated (the fail-open case).
	SideSkipped int64
	// ParseErrors counts side paths abandoned on malformed page bytes.
	ParseErrors int64
	// AccelCycles accumulates the simulated accelerator cycles (binning
	// pipeline + histogram chain) across refreshes.
	AccelCycles int64
	// ActiveConns is the number of currently registered connections.
	ActiveConns int64
	// ShardLanes is the configured side-path fan-out: how many parallel
	// Parser+Binner lanes each served scan shards its page frames across.
	ShardLanes int64
	// LaneMerges counts binner-state merges performed at side-path fan-in
	// (ShardLanes-1 per refreshed scan).
	LaneMerges int64
	// PagesQuarantined counts side-path page copies that failed their
	// storage checksum and were skipped by the binner.
	PagesQuarantined int64
	// LanesRetired counts side-path lanes abandoned after a panic or a
	// stall past the supervision timeout.
	LanesRetired int64
	// ScansDegraded counts scans whose summary reported a degraded (or
	// absent) statistics side effect while the raw stream completed.
	ScansDegraded int64
	// RetriesServed counts scans resumed from a nonzero page offset by a
	// reconnecting client.
	RetriesServed int64
	// FaultsCorrected counts injected bin-memory upsets that ECC repaired in
	// side-path state that survived to the fan-in merge.
	FaultsCorrected int64
	// BinsQuarantined counts bins lost to uncorrectable memory upsets in
	// merged side-path state (the histogram was marked degraded).
	BinsQuarantined int64
}

// Metrics returns a snapshot of the server's counters. It reads the same
// registry instruments /metrics exposes, so the two views cannot drift.
func (s *Server) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		ScansServed:         s.metrics.scansServed.Value(),
		PagesMoved:          s.metrics.pagesMoved.Value(),
		BytesMoved:          s.metrics.bytesMoved.Value(),
		RowsBinned:          s.metrics.rowsBinned.Value(),
		HistogramsRefreshed: s.metrics.histRefreshed.Value(),
		StatsServed:         s.metrics.statsServed.Value(),
		SideSkipped:         s.metrics.sideSkipped.Value(),
		ParseErrors:         s.metrics.parseErrors.Value(),
		AccelCycles:         s.metrics.accelCycles.Value(),
		ActiveConns:         s.metrics.activeConns.Value(),
		ShardLanes:          int64(s.cfg.ShardLanes),
		LaneMerges:          s.metrics.laneMerges.Value(),
		PagesQuarantined:    s.metrics.pagesQuarantined.Value(),
		LanesRetired:        s.metrics.lanesRetired.Value(),
		ScansDegraded:       s.metrics.scansDegraded.Value(),
		RetriesServed:       s.metrics.retriesServed.Value(),
		FaultsCorrected:     s.metrics.faultsCorrected.Value(),
		BinsQuarantined:     s.metrics.binsQuarantined.Value(),
	}
}
