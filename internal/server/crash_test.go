package server_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"streamhist/internal/client"
	"streamhist/internal/durable"
	"streamhist/internal/page"
	"streamhist/internal/server"
	"streamhist/internal/stream"
)

// TestCrashServerHelper is not a test: it is the child half of the kill -9
// chaos harness. When re-executed with STREAMHIST_CRASH_HELPER=1 it opens the
// durability directory it was given, serves the deterministic relation on a
// loopback listener, publishes the address atomically into the directory, and
// then blocks until the parent SIGKILLs it.
func TestCrashServerHelper(t *testing.T) {
	dir := os.Getenv("STREAMHIST_CRASH_DIR")
	if os.Getenv("STREAMHIST_CRASH_HELPER") != "1" || dir == "" {
		t.Skip("helper process entry point; run via TestCrashKill9ScanResume")
	}
	m, err := durable.Open(filepath.Join(dir, "state"), durable.Options{
		CheckpointInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("helper open: %v", err)
	}
	srv := server.New(server.Config{Durable: m, PagesPerFrame: 2})
	if err := srv.Register(testRelation(20000)); err != nil {
		t.Fatalf("helper register: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper listen: %v", err)
	}
	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatalf("helper addr: %v", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		t.Fatalf("helper addr rename: %v", err)
	}
	srv.Serve(context.Background(), ln) //nolint:errcheck // killed, never returns
}

// startCrashHelper re-executes the test binary as the helper server process
// and waits for it to publish its address.
func startCrashHelper(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(filepath.Join(dir, "addr"))
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashServerHelper$")
	cmd.Env = append(os.Environ(),
		"STREAMHIST_CRASH_HELPER=1",
		"STREAMHIST_CRASH_DIR="+dir,
	)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil && len(b) > 0 {
			return cmd, string(b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Kill() //nolint:errcheck
	cmd.Wait()         //nolint:errcheck
	t.Fatal("helper did not publish an address in 30s")
	return nil, ""
}

// pollCatalogHasEntry waits until a read-only Inspect of the (live) durable
// directory shows the column's statistics — i.e. the entry is actually on
// disk, so a SIGKILL afterwards cannot lose it. Concurrent writes by the
// helper can tear an individual read; inspection errors just mean try again.
func pollCatalogHasEntry(t *testing.T, stateDir, table, column string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		cat, _, err := durable.Inspect(stateDir)
		if err == nil && cat.Get(table, column) != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s.%s never became durable on disk", table, column)
}

// slowSink throttles page consumption so a scan spans real wall-clock time
// and the seeded SIGKILL has a window to land mid-stream.
type slowSink struct {
	buf   bytes.Buffer
	delay time.Duration
}

func (s *slowSink) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.buf.Write(p)
}

// TestCrashKill9ScanResume is the process-level half of the kill -9 proof:
// across seeds, a real child process serving a durable catalog is SIGKILLed
// at a random point while a client scan is in flight, restarted from disk,
// and the client's redial-resume must complete the scan with delivered bytes
// identical to a clean run — while the statistics a pre-kill scan installed
// come back byte-identical. Seeds widen via STREAMHIST_CRASH_SEEDS.
func TestCrashKill9ScanResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs child processes")
	}
	seeds := 3
	if env := os.Getenv("STREAMHIST_CRASH_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("bad STREAMHIST_CRASH_SEEDS %q", env)
		}
		seeds = n
	}
	rel := testRelation(20000)
	want, err := io.ReadAll(stream.NewPagesReader(rel))
	if err != nil {
		t.Fatal(err)
	}

	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			stateDir := filepath.Join(dir, "state")
			cmd, addr := startCrashHelper(t, dir)
			killed := false
			defer func() {
				if cmd != nil && cmd.Process != nil {
					cmd.Process.Kill() //nolint:errcheck
					cmd.Wait()         //nolint:errcheck
				}
				_ = killed
			}()

			redial := func() (net.Conn, error) {
				deadline := time.Now().Add(20 * time.Second)
				for time.Now().Before(deadline) {
					if b, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil {
						if conn, err := net.DialTimeout("tcp", string(b), time.Second); err == nil {
							return conn, nil
						}
					}
					time.Sleep(10 * time.Millisecond)
				}
				return nil, fmt.Errorf("no server came back within 20s")
			}

			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial helper: %v", err)
			}
			c := client.New(conn)
			c.SetTimeout(20 * time.Second)
			c.SetRedial(redial)
			c.SetRetryPolicy(16, 2*time.Millisecond)
			defer c.Close()

			// Phase 1: a clean scan installs c1's statistics; wait until the
			// install is provably on disk, then snapshot its wire form.
			if _, err := c.Scan("synthetic", "c1", io.Discard); err != nil {
				t.Fatalf("pre-kill scan: %v", err)
			}
			pollCatalogHasEntry(t, stateDir, "synthetic", "c1")
			statsBefore, err := c.Stats("synthetic", "c1")
			if err != nil {
				t.Fatalf("pre-kill stats: %v", err)
			}

			// Phase 2: scan c2 through a throttled sink while a seeded timer
			// SIGKILLs the server mid-flight, then restarts it from disk.
			killDelay := time.Duration(2+seed*7%37) * time.Millisecond
			restarted := make(chan struct{})
			go func() {
				defer close(restarted)
				time.Sleep(killDelay)
				cmd.Process.Kill() //nolint:errcheck
				cmd.Wait()         //nolint:errcheck
				cmd, _ = startCrashHelper(t, dir)
			}()
			sink := &slowSink{delay: 500 * time.Microsecond}
			sum, err := c.Scan("synthetic", "c2", sink)
			<-restarted
			if err != nil {
				t.Fatalf("killed scan did not complete via resume: %v", err)
			}
			if !bytes.Equal(sink.buf.Bytes(), want) {
				t.Fatalf("delivered bytes differ from the clean run (%d vs %d bytes, %d retries)",
					sink.buf.Len(), len(want), sum.Retries)
			}
			if sum.Pages != uint32(len(want)/page.Size) {
				t.Fatalf("summary counts %d pages, want %d", sum.Pages, len(want)/page.Size)
			}

			// Phase 3: the statistics installed before the kill survive it
			// byte-identically. Stats has no resume machinery, so reconnect
			// to the restarted server explicitly.
			conn2, err := redial()
			if err != nil {
				t.Fatalf("reconnect for stats: %v", err)
			}
			c2 := client.New(conn2)
			c2.SetTimeout(20 * time.Second)
			defer c2.Close()
			statsAfter, err := c2.Stats("synthetic", "c1")
			if err != nil {
				t.Fatalf("post-restart stats: %v", err)
			}
			hb, _ := statsBefore.Histogram.MarshalBinary()
			ha, _ := statsAfter.Histogram.MarshalBinary()
			if !bytes.Equal(hb, ha) {
				t.Fatal("recovered c1 histogram differs from the pre-kill one")
			}
			if statsAfter.Version != statsBefore.Version ||
				statsAfter.RowCount != statsBefore.RowCount ||
				statsAfter.NDistinct != statsBefore.NDistinct {
				t.Fatalf("recovered stats header changed: %+v vs %+v", statsAfter, statsBefore)
			}
		})
	}
}
