package server_test

import (
	"bytes"
	"io"
	"os"
	"strconv"
	"testing"
	"time"

	"streamhist/internal/faults"
	"streamhist/internal/hist"
	"streamhist/internal/server"
)

// TestChaosNoThirdOutcome is the acceptance property of the whole fault
// posture, checked across every seeded profile:
//
//  1. Delivery is sacred: the pages the client sinks are byte-identical to
//     storage, whatever was injected.
//  2. Honesty is binary: a scan either completes Refreshed and not Degraded
//     with a histogram equal to the fault-free run's, or it reports
//     Degraded with at least one nonzero cause counter (quarantined pages,
//     retired lanes, skipped tuples, client retries, or a skipped side
//     path). There is no third outcome — no silent corruption, no
//     unexplained degradation.
//
// By default a dozen seeds per profile keep the tier-1 run fast;
// STREAMHIST_CHAOS_SEEDS widens the sweep (CI runs 100 per profile) and
// STREAMHIST_CHAOS_PROFILE pins one profile for a matrix job.
func TestChaosNoThirdOutcome(t *testing.T) {
	const rows = 3000
	rel := testRelation(rows)
	want := storageBytes(t, rows)

	// Fault-free reference histogram for the exactness half of the property.
	ref := func() *hist.Histogram {
		srv := server.New(server.Config{})
		if err := srv.Register(testRelation(rows)); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c := pipeClient(srv)
		defer c.Close()
		sum, err := c.Scan("synthetic", "c1", io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if !sum.Refreshed || sum.Degraded {
			t.Fatalf("fault-free scan not clean: %+v", sum)
		}
		st, err := c.Stats("synthetic", "c1")
		if err != nil {
			t.Fatal(err)
		}
		return st.Histogram
	}()

	seeds := 12
	if v := os.Getenv("STREAMHIST_CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("STREAMHIST_CHAOS_SEEDS=%q", v)
		}
		seeds = n
	}
	profiles := []string{
		faults.ProfileCorruptionHeavy,
		faults.ProfileLaneFailureHeavy,
		faults.ProfileNetworkFlaky,
	}
	if v := os.Getenv("STREAMHIST_CHAOS_PROFILE"); v != "" {
		profiles = []string{v}
	}

	for _, name := range profiles {
		profile, err := faults.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				srv := server.New(server.Config{
					Faults:           faults.New(uint64(seed), profile),
					PagesPerFrame:    2,
					ShardLanes:       4,
					SideStallTimeout: 50 * time.Millisecond,
				})
				if err := srv.Register(rel); err != nil {
					t.Fatal(err)
				}
				c := pipeClient(srv)

				var got bytes.Buffer
				sum, err := c.Scan("synthetic", "c1", &got)
				if err != nil {
					t.Fatalf("seed %d: scan failed outright: %v", seed, err)
				}
				if !bytes.Equal(got.Bytes(), want) {
					t.Fatalf("seed %d: delivered bytes differ from storage", seed)
				}

				m := srv.Metrics()
				switch {
				case sum.Refreshed && !sum.Degraded:
					// Outcome A: every fault was masked; the histogram
					// must be exactly the fault-free one.
					st, err := c.Stats("synthetic", "c1")
					if err != nil {
						t.Fatalf("seed %d: clean summary but no stats: %v", seed, err)
					}
					if !st.Histogram.Equal(ref) {
						t.Fatalf("seed %d: undegraded histogram differs from fault-free run", seed)
					}
				case sum.Degraded:
					// Outcome B: degradation with an attributed cause.
					cause := uint64(sum.QuarantinedPages) + uint64(sum.LanesRetired) +
						sum.SkippedTuples + uint64(sum.Retries) +
						uint64(m.SideSkipped) + uint64(m.PagesQuarantined) + uint64(m.LanesRetired)
					if cause == 0 {
						t.Fatalf("seed %d: Degraded with no cause counter set: %+v metrics %+v", seed, sum, m)
					}
					if m.ScansDegraded == 0 {
						t.Fatalf("seed %d: degraded summary not counted in metrics", seed)
					}
				default:
					t.Fatalf("seed %d: third outcome — not refreshed, not degraded: %+v", seed, sum)
				}

				c.Close()
				if err := srv.Close(); err != nil {
					t.Fatalf("seed %d: close: %v", seed, err)
				}
			}
		})
	}
}
