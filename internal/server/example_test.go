package server_test

import (
	"fmt"
	"io"
	"net"

	"streamhist/internal/client"
	"streamhist/internal/server"
	"streamhist/internal/table"
)

// ExampleServer shows the whole serving loop end to end, in process:
// register a relation, scan it over a pipe (the client receives the raw
// page bytes), and fetch the histogram that the scan refreshed for free.
func ExampleServer() {
	// A small relation: 1000 rows over ten distinct values.
	schema := table.NewSchema(table.Column{Name: "v", Type: table.Int64})
	rel := table.NewRelation("demo", schema)
	for i := 0; i < 1000; i++ {
		rel.Append(table.Row{int64(i % 10)})
	}

	srv := server.New(server.Config{})
	if err := srv.Register(rel); err != nil {
		fmt.Println("register:", err)
		return
	}
	sc, cc := net.Pipe()
	go srv.ServeConn(sc)

	c := client.New(cc)
	sum, err := c.Scan("demo", "v", io.Discard)
	if err != nil {
		fmt.Println("scan:", err)
		return
	}
	fmt.Printf("pages served: %d\n", sum.Pages)
	fmt.Printf("rows binned:  %d\n", sum.Rows)
	fmt.Printf("refreshed:    %v\n", sum.Refreshed)

	st, err := c.Stats("demo", "v")
	if err != nil {
		fmt.Println("stats:", err)
		return
	}
	fmt.Printf("stats:        %v\n", st.Histogram)
	fmt.Printf("rows ≤ 4:     %.0f\n", st.Histogram.EstimateLess(5))

	c.Close()
	srv.Close()
	// Output:
	// pages served: 1
	// rows binned:  1000
	// refreshed:    true
	// stats:        compressed{total=1000 distinct=10 frequent=10 buckets=0}
	// rows ≤ 4:     500
}
