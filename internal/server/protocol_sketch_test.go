package server

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Without sketches the encoder must emit the exact legacy layout — the fixed
// 24-byte header with the histogram as the remainder — so pre-sketch peers
// interoperate whenever there is nothing new to carry.
func TestStatsResultNoSketchesIsLegacyLayout(t *testing.T) {
	s := StatsResult{RowCount: 7, NDistinct: 3, Version: 9, Histogram: []byte{0x53, 0x48, 1, 2}}
	got := EncodeStatsResult(s)

	var want []byte
	want = binary.LittleEndian.AppendUint64(want, 7)
	want = binary.LittleEndian.AppendUint64(want, 3)
	want = binary.LittleEndian.AppendUint64(want, 9)
	want = append(want, s.Histogram...)
	if !bytes.Equal(got, want) {
		t.Fatalf("sketch-free encoding is not the legacy layout:\n got % x\nwant % x", got, want)
	}

	back, err := DecodeStatsResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sketches) != 0 || !bytes.Equal(back.Histogram, s.Histogram) {
		t.Fatalf("legacy round trip drifted: %+v", back)
	}
}

func TestStatsResultSketchV2RoundTrip(t *testing.T) {
	s := StatsResult{
		RowCount:  100,
		NDistinct: 42,
		Version:   3,
		Histogram: []byte{0x53, 0x48, 9, 9, 9},
		Sketches:  [][]byte{{0x53, 0x4B, 1}, {}, {0xAA, 0xBB, 0xCC, 0xDD}},
	}
	enc := EncodeStatsResult(s)
	if enc[24] != statsResultV2Marker {
		t.Fatalf("v2 payload missing marker at offset 24: %#x", enc[24])
	}
	back, err := DecodeStatsResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.RowCount != s.RowCount || back.NDistinct != s.NDistinct || back.Version != s.Version {
		t.Fatalf("header drifted: %+v", back)
	}
	if !bytes.Equal(back.Histogram, s.Histogram) {
		t.Fatal("histogram bytes drifted through v2")
	}
	if len(back.Sketches) != len(s.Sketches) {
		t.Fatalf("sketch count %d, want %d", len(back.Sketches), len(s.Sketches))
	}
	for i := range s.Sketches {
		if !bytes.Equal(back.Sketches[i], s.Sketches[i]) {
			t.Fatalf("sketch %d drifted", i)
		}
	}
}

// The marker byte cannot be mistaken for a legacy histogram: hist encodings
// open with 0x53 ("SH" magic, little-endian low byte), never 0xF2.
func TestStatsResultLegacyHistogramNotMistakenForV2(t *testing.T) {
	s := StatsResult{RowCount: 1, Histogram: []byte{0x53, 0x48, 0x02, 0x00}}
	back, err := DecodeStatsResult(EncodeStatsResult(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sketches) != 0 || !bytes.Equal(back.Histogram, s.Histogram) {
		t.Fatal("legacy histogram misparsed as v2")
	}
}

func TestStatsResultV2RejectsCorruption(t *testing.T) {
	valid := EncodeStatsResult(StatsResult{
		RowCount:  5,
		Histogram: []byte{0x53, 1, 2},
		Sketches:  [][]byte{{9, 9}, {8}},
	})
	cases := map[string][]byte{
		"truncated_after_marker": valid[:25],
		"truncated_hist_len":     valid[:27],
		"truncated_mid_sketch":   valid[:len(valid)-1],
		"trailing_bytes":         append(append([]byte(nil), valid...), 0x00),
	}
	for name, raw := range cases {
		if _, err := DecodeStatsResult(raw); err == nil {
			t.Errorf("%s: corrupt v2 payload decoded without error", name)
		}
	}

	// A claimed sketch count beyond the list cap must be rejected before any
	// allocation happens.
	var huge []byte
	huge = binary.LittleEndian.AppendUint64(huge, 1)
	huge = binary.LittleEndian.AppendUint64(huge, 1)
	huge = binary.LittleEndian.AppendUint64(huge, 1)
	huge = append(huge, statsResultV2Marker)
	huge = binary.LittleEndian.AppendUint32(huge, 0)
	huge = binary.LittleEndian.AppendUint16(huge, 0xFFFF)
	if _, err := DecodeStatsResult(huge); err == nil {
		t.Error("oversized sketch count decoded without error")
	}
}
