package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamhist/internal/core"
	"streamhist/internal/dbms"
	"streamhist/internal/durable"
	"streamhist/internal/faults"
	"streamhist/internal/hist"
	"streamhist/internal/hw"
	"streamhist/internal/hwprof"
	"streamhist/internal/obs"
	"streamhist/internal/page"
	"streamhist/internal/sketch"
	"streamhist/internal/table"
)

// ErrServerClosed is returned by Serve after a shutdown.
var ErrServerClosed = errors.New("server: closed")

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// DrainWorkers bounds how many scans may run a statistics side path at
	// once. When the pool is exhausted a scan still streams at full speed —
	// it just skips the side path (fail open, §4: the accelerator must
	// never slow the regular flow of data).
	DrainWorkers int
	// SideBufDepth is the per-lane side-channel depth in frames. A full
	// buffer applies backpressure to that scan, bounding memory instead of
	// dropping values, so a refreshed histogram is always complete.
	SideBufDepth int
	// ShardLanes is how many parallel Parser+Binner lanes each scan's side
	// path fans out to (the §7 replication design). Frames are distributed
	// round-robin across the lanes and the lanes' binner states are merged
	// before histogram creation. 0 means GOMAXPROCS.
	ShardLanes int
	// PagesPerFrame sets how many 8 KiB page images ride in one FramePages.
	PagesPerFrame int
	// IdleTimeout bounds the wait for the next request on a connection.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response frame write.
	WriteTimeout time.Duration
	// ShutdownGrace bounds the drain when Serve's context is cancelled.
	ShutdownGrace time.Duration
	// TopK and Buckets shape the Compressed histograms installed in the
	// catalog (T and B of the paper's evaluation setup).
	TopK, Buckets int
	// Binner overrides the accelerator simulation parameters.
	Binner core.BinnerConfig
	// Faults optionally wires the chaos harness into the serving path:
	// page corruption and truncation, connection resets, drain-pool
	// saturation, and bin-memory upsets all draw from this injector's
	// deterministic per-point streams. Nil (the default) disables every
	// injection; the fault-handling machinery itself always runs.
	Faults *faults.Injector
	// ScanDeadline bounds one scan's statistics side path. A side path
	// still running when the deadline fires is cancelled — the raw page
	// stream is never touched — and the scan reports Degraded instead of
	// installing a possibly stale histogram. Zero means no watchdog.
	ScanDeadline time.Duration
	// SideStallTimeout bounds how long the serving goroutine will wait on
	// a side-path lane that stopped accepting frames before retiring it.
	// Zero means 500ms.
	SideStallTimeout time.Duration
	// Obs is the observability bundle: metrics registry, scan tracer, and
	// structured logger. Nil gets a fresh obs.New() bundle (always-on
	// observability with a no-op logger); mount obs.Handler(srv.Obs(), ...)
	// to expose it over HTTP.
	Obs *obs.Obs
	// Sketch configures the daisy chain of statistic blocks each served
	// scan's side path runs beside the Binner, so every scan refreshes NDV,
	// heavy hitters, and a sliding-window aggregate along with the
	// histogram. The zero spec gets sketch.DefaultChainSpec(); set
	// SketchDisabled to turn the chain off entirely.
	Sketch sketch.ChainSpec
	// SketchDisabled turns the sketch chain off (the histogram side path is
	// unaffected).
	SketchDisabled bool
	// Durable attaches crash-safe persistence: the server adopts the
	// manager's recovered catalog (so statistics survive restarts), journals
	// every served scan's lifecycle at frame granularity, and matches resume
	// offsets against in-flight scans a dead process left behind. All
	// journal calls are asynchronous and nil-safe — a nil manager is the
	// ephemeral, byte-identical-to-before configuration.
	Durable *durable.Manager
}

func (c Config) withDefaults() Config {
	if c.DrainWorkers <= 0 {
		c.DrainWorkers = 8
	}
	if c.SideBufDepth <= 0 {
		c.SideBufDepth = 8
	}
	if c.ShardLanes <= 0 {
		c.ShardLanes = runtime.GOMAXPROCS(0)
	}
	if c.PagesPerFrame <= 0 {
		c.PagesPerFrame = 16
	}
	if c.PagesPerFrame*(page.Size+PageChecksumSize) > MaxPayload {
		c.PagesPerFrame = MaxPayload / (page.Size + PageChecksumSize)
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 5 * time.Second
	}
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.Buckets <= 0 {
		c.Buckets = 64
	}
	if c.Binner.Clock.Hz == 0 {
		faultsOverride := c.Binner.Faults
		c.Binner = core.DefaultBinnerConfig()
		c.Binner.Faults = faultsOverride
	}
	if c.SideStallTimeout <= 0 {
		c.SideStallTimeout = 500 * time.Millisecond
	}
	if c.SketchDisabled {
		c.Sketch = sketch.ChainSpec{}
	} else if !c.Sketch.Enabled() {
		c.Sketch = sketch.DefaultChainSpec()
	}
	return c
}

// colMeta is the per-column scan metadata computed at registration: the
// ColumnSpec the Parser needs and the value range the Binner is sized for —
// the "host-provided metadata" the paper piggybacks on the read command.
type colMeta struct {
	spec     core.ColumnSpec
	min, max int64
	ok       bool // false for empty columns: no side path possible
}

// tableEntry is one registered relation plus its lazily encoded page images
// and their storage-authoritative checksums.
type tableEntry struct {
	rel  *table.Relation
	cols map[string]colMeta

	once  sync.Once
	pages []*page.Page
	sums  []uint32
}

func (e *tableEntry) encode() {
	e.once.Do(func() {
		e.pages = page.Encode(e.rel)
		// Checksums are taken here, at encode time, before the images can
		// travel anywhere: every later consumer verifies against what
		// storage actually held, not against a possibly corrupted relay.
		e.sums = make([]uint32, len(e.pages))
		for i, p := range e.pages {
			e.sums[i] = p.Checksum()
		}
	})
}

func (e *tableEntry) pageImages() []*page.Page {
	e.encode()
	return e.pages
}

func (e *tableEntry) pageSums() []uint32 {
	e.encode()
	return e.sums
}

// connState tracks whether a connection is mid-request, so a graceful
// shutdown can close idle connections immediately and let active scans end.
type connState struct {
	mu     sync.Mutex
	active bool
}

// Server is the histserved scan service: it registers relations, streams
// their raw page bytes to clients, and — as a side effect of every served
// scan — refreshes the statistics catalog through the accelerator model.
type Server struct {
	cfg     Config
	catalog *dbms.Catalog

	mu     sync.RWMutex
	tables map[string]*tableEntry

	drainSem chan struct{}
	bufPool  sync.Pool

	connMu     sync.Mutex
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]*connState
	inShutdown bool

	wg sync.WaitGroup

	// scanSeq numbers served scans so each gets its own deterministic
	// fault-injection fork; the same number keys the scan's trace and its
	// log records.
	scanSeq atomic.Int64

	obs     *obs.Obs
	metrics metrics
}

// New builds a Server with the given configuration and an empty catalog.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	catalog := dbms.NewCatalog()
	if cfg.Durable != nil {
		// Startup recovery already ran inside durable.Open; adopting its
		// catalog (journal attached) makes every future install durable.
		catalog = cfg.Durable.Catalog()
	}
	s := &Server{
		cfg:       cfg,
		obs:       cfg.Obs,
		catalog:   catalog,
		tables:    make(map[string]*tableEntry),
		drainSem:  make(chan struct{}, cfg.DrainWorkers),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]*connState),
	}
	s.metrics = newMetrics(cfg.Obs.Registry(), cfg.ShardLanes)
	if prof := cfg.Obs.Profiler(); prof != nil {
		// The self-check of the whole attribution scheme, as a scrapeable
		// gauge: the profiler's live cycle total must equal what the PR 2
		// critical-path arithmetic attributed across refreshed scans. Any
		// drift — a lost spike, a double flush, a retired lane charged —
		// reads as 0 on the next scrape.
		expected := s.metrics.hwprofAttributed
		cfg.Obs.Registry().GaugeFunc("streamhist_hwprof_consistency",
			"1 when the hardware profile's cycle total matches the scan arithmetic attributed so far; 0 on drift.",
			func() float64 {
				if prof.TotalCycles() == expected.Value() {
					return 1
				}
				return 0
			})
	}
	if inj := cfg.Faults; inj != nil {
		// One computed gauge per injection point, read from the injector's
		// fork-tree-wide aggregate at scrape time: every scan's and lane's
		// child injector reports into the same totals.
		for _, p := range faults.Points() {
			p := p
			cfg.Obs.Registry().GaugeFunc(
				fmt.Sprintf("streamhist_fault_injections{point=%q}", obs.LabelValue(string(p))),
				"Fault-injection hits per point across the whole fork tree.",
				func() float64 { return float64(inj.TotalHits(p)) })
		}
	}
	frameBytes := cfg.PagesPerFrame * page.Size
	s.bufPool.New = func() any {
		b := make([]byte, 0, frameBytes)
		return &b
	}
	return s
}

// Obs exposes the server's observability bundle so a command can mount the
// introspection handler (obs.Handler) or swap in a real logger.
func (s *Server) Obs() *obs.Obs { return s.obs }

// Catalog exposes the server's statistics dictionary, e.g. to share it with
// an embedding planner or to inspect it in tests.
func (s *Server) Catalog() *dbms.Catalog { return s.catalog }

// Register adds (or replaces) a relation. Replacing bumps the catalog
// version so previously gathered statistics read as stale until the next
// served scan refreshes them.
func (s *Server) Register(rel *table.Relation) error {
	if rel == nil || rel.Name == "" {
		return fmt.Errorf("server: relation must have a name")
	}
	if len(rel.Name) > maxNameLen {
		return fmt.Errorf("server: table name %q exceeds %d bytes", rel.Name, maxNameLen)
	}
	cols := make(map[string]colMeta, rel.Schema.NumColumns())
	for _, c := range rel.Schema.Columns {
		spec, err := core.SpecFor(rel.Schema, c.Name)
		if err != nil {
			return err
		}
		m := colMeta{spec: spec}
		if vals := rel.ColumnByName(c.Name); len(vals) > 0 {
			m.min, m.max, m.ok = vals[0], vals[0], true
			for _, v := range vals {
				if v < m.min {
					m.min = v
				}
				if v > m.max {
					m.max = v
				}
			}
		}
		cols[c.Name] = m
	}
	s.mu.Lock()
	_, replaced := s.tables[rel.Name]
	s.tables[rel.Name] = &tableEntry{rel: rel, cols: cols}
	s.mu.Unlock()
	if replaced {
		s.catalog.BumpVersion(rel.Name)
	}
	return nil
}

func (s *Server) lookup(name string) (*tableEntry, error) {
	s.mu.RLock()
	e := s.tables[name]
	s.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, name)
	}
	return e, nil
}

// Serve accepts connections on ln until ctx is cancelled, then drains
// gracefully (bounded by Config.ShutdownGrace) and returns ErrServerClosed.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if s.shuttingDown() {
		return ErrServerClosed
	}
	s.connMu.Lock()
	s.listeners[ln] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.listeners, ln)
		s.connMu.Unlock()
	}()

	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.shuttingDown() {
				sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
				defer cancel()
				if serr := s.Shutdown(sctx); serr != nil {
					return fmt.Errorf("%w: drain: %v", ErrServerClosed, serr)
				}
				return ErrServerClosed
			}
			return err
		}
		st := s.trackConn(conn)
		if st == nil {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go s.handleConn(conn, st)
	}
}

// ServeConn serves one pre-established connection (e.g. one side of a
// net.Pipe) until the peer disconnects or the server shuts down. It blocks.
func (s *Server) ServeConn(conn net.Conn) {
	st := s.trackConn(conn)
	if st == nil {
		conn.Close()
		return
	}
	s.wg.Add(1)
	s.handleConn(conn, st)
}

func (s *Server) trackConn(conn net.Conn) *connState {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.inShutdown {
		return nil
	}
	st := &connState{}
	s.conns[conn] = st
	s.metrics.activeConns.Add(1)
	return st
}

func (s *Server) dropConn(conn net.Conn) {
	s.connMu.Lock()
	if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.metrics.activeConns.Add(-1)
	}
	s.connMu.Unlock()
}

func (s *Server) shuttingDown() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.inShutdown
}

// Shutdown stops accepting, lets in-flight requests finish, closes idle
// connections, and waits for every handler to exit. When ctx expires first,
// remaining connections are force-closed and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.connMu.Lock()
	s.inShutdown = true
	for ln := range s.listeners {
		ln.Close()
	}
	s.connMu.Unlock()

	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if s.closeIdleConns() == 0 {
			s.wg.Wait()
			return nil
		}
		select {
		case <-ctx.Done():
			s.closeAllConns()
			s.wg.Wait()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Close force-closes every listener and connection and waits for handlers.
func (s *Server) Close() error {
	s.connMu.Lock()
	s.inShutdown = true
	for ln := range s.listeners {
		ln.Close()
	}
	s.connMu.Unlock()
	s.closeAllConns()
	s.wg.Wait()
	return nil
}

// closeIdleConns closes connections not currently serving a request and
// returns how many connections remain registered.
func (s *Server) closeIdleConns() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for conn, st := range s.conns {
		st.mu.Lock()
		idle := !st.active
		st.mu.Unlock()
		if idle {
			conn.Close()
		}
	}
	return len(s.conns)
}

func (s *Server) closeAllConns() {
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
}

// deadlineWriter is the per-connection write path: every chunk it pushes to
// the connection re-arms the write deadline first, so the deadline bounds
// *lack of progress*, not total transfer time. A multi-frame scan to a slow
// but live client keeps extending its own deadline with every chunk the
// client absorbs; a dead client stops absorbing and trips the very next
// chunk. Writes are split into modest chunks so that progress is measured
// at sub-frame granularity even on unbuffered transports like net.Pipe.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

// deadlineChunk is the largest single write between deadline refreshes.
const deadlineChunk = 16 << 10

func (w *deadlineWriter) Write(p []byte) (int, error) {
	var total int
	for len(p) > 0 {
		n := len(p)
		if n > deadlineChunk {
			n = deadlineChunk
		}
		if w.timeout > 0 {
			w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
		}
		wrote, err := w.conn.Write(p[:n])
		total += wrote
		if err != nil {
			return total, err
		}
		p = p[wrote:]
	}
	return total, nil
}

// handleConn runs one connection's request loop.
func (s *Server) handleConn(conn net.Conn, st *connState) {
	defer func() {
		s.dropConn(conn)
		conn.Close()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(&deadlineWriter{conn: conn, timeout: s.cfg.WriteTimeout}, 64<<10)
	for {
		if s.shuttingDown() {
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := ReadFrame(br)
		if err != nil {
			// EOF, idle timeout, or an unframeable stream: nothing to
			// resynchronise on, drop the connection.
			return
		}
		st.mu.Lock()
		st.active = true
		st.mu.Unlock()
		err = s.dispatch(conn, bw, f)
		st.mu.Lock()
		st.active = false
		st.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// dispatch handles one request frame. A returned error means the connection
// is unusable (I/O failure); request-level failures are reported to the
// client in a FrameError and return nil.
func (s *Server) dispatch(conn net.Conn, bw *bufio.Writer, f Frame) error {
	switch f.Type {
	case FrameScan:
		req, err := DecodeScanRequest(f.Payload)
		if err != nil {
			return s.writeError(bw, fmt.Errorf("%w: %v", ErrBadRequest, err))
		}
		return s.handleScan(conn, bw, req)
	case FrameStats:
		req, err := DecodeScanRequest(f.Payload)
		if err != nil {
			return s.writeError(bw, fmt.Errorf("%w: %v", ErrBadRequest, err))
		}
		return s.handleStats(bw, req)
	case FrameList:
		return s.handleList(bw)
	case FrameTraceReport:
		// The client's span trailer. One-way by contract: the client does
		// not read a reply, so writing anything here — even a FrameError
		// for a malformed payload — would be consumed as the answer to the
		// client's NEXT request and desynchronise the stream. Decode
		// failures are counted, logged, and dropped (fail-open).
		rep, err := DecodeTraceReport(f.Payload)
		if err != nil {
			s.metrics.traceReportsBad.Add(1)
			s.obs.Logger().Warn("dropped malformed trace report", "err", err.Error())
			return nil
		}
		s.obs.Tracer().Report(rep.TraceID, rep.Spans)
		s.metrics.traceReports.Add(1)
		return nil
	default:
		return s.writeError(bw, fmt.Errorf("%w: unexpected frame type %d", ErrBadRequest, f.Type))
	}
}

func (s *Server) writeError(bw *bufio.Writer, err error) error {
	if werr := WriteFrame(bw, FrameError, EncodeError(err)); werr != nil {
		return werr
	}
	return bw.Flush()
}

// handleScan streams the relation's raw page images to the client and, on
// the side, bins the requested column and refreshes the catalog histogram.
// The serving path never waits for histogram construction: statistics are a
// by-product of the bytes that were moving anyway. Frames carry a per-page
// CRC32C trailer (FramePagesCk) computed at encode time, so corruption
// anywhere downstream of storage is detectable by every consumer. A nonzero
// request offset resumes an interrupted scan at that page: the remaining
// pages stream normally, but the side path is skipped — a partial scan
// cannot yield an honest histogram — and the summary reports Degraded.
func (s *Server) handleScan(conn net.Conn, bw *bufio.Writer, req ScanRequest) (err error) {
	// The scan number keys everything observable about this scan: its fault
	// fork, its trace, and its log records.
	id := uint64(s.scanSeq.Add(1))
	tr := s.obs.Tracer().Start(id, req.Table, req.Column, s.cfg.ShardLanes+4)
	// A request carrying trace context makes this scan continue the client's
	// distributed trace: the trace record keeps the wire identity and every
	// span recorded below gets a derived span ID under the server-side root.
	// The side salt folds in the local scan id so a redialled trace — several
	// server scans continuing the same trace ID — gets distinct span IDs per
	// attempt and each attempt's spans nest under their own "serve" root at
	// assembly. The root ID is derived even when no tracer is wired, so the
	// handshake frame is honest either way.
	var traceRoot uint64
	if req.TraceID != 0 {
		side := obs.SpanSideServer | id<<8
		traceRoot = obs.DeriveSpanID(req.TraceID, side, 0)
		tr.EnableTrace(req.TraceID, req.ParentSpanID, side)
	}
	scanStart := time.Now()
	resumed := req.Offset > 0
	var sum ScanSummary
	// failure captures request-level errors that are reported to the client
	// in-band (the connection stays usable, so err stays nil).
	var failure error
	defer func() {
		fail := err
		if fail == nil {
			fail = failure
		}
		if tr != nil {
			tr.AccelCycles = sum.AccelCycles
			tr.Refreshed = sum.Refreshed
			tr.Degraded = sum.Degraded
			if fail != nil {
				tr.Err = fail.Error()
			}
		}
		s.obs.Tracer().Publish(tr)
		// Traced scans pin their trace ID to the latency distribution's
		// exemplar slot, so the /metrics p99 line links back to a trace.
		s.metrics.scanLatency.ObserveWithExemplar(time.Since(scanStart).Nanoseconds(), req.TraceID)
		// The wide event: everything this scan did in one flight-recorder
		// row, keyed by the same id as the trace and the log records. The
		// trace is published (immutable) by now, so sharing its span slice
		// is safe.
		ev := obs.ScanEvent{
			ScanID: id, Source: "server",
			Table: req.Table, Column: req.Column,
			StartNS: scanStart.UnixNano(), WallNS: time.Since(scanStart).Nanoseconds(),
			Pages: sum.Pages, Bytes: sum.Bytes, Rows: sum.Rows,
			AccelCycles: sum.AccelCycles,
			Refreshed:   sum.Refreshed, Degraded: sum.Degraded, Resumed: resumed,
			QuarantinedPages: sum.QuarantinedPages, LanesRetired: sum.LanesRetired,
			SkippedTuples: sum.SkippedTuples,
		}
		if conn != nil && conn.RemoteAddr() != nil {
			ev.Client = conn.RemoteAddr().String()
		}
		if fail != nil {
			ev.Err = fail.Error()
		}
		if tr != nil {
			ev.Spans = tr.Spans
		}
		s.obs.FlightRec().Record(ev)
		log := s.obs.Logger()
		if fail != nil {
			log.Warn("scan failed", "scan", id, "table", req.Table,
				"column", req.Column, "err", fail.Error())
		} else {
			log.Info("scan served", "scan", id, "table", req.Table,
				"column", req.Column, "pages", sum.Pages, "bytes", sum.Bytes,
				"rows", sum.Rows, "refreshed", sum.Refreshed,
				"degraded", sum.Degraded, "accel_cycles", sum.AccelCycles,
				"dur", time.Since(scanStart))
		}
	}()

	ai := tr.Begin("accept")
	entry, failure := s.lookup(req.Table)
	if failure != nil {
		return s.writeError(bw, failure)
	}
	var meta colMeta
	if req.Column != "" {
		var ok bool
		meta, ok = entry.cols[req.Column]
		if !ok {
			failure = fmt.Errorf("%w: %q.%q", ErrUnknownColumn, req.Table, req.Column)
			return s.writeError(bw, failure)
		}
	}
	pages := entry.pageImages()
	sums := entry.pageSums()
	if req.Offset > uint32(len(pages)) {
		failure = fmt.Errorf("%w: resume offset %d beyond %d pages", ErrBadRequest, req.Offset, len(pages))
		return s.writeError(bw, failure)
	}
	tr.End(ai, 0)

	if req.TraceID != 0 {
		// The tracing handshake: sent first, before resume info or pages,
		// only for requests that carried trace context. Seeing it is what
		// licenses the client to send its span trailer later.
		if werr := WriteFrame(bw, FrameTraceInfo, EncodeTraceInfo(TraceInfo{
			TraceID:    req.TraceID,
			RootSpanID: traceRoot,
		})); werr != nil {
			return werr
		}
	}

	inj := s.cfg.Faults.Fork(fmt.Sprintf("scan%d", id))

	start := int(req.Offset)
	if resumed {
		s.metrics.retriesServed.Add(1)
		// Align the resume down to a frame boundary and announce the
		// effective start before any pages move: the frames re-sent from
		// here are byte-identical to the original delivery (same page
		// windows, same checksum trailers), and the client skips the
		// overlap it already verified.
		start -= start % s.cfg.PagesPerFrame
		if werr := WriteFrame(bw, FrameResumeInfo, EncodeResumeInfo(uint32(start))); werr != nil {
			return werr
		}
	}
	var sp *sidePath
	if !resumed {
		sp = s.startSidePath(entry, req, meta, inj, tr)
		if sp != nil {
			defer sp.abandon()
		}
	}

	// Scan journal: with durability attached the scan's lifecycle rides the
	// WAL at frame granularity, so a kill -9 mid-scan leaves a recoverable
	// in-flight record a restarted server can match a resume against. A
	// resume consumes the entry the dead process left behind; the journal
	// entry for this serving attempt closes whichever way it exits — only a
	// crash leaves it open, which is exactly what the journal records.
	dm := s.cfg.Durable
	if resumed {
		if rec, ok := dm.AdoptRecovered(req.Table, req.Column); ok {
			s.metrics.resumesAdopted.Add(1)
			s.obs.Logger().Info("resume adopted recovered scan", "scan", id,
				"journal", rec.ID, "table", req.Table, "column", req.Column,
				"journal_pages", rec.Pages, "resume_page", req.Offset)
		}
	}
	jid := dm.ScanStarted(req.Table, req.Column, uint32(start))
	journalHW := uint32(start)
	defer func() { dm.ScanEnded(jid, journalHW) }()

	// sideWanted: a statistics refresh was requested and possible, so a
	// scan that ends without one must say so (Degraded), whatever the
	// reason — saturation, resumption, faults, or the watchdog.
	sideWanted := req.Column != "" && meta.ok

	si := tr.Begin("stream")
	frame := make([]byte, 0, s.cfg.PagesPerFrame*(page.Size+PageChecksumSize))
	for off := start; off < len(pages); off += s.cfg.PagesPerFrame {
		end := off + s.cfg.PagesPerFrame
		if end > len(pages) {
			end = len(pages)
		}
		frame = frame[:0]
		for _, pg := range pages[off:end] {
			frame = append(frame, pg.Bytes()...)
		}
		for _, ck := range sums[off:end] {
			frame = binary.LittleEndian.AppendUint32(frame, ck)
		}
		// Injected in-flight corruption: the damage lands after the
		// checksum trailer was appended, exactly like a relay flipping
		// bits after storage vouched for the bytes. The wire carries the
		// corrupt image (the raw path fails open and never rewrites
		// data); the trailer is what lets the consumers catch it.
		for i := off; i < end; i++ {
			if inj.Should(faults.PageCorrupt) {
				pos := (i-off)*page.Size + int(inj.Intn(faults.PageCorrupt, page.Size))
				frame[pos] ^= byte(1 + inj.Intn(faults.PageCorrupt, 255))
			}
		}
		if inj.Should(faults.ConnReset) {
			// Injected transport failure: the connection dies mid-scan,
			// taking the side path down with it (deferred abandon).
			conn.Close()
			return fmt.Errorf("server: injected connection reset")
		}
		if werr := WriteFrame(bw, FramePagesCk, frame); werr != nil {
			return werr
		}
		n := (end - off) * page.Size
		sum.Pages += uint32(end - off)
		sum.Bytes += uint64(n)
		dm.ScanProgress(jid, uint32(end))
		journalHW = uint32(end)
		if sp != nil {
			sp.feed(frame[:n], off, inj)
		}
	}
	tr.End(si, 0)

	if sp != nil {
		side := sp.finish()
		sum.Rows = side.rows
		sum.Refreshed = side.refreshed
		sum.Degraded = side.degraded
		sum.AccelCycles = side.cycles
		sum.AccelSeconds = side.seconds
		sum.SkippedTuples = side.skippedTuples
		sum.QuarantinedPages = side.quarantinedPages
		sum.LanesRetired = side.lanesRetired
	}
	if sideWanted && !sum.Refreshed {
		// No refresh where one was wanted: the scan's side effect is
		// missing, and the summary must not read like a clean no-op.
		sum.Degraded = true
	}
	if sum.Degraded {
		s.metrics.scansDegraded.Add(1)
	}
	s.metrics.scansServed.Add(1)
	s.metrics.pagesMoved.Add(int64(sum.Pages))
	s.metrics.bytesMoved.Add(int64(sum.Bytes))

	if err := WriteFrame(bw, FrameScanEnd, EncodeScanSummary(sum)); err != nil {
		return err
	}
	return bw.Flush()
}

// handleStats answers with the freshest catalog entry for the column.
func (s *Server) handleStats(bw *bufio.Writer, req ScanRequest) error {
	entry, err := s.lookup(req.Table)
	if err != nil {
		return s.writeError(bw, err)
	}
	if _, ok := entry.cols[req.Column]; !ok {
		return s.writeError(bw, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, req.Table, req.Column))
	}
	st := s.catalog.Get(req.Table, req.Column)
	if st == nil || st.Histogram == nil {
		return s.writeError(bw, fmt.Errorf("%w: %q.%q (serve a scan first)", ErrNoStats, req.Table, req.Column))
	}
	raw, err := st.Histogram.MarshalBinary()
	if err != nil {
		return s.writeError(bw, fmt.Errorf("server: encoding histogram: %v", err))
	}
	blobs, err := sketch.EncodeBlocks(st.Sketches)
	if err != nil {
		return s.writeError(bw, fmt.Errorf("server: encoding sketches: %v", err))
	}
	s.metrics.statsServed.Add(1)
	payload := EncodeStatsResult(StatsResult{
		RowCount:  st.RowCount,
		NDistinct: st.NDistinct,
		Version:   st.Version,
		Histogram: raw,
		Sketches:  blobs,
	})
	if err := WriteFrame(bw, FrameStatsResult, payload); err != nil {
		return err
	}
	return bw.Flush()
}

// handleList answers with the registered tables, their schemas, and which
// columns currently have served-scan statistics.
func (s *Server) handleList(bw *bufio.Writer) error {
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]TableInfo, 0, len(names))
	for _, name := range names {
		e := s.tables[name]
		info := TableInfo{Name: name, Rows: int64(e.rel.NumRows())}
		for _, c := range e.rel.Schema.Columns {
			info.Columns = append(info.Columns, c.Name)
		}
		infos = append(infos, info)
	}
	s.mu.RUnlock()
	for i := range infos {
		infos[i].StatsColumns = s.catalog.StatsColumns(infos[i].Name)
	}
	if err := WriteFrame(bw, FrameTables, EncodeTableList(infos)); err != nil {
		return err
	}
	return bw.Flush()
}

// sideFrame is one unit of side-path work: a copied span of page bytes plus
// where in the relation it came from, so the lane can verify each page
// against the storage-authoritative checksum.
type sideFrame struct {
	bufp *[]byte
	// pageOff is the relation-wide index of the first page in the buffer.
	pageOff int
	// intended is how many pages the frame was supposed to carry; when the
	// buffer holds fewer whole pages (an injected truncation), the missing
	// tail is quarantined.
	intended int
}

// sideLane is one shard of a scan's side path: a private Parser+Binner pair
// consuming page frames from its own channel. Frames always hold whole
// pages and the Parser FSM resets at page boundaries, so lanes never share
// parser state.
type sideLane struct {
	idx    int // lane index within the scan, for traces and gauges
	parser *core.Parser
	binner *core.Binner
	ch     chan sideFrame
	inj    *faults.Injector

	// Written only by the lane goroutine, read after done.
	parseErr    error
	faulted     bool // injected panic/stall: the lane's partial work is void
	quarantined int64
	done        chan struct{}

	// wallStart/wallEnd bracket the lane goroutine's lifetime in unix
	// nanoseconds. They are atomics because a lane retired for stalling is
	// still running when the serving goroutine copies them into the trace.
	wallStart, wallEnd atomic.Int64

	// dead is the serving goroutine's view: stop feeding this lane.
	dead bool
	// joined records that stop() observed the lane goroutine exit, so the
	// lane's state is quiescent and may be recycled.
	joined bool
}

// sidePath is one scan's splitter copy: frames are duplicated and dealt
// round-robin across ShardLanes lanes, each running the Parser→Binner
// pipeline while the serving goroutine keeps streaming. At finish the lane
// states fan back in — bin vectors merge via core.Binner.Merge and the
// completion cycle is the max-lane critical path plus one aggregation pass
// (hw.CriticalPath) — before the unchanged histogram chain runs.
//
// The side path is strictly subordinate to the raw stream: a lane that
// panics or stalls is retired (its partial state discarded), a page that
// fails its checksum is quarantined, a watchdog cancels work that overruns
// the scan deadline — and in every one of those cases the page stream is
// already complete or still completing at full speed. What degrades is only
// the statistic, and the degradation is always reported, never silent.
type sidePath struct {
	s     *Server
	entry *tableEntry
	req   ScanRequest
	sums  []uint32

	lanes []*sideLane
	next  int // round-robin cursor, serving goroutine only
	clock hw.Clock
	// pageCap is the relation's rows-per-page (pages are fully packed), so
	// lanes can turn a page index into the global row ordinal the sketch
	// chain's position cursor needs.
	pageCap int
	// pages are the relation's stable page images. When zeroCopy is set (no
	// corruption or truncation fault points armed for this scan), the wire
	// frame is byte-identical to these images, so lanes parse them directly
	// instead of a copied side buffer — the splitter aliases the verified
	// page buffer rather than duplicating it.
	pages    []*page.Page
	zeroCopy bool

	// tr is the owning scan's trace; finish() appends the lane, merge, and
	// install spans to it. Nil when tracing is off.
	tr *obs.ScanTrace

	// release unblocks injected lane stalls at teardown so no goroutine
	// outlives the scan.
	release chan struct{}
	// cancelled is set by the watchdog; lanes drain without binning and
	// finish() refuses to install.
	cancelled atomic.Bool
	watchdog  *time.Timer

	// framesLost notes frames no live lane would take (all retired or all
	// stalled past the timeout): the merged view is missing that data.
	framesLost bool
	retired    int
	// quarantinedPages is settled in stop(), after the lanes are joined.
	quarantinedPages int64

	stopped bool
}

// startSidePath acquires a drain worker and wires the side path, or returns
// nil when statistics must be skipped: no column requested, an empty
// column, or a fully busy worker pool (the stream always wins; the scan
// fails open and the catalog simply isn't refreshed this time). Injected
// drain-pool saturation exercises the same skip path as the real thing.
func (s *Server) startSidePath(entry *tableEntry, req ScanRequest, meta colMeta, inj *faults.Injector, tr *obs.ScanTrace) *sidePath {
	if req.Column == "" {
		return nil
	}
	if !meta.ok {
		return nil
	}
	if inj.Should(faults.DrainSaturate) {
		s.metrics.sideSkipped.Add(1)
		return nil
	}
	select {
	case s.drainSem <- struct{}{}:
	default:
		s.metrics.sideSkipped.Add(1)
		return nil
	}
	sp := &sidePath{
		s:       s,
		entry:   entry,
		req:     req,
		sums:    entry.pageSums(),
		clock:   s.cfg.Binner.Clock,
		lanes:   make([]*sideLane, s.cfg.ShardLanes),
		release: make(chan struct{}),
		tr:      tr,
	}
	sp.pages = entry.pageImages()
	if len(sp.pages) > 0 {
		sp.pageCap = sp.pages[0].Capacity()
	}
	// The only ways a side copy can differ from the stable page images are
	// the in-flight corruption and truncation points; with neither armed the
	// copy is provably redundant and the lanes alias the images instead.
	sp.zeroCopy = !inj.Enabled(faults.PageCorrupt) && !inj.Enabled(faults.PageTruncate)
	for i := range sp.lanes {
		pre, err := core.RangeFor(meta.min, meta.max, 1)
		if err != nil {
			<-s.drainSem
			s.metrics.sideSkipped.Add(1)
			return nil
		}
		// Each lane's injector drives both its lane faults and its binner's
		// hw.mem.* points. Forking per lane (rather than letting every lane
		// of every concurrent scan draw from one shared root injector) keeps
		// memory-fault decisions reproducible from the seed alone, whatever
		// the goroutine interleaving — the guarantee Fork exists to provide.
		linj := inj.Fork(fmt.Sprintf("side-lane%d", i))
		bcfg := s.cfg.Binner
		if bcfg.Faults == nil {
			bcfg.Faults = linj
		}
		// Live ECC/latency event sinks: these fire as faults are handled in
		// any lane (including lanes later retired), where the folded
		// ecc_corrected/bins_quarantined counters only see merged state.
		bcfg.MemEvents = s.metrics.memEvents
		// Every lane charges its cycle attribution under its lane frame;
		// lanes that never reach Finish (retired, watchdogged, abandoned)
		// never flush, so discarded work stays out of the profile — the
		// property the consistency gauge checks.
		bcfg.Prof = s.obs.Profiler()
		bcfg.ProfLane = fmt.Sprintf("lane%d", i)
		// Each lane runs its own sketch chain beside its binner; the chains
		// merge with the bin state at fan-in, and a retired lane's chain is
		// discarded with its binner. The lane injector also drives the
		// sketch.corrupt / sketch.retire points, evaluated at page
		// boundaries.
		laneChain := sketch.NewChain(s.cfg.Sketch)
		laneChain.SetFaults(linj)
		bcfg.Sketches = laneChain
		sp.lanes[i] = &sideLane{
			idx:    i,
			parser: core.NewParser(meta.spec),
			binner: core.NewBinner(bcfg, pre),
			ch:     make(chan sideFrame, s.cfg.SideBufDepth),
			done:   make(chan struct{}),
			inj:    linj,
		}
		go sp.run(sp.lanes[i])
	}
	if s.cfg.ScanDeadline > 0 {
		sp.watchdog = time.AfterFunc(s.cfg.ScanDeadline, func() {
			sp.cancelled.Store(true)
		})
	}
	return sp
}

// feed hands the next live lane a copy of one relayed frame, round-robin. A
// full lane channel applies backpressure up to SideStallTimeout — bounded
// memory — after which the lane is presumed stuck and retired; a lane whose
// goroutine died is retired on sight. When no live lane remains the frame
// is dropped and the eventual histogram honestly reports the loss.
func (sp *sidePath) feed(b []byte, pageOff int, inj *faults.Injector) {
	if sp.cancelled.Load() {
		return // watchdog fired: the side path is already forfeit
	}
	intended := len(b) / page.Size
	var f sideFrame
	if sp.zeroCopy {
		// No fault point can shorten or damage the side copy, so the frame
		// bytes are provably identical to the relation's stable page images
		// and the copy is skipped: the frame carries only its page window and
		// the lane parses the images in place.
		f = sideFrame{pageOff: pageOff, intended: intended}
	} else {
		if inj.Should(faults.PageTruncate) {
			// Injected short copy: the splitter's DMA slipped and the side
			// buffer holds only a prefix of the frame. The wire already
			// carried the full bytes; only the statistic's copy is short.
			b = b[:inj.Intn(faults.PageTruncate, int64(len(b)))]
		}
		bufp := sp.s.bufPool.Get().(*[]byte)
		*bufp = append((*bufp)[:0], b...)
		f = sideFrame{bufp: bufp, pageOff: pageOff, intended: intended}
	}

	for tries := 0; tries < len(sp.lanes); tries++ {
		l := sp.lanes[sp.next]
		sp.next = (sp.next + 1) % len(sp.lanes)
		if l.dead {
			continue
		}
		select {
		case l.ch <- f:
			return
		case <-l.done:
			sp.retireLane(l)
			continue
		default:
		}
		timer := time.NewTimer(sp.s.cfg.SideStallTimeout)
		select {
		case l.ch <- f:
			timer.Stop()
			return
		case <-l.done:
			timer.Stop()
			sp.retireLane(l)
		case <-timer.C:
			sp.retireLane(l)
		}
	}
	// No lane took it: the side path loses this frame's rows, and says so.
	sp.framesLost = true
	sp.putBuf(f)
}

// putBuf returns a frame's side buffer to the pool; zero-copy frames carry
// none.
func (sp *sidePath) putBuf(f sideFrame) {
	if f.bufp != nil {
		sp.s.bufPool.Put(f.bufp)
	}
}

func (sp *sidePath) retireLane(l *sideLane) {
	if !l.dead {
		l.dead = true
		sp.retired++
	}
}

// run is one lane's drain worker: each whole page in the frame is verified
// against its storage checksum — corrupt or missing pages are quarantined,
// counted, and skipped — and the surviving pages flow through the Parser
// FSM into the Binner, exactly as in stream.Tap but decoupled from the wire
// by the lane channel.
func (sp *sidePath) run(l *sideLane) {
	l.wallStart.Store(time.Now().UnixNano())
	defer func() {
		if r := recover(); r != nil {
			l.faulted = true
		}
		l.wallEnd.Store(time.Now().UnixNano())
		close(l.done)
	}()
	var vals []int64
	for f := range l.ch {
		if l.faulted || l.parseErr != nil || sp.cancelled.Load() {
			sp.putBuf(f)
			continue // drain only: fail open, never block the feeder
		}
		if l.inj.Should(faults.LanePanic) {
			sp.putBuf(f)
			panic("injected side-lane fault")
		}
		if l.inj.Should(faults.LaneStall) {
			l.faulted = true
			sp.putBuf(f)
			<-sp.release // hold until teardown, then drain
			continue
		}
		var buf []byte
		whole := f.intended
		if f.bufp != nil {
			buf = *f.bufp
			whole = len(buf) / page.Size
		}
		for k := 0; k < f.intended; k++ {
			if k >= whole || (buf == nil && f.pageOff+k >= len(sp.pages)) {
				// Truncated away: the page never reached the side buffer.
				l.quarantined++
				continue
			}
			var img []byte
			if buf != nil {
				img = buf[k*page.Size : (k+1)*page.Size]
			} else {
				// Zero-copy frame: the verified, immutable page image itself.
				img = sp.pages[f.pageOff+k].Bytes()
			}
			if page.Checksum(img) != sp.sums[f.pageOff+k] {
				l.quarantined++
				continue
			}
			var err error
			vals, err = l.parser.Feed(img, vals[:0])
			if err != nil {
				l.parseErr = err
				break
			}
			// Pages are fully packed, so this page's first row ordinal is
			// its index times the per-page capacity; repositioning the
			// sketch cursor here keeps position-sensitive blocks exact no
			// matter which lane the frame landed on.
			l.binner.SetStreamPos(int64(f.pageOff+k) * int64(sp.pageCap))
			l.binner.PushAll(vals)
		}
		sp.putBuf(f)
	}
}

// stop tears the side path down: it unblocks injected stalls, closes the
// lane channels, waits for the drain workers against a shared deadline —
// retiring any lane that will not finish in time — and releases the pool
// slot. Idempotent; called from the serving goroutine only.
func (sp *sidePath) stop() {
	if sp.stopped {
		return
	}
	sp.stopped = true
	if sp.watchdog != nil {
		sp.watchdog.Stop()
	}
	close(sp.release)
	for _, l := range sp.lanes {
		close(l.ch)
	}
	deadline := time.NewTimer(sp.s.cfg.SideStallTimeout)
	defer deadline.Stop()
	for _, l := range sp.lanes {
		select {
		case <-l.done:
			l.joined = true
		case <-deadline.C:
			// The lane is wedged past the drain deadline. Its goroutine
			// can only be blocked on the (now closed) release channel or
			// mid-drain, so it will exit on its own; the scan does not
			// wait, and the lane's partial state is discarded.
			sp.retireLane(l)
		}
	}
	// Settle the casualty list now that the joined lanes' flags are
	// visible, and account for it — even a scan abandoned mid-stream
	// (connection death) reports what it quarantined and retired.
	for _, l := range sp.lanes {
		if l.faulted {
			sp.retireLane(l)
		}
		sp.quarantinedPages += l.quarantined
	}
	sp.s.metrics.pagesQuarantined.Add(sp.quarantinedPages)
	sp.s.metrics.lanesRetired.Add(int64(sp.retired))
	// A retired lane that did join is quiescent and its partial state is
	// discarded by construction (only healthy lanes merge into the installed
	// result), so its binner scratch and sketch chain go back to the pools.
	// A lane that missed the drain deadline may still be running and keeps
	// its state — the pools never see memory a goroutine could touch.
	for _, l := range sp.lanes {
		if l.dead && l.joined && l.binner != nil {
			l.binner.SketchChain().Release()
			l.binner.Release()
			l.binner = nil
		}
	}
	<-sp.s.drainSem
}

// sideResult is everything finish() learned about the scan's side effect.
type sideResult struct {
	rows             uint64
	refreshed        bool
	degraded         bool
	cycles           uint64
	seconds          float64
	skippedTuples    uint64
	quarantinedPages uint32
	lanesRetired     uint32
}

// finish completes the side path: it fans the surviving lane states back in
// (merged bin counts, max-lane critical path plus one aggregation pass),
// runs the histogram chain over the merged view, installs the Compressed
// histogram in the catalog, and reports the scan's statistics yield plus
// the simulated hardware cost. Faults reaching this point shape the result
// in exactly one of two ways: either every loss was masked and the
// histogram is exact, or the install is marked Degraded with the loss
// quantified — there is no silent third outcome.
func (sp *sidePath) finish() sideResult {
	sp.stop()
	var res sideResult

	// Retired lanes still get a trace span — marked, with their discarded
	// hardware accounting zeroed — so /scans shows which shard died.
	for _, l := range sp.lanes {
		if l.dead {
			sp.tr.AddSpan("lane", l.idx, l.wallStart.Load(), l.wallEnd.Load(), 0, true)
		}
	}

	healthy := sp.lanes[:0:0]
	for _, l := range sp.lanes {
		if l.dead {
			continue
		}
		if l.parseErr != nil {
			// A real data error (not injected): fail open like before.
			sp.s.metrics.parseErrors.Add(1)
			res.degraded = true
			return res
		}
		healthy = append(healthy, l)
	}
	res.quarantinedPages = uint32(sp.quarantinedPages)
	res.lanesRetired = uint32(sp.retired)

	if sp.cancelled.Load() {
		// Watchdog: whatever the lanes hold is incomplete in an unknown
		// way. Report the overrun; install nothing.
		res.degraded = true
		return res
	}
	if len(healthy) == 0 {
		res.degraded = true
		return res
	}

	laneCycles := make([]int64, len(healthy))
	var laneSum int64
	for i, l := range healthy {
		_, ls := l.binner.Finish()
		laneCycles[i] = ls.Cycles
		laneSum += ls.Cycles
		// Healthy lane span: wall clock from the lane goroutine's own
		// stamps, hardware cost from the lane's binning completion cycle.
		// The trace invariant max(lane HWCycles) + merge HWCycles ==
		// AccelCycles follows from hw.CriticalPath below.
		sp.tr.AddSpan("lane", l.idx, l.wallStart.Load(), l.wallEnd.Load(), ls.Cycles, false)
		sp.s.metrics.setLaneCycles(l.idx, ls.Cycles)
	}
	// Healthy lanes flushed their attribution when Finish ran above; record
	// the matching expectation now, so even the cannot-happen merge-failure
	// return below leaves profile and counter agreeing.
	sp.s.metrics.hwprofAttributed.Add(laneSum)
	mi := sp.tr.Begin("merge")
	merged := healthy[0].binner
	for _, l := range healthy[1:] {
		if err := merged.Merge(l.binner); err != nil {
			// Lanes share one geometry, so this cannot happen; treat it
			// like a parse failure and fail open.
			sp.s.metrics.parseErrors.Add(1)
			res.degraded = true
			return res
		}
	}
	sp.s.metrics.laneMerges.Add(int64(len(healthy) - 1))
	vec, bstats := merged.Finish()
	sp.s.metrics.faultsCorrected.Add(bstats.FaultsCorrected)
	sp.s.metrics.binsQuarantined.Add(bstats.BinsQuarantined)
	if bstats.Items == 0 {
		res.degraded = true
		return res
	}

	// The one honesty invariant everything above funnels into: any gap
	// between what the relation holds and what the merged view counted —
	// retired lanes, quarantined pages, dropped frames, bin-memory losses
	// — makes the histogram Degraded, with the gap as its skipped count.
	relRows := int64(sp.entry.rel.NumRows())
	skipped := relRows - vec.Total()
	if skipped < 0 {
		skipped = 0
	}
	degraded := skipped > 0 || sp.retired > 0 || sp.quarantinedPages > 0 ||
		bstats.BinsQuarantined > 0 || sp.framesLost

	var agg int64
	if len(healthy) > 1 {
		agg = hw.AggregationCycles(vec.NumBins(), sp.s.cfg.Binner.Mem.BinsPerLine)
	}
	bstats.Cycles = hw.CriticalPath(laneCycles, agg)
	comp := core.NewCompressedBlock(sp.s.cfg.TopK, sp.s.cfg.Buckets, vec.Total())
	chain := core.NewScanner().Run(vec, comp)
	// The merged sketch chain covers every healthy lane (retired lanes'
	// chains were discarded with their binners). Its cycles ride the merge
	// span beside the aggregation pass and the histogram chain, so the
	// trace invariant — max(lane cycles) + merge cycles == AccelCycles —
	// and the hwprof consistency gauge both keep holding with sketches on.
	sideChain := merged.SketchChain()
	sketchCycles := sideChain.TotalCycles()
	if prof := sp.s.obs.Profiler(); prof != nil {
		if agg > 0 {
			n := prof.Node("merged", "aggregate", "fanin", hwprof.ReasonAgg)
			n.Add(agg)
			n.AddEvents(1)
		}
		chain.ChargeProfile(prof, "merged")
		sideChain.Charge(prof, "merged")
		sp.s.metrics.hwprofAttributed.Add(agg + chain.TotalCycles + sketchCycles)
	}
	// The merge span is charged everything past the lanes' own binning: the
	// fan-in aggregation pass, the histogram chain, and the sketch chain.
	sp.tr.End(mi, agg+chain.TotalCycles+sketchCycles)
	h := &hist.Histogram{
		Kind:          hist.Compressed,
		Buckets:       comp.Buckets(),
		Frequent:      comp.Frequent(),
		Total:         vec.Total(),
		DistinctTotal: int64(vec.Cardinality()),
		Degraded:      degraded,
		Skipped:       skipped,
	}
	if degraded {
		// The sketches saw the same incomplete stream the histogram did;
		// they are served, but flagged, never silently wrong.
		sideChain.MarkDegraded()
	}
	ii := sp.tr.Begin("install")
	sp.s.catalog.Put(sp.req.Table, sp.req.Column, &dbms.ColumnStats{
		Histogram: h,
		Sketches:  sideChain.Blocks(),
		NDistinct: int64(vec.Cardinality()),
		RowCount:  relRows,
	})
	sp.tr.End(ii, 0)
	sp.s.publishSketch(sideChain)
	total := uint64(bstats.Cycles + chain.TotalCycles + sketchCycles)
	sp.s.metrics.rowsBinned.Add(bstats.Items)
	sp.s.metrics.histRefreshed.Add(1)
	sp.s.metrics.accelCycles.Add(int64(total))
	sp.s.publishHwprof()

	res.rows = uint64(bstats.Items)
	res.refreshed = true
	res.degraded = degraded
	res.cycles = total
	res.seconds = sp.clock.Seconds(int64(total))
	res.skippedTuples = uint64(skipped)

	// The merged-away lanes folded everything they knew into the survivor,
	// whose chain blocks now live in the catalog; their own scratch returns
	// to the pools. The survivor is never recycled — the install owns it.
	for _, l := range healthy[1:] {
		if sc := l.binner.SketchChain(); sc != sideChain {
			sc.Release()
		}
		l.binner.Release()
		l.binner = nil
	}
	return res
}

// abandon releases the side path without finishing it: the scan failed
// before its summary, so nothing is installed and the workers just drain.
// Idempotent, and a no-op after finish.
func (sp *sidePath) abandon() {
	sp.stop()
}
