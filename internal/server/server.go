package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"streamhist/internal/core"
	"streamhist/internal/dbms"
	"streamhist/internal/hist"
	"streamhist/internal/hw"
	"streamhist/internal/page"
	"streamhist/internal/stream"
	"streamhist/internal/table"
)

// ErrServerClosed is returned by Serve after a shutdown.
var ErrServerClosed = errors.New("server: closed")

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// DrainWorkers bounds how many scans may run a statistics side path at
	// once. When the pool is exhausted a scan still streams at full speed —
	// it just skips the side path (fail open, §4: the accelerator must
	// never slow the regular flow of data).
	DrainWorkers int
	// SideBufDepth is the per-lane side-channel depth in frames. A full
	// buffer applies backpressure to that scan, bounding memory instead of
	// dropping values, so a refreshed histogram is always complete.
	SideBufDepth int
	// ShardLanes is how many parallel Parser+Binner lanes each scan's side
	// path fans out to (the §7 replication design). Frames are distributed
	// round-robin across the lanes and the lanes' binner states are merged
	// before histogram creation. 0 means GOMAXPROCS.
	ShardLanes int
	// PagesPerFrame sets how many 8 KiB page images ride in one FramePages.
	PagesPerFrame int
	// IdleTimeout bounds the wait for the next request on a connection.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response frame write.
	WriteTimeout time.Duration
	// ShutdownGrace bounds the drain when Serve's context is cancelled.
	ShutdownGrace time.Duration
	// TopK and Buckets shape the Compressed histograms installed in the
	// catalog (T and B of the paper's evaluation setup).
	TopK, Buckets int
	// Binner overrides the accelerator simulation parameters.
	Binner core.BinnerConfig
}

func (c Config) withDefaults() Config {
	if c.DrainWorkers <= 0 {
		c.DrainWorkers = 8
	}
	if c.SideBufDepth <= 0 {
		c.SideBufDepth = 8
	}
	if c.ShardLanes <= 0 {
		c.ShardLanes = runtime.GOMAXPROCS(0)
	}
	if c.PagesPerFrame <= 0 {
		c.PagesPerFrame = 16
	}
	if c.PagesPerFrame*page.Size > MaxPayload {
		c.PagesPerFrame = MaxPayload / page.Size
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 5 * time.Second
	}
	if c.TopK <= 0 {
		c.TopK = 64
	}
	if c.Buckets <= 0 {
		c.Buckets = 64
	}
	if c.Binner.Clock.Hz == 0 {
		c.Binner = core.DefaultBinnerConfig()
	}
	return c
}

// colMeta is the per-column scan metadata computed at registration: the
// ColumnSpec the Parser needs and the value range the Binner is sized for —
// the "host-provided metadata" the paper piggybacks on the read command.
type colMeta struct {
	spec     core.ColumnSpec
	min, max int64
	ok       bool // false for empty columns: no side path possible
}

// tableEntry is one registered relation plus its lazily encoded page images.
type tableEntry struct {
	rel  *table.Relation
	cols map[string]colMeta

	once  sync.Once
	pages []*page.Page
}

func (e *tableEntry) pageImages() []*page.Page {
	e.once.Do(func() { e.pages = page.Encode(e.rel) })
	return e.pages
}

// connState tracks whether a connection is mid-request, so a graceful
// shutdown can close idle connections immediately and let active scans end.
type connState struct {
	mu     sync.Mutex
	active bool
}

// Server is the histserved scan service: it registers relations, streams
// their raw page bytes to clients, and — as a side effect of every served
// scan — refreshes the statistics catalog through the accelerator model.
type Server struct {
	cfg     Config
	catalog *dbms.Catalog

	mu     sync.RWMutex
	tables map[string]*tableEntry

	drainSem chan struct{}
	bufPool  sync.Pool

	connMu     sync.Mutex
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]*connState
	inShutdown bool

	wg sync.WaitGroup

	metrics metrics
}

// New builds a Server with the given configuration and an empty catalog.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		catalog:   dbms.NewCatalog(),
		tables:    make(map[string]*tableEntry),
		drainSem:  make(chan struct{}, cfg.DrainWorkers),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]*connState),
	}
	frameBytes := cfg.PagesPerFrame * page.Size
	s.bufPool.New = func() any {
		b := make([]byte, 0, frameBytes)
		return &b
	}
	return s
}

// Catalog exposes the server's statistics dictionary, e.g. to share it with
// an embedding planner or to inspect it in tests.
func (s *Server) Catalog() *dbms.Catalog { return s.catalog }

// Register adds (or replaces) a relation. Replacing bumps the catalog
// version so previously gathered statistics read as stale until the next
// served scan refreshes them.
func (s *Server) Register(rel *table.Relation) error {
	if rel == nil || rel.Name == "" {
		return fmt.Errorf("server: relation must have a name")
	}
	if len(rel.Name) > maxNameLen {
		return fmt.Errorf("server: table name %q exceeds %d bytes", rel.Name, maxNameLen)
	}
	cols := make(map[string]colMeta, rel.Schema.NumColumns())
	for _, c := range rel.Schema.Columns {
		spec, err := core.SpecFor(rel.Schema, c.Name)
		if err != nil {
			return err
		}
		m := colMeta{spec: spec}
		if vals := rel.ColumnByName(c.Name); len(vals) > 0 {
			m.min, m.max, m.ok = vals[0], vals[0], true
			for _, v := range vals {
				if v < m.min {
					m.min = v
				}
				if v > m.max {
					m.max = v
				}
			}
		}
		cols[c.Name] = m
	}
	s.mu.Lock()
	_, replaced := s.tables[rel.Name]
	s.tables[rel.Name] = &tableEntry{rel: rel, cols: cols}
	s.mu.Unlock()
	if replaced {
		s.catalog.BumpVersion(rel.Name)
	}
	return nil
}

func (s *Server) lookup(name string) (*tableEntry, error) {
	s.mu.RLock()
	e := s.tables[name]
	s.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, name)
	}
	return e, nil
}

// Serve accepts connections on ln until ctx is cancelled, then drains
// gracefully (bounded by Config.ShutdownGrace) and returns ErrServerClosed.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if s.shuttingDown() {
		return ErrServerClosed
	}
	s.connMu.Lock()
	s.listeners[ln] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.listeners, ln)
		s.connMu.Unlock()
	}()

	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || s.shuttingDown() {
				sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
				defer cancel()
				if serr := s.Shutdown(sctx); serr != nil {
					return fmt.Errorf("%w: drain: %v", ErrServerClosed, serr)
				}
				return ErrServerClosed
			}
			return err
		}
		st := s.trackConn(conn)
		if st == nil {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go s.handleConn(conn, st)
	}
}

// ServeConn serves one pre-established connection (e.g. one side of a
// net.Pipe) until the peer disconnects or the server shuts down. It blocks.
func (s *Server) ServeConn(conn net.Conn) {
	st := s.trackConn(conn)
	if st == nil {
		conn.Close()
		return
	}
	s.wg.Add(1)
	s.handleConn(conn, st)
}

func (s *Server) trackConn(conn net.Conn) *connState {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.inShutdown {
		return nil
	}
	st := &connState{}
	s.conns[conn] = st
	s.metrics.activeConns.Add(1)
	return st
}

func (s *Server) dropConn(conn net.Conn) {
	s.connMu.Lock()
	if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.metrics.activeConns.Add(-1)
	}
	s.connMu.Unlock()
}

func (s *Server) shuttingDown() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.inShutdown
}

// Shutdown stops accepting, lets in-flight requests finish, closes idle
// connections, and waits for every handler to exit. When ctx expires first,
// remaining connections are force-closed and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.connMu.Lock()
	s.inShutdown = true
	for ln := range s.listeners {
		ln.Close()
	}
	s.connMu.Unlock()

	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if s.closeIdleConns() == 0 {
			s.wg.Wait()
			return nil
		}
		select {
		case <-ctx.Done():
			s.closeAllConns()
			s.wg.Wait()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Close force-closes every listener and connection and waits for handlers.
func (s *Server) Close() error {
	s.connMu.Lock()
	s.inShutdown = true
	for ln := range s.listeners {
		ln.Close()
	}
	s.connMu.Unlock()
	s.closeAllConns()
	s.wg.Wait()
	return nil
}

// closeIdleConns closes connections not currently serving a request and
// returns how many connections remain registered.
func (s *Server) closeIdleConns() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for conn, st := range s.conns {
		st.mu.Lock()
		idle := !st.active
		st.mu.Unlock()
		if idle {
			conn.Close()
		}
	}
	return len(s.conns)
}

func (s *Server) closeAllConns() {
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
}

// handleConn runs one connection's request loop.
func (s *Server) handleConn(conn net.Conn, st *connState) {
	defer func() {
		s.dropConn(conn)
		conn.Close()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		if s.shuttingDown() {
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := ReadFrame(br)
		if err != nil {
			// EOF, idle timeout, or an unframeable stream: nothing to
			// resynchronise on, drop the connection.
			return
		}
		st.mu.Lock()
		st.active = true
		st.mu.Unlock()
		err = s.dispatch(conn, bw, f)
		st.mu.Lock()
		st.active = false
		st.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// dispatch handles one request frame. A returned error means the connection
// is unusable (I/O failure); request-level failures are reported to the
// client in a FrameError and return nil.
func (s *Server) dispatch(conn net.Conn, bw *bufio.Writer, f Frame) error {
	switch f.Type {
	case FrameScan:
		req, err := DecodeScanRequest(f.Payload)
		if err != nil {
			return s.writeError(conn, bw, fmt.Errorf("%w: %v", ErrBadRequest, err))
		}
		return s.handleScan(conn, bw, req)
	case FrameStats:
		req, err := DecodeScanRequest(f.Payload)
		if err != nil {
			return s.writeError(conn, bw, fmt.Errorf("%w: %v", ErrBadRequest, err))
		}
		return s.handleStats(conn, bw, req)
	case FrameList:
		return s.handleList(conn, bw)
	default:
		return s.writeError(conn, bw, fmt.Errorf("%w: unexpected frame type %d", ErrBadRequest, f.Type))
	}
}

func (s *Server) writeError(conn net.Conn, bw *bufio.Writer, err error) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if werr := WriteFrame(bw, FrameError, EncodeError(err)); werr != nil {
		return werr
	}
	return bw.Flush()
}

func (s *Server) writeFrame(conn net.Conn, bw *bufio.Writer, typ uint8, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return WriteFrame(bw, typ, payload)
}

// handleScan streams the relation's raw page images to the client and, on
// the side, bins the requested column and refreshes the catalog histogram.
// The serving path never waits for histogram construction: statistics are a
// by-product of the bytes that were moving anyway.
func (s *Server) handleScan(conn net.Conn, bw *bufio.Writer, req ScanRequest) error {
	entry, err := s.lookup(req.Table)
	if err != nil {
		return s.writeError(conn, bw, err)
	}
	var meta colMeta
	if req.Column != "" {
		var ok bool
		meta, ok = entry.cols[req.Column]
		if !ok {
			return s.writeError(conn, bw, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, req.Table, req.Column))
		}
	}

	sp := s.startSidePath(entry, req, meta)
	if sp != nil {
		defer sp.stop()
	}

	src := stream.NewPagesReaderFromPages(entry.pageImages())
	frame := make([]byte, s.cfg.PagesPerFrame*page.Size)
	var sum ScanSummary
	for {
		n, rerr := io.ReadFull(src, frame)
		if n > 0 {
			if werr := s.writeFrame(conn, bw, FramePages, frame[:n]); werr != nil {
				return werr
			}
			sum.Pages += uint32(n / page.Size)
			sum.Bytes += uint64(n)
			if sp != nil {
				sp.feed(frame[:n])
			}
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			return rerr
		}
	}

	if sp != nil {
		sum.Rows, sum.Refreshed, sum.AccelCycles, sum.AccelSeconds = sp.finish()
	}
	s.metrics.scansServed.Add(1)
	s.metrics.pagesMoved.Add(int64(sum.Pages))
	s.metrics.bytesMoved.Add(int64(sum.Bytes))

	if err := s.writeFrame(conn, bw, FrameScanEnd, EncodeScanSummary(sum)); err != nil {
		return err
	}
	return bw.Flush()
}

// handleStats answers with the freshest catalog entry for the column.
func (s *Server) handleStats(conn net.Conn, bw *bufio.Writer, req ScanRequest) error {
	entry, err := s.lookup(req.Table)
	if err != nil {
		return s.writeError(conn, bw, err)
	}
	if _, ok := entry.cols[req.Column]; !ok {
		return s.writeError(conn, bw, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, req.Table, req.Column))
	}
	st := s.catalog.Get(req.Table, req.Column)
	if st == nil || st.Histogram == nil {
		return s.writeError(conn, bw, fmt.Errorf("%w: %q.%q (serve a scan first)", ErrNoStats, req.Table, req.Column))
	}
	raw, err := st.Histogram.MarshalBinary()
	if err != nil {
		return s.writeError(conn, bw, fmt.Errorf("server: encoding histogram: %v", err))
	}
	s.metrics.statsServed.Add(1)
	payload := EncodeStatsResult(StatsResult{
		RowCount:  st.RowCount,
		NDistinct: st.NDistinct,
		Version:   st.Version,
		Histogram: raw,
	})
	if err := s.writeFrame(conn, bw, FrameStatsResult, payload); err != nil {
		return err
	}
	return bw.Flush()
}

// handleList answers with the registered tables, their schemas, and which
// columns currently have served-scan statistics.
func (s *Server) handleList(conn net.Conn, bw *bufio.Writer) error {
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]TableInfo, 0, len(names))
	for _, name := range names {
		e := s.tables[name]
		info := TableInfo{Name: name, Rows: int64(e.rel.NumRows())}
		for _, c := range e.rel.Schema.Columns {
			info.Columns = append(info.Columns, c.Name)
		}
		infos = append(infos, info)
	}
	s.mu.RUnlock()
	for i := range infos {
		infos[i].StatsColumns = s.catalog.StatsColumns(infos[i].Name)
	}
	if err := s.writeFrame(conn, bw, FrameTables, EncodeTableList(infos)); err != nil {
		return err
	}
	return bw.Flush()
}

// sideLane is one shard of a scan's side path: a private Parser+Binner pair
// consuming page frames from its own channel. Frames always hold whole
// pages (handleScan reads in page multiples) and the Parser FSM resets at
// page boundaries, so lanes never share parser state.
type sideLane struct {
	parser *core.Parser
	binner *core.Binner
	ch     chan *[]byte

	// parseErr is written only by the lane goroutine, read after done.
	parseErr error
	done     chan struct{}
}

// sidePath is one scan's splitter copy: frames are duplicated and dealt
// round-robin across ShardLanes lanes, each running the Parser→Binner
// pipeline while the serving goroutine keeps streaming. At finish the lane
// states fan back in — bin vectors merge via core.Binner.Merge and the
// completion cycle is the max-lane critical path plus one aggregation pass
// (hw.CriticalPath) — before the unchanged histogram chain runs. Closing
// the lane channels and waiting on done is the barrier after which the
// merged binned view is complete.
type sidePath struct {
	s     *Server
	entry *tableEntry
	req   ScanRequest

	lanes []*sideLane
	next  int // round-robin cursor, serving goroutine only
	clock hw.Clock

	stopped bool
}

// startSidePath acquires a drain worker and wires the side path, or returns
// nil when statistics must be skipped: no column requested, an empty
// column, or a fully busy worker pool (the stream always wins; the scan
// fails open and the catalog simply isn't refreshed this time).
func (s *Server) startSidePath(entry *tableEntry, req ScanRequest, meta colMeta) *sidePath {
	if req.Column == "" {
		return nil
	}
	if !meta.ok {
		return nil
	}
	select {
	case s.drainSem <- struct{}{}:
	default:
		s.metrics.sideSkipped.Add(1)
		return nil
	}
	sp := &sidePath{
		s:     s,
		entry: entry,
		req:   req,
		clock: s.cfg.Binner.Clock,
		lanes: make([]*sideLane, s.cfg.ShardLanes),
	}
	for i := range sp.lanes {
		pre, err := core.RangeFor(meta.min, meta.max, 1)
		if err != nil {
			<-s.drainSem
			s.metrics.sideSkipped.Add(1)
			return nil
		}
		sp.lanes[i] = &sideLane{
			parser: core.NewParser(meta.spec),
			binner: core.NewBinner(s.cfg.Binner, pre),
			ch:     make(chan *[]byte, s.cfg.SideBufDepth),
			done:   make(chan struct{}),
		}
		go sp.run(sp.lanes[i])
	}
	return sp
}

// feed hands the next lane a copy of one relayed frame, round-robin. A full
// lane channel blocks — per-scan backpressure with a fixed memory bound
// (ShardLanes × SideBufDepth frames).
func (sp *sidePath) feed(b []byte) {
	bufp := sp.s.bufPool.Get().(*[]byte)
	*bufp = append((*bufp)[:0], b...)
	sp.lanes[sp.next].ch <- bufp
	sp.next++
	if sp.next == len(sp.lanes) {
		sp.next = 0
	}
}

// run is one lane's drain worker: the Parser FSM walks the copied page
// bytes and the Binner bin-sorts every extracted value, exactly as in
// stream.Tap but decoupled from the wire by the lane channel.
func (sp *sidePath) run(l *sideLane) {
	defer close(l.done)
	var vals []int64
	for bufp := range l.ch {
		if l.parseErr == nil {
			var err error
			vals, err = l.parser.Feed(*bufp, vals[:0])
			if err != nil {
				l.parseErr = err
			} else {
				l.binner.PushAll(vals)
			}
		}
		sp.s.bufPool.Put(bufp)
	}
}

// stop closes the lane channels, waits for every drain worker, and releases
// the pool slot. Idempotent; called from the serving goroutine only.
func (sp *sidePath) stop() {
	if sp.stopped {
		return
	}
	sp.stopped = true
	for _, l := range sp.lanes {
		close(l.ch)
	}
	for _, l := range sp.lanes {
		<-l.done
	}
	<-sp.s.drainSem
}

// finish completes the side path: it fans the lane states back in (merged
// bin counts, max-lane critical path plus one aggregation pass), runs the
// histogram chain over the merged view, installs the Compressed histogram
// in the catalog, and reports the scan's statistics yield plus the
// simulated hardware cost.
func (sp *sidePath) finish() (rows uint64, refreshed bool, cycles uint64, seconds float64) {
	sp.stop()
	for _, l := range sp.lanes {
		if l.parseErr != nil {
			// Fail open: the client got its bytes; only the refresh is lost.
			sp.s.metrics.parseErrors.Add(1)
			return 0, false, 0, 0
		}
	}
	laneCycles := make([]int64, len(sp.lanes))
	for i, l := range sp.lanes {
		_, ls := l.binner.Finish()
		laneCycles[i] = ls.Cycles
	}
	merged := sp.lanes[0].binner
	for _, l := range sp.lanes[1:] {
		if err := merged.Merge(l.binner); err != nil {
			// Lanes share one geometry, so this cannot happen; treat it
			// like a parse failure and fail open.
			sp.s.metrics.parseErrors.Add(1)
			return 0, false, 0, 0
		}
	}
	sp.s.metrics.laneMerges.Add(int64(len(sp.lanes) - 1))
	vec, bstats := merged.Finish()
	if bstats.Items == 0 {
		return 0, false, 0, 0
	}
	var agg int64
	if len(sp.lanes) > 1 {
		agg = hw.AggregationCycles(vec.NumBins(), sp.s.cfg.Binner.Mem.BinsPerLine)
	}
	bstats.Cycles = hw.CriticalPath(laneCycles, agg)
	comp := core.NewCompressedBlock(sp.s.cfg.TopK, sp.s.cfg.Buckets, vec.Total())
	chain := core.NewScanner().Run(vec, comp)
	h := &hist.Histogram{
		Kind:          hist.Compressed,
		Buckets:       comp.Buckets(),
		Frequent:      comp.Frequent(),
		Total:         vec.Total(),
		DistinctTotal: int64(vec.Cardinality()),
	}
	sp.s.catalog.Put(sp.req.Table, sp.req.Column, &dbms.ColumnStats{
		Histogram: h,
		NDistinct: int64(vec.Cardinality()),
		RowCount:  int64(sp.entry.rel.NumRows()),
	})
	total := uint64(bstats.Cycles + chain.TotalCycles)
	sp.s.metrics.rowsBinned.Add(bstats.Items)
	sp.s.metrics.histRefreshed.Add(1)
	sp.s.metrics.accelCycles.Add(int64(total))
	return uint64(bstats.Items), true, total, sp.clock.Seconds(int64(total))
}
