package server_test

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"streamhist/internal/faults"
	"streamhist/internal/obs"
	"streamhist/internal/server"
)

// scrapeMetrics runs one /metrics request through the real introspection
// handler and validates the exposition before returning it.
func scrapeMetrics(t *testing.T, srv *server.Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	obs.Handler(srv.Obs(), nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if err := obs.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("server exposition invalid: %v\n%s", err, rec.Body.String())
	}
	return rec.Body.String()
}

// expoValue extracts the sample value for one exact series name (labels
// included) from an exposition document.
func expoValue(t *testing.T, expo, series string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(expo))
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s has unparseable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, expo)
	return 0
}

// TestMetricsExpositionCoversSnapshot is the acceptance check that /metrics
// is a superset of MetricsSnapshot: every snapshot field has a series, the
// two views agree on the shared counters, and the extras (per-lane cycle
// gauges, latency quantiles) are present after a refreshed sharded scan.
func TestMetricsExpositionCoversSnapshot(t *testing.T) {
	rel := testRelation(4000)
	// One page per frame so the round-robin feeder reaches every lane.
	srv := server.New(server.Config{DrainWorkers: 8, ShardLanes: 4, PagesPerFrame: 1})
	if err := srv.Register(rel); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	sum, err := c.Scan("synthetic", "c2", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Refreshed {
		t.Fatal("scan did not refresh statistics; the lane gauges below would be vacuous")
	}
	if _, err := c.Stats("synthetic", "c2"); err != nil {
		t.Fatal(err)
	}

	m := srv.Metrics()
	expo := scrapeMetrics(t, srv)

	// Every MetricsSnapshot field maps to a series, and the values agree.
	for series, want := range map[string]int64{
		"streamhist_server_scans_served_total":         m.ScansServed,
		"streamhist_server_pages_moved_total":          m.PagesMoved,
		"streamhist_server_bytes_moved_total":          m.BytesMoved,
		"streamhist_server_rows_binned_total":          m.RowsBinned,
		"streamhist_server_histograms_refreshed_total": m.HistogramsRefreshed,
		"streamhist_server_stats_served_total":         m.StatsServed,
		"streamhist_server_side_skipped_total":         m.SideSkipped,
		"streamhist_server_parse_errors_total":         m.ParseErrors,
		"streamhist_server_accel_cycles_total":         m.AccelCycles,
		"streamhist_server_active_conns":               m.ActiveConns,
		"streamhist_server_shard_lanes":                m.ShardLanes,
		"streamhist_server_lane_merges_total":          m.LaneMerges,
		"streamhist_server_pages_quarantined_total":    m.PagesQuarantined,
		"streamhist_server_lanes_retired_total":        m.LanesRetired,
		"streamhist_server_scans_degraded_total":       m.ScansDegraded,
		"streamhist_server_retries_served_total":       m.RetriesServed,
		"streamhist_server_ecc_corrected_total":        m.FaultsCorrected,
		"streamhist_server_bins_quarantined_total":     m.BinsQuarantined,
	} {
		if got := expoValue(t, expo, series); int64(got) != want {
			t.Errorf("%s = %v in exposition, snapshot says %d", series, got, want)
		}
	}
	if m.ScansServed != 1 || m.StatsServed != 1 {
		t.Fatalf("snapshot miscounted the workload: %+v", m)
	}

	// The refreshed sharded scan must have charged cycles to every lane.
	for lane := 0; lane < 4; lane++ {
		series := fmt.Sprintf("streamhist_server_lane_cycles{lane=%q}", fmt.Sprint(lane))
		if v := expoValue(t, expo, series); v <= 0 {
			t.Errorf("%s = %v, want > 0 after a refreshed 4-lane scan", series, v)
		}
	}

	// Scan latency is exposed as a streaming-histogram summary.
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		series := fmt.Sprintf("streamhist_server_scan_duration_seconds{quantile=%q}", q)
		if v := expoValue(t, expo, series); v < 0 {
			t.Errorf("%s = %v", series, v)
		}
	}
	if n := expoValue(t, expo, "streamhist_server_scan_duration_seconds_count"); n != 1 {
		t.Errorf("latency count = %v, want 1", n)
	}
}

// TestCorruptionFaultsSurfaceInMetrics injects a memory-upset-heavy fault
// profile and asserts the ECC accounting moves end to end: the
// BinnerStats fold into MetricsSnapshot.FaultsCorrected/BinsQuarantined,
// the same values appear on /metrics, and the live hw event counters (which
// also see lanes that later retire) are at least as large.
func TestCorruptionFaultsSurfaceInMetrics(t *testing.T) {
	srv := server.New(server.Config{
		Faults: faults.New(11, faults.Profile{
			faults.MemReadFlip:  0.2,
			faults.MemWriteFlip: 0.2,
		}),
		ShardLanes: 2,
	})
	if err := srv.Register(testRelation(5000)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	if _, err := c.Scan("synthetic", "c1", io.Discard); err != nil {
		t.Fatalf("scan under memory upsets: %v", err)
	}

	m := srv.Metrics()
	if m.FaultsCorrected == 0 {
		t.Fatal("a 20% read-flip rate over 5000 rows corrected nothing")
	}
	if m.BinsQuarantined == 0 {
		t.Fatal("a 20% write-flip rate (1-in-4 double-bit) quarantined no bins")
	}

	expo := scrapeMetrics(t, srv)
	if got := expoValue(t, expo, "streamhist_server_ecc_corrected_total"); int64(got) != m.FaultsCorrected {
		t.Errorf("exposition ecc_corrected = %v, snapshot %d", got, m.FaultsCorrected)
	}
	if got := expoValue(t, expo, "streamhist_server_bins_quarantined_total"); int64(got) != m.BinsQuarantined {
		t.Errorf("exposition bins_quarantined = %v, snapshot %d", got, m.BinsQuarantined)
	}
	// Live hw events include every lane that ever ran; the folded counters
	// only see state that survived to the merge.
	if live := expoValue(t, expo, "streamhist_hw_ecc_corrected_events_total"); int64(live) < m.FaultsCorrected {
		t.Errorf("live corrected events %v < folded %d", live, m.FaultsCorrected)
	}
	if live := expoValue(t, expo, "streamhist_hw_ecc_quarantined_events_total"); int64(live) < m.BinsQuarantined {
		t.Errorf("live quarantined events %v < folded %d", live, m.BinsQuarantined)
	}
	// The injector's per-point hit gauges are registered when faults are on.
	for _, p := range []faults.Point{faults.MemReadFlip, faults.MemWriteFlip} {
		series := fmt.Sprintf("streamhist_fault_injections{point=%q}", string(p))
		if hits := expoValue(t, expo, series); hits <= 0 {
			t.Errorf("%s = %v, want > 0", series, hits)
		}
	}
}

// TestTraceCycleInvariant is the acceptance check tying tracing to the
// accelerator model: for a refreshed sharded scan, the published trace's
// lane and merge spans must reproduce the summary's AccelCycles exactly —
// max(lane HWCycles) + merge HWCycles — because the model charges the
// critical-path lane plus the fan-in aggregation and histogram chain.
func TestTraceCycleInvariant(t *testing.T) {
	srv := server.New(server.Config{DrainWorkers: 8, ShardLanes: 4, PagesPerFrame: 1})
	if err := srv.Register(testRelation(4000)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	sum, err := c.Scan("synthetic", "c3", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Refreshed {
		t.Fatal("scan did not refresh; no lane spans to check")
	}

	// The trace publishes when the handler returns, which can trail the
	// summary's arrival at the client.
	var tr *obs.ScanTrace
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if recent := srv.Obs().Tracer().Recent(1); len(recent) == 1 {
			tr = recent[0]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tr == nil {
		t.Fatal("scan trace never published")
	}

	if tr.Table != "synthetic" || tr.Column != "c3" || !tr.Refreshed || tr.Err != "" {
		t.Fatalf("trace header: %+v", tr)
	}
	if tr.AccelCycles != sum.AccelCycles {
		t.Fatalf("trace AccelCycles %d != summary %d", tr.AccelCycles, sum.AccelCycles)
	}
	if tr.WallNS <= 0 {
		t.Fatal("trace wall clock not stamped")
	}

	var maxLane, merge int64
	lanes := 0
	seen := map[string]bool{}
	for _, sp := range tr.Spans {
		seen[sp.Name] = true
		switch sp.Name {
		case "lane":
			if sp.Retired {
				t.Fatalf("faultless scan retired lane %d", sp.Lane)
			}
			lanes++
			if sp.HWCycles > maxLane {
				maxLane = sp.HWCycles
			}
			if sp.Lane < 0 || sp.Lane >= 4 {
				t.Fatalf("lane span with index %d", sp.Lane)
			}
		case "merge":
			merge = sp.HWCycles
		}
	}
	for _, want := range []string{"accept", "stream", "lane", "merge", "install"} {
		if !seen[want] {
			t.Fatalf("trace missing %q span; spans: %+v", want, tr.Spans)
		}
	}
	if lanes != 4 {
		t.Fatalf("trace has %d lane spans, want 4", lanes)
	}
	if maxLane <= 0 || merge <= 0 {
		t.Fatalf("degenerate cycle accounting: maxLane=%d merge=%d", maxLane, merge)
	}
	if got := uint64(maxLane + merge); got != tr.AccelCycles {
		t.Fatalf("max(lane)+merge = %d does not reproduce AccelCycles %d", got, tr.AccelCycles)
	}
}
