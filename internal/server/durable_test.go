package server_test

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"streamhist/internal/client"
	"streamhist/internal/durable"
	"streamhist/internal/page"
	"streamhist/internal/server"
	"streamhist/internal/stream"
)

// TestServerRestartRecoversCatalogAndResume is the in-process restart
// integration test: a durable server gathers statistics, crashes (Abandon —
// the file state a kill -9 leaves), and a second server opened on the same
// directory must (a) serve the pre-crash statistics byte-identically, (b)
// report the interrupted scan as recovered, and (c) complete that scan via a
// client resume whose total delivery is byte-identical to a clean run.
func TestServerRestartRecoversCatalogAndResume(t *testing.T) {
	dir := t.TempDir()
	rel := testRelation(4000)
	want, err := io.ReadAll(stream.NewPagesReader(rel))
	if err != nil {
		t.Fatal(err)
	}
	npages := len(want) / page.Size

	m1, err := durable.Open(dir, durable.Options{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := server.New(server.Config{Durable: m1, PagesPerFrame: 2})
	if err := srv1.Register(rel); err != nil {
		t.Fatal(err)
	}

	// A completed scan installs c1's statistics; the install rides the WAL.
	sc, cc := net.Pipe()
	go srv1.ServeConn(sc)
	c1 := client.New(cc)
	if _, err := c1.Scan("synthetic", "c1", io.Discard); err != nil {
		t.Fatalf("pre-crash scan: %v", err)
	}
	statsBefore, err := c1.Stats("synthetic", "c1")
	if err != nil {
		t.Fatalf("pre-crash stats: %v", err)
	}
	c1.Close()

	// A second scan is interrupted mid-stream: read a few frames, then the
	// process "dies" — the journal entry it opened never closes.
	sc2, cc2 := net.Pipe()
	go srv1.ServeConn(sc2)
	cc2.SetDeadline(time.Now().Add(10 * time.Second))
	go server.WriteFrame(cc2, server.FrameScan,
		server.EncodeScanRequest(server.ScanRequest{Table: "synthetic", Column: "c2"})) //nolint:errcheck
	var deliveredPages int
	for deliveredPages < 6 {
		f, err := server.ReadFrame(cc2)
		if err != nil {
			t.Fatalf("partial scan frame: %v", err)
		}
		if f.Type != server.FramePagesCk {
			t.Fatalf("unexpected frame type %d mid-scan", f.Type)
		}
		deliveredPages += len(f.Payload) / (page.Size + server.PageChecksumSize)
	}
	if err := m1.Sync(); err != nil {
		t.Fatal(err)
	}
	m1.Abandon() // kill -9: WAL queue dies unflushed, files close mid-state
	cc2.Close()
	srv1.Close()

	// Restart on the same directory.
	m2, err := durable.Open(dir, durable.Options{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := m2.RecoveredScans()
	if len(rec) != 1 || rec[0].Table != "synthetic" || rec[0].Column != "c2" {
		t.Fatalf("recovered scans %+v, want the interrupted synthetic.c2 scan", rec)
	}
	srv2 := server.New(server.Config{Durable: m2, PagesPerFrame: 2})
	if err := srv2.Register(rel); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// (a) Pre-crash statistics survive byte-identically.
	sc3, cc3 := net.Pipe()
	go srv2.ServeConn(sc3)
	c2 := client.New(cc3)
	statsAfter, err := c2.Stats("synthetic", "c1")
	if err != nil {
		t.Fatalf("post-restart stats: %v", err)
	}
	hb, _ := statsBefore.Histogram.MarshalBinary()
	ha, _ := statsAfter.Histogram.MarshalBinary()
	if !bytes.Equal(hb, ha) {
		t.Fatal("recovered histogram differs from the pre-crash one")
	}
	if statsAfter.RowCount != statsBefore.RowCount ||
		statsAfter.NDistinct != statsBefore.NDistinct ||
		statsAfter.Version != statsBefore.Version {
		t.Fatalf("recovered stats header %+v, want %+v", statsAfter, statsBefore)
	}
	c2.Close()

	// (c) The interrupted scan completes via a server-side resume, adopting
	// the recovered journal entry; prefix + resumed suffix is byte-identical
	// to a clean run.
	resume, got, sum := rawScan(t, srv2, server.ScanRequest{
		Table: "synthetic", Column: "c2", Offset: uint32(deliveredPages),
	})
	start := deliveredPages - deliveredPages%2
	if resume != int64(start) {
		t.Fatalf("resume announced start %d, want %d", resume, start)
	}
	if !bytes.Equal(got, want[start*page.Size:]) {
		t.Fatal("resumed delivery differs from the clean run's suffix")
	}
	if int(sum.Pages) != npages-start {
		t.Fatalf("resumed summary counts %d pages, want %d", sum.Pages, npages-start)
	}
	if len(m2.RecoveredScans()) != 0 {
		t.Fatal("resume did not adopt the recovered journal entry")
	}
}

// TestServerNoDurabilityBitIdentical pins the -no-durability contract: a
// server with no durable manager serves byte-for-byte what a durable server
// serves, and the scan/stats wire exchanges are identical.
func TestServerNoDurabilityBitIdentical(t *testing.T) {
	rel := testRelation(4000)
	run := func(m *durable.Manager) ([]byte, []byte) {
		srv := server.New(server.Config{Durable: m, PagesPerFrame: 4})
		if err := srv.Register(rel); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		sc, cc := net.Pipe()
		go srv.ServeConn(sc)
		c := client.New(cc)
		defer c.Close()
		var got bytes.Buffer
		if _, err := c.Scan("synthetic", "c3", &got); err != nil {
			t.Fatal(err)
		}
		st, err := c.Stats("synthetic", "c3")
		if err != nil {
			t.Fatal(err)
		}
		hb, _ := st.Histogram.MarshalBinary()
		return got.Bytes(), hb
	}
	m, err := durable.Open(t.TempDir(), durable.Options{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	durBytes, durHist := run(m)
	plainBytes, plainHist := run(nil)
	if !bytes.Equal(durBytes, plainBytes) {
		t.Fatal("page stream differs between durable and plain serving")
	}
	if !bytes.Equal(durHist, plainHist) {
		t.Fatal("histogram differs between durable and plain serving")
	}
}
