package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"streamhist/internal/obs"
	"streamhist/internal/server"
)

// logCapture is a slog.Handler that keeps every record's message and the
// value of its "scan" attribute, so tests can join log lines with traces.
type logCapture struct {
	mu      sync.Mutex
	records []capturedRecord
}

type capturedRecord struct {
	msg    string
	scanID uint64
	hasID  bool
}

func (h *logCapture) Enabled(context.Context, slog.Level) bool { return true }
func (h *logCapture) WithAttrs([]slog.Attr) slog.Handler       { return h }
func (h *logCapture) WithGroup(string) slog.Handler            { return h }
func (h *logCapture) Handle(_ context.Context, r slog.Record) error {
	cr := capturedRecord{msg: r.Message}
	r.Attrs(func(a slog.Attr) bool {
		if a.Key == "scan" {
			switch a.Value.Kind() {
			case slog.KindUint64:
				cr.scanID, cr.hasID = a.Value.Uint64(), true
			case slog.KindInt64:
				cr.scanID, cr.hasID = uint64(a.Value.Int64()), true
			}
		}
		return true
	})
	h.mu.Lock()
	h.records = append(h.records, cr)
	h.mu.Unlock()
	return nil
}

// TestScanIDJoinsLogTraceAndEvent proves the PR's correlation contract: a
// served scan carries ONE id across its slog record, its ScanTrace (served
// by /scans), and its flight-recorder wide event (served by /events).
func TestScanIDJoinsLogTraceAndEvent(t *testing.T) {
	capture := &logCapture{}
	o := obs.New()
	o.Log = slog.New(capture)

	srv := server.New(server.Config{Obs: o})
	if err := srv.Register(testRelation(2000)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	var sink bytes.Buffer
	if _, err := c.Scan("synthetic", "c1", &sink); err != nil {
		t.Fatal(err)
	}

	// The wide event. The server records it in a deferred block after the
	// summary frame is already on the wire, so poll briefly.
	var ev *obs.ScanEvent
	deadline := time.Now().Add(2 * time.Second)
	for ev == nil && time.Now().Before(deadline) {
		evs := o.Flight.Recent(8)
		for i := range evs {
			if evs[i].Source == "server" {
				ev = &evs[i]
				break
			}
		}
		if ev == nil {
			time.Sleep(time.Millisecond)
		}
	}
	if ev == nil {
		t.Fatal("no server wide event recorded")
	}

	// The trace, via the public /scans surface (includes the id).
	rec := httptest.NewRecorder()
	obs.Handler(o, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/scans", nil))
	var traces []obs.ScanTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatalf("decoding /scans: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("/scans empty")
	}
	trace := traces[0]

	// The log record lands right after the event in the same deferred block.
	var logged *capturedRecord
	for logged == nil && time.Now().Before(deadline) {
		capture.mu.Lock()
		for i := range capture.records {
			if capture.records[i].msg == "scan served" && capture.records[i].hasID {
				cr := capture.records[i]
				logged = &cr
			}
		}
		capture.mu.Unlock()
		if logged == nil {
			time.Sleep(time.Millisecond)
		}
	}
	if logged == nil {
		t.Fatalf("no 'scan served' log record with a scan attr: %+v", capture.records)
	}

	if ev.ScanID != trace.ID || trace.ID != logged.scanID {
		t.Errorf("scan ids diverge: event=%d trace=%d log=%d", ev.ScanID, trace.ID, logged.scanID)
	}
	if ev.Table != "synthetic" || ev.Pages == 0 || ev.Bytes == 0 {
		t.Errorf("wide event not filled in: %+v", ev)
	}
	if ev.Spans == nil {
		t.Error("wide event carries no span timings")
	}
}
