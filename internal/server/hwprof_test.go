package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"streamhist/internal/faults"
	"streamhist/internal/hwprof"
	"streamhist/internal/obs"
	"streamhist/internal/server"
)

// fetchHwprofText pulls /debug/hwprof?format=text through the real
// introspection handler and parses it back into a profile.
func fetchHwprofText(t *testing.T, srv *server.Server) *hwprof.Profile {
	t.Helper()
	rec := httptest.NewRecorder()
	obs.Handler(srv.Obs(), nil).ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/debug/hwprof?format=text", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/hwprof status %d: %s", rec.Code, rec.Body.String())
	}
	prof, err := hwprof.ParseText(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("parse hwprof text: %v", err)
	}
	return prof
}

// TestHwprofEndToEndConsistency drives refreshed scans through the wire
// protocol and checks the server-side self-check: the consistency gauge
// reads 1, the attributed-cycles counter matches both the live profiler and
// the profile served over /debug/hwprof, and the per-stage cycle gauges are
// published. The binary endpoint must hand back a gzip stream.
func TestHwprofEndToEndConsistency(t *testing.T) {
	srv := server.New(server.Config{DrainWorkers: 8, ShardLanes: 4, PagesPerFrame: 1})
	if err := srv.Register(testRelation(4000)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	for i := 0; i < 2; i++ {
		sum, err := c.Scan("synthetic", "c2", io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if !sum.Refreshed {
			t.Fatal("scan did not refresh statistics")
		}
	}

	expo := scrapeMetrics(t, srv)
	if v := expoValue(t, expo, "streamhist_hwprof_consistency"); v != 1 {
		t.Fatalf("streamhist_hwprof_consistency = %v, want 1", v)
	}
	attributed := expoValue(t, expo, "streamhist_hwprof_attributed_cycles_total")
	if attributed <= 0 {
		t.Fatalf("attributed cycles %v, want > 0", attributed)
	}
	if got := srv.Obs().Profiler().TotalCycles(); float64(got) != attributed {
		t.Fatalf("live profiler total %d != attributed counter %v", got, attributed)
	}
	served := fetchHwprofText(t, srv)
	if got := served.TotalCycles(); float64(got) != attributed {
		t.Fatalf("/debug/hwprof total %d != attributed counter %v", got, attributed)
	}
	// The per-(module,stage,reason) gauges summed over lanes must cover the
	// pipeline's compute node at minimum.
	if v := expoValue(t, expo,
		`streamhist_hwprof_cycles{module="binner",stage="preprocess",reason="compute"}`); v <= 0 {
		t.Fatalf("per-stage compute gauge %v, want > 0", v)
	}

	rec := httptest.NewRecorder()
	obs.Handler(srv.Obs(), nil).ServeHTTP(rec,
		httptest.NewRequest(http.MethodGet, "/debug/hwprof", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/hwprof binary status %d", rec.Code)
	}
	if b := rec.Body.Bytes(); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("/debug/hwprof did not return a gzip stream (got % x...)", rec.Body.Bytes()[:2])
	}
}

// TestHwprofSingleLaneMatchesAccelCycles: with one shard lane there is no
// fan-in and max-lane == sum-of-lanes, so the attributed total must equal
// the accel-cycles counter to the cycle — the literal equality histserved
// documents for -lanes 1.
func TestHwprofSingleLaneMatchesAccelCycles(t *testing.T) {
	srv := server.New(server.Config{DrainWorkers: 4, ShardLanes: 1})
	if err := srv.Register(testRelation(3000)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	sum, err := c.Scan("synthetic", "c2", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Refreshed {
		t.Fatal("scan did not refresh statistics")
	}
	expo := scrapeMetrics(t, srv)
	attributed := expoValue(t, expo, "streamhist_hwprof_attributed_cycles_total")
	accel := expoValue(t, expo, "streamhist_server_accel_cycles_total")
	if attributed != accel {
		t.Fatalf("single lane: attributed %v != accel cycles %v", attributed, accel)
	}
	if v := expoValue(t, expo, "streamhist_hwprof_consistency"); v != 1 {
		t.Fatalf("streamhist_hwprof_consistency = %v, want 1", v)
	}
}

// TestHwprofConsistencyUnderChaos: fault injection retires lanes, corrupts
// pages, and stretches memory latencies, but attribution must never drift —
// the consistency gauge stays 1 after every scan, and injected spikes and
// ECC corrections show up in the profile rather than vanishing.
func TestHwprofConsistencyUnderChaos(t *testing.T) {
	profile, err := faults.ByName("corruption-heavy")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		DrainWorkers: 8, ShardLanes: 4, PagesPerFrame: 1,
		Faults: faults.New(11, profile),
	})
	if err := srv.Register(testRelation(6000)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	refreshed := false
	for i := 0; i < 4; i++ {
		sum, err := c.Scan("synthetic", "c2", io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		refreshed = refreshed || sum.Refreshed
		expo := scrapeMetrics(t, srv)
		if v := expoValue(t, expo, "streamhist_hwprof_consistency"); v != 1 {
			t.Fatalf("scan %d: streamhist_hwprof_consistency = %v under chaos, want 1", i, v)
		}
	}
	if !refreshed {
		t.Skip("no scan refreshed under chaos; consistency held but attribution untested")
	}
	prof := srv.Obs().Profiler().Snapshot()
	var spikes, ecc int64
	for _, s := range prof.Samples {
		if len(s.Stack) != 4 {
			continue
		}
		switch s.Stack[3] {
		case hwprof.ReasonSpike:
			spikes += s.Events
		case hwprof.ReasonECC:
			ecc += s.Events
		}
	}
	if spikes == 0 && ecc == 0 {
		t.Fatal("corruption-heavy chaos left no spike or ECC attribution in the profile")
	}
}
