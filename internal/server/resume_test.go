package server_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"streamhist/internal/client"
	"streamhist/internal/page"
	"streamhist/internal/server"
	"streamhist/internal/stream"
)

// rawScan runs one SCAN request over a fresh pipe to srv, speaking the
// protocol by hand, and returns the resume start the server announced (-1
// when no FrameResumeInfo arrived), the concatenated page bytes, and the
// summary.
func rawScan(t *testing.T, srv *server.Server, req server.ScanRequest) (int64, []byte, server.ScanSummary) {
	t.Helper()
	sc, cc := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(sc)
		close(done)
	}()
	defer func() {
		cc.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("ServeConn did not return")
		}
	}()
	cc.SetDeadline(time.Now().Add(10 * time.Second))
	werr := make(chan error, 1)
	go func() { // net.Pipe is unbuffered: write and read concurrently
		werr <- server.WriteFrame(cc, server.FrameScan, server.EncodeScanRequest(req))
	}()

	resume := int64(-1)
	var pagesOut []byte
	for {
		f, err := server.ReadFrame(cc)
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		switch f.Type {
		case server.FrameResumeInfo:
			if resume >= 0 {
				t.Fatal("duplicate FrameResumeInfo")
			}
			if len(pagesOut) > 0 {
				t.Fatal("FrameResumeInfo arrived after pages")
			}
			start, err := server.DecodeResumeInfo(f.Payload)
			if err != nil {
				t.Fatalf("resume info: %v", err)
			}
			resume = int64(start)
		case server.FramePagesCk:
			unit := page.Size + server.PageChecksumSize
			n := len(f.Payload) / unit
			if n == 0 || len(f.Payload)%unit != 0 {
				t.Fatalf("bad pages+ck frame of %d bytes", len(f.Payload))
			}
			trailer := f.Payload[n*page.Size:]
			for i := 0; i < n; i++ {
				img := f.Payload[i*page.Size : (i+1)*page.Size]
				if page.Checksum(img) != binary.LittleEndian.Uint32(trailer[i*4:]) {
					t.Fatalf("page %d failed its trailer checksum", i)
				}
			}
			pagesOut = append(pagesOut, f.Payload[:n*page.Size]...)
		case server.FrameScanEnd:
			sum, err := server.DecodeScanSummary(f.Payload)
			if err != nil {
				t.Fatalf("summary: %v", err)
			}
			if err := <-werr; err != nil {
				t.Fatalf("write request: %v", err)
			}
			return resume, pagesOut, sum
		default:
			t.Fatalf("unexpected frame type %d", f.Type)
		}
	}
}

// TestResumeOffsetSweepFrameAligned is the resume-edge regression sweep:
// for every frame size and EVERY page offset — boundary, mid-frame, and
// one-past-the-end alike — a resumed scan must announce a start aligned
// down to the frame boundary and then deliver exactly the relation's pages
// from that start, byte-identical to a clean scan's suffix.
func TestResumeOffsetSweepFrameAligned(t *testing.T) {
	rel := testRelation(4000)
	want, err := io.ReadAll(stream.NewPagesReader(rel))
	if err != nil {
		t.Fatal(err)
	}
	npages := len(want) / page.Size
	if npages < 5 {
		t.Fatalf("relation too small for the sweep: %d pages", npages)
	}
	for _, fs := range []int{1, 2, 3, 4, 5, 8, 16} {
		fs := fs
		t.Run(fmt.Sprintf("frame=%d", fs), func(t *testing.T) {
			t.Parallel()
			srv := server.New(server.Config{PagesPerFrame: fs})
			if err := srv.Register(rel); err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			for off := 0; off <= npages; off++ {
				resume, got, sum := rawScan(t, srv, server.ScanRequest{Table: "synthetic", Offset: uint32(off)})
				start := off - off%fs
				if off == 0 {
					if resume != -1 {
						t.Fatalf("offset 0 must not carry FrameResumeInfo, got start %d", resume)
					}
					start = 0
				} else if resume != int64(start) {
					t.Fatalf("offset %d: announced start %d, want %d", off, resume, start)
				}
				if !bytes.Equal(got, want[start*page.Size:]) {
					t.Fatalf("offset %d (frame %d): delivered pages differ from the clean suffix at %d", off, fs, start)
				}
				if int(sum.Pages) != npages-start {
					t.Fatalf("offset %d: summary counts %d pages, want %d", off, sum.Pages, npages-start)
				}
			}
		})
	}
}

// TestClientSkipsRedeliveredPages drives the client's dedup path across every
// possible mid-frame interruption point: attempt one is a hand-rolled fake
// server that corrupts exactly page k (so the client verifiably delivers k
// pages and fails), the redial lands on a real server, and the resumed scan's
// frame-aligned re-delivery must leave the sink byte-identical to a clean
// scan — no duplicated, missing, or reordered page, whatever k was.
func TestClientSkipsRedeliveredPages(t *testing.T) {
	const frame = 4
	rel := testRelation(4000)
	want, err := io.ReadAll(stream.NewPagesReader(rel))
	if err != nil {
		t.Fatal(err)
	}
	npages := len(want) / page.Size
	srv := server.New(server.Config{PagesPerFrame: frame})
	if err := srv.Register(rel); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for k := 0; k < npages && k < frame; k++ {
		k := k
		t.Run(fmt.Sprintf("corrupt_page=%d", k), func(t *testing.T) {
			fakeSrv, fakeCli := net.Pipe()
			go func() { // fake first-attempt server: first frame, page k corrupt
				defer fakeSrv.Close()
				if _, err := server.ReadFrame(fakeSrv); err != nil {
					return
				}
				n := frame
				if n > npages {
					n = npages
				}
				payload := make([]byte, 0, n*(page.Size+server.PageChecksumSize))
				payload = append(payload, want[:n*page.Size]...)
				for i := 0; i < n; i++ {
					payload = binary.LittleEndian.AppendUint32(payload,
						page.Checksum(want[i*page.Size:(i+1)*page.Size]))
				}
				payload[k*page.Size] ^= 0xFF // damage page k after the trailer
				server.WriteFrame(fakeSrv, server.FramePagesCk, payload) //nolint:errcheck
			}()

			c := client.New(fakeCli)
			c.SetTimeout(10 * time.Second)
			c.SetRedial(func() (net.Conn, error) {
				sc, cc := net.Pipe()
				go srv.ServeConn(sc)
				return cc, nil
			})
			var got bytes.Buffer
			sum, err := c.Scan("synthetic", "", &got)
			if err != nil {
				t.Fatalf("scan: %v", err)
			}
			c.Close()
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("sink differs from clean scan after resume at page %d", k)
			}
			if sum.Pages != uint32(npages) || sum.Bytes != uint64(len(want)) {
				t.Fatalf("summary %d pages / %d bytes, want %d / %d", sum.Pages, sum.Bytes, npages, len(want))
			}
			if sum.Retries != 1 {
				t.Fatalf("summary reports %d retries, want 1", sum.Retries)
			}
		})
	}
}
