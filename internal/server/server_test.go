package server_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"streamhist/internal/client"
	"streamhist/internal/page"
	"streamhist/internal/server"
	"streamhist/internal/stream"
	"streamhist/internal/table"
	"streamhist/internal/tpch"
)

// testRelation builds a deterministic Zipf-skewed 4-column relation.
func testRelation(rows int) *table.Relation {
	return tpch.Synthetic(rows, 4, 512, 1.1, 7)
}

// wantLeakFree fails the test if the goroutine count does not settle back
// to the baseline captured before the server existed.
func wantLeakFree(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// startServer runs srv on a loopback listener and returns its address plus
// a shutdown func that cancels the context and waits for Serve to return.
func startServer(t *testing.T, srv *server.Server) (addr string, shutdown func() error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			return errors.New("Serve did not return within 10s of cancel")
		}
	}
}

// TestConcurrentScansAndStats is the acceptance-criteria integration test:
// a loopback server, several concurrent client scans, then a STATS call.
// Every client must receive the exact bytes stream.NewPagesReader yields,
// the catalog histogram must equal the in-process DataPath result for the
// same relation and column, and shutdown must be clean with no leaked
// goroutines.
func TestConcurrentScansAndStats(t *testing.T) {
	base := runtime.NumGoroutine()
	rel := testRelation(5000)

	srv := server.New(server.Config{DrainWorkers: 8})
	if err := srv.Register(rel); err != nil {
		t.Fatalf("register: %v", err)
	}
	addr, shutdown := startServer(t, srv)

	want, err := io.ReadAll(stream.NewPagesReader(rel))
	if err != nil {
		t.Fatalf("reference stream: %v", err)
	}

	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			var got bytes.Buffer
			sum, err := c.Scan("synthetic", "c1", &got)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got.Bytes(), want) {
				errs <- errors.New("served pages differ from stream.NewPagesReader output")
				return
			}
			if int(sum.Pages) != len(want)/page.Size || sum.Bytes != uint64(len(want)) {
				errs <- errors.New("scan summary does not match the stream size")
				return
			}
			if sum.Rows != uint64(rel.NumRows()) {
				errs <- errors.New("side path binned the wrong number of rows")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The reference result: the same relation and column through the
	// in-process Figure 9 data path.
	dp, err := stream.NewDataPath(rel, "c1", stream.GigabitEthernet)
	if err != nil {
		t.Fatalf("data path: %v", err)
	}
	ref, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatalf("data path scan: %v", err)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial for stats: %v", err)
	}
	st, err := c.Stats("synthetic", "c1")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	c.Close()
	if !st.Histogram.Equal(ref.Results.Compressed) {
		t.Fatalf("served histogram %v != data-path histogram %v", st.Histogram, ref.Results.Compressed)
	}
	if st.RowCount != int64(rel.NumRows()) || st.NDistinct != ref.Results.Compressed.DistinctTotal {
		t.Fatalf("stats metadata mismatch: %+v", st)
	}
	// The server's own catalog must hold the same statistic.
	if cs := srv.Catalog().Get("synthetic", "c1"); cs == nil || !cs.Histogram.Equal(ref.Results.Compressed) {
		t.Fatal("catalog histogram does not equal the single-scan histogram")
	}

	m := srv.Metrics()
	if m.ScansServed != n {
		t.Fatalf("ScansServed = %d, want %d", m.ScansServed, n)
	}
	if m.BytesMoved != int64(n*len(want)) {
		t.Fatalf("BytesMoved = %d, want %d", m.BytesMoved, n*len(want))
	}
	if m.HistogramsRefreshed < 1 || m.HistogramsRefreshed > n {
		t.Fatalf("HistogramsRefreshed = %d, want 1..%d", m.HistogramsRefreshed, n)
	}
	if m.HistogramsRefreshed+m.SideSkipped != n {
		t.Fatalf("refreshed (%d) + skipped (%d) != scans (%d)", m.HistogramsRefreshed, m.SideSkipped, n)
	}
	if m.AccelCycles <= 0 {
		t.Fatal("no accelerator cycles accounted")
	}

	// Leave an idle connection open: graceful shutdown must reap it.
	idle, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("idle dial: %v", err)
	}
	defer idle.Close()
	if err := shutdown(); !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	wantLeakFree(t, base)
}

func TestRequestErrors(t *testing.T) {
	srv := server.New(server.Config{})
	if err := srv.Register(testRelation(100)); err != nil {
		t.Fatalf("register: %v", err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.Scan("nope", "c0", io.Discard); !errors.Is(err, server.ErrUnknownTable) {
		t.Fatalf("unknown table: got %v", err)
	}
	if _, err := c.Scan("synthetic", "nope", io.Discard); !errors.Is(err, server.ErrUnknownColumn) {
		t.Fatalf("unknown column: got %v", err)
	}
	if _, err := c.Stats("synthetic", "c0"); !errors.Is(err, server.ErrNoStats) {
		t.Fatalf("stats before any scan: got %v", err)
	}
	// The connection must survive request-level errors.
	if _, err := c.Scan("synthetic", "c0", io.Discard); err != nil {
		t.Fatalf("scan after errors: %v", err)
	}
	if _, err := c.Stats("synthetic", "c0"); err != nil {
		t.Fatalf("stats after scan: %v", err)
	}
}

func TestScanWithoutColumnMovesDataOnly(t *testing.T) {
	rel := testRelation(200)
	srv := server.New(server.Config{})
	if err := srv.Register(rel); err != nil {
		t.Fatalf("register: %v", err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	var got bytes.Buffer
	sum, err := c.Scan("synthetic", "", &got)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if sum.Refreshed || sum.Rows != 0 {
		t.Fatalf("column-less scan refreshed statistics: %+v", sum)
	}
	want, _ := io.ReadAll(stream.NewPagesReader(rel))
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("column-less scan bytes differ from storage")
	}
	if srv.Catalog().StatsColumns("synthetic") != nil {
		t.Fatal("catalog gained stats from a column-less scan")
	}
}

func TestServeConnOverPipe(t *testing.T) {
	base := runtime.NumGoroutine()
	rel := testRelation(300)
	srv := server.New(server.Config{})
	if err := srv.Register(rel); err != nil {
		t.Fatalf("register: %v", err)
	}
	sc, cc := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(sc)
		close(done)
	}()
	c := client.New(cc)
	var got bytes.Buffer
	if _, err := c.Scan("synthetic", "c2", &got); err != nil {
		t.Fatalf("scan over pipe: %v", err)
	}
	want, _ := io.ReadAll(stream.NewPagesReader(rel))
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("pipe scan bytes differ from storage")
	}
	tables, err := c.Tables()
	if err != nil {
		t.Fatalf("tables: %v", err)
	}
	if len(tables) != 1 || tables[0].Name != "synthetic" || tables[0].Rows != 300 {
		t.Fatalf("table listing: %+v", tables)
	}
	if len(tables[0].StatsColumns) != 1 || tables[0].StatsColumns[0] != "c2" {
		t.Fatalf("stats columns after scan: %+v", tables[0].StatsColumns)
	}
	c.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after client close")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wantLeakFree(t, base)
}

func TestRegisterReplaceMarksStatsStale(t *testing.T) {
	rel := testRelation(100)
	srv := server.New(server.Config{})
	if err := srv.Register(rel); err != nil {
		t.Fatalf("register: %v", err)
	}
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Scan("synthetic", "c0", io.Discard); err != nil {
		t.Fatalf("scan: %v", err)
	}
	st, err := c.Stats("synthetic", "c0")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Version != 0 {
		t.Fatalf("fresh stats version = %d, want 0", st.Version)
	}

	// Replace the relation (a bulk reload): old stats must read as stale
	// until the next served scan refreshes them.
	rel2 := tpch.Synthetic(150, 4, 512, 1.1, 99)
	if err := srv.Register(rel2); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if !srv.Catalog().Stale("synthetic", "c0") {
		t.Fatal("stats not stale after table replacement")
	}
	if _, err := c.Scan("synthetic", "c0", io.Discard); err != nil {
		t.Fatalf("rescan: %v", err)
	}
	if srv.Catalog().Stale("synthetic", "c0") {
		t.Fatal("served scan did not freshen the replaced table's stats")
	}
	st2, err := c.Stats("synthetic", "c0")
	if err != nil {
		t.Fatalf("stats after rescan: %v", err)
	}
	if st2.Version != 1 || st2.RowCount != 150 {
		t.Fatalf("refreshed stats: version=%d rows=%d, want 1/150", st2.Version, st2.RowCount)
	}
}

// TestShardedSidePathEqualsSerial pins the merge-correctness property at
// the serving layer: with the side path explicitly fanned out across four
// lanes (more than this host may have cores), concurrent served scans must
// install exactly the histogram the serial in-process DataPath computes,
// and the metrics must report the shard configuration and the fan-in merge
// work.
func TestShardedSidePathEqualsSerial(t *testing.T) {
	base := runtime.NumGoroutine()
	rel := testRelation(4000)

	srv := server.New(server.Config{DrainWorkers: 8, ShardLanes: 4})
	if err := srv.Register(rel); err != nil {
		t.Fatalf("register: %v", err)
	}
	addr, shutdown := startServer(t, srv)

	const n = 5
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sum, err := c.Scan("synthetic", "c2", io.Discard)
			if err != nil {
				errs <- err
				return
			}
			if sum.Rows != uint64(rel.NumRows()) {
				errs <- errors.New("sharded side path binned the wrong number of rows")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	dp, err := stream.NewDataPath(rel, "c2", stream.GigabitEthernet)
	if err != nil {
		t.Fatalf("data path: %v", err)
	}
	ref, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatalf("data path scan: %v", err)
	}
	cs := srv.Catalog().Get("synthetic", "c2")
	if cs == nil || !cs.Histogram.Equal(ref.Results.Compressed) {
		t.Fatal("sharded catalog histogram does not equal the serial data-path histogram")
	}

	m := srv.Metrics()
	if m.ShardLanes != 4 {
		t.Fatalf("ShardLanes = %d, want 4", m.ShardLanes)
	}
	// Every refreshed scan merges ShardLanes-1 lane states.
	if want := m.HistogramsRefreshed * 3; m.LaneMerges != want {
		t.Fatalf("LaneMerges = %d, want %d (refreshed=%d)", m.LaneMerges, want, m.HistogramsRefreshed)
	}
	if m.HistogramsRefreshed == 0 || m.AccelCycles <= 0 {
		t.Fatalf("no sharded refresh accounted: %+v", m)
	}

	if err := shutdown(); err != server.ErrServerClosed {
		t.Fatalf("shutdown: %v", err)
	}
	wantLeakFree(t, base)
}

// TestShardLanesOneMatchesMultiLane checks the lane count is functionally
// invisible: one lane and many lanes must install identical statistics for
// the same relation.
func TestShardLanesOneMatchesMultiLane(t *testing.T) {
	rel := testRelation(3000)
	install := func(lanes int) *server.Server {
		srv := server.New(server.Config{ShardLanes: lanes})
		if err := srv.Register(rel); err != nil {
			t.Fatalf("register: %v", err)
		}
		addr, shutdown := startServer(t, srv)
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		if _, err := c.Scan("synthetic", "c3", io.Discard); err != nil {
			t.Fatalf("scan: %v", err)
		}
		c.Close()
		if err := shutdown(); err != server.ErrServerClosed {
			t.Fatalf("shutdown: %v", err)
		}
		return srv
	}
	one := install(1).Catalog().Get("synthetic", "c3")
	eight := install(8).Catalog().Get("synthetic", "c3")
	if one == nil || eight == nil {
		t.Fatal("missing catalog entries")
	}
	if !one.Histogram.Equal(eight.Histogram) {
		t.Fatal("1-lane and 8-lane scans installed different histograms")
	}
	if one.NDistinct != eight.NDistinct || one.RowCount != eight.RowCount {
		t.Fatal("1-lane and 8-lane scans installed different metadata")
	}
}
