package server_test

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"streamhist/internal/faults"
	"streamhist/internal/obs"
	"streamhist/internal/server"
)

// A clean traced scan assembles into one tree: the client's root span holds
// everything, the server's synthesized "serve" root parents under it, and
// every span's parent resolves inside the tree.
func TestTracedScanAssembly(t *testing.T) {
	const rows = 2000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	c.EnableTracing()
	var got bytes.Buffer
	if _, err := c.Scan("synthetic", "c1", &got); err != nil {
		t.Fatalf("traced scan: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("tracing changed the delivered bytes")
	}

	traceID := c.LastTraceID()
	if traceID == 0 {
		t.Fatal("traced scan originated no trace id")
	}
	// The trailer frame is written fire-and-forget after the summary; give
	// the serving goroutine a moment to store it.
	at := waitAssembled(t, srv.Obs().Tracer(), traceID, func(at *obs.AssembledTrace) bool {
		return at.ClientSpans > 0
	})

	if at.ServerScans != 1 {
		t.Fatalf("clean scan assembled %d server scans, want 1", at.ServerScans)
	}
	clientRoot := obs.DeriveSpanID(traceID, obs.SpanSideClient, 0)
	ids := map[uint64]bool{0: true}
	var names []string
	for _, sp := range at.Spans {
		ids[sp.SpanID] = true
		names = append(names, sp.Source+"/"+sp.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"client/scan", "client/request", "client/stream", "server/serve", "server/stream"} {
		if !strings.Contains(joined, want) {
			t.Errorf("assembled trace lacks %q: %s", want, joined)
		}
	}
	for _, sp := range at.Spans {
		if sp.Name == "scan" && sp.Source == "client" {
			if sp.SpanID != clientRoot || sp.ParentID != 0 {
				t.Fatalf("client root %+v, want span %#x parent 0", sp, clientRoot)
			}
		}
		if sp.Name == "serve" && sp.ParentID != clientRoot {
			t.Fatalf("serve root parents under %#x, want client root %#x", sp.ParentID, clientRoot)
		}
		if !ids[sp.ParentID] {
			t.Fatalf("span %s/%s parent %#x not in the tree", sp.Source, sp.Name, sp.ParentID)
		}
	}
}

// A traced scan interrupted by connection resets stays ONE trace: every
// redialled server attempt continues the same trace ID as its own serve
// block, and the client's redial/backoff spans appear in the tree.
func TestTracedScanRedialAssembly(t *testing.T) {
	const rows = 5000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{
		Faults:        faults.New(5, faults.Profile{faults.ConnReset: 0.25}),
		PagesPerFrame: 2,
	})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	c.EnableTracing()
	var got bytes.Buffer
	sum, err := c.Scan("synthetic", "c1", &got)
	if err != nil {
		t.Fatalf("traced scan under resets: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("delivered bytes differ from storage after traced resumptions")
	}
	if sum.Retries == 0 {
		t.Fatal("a 25% per-frame reset rate caused no retries")
	}

	traceID := c.LastTraceID()
	at := waitAssembled(t, srv.Obs().Tracer(), traceID, func(at *obs.AssembledTrace) bool {
		return at.ClientSpans > 0
	})
	if at.ServerScans < 2 {
		t.Fatalf("redialled trace assembled %d server scans, want >= 2", at.ServerScans)
	}
	var sawRedial, sawBackoff bool
	serveIDs := map[uint64]bool{}
	for _, sp := range at.Spans {
		switch {
		case sp.Source == "client" && sp.Name == "redial":
			sawRedial = true
		case sp.Source == "client" && sp.Name == "backoff":
			sawBackoff = true
		case sp.Name == "serve":
			serveIDs[sp.SpanID] = true
		}
	}
	if !sawRedial || !sawBackoff {
		t.Fatalf("client spans lack redial/backoff (redial=%v backoff=%v)", sawRedial, sawBackoff)
	}
	// Each attempt's serve root must be distinct — the side salt folds the
	// server's local scan id in precisely so redials don't collide.
	if len(serveIDs) != at.ServerScans {
		t.Fatalf("%d distinct serve roots for %d server scans", len(serveIDs), at.ServerScans)
	}
	// The whole thing exports as Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := obs.WriteTraceEvents(&buf, at); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
		t.Fatal("trace export lacks traceEvents")
	}
}

// waitAssembled polls the tracer until the trace assembles with the client
// trailer folded in (it arrives after the scan summary, asynchronously from
// the test's point of view).
func waitAssembled(t *testing.T, tr *obs.Tracer, traceID uint64, ready func(*obs.AssembledTrace) bool) *obs.AssembledTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if at := tr.Assemble(traceID); at != nil && ready(at) {
			return at
		}
		if time.Now().After(deadline) {
			at := tr.Assemble(traceID)
			t.Fatalf("trace %016x did not assemble in time: %+v", traceID, at)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The FrameTraceInfo handshake is strictly opt-in: an untraced request's
// reply stream must be byte-compatible with a pre-tracing server (no trace
// frames at all), while a traced request's very first reply frame is the
// trace info.
func TestTraceInfoFrameOnlyForTracedRequests(t *testing.T) {
	srv := server.New(server.Config{})
	if err := srv.Register(testRelation(200)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scanFrames := func(req server.ScanRequest) []server.Frame {
		sc, cc := net.Pipe()
		go srv.ServeConn(sc)
		defer cc.Close()
		var buf bytes.Buffer
		if err := server.WriteFrame(&buf, server.FrameScan, server.EncodeScanRequest(req)); err != nil {
			t.Fatal(err)
		}
		if _, err := cc.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		var frames []server.Frame
		for {
			cc.SetReadDeadline(time.Now().Add(5 * time.Second))
			f, err := server.ReadFrame(cc)
			if err != nil {
				t.Fatalf("reading scan frames: %v", err)
			}
			frames = append(frames, f)
			if f.Type == server.FrameScanEnd || f.Type == server.FrameError {
				return frames
			}
		}
	}

	legacy := scanFrames(server.ScanRequest{Table: "synthetic", Column: "c1"})
	for _, f := range legacy {
		if f.Type == server.FrameTraceInfo {
			t.Fatal("untraced scan received a FrameTraceInfo")
		}
	}

	traced := scanFrames(server.ScanRequest{Table: "synthetic", Column: "c1", TraceID: 0xbeef, ParentSpanID: 0x11})
	if traced[0].Type != server.FrameTraceInfo {
		t.Fatalf("traced scan's first frame is type %d, want FrameTraceInfo", traced[0].Type)
	}
	ti, err := server.DecodeTraceInfo(traced[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ti.TraceID != 0xbeef || ti.RootSpanID == 0 {
		t.Fatalf("trace info = %+v, want echo of trace 0xbeef with a root span", ti)
	}
}

// A malformed trailer is dropped without a reply — replying would desync
// the one-way frame — and without killing the connection: the next request
// on the same conn is served normally, and the drop is counted.
func TestMalformedTraceReportDroppedWithoutReply(t *testing.T) {
	srv := server.New(server.Config{})
	if err := srv.Register(testRelation(100)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sc, cc := net.Pipe()
	go srv.ServeConn(sc)
	defer cc.Close()

	var buf bytes.Buffer
	if err := server.WriteFrame(&buf, server.FrameTraceReport, []byte("not a trace report")); err != nil {
		t.Fatal(err)
	}
	if err := server.WriteFrame(&buf, server.FrameList, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	cc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := server.ReadFrame(cc)
	if err != nil {
		t.Fatalf("reading reply after bad trailer: %v", err)
	}
	// The first — only — reply must answer the LIST, proving the bad
	// trailer got no response of its own.
	if f.Type != server.FrameTables {
		t.Fatalf("reply type %d, want FrameTables", f.Type)
	}

	var expo bytes.Buffer
	if err := srv.Obs().Registry().WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(expo.Bytes(), []byte("streamhist_server_trace_reports_bad_total 1")) {
		t.Fatal("dropped trailer not counted in streamhist_server_trace_reports_bad_total")
	}

	// A well-formed trailer on the same conn is accepted and stored.
	buf.Reset()
	rep := server.EncodeTraceReport(server.TraceReport{
		TraceID: 0x42,
		Spans:   []obs.Span{{Name: "scan", Lane: -1, StartNS: 1, DurNS: 2, SpanID: 3}},
	})
	if err := server.WriteFrame(&buf, server.FrameTraceReport, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Obs().Tracer().Reported(0x42)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("well-formed trailer never stored")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Tracing must not perturb the data path: the same relation scanned with
// and without tracing delivers identical bytes and an identical summary
// shape (the side effect is statistics, not payload).
func TestTracedAndUntracedScansDeliverIdenticalBytes(t *testing.T) {
	const rows = 1000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, tracing := range []bool{false, true} {
		c := pipeClient(srv)
		if tracing {
			c.EnableTracing()
		}
		var got bytes.Buffer
		sum, err := c.Scan("synthetic", "c1", &got)
		if err != nil {
			t.Fatalf("tracing=%v: %v", tracing, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("tracing=%v delivered different bytes", tracing)
		}
		if sum.Pages == 0 || sum.Bytes == 0 {
			t.Fatalf("tracing=%v summary %+v", tracing, sum)
		}
		c.Close()
	}
}
