package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hammers the wire decoder the way FuzzHistogramUnmarshal
// hammers the catalog decoder: arbitrary bytes must decode-or-error without
// panicking and without ballooning allocations, and every frame that
// decodes must re-encode identically. Decoded payloads are then pushed
// through every request/response payload parser, which must be equally
// panic-free on attacker-controlled bytes.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, FrameScan, EncodeScanRequest(ScanRequest{Table: "lineitem", Column: "l_tax"})))
	f.Add(AppendFrame(nil, FrameScanEnd, EncodeScanSummary(ScanSummary{Pages: 2, Bytes: 16384, Rows: 99, Refreshed: true})))
	f.Add(AppendFrame(nil, FrameStatsResult, EncodeStatsResult(StatsResult{RowCount: 5, Histogram: []byte{1, 2}})))
	f.Add(AppendFrame(nil, FrameTables, EncodeTableList([]TableInfo{{Name: "t", Rows: 3, Columns: []string{"a"}}})))
	f.Add(AppendFrame(nil, FrameError, EncodeError(ErrNoStats)))
	f.Add([]byte{})
	f.Add([]byte{0x46, 0x48})
	good := AppendFrame(nil, FramePages, bytes.Repeat([]byte{7}, 64))
	f.Add(good)
	f.Add(good[:len(good)-5])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < FrameHeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Re-encoding must reproduce the consumed bytes exactly.
		back := AppendFrame(nil, fr.Type, fr.Payload)
		if !bytes.Equal(back, data[:n]) {
			t.Fatalf("frame did not round trip: % x -> % x", data[:n], back)
		}
		// Payload parsers must be total: decode-or-error, never panic.
		if _, err := DecodeScanRequest(fr.Payload); err == nil {
			// A valid request must re-encode through the same bytes.
			req, _ := DecodeScanRequest(fr.Payload)
			if !bytes.Equal(EncodeScanRequest(req), fr.Payload) {
				t.Fatalf("scan request did not round trip")
			}
		}
		if sum, err := DecodeScanSummary(fr.Payload); err == nil {
			if !bytes.Equal(EncodeScanSummary(sum), fr.Payload) {
				// NaN payloads re-encode to different bit patterns only if
				// the float bits changed, which Float64bits never does.
				t.Fatalf("scan summary did not round trip")
			}
		}
		if res, err := DecodeStatsResult(fr.Payload); err == nil {
			if !bytes.Equal(EncodeStatsResult(res), fr.Payload) {
				t.Fatalf("stats result did not round trip")
			}
		}
		if tables, err := DecodeTableList(fr.Payload); err == nil {
			if !bytes.Equal(EncodeTableList(tables), fr.Payload) {
				t.Fatalf("table list did not round trip")
			}
		}
		DecodeError(fr.Payload)
	})
}
