package server

import (
	"bytes"
	"encoding/binary"
	"testing"

	"streamhist/internal/obs"
)

// canonicalScanRequest reports whether a scan-request payload is in the
// form EncodeScanRequest itself produces. Decodable but non-canonical
// layouts exist — an offset-only tail carrying offset 0, a trace tail with
// trace ID 0, and a future-version trace tail (served untraced) — and all
// of them legitimately re-encode shorter, so byte identity is only asserted
// for canonical input.
func canonicalScanRequest(buf []byte) bool {
	if len(buf) < 4 {
		return true
	}
	tl := int(binary.LittleEndian.Uint16(buf[0:2]))
	if 4+tl > len(buf) {
		return true
	}
	cl := int(binary.LittleEndian.Uint16(buf[2+tl : 4+tl]))
	tail := buf[4+tl+cl:]
	switch len(tail) {
	case 4:
		return binary.LittleEndian.Uint32(tail) != 0
	case 4 + traceContextSize:
		return tail[4] == traceContextVersion && binary.LittleEndian.Uint64(tail[5:13]) != 0
	}
	return true
}

// FuzzDecodeFrame hammers the wire decoder the way FuzzHistogramUnmarshal
// hammers the catalog decoder: arbitrary bytes must decode-or-error without
// panicking and without ballooning allocations, and every frame that
// decodes must re-encode identically. Decoded payloads are then pushed
// through every request/response payload parser, which must be equally
// panic-free on attacker-controlled bytes.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, FrameScan, EncodeScanRequest(ScanRequest{Table: "lineitem", Column: "l_tax"})))
	f.Add(AppendFrame(nil, FrameScan, EncodeScanRequest(ScanRequest{
		Table: "lineitem", Column: "l_tax", Offset: 96,
		TraceID: 0xdeadbeefcafef00d, ParentSpanID: 0x0123456789abcdef,
	})))
	f.Add(AppendFrame(nil, FrameTraceInfo, EncodeTraceInfo(TraceInfo{TraceID: 7, RootSpanID: 9})))
	f.Add(AppendFrame(nil, FrameTraceReport, EncodeTraceReport(TraceReport{
		TraceID: 3,
		Spans: []obs.Span{
			{Name: "scan", Lane: -1, StartNS: 10, DurNS: 20, SpanID: 4, ParentID: 0},
			{Name: "lane", Lane: 2, StartNS: 12, DurNS: 5, HWCycles: 33, SpanID: 5, ParentID: 4, Retired: true},
		},
	})))
	f.Add(AppendFrame(nil, FrameScanEnd, EncodeScanSummary(ScanSummary{Pages: 2, Bytes: 16384, Rows: 99, Refreshed: true})))
	f.Add(AppendFrame(nil, FrameStatsResult, EncodeStatsResult(StatsResult{RowCount: 5, Histogram: []byte{1, 2}})))
	f.Add(AppendFrame(nil, FrameTables, EncodeTableList([]TableInfo{{Name: "t", Rows: 3, Columns: []string{"a"}}})))
	f.Add(AppendFrame(nil, FrameError, EncodeError(ErrNoStats)))
	f.Add([]byte{})
	f.Add([]byte{0x46, 0x48})
	good := AppendFrame(nil, FramePages, bytes.Repeat([]byte{7}, 64))
	f.Add(good)
	f.Add(good[:len(good)-5])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < FrameHeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Re-encoding must reproduce the consumed bytes exactly.
		back := AppendFrame(nil, fr.Type, fr.Payload)
		if !bytes.Equal(back, data[:n]) {
			t.Fatalf("frame did not round trip: % x -> % x", data[:n], back)
		}
		// Payload parsers must be total: decode-or-error, never panic.
		if req, err := DecodeScanRequest(fr.Payload); err == nil {
			// A valid request must survive re-encode + re-decode, and — when
			// the input is in the canonical layout the encoder itself emits —
			// must re-encode through the same bytes.
			enc := EncodeScanRequest(req)
			if req2, err2 := DecodeScanRequest(enc); err2 != nil || req2 != req {
				t.Fatalf("scan request did not round trip: %+v vs %+v (%v)", req, req2, err2)
			}
			if canonicalScanRequest(fr.Payload) && !bytes.Equal(enc, fr.Payload) {
				t.Fatalf("scan request bytes did not round trip")
			}
		}
		if sum, err := DecodeScanSummary(fr.Payload); err == nil {
			// Legacy v1-size summaries decode with zeroed extended fields but
			// always re-encode in the v2 layout, so byte identity only holds
			// for v2-size input; the semantic round trip must hold for both.
			// (Compare re-encodings, not structs: NaN AccelSeconds would fail
			// != even though Float64bits preserves the exact bit pattern.)
			enc := EncodeScanSummary(sum)
			if sum2, err2 := DecodeScanSummary(enc); err2 != nil || !bytes.Equal(EncodeScanSummary(sum2), enc) {
				t.Fatalf("scan summary did not round trip: %+v vs %+v (%v)", sum, sum2, err2)
			}
			if len(fr.Payload) == scanSummaryV2Size && !bytes.Equal(enc, fr.Payload) {
				// NaN payloads re-encode to different bit patterns only if
				// the float bits changed, which Float64bits never does.
				t.Fatalf("scan summary bytes did not round trip")
			}
		}
		if res, err := DecodeStatsResult(fr.Payload); err == nil {
			if !bytes.Equal(EncodeStatsResult(res), fr.Payload) {
				t.Fatalf("stats result did not round trip")
			}
		}
		if tables, err := DecodeTableList(fr.Payload); err == nil {
			if !bytes.Equal(EncodeTableList(tables), fr.Payload) {
				t.Fatalf("table list did not round trip")
			}
		}
		// Trace payloads are version-tolerant (any version ≥ 1 decodes), but
		// re-encoding always stamps v1 — byte identity only holds for v1 input.
		if ti, err := DecodeTraceInfo(fr.Payload); err == nil && fr.Payload[0] == traceContextVersion {
			if !bytes.Equal(EncodeTraceInfo(ti), fr.Payload) {
				t.Fatalf("trace info did not round trip")
			}
		}
		if rep, err := DecodeTraceReport(fr.Payload); err == nil && fr.Payload[0] == traceContextVersion {
			if !bytes.Equal(EncodeTraceReport(rep), fr.Payload) {
				t.Fatalf("trace report did not round trip")
			}
		}
		DecodeError(fr.Payload)
	})
}
