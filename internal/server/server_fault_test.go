package server_test

import (
	"bytes"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"streamhist/internal/client"
	"streamhist/internal/faults"
	"streamhist/internal/page"
	"streamhist/internal/server"
	"streamhist/internal/stream"
)

// pipeClient wires a client to srv over an in-process pipe with redial
// support: every reconnect spins a fresh ServeConn, exactly like redialling
// a listening server.
func pipeClient(srv *server.Server) *client.Client {
	dial := func() (net.Conn, error) {
		sc, cc := net.Pipe()
		go srv.ServeConn(sc)
		return cc, nil
	}
	conn, _ := dial()
	c := client.New(conn)
	c.SetRedial(dial)
	c.SetRetryPolicy(32, time.Millisecond)
	return c
}

// storageBytes is the authoritative page stream for the relation.
func storageBytes(t *testing.T, rows int) []byte {
	t.Helper()
	want, err := io.ReadAll(stream.NewPagesReader(testRelation(rows)))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// Injected in-flight corruption: the client must never sink a damaged page.
// With resume enabled the scan still completes, the delivered bytes are
// byte-identical to storage, and both sides account for the damage.
func TestScanPageCorruptionResumed(t *testing.T) {
	const rows = 5000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{
		Faults:        faults.New(3, faults.Profile{faults.PageCorrupt: 0.2}),
		PagesPerFrame: 4,
	})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	var got bytes.Buffer
	sum, err := c.Scan("synthetic", "c1", &got)
	if err != nil {
		t.Fatalf("scan under corruption: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("delivered bytes differ from storage under injected corruption")
	}
	if sum.Retries == 0 {
		t.Fatal("a 20% page-corruption rate caused no client retries")
	}
	if !sum.Degraded {
		t.Fatal("resumed scan's summary must be Degraded")
	}
	m := srv.Metrics()
	if m.RetriesServed == 0 {
		t.Fatalf("server served %d retries, want >0", m.RetriesServed)
	}
	if m.PagesQuarantined == 0 {
		t.Fatal("the side path saw corrupt pages but quarantined none")
	}
	if m.ScansDegraded == 0 {
		t.Fatal("degraded scans not counted")
	}
}

// Injected connection resets mid-scan: the client redials, resumes from the
// last verified page, and the assembled stream is exact.
func TestScanConnResetResumed(t *testing.T) {
	const rows = 5000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{
		Faults:        faults.New(5, faults.Profile{faults.ConnReset: 0.25}),
		PagesPerFrame: 2,
	})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	var got bytes.Buffer
	sum, err := c.Scan("synthetic", "c1", &got)
	if err != nil {
		t.Fatalf("scan under resets: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("delivered bytes differ from storage after resumptions")
	}
	if sum.Retries == 0 {
		t.Fatal("a 25% per-frame reset rate caused no retries")
	}
	if srv.Metrics().RetriesServed == 0 {
		t.Fatal("server counted no served retries")
	}
}

// A saturated drain pool (injected) skips the side path: the stream is
// exact and full speed, the summary says Degraded, nothing is installed.
func TestScanDrainSaturationFailsOpen(t *testing.T) {
	const rows = 1000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{
		Faults: faults.New(1, faults.Profile{faults.DrainSaturate: 1.0}),
	})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	var got bytes.Buffer
	sum, err := c.Scan("synthetic", "c1", &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("stream bytes changed under drain saturation")
	}
	if sum.Refreshed {
		t.Fatal("saturated pool cannot have refreshed a histogram")
	}
	if !sum.Degraded {
		t.Fatal("skipped side path must surface as Degraded")
	}
	m := srv.Metrics()
	if m.SideSkipped == 0 || m.ScansDegraded == 0 {
		t.Fatalf("metrics: SideSkipped=%d ScansDegraded=%d, want both >0", m.SideSkipped, m.ScansDegraded)
	}
	if _, err := c.Stats("synthetic", "c1"); err == nil {
		t.Fatal("no histogram should be installed after a skipped side path")
	}
}

// The per-scan watchdog cancels an overrunning side path while the raw
// stream completes untouched.
func TestScanWatchdogCancelsSidePath(t *testing.T) {
	const rows = 20000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{ScanDeadline: time.Nanosecond})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	var got bytes.Buffer
	sum, err := c.Scan("synthetic", "c1", &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("watchdog touched the raw stream")
	}
	if sum.Refreshed {
		t.Fatal("a 1ns deadline cannot have allowed a refresh")
	}
	if !sum.Degraded {
		t.Fatal("watchdog cancellation must surface as Degraded")
	}
}

// Lane panics and stalls inside the server's side path: the scan completes,
// the stream is exact, and the loss is reported — retired lanes with a
// Degraded histogram whose skipped count covers the missing rows.
func TestScanLaneFaultsReportedHonestly(t *testing.T) {
	const rows = 8000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{
		Faults:           faults.New(9, faults.Profile{faults.LanePanic: 0.3, faults.LaneStall: 0.2}),
		ShardLanes:       4,
		PagesPerFrame:    2,
		SideStallTimeout: 50 * time.Millisecond,
	})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	var got bytes.Buffer
	sum, err := c.Scan("synthetic", "c1", &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("stream bytes changed under lane faults")
	}
	if !sum.Degraded {
		t.Skipf("seed 9 injected no effective lane faults (retired=%d)", sum.LanesRetired)
	}
	if sum.LanesRetired == 0 {
		t.Fatal("degraded lane-fault scan retired no lanes")
	}
	if sum.Refreshed {
		st, err := c.Stats("synthetic", "c1")
		if err != nil {
			t.Fatal(err)
		}
		if !st.Histogram.Degraded {
			t.Fatal("installed histogram not marked Degraded")
		}
		if st.Histogram.Skipped == 0 {
			t.Fatal("degraded histogram reports zero skipped tuples")
		}
		if uint64(st.Histogram.Skipped) != sum.SkippedTuples {
			t.Fatalf("histogram skipped %d != summary %d", st.Histogram.Skipped, sum.SkippedTuples)
		}
	}
	if srv.Metrics().LanesRetired == 0 {
		t.Fatal("metrics counted no retired lanes")
	}
}

// Injected side-copy truncation: pages lost between the wire and the side
// path are quarantined; the wire itself is unaffected.
func TestScanTruncationQuarantinesSideCopy(t *testing.T) {
	const rows = 5000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{
		Faults:        faults.New(2, faults.Profile{faults.PageTruncate: 0.3}),
		PagesPerFrame: 2,
	})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	var got bytes.Buffer
	sum, err := c.Scan("synthetic", "c1", &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("truncation of the side copy leaked into the wire stream")
	}
	if sum.Retries != 0 {
		t.Fatalf("side-copy truncation should not force client retries, got %d", sum.Retries)
	}
	if !sum.Degraded || sum.QuarantinedPages == 0 {
		t.Fatalf("summary %+v: want Degraded with quarantined pages", sum)
	}
}

// Satellite: a slow-but-live client must not trip the write deadline. The
// deadline bounds lack of progress, not total transfer time — a reader
// draining steadily for much longer than WriteTimeout still gets its scan.
func TestSlowClientOutlivesWriteDeadline(t *testing.T) {
	const rows = 20000
	want := storageBytes(t, rows)

	srv := server.New(server.Config{WriteTimeout: 80 * time.Millisecond})
	if err := srv.Register(testRelation(rows)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sc, cc := net.Pipe()
	done := make(chan struct{})
	go func() { srv.ServeConn(sc); close(done) }()

	// Speak the protocol by hand so the read pace is ours: drain slowly and
	// steadily, taking several times WriteTimeout overall.
	req := server.EncodeScanRequest(server.ScanRequest{Table: "synthetic", Column: "c1"})
	var reqBuf bytes.Buffer
	if err := server.WriteFrame(&reqBuf, server.FrameScan, req); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Write(reqBuf.Bytes()); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var raw bytes.Buffer
	buf := make([]byte, 24<<10)
	for {
		cc.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := cc.Read(buf)
		raw.Write(buf[:n])
		if err != nil {
			t.Fatalf("slow read after %d bytes: %v", raw.Len(), err)
		}
		time.Sleep(5 * time.Millisecond) // the slowness under test
		if done := scanFinished(t, raw.Bytes(), want); done {
			break
		}
	}
	if elapsed := time.Since(start); elapsed < 160*time.Millisecond {
		t.Skipf("transfer finished in %v — too fast to exercise the deadline", elapsed)
	}
	cc.Close()
	<-done
}

// scanFinished parses the accumulated raw stream; it reports true once a
// ScanEnd frame arrives, and verifies the page bytes against storage.
func scanFinished(t *testing.T, raw, want []byte) bool {
	t.Helper()
	br := bytes.NewReader(raw)
	var pages []byte
	for {
		f, err := server.ReadFrame(br)
		if err != nil {
			return false // incomplete tail; keep reading
		}
		switch f.Type {
		case server.FramePagesCk:
			n := len(f.Payload) / (page.Size + server.PageChecksumSize)
			pages = append(pages, f.Payload[:n*page.Size]...)
		case server.FramePages:
			pages = append(pages, f.Payload...)
		case server.FrameScanEnd:
			if !bytes.Equal(pages, want) {
				t.Fatal("slow-client stream differs from storage")
			}
			return true
		case server.FrameError:
			t.Fatalf("server error frame: %v", server.DecodeError(f.Payload))
		default:
			t.Fatalf("unexpected frame type %d", f.Type)
		}
	}
}

// Negative control for the deadline: a reader that stops draining entirely
// must be cut loose about one WriteTimeout after progress stops, freeing
// the serving goroutine.
func TestDeadClientStillReaped(t *testing.T) {
	base := runtime.NumGoroutine()
	srv := server.New(server.Config{WriteTimeout: 100 * time.Millisecond})
	if err := srv.Register(testRelation(20000)); err != nil {
		t.Fatal(err)
	}

	sc, cc := net.Pipe()
	done := make(chan struct{})
	go func() { srv.ServeConn(sc); close(done) }()

	req := server.EncodeScanRequest(server.ScanRequest{Table: "synthetic", Column: "c1"})
	var reqBuf bytes.Buffer
	if err := server.WriteFrame(&reqBuf, server.FrameScan, req); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Write(reqBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Read one chunk, then go silent.
	buf := make([]byte, 4096)
	if _, err := cc.Read(buf); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not abandon a stalled reader")
	}
	cc.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wantLeakFree(t, base)
}
