package server_test

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"testing"
	"time"

	"streamhist/internal/faults"
	"streamhist/internal/hwprof"
	"streamhist/internal/server"
	"streamhist/internal/sketch"
)

// TestServedScanRefreshesSketches is the serving-side acceptance test of the
// sketch engine: a plain scan over the wire must leave NDV, heavy hitters,
// and the window in the catalog beside the histogram, and STATS must carry
// them back to the client — statistics as a side effect of data movement,
// now for sketches too.
func TestServedScanRefreshesSketches(t *testing.T) {
	rel := testRelation(5000)
	srv := server.New(server.Config{DrainWorkers: 4, ShardLanes: 4})
	if err := srv.Register(rel); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	sum, err := c.Scan("synthetic", "c1", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Refreshed {
		t.Fatal("scan did not refresh statistics")
	}

	cs := srv.Catalog().Get("synthetic", "c1")
	if cs == nil || len(cs.Sketches) != 3 {
		t.Fatalf("catalog entry has %d sketch blocks, want 3", len(cs.Sketches))
	}
	hll := cs.Sketches.HLL()
	if hll == nil || hll.Items() != int64(rel.NumRows()) {
		t.Fatalf("HLL consumed %d values, want every one of %d rows", hll.Items(), rel.NumRows())
	}
	// The sketch NDV must agree with the binned view's exact count within
	// HLL's error envelope (p=12 → σ ≈ 1.6%; allow 10%).
	exact := float64(cs.NDistinct)
	if est := hll.Estimate(); math.Abs(est-exact) > 0.10*exact {
		t.Fatalf("HLL NDV %v vs exact %v: outside 10%%", est, exact)
	}
	if cs.Sketches.Heavy() == nil || cs.Sketches.Heavy().Items() != int64(rel.NumRows()) {
		t.Fatal("heavy-hitter block missing or starved")
	}
	if w := cs.Sketches.Window(); w == nil || w.Aggregate().Count == 0 {
		t.Fatal("window block missing or empty")
	}

	// The planner hook sees the sketch NDV through the catalog.
	if ndv, ok := srv.Catalog().NDVEstimate("synthetic", "c1"); !ok || ndv <= 0 {
		t.Fatalf("NDVEstimate = (%v, %v) after a served scan", ndv, ok)
	}

	// And STATS carries the same blocks over the wire, byte-identical.
	st, err := c.Stats("synthetic", "c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sketches) != 3 {
		t.Fatalf("STATS returned %d sketch blocks, want 3", len(st.Sketches))
	}
	for i, b := range st.Sketches {
		want, _ := cs.Sketches[i].MarshalBinary()
		got, _ := b.MarshalBinary()
		if !bytes.Equal(want, got) {
			t.Errorf("wire block %s not byte-identical to the catalog's", b.Name())
		}
	}
	if est, ok := st.Sketches.NDVEstimate(); !ok || math.Abs(est-exact) > 0.10*exact {
		t.Fatalf("wire NDV estimate (%v, %v) drifted from catalog", est, ok)
	}
}

// TestServerSketchDisabled: with the chain off, scans still refresh
// histograms, the catalog holds no sketches, and STATS falls back to the
// legacy sketch-free payload.
func TestServerSketchDisabled(t *testing.T) {
	srv := server.New(server.Config{SketchDisabled: true})
	if err := srv.Register(testRelation(2000)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	sum, err := c.Scan("synthetic", "c1", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Refreshed {
		t.Fatal("scan did not refresh")
	}
	cs := srv.Catalog().Get("synthetic", "c1")
	if cs == nil || len(cs.Sketches) != 0 {
		t.Fatalf("disabled chain left %d sketches in the catalog", len(cs.Sketches))
	}
	st, err := c.Stats("synthetic", "c1")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sketches) != 0 {
		t.Fatal("disabled chain served sketches over the wire")
	}
	if st.Histogram == nil {
		t.Fatal("histogram lost without sketches")
	}
}

// TestSketchConfigOverridesApply: a custom ChainSpec flows through Config to
// the served blocks (precision, k, and window width all observable).
func TestSketchConfigOverridesApply(t *testing.T) {
	srv := server.New(server.Config{
		Sketch: sketch.ChainSpec{NDVPrecision: 9, HeavyK: 5, WindowW: 32},
	})
	if err := srv.Register(testRelation(2000)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	if _, err := c.Scan("synthetic", "c1", io.Discard); err != nil {
		t.Fatal(err)
	}
	cs := srv.Catalog().Get("synthetic", "c1")
	if got := cs.Sketches.HLL().Precision(); got != 9 {
		t.Errorf("precision %d, want 9", got)
	}
	if got := cs.Sketches.Heavy().Capacity(); got != 5 {
		t.Errorf("heavy capacity %d, want 5", got)
	}
	if got := cs.Sketches.Window().W(); got != 32 {
		t.Errorf("window width %d, want 32", got)
	}
}

// TestHwprofConsistencyWithSketches: the sketch chain charges its cycles
// into the merged frame, so the end-to-end attribution invariant — the
// consistency gauge at 1, attributed == live profiler — must hold with the
// chain on, and the profile must contain sketch-reason nodes whose total is
// exactly items × cycles-per-value per block.
func TestHwprofConsistencyWithSketches(t *testing.T) {
	rel := testRelation(4000)
	srv := server.New(server.Config{DrainWorkers: 4, ShardLanes: 4, PagesPerFrame: 1})
	if err := srv.Register(rel); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := pipeClient(srv)
	defer c.Close()
	sum, err := c.Scan("synthetic", "c2", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Refreshed {
		t.Fatal("scan did not refresh")
	}

	expo := scrapeMetrics(t, srv)
	if v := expoValue(t, expo, "streamhist_hwprof_consistency"); v != 1 {
		t.Fatalf("streamhist_hwprof_consistency = %v with sketches on, want 1", v)
	}
	attributed := expoValue(t, expo, "streamhist_hwprof_attributed_cycles_total")
	if got := srv.Obs().Profiler().TotalCycles(); float64(got) != attributed {
		t.Fatalf("live profiler %d != attributed %v", got, attributed)
	}

	prof := srv.Obs().Profiler().Snapshot()
	var sketchCycles, sketchEvents int64
	for _, s := range prof.Samples {
		if len(s.Stack) == 4 && s.Stack[3] == hwprof.ReasonSketch {
			sketchCycles += s.Cycles
			sketchEvents += s.Events
		}
	}
	rows := int64(rel.NumRows())
	wantCycles := rows * (sketch.DefaultHLLCyclesPerValue +
		sketch.DefaultHeavyCyclesPerValue + sketch.DefaultWindowCyclesPerValue)
	if sketchCycles != wantCycles {
		t.Fatalf("sketch-reason cycles %d != rows×Σcpv %d", sketchCycles, wantCycles)
	}
	if sketchEvents != 3*rows {
		t.Fatalf("sketch events %d != 3 blocks × %d rows", sketchEvents, rows)
	}

	// The per-block gauges are published.
	for _, name := range []string{"hll", "spacesaving", "window"} {
		if v := expoValue(t, expo, fmt.Sprintf("streamhist_sketch_items{block=%q}", name)); v != float64(rows) {
			t.Errorf("streamhist_sketch_items{block=%q} = %v, want %d", name, v, rows)
		}
	}
	if v := expoValue(t, expo, "streamhist_sketch_ndv_estimate"); v <= 0 {
		t.Errorf("streamhist_sketch_ndv_estimate = %v, want > 0", v)
	}
}

// TestChaosSketchSurvivesLaneRetirement extends the chaos matrix to the
// sketch engine under the lane-failure-heavy profile (which injects lane
// panics and stalls but no sketch faults): whenever a scan comes back clean
// — every retirement masked by replay — the order-insensitive blocks (HLL)
// and the position-keyed window must be byte-identical to a fault-free run's,
// and the heavy-hitter summary must keep its accounting (items == rows,
// ≤ k counters). Degraded scans must flag every sketch Degraded.
func TestChaosSketchSurvivesLaneRetirement(t *testing.T) {
	const rows = 3000
	rel := testRelation(rows)

	// Fault-free reference blocks.
	ref := func() sketch.Blocks {
		srv := server.New(server.Config{ShardLanes: 4})
		if err := srv.Register(testRelation(rows)); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c := pipeClient(srv)
		defer c.Close()
		if _, err := c.Scan("synthetic", "c1", io.Discard); err != nil {
			t.Fatal(err)
		}
		return srv.Catalog().Get("synthetic", "c1").Sketches
	}()
	refHLL, _ := ref.HLL().MarshalBinary()
	refWin, _ := ref.Window().MarshalBinary()

	profile, err := faults.ByName(faults.ProfileLaneFailureHeavy)
	if err != nil {
		t.Fatal(err)
	}
	cleanRuns, retiredRuns := 0, 0
	for seed := uint64(0); seed < 12; seed++ {
		srv := server.New(server.Config{
			Faults:           faults.New(seed, profile),
			ShardLanes:       4,
			PagesPerFrame:    2,
			SideStallTimeout: 50 * time.Millisecond,
		})
		if err := srv.Register(rel); err != nil {
			t.Fatal(err)
		}
		c := pipeClient(srv)
		sum, err := c.Scan("synthetic", "c1", io.Discard)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if srv.Metrics().LanesRetired > 0 {
			retiredRuns++
		}
		cs := srv.Catalog().Get("synthetic", "c1")
		switch {
		case sum.Refreshed && !sum.Degraded:
			cleanRuns++
			if cs == nil || len(cs.Sketches) != 3 {
				t.Fatalf("seed %d: clean scan installed %d sketch blocks", seed, len(cs.Sketches))
			}
			gotHLL, _ := cs.Sketches.HLL().MarshalBinary()
			gotWin, _ := cs.Sketches.Window().MarshalBinary()
			if !bytes.Equal(gotHLL, refHLL) {
				t.Fatalf("seed %d: HLL drifted from fault-free run despite clean summary", seed)
			}
			if !bytes.Equal(gotWin, refWin) {
				t.Fatalf("seed %d: window drifted from fault-free run despite clean summary", seed)
			}
			ss := cs.Sketches.Heavy()
			if ss.Items() != rows {
				t.Fatalf("seed %d: heavy hitters consumed %d of %d rows", seed, ss.Items(), rows)
			}
			if n := len(ss.Top(0)); n > ss.Capacity() {
				t.Fatalf("seed %d: %d counters exceed capacity %d", seed, n, ss.Capacity())
			}
		case sum.Degraded && cs != nil:
			for _, b := range cs.Sketches {
				if !b.Degraded() {
					t.Fatalf("seed %d: degraded scan installed an unflagged %s sketch", seed, b.Name())
				}
			}
		}
		c.Close()
		if err := srv.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
	if cleanRuns == 0 {
		t.Skip("no clean run in the sweep; degradation honesty checked, identity untested")
	}
	if retiredRuns == 0 {
		t.Fatal("lane-failure-heavy never retired a lane — the test exercised nothing")
	}
}

// TestChaosSketchFaultPointsDegradeFailOpen: the corruption-heavy profile
// includes the sketch fault points; across seeds at least one block must
// come out Degraded, and a degraded sketch must never fail the scan or the
// STATS call — fail open, never fail the data path.
func TestChaosSketchFaultPointsDegradeFailOpen(t *testing.T) {
	profile, err := faults.ByName(faults.ProfileCorruptionHeavy)
	if err != nil {
		t.Fatal(err)
	}
	sawDegradedBlock := false
	for seed := uint64(0); seed < 10; seed++ {
		srv := server.New(server.Config{
			Faults:        faults.New(seed, profile),
			ShardLanes:    4,
			PagesPerFrame: 1,
		})
		if err := srv.Register(testRelation(3000)); err != nil {
			t.Fatal(err)
		}
		c := pipeClient(srv)
		if _, err := c.Scan("synthetic", "c1", io.Discard); err != nil {
			t.Fatalf("seed %d: scan failed outright: %v", seed, err)
		}
		if cs := srv.Catalog().Get("synthetic", "c1"); cs != nil {
			for _, b := range cs.Sketches {
				if b.Degraded() {
					sawDegradedBlock = true
				}
			}
			// A STATS call must serve whatever is there, degraded or not.
			if _, err := c.Stats("synthetic", "c1"); err != nil {
				t.Fatalf("seed %d: STATS failed with sketches in catalog: %v", seed, err)
			}
		}
		c.Close()
		if err := srv.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
	if !sawDegradedBlock {
		t.Fatal("corruption-heavy chaos never degraded a sketch block across 10 seeds")
	}
}
