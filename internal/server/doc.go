// Package server turns the library's in-process data path into a network
// service: histserved, a TCP scan server that computes histograms as a side
// effect of serving pages.
//
// The subsystem is Figure 9 of the paper stretched over a real wire. The
// roles map one to one:
//
//   - Storage is the registered relation's encoded page images
//     (internal/page), exposed as one byte stream by stream.PagesReader —
//     the same bytes the in-process DataPath reads.
//   - The Splitter is the scan loop: every FramePages payload written to
//     the client is also copied into a fixed-depth side channel. The relay
//     path does no transformation — the client receives storage's bytes,
//     byte for byte.
//   - The statistical circuit is the drain worker behind the channel: the
//     Parser FSM extracts the requested column from the copied page bytes
//     and the cycle-accounted Binner bin-sorts it (internal/core), exactly
//     as stream.Tap does in-process.
//   - The host is the client (internal/client): it consumes raw pages with
//     only framing added, and can fetch the by-product — the freshest
//     hist.Histogram — with a STATS request answered straight from the
//     dbms.Catalog the server refreshes on every served scan.
//
// Concurrency model. Each connection gets a goroutine running a
// request/response loop with idle and write deadlines. Each scan's side
// path takes a slot from a bounded drain-worker pool; within a scan, the
// fixed-depth channel applies backpressure so memory stays bounded while
// the refreshed histogram stays complete. When the pool is saturated the
// scan fails open — pages stream at full speed and only the statistics
// refresh is skipped — preserving the paper's §4 invariant that the
// accelerator must never slow the regular flow of data. Graceful shutdown
// closes listeners, lets in-flight requests finish, and reaps idle
// connections.
package server
