package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"streamhist/internal/obs"
)

// The wire protocol of histserved. Everything that crosses the connection is
// a frame: an 8-byte header followed by a payload.
//
// Frame header (little-endian):
//
//	[0:2]  magic 0x4846 ("HF")
//	[2]    frame type
//	[3]    reserved, must be zero
//	[4:8]  payload length
//
// Requests (client → server) name a table and optionally a column as
// length-prefixed strings. Scan responses are a sequence of FramePages
// frames — each payload is a whole number of raw 8 KiB page images, exactly
// the bytes storage holds — terminated by a FrameScanEnd summary. The page
// payloads are deliberately transparent: the serving path relays storage
// bytes unchanged, the way the paper's splitter does, and every statistic is
// computed from a copy on the side.

// FrameMagic identifies a protocol frame.
const FrameMagic uint16 = 0x4846

// FrameHeaderSize is the fixed size of a frame header in bytes.
const FrameHeaderSize = 8

// MaxPayload bounds a frame payload; larger lengths are rejected before any
// allocation, so a corrupt or hostile header cannot balloon memory.
const MaxPayload = 1 << 20

// maxNameLen bounds table/column identifiers on the wire.
const maxNameLen = 256

// maxListEntries bounds repeated sections in list-shaped payloads.
const maxListEntries = 4096

// Frame types. Requests are low numbers, responses high.
const (
	// FrameScan requests a table scan: payload is a ScanRequest.
	FrameScan uint8 = 1
	// FrameStats requests a column's catalog entry: payload is a ScanRequest.
	FrameStats uint8 = 2
	// FrameList requests the table listing: empty payload.
	FrameList uint8 = 3
	// FrameTraceReport is the client's span trailer: after a traced scan
	// completes, the client ships the spans it recorded (dial, request,
	// stream, backoff…) back to the server so /traces can assemble the whole
	// tree. It is strictly fail-open and strictly one-way: the server NEVER
	// replies to it — not even with FrameError on a malformed payload —
	// because the client does not read a response, and any reply would be
	// consumed as the answer to the client's next request, desynchronising
	// the stream. A client only sends it after seeing FrameTraceInfo on the
	// same scan, so a legacy server is never handed an unknown frame.
	FrameTraceReport uint8 = 4

	// FramePages carries raw page images (a whole number of pages).
	FramePages uint8 = 16
	// FrameScanEnd terminates a scan: payload is a ScanSummary.
	FrameScanEnd uint8 = 17
	// FrameStatsResult answers FrameStats: payload is a StatsResult.
	FrameStatsResult uint8 = 18
	// FrameTables answers FrameList: payload is a table list.
	FrameTables uint8 = 19
	// FrameError reports a request failure: payload is a code and message.
	FrameError uint8 = 20
	// FramePagesCk carries raw page images followed by a checksum trailer:
	// for N pages the payload is N×8 KiB of page bytes and then N
	// little-endian uint32 CRC32C values, one per page, computed by storage
	// at encode time. The page bytes themselves are identical to what a
	// FramePages frame would carry — the trailer lets any consumer detect a
	// page corrupted in flight without changing the data layout.
	FramePagesCk uint8 = 21
	// FrameResumeInfo opens a resumed scan's response (Offset > 0): the
	// payload is one little-endian uint32, the page index the server will
	// actually stream from. The server aligns every resume down to a frame
	// boundary so the page frames it re-sends are byte-identical to the
	// original delivery; the client skips the pages it already holds. A
	// zero-offset scan never carries this frame, so pre-resume peers
	// interoperate unchanged.
	FrameResumeInfo uint8 = 22
	// FrameTraceInfo opens a traced scan's response: sent first, before any
	// resume info or pages, if and only if the request carried valid trace
	// context. Its payload echoes the trace ID and announces the server's
	// root span ID. Its presence is the capability handshake: only after
	// seeing it may the client send the FrameTraceReport trailer, so both
	// directions of a legacy↔tracing pairing degrade to today's byte
	// stream. An untraced request never sees this frame.
	FrameTraceInfo uint8 = 23
)

// PageChecksumSize is the per-page trailer cost of a FramePagesCk frame.
const PageChecksumSize = 4

// ErrBadFrame reports a malformed frame or payload.
var ErrBadFrame = errors.New("server: bad protocol frame")

// Sentinel request failures, carried over the wire as error codes so the
// client can round-trip them through errors.Is.
var (
	// ErrUnknownTable reports a scan/stats request for an unregistered table.
	ErrUnknownTable = errors.New("histserved: unknown table")
	// ErrUnknownColumn reports a request for a column the table lacks.
	ErrUnknownColumn = errors.New("histserved: unknown column")
	// ErrNoStats reports a STATS request before any scan refreshed the column.
	ErrNoStats = errors.New("histserved: no statistics gathered yet")
	// ErrBadRequest reports an undecodable or out-of-protocol request.
	ErrBadRequest = errors.New("histserved: bad request")
)

// Wire error codes for the sentinels above.
const (
	codeInternal      uint16 = 0
	codeUnknownTable  uint16 = 1
	codeUnknownColumn uint16 = 2
	codeNoStats       uint16 = 3
	codeBadRequest    uint16 = 4
)

// Frame is one decoded protocol frame.
type Frame struct {
	Type    uint8
	Payload []byte
}

// AppendFrame appends the encoding of one frame to dst.
func AppendFrame(dst []byte, typ uint8, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:2], FrameMagic)
	hdr[2] = typ
	hdr[3] = 0
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ uint8, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d exceeds limit %d", ErrBadFrame, len(payload), MaxPayload)
	}
	var hdr [FrameHeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:2], FrameMagic)
	hdr[2] = typ
	hdr[3] = 0
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r, rejecting oversized payloads before
// allocating. It returns io.EOF only when the stream ends cleanly between
// frames.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // clean EOF stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	f, n, err := decodeHeader(hdr[:])
	if err != nil {
		return Frame{}, err
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}

// decodeHeader validates a frame header and returns the declared payload
// length.
func decodeHeader(hdr []byte) (Frame, int, error) {
	if magic := binary.LittleEndian.Uint16(hdr[0:2]); magic != FrameMagic {
		return Frame{}, 0, fmt.Errorf("%w: bad magic %#x", ErrBadFrame, magic)
	}
	if hdr[3] != 0 {
		return Frame{}, 0, fmt.Errorf("%w: reserved byte %#x", ErrBadFrame, hdr[3])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload %d exceeds limit %d", ErrBadFrame, n, MaxPayload)
	}
	return Frame{Type: hdr[2]}, int(n), nil
}

// DecodeFrame decodes one frame from the start of buf, returning the frame
// and the number of bytes consumed. The payload aliases buf.
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < FrameHeaderSize {
		return Frame{}, 0, fmt.Errorf("%w: short header (%d bytes)", ErrBadFrame, len(buf))
	}
	f, n, err := decodeHeader(buf[:FrameHeaderSize])
	if err != nil {
		return Frame{}, 0, err
	}
	if len(buf)-FrameHeaderSize < n {
		return Frame{}, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrBadFrame, len(buf)-FrameHeaderSize, n)
	}
	f.Payload = buf[FrameHeaderSize : FrameHeaderSize+n]
	return f, FrameHeaderSize + n, nil
}

// ---- payload encodings ----

// appendString appends a u16-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// cutString consumes a u16-length-prefixed string from buf.
func cutString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, fmt.Errorf("%w: truncated string length", ErrBadFrame)
	}
	n := int(binary.LittleEndian.Uint16(buf))
	buf = buf[2:]
	if n > maxNameLen {
		return "", nil, fmt.Errorf("%w: string length %d exceeds limit %d", ErrBadFrame, n, maxNameLen)
	}
	if len(buf) < n {
		return "", nil, fmt.Errorf("%w: truncated string body", ErrBadFrame)
	}
	return string(buf[:n]), buf[n:], nil
}

// EncodeResumeInfo serialises a FrameResumeInfo payload: the frame-aligned
// page index a resumed scan streams from.
func EncodeResumeInfo(startPage uint32) []byte {
	return binary.LittleEndian.AppendUint32(nil, startPage)
}

// DecodeResumeInfo parses a FrameResumeInfo payload.
func DecodeResumeInfo(buf []byte) (uint32, error) {
	if len(buf) != 4 {
		return 0, fmt.Errorf("%w: resume info is %d bytes, want 4", ErrBadFrame, len(buf))
	}
	return binary.LittleEndian.Uint32(buf), nil
}

// ScanRequest names the relation and column of a SCAN or STATS request.
type ScanRequest struct {
	Table  string
	Column string
	// Offset is the page index to start streaming from: a client resuming
	// an interrupted scan passes the number of pages it already holds. A
	// zero offset is a full scan and encodes identically to the original
	// request layout, so old peers interoperate.
	Offset uint32
	// TraceID carries the distributed trace this scan continues; zero means
	// untraced, and an untraced request encodes byte-identically to the
	// pre-tracing layout. Non-zero adds a versioned trace-context tail.
	TraceID uint64
	// ParentSpanID is the client-side span the server's root span parents
	// under (the client's root scan span). Meaningful only with TraceID.
	ParentSpanID uint64
}

// traceContextVersion is the trace-context tail layout this build encodes.
// Decoders reject version 0 (an impossible encoding — a tracing client
// always stamps its version) and skip versions they do not know, treating
// the request as untraced: an unknown future context must never break the
// scan it rides on.
const traceContextVersion = 1

// traceContextSize is the tail's wire size: version byte + trace ID +
// parent span ID.
const traceContextSize = 1 + 8 + 8

// EncodeScanRequest serialises a request payload.
func EncodeScanRequest(req ScanRequest) []byte {
	out := make([]byte, 0, 8+traceContextSize+len(req.Table)+len(req.Column))
	out = appendString(out, req.Table)
	out = appendString(out, req.Column)
	if req.TraceID != 0 {
		// The trace-context tail always carries the offset field, even at
		// zero, so the decoder can discriminate layouts by length alone.
		out = binary.LittleEndian.AppendUint32(out, req.Offset)
		out = append(out, traceContextVersion)
		out = binary.LittleEndian.AppendUint64(out, req.TraceID)
		return binary.LittleEndian.AppendUint64(out, req.ParentSpanID)
	}
	if req.Offset > 0 {
		out = binary.LittleEndian.AppendUint32(out, req.Offset)
	}
	return out
}

// DecodeScanRequest parses a request payload. The trailing-byte count picks
// the layout: 0 is the legacy request, 4 adds the resume offset, 4+17 adds
// the versioned trace context (offset, version byte, trace ID, parent span
// ID). Anything else is malformed — the discrimination is fuzz-guarded by
// FuzzDecodeFrame.
func DecodeScanRequest(buf []byte) (ScanRequest, error) {
	table, rest, err := cutString(buf)
	if err != nil {
		return ScanRequest{}, err
	}
	column, rest, err := cutString(rest)
	if err != nil {
		return ScanRequest{}, err
	}
	req := ScanRequest{Table: table, Column: column}
	switch len(rest) {
	case 0:
	case 4:
		req.Offset = binary.LittleEndian.Uint32(rest)
	case 4 + traceContextSize:
		req.Offset = binary.LittleEndian.Uint32(rest)
		switch ver := rest[4]; {
		case ver == 0:
			return ScanRequest{}, fmt.Errorf("%w: trace context version 0", ErrBadFrame)
		case ver == traceContextVersion:
			req.TraceID = binary.LittleEndian.Uint64(rest[5:13])
			req.ParentSpanID = binary.LittleEndian.Uint64(rest[13:21])
		default:
			// A future context version this build cannot read: serve the
			// scan untraced rather than fail it.
		}
	default:
		return ScanRequest{}, fmt.Errorf("%w: %d trailing bytes in request", ErrBadFrame, len(rest))
	}
	if table == "" {
		return ScanRequest{}, fmt.Errorf("%w: empty table name", ErrBadFrame)
	}
	return req, nil
}

// TraceInfo is a FrameTraceInfo payload: the server's half of the tracing
// handshake, echoing the trace it agreed to continue and naming the root
// span its own spans will hang under.
type TraceInfo struct {
	TraceID    uint64
	RootSpanID uint64
}

// EncodeTraceInfo serialises a FrameTraceInfo payload.
func EncodeTraceInfo(ti TraceInfo) []byte {
	out := make([]byte, 0, traceContextSize)
	out = append(out, traceContextVersion)
	out = binary.LittleEndian.AppendUint64(out, ti.TraceID)
	return binary.LittleEndian.AppendUint64(out, ti.RootSpanID)
}

// DecodeTraceInfo parses a FrameTraceInfo payload. Any version ≥ 1 with the
// v1 size is accepted — the fields a v1 reader needs lead the layout.
func DecodeTraceInfo(buf []byte) (TraceInfo, error) {
	if len(buf) != traceContextSize {
		return TraceInfo{}, fmt.Errorf("%w: trace info is %d bytes, want %d", ErrBadFrame, len(buf), traceContextSize)
	}
	if buf[0] == 0 {
		return TraceInfo{}, fmt.Errorf("%w: trace info version 0", ErrBadFrame)
	}
	return TraceInfo{
		TraceID:    binary.LittleEndian.Uint64(buf[1:9]),
		RootSpanID: binary.LittleEndian.Uint64(buf[9:17]),
	}, nil
}

// TraceReport is a FrameTraceReport payload: the spans one client-side scan
// recorded, shipped back so the server can assemble the full tree.
type TraceReport struct {
	TraceID uint64
	Spans   []obs.Span
}

// traceReportSpanFixed is the fixed wire cost of one reported span beside
// its name: lane, start, duration, hw cycles, span ID, parent ID, flags.
const traceReportSpanFixed = 4 + 8 + 8 + 8 + 8 + 8 + 1

// MaxTraceReportSpans bounds the spans one trailer may carry; a client with
// more (pathological redial storms) truncates rather than overflow the
// count field or the payload limit.
const MaxTraceReportSpans = maxListEntries

// EncodeTraceReport serialises a FrameTraceReport payload.
func EncodeTraceReport(r TraceReport) []byte {
	out := make([]byte, 0, 1+8+2+len(r.Spans)*(traceReportSpanFixed+16))
	out = append(out, traceContextVersion)
	out = binary.LittleEndian.AppendUint64(out, r.TraceID)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Spans)))
	for _, sp := range r.Spans {
		out = appendString(out, sp.Name)
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(sp.Lane)))
		out = binary.LittleEndian.AppendUint64(out, uint64(sp.StartNS))
		out = binary.LittleEndian.AppendUint64(out, uint64(sp.DurNS))
		out = binary.LittleEndian.AppendUint64(out, uint64(sp.HWCycles))
		out = binary.LittleEndian.AppendUint64(out, sp.SpanID)
		out = binary.LittleEndian.AppendUint64(out, sp.ParentID)
		var flags byte
		if sp.Retired {
			flags |= 1
		}
		out = append(out, flags)
	}
	return out
}

// DecodeTraceReport parses a FrameTraceReport payload. Same hostile-input
// posture as every other decoder here: counts and name lengths are bounded
// before any allocation, trailing bytes are rejected.
func DecodeTraceReport(buf []byte) (TraceReport, error) {
	if len(buf) < 1+8+2 {
		return TraceReport{}, fmt.Errorf("%w: trace report is %d bytes, want ≥ 11", ErrBadFrame, len(buf))
	}
	if buf[0] == 0 {
		return TraceReport{}, fmt.Errorf("%w: trace report version 0", ErrBadFrame)
	}
	r := TraceReport{TraceID: binary.LittleEndian.Uint64(buf[1:9])}
	if r.TraceID == 0 {
		return TraceReport{}, fmt.Errorf("%w: trace report with zero trace id", ErrBadFrame)
	}
	n := int(binary.LittleEndian.Uint16(buf[9:11]))
	if n > maxListEntries {
		return TraceReport{}, fmt.Errorf("%w: trace report claims %d spans", ErrBadFrame, n)
	}
	rest := buf[11:]
	r.Spans = make([]obs.Span, 0, n)
	for i := 0; i < n; i++ {
		name, after, err := cutString(rest)
		if err != nil {
			return TraceReport{}, fmt.Errorf("%w: trace report span %d name", ErrBadFrame, i)
		}
		rest = after
		if len(rest) < traceReportSpanFixed {
			return TraceReport{}, fmt.Errorf("%w: trace report truncated in span %d", ErrBadFrame, i)
		}
		if rest[44]&^byte(1) != 0 {
			// Reserved flag bits must be zero in this version: rejecting them
			// keeps decode→encode byte-exact, which the fuzz harness enforces.
			return TraceReport{}, fmt.Errorf("%w: trace report span %d reserved flag bits", ErrBadFrame, i)
		}
		sp := obs.Span{
			Name:     name,
			Lane:     int(int32(binary.LittleEndian.Uint32(rest[0:4]))),
			StartNS:  int64(binary.LittleEndian.Uint64(rest[4:12])),
			DurNS:    int64(binary.LittleEndian.Uint64(rest[12:20])),
			HWCycles: int64(binary.LittleEndian.Uint64(rest[20:28])),
			SpanID:   binary.LittleEndian.Uint64(rest[28:36]),
			ParentID: binary.LittleEndian.Uint64(rest[36:44]),
			Retired:  rest[44]&1 != 0,
		}
		rest = rest[traceReportSpanFixed:]
		r.Spans = append(r.Spans, sp)
	}
	if len(rest) != 0 {
		return TraceReport{}, fmt.Errorf("%w: %d trailing bytes in trace report", ErrBadFrame, len(rest))
	}
	return r, nil
}

// ScanSummary closes a scan: what moved and what the movement bought.
type ScanSummary struct {
	// Pages and Bytes count the page images delivered to the client.
	Pages uint32
	Bytes uint64
	// Rows is the number of column values the side path binned (0 when the
	// side path was skipped or failed open).
	Rows uint64
	// Refreshed reports whether the scan installed a fresh histogram.
	Refreshed bool
	// Degraded reports that the side effect of this scan is incomplete: the
	// side path was skipped, cancelled, cut short by faults, or the
	// installed histogram undercounts. The page stream itself is unaffected
	// — degradation is strictly a statistics-quality signal. An undegraded
	// refreshed summary promises an exact histogram.
	Degraded bool
	// AccelCycles is the simulated accelerator completion time for this
	// scan (binning pipeline + histogram chain), in clock cycles.
	AccelCycles uint64
	// AccelSeconds is AccelCycles at the configured clock.
	AccelSeconds float64
	// SkippedTuples counts column values the side path could not bin
	// (quarantined pages plus bin-memory losses) when Degraded is set.
	SkippedTuples uint64
	// QuarantinedPages counts pages the side path rejected on checksum.
	QuarantinedPages uint32
	// LanesRetired counts side-path lanes the supervisor removed.
	LanesRetired uint32
	// Retries is not carried on the wire: the client fills it in with the
	// number of reconnect-and-resume rounds it needed to complete the scan.
	Retries uint32
}

// scanSummary sizes: the legacy layout and the extended one. The decoder
// accepts both so old capture files and peers keep working.
const (
	scanSummaryV1Size = 37
	scanSummaryV2Size = 53
)

// Summary flag bits (byte 20 of the encoding). The legacy layout stored a
// 0/1 refreshed boolean in the same byte, so bit 0 is backward compatible.
const (
	summaryFlagRefreshed byte = 1 << 0
	summaryFlagDegraded  byte = 1 << 1
)

// EncodeScanSummary serialises a FrameScanEnd payload.
func EncodeScanSummary(s ScanSummary) []byte {
	out := make([]byte, 0, scanSummaryV2Size)
	out = binary.LittleEndian.AppendUint32(out, s.Pages)
	out = binary.LittleEndian.AppendUint64(out, s.Bytes)
	out = binary.LittleEndian.AppendUint64(out, s.Rows)
	var flags byte
	if s.Refreshed {
		flags |= summaryFlagRefreshed
	}
	if s.Degraded {
		flags |= summaryFlagDegraded
	}
	out = append(out, flags)
	out = binary.LittleEndian.AppendUint64(out, s.AccelCycles)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(s.AccelSeconds))
	out = binary.LittleEndian.AppendUint64(out, s.SkippedTuples)
	out = binary.LittleEndian.AppendUint32(out, s.QuarantinedPages)
	return binary.LittleEndian.AppendUint32(out, s.LanesRetired)
}

// DecodeScanSummary parses a FrameScanEnd payload, legacy or extended.
func DecodeScanSummary(buf []byte) (ScanSummary, error) {
	if len(buf) != scanSummaryV1Size && len(buf) != scanSummaryV2Size {
		return ScanSummary{}, fmt.Errorf("%w: scan summary is %d bytes, want %d or %d",
			ErrBadFrame, len(buf), scanSummaryV1Size, scanSummaryV2Size)
	}
	var s ScanSummary
	s.Pages = binary.LittleEndian.Uint32(buf[0:4])
	s.Bytes = binary.LittleEndian.Uint64(buf[4:12])
	s.Rows = binary.LittleEndian.Uint64(buf[12:20])
	flags := buf[20]
	if flags&^(summaryFlagRefreshed|summaryFlagDegraded) != 0 {
		return ScanSummary{}, fmt.Errorf("%w: bad summary flags %#x", ErrBadFrame, flags)
	}
	s.Refreshed = flags&summaryFlagRefreshed != 0
	s.Degraded = flags&summaryFlagDegraded != 0
	s.AccelCycles = binary.LittleEndian.Uint64(buf[21:29])
	s.AccelSeconds = math.Float64frombits(binary.LittleEndian.Uint64(buf[29:37]))
	if len(buf) == scanSummaryV2Size {
		s.SkippedTuples = binary.LittleEndian.Uint64(buf[37:45])
		s.QuarantinedPages = binary.LittleEndian.Uint32(buf[45:49])
		s.LanesRetired = binary.LittleEndian.Uint32(buf[49:53])
	}
	return s, nil
}

// StatsResult is a STATS response: the catalog entry plus the histogram's
// own binary encoding (hist.Histogram.MarshalBinary) carried opaquely, and —
// since the sketch engine — the serialized sketch blocks the same scan
// refreshed (sketch encodings, also opaque here).
type StatsResult struct {
	RowCount  int64
	NDistinct int64
	Version   uint64
	Histogram []byte
	// Sketches carries the catalog entry's serialized statistic blocks
	// (internal/sketch encodings). Empty both for pre-sketch peers and for
	// servers running with the chain disabled.
	Sketches [][]byte
}

// statsResultV2Marker introduces the sectioned v2 layout after the fixed
// 24-byte header. It cannot collide with a legacy payload: in the v1 layout
// offset 24 is the first byte of the histogram encoding, which always starts
// with 0x53 (the low byte of hist's little-endian magic).
const statsResultV2Marker byte = 0xF2

// EncodeStatsResult serialises a FrameStatsResult payload. Without sketches
// it emits the legacy v1 layout (fixed header, histogram as the remainder),
// byte-for-byte what pre-sketch servers sent, so old clients interoperate
// whenever there is nothing new to say. With sketches it emits v2: the same
// header, the marker byte, a length-prefixed histogram, and a counted list
// of length-prefixed sketch encodings.
func EncodeStatsResult(s StatsResult) []byte {
	out := make([]byte, 0, 24+len(s.Histogram))
	out = binary.LittleEndian.AppendUint64(out, uint64(s.RowCount))
	out = binary.LittleEndian.AppendUint64(out, uint64(s.NDistinct))
	out = binary.LittleEndian.AppendUint64(out, s.Version)
	if len(s.Sketches) == 0 {
		return append(out, s.Histogram...)
	}
	out = append(out, statsResultV2Marker)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Histogram)))
	out = append(out, s.Histogram...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Sketches)))
	for _, raw := range s.Sketches {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(raw)))
		out = append(out, raw...)
	}
	return out
}

// DecodeStatsResult parses a FrameStatsResult payload, either layout. The
// histogram and sketch bytes alias buf and are not themselves validated here
// — the client decodes them with hist.Histogram.UnmarshalBinary and
// sketch.Decode, which detect corruption.
func DecodeStatsResult(buf []byte) (StatsResult, error) {
	if len(buf) < 24 {
		return StatsResult{}, fmt.Errorf("%w: stats result is %d bytes, want ≥ 24", ErrBadFrame, len(buf))
	}
	s := StatsResult{
		RowCount:  int64(binary.LittleEndian.Uint64(buf[0:8])),
		NDistinct: int64(binary.LittleEndian.Uint64(buf[8:16])),
		Version:   binary.LittleEndian.Uint64(buf[16:24]),
	}
	rest := buf[24:]
	if len(rest) == 0 || rest[0] != statsResultV2Marker {
		s.Histogram = rest
		return s, nil
	}
	rest = rest[1:]
	if len(rest) < 4 {
		return StatsResult{}, fmt.Errorf("%w: stats result v2 truncated before histogram length", ErrBadFrame)
	}
	histLen := int(binary.LittleEndian.Uint32(rest[0:4]))
	rest = rest[4:]
	if histLen > len(rest) {
		return StatsResult{}, fmt.Errorf("%w: stats result histogram length %d exceeds payload", ErrBadFrame, histLen)
	}
	s.Histogram = rest[:histLen]
	rest = rest[histLen:]
	if len(rest) < 2 {
		return StatsResult{}, fmt.Errorf("%w: stats result v2 truncated before sketch count", ErrBadFrame)
	}
	n := int(binary.LittleEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if n > maxListEntries {
		return StatsResult{}, fmt.Errorf("%w: stats result claims %d sketches", ErrBadFrame, n)
	}
	for i := 0; i < n; i++ {
		if len(rest) < 4 {
			return StatsResult{}, fmt.Errorf("%w: stats result truncated in sketch %d length", ErrBadFrame, i)
		}
		l := int(binary.LittleEndian.Uint32(rest[0:4]))
		rest = rest[4:]
		if l > len(rest) {
			return StatsResult{}, fmt.Errorf("%w: stats result sketch %d length %d exceeds payload", ErrBadFrame, i, l)
		}
		s.Sketches = append(s.Sketches, rest[:l])
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return StatsResult{}, fmt.Errorf("%w: stats result has %d trailing bytes", ErrBadFrame, len(rest))
	}
	return s, nil
}

// TableInfo is one entry of the table listing.
type TableInfo struct {
	Name string
	Rows int64
	// Columns lists every column of the schema.
	Columns []string
	// StatsColumns lists the columns whose histograms are currently in the
	// catalog — i.e. the columns some served scan has already refreshed.
	StatsColumns []string
}

// EncodeTableList serialises a FrameTables payload.
func EncodeTableList(tables []TableInfo) []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint16(out, uint16(len(tables)))
	for _, t := range tables {
		out = appendString(out, t.Name)
		out = binary.LittleEndian.AppendUint64(out, uint64(t.Rows))
		out = binary.LittleEndian.AppendUint16(out, uint16(len(t.Columns)))
		for _, c := range t.Columns {
			out = appendString(out, c)
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(len(t.StatsColumns)))
		for _, c := range t.StatsColumns {
			out = appendString(out, c)
		}
	}
	return out
}

// DecodeTableList parses a FrameTables payload.
func DecodeTableList(buf []byte) ([]TableInfo, error) {
	cutCount := func(b []byte) (int, []byte, error) {
		if len(b) < 2 {
			return 0, nil, fmt.Errorf("%w: truncated count", ErrBadFrame)
		}
		n := int(binary.LittleEndian.Uint16(b))
		if n > maxListEntries {
			return 0, nil, fmt.Errorf("%w: count %d exceeds limit %d", ErrBadFrame, n, maxListEntries)
		}
		return n, b[2:], nil
	}
	n, buf, err := cutCount(buf)
	if err != nil {
		return nil, err
	}
	tables := make([]TableInfo, 0, n)
	for i := 0; i < n; i++ {
		var t TableInfo
		if t.Name, buf, err = cutString(buf); err != nil {
			return nil, err
		}
		if len(buf) < 8 {
			return nil, fmt.Errorf("%w: truncated row count", ErrBadFrame)
		}
		t.Rows = int64(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
		var nc int
		if nc, buf, err = cutCount(buf); err != nil {
			return nil, err
		}
		for j := 0; j < nc; j++ {
			var c string
			if c, buf, err = cutString(buf); err != nil {
				return nil, err
			}
			t.Columns = append(t.Columns, c)
		}
		if nc, buf, err = cutCount(buf); err != nil {
			return nil, err
		}
		for j := 0; j < nc; j++ {
			var c string
			if c, buf, err = cutString(buf); err != nil {
				return nil, err
			}
			t.StatsColumns = append(t.StatsColumns, c)
		}
		tables = append(tables, t)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in table list", ErrBadFrame, len(buf))
	}
	return tables, nil
}

// EncodeError serialises a FrameError payload from an error, mapping the
// protocol sentinels to stable codes.
func EncodeError(err error) []byte {
	code := codeInternal
	switch {
	case errors.Is(err, ErrUnknownTable):
		code = codeUnknownTable
	case errors.Is(err, ErrUnknownColumn):
		code = codeUnknownColumn
	case errors.Is(err, ErrNoStats):
		code = codeNoStats
	case errors.Is(err, ErrBadRequest), errors.Is(err, ErrBadFrame):
		code = codeBadRequest
	}
	msg := err.Error()
	if len(msg) > MaxPayload-2 {
		msg = msg[:MaxPayload-2]
	}
	out := make([]byte, 0, 2+len(msg))
	out = binary.LittleEndian.AppendUint16(out, code)
	return append(out, msg...)
}

// DecodeError reconstructs the error carried by a FrameError payload. The
// result wraps the matching sentinel so errors.Is works across the wire.
func DecodeError(buf []byte) error {
	if len(buf) < 2 {
		return fmt.Errorf("%w: truncated error payload", ErrBadFrame)
	}
	code := binary.LittleEndian.Uint16(buf[0:2])
	msg := string(buf[2:])
	var sentinel error
	switch code {
	case codeUnknownTable:
		sentinel = ErrUnknownTable
	case codeUnknownColumn:
		sentinel = ErrUnknownColumn
	case codeNoStats:
		sentinel = ErrNoStats
	case codeBadRequest:
		sentinel = ErrBadRequest
	default:
		return fmt.Errorf("histserved: server error: %s", msg)
	}
	return fmt.Errorf("%w (%s)", sentinel, msg)
}
