package server_test

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"streamhist/internal/client"
	"streamhist/internal/durable"
	"streamhist/internal/server"
	"streamhist/internal/stream"
)

// BenchmarkServedScanDurable measures what durability costs a served scan
// end to end. "ephemeral" is a server with no durable manager (the
// -no-durability configuration); "durable" journals every catalog mutation
// and scan-lifecycle event through the async WAL while a 50ms background
// checkpointer snapshots the catalog under the serving load — deliberately
// far more aggressive than the 30s production default, so the measured gap
// is an upper bound on the checkpoint + journal overhead; "durable-wal-only"
// disables timed checkpoints to isolate the journaling cost itself. The hot
// path only enqueues; fsync happens on the writer goroutine, so wal-only
// should stay within a few percent of ephemeral (the ≤5% gate recorded in
// EXPERIMENTS.md).
func BenchmarkServedScanDurable(b *testing.B) {
	for _, rows := range []int{20_000, 100_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			benchmarkServedScanDurable(b, rows)
		})
	}
}

func benchmarkServedScanDurable(b *testing.B, rows int) {
	rel := testRelation(rows)
	pages, err := io.ReadAll(stream.NewPagesReader(rel))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		// ckpt is the checkpoint interval; 0 means no durable manager at
		// all (the ephemeral baseline).
		ckpt time.Duration
	}{
		{"ephemeral", 0},
		{"durable-wal-only", -1},
		{"durable-ckpt-50ms", 50 * time.Millisecond},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var m *durable.Manager
			if mode.ckpt != 0 {
				var err error
				m, err = durable.Open(b.TempDir(), durable.Options{
					CheckpointInterval: mode.ckpt,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
			}
			srv := server.New(server.Config{Durable: m, PagesPerFrame: 8})
			if err := srv.Register(rel); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			sc, cc := net.Pipe()
			go srv.ServeConn(sc)
			c := client.New(cc)
			defer c.Close()
			b.SetBytes(int64(len(pages)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Scan("synthetic", "c1", io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The journal's per-scan cost is dominated by encoding the refreshed column
// statistics (histogram + sketch chain, tens of KB) into one WAL record —
// fixed per mutation, not per page — so the relative overhead shrinks as
// relations grow; the rows dimension above makes that amortization visible.
