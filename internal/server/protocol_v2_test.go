package server

import (
	"testing"
)

// The extended scan summary must round-trip every robustness field and stay
// decodable by (and from) peers that only know the 37-byte legacy layout.
func TestScanSummaryV2RoundTrip(t *testing.T) {
	in := ScanSummary{
		Pages:            7,
		Bytes:            7 * 8192,
		Rows:             3500,
		Refreshed:        true,
		Degraded:         true,
		AccelCycles:      123456,
		AccelSeconds:     0.125,
		SkippedTuples:    42,
		QuarantinedPages: 3,
		LanesRetired:     1,
	}
	raw := EncodeScanSummary(in)
	if len(raw) != scanSummaryV2Size {
		t.Fatalf("encoded %d bytes, want %d", len(raw), scanSummaryV2Size)
	}
	out, err := DecodeScanSummary(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

// A legacy 37-byte summary (the prefix of the v2 layout) must still decode,
// with every robustness field zero and the Refreshed flag intact.
func TestScanSummaryV1Compat(t *testing.T) {
	in := ScanSummary{Pages: 2, Bytes: 16384, Rows: 900, Refreshed: true, AccelCycles: 10, AccelSeconds: 1e-6}
	legacy := EncodeScanSummary(in)[:scanSummaryV1Size]
	out, err := DecodeScanSummary(legacy)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if out != in {
		t.Fatalf("v1 decode: got %+v want %+v", out, in)
	}
	if out.Degraded || out.SkippedTuples != 0 || out.QuarantinedPages != 0 || out.LanesRetired != 0 {
		t.Fatalf("v1 payload produced nonzero robustness fields: %+v", out)
	}
}

// Unknown summary flag bits must be rejected, not silently dropped: a
// future peer that needs a new bit understood will get an error, not a
// summary that quietly means something else.
func TestScanSummaryRejectsUnknownFlags(t *testing.T) {
	raw := EncodeScanSummary(ScanSummary{Refreshed: true})
	raw[20] |= 0x80
	if _, err := DecodeScanSummary(raw); err == nil {
		t.Fatal("decoder accepted an unknown flag bit")
	}
}

// A zero-offset scan request must keep the legacy encoding (no trailer), so
// old peers can parse it; a nonzero offset rides in a 4-byte trailer and
// round-trips.
func TestScanRequestOffsetRoundTrip(t *testing.T) {
	plain := EncodeScanRequest(ScanRequest{Table: "t", Column: "c"})
	legacyLen := len(plain)
	got, err := DecodeScanRequest(plain)
	if err != nil || got.Offset != 0 {
		t.Fatalf("legacy request: %+v, %v", got, err)
	}

	resumed := EncodeScanRequest(ScanRequest{Table: "t", Column: "c", Offset: 99})
	if len(resumed) != legacyLen+4 {
		t.Fatalf("resumed request is %d bytes, want legacy %d + 4", len(resumed), legacyLen)
	}
	got, err = DecodeScanRequest(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != "t" || got.Column != "c" || got.Offset != 99 {
		t.Fatalf("offset round trip: %+v", got)
	}
}
