package table

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTypeWidths(t *testing.T) {
	cases := []struct {
		typ  Type
		want int
	}{
		{Int64, 8},
		{Decimal, 8},
		{Date, 4},
		{DateUnpacked, 7},
	}
	for _, c := range cases {
		if got := c.typ.Width(); got != c.want {
			t.Errorf("%v.Width() = %d, want %d", c.typ, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if Int64.String() != "INT64" {
		t.Errorf("Int64.String() = %q", Int64.String())
	}
	if Decimal.String() != "DECIMAL" {
		t.Errorf("Decimal.String() = %q", Decimal.String())
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still render")
	}
}

func TestUnknownTypeWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown type width")
		}
	}()
	Type(200).Width()
}

func TestColumnFloat(t *testing.T) {
	price := Column{Name: "p", Type: Decimal, Scale: 2}
	if got := price.Float(12345); got != 123.45 {
		t.Errorf("Decimal Float(12345) = %v, want 123.45", got)
	}
	plain := Column{Name: "i", Type: Int64}
	if got := plain.Float(7); got != 7 {
		t.Errorf("Int64 Float(7) = %v, want 7", got)
	}
}

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "a", Type: Int64},
		Column{Name: "b", Type: Date},
		Column{Name: "c", Type: Decimal, Scale: 2},
	)
}

func TestSchemaGeometry(t *testing.T) {
	s := testSchema()
	if got := s.RowWidth(); got != 20 {
		t.Errorf("RowWidth = %d, want 20", got)
	}
	if got := s.Offset(0); got != 0 {
		t.Errorf("Offset(0) = %d", got)
	}
	if got := s.Offset(1); got != 8 {
		t.Errorf("Offset(1) = %d", got)
	}
	if got := s.Offset(2); got != 12 {
		t.Errorf("Offset(2) = %d", got)
	}
	if got := s.ColumnIndex("c"); got != 2 {
		t.Errorf("ColumnIndex(c) = %d", got)
	}
	if got := s.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", got)
	}
	if s.NumColumns() != 3 {
		t.Errorf("NumColumns = %d", s.NumColumns())
	}
}

func TestRelationAppendAndAccess(t *testing.T) {
	r := NewRelation("t", testSchema())
	if r.NumRows() != 0 {
		t.Fatalf("fresh relation has %d rows", r.NumRows())
	}
	r.Append(Row{1, 2, 3})
	r.Append(Row{4, 5, 6})
	if r.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", r.NumRows())
	}
	if got := r.Value(1, 2); got != 6 {
		t.Errorf("Value(1,2) = %d, want 6", got)
	}
	r.SetValue(1, 2, 60)
	if got := r.Value(1, 2); got != 60 {
		t.Errorf("after SetValue, Value(1,2) = %d, want 60", got)
	}
	row := r.RowAt(0, nil)
	if row[0] != 1 || row[1] != 2 || row[2] != 3 {
		t.Errorf("RowAt(0) = %v", row)
	}
	col := r.Column(1)
	if len(col) != 2 || col[0] != 2 || col[1] != 5 {
		t.Errorf("Column(1) = %v", col)
	}
	byName := r.ColumnByName("b")
	if byName[1] != 5 {
		t.Errorf("ColumnByName(b) = %v", byName)
	}
	if r.SizeBytes() != 40 {
		t.Errorf("SizeBytes = %d, want 40", r.SizeBytes())
	}
}

func TestRelationAppendWrongArity(t *testing.T) {
	r := NewRelation("t", testSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong row arity")
		}
	}()
	r.Append(Row{1, 2})
}

func TestRelationColumnByNameUnknownPanics(t *testing.T) {
	r := NewRelation("t", testSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown column")
		}
	}()
	r.ColumnByName("nope")
}

func TestRelationGrow(t *testing.T) {
	r := NewRelation("t", testSchema())
	r.Grow(1000)
	for i := 0; i < 1000; i++ {
		r.Append(Row{int64(i), int64(i), int64(i)})
	}
	if r.NumRows() != 1000 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	if r.Value(999, 0) != 999 {
		t.Errorf("Value(999,0) = %d", r.Value(999, 0))
	}
}

func TestPackDateKnownValues(t *testing.T) {
	cases := []struct {
		y, m, d int
		want    int64
	}{
		{1970, 1, 1, 0},
		{1970, 1, 2, 1},
		{1969, 12, 31, -1},
		{2000, 1, 1, 10957},
		{1998, 12, 1, 10561}, // a TPC-H date region
		{2026, 7, 7, 20641},
	}
	for _, c := range cases {
		if got := PackDate(c.y, c.m, c.d); got != c.want {
			t.Errorf("PackDate(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.want)
		}
	}
}

func TestPackDateMatchesTimePackage(t *testing.T) {
	// Cross-check a broad range against the standard library.
	for _, date := range []struct{ y, m, d int }{
		{1900, 3, 1}, {1904, 2, 29}, {1970, 1, 1}, {1999, 12, 31},
		{2000, 2, 29}, {2100, 2, 28}, {2038, 1, 19}, {1960, 6, 15},
	} {
		want := time.Date(date.y, time.Month(date.m), date.d, 0, 0, 0, 0, time.UTC).Unix() / 86400
		if got := PackDate(date.y, date.m, date.d); got != want {
			t.Errorf("PackDate(%v) = %d, want %d", date, got, want)
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		days := int64(raw % 1_000_000) // keep the year in a sane range
		y, m, d := UnpackDate(days)
		return PackDate(y, m, d) == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnpackDateKnown(t *testing.T) {
	y, m, d := UnpackDate(0)
	if y != 1970 || m != 1 || d != 1 {
		t.Errorf("UnpackDate(0) = %d-%d-%d", y, m, d)
	}
	y, m, d = UnpackDate(10957)
	if y != 2000 || m != 1 || d != 1 {
		t.Errorf("UnpackDate(10957) = %d-%d-%d", y, m, d)
	}
}
