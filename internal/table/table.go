// Package table defines relational schemas and the physical value encodings
// used throughout the repository.
//
// All column values are carried in memory as int64 "raw" values. The Type of
// a column says how a raw value is to be interpreted and how it is laid out
// on a database page:
//
//   - Int64: a plain signed integer, 8 bytes on the page.
//   - Decimal: a fixed-point number scaled by 10^Scale (TPC-H prices are
//     Decimal with Scale 2, i.e. stored in cents), 8 bytes on the page.
//   - Date: days since 1970-01-01, 4 bytes on the page.
//   - DateUnpacked: the same logical date but stored the way Oracle stores
//     DATE objects — unpacked into explicit century/year/month/day bytes
//     (7 bytes on the page). The accelerator's preprocessor knows how to
//     convert this representation back to an integer (days) on the fly,
//     which is exactly the conversion described in §5.1.1 of the paper.
package table

import (
	"fmt"
	"math"
)

// Type enumerates the physical column types understood by the parser and the
// preprocessor.
type Type uint8

const (
	// Int64 is a plain 8-byte signed integer.
	Int64 Type = iota
	// Decimal is a fixed-point number stored as an 8-byte scaled integer.
	Decimal
	// Date is a 4-byte count of days since the Unix epoch.
	Date
	// DateUnpacked is a 7-byte Oracle-style unpacked date
	// (century, year-of-century, month, day, hour, minute, second).
	DateUnpacked
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "INT64"
	case Decimal:
		return "DECIMAL"
	case Date:
		return "DATE"
	case DateUnpacked:
		return "DATE(UNPACKED)"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Width returns the number of bytes the type occupies on a page.
func (t Type) Width() int {
	switch t {
	case Int64, Decimal:
		return 8
	case Date:
		return 4
	case DateUnpacked:
		return 7
	default:
		panic(fmt.Sprintf("table: unknown type %d", uint8(t)))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
	// Scale is the decimal scale for Decimal columns (value = raw / 10^Scale).
	Scale int
}

// Float converts a raw value of this column to a float64 honouring the
// decimal scale. It is used for result formatting only; all processing is on
// raw integers.
func (c Column) Float(raw int64) float64 {
	if c.Type == Decimal && c.Scale > 0 {
		return float64(raw) / math.Pow10(c.Scale)
	}
	return float64(raw)
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from the given columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// RowWidth returns the number of bytes one row occupies on a page.
func (s *Schema) RowWidth() int {
	w := 0
	for _, c := range s.Columns {
		w += c.Type.Width()
	}
	return w
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the column at position i.
func (s *Schema) Column(i int) Column { return s.Columns[i] }

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// Offset returns the byte offset of column i within an encoded row.
func (s *Schema) Offset(i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += s.Columns[j].Type.Width()
	}
	return off
}

// Row is a single tuple, one raw int64 per column.
type Row []int64

// Relation is an in-memory table: a schema plus a column-agnostic row store.
// Rows are stored row-major, flattened into a single slice to keep the data
// cache-friendly for the multi-hundred-million-value experiments.
type Relation struct {
	Schema *Schema
	Name   string

	ncols int
	data  []int64
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{Schema: schema, Name: name, ncols: schema.NumColumns()}
}

// NumRows returns the number of rows in the relation.
func (r *Relation) NumRows() int {
	if r.ncols == 0 {
		return 0
	}
	return len(r.data) / r.ncols
}

// Append adds a row. The row must have exactly one value per column.
func (r *Relation) Append(row Row) {
	if len(row) != r.ncols {
		panic(fmt.Sprintf("table: row has %d values, schema has %d columns", len(row), r.ncols))
	}
	r.data = append(r.data, row...)
}

// Grow pre-allocates capacity for n additional rows.
func (r *Relation) Grow(n int) {
	need := len(r.data) + n*r.ncols
	if cap(r.data) < need {
		grown := make([]int64, len(r.data), need)
		copy(grown, r.data)
		r.data = grown
	}
}

// Value returns the raw value at (row, col).
func (r *Relation) Value(row, col int) int64 {
	return r.data[row*r.ncols+col]
}

// SetValue overwrites the raw value at (row, col).
func (r *Relation) SetValue(row, col int, v int64) {
	r.data[row*r.ncols+col] = v
}

// RowAt copies row i into dst (allocating if dst is too small) and returns it.
func (r *Relation) RowAt(i int, dst Row) Row {
	if cap(dst) < r.ncols {
		dst = make(Row, r.ncols)
	}
	dst = dst[:r.ncols]
	copy(dst, r.data[i*r.ncols:(i+1)*r.ncols])
	return dst
}

// Column returns a view of one full column as a fresh slice.
func (r *Relation) Column(col int) []int64 {
	n := r.NumRows()
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = r.data[i*r.ncols+col]
	}
	return out
}

// ColumnByName is Column keyed by name; it panics if the column is unknown.
func (r *Relation) ColumnByName(name string) []int64 {
	idx := r.Schema.ColumnIndex(name)
	if idx < 0 {
		panic(fmt.Sprintf("table: relation %q has no column %q", r.Name, name))
	}
	return r.Column(idx)
}

// SizeBytes returns the on-page size of the relation (rows * row width).
func (r *Relation) SizeBytes() int64 {
	return int64(r.NumRows()) * int64(r.Schema.RowWidth())
}

const daysPerYearAvg = 365.2425

// PackDate converts (year, month, day) to days since 1970-01-01 using the
// proleptic Gregorian calendar. It is the inverse of UnpackDate.
func PackDate(year, month, day int) int64 {
	// Algorithm from Howard Hinnant's chrono date algorithms (civil_from_days
	// inverse), which needs no time package and no allocations.
	y := int64(year)
	if month <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400 // [0, 399]
	var m int64 = int64(month)
	var doyAdj int64
	if m > 2 {
		doyAdj = m - 3
	} else {
		doyAdj = m + 9
	}
	doy := (153*doyAdj+2)/5 + int64(day) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

// UnpackDate converts days since 1970-01-01 back to (year, month, day).
func UnpackDate(days int64) (year, month, day int) {
	z := days + 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	var m int64
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int(y), int(m), int(d)
}
