package stream

import (
	"bytes"
	"io"
	"testing"
	"time"

	"streamhist/internal/faults"
	"streamhist/internal/page"
	"streamhist/internal/tpch"
)

// Lane panics are fully masked: the supervisor retires the lane, replays its
// whole share, and the merged result stays exactly equal to the serial scan.
func TestParallelDataPathLanePanicsMasked(t *testing.T) {
	rel := tpch.Lineitem(20_000, 1, 21)
	dp, err := NewDataPath(rel, "l_extendedprice", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}

	for seed := uint64(0); seed < 8; seed++ {
		pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 4)
		if err != nil {
			t.Fatal(err)
		}
		pdp.Faults = faults.New(seed, faults.Profile{faults.LanePanic: 0.3})
		pdp.SelfCheck = true
		res, err := pdp.Scan(io.Discard, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := res.Results.Bins.Total(), serial.Results.Bins.Total(); got != want {
			t.Fatalf("seed %d: total %d != serial %d (replay must mask retirements)", seed, got, want)
		}
		if !res.Results.EquiDepth.Equal(serial.Results.EquiDepth) {
			t.Fatalf("seed %d: equi-depth histogram drifted under lane panics", seed)
		}
		if res.LanesRetired > 0 && res.ReplayedChunks == 0 {
			t.Fatalf("seed %d: %d lanes retired but nothing replayed", seed, res.LanesRetired)
		}
	}
}

// Stalled lanes are retired at the stall timeout and their share replayed;
// the scan terminates with the exact result and no goroutine leaks.
func TestParallelDataPathLaneStallsMasked(t *testing.T) {
	rel := tpch.Lineitem(8_000, 1, 22)
	dp, err := NewDataPath(rel, "l_extendedprice", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}

	pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 3)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Faults = faults.New(11, faults.Profile{faults.LaneStall: 0.5})
	pdp.StallTimeout = 50 * time.Millisecond
	pdp.SelfCheck = true

	start := time.Now()
	res, err := pdp.Scan(io.Discard, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("scan took %v — stall supervision is not bounding waits", elapsed)
	}
	if got, want := res.Results.Bins.Total(), serial.Results.Bins.Total(); got != want {
		t.Fatalf("total %d != serial %d under stalls", got, want)
	}
	if res.LanesRetired == 0 {
		t.Fatal("50% stall rate retired no lanes")
	}
}

// Even with every lane failing, the inline fallback finishes the side path
// and the host stream is byte-identical to storage order.
func TestParallelDataPathAllLanesLostStillExact(t *testing.T) {
	rel := tpch.Lineitem(5_000, 1, 23)
	pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Faults = faults.New(4, faults.Profile{faults.LanePanic: 1.0})
	pdp.SelfCheck = true

	var got bytes.Buffer
	res, err := pdp.Scan(&got, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.LanesRetired != 2 {
		t.Fatalf("rate-1.0 panics retired %d of 2 lanes", res.LanesRetired)
	}

	var want bytes.Buffer
	for _, pg := range page.Encode(rel) {
		want.Write(pg.Bytes())
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("host stream diverged from storage order under total lane loss")
	}
	if res.Results.Bins.Total() != int64(rel.NumRows()) {
		t.Fatalf("side path total %d != %d rows", res.Results.Bins.Total(), rel.NumRows())
	}
}

// The host stream must stay byte-identical under lane faults: retirements
// are a side-path affair only.
func TestParallelDataPathHostStreamUnchangedUnderFaults(t *testing.T) {
	rel := tpch.Lineitem(6_000, 1, 24)
	pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Faults = faults.New(2, faults.Profile{faults.LanePanic: 0.2, faults.LaneStall: 0.1})
	pdp.StallTimeout = 50 * time.Millisecond

	var got bytes.Buffer
	if _, err := pdp.Scan(&got, 2); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, pg := range page.Encode(rel) {
		want.Write(pg.Bytes())
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("host stream diverged under injected lane faults")
	}
}
