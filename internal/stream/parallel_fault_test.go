package stream

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"time"

	"streamhist/internal/faults"
	"streamhist/internal/page"
	"streamhist/internal/tpch"
)

// Lane panics are fully masked: the supervisor retires the lane, replays its
// whole share, and the merged result stays exactly equal to the serial scan.
func TestParallelDataPathLanePanicsMasked(t *testing.T) {
	rel := tpch.Lineitem(20_000, 1, 21)
	dp, err := NewDataPath(rel, "l_extendedprice", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}

	for seed := uint64(0); seed < 8; seed++ {
		pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 4)
		if err != nil {
			t.Fatal(err)
		}
		pdp.Faults = faults.New(seed, faults.Profile{faults.LanePanic: 0.3})
		pdp.SelfCheck = true
		res, err := pdp.Scan(io.Discard, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got, want := res.Results.Bins.Total(), serial.Results.Bins.Total(); got != want {
			t.Fatalf("seed %d: total %d != serial %d (replay must mask retirements)", seed, got, want)
		}
		if !res.Results.EquiDepth.Equal(serial.Results.EquiDepth) {
			t.Fatalf("seed %d: equi-depth histogram drifted under lane panics", seed)
		}
		if res.LanesRetired > 0 && res.ReplayedChunks == 0 {
			t.Fatalf("seed %d: %d lanes retired but nothing replayed", seed, res.LanesRetired)
		}
	}
}

// Stalled lanes are retired at the stall timeout and their share replayed;
// the scan terminates with the exact result and no goroutine leaks.
func TestParallelDataPathLaneStallsMasked(t *testing.T) {
	rel := tpch.Lineitem(8_000, 1, 22)
	dp, err := NewDataPath(rel, "l_extendedprice", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}

	pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 3)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Faults = faults.New(11, faults.Profile{faults.LaneStall: 0.5})
	pdp.StallTimeout = 50 * time.Millisecond
	pdp.SelfCheck = true

	start := time.Now()
	res, err := pdp.Scan(io.Discard, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("scan took %v — stall supervision is not bounding waits", elapsed)
	}
	if got, want := res.Results.Bins.Total(), serial.Results.Bins.Total(); got != want {
		t.Fatalf("total %d != serial %d under stalls", got, want)
	}
	if res.LanesRetired == 0 {
		t.Fatal("50% stall rate retired no lanes")
	}
}

// Even with every lane failing, the inline fallback finishes the side path
// and the host stream is byte-identical to storage order.
func TestParallelDataPathAllLanesLostStillExact(t *testing.T) {
	rel := tpch.Lineitem(5_000, 1, 23)
	pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Faults = faults.New(4, faults.Profile{faults.LanePanic: 1.0})
	pdp.SelfCheck = true

	var got bytes.Buffer
	res, err := pdp.Scan(&got, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.LanesRetired != 2 {
		t.Fatalf("rate-1.0 panics retired %d of 2 lanes", res.LanesRetired)
	}

	var want bytes.Buffer
	for _, pg := range page.Encode(rel) {
		want.Write(pg.Bytes())
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("host stream diverged from storage order under total lane loss")
	}
	if res.Results.Bins.Total() != int64(rel.NumRows()) {
		t.Fatalf("side path total %d != %d rows", res.Results.Bins.Total(), rel.NumRows())
	}
}

// Regression: the fan-in used one one-shot drain timer, so with two or more
// lanes stalled at drain time the first retirement consumed the only timer
// fire and the next <-l.done wait blocked forever. Every lane here stalls on
// its first (and only) chunk, so all of them are caught at drain time; the
// scan must retire them all and finish exactly via the inline replay.
func TestParallelDataPathDrainTimeMultiStallNoDeadlock(t *testing.T) {
	rel := tpch.Lineitem(5_000, 1, 26)
	dp, err := NewDataPath(rel, "l_extendedprice", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}

	const shards = 4
	pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, shards)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Faults = faults.New(3, faults.Profile{faults.LaneStall: 1.0})
	pdp.StallTimeout = 50 * time.Millisecond
	// One chunk per lane: nothing stalls during fan-out, so every lane is
	// still "healthy" when the drain wait begins — the deadlock shape.
	chunkPages := (len(page.Encode(rel)) + shards - 1) / shards

	type out struct {
		res *ParallelScanResult
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := pdp.Scan(io.Discard, chunkPages)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.LanesRetired != shards {
			t.Fatalf("retired %d of %d drain-time stalled lanes", o.res.LanesRetired, shards)
		}
		if got, want := o.res.Results.Bins.Total(), serial.Results.Bins.Total(); got != want {
			t.Fatalf("total %d != serial %d after drain-time retirements", got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Scan deadlocked draining multiple stalled lanes")
	}
}

// Regression: lanes retired during fan-out never had their channel closed,
// so once the scan's release broke their stall they blocked in the chunk
// range forever — one leaked goroutine (plus its buffered chunks) per
// retirement. Scan now joins every lane before returning, so repeated scans
// must leave the goroutine count where it started.
func TestParallelDataPathStallRetiredLanesExitAfterScan(t *testing.T) {
	rel := tpch.Lineitem(6_000, 1, 25)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 2)
		if err != nil {
			t.Fatal(err)
		}
		pdp.Faults = faults.New(9, faults.Profile{faults.LaneStall: 1.0})
		pdp.StallTimeout = 30 * time.Millisecond
		res, err := pdp.Scan(io.Discard, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Results.Bins.Total() != int64(rel.NumRows()) {
			t.Fatalf("scan %d: total %d != %d rows", i, res.Results.Bins.Total(), rel.NumRows())
		}
	}
	// Lane goroutines close done just before returning, so give the last
	// ones a moment to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("%d goroutines before scans, %d after — retired lanes are leaking", before, g)
	}
}

// The host stream must stay byte-identical under lane faults: retirements
// are a side-path affair only.
func TestParallelDataPathHostStreamUnchangedUnderFaults(t *testing.T) {
	rel := tpch.Lineitem(6_000, 1, 24)
	pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Faults = faults.New(2, faults.Profile{faults.LanePanic: 0.2, faults.LaneStall: 0.1})
	pdp.StallTimeout = 50 * time.Millisecond

	var got bytes.Buffer
	if _, err := pdp.Scan(&got, 2); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, pg := range page.Encode(rel) {
		want.Write(pg.Bytes())
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("host stream diverged under injected lane faults")
	}
}
