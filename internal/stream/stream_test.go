package stream

import (
	"bytes"
	"crypto/sha256"
	"io"
	"testing"

	"streamhist/internal/bins"
	"streamhist/internal/core"
	"streamhist/internal/hist"
	"streamhist/internal/page"
	"streamhist/internal/tpch"
)

func TestPagesReaderStreamsWholePages(t *testing.T) {
	rel := tpch.Lineitem(5000, 1, 1)
	r := NewPagesReader(rel)
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != r.TotalBytes() {
		t.Fatalf("read %d bytes, want %d", len(data), r.TotalBytes())
	}
	if len(data)%page.Size != 0 {
		t.Errorf("stream length %d is not page-aligned", len(data))
	}
	// The stream must equal the concatenated page images.
	var want []byte
	for _, pg := range page.Encode(rel) {
		want = append(want, pg.Bytes()...)
	}
	if !bytes.Equal(data, want) {
		t.Error("stream differs from page images")
	}
}

func TestTapRelaysBytesUnchanged(t *testing.T) {
	// The central cut-through property: the host receives EXACTLY what
	// storage sent, regardless of what the side path does.
	rel := tpch.Lineitem(20000, 1, 2)
	var want []byte
	for _, pg := range page.Encode(rel) {
		want = append(want, pg.Bytes()...)
	}
	wantSum := sha256.Sum256(want)

	dp, err := NewDataPath(rel, "l_extendedprice", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	var host bytes.Buffer
	res, err := dp.Scan(&host, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostBytes != int64(len(want)) {
		t.Fatalf("host received %d bytes, want %d", res.HostBytes, len(want))
	}
	if sha256.Sum256(host.Bytes()) != wantSum {
		t.Fatal("host stream corrupted by the tap")
	}
}

func TestDataPathHistogramsMatchOffline(t *testing.T) {
	rel := tpch.Lineitem(15000, 1, 3)
	dp, err := NewDataPath(rel, "l_quantity", GigabitEthernet)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dp.Scan(io.Discard, 8192)
	if err != nil {
		t.Fatal(err)
	}
	truth := bins.Build(rel.ColumnByName("l_quantity"), 1)
	want := hist.BuildEquiDepth(truth, 256)
	got := res.Results.EquiDepth
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("buckets %d != %d", len(got.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Errorf("bucket %d differs", i)
		}
	}
	wantTop := hist.BuildTopK(truth, 64)
	for i := range wantTop {
		if res.Results.TopK[i] != wantTop[i] {
			t.Errorf("topk %d differs", i)
		}
	}
}

func TestDataPathChunkSizeIrrelevant(t *testing.T) {
	rel := tpch.Lineitem(8000, 1, 4)
	var ref *core.Results
	for _, chunk := range []int{1, 7, 512, 8192, 1 << 20} {
		dp, err := NewDataPath(rel, "l_quantity", GigabitEthernet)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dp.Scan(io.Discard, chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if ref == nil {
			ref = res.Results
			continue
		}
		if res.Results.Bins.Total() != ref.Bins.Total() {
			t.Fatalf("chunk %d: total %d != %d", chunk, res.Results.Bins.Total(), ref.Bins.Total())
		}
		for i := range ref.EquiDepth.Buckets {
			if res.Results.EquiDepth.Buckets[i] != ref.EquiDepth.Buckets[i] {
				t.Fatalf("chunk %d: bucket %d differs", chunk, i)
			}
		}
	}
}

func TestAcceleratorKeepsUpWithLinks(t *testing.T) {
	rel := tpch.Lineitem(30000, 1, 5)

	// Over 1 GbE the arrival rate on 64-byte rows is ~2 M rows/s: easy.
	dp, _ := NewDataPath(rel, "l_extendedprice", GigabitEthernet)
	res, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AcceleratorKeptUp {
		t.Error("accelerator should keep up with 1GbE on 64-byte rows")
	}

	// A single-column table over 10 GbE arrives at 156 M values/s — far
	// beyond one worst-case Binner (this is exactly the §7 motivation for
	// replication).
	one := tpch.LineitemColumn("l_extendedprice", 30000, 1, 5)
	dp2, _ := NewDataPath(one, "l_extendedprice", TenGbE)
	res2, err := dp2.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.AcceleratorKeptUp {
		t.Error("a single binner cannot keep up with a 1-column table at 10GbE (that's what §7 replication is for)")
	}
	need := core.ReplicasForLineRate(LineRateGbpsOf(TenGbE, one.Schema.RowWidth()), 20e6)
	if need < 2 {
		t.Errorf("replica sizing says %d, expected several", need)
	}
}

// LineRateGbpsOf converts a link + row width to the single-column value
// rate in Gbps terms used by core.ReplicasForLineRate (values are 4 bytes).
func LineRateGbpsOf(l Link, rowWidth int) float64 {
	valuesPerSec := l.BytesPerSec / float64(rowWidth)
	return valuesPerSec * 4 * 8 / 1e9
}

func TestDataPathLatencyIndependentOfSize(t *testing.T) {
	small := tpch.Lineitem(1000, 1, 6)
	big := tpch.Lineitem(20000, 1, 6)
	dpS, _ := NewDataPath(small, "l_quantity", PCIeGen1x8)
	dpB, _ := NewDataPath(big, "l_quantity", PCIeGen1x8)
	rs, err := dpS.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dpB.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.AddedLatencySeconds != rb.AddedLatencySeconds {
		t.Error("added latency should not depend on table size")
	}
	if rb.TransferSeconds <= rs.TransferSeconds {
		t.Error("transfer time should grow with table size")
	}
	// The bump in the wire is orders of magnitude below the transfer.
	if rs.AddedLatencySeconds > rs.TransferSeconds/10 {
		t.Errorf("added latency %.2gs not negligible vs transfer %.2gs",
			rs.AddedLatencySeconds, rs.TransferSeconds)
	}
}

func TestNewDataPathValidation(t *testing.T) {
	rel := tpch.Lineitem(100, 1, 7)
	if _, err := NewDataPath(rel, "nope", GigabitEthernet); err == nil {
		t.Error("unknown column accepted")
	}
	empty := tpch.Lineitem(0, 1, 7)
	if _, err := NewDataPath(empty, "l_quantity", GigabitEthernet); err == nil {
		t.Error("empty relation accepted")
	}
}

func TestTapFailsOpenOnCorruptStream(t *testing.T) {
	// A corrupt page must not disturb the host's stream: the side path
	// records the error, the relay keeps going.
	garbage := bytes.Repeat([]byte{0xAB}, 3*page.Size)
	pre, err := core.RangeFor(0, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	binner := core.NewBinner(core.DefaultBinnerConfig(), pre)
	tap := NewTap(bytes.NewReader(garbage), core.ColumnSpec{Offset: 0, Type: 0}, binner)
	got, err := io.ReadAll(tap)
	if err != nil {
		t.Fatalf("host stream failed: %v", err)
	}
	if !bytes.Equal(got, garbage) {
		t.Fatal("host stream altered")
	}
	if tap.ParseErr() == nil {
		t.Error("side path should have recorded a parse error")
	}
}
