package stream

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"streamhist/internal/core"
	"streamhist/internal/hw"
	"streamhist/internal/page"
	"streamhist/internal/table"
)

// ParallelDataPath is the sharded form of DataPath, the software analogue of
// the §7 scale-up design (Figure 23): the splitter distributes the page
// stream across N replicated Parser+Binner lanes, each accumulating partial
// counts in its own memory, and the partial states are merged before the
// unchanged Histogram module runs. Whole pages are the distribution unit —
// the Parser FSM resets at page boundaries, so lanes never share row state —
// and because bin counts are order-insensitive the merged view is exactly
// the serial DataPath's view.
//
// The host-visible path is untouched: bytes are still relayed to the host in
// storage order; only the statistical side path fans out.
type ParallelDataPath struct {
	Rel    *table.Relation
	Column string
	Link   Link
	Config core.Config
	// Shards is the number of parallel lanes; <= 0 means GOMAXPROCS.
	Shards int
	// ChunkPages is how many pages ride in one fan-out unit (default 16).
	// Larger chunks amortise dispatch overhead; any positive size is
	// functionally equivalent.
	ChunkPages int
}

// NewParallelDataPath builds a sharded path with the default accelerator
// configuration for the column's observed value range. shards <= 0 picks
// GOMAXPROCS lanes.
func NewParallelDataPath(rel *table.Relation, column string, link Link, shards int) (*ParallelDataPath, error) {
	dp, err := NewDataPath(rel, column, link)
	if err != nil {
		return nil, err
	}
	return &ParallelDataPath{
		Rel:    dp.Rel,
		Column: dp.Column,
		Link:   dp.Link,
		Config: dp.Config,
		Shards: shards,
	}, nil
}

// ParallelScanResult extends ScanResult with the fan-in accounting.
type ParallelScanResult struct {
	ScanResult
	// Shards is the number of lanes that ran.
	Shards int
	// PerShard is each lane's own cycle accounting, in lane order.
	PerShard []core.BinnerStats
	// AggregationCycles is the line-parallel merge cost of the lanes' bin
	// regions (hw.AggregationCycles); zero for a single lane, which needs
	// no fan-in.
	AggregationCycles int64
	// CriticalPathCycles is the merged binning completion: the slowest
	// lane plus the aggregation pass. Results.BinnerStats.Cycles equals
	// this, so the Table 2 downstream arithmetic is unchanged.
	CriticalPathCycles int64
}

// lane is one shard of the side path: a private Parser and Binner consuming
// page chunks from its own channel.
type lane struct {
	parser *core.Parser
	binner *core.Binner
	ch     chan []*page.Page
	err    error // parse error; written before done closes
	done   chan struct{}
}

func (l *lane) run() {
	defer close(l.done)
	var vals []int64
	for chunk := range l.ch {
		if l.err != nil {
			continue // drain: a poisoned lane fails open, never blocks feeders
		}
		for _, pg := range chunk {
			var err error
			vals, err = l.parser.Feed(pg.Bytes(), vals[:0])
			if err != nil {
				l.err = err
				break
			}
			l.binner.PushAll(vals)
		}
	}
}

// Scan streams the relation to the host in page order while fanning page
// chunks out to the shard lanes round-robin, then fans the lane states back
// in: bin vectors merge via core.Binner.Merge and the completion cycle
// becomes the max-lane critical path plus the aggregation pass. The
// histogram chain then runs over the merged view exactly as in the serial
// path, so the produced histograms are hist.Equal to DataPath.Scan's.
func (d *ParallelDataPath) Scan(hostSink io.Writer, chunkPages int) (*ParallelScanResult, error) {
	shards := d.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if chunkPages <= 0 {
		chunkPages = d.ChunkPages
	}
	if chunkPages <= 0 {
		chunkPages = 16
	}

	pre := func() (*core.Preprocessor, error) {
		return core.RangeFor(d.Config.Min, d.Config.Max, d.Config.Divisor)
	}

	lanes := make([]*lane, shards)
	var wg sync.WaitGroup
	for i := range lanes {
		p, err := pre()
		if err != nil {
			return nil, err
		}
		lanes[i] = &lane{
			parser: core.NewParser(d.Config.Column),
			binner: core.NewBinner(d.Config.Binner, p),
			ch:     make(chan []*page.Page, 4),
			done:   make(chan struct{}),
		}
		wg.Add(1)
		go func(l *lane) {
			defer wg.Done()
			l.run()
		}(lanes[i])
	}

	// Fan out: the host gets every byte in storage order; lanes get whole
	// pages round-robin, chunked to amortise channel traffic.
	pages := page.Encode(d.Rel)
	var hostBytes int64
	var writeErr error
	for off, next := 0, 0; off < len(pages); off += chunkPages {
		end := off + chunkPages
		if end > len(pages) {
			end = len(pages)
		}
		chunk := pages[off:end]
		if writeErr == nil {
			for _, pg := range chunk {
				n, err := hostSink.Write(pg.Bytes())
				hostBytes += int64(n)
				if err != nil {
					writeErr = fmt.Errorf("stream: host copy: %w", err)
					break
				}
			}
		}
		lanes[next].ch <- chunk
		next = (next + 1) % shards
	}

	// Fan in: close the lanes, wait, surface side-path errors, merge.
	for _, l := range lanes {
		close(l.ch)
	}
	wg.Wait()
	if writeErr != nil {
		return nil, writeErr
	}

	perShard := make([]core.BinnerStats, shards)
	laneCycles := make([]int64, shards)
	for i, l := range lanes {
		if l.err != nil {
			return nil, fmt.Errorf("stream: side path (lane %d): %w", i, l.err)
		}
		_, perShard[i] = l.binner.Finish()
		laneCycles[i] = perShard[i].Cycles
	}
	merged := lanes[0].binner
	for _, l := range lanes[1:] {
		if err := merged.Merge(l.binner); err != nil {
			return nil, fmt.Errorf("stream: lane merge: %w", err)
		}
	}
	vec, mstats := merged.Finish()

	// A single lane needs no adder tree, so its accounting matches the
	// serial DataPath exactly; with several lanes the fan-in pays one
	// aggregation pass over the bin regions. When Δ is large relative to
	// the per-lane work (sparse, wide-domain columns) this pass can
	// dominate and sharding stops paying — the model makes that visible
	// rather than hiding it.
	var agg int64
	if shards > 1 {
		agg = hw.AggregationCycles(vec.NumBins(), d.Config.Binner.Mem.BinsPerLine)
	}
	mstats.Cycles = hw.CriticalPath(laneCycles, agg)

	blocks := blocksFor(d.Config, vec)
	chain := core.NewScanner().Run(vec, blocks.list...)

	clk := d.Config.Binner.Clock
	if clk.Hz == 0 {
		clk = hw.NewClock(hw.DefaultClockHz)
	}
	res := &core.Results{
		Bins:        vec,
		BinnerStats: mstats,
		Chain:       chain,
	}
	res.BinningSeconds = mstats.Seconds(clk)
	res.HistogramSeconds = chain.Seconds(clk)
	res.TotalSeconds = d.Config.ParseLatencyMicros*1e-6 + res.BinningSeconds + res.HistogramSeconds
	res.HostPathAddedSeconds = d.Config.Splitter.AddedLatencySeconds()
	blocks.fill(res, vec)

	transfer := float64(hostBytes) / d.Link.BytesPerSec
	rowWidth := float64(d.Rel.Schema.RowWidth())
	arrival := d.Link.BytesPerSec / rowWidth
	kept := mstats.ValuesPerSecond(clk) >= arrival || mstats.Items == 0

	return &ParallelScanResult{
		ScanResult: ScanResult{
			HostBytes:           hostBytes,
			Results:             res,
			TransferSeconds:     transfer,
			AddedLatencySeconds: d.Config.Splitter.AddedLatencySeconds(),
			AcceleratorKeptUp:   kept,
		},
		Shards:             shards,
		PerShard:           perShard,
		AggregationCycles:  agg,
		CriticalPathCycles: mstats.Cycles,
	}, nil
}
