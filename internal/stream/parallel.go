package stream

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streamhist/internal/bins"
	"streamhist/internal/core"
	"streamhist/internal/faults"
	"streamhist/internal/hw"
	"streamhist/internal/hwprof"
	"streamhist/internal/obs"
	"streamhist/internal/page"
	"streamhist/internal/sketch"
	"streamhist/internal/table"
)

// ParallelDataPath is the sharded form of DataPath, the software analogue of
// the §7 scale-up design (Figure 23): the splitter distributes the page
// stream across N replicated Parser+Binner lanes, each accumulating partial
// counts in its own memory, and the partial states are merged before the
// unchanged Histogram module runs. Whole pages are the distribution unit —
// the Parser FSM resets at page boundaries, so lanes never share row state —
// and because bin counts are order-insensitive the merged view is exactly
// the serial DataPath's view.
//
// The host-visible path is untouched: bytes are still relayed to the host in
// storage order; only the statistical side path fans out. That asymmetry is
// also the failure model: a lane that panics or stalls is retired by the
// supervisor and every chunk it was ever assigned is replayed (its partial
// binner is discarded wholesale, so replay can never double count), which
// masks lane faults completely — the merged result stays exact — while the
// host stream never waits on a sick lane.
type ParallelDataPath struct {
	Rel    *table.Relation
	Column string
	Link   Link
	Config core.Config
	// Shards is the number of parallel lanes; <= 0 means GOMAXPROCS.
	Shards int
	// ChunkPages is how many pages ride in one fan-out unit (default 16).
	// Larger chunks amortise dispatch overhead; any positive size is
	// functionally equivalent.
	ChunkPages int
	// Faults optionally injects lane-level faults (faults.LanePanic,
	// faults.LaneStall) into the side path. Each lane gets its own forked
	// deterministic stream. Nil disables injection.
	Faults *faults.Injector
	// StallTimeout bounds how long the splitter will wait on a lane that
	// stops accepting chunks, and how long the fan-in waits for lanes to
	// drain, before retiring them. Zero means DefaultStallTimeout.
	StallTimeout time.Duration
	// SelfCheck recomputes the binned view serially after the merge and
	// fails the scan if the parallel result drifted. Intended for chaos
	// tests; it doubles the side-path work. Skipped when bin memory
	// quarantined words (the drift is then expected and accounted).
	SelfCheck bool
	// Obs, when non-nil, receives per-scan instrumentation: scan and
	// retirement counters, per-lane cycle and stall gauges, and a scan
	// duration distribution. All updates happen once per Scan, after the
	// fan-in — never on the per-page hot path.
	Obs *obs.Registry
	// Flight, when non-nil, receives one wide event per completed scan —
	// the same one-struct-copy-at-the-tail discipline as the server's
	// recorder, keyed by a path-local scan sequence. Nil keeps the
	// zero-overhead baseline.
	Flight *obs.FlightRecorder
	// Trace, when non-nil, receives one published ScanTrace per completed
	// scan: a root span over the whole scan, fan-out / drain / merge phase
	// spans, and one span per lane (parented under the fan-out span) carrying
	// that lane's wall window and simulated cycle account. Each scan
	// originates its own trace ID, so standalone stream traces are fetchable
	// through the same /traces assembly as served scans. Nil keeps the
	// zero-overhead baseline.
	Trace *obs.Tracer
	// Prof, when non-nil, receives the cycle attribution of every scan:
	// each surviving lane's pipeline decomposition under its "lane<i>"
	// frame (the inline replay lane under "inline"), and the aggregation
	// fan-in plus histogram chain under "merged". Retired lanes never
	// flush, so discarded work is never charged. Nil keeps the unprofiled
	// baseline.
	Prof *hwprof.Profiler
	// Sketch configures the per-lane daisy chain of statistic blocks
	// (internal/sketch). Every lane runs its own chain over its share of the
	// pages, tagging values with their global row ordinal, and the chains
	// merge at fan-in alongside the bin state — so the merged sketches equal
	// the serial DataPath's even under lane retirement and replay. The zero
	// spec disables it (zero-cost baseline).
	Sketch sketch.ChainSpec

	// pageCache holds the relation's encoded page images across scans: the
	// pages model the immutable on-disk relation, so re-encoding them every
	// scan is pure overhead on the host path. Guarded for concurrent Scans.
	pageCacheMu sync.Mutex
	pageCache   []*page.Page

	// scanSeq numbers this path's scans for flight-recorder correlation when
	// the path runs standalone (the server keys events by its own scan id).
	scanSeq atomic.Uint64
}

// encodedPages returns the relation's page images, encoding them on first
// use and reusing the cache afterwards.
func (d *ParallelDataPath) encodedPages() []*page.Page {
	d.pageCacheMu.Lock()
	defer d.pageCacheMu.Unlock()
	if d.pageCache == nil {
		d.pageCache = page.Encode(d.Rel)
	}
	return d.pageCache
}

// InvalidatePages drops the cached page images; call after mutating Rel.
func (d *ParallelDataPath) InvalidatePages() {
	d.pageCacheMu.Lock()
	d.pageCache = nil
	d.pageCacheMu.Unlock()
}

// Profile snapshots the accumulated cycle attribution (empty when no
// profiler is wired).
func (d *ParallelDataPath) Profile() *hwprof.Profile { return d.Prof.Snapshot() }

// DefaultStallTimeout is how long a lane may block the splitter or the
// fan-in before being declared stalled and retired.
const DefaultStallTimeout = 500 * time.Millisecond

// NewParallelDataPath builds a sharded path with the default accelerator
// configuration for the column's observed value range. shards <= 0 picks
// GOMAXPROCS lanes.
func NewParallelDataPath(rel *table.Relation, column string, link Link, shards int) (*ParallelDataPath, error) {
	dp, err := NewDataPath(rel, column, link)
	if err != nil {
		return nil, err
	}
	return &ParallelDataPath{
		Rel:    dp.Rel,
		Column: dp.Column,
		Link:   dp.Link,
		Config: dp.Config,
		Shards: shards,
	}, nil
}

// ParallelScanResult extends ScanResult with the fan-in accounting.
type ParallelScanResult struct {
	ScanResult
	// Shards is the number of lanes that ran.
	Shards int
	// PerShard is each lane's own cycle accounting, in lane order. Retired
	// lanes report zero stats (their partial work was discarded).
	PerShard []core.BinnerStats
	// AggregationCycles is the line-parallel merge cost of the lanes' bin
	// regions (hw.AggregationCycles); zero for a single lane, which needs
	// no fan-in.
	AggregationCycles int64
	// CriticalPathCycles is the merged binning completion: the slowest
	// lane plus the aggregation pass. Results.BinnerStats.Cycles equals
	// this, so the Table 2 downstream arithmetic is unchanged.
	CriticalPathCycles int64
	// LanesRetired counts lanes the supervisor removed (panic or stall).
	LanesRetired int
	// ReplayedChunks counts chunks reprocessed after a lane retirement.
	ReplayedChunks int
}

// errInjectedLaneFault is the panic value of a chaos-injected lane fault, so
// the supervisor can tell harness-made failures from real data errors with
// errors.Is rather than by matching message text.
var errInjectedLaneFault = errors.New("injected lane fault")

// pageChunk is one fan-out unit: a run of consecutive pages plus the index
// of its first page in the relation's page sequence. Pages are fully packed
// (page.Encode), so firstPage·capacity is the global row ordinal of the
// chunk's first value — what the sketch chain's position cursor needs to stay
// exact no matter which lane a chunk lands on or when it is replayed.
type pageChunk struct {
	pages     []*page.Page
	firstPage int
}

// lane is one shard of the side path: a private Parser and Binner consuming
// page chunks from its own channel, under supervision.
type lane struct {
	parser *core.Parser
	binner *core.Binner
	ch     chan pageChunk
	err    error // parse error or recovered panic; written before done closes
	done   chan struct{}
	inj    *faults.Injector
	// release unblocks an injected stall; the supervisor closes it during
	// cleanup so stalled goroutines never outlive the scan.
	release chan struct{}
	// assigned records every chunk ever sent to this lane, so a retirement
	// can replay the lane's full share.
	assigned []pageChunk
	retired  bool
	// startNS/endNS bound the lane goroutine's wall window for its trace
	// span: two clock reads per lane per scan, never per page. Atomics
	// because a retired lane's goroutine can still be running (stalled)
	// when the supervisor reads the window for the retirement span; an
	// unfinished lane reads as 0 and AddSpan clamps it to "still open".
	startNS, endNS atomic.Int64
	// chClosed tracks whether the supervisor has closed ch yet; lanes
	// retired mid-fan-out keep theirs open until cleanup.
	chClosed bool
}

func (l *lane) run() {
	l.startNS.Store(time.Now().UnixNano())
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok {
				l.err = fmt.Errorf("lane panic: %w", err)
			} else {
				l.err = fmt.Errorf("lane panic: %v", r)
			}
		}
		l.endNS.Store(time.Now().UnixNano())
		close(l.done)
	}()
	var vals []int64
	for chunk := range l.ch {
		if l.err != nil {
			continue // drain: a poisoned lane fails open, never blocks feeders
		}
		if l.inj.Should(faults.LanePanic) {
			panic(errInjectedLaneFault)
		}
		if l.inj.Should(faults.LaneStall) {
			<-l.release // hold until the supervisor tears the scan down
		}
		for j, pg := range chunk.pages {
			var err error
			vals, err = l.parser.Feed(pg.Bytes(), vals[:0])
			if err != nil {
				l.err = err
				break
			}
			l.binner.SetStreamPos(int64(chunk.firstPage+j) * int64(pg.Capacity()))
			l.binner.PushAll(vals)
		}
	}
}

// retire marks the lane dead and hands back its full chunk share for replay.
func (l *lane) retire() []pageChunk {
	l.retired = true
	return l.assigned
}

// Scan streams the relation to the host in page order while fanning page
// chunks out to the shard lanes round-robin, then fans the lane states back
// in: bin vectors merge via core.Binner.Merge and the completion cycle
// becomes the max-lane critical path plus the aggregation pass. The
// histogram chain then runs over the merged view exactly as in the serial
// path, so the produced histograms are hist.Equal to DataPath.Scan's — even
// when lanes are retired, because a retired lane's whole share is replayed.
func (d *ParallelDataPath) Scan(hostSink io.Writer, chunkPages int) (*ParallelScanResult, error) {
	scanStart := time.Now()
	shards := d.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if chunkPages <= 0 {
		chunkPages = d.ChunkPages
	}
	if chunkPages <= 0 {
		chunkPages = 16
	}
	stallTimeout := d.StallTimeout
	if stallTimeout <= 0 {
		stallTimeout = DefaultStallTimeout
	}

	// Tracing: every scan originates its own distributed trace under the
	// stream side salt. The slab is sized for the fixed phases plus one span
	// per lane, so a traced scan costs one allocation up front and struct
	// appends at phase boundaries — nothing per page. tr==nil (no tracer
	// wired) turns every span call below into a pointer check.
	scanID := d.scanSeq.Add(1)
	var tr *obs.ScanTrace
	var traceID uint64
	rootIdx := -1
	if d.Trace != nil {
		traceID = obs.NewTraceID()
		tr = d.Trace.Start(scanID, d.Rel.Name, d.Column, shards+8)
		tr.EnableTrace(traceID, 0, obs.SpanSideStream)
		rootIdx = tr.BeginRoot("scan")
	}

	pre := func() (*core.Preprocessor, error) {
		return core.RangeFor(d.Config.Min, d.Config.Max, d.Config.Divisor)
	}

	lanes := make([]*lane, shards)
	for i := range lanes {
		p, err := pre()
		if err != nil {
			return nil, err
		}
		bcfg := d.Config.Binner
		if d.Prof != nil {
			bcfg.Prof = d.Prof
			bcfg.ProfLane = fmt.Sprintf("lane%d", i)
		}
		inj := d.Faults.Fork(fmt.Sprintf("lane%d", i))
		// Each lane runs its own sketch chain over its share of the pages;
		// the chains merge at fan-in via Binner.Merge. A retired lane's
		// chain is discarded with its binner, so replayed chunks are never
		// double counted by the sketches either.
		laneChain := sketch.NewChain(d.Sketch)
		laneChain.SetFaults(inj)
		bcfg.Sketches = laneChain
		lanes[i] = &lane{
			parser:  core.NewParser(d.Config.Column),
			binner:  core.NewBinner(bcfg, p),
			ch:      make(chan pageChunk, 4),
			done:    make(chan struct{}),
			inj:     inj,
			release: make(chan struct{}),
		}
		go lanes[i].run()
	}
	// survivor is the binner whose Finish results escape into the scan
	// result; every other lane's state is recycled once its goroutine joins.
	// inline is declared here so the cleanup below can see the replay lane.
	var survivor *core.Binner
	var inline *lane
	defer func() {
		// Unblock any injected stalls, close the channels of lanes retired
		// mid-fan-out (their goroutines resume on release and must see EOF,
		// or they would block in the range forever), and join every lane so
		// no goroutine — healthy, stalled, or retired — outlives the scan.
		// Retired lanes may drain leftover chunks on the way out; their
		// binners are never merged, so the work is discarded, not counted.
		for _, l := range lanes {
			close(l.release)
			if !l.chClosed {
				close(l.ch)
				l.chClosed = true
			}
		}
		for _, l := range lanes {
			<-l.done
		}
		// Every goroutine is joined, so the non-surviving lanes' state is
		// provably private: park it for the next scan. The survivor's vector
		// and sketch blocks are the scan result and are never recycled; nor
		// is a chain the survivor adopted wholesale during Merge (the
		// pointer comparison below catches the adoption case).
		recycle := func(l *lane) {
			if l == nil || l.binner == nil || l.binner == survivor {
				return
			}
			if sc := l.binner.SketchChain(); sc != nil && (survivor == nil || sc != survivor.SketchChain()) {
				sc.Release()
			}
			l.binner.Release()
		}
		for _, l := range lanes {
			recycle(l)
		}
		recycle(inline)
	}()

	healthy := append([]*lane(nil), lanes...)
	var pendingReplay []pageChunk // chunks owed to the side path
	var retiredCount, replayed int

	retire := func(idx int) {
		l := healthy[idx]
		healthy = append(healthy[:idx], healthy[idx+1:]...)
		retiredCount++
		pendingReplay = append(pendingReplay, l.retire()...)
	}

	// deliver hands one chunk to some healthy lane, retiring lanes that are
	// dead (done closed early) or that refuse the chunk past the stall
	// timeout. It reports false when no healthy lane is left.
	next := 0
	deliver := func(chunk pageChunk) bool {
		for len(healthy) > 0 {
			idx := next % len(healthy)
			l := healthy[idx]
			// Fast path: a keeping-up lane has buffer space, so the send
			// succeeds without arming a timer (one allocation per chunk
			// otherwise). The timer only exists while the lane is suspect.
			select {
			case l.ch <- chunk:
				l.assigned = append(l.assigned, chunk)
				next++
				return true
			case <-l.done:
				retire(idx)
				continue
			default:
			}
			timer := time.NewTimer(stallTimeout)
			select {
			case l.ch <- chunk:
				timer.Stop()
				l.assigned = append(l.assigned, chunk)
				next++
				return true
			case <-l.done:
				timer.Stop()
				retire(idx)
			case <-timer.C:
				retire(idx)
			}
		}
		return false
	}

	// Fan out: the host gets every byte in storage order; lanes get whole
	// pages round-robin, chunked to amortise channel traffic. The host copy
	// always runs first and never waits on the side path.
	fanoutIdx := tr.Begin("fanout")
	pages := d.encodedPages()
	var hostBytes int64
	var writeErr error
	var orphaned []pageChunk // chunks no lane could take
	for off := 0; off < len(pages); off += chunkPages {
		end := off + chunkPages
		if end > len(pages) {
			end = len(pages)
		}
		chunk := pageChunk{pages: pages[off:end], firstPage: off}
		if writeErr == nil {
			for _, pg := range chunk.pages {
				n, err := hostSink.Write(pg.Bytes())
				hostBytes += int64(n)
				if err != nil {
					writeErr = fmt.Errorf("stream: host copy: %w", err)
					break
				}
			}
		}
		if !deliver(chunk) {
			orphaned = append(orphaned, chunk)
		}
	}

	// Redistribute shares of lanes retired during the fan-out. Lanes can
	// keep failing during replay; the healthy set only shrinks, so this
	// terminates, with still-homeless chunks falling through to the
	// supervisor's inline path.
	for len(pendingReplay) > 0 && len(healthy) > 0 {
		chunk := pendingReplay[0]
		pendingReplay = pendingReplay[1:]
		replayed++
		if !deliver(chunk) {
			orphaned = append(orphaned, chunk)
		}
	}
	tr.End(fanoutIdx, 0)

	// Fan in: close the surviving lanes and wait for them against a shared
	// absolute drain deadline — a lane that stalled after accepting its
	// chunks is caught here and retired like any other. The deadline is a
	// wall-clock instant, re-armed as a fresh timer per wait, so two or more
	// lanes stalled at drain time are each retired in turn (a one-shot timer
	// would fire once and leave the next stalled lane blocking forever).
	drainIdx := tr.Begin("drain")
	for _, l := range healthy {
		close(l.ch)
		l.chClosed = true
	}
	drainDeadline := time.Now().Add(stallTimeout)
	for idx := 0; idx < len(healthy); {
		l := healthy[idx]
		timer := time.NewTimer(time.Until(drainDeadline))
		select {
		case <-l.done:
			timer.Stop()
			if l.err != nil && isInjectedFault(l.err) {
				retire(idx)
				continue
			}
			idx++
		case <-timer.C:
			retire(idx)
		}
	}
	tr.End(drainIdx, 0)
	if writeErr != nil {
		return nil, writeErr
	}

	// Anything still owed to the side path — chunks of lanes retired at
	// drain time plus orphans — is binned inline by the supervisor. The
	// inline path has no lane faults by construction, so the scan always
	// terminates with an exact side-path view.
	orphaned = append(orphaned, pendingReplay...)
	if len(orphaned) > 0 {
		p, err := pre()
		if err != nil {
			return nil, err
		}
		bcfg := d.Config.Binner
		if d.Prof != nil {
			bcfg.Prof = d.Prof
			bcfg.ProfLane = "inline"
		}
		// The inline replay lane carries a chain too, but no sketch faults:
		// the supervisor's path is exact by construction.
		bcfg.Sketches = sketch.NewChain(d.Sketch)
		inline = &lane{
			parser: core.NewParser(d.Config.Column),
			binner: core.NewBinner(bcfg, p),
		}
		inline.startNS.Store(time.Now().UnixNano())
		var vals []int64
		for _, chunk := range orphaned {
			replayed++
			for j, pg := range chunk.pages {
				vals, err = inline.parser.Feed(pg.Bytes(), vals[:0])
				if err != nil {
					return nil, fmt.Errorf("stream: side path (inline replay): %w", err)
				}
				inline.binner.SetStreamPos(int64(chunk.firstPage+j) * int64(pg.Capacity()))
				inline.binner.PushAll(vals)
			}
		}
		inline.endNS.Store(time.Now().UnixNano())
	}

	// Surface real (non-injected) parse errors from surviving lanes, then
	// merge survivors plus the inline binner.
	perShard := make([]core.BinnerStats, shards)
	var laneCycles []int64
	var toMerge []*core.Binner
	fanoutSpan := tr.SpanIDAt(fanoutIdx)
	for i, l := range lanes {
		if l.retired {
			tr.Reparent(tr.AddSpan("lane", i, l.startNS.Load(), l.endNS.Load(), 0, true), fanoutSpan)
			continue
		}
		if l.err != nil {
			return nil, fmt.Errorf("stream: side path (lane %d): %w", i, l.err)
		}
		_, perShard[i] = l.binner.Finish()
		laneCycles = append(laneCycles, perShard[i].Cycles)
		toMerge = append(toMerge, l.binner)
		tr.Reparent(tr.AddSpan("lane", i, l.startNS.Load(), l.endNS.Load(), perShard[i].Cycles, false), fanoutSpan)
	}
	mergeIdx := tr.Begin("merge")
	if inline != nil {
		_, istats := inline.binner.Finish()
		laneCycles = append(laneCycles, istats.Cycles)
		toMerge = append(toMerge, inline.binner)
		tr.Reparent(tr.AddSpan("inline", -1, inline.startNS.Load(), inline.endNS.Load(), istats.Cycles, false), fanoutSpan)
	}
	if len(toMerge) == 0 {
		// Every lane retired and nothing needed replay: the relation was
		// empty. An empty binner keeps the downstream arithmetic uniform
		// (with an empty chain, so Results.Sketches stays shape-consistent).
		p, err := pre()
		if err != nil {
			return nil, err
		}
		bcfg := d.Config.Binner
		bcfg.Sketches = sketch.NewChain(d.Sketch)
		toMerge = append(toMerge, core.NewBinner(bcfg, p))
	}
	merged := toMerge[0]
	for _, b := range toMerge[1:] {
		if err := merged.Merge(b); err != nil {
			return nil, fmt.Errorf("stream: lane merge: %w", err)
		}
	}
	survivor = merged
	vec, mstats := merged.Finish()

	if d.SelfCheck && mstats.BinsQuarantined == 0 {
		if err := d.selfCheck(pages, vec); err != nil {
			return nil, err
		}
	}

	// A single lane needs no adder tree, so its accounting matches the
	// serial DataPath exactly; with several lanes the fan-in pays one
	// aggregation pass over the bin regions. When Δ is large relative to
	// the per-lane work (sparse, wide-domain columns) this pass can
	// dominate and sharding stops paying — the model makes that visible
	// rather than hiding it.
	var agg int64
	if shards > 1 {
		agg = hw.AggregationCycles(vec.NumBins(), d.Config.Binner.Mem.BinsPerLine)
	}
	mstats.Cycles = hw.CriticalPath(laneCycles, agg)
	if agg > 0 && d.Prof != nil {
		n := d.Prof.Node("merged", "aggregate", "fanin", hwprof.ReasonAgg)
		n.Add(agg)
		n.AddEvents(1)
	}

	blocks := blocksFor(d.Config, vec)
	chain := core.NewScanner().Run(vec, blocks.list...)
	chain.ChargeProfile(d.Prof, "merged")
	tr.End(mergeIdx, agg)

	clk := d.Config.Binner.Clock
	if clk.Hz == 0 {
		clk = hw.NewClock(hw.DefaultClockHz)
	}
	res := &core.Results{
		Bins:        vec,
		BinnerStats: mstats,
		Chain:       chain,
	}
	res.BinningSeconds = mstats.Seconds(clk)
	res.HistogramSeconds = chain.Seconds(clk)
	res.TotalSeconds = d.Config.ParseLatencyMicros*1e-6 + res.BinningSeconds + res.HistogramSeconds
	res.HostPathAddedSeconds = d.Config.Splitter.AddedLatencySeconds()
	blocks.fill(res, vec)
	if sc := merged.SketchChain(); sc != nil {
		// The merged chain covers every surviving lane plus replays; like
		// the histogram chain it is charged under the "merged" frame, so
		// retired lanes' discarded sketch work is never attributed.
		sc.Charge(d.Prof, "merged")
		res.Sketches = sc.Blocks()
		res.SketchCycles = sc.TotalCycles()
		res.SketchSeconds = clk.Seconds(res.SketchCycles)
	}

	transfer := float64(hostBytes) / d.Link.BytesPerSec
	rowWidth := float64(d.Rel.Schema.RowWidth())
	arrival := d.Link.BytesPerSec / rowWidth
	kept := mstats.ValuesPerSecond(clk) >= arrival || mstats.Items == 0

	out := &ParallelScanResult{
		ScanResult: ScanResult{
			HostBytes:           hostBytes,
			Results:             res,
			TransferSeconds:     transfer,
			AddedLatencySeconds: d.Config.Splitter.AddedLatencySeconds(),
			AcceleratorKeptUp:   kept,
		},
		Shards:             shards,
		PerShard:           perShard,
		AggregationCycles:  agg,
		CriticalPathCycles: mstats.Cycles,
		LanesRetired:       retiredCount,
		ReplayedChunks:     replayed,
	}
	if tr != nil {
		tr.End(rootIdx, mstats.Cycles)
		tr.AccelCycles = uint64(mstats.Cycles)
		d.Trace.Publish(tr)
	}
	d.instrument(out, time.Since(scanStart), scanID, traceID)
	return out, nil
}

// instrument publishes one completed scan's accounting to the wired
// registry: totals as counters, the last scan's per-lane cycle and stall
// accounting as labelled gauges, and the wall-clock duration into the
// scan-latency distribution. Runs once per Scan, entirely off the data path;
// a nil registry makes every call here a no-op.
func (d *ParallelDataPath) instrument(res *ParallelScanResult, wall time.Duration, scanID, traceID uint64) {
	if d.Flight != nil {
		ev := obs.ScanEvent{
			ScanID: scanID, Source: "stream", TraceID: traceID,
			Table:   d.Rel.Name,
			Column:  d.Column,
			StartNS: time.Now().Add(-wall).UnixNano(), WallNS: wall.Nanoseconds(),
			Bytes:          uint64(res.HostBytes),
			LanesRetired:   uint32(res.LanesRetired),
			ReplayedChunks: uint32(res.ReplayedChunks),
		}
		if res.Results != nil {
			ev.Rows = uint64(res.Results.BinnerStats.Items)
			ev.AccelCycles = uint64(res.Results.BinnerStats.Cycles)
		}
		d.Flight.Record(ev)
	}
	reg := d.Obs
	if reg == nil {
		return
	}
	reg.Counter("streamhist_stream_scans_total",
		"Completed ParallelDataPath scans.").Inc()
	reg.Counter("streamhist_stream_host_bytes_total",
		"Bytes relayed to the host across parallel scans.").Add(res.HostBytes)
	reg.Counter("streamhist_stream_lanes_retired_total",
		"Lanes removed by the supervisor (panic or stall) across parallel scans.").Add(int64(res.LanesRetired))
	reg.Counter("streamhist_stream_replayed_chunks_total",
		"Chunks reprocessed after a lane retirement across parallel scans.").Add(int64(res.ReplayedChunks))
	for i, ls := range res.PerShard {
		lane := obs.LabelValue(fmt.Sprint(i))
		reg.Gauge(fmt.Sprintf("streamhist_stream_lane_cycles{lane=%q}", lane),
			"Binning completion cycles per lane for the most recent parallel scan.").Set(ls.Cycles)
		reg.Gauge(fmt.Sprintf("streamhist_stream_lane_stall_cycles{lane=%q}", lane),
			"Cycles lost to read-after-write hazards per lane for the most recent parallel scan.").Set(ls.StallCycles)
	}
	reg.Distribution("streamhist_stream_scan_duration_seconds",
		"Wall-clock duration of parallel scans.", 1e-9).ObserveWithExemplar(wall.Nanoseconds(), traceID)
}

// isInjectedFault reports whether a lane error came from the chaos harness
// (and should be masked by replay) rather than from the data (and should
// surface to the caller).
func isInjectedFault(err error) bool {
	return errors.Is(err, errInjectedLaneFault)
}

// selfCheck re-bins the page stream serially — no lanes, no injected lane
// faults — and confirms the merged parallel view matches bin for bin.
func (d *ParallelDataPath) selfCheck(pages []*page.Page, vec *bins.Vector) error {
	p, err := core.RangeFor(d.Config.Min, d.Config.Max, d.Config.Divisor)
	if err != nil {
		return err
	}
	cfg := d.Config.Binner
	cfg.Faults = nil
	parser := core.NewParser(d.Config.Column)
	binner := core.NewBinner(cfg, p)
	var vals []int64
	for _, pg := range pages {
		vals, err = parser.Feed(pg.Bytes(), vals[:0])
		if err != nil {
			return fmt.Errorf("stream: self-check parse: %w", err)
		}
		binner.PushAll(vals)
	}
	want, _ := binner.Finish()
	if vec.NumBins() != want.NumBins() || vec.Total() != want.Total() {
		return fmt.Errorf("stream: self-check failed: parallel view (%d bins, total %d) != serial (%d bins, total %d)",
			vec.NumBins(), vec.Total(), want.NumBins(), want.Total())
	}
	for i := 0; i < want.NumBins(); i++ {
		if vec.Count(i) != want.Count(i) {
			return fmt.Errorf("stream: self-check failed: bin %d is %d, serial says %d", i, vec.Count(i), want.Count(i))
		}
	}
	return nil
}
