package stream

import (
	"bytes"
	"io"
	"testing"

	"streamhist/internal/hist"
	"streamhist/internal/page"
	"streamhist/internal/tpch"
)

// TestParallelDataPathEqualsSerial is the central merge-correctness
// property: for every shard count, the sharded path must produce histograms
// hist.Equal to the serial DataPath, with identical bin counts and totals —
// binning is order-insensitive, so fan-out/fan-in must be invisible in the
// functional output.
func TestParallelDataPathEqualsSerial(t *testing.T) {
	rel := tpch.Lineitem(30_000, 1, 11)

	dp, err := NewDataPath(rel, "l_extendedprice", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 3, 4, 7, 8, 16} {
		pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunkPages := range []int{1, 5, 16} {
			res, err := pdp.Scan(io.Discard, chunkPages)
			if err != nil {
				t.Fatalf("shards=%d chunk=%d: %v", shards, chunkPages, err)
			}
			if res.Shards != shards {
				t.Fatalf("ran %d shards, want %d", res.Shards, shards)
			}
			if got, want := res.Results.Bins.Total(), serial.Results.Bins.Total(); got != want {
				t.Fatalf("shards=%d chunk=%d: total %d != serial %d", shards, chunkPages, got, want)
			}
			for _, pair := range []struct {
				name string
				p, s *hist.Histogram
			}{
				{"equidepth", res.Results.EquiDepth, serial.Results.EquiDepth},
				{"maxdiff", res.Results.MaxDiff, serial.Results.MaxDiff},
				{"compressed", res.Results.Compressed, serial.Results.Compressed},
			} {
				if !pair.p.Equal(pair.s) {
					t.Errorf("shards=%d chunk=%d: %s histogram differs from serial", shards, chunkPages, pair.name)
				}
			}
			if len(res.Results.TopK) != len(serial.Results.TopK) {
				t.Errorf("shards=%d: topk length %d != %d", shards, len(res.Results.TopK), len(serial.Results.TopK))
			} else {
				for i, f := range serial.Results.TopK {
					if res.Results.TopK[i] != f {
						t.Errorf("shards=%d: topk[%d] = %+v != %+v", shards, i, res.Results.TopK[i], f)
					}
				}
			}
		}
	}
}

// TestParallelDataPathHostStreamUnchanged checks the cut-through property
// survives sharding: the host still receives exactly the storage bytes, in
// storage order.
func TestParallelDataPathHostStreamUnchanged(t *testing.T) {
	rel := tpch.Lineitem(10_000, 1, 12)
	var want []byte
	for _, pg := range page.Encode(rel) {
		want = append(want, pg.Bytes()...)
	}
	pdp, err := NewParallelDataPath(rel, "l_extendedprice", PCIeGen1x8, 4)
	if err != nil {
		t.Fatal(err)
	}
	var host bytes.Buffer
	res, err := pdp.Scan(&host, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostBytes != int64(len(want)) {
		t.Fatalf("host received %d bytes, want %d", res.HostBytes, len(want))
	}
	if !bytes.Equal(host.Bytes(), want) {
		t.Error("sharded path changed the host stream")
	}
}

// TestParallelDataPathCycleAccounting checks the fan-in arithmetic: the
// merged completion is the slowest lane plus the aggregation pass, per-shard
// items sum to the serial item count, and more lanes shorten the simulated
// critical path (the whole point of replication, §7).
func TestParallelDataPathCycleAccounting(t *testing.T) {
	// l_quantity has a small domain, so Δ (and the aggregation pass) is
	// tiny relative to the binning work and lane replication pays off —
	// the regime the §7 scale-up design targets.
	rel := tpch.Lineitem(40_000, 1, 13)

	scan := func(shards int) *ParallelScanResult {
		pdp, err := NewParallelDataPath(rel, "l_quantity", PCIeGen1x8, shards)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pdp.Scan(io.Discard, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	one := scan(1)
	four := scan(4)

	if len(four.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries", len(four.PerShard))
	}
	var items, maxLane int64
	for _, s := range four.PerShard {
		items += s.Items
		if s.Cycles > maxLane {
			maxLane = s.Cycles
		}
	}
	if items != one.Results.BinnerStats.Items {
		t.Errorf("per-shard items sum %d != serial %d", items, one.Results.BinnerStats.Items)
	}
	if want := maxLane + four.AggregationCycles; four.CriticalPathCycles != want {
		t.Errorf("critical path %d != max-lane %d + aggregation %d", four.CriticalPathCycles, maxLane, four.AggregationCycles)
	}
	if four.Results.BinnerStats.Cycles != four.CriticalPathCycles {
		t.Errorf("BinnerStats.Cycles %d != CriticalPathCycles %d", four.Results.BinnerStats.Cycles, four.CriticalPathCycles)
	}
	if four.CriticalPathCycles >= one.CriticalPathCycles {
		t.Errorf("4 lanes not faster than 1: %d >= %d cycles", four.CriticalPathCycles, one.CriticalPathCycles)
	}
	// The acceptance bar: at least 2× simulated binning throughput at 4
	// lanes. Round-robin distribution keeps the lanes balanced, so the
	// critical path should be close to a quarter of the single lane.
	if ratio := float64(one.Results.BinnerStats.Cycles) / float64(four.Results.BinnerStats.Cycles); ratio < 2 {
		t.Errorf("4-shard speedup %.2fx < 2x", ratio)
	}
}
