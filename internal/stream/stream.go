// Package stream assembles the full data path of Figure 9: storage emits a
// byte stream of database pages, the host consumes it unchanged through a
// cut-through path, and a Splitter feeds a byte-identical copy to the
// statistical circuit. Unlike internal/core's value-level entry points,
// everything here operates on real bytes through io.Reader, so the
// "implicit accelerator" property — the host sees exactly what storage
// sent, with only wire latency added — is checked end to end.
package stream

import (
	"fmt"
	"io"
	"sync"

	"streamhist/internal/core"
	"streamhist/internal/hist"
	"streamhist/internal/hw"
	"streamhist/internal/hwprof"
	"streamhist/internal/page"
	"streamhist/internal/sketch"
	"streamhist/internal/table"
)

// PagesReader exposes a relation's page images as one contiguous byte
// stream — the storage side of the path.
type PagesReader struct {
	pages []*page.Page
	idx   int
	off   int
}

// NewPagesReader returns a reader over the relation's encoded pages.
func NewPagesReader(rel *table.Relation) *PagesReader {
	return &PagesReader{pages: page.Encode(rel)}
}

// NewPagesReaderFromPages returns a reader over already encoded page
// images, so callers that cache a relation's pages (the scan server does)
// can stream them repeatedly without re-encoding.
func NewPagesReaderFromPages(pages []*page.Page) *PagesReader {
	return &PagesReader{pages: pages}
}

// Read implements io.Reader.
func (r *PagesReader) Read(p []byte) (int, error) {
	if r.idx >= len(r.pages) {
		return 0, io.EOF
	}
	n := copy(p, r.pages[r.idx].Bytes()[r.off:])
	r.off += n
	if r.off == page.Size {
		r.idx++
		r.off = 0
	}
	return n, nil
}

// TotalBytes returns the size of the whole stream.
func (r *PagesReader) TotalBytes() int64 { return int64(len(r.pages)) * page.Size }

// Tap is the Splitter: an io.Reader that relays the source unchanged to the
// host while pushing every byte through the Parser and Binner on the side.
// The relay path does no transformation whatsoever — the returned bytes are
// the source's bytes.
type Tap struct {
	src    io.Reader
	parser *core.Parser
	binner *core.Binner
	vals   []int64 // scratch reused across reads

	bytesRelayed int64
	parseErr     error
}

// NewTap wires a tap over src for the given column and binner.
func NewTap(src io.Reader, spec core.ColumnSpec, binner *core.Binner) *Tap {
	return &Tap{src: src, parser: core.NewParser(spec), binner: binner}
}

// Read implements io.Reader: the host's view of the stream.
func (t *Tap) Read(p []byte) (int, error) {
	n, err := t.src.Read(p)
	if n > 0 {
		t.bytesRelayed += int64(n)
		// Side path: parse the copy and push extracted values into the
		// binner. A parse error never disturbs the host's stream — the
		// accelerator fails open (§4: it must never slow down or corrupt
		// the regular flow of data).
		if t.parseErr == nil {
			t.vals = t.vals[:0]
			vals, perr := t.parser.Feed(p[:n], t.vals)
			if perr != nil {
				t.parseErr = perr
			} else {
				t.vals = vals
				t.binner.PushAll(vals)
			}
		}
	}
	return n, err
}

// BytesRelayed returns how many bytes the host has received.
func (t *Tap) BytesRelayed() int64 { return t.bytesRelayed }

// ParseErr returns the side path's error, if any (the host stream is
// unaffected either way).
func (t *Tap) ParseErr() error { return t.parseErr }

// ScanResult is what a completed data-path scan yields.
type ScanResult struct {
	// HostBytes is the number of bytes delivered to the host.
	HostBytes int64
	// Results are the accelerator outputs (nil histograms for disabled
	// blocks), identical in content to core.Circuit.Process.
	Results *core.Results
	// TransferSeconds is the stream time over the configured link;
	// AddedLatencySeconds is the splitter+I/O delay the host observed on
	// top of it (size-independent).
	TransferSeconds     float64
	AddedLatencySeconds float64
	// AcceleratorKeptUp reports whether the Binner's sustained rate
	// matched the link's value arrival rate — the §4 requirement that the
	// Binner "handle all input data without dropping rows".
	AcceleratorKeptUp bool
}

// Link models the transmission medium between storage and host.
type Link struct {
	Name        string
	BytesPerSec float64
}

// Common links of the paper's discussion.
var (
	// GigabitEthernet is the Fig 22 reference medium.
	GigabitEthernet = Link{Name: "1GbE", BytesPerSec: 1e9 / 8}
	// TenGbE is the §7 target rate.
	TenGbE = Link{Name: "10GbE", BytesPerSec: 10e9 / 8}
	// PCIeGen1x8 is the prototype's host attachment (§6).
	PCIeGen1x8 = Link{Name: "PCIe Gen1 x8", BytesPerSec: 2e9}
)

// DataPath couples a relation, a column choice, and a link.
type DataPath struct {
	Rel    *table.Relation
	Column string
	Link   Link
	Config core.Config
	// Prof, when non-nil, receives the cycle attribution of every scan:
	// the binner's pipeline decomposition under lane frame "lane0" and the
	// histogram chain under "merged". Nil keeps the unprofiled baseline.
	Prof *hwprof.Profiler
	// Sketch configures the daisy chain of statistic blocks riding the side
	// path (internal/sketch). The zero spec disables it — the zero-cost
	// baseline, same as a nil Prof.
	Sketch sketch.ChainSpec

	// pageCache holds the relation's encoded page images across scans (the
	// relation is immutable while scans run). Guarded for concurrent Scans.
	pageCacheMu sync.Mutex
	pageCache   []*page.Page
}

// encodedPages returns the relation's page images, encoding on first use.
func (d *DataPath) encodedPages() []*page.Page {
	d.pageCacheMu.Lock()
	defer d.pageCacheMu.Unlock()
	if d.pageCache == nil {
		d.pageCache = page.Encode(d.Rel)
	}
	return d.pageCache
}

// InvalidatePages drops the cached page images; call after mutating Rel.
func (d *DataPath) InvalidatePages() {
	d.pageCacheMu.Lock()
	d.pageCache = nil
	d.pageCacheMu.Unlock()
}

// Profile snapshots the accumulated cycle attribution (empty when no
// profiler is wired).
func (d *DataPath) Profile() *hwprof.Profile { return d.Prof.Snapshot() }

// NewDataPath builds a path with the default accelerator configuration for
// the column's observed value range.
func NewDataPath(rel *table.Relation, column string, link Link) (*DataPath, error) {
	spec, err := core.SpecFor(rel.Schema, column)
	if err != nil {
		return nil, err
	}
	col := rel.ColumnByName(column)
	if len(col) == 0 {
		return nil, fmt.Errorf("stream: column %q is empty", column)
	}
	min, max := col[0], col[0]
	for _, v := range col {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return &DataPath{Rel: rel, Column: column, Link: link, Config: core.DefaultConfig(spec, min, max)}, nil
}

// Scan streams the relation to the host through the tap, writing the
// host-received bytes into hostSink (pass io.Discard when only the
// statistics matter), and returns the accelerator's results plus the path
// timing. The readBuf size shapes the chunking; any size works.
func (d *DataPath) Scan(hostSink io.Writer, readBufBytes int) (*ScanResult, error) {
	if readBufBytes <= 0 {
		readBufBytes = 64 << 10
	}
	pre, err := core.RangeFor(d.Config.Min, d.Config.Max, d.Config.Divisor)
	if err != nil {
		return nil, err
	}
	bcfg := d.Config.Binner
	if d.Prof != nil {
		bcfg.Prof = d.Prof
		bcfg.ProfLane = "lane0"
	}
	// The serial path consumes values in storage order, so the chain's own
	// cursor (0, 1, 2, …) already IS the global row ordinal — no SetStreamPos
	// needed.
	bcfg.Sketches = sketch.NewChain(d.Sketch)
	binner := core.NewBinner(bcfg, pre)
	src := NewPagesReaderFromPages(d.encodedPages())
	tap := NewTap(src, d.Config.Column, binner)

	buf := make([]byte, readBufBytes)
	if _, err := io.CopyBuffer(hostSink, onlyReader{tap}, buf); err != nil {
		return nil, fmt.Errorf("stream: host copy: %w", err)
	}
	if err := tap.ParseErr(); err != nil {
		return nil, fmt.Errorf("stream: side path: %w", err)
	}

	vec, bstats := binner.Finish()
	blocks := blocksFor(d.Config, vec)
	chain := core.NewScanner().Run(vec, blocks.list...)
	chain.ChargeProfile(d.Prof, "merged")

	clk := d.Config.Binner.Clock
	if clk.Hz == 0 {
		clk = hw.NewClock(hw.DefaultClockHz)
	}
	res := &core.Results{
		Bins:        vec,
		BinnerStats: bstats,
		Chain:       chain,
	}
	res.BinningSeconds = bstats.Seconds(clk)
	res.HistogramSeconds = chain.Seconds(clk)
	res.TotalSeconds = d.Config.ParseLatencyMicros*1e-6 + res.BinningSeconds + res.HistogramSeconds
	res.HostPathAddedSeconds = d.Config.Splitter.AddedLatencySeconds()
	blocks.fill(res, vec)
	if sc := binner.SketchChain(); sc != nil {
		sc.Charge(d.Prof, "merged")
		res.Sketches = sc.Blocks()
		res.SketchCycles = sc.TotalCycles()
		res.SketchSeconds = clk.Seconds(res.SketchCycles)
	}

	transfer := float64(tap.BytesRelayed()) / d.Link.BytesPerSec
	// The link delivers rows at bytes/s ÷ rowWidth; the accelerator sees
	// one value per row. It keeps up when its sustained rate is at least
	// that arrival rate.
	rowWidth := float64(d.Rel.Schema.RowWidth())
	arrival := d.Link.BytesPerSec / rowWidth
	kept := bstats.ValuesPerSecond(clk) >= arrival || bstats.Items == 0

	return &ScanResult{
		HostBytes:           tap.BytesRelayed(),
		Results:             res,
		TransferSeconds:     transfer,
		AddedLatencySeconds: d.Config.Splitter.AddedLatencySeconds(),
		AcceleratorKeptUp:   kept,
	}, nil
}

// onlyReader hides any WriteTo/ReadFrom fast paths so the copy really goes
// through Tap.Read chunk by chunk.
type onlyReader struct{ r io.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// blockSet instantiates and later harvests the configured blocks.
type blockSet struct {
	list []core.Block
	topk *core.TopKBlock
	ed   *core.EquiDepthBlock
	md   *core.MaxDiffBlock
	comp *core.CompressedBlock
}

func blocksFor(cfg core.Config, vec interface{ Total() int64 }) *blockSet {
	s := &blockSet{}
	if cfg.TopK > 0 {
		s.topk = core.NewTopKBlock(cfg.TopK)
		s.list = append(s.list, s.topk)
	}
	if cfg.EquiDepthBuckets > 0 {
		s.ed = core.NewEquiDepthBlock(cfg.EquiDepthBuckets, vec.Total())
		s.list = append(s.list, s.ed)
	}
	if cfg.MaxDiffBuckets > 0 {
		s.md = core.NewMaxDiffBlock(cfg.MaxDiffBuckets)
		s.list = append(s.list, s.md)
	}
	if cfg.CompressedBuckets > 0 && cfg.CompressedT > 0 {
		s.comp = core.NewCompressedBlock(cfg.CompressedT, cfg.CompressedBuckets, vec.Total())
		s.list = append(s.list, s.comp)
	}
	return s
}

func (s *blockSet) fill(res *core.Results, vec interface {
	Total() int64
	Cardinality() int
}) {
	distinct := int64(vec.Cardinality())
	if s.topk != nil {
		res.TopK = s.topk.Result()
	}
	if s.ed != nil {
		res.EquiDepth = &hist.Histogram{Kind: hist.EquiDepth, Buckets: s.ed.Result(), Total: vec.Total(), DistinctTotal: distinct}
	}
	if s.md != nil {
		res.MaxDiff = &hist.Histogram{Kind: hist.MaxDiff, Buckets: s.md.Result(), Total: vec.Total(), DistinctTotal: distinct}
	}
	if s.comp != nil {
		res.Compressed = &hist.Histogram{Kind: hist.Compressed, Buckets: s.comp.Buckets(), Frequent: s.comp.Frequent(), Total: vec.Total(), DistinctTotal: distinct}
	}
}
