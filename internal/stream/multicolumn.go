package stream

import (
	"fmt"
	"io"

	"streamhist/internal/core"
	"streamhist/internal/table"
)

// MultiTap replicates the statistical circuit per column: the splitter's
// copy of the byte stream fans out to one Parser+Binner pair per column of
// interest, so a single table scan refreshes several histograms at once.
// The paper's prototype processes one column per scan (the host's metadata
// packet selects it); replicating the circuit is the same replication
// argument as §7 — each copy is independent, and the cut-through path is
// untouched either way.
type MultiTap struct {
	src     io.Reader
	parsers []*core.Parser
	binners []*core.Binner
	vals    [][]int64

	bytesRelayed int64
	parseErr     error
}

// NewMultiTap wires one circuit per (spec, binner) pair over src.
func NewMultiTap(src io.Reader, specs []core.ColumnSpec, binners []*core.Binner) (*MultiTap, error) {
	if len(specs) != len(binners) || len(specs) == 0 {
		return nil, fmt.Errorf("stream: need matching non-empty specs and binners, got %d/%d", len(specs), len(binners))
	}
	t := &MultiTap{src: src, binners: binners, vals: make([][]int64, len(specs))}
	for _, s := range specs {
		t.parsers = append(t.parsers, core.NewParser(s))
	}
	return t, nil
}

// Read implements io.Reader: the host path, with every circuit fed a copy.
func (t *MultiTap) Read(p []byte) (int, error) {
	n, err := t.src.Read(p)
	if n > 0 {
		t.bytesRelayed += int64(n)
		if t.parseErr == nil {
			for i, parser := range t.parsers {
				vals, perr := parser.Feed(p[:n], t.vals[i][:0])
				if perr != nil {
					t.parseErr = perr
					break
				}
				t.vals[i] = vals
				t.binners[i].PushAll(vals)
			}
		}
	}
	return n, err
}

// BytesRelayed returns the bytes delivered to the host.
func (t *MultiTap) BytesRelayed() int64 { return t.bytesRelayed }

// ParseErr returns the side path's first error, if any.
func (t *MultiTap) ParseErr() error { return t.parseErr }

// MultiColumnScan streams a relation once and returns one accelerator
// result per requested column. cfg customises each circuit (nil keeps
// defaults).
func MultiColumnScan(rel *table.Relation, columns []string, hostSink io.Writer, cfg func(string, core.Config) core.Config) (map[string]*core.Results, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("stream: no columns requested")
	}
	specs := make([]core.ColumnSpec, len(columns))
	configs := make([]core.Config, len(columns))
	binners := make([]*core.Binner, len(columns))
	for i, col := range columns {
		spec, err := core.SpecFor(rel.Schema, col)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
		vals := rel.ColumnByName(col)
		if len(vals) == 0 {
			return nil, fmt.Errorf("stream: column %q is empty", col)
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		c := core.DefaultConfig(spec, min, max)
		if cfg != nil {
			c = cfg(col, c)
		}
		configs[i] = c
		pre, err := core.RangeFor(c.Min, c.Max, c.Divisor)
		if err != nil {
			return nil, err
		}
		binners[i] = core.NewBinner(c.Binner, pre)
	}

	tap, err := NewMultiTap(NewPagesReader(rel), specs, binners)
	if err != nil {
		return nil, err
	}
	if hostSink == nil {
		hostSink = io.Discard
	}
	if _, err := io.CopyBuffer(hostSink, onlyReader{tap}, make([]byte, 64<<10)); err != nil {
		return nil, fmt.Errorf("stream: host copy: %w", err)
	}
	if err := tap.ParseErr(); err != nil {
		return nil, fmt.Errorf("stream: side path: %w", err)
	}

	out := make(map[string]*core.Results, len(columns))
	for i, col := range columns {
		vec, bstats := binners[i].Finish()
		blocks := blocksFor(configs[i], vec)
		chain := core.NewScanner().Run(vec, blocks.list...)
		res := &core.Results{Bins: vec, BinnerStats: bstats, Chain: chain}
		clk := configs[i].Binner.Clock
		res.BinningSeconds = bstats.Seconds(clk)
		res.HistogramSeconds = chain.Seconds(clk)
		res.TotalSeconds = configs[i].ParseLatencyMicros*1e-6 + res.BinningSeconds + res.HistogramSeconds
		res.HostPathAddedSeconds = configs[i].Splitter.AddedLatencySeconds()
		blocks.fill(res, vec)
		out[col] = res
	}
	return out, nil
}
