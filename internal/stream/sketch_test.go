package stream

import (
	"bytes"
	"io"
	"testing"

	"streamhist/internal/faults"
	"streamhist/internal/hwprof"
	"streamhist/internal/sketch"
	"streamhist/internal/tpch"
)

// sketchTestSpec keeps HeavyK above l_quantity's distinct count (≤ 50), so
// all three blocks — not just the order-insensitive two — must come out
// byte-identical to the serial run under any sharding.
func sketchTestSpec() sketch.ChainSpec {
	return sketch.ChainSpec{NDVPrecision: 11, HeavyK: 64, WindowW: 256}
}

// TestParallelDataPathSketchEqualsSerial is the sketch-engine counterpart of
// TestParallelDataPathEqualsSerial: for every shard count and chunking, the
// merged chain must be byte-identical to the serial DataPath's — positions
// carried by the pages make even the order-sensitive window exact.
func TestParallelDataPathSketchEqualsSerial(t *testing.T) {
	rel := tpch.Lineitem(30_000, 1, 41)
	spec := sketchTestSpec()

	dp, err := NewDataPath(rel, "l_quantity", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	dp.Sketch = spec
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results.Sketches) != 3 {
		t.Fatalf("serial scan produced %d sketch blocks, want 3", len(serial.Results.Sketches))
	}
	want := mustEncodeSketches(t, serial.Results.Sketches)

	for _, shards := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, chunkPages := range []int{1, 5, 16} {
			pdp, err := NewParallelDataPath(rel, "l_quantity", PCIeGen1x8, shards)
			if err != nil {
				t.Fatal(err)
			}
			pdp.Sketch = spec
			res, err := pdp.Scan(io.Discard, chunkPages)
			if err != nil {
				t.Fatalf("shards=%d chunk=%d: %v", shards, chunkPages, err)
			}
			got := mustEncodeSketches(t, res.Results.Sketches)
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Errorf("shards=%d chunk=%d: block %s differs from serial",
						shards, chunkPages, serial.Results.Sketches[i].Name())
				}
			}
			if res.Results.SketchCycles != serial.Results.SketchCycles {
				t.Errorf("shards=%d: sketch cycles %d != serial %d",
					shards, res.Results.SketchCycles, serial.Results.SketchCycles)
			}
		}
	}
}

// TestParallelDataPathSketchSurvivesLaneFaults: lanes panicking and being
// replayed must be invisible in the sketches — retired lanes' partial chains
// are discarded with their binners and the replay re-feeds the same
// positions, so the merged chain still matches the serial run bytewise.
func TestParallelDataPathSketchSurvivesLaneFaults(t *testing.T) {
	rel := tpch.Lineitem(20_000, 1, 42)
	spec := sketchTestSpec()

	dp, err := NewDataPath(rel, "l_quantity", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	dp.Sketch = spec
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := mustEncodeSketches(t, serial.Results.Sketches)

	retiredSomewhere := false
	for seed := uint64(0); seed < 8; seed++ {
		pdp, err := NewParallelDataPath(rel, "l_quantity", PCIeGen1x8, 4)
		if err != nil {
			t.Fatal(err)
		}
		pdp.Sketch = spec
		pdp.Faults = faults.New(seed, faults.Profile{faults.LanePanic: 0.3})
		pdp.SelfCheck = true
		res, err := pdp.Scan(io.Discard, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		retiredSomewhere = retiredSomewhere || res.LanesRetired > 0
		got := mustEncodeSketches(t, res.Results.Sketches)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("seed %d: block %s drifted from serial under lane faults (lanes retired: %d)",
					seed, serial.Results.Sketches[i].Name(), res.LanesRetired)
			}
		}
	}
	if !retiredSomewhere {
		t.Fatal("no seed retired a lane — the test exercised nothing")
	}
}

// TestParallelDataPathSketchFaultPointsFailOpen: the sketch-specific fault
// points may corrupt or retire blocks, but the blast radius must stop at the
// sketch — the scan completes, histograms stay exact, and damaged blocks are
// flagged Degraded rather than silently wrong.
func TestParallelDataPathSketchFaultPointsFailOpen(t *testing.T) {
	rel := tpch.Lineitem(20_000, 1, 43)
	spec := sketchTestSpec()

	dp, err := NewDataPath(rel, "l_quantity", PCIeGen1x8)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}

	sawDegraded := false
	for seed := uint64(0); seed < 10; seed++ {
		pdp, err := NewParallelDataPath(rel, "l_quantity", PCIeGen1x8, 4)
		if err != nil {
			t.Fatal(err)
		}
		pdp.Sketch = spec
		pdp.Faults = faults.New(seed, faults.Profile{
			faults.SketchCorrupt: 0.2,
			faults.SketchRetire:  0.1,
		})
		res, err := pdp.Scan(io.Discard, 1)
		if err != nil {
			t.Fatalf("seed %d: sketch faults must never fail the scan: %v", seed, err)
		}
		if !res.Results.EquiDepth.Equal(serial.Results.EquiDepth) {
			t.Fatalf("seed %d: sketch faults leaked into the histogram", seed)
		}
		for _, b := range res.Results.Sketches {
			if b.Degraded() {
				sawDegraded = true
			}
		}
	}
	if !sawDegraded {
		t.Fatal("no block ever degraded — the sketch fault points never fired")
	}
}

// TestDataPathSketchCycleAttribution: sketch cycles are a pipelined side
// cost, attributed exactly — the profile gains precisely SketchCycles under
// the merged frame, and the host-visible completion arithmetic (lane
// subtrees, critical path) is unchanged from a sketch-free scan.
func TestDataPathSketchCycleAttribution(t *testing.T) {
	rel := tpch.Lineitem(20_000, 1, 44)

	run := func(spec sketch.ChainSpec) (*ScanResult, *hwprof.Profile) {
		dp, err := NewDataPath(rel, "l_quantity", TenGbE)
		if err != nil {
			t.Fatal(err)
		}
		dp.Sketch = spec
		dp.Prof = hwprof.New()
		res, err := dp.Scan(io.Discard, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res, dp.Profile()
	}

	bare, bareProf := run(sketch.ChainSpec{})
	if bare.Results.SketchCycles != 0 || len(bare.Results.Sketches) != 0 {
		t.Fatal("disabled spec still produced sketches")
	}

	res, prof := run(sketchTestSpec())
	if res.Results.SketchCycles <= 0 {
		t.Fatal("enabled chain accrued no cycles")
	}
	wantTotal := bareProf.TotalCycles() + res.Results.SketchCycles
	if got := prof.TotalCycles(); got != wantTotal {
		t.Fatalf("profile total %d != sketch-free total + SketchCycles %d", got, wantTotal)
	}
	if got, want := prof.SubtreeCycles("merged"),
		res.Results.Chain.TotalCycles+res.Results.SketchCycles; got != want {
		t.Fatalf("merged subtree %d != chain+sketch %d", got, want)
	}
	if res.Results.BinnerStats.Cycles != bare.Results.BinnerStats.Cycles {
		t.Fatalf("sketches changed the binning completion: %d != %d",
			res.Results.BinnerStats.Cycles, bare.Results.BinnerStats.Cycles)
	}
}

// TestParallelDataPathSketchProfileConsistency extends the exact-attribution
// invariant to the sharded path with sketches on: lanes charge their binning,
// the merged frame charges aggregation + chain + sketch, nothing is lost.
func TestParallelDataPathSketchProfileConsistency(t *testing.T) {
	rel := tpch.Lineitem(30_000, 1, 45)
	pdp, err := NewParallelDataPath(rel, "l_quantity", TenGbE, 4)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Sketch = sketchTestSpec()
	pdp.Prof = hwprof.New()
	res, err := pdp.Scan(io.Discard, 2)
	if err != nil {
		t.Fatal(err)
	}
	prof := pdp.Profile()

	var laneSum int64
	for _, ls := range res.PerShard {
		laneSum += ls.Cycles
	}
	want := laneSum + res.AggregationCycles + res.Results.Chain.TotalCycles + res.Results.SketchCycles
	if got := prof.TotalCycles(); got != want {
		t.Fatalf("profile total %d != lanes+aggregation+chain+sketch %d", got, want)
	}
}

func mustEncodeSketches(t *testing.T, bs sketch.Blocks) [][]byte {
	t.Helper()
	raws, err := sketch.EncodeBlocks(bs)
	if err != nil {
		t.Fatal(err)
	}
	return raws
}
