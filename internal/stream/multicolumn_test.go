package stream

import (
	"bytes"
	"io"
	"testing"

	"streamhist/internal/bins"
	"streamhist/internal/core"
	"streamhist/internal/hist"
	"streamhist/internal/page"
	"streamhist/internal/tpch"
)

func TestMultiColumnScanMatchesSingleColumnScans(t *testing.T) {
	rel := tpch.Lineitem(15000, 1, 21)
	columns := []string{"l_quantity", "l_extendedprice", "l_partkey"}
	results, err := MultiColumnScan(rel, columns, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, col := range columns {
		res := results[col]
		if res.Bins.Total() != int64(rel.NumRows()) {
			t.Errorf("%s: binned %d values", col, res.Bins.Total())
		}
		truth := bins.Build(rel.ColumnByName(col), 1)
		want := hist.BuildEquiDepth(truth, 256)
		if len(res.EquiDepth.Buckets) != len(want.Buckets) {
			t.Fatalf("%s: buckets %d != %d", col, len(res.EquiDepth.Buckets), len(want.Buckets))
		}
		for i := range want.Buckets {
			if res.EquiDepth.Buckets[i] != want.Buckets[i] {
				t.Errorf("%s: bucket %d differs", col, i)
			}
		}
	}
}

func TestMultiColumnScanHostIntact(t *testing.T) {
	rel := tpch.Lineitem(8000, 1, 22)
	var want []byte
	for _, pg := range page.Encode(rel) {
		want = append(want, pg.Bytes()...)
	}
	var host bytes.Buffer
	if _, err := MultiColumnScan(rel, []string{"l_quantity", "l_tax"}, &host, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(host.Bytes(), want) {
		t.Fatal("host stream altered by multi-column tap")
	}
}

func TestMultiColumnScanPerColumnConfig(t *testing.T) {
	rel := tpch.Lineitem(5000, 1, 23)
	results, err := MultiColumnScan(rel, []string{"l_quantity"}, io.Discard,
		func(col string, c core.Config) core.Config {
			c.EquiDepthBuckets = 10
			c.TopK = 3
			c.MaxDiffBuckets = 0
			c.CompressedBuckets = 0
			return c
		})
	if err != nil {
		t.Fatal(err)
	}
	res := results["l_quantity"]
	if len(res.TopK) != 3 {
		t.Errorf("topk = %d", len(res.TopK))
	}
	if res.MaxDiff != nil {
		t.Error("disabled block present")
	}
}

func TestMultiColumnScanValidation(t *testing.T) {
	rel := tpch.Lineitem(100, 1, 24)
	if _, err := MultiColumnScan(rel, nil, nil, nil); err == nil {
		t.Error("empty column list accepted")
	}
	if _, err := MultiColumnScan(rel, []string{"nope"}, nil, nil); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestNewMultiTapValidation(t *testing.T) {
	if _, err := NewMultiTap(bytes.NewReader(nil), nil, nil); err == nil {
		t.Error("empty tap accepted")
	}
	pre, _ := core.RangeFor(0, 10, 1)
	b := core.NewBinner(core.DefaultBinnerConfig(), pre)
	if _, err := NewMultiTap(bytes.NewReader(nil), []core.ColumnSpec{{}}, []*core.Binner{b, b}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}
