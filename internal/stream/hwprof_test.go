package stream

import (
	"fmt"
	"io"
	"testing"

	"streamhist/internal/faults"
	"streamhist/internal/hwprof"
	"streamhist/internal/tpch"
)

// TestDataPathProfileConsistency: on the serial path the profile must be an
// exact decomposition of the scan arithmetic — lane0's subtree equals the
// binning completion cycles, the merged subtree equals the chain, and the
// grand total equals BinnerStats.Cycles + Chain.TotalCycles.
func TestDataPathProfileConsistency(t *testing.T) {
	rel := tpch.Lineitem(30_000, 1, 31)
	dp, err := NewDataPath(rel, "l_quantity", TenGbE)
	if err != nil {
		t.Fatal(err)
	}
	dp.Prof = hwprof.New()
	res, err := dp.Scan(io.Discard, 0)
	if err != nil {
		t.Fatal(err)
	}
	prof := dp.Profile()
	bstats := res.Results.BinnerStats
	chain := res.Results.Chain

	if got := prof.SubtreeCycles("lane0"); got != bstats.Cycles {
		t.Fatalf("lane0 subtree %d != BinnerStats.Cycles %d", got, bstats.Cycles)
	}
	if got := prof.SubtreeCycles("merged"); got != chain.TotalCycles {
		t.Fatalf("merged subtree %d != Chain.TotalCycles %d", got, chain.TotalCycles)
	}
	if got, want := prof.TotalCycles(), bstats.Cycles+chain.TotalCycles; got != want {
		t.Fatalf("profile total %d != binning+chain %d", got, want)
	}
}

// TestParallelDataPathProfileConsistency: each lane's subtree must equal
// that shard's own cycle accounting, the merged subtree the aggregation
// fan-in plus the chain, and max-lane + aggregation must reproduce the PR 2
// CriticalPath arithmetic behind Results.BinnerStats.Cycles.
func TestParallelDataPathProfileConsistency(t *testing.T) {
	rel := tpch.Lineitem(40_000, 1, 32)
	pdp, err := NewParallelDataPath(rel, "l_quantity", TenGbE, 4)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Prof = hwprof.New()
	res, err := pdp.Scan(io.Discard, 2)
	if err != nil {
		t.Fatal(err)
	}
	prof := pdp.Profile()
	chain := res.Results.Chain

	var laneSum, maxLane int64
	for i, ls := range res.PerShard {
		sub := prof.SubtreeCycles(fmt.Sprintf("lane%d", i))
		if sub != ls.Cycles {
			t.Fatalf("lane%d subtree %d != PerShard cycles %d", i, sub, ls.Cycles)
		}
		laneSum += ls.Cycles
		if ls.Cycles > maxLane {
			maxLane = ls.Cycles
		}
	}
	if got, want := prof.SubtreeCycles("merged"), res.AggregationCycles+chain.TotalCycles; got != want {
		t.Fatalf("merged subtree %d != aggregation+chain %d", got, want)
	}
	if got, want := prof.TotalCycles(), laneSum+res.AggregationCycles+chain.TotalCycles; got != want {
		t.Fatalf("profile total %d != lanes+aggregation+chain %d", got, want)
	}
	if got, want := maxLane+res.AggregationCycles, res.CriticalPathCycles; got != want {
		t.Fatalf("max lane + aggregation = %d, CriticalPathCycles = %d", got, want)
	}
	if res.Results.BinnerStats.Cycles != res.CriticalPathCycles {
		t.Fatalf("BinnerStats.Cycles %d != CriticalPathCycles %d",
			res.Results.BinnerStats.Cycles, res.CriticalPathCycles)
	}
}

// TestParallelProfileConsistencyUnderFaults: with lane panics retiring
// shards mid-scan and memory faults stretching commits, the attribution
// must stay airtight — retired lanes charge nothing (their work was
// discarded), replayed work lands under the lanes that actually did it
// (including "inline"), spike cycles are attributed rather than lost, and
// the exact-total invariant still holds.
func TestParallelProfileConsistencyUnderFaults(t *testing.T) {
	rel := tpch.Lineitem(20_000, 1, 33)
	for seed := uint64(0); seed < 6; seed++ {
		pdp, err := NewParallelDataPath(rel, "l_quantity", TenGbE, 4)
		if err != nil {
			t.Fatal(err)
		}
		pdp.Faults = faults.New(seed, faults.Profile{faults.LanePanic: 0.3})
		pdp.Config.Binner.Faults = faults.New(seed+100, faults.Profile{
			faults.MemLatencySpike: 0.02,
			faults.MemReadFlip:     0.01,
		})
		pdp.Prof = hwprof.New()
		res, err := pdp.Scan(io.Discard, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof := pdp.Profile()

		var laneSum int64
		for i, ls := range res.PerShard {
			sub := prof.SubtreeCycles(fmt.Sprintf("lane%d", i))
			if sub != ls.Cycles {
				t.Fatalf("seed %d: lane%d subtree %d != PerShard cycles %d (retired lanes must charge nothing)",
					seed, i, sub, ls.Cycles)
			}
			laneSum += ls.Cycles
		}
		inline := prof.SubtreeCycles("inline")
		want := laneSum + inline + res.AggregationCycles + res.Results.Chain.TotalCycles
		if got := prof.TotalCycles(); got != want {
			t.Fatalf("seed %d: profile total %d != lanes+inline+aggregation+chain %d", seed, got, want)
		}
		if res.LanesRetired > 0 && inline == 0 && res.ReplayedChunks == 0 {
			t.Fatalf("seed %d: lanes retired but no replay recorded anywhere", seed)
		}
	}
}
