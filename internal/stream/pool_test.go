package stream

import (
	"bytes"
	"io"
	"testing"

	"streamhist/internal/faults"
	"streamhist/internal/tpch"
)

// poolScan runs one sharded scan with sketches on and returns everything a
// caller can observe from it. Each scan's lanes release their binner scratch
// and sketch blocks into the global pools on the way out, so consecutive
// calls exercise fresh-build first, pooled-reuse after.
func poolScan(t *testing.T, inj *faults.Injector) (*ParallelScanResult, [][]byte) {
	t.Helper()
	rel := tpch.Lineitem(20_000, 1, 61)
	pdp, err := NewParallelDataPath(rel, "l_quantity", PCIeGen1x8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pdp.Sketch = sketchTestSpec()
	pdp.Faults = inj
	res, err := pdp.Scan(io.Discard, 2)
	if err != nil {
		t.Fatal(err)
	}
	return res, mustEncodeSketches(t, res.Results.Sketches)
}

// TestParallelScanPooledLanesBitIdentical: repeated identical scans — the
// first building every lane from fresh allocations, the rest from whatever
// the pools hold — must agree on every observable: histograms, completion
// cycles, and byte-level sketch encodings. Pooling is the tentpole's
// allocation optimisation; this is the proof it is *only* that.
func TestParallelScanPooledLanesBitIdentical(t *testing.T) {
	first, firstRaws := poolScan(t, nil)
	for round := 0; round < 4; round++ {
		res, raws := poolScan(t, nil)
		if !res.Results.EquiDepth.Equal(first.Results.EquiDepth) {
			t.Fatalf("round %d: equi-depth histogram drifted under pooled lanes", round)
		}
		if res.Results.BinnerStats != first.Results.BinnerStats {
			t.Fatalf("round %d: binner stats drifted under pooled lanes: %+v != %+v",
				round, res.Results.BinnerStats, first.Results.BinnerStats)
		}
		for i := range firstRaws {
			if !bytes.Equal(raws[i], firstRaws[i]) {
				t.Fatalf("round %d: sketch block %s drifted under pooled lanes",
					round, first.Results.Sketches[i].Name())
			}
		}
	}
}

// TestParallelScanPooledLanesAfterFaultedScan: a chaos scan retires lanes
// mid-chunk and their half-fed binners and chains go back to the pools from
// the retirement path, not the clean path. A clean scan built over that
// debris must still be byte-identical to the pristine first scan.
func TestParallelScanPooledLanesAfterFaultedScan(t *testing.T) {
	want, wantRaws := poolScan(t, nil)

	retired := 0
	for seed := uint64(0); seed < 6; seed++ {
		res, _ := poolScan(t, faults.New(seed, faults.Profile{faults.LanePanic: 0.4}))
		retired += res.LanesRetired
	}
	if retired == 0 {
		t.Fatal("no chaos seed retired a lane — the test exercised nothing")
	}

	res, raws := poolScan(t, nil)
	if !res.Results.EquiDepth.Equal(want.Results.EquiDepth) {
		t.Fatal("equi-depth histogram drifted after fault-retired lanes repooled their state")
	}
	if res.Results.BinnerStats != want.Results.BinnerStats {
		t.Fatalf("binner stats drifted after faulted scans: %+v != %+v",
			res.Results.BinnerStats, want.Results.BinnerStats)
	}
	for i := range wantRaws {
		if !bytes.Equal(raws[i], wantRaws[i]) {
			t.Fatalf("sketch block %s drifted after fault-retired lanes repooled their state",
				want.Results.Sketches[i].Name())
		}
	}
}
