// Package datagen produces the deterministic synthetic data distributions
// used by the evaluation: uniform, Zipf-skewed (the Fig 20 sweep), and
// spiked distributions (the Fig 21 "small spikes at random prices"
// workload). Everything is seeded and reproducible across runs and
// platforms; no global state from math/rand is used.
package datagen

import (
	"fmt"
	"math"
	"sort"
)

// RNG is a small, fast, deterministic generator (splitmix64). It is good
// enough statistically for workload generation and, unlike math/rand's
// global functions, is fully reproducible and safe to embed per-generator.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("datagen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("datagen: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Generator yields one value per call.
type Generator interface {
	// Next returns the next value of the stream.
	Next() int64
}

// Uniform generates values uniformly from [Min, Min+Cardinality).
type Uniform struct {
	Min         int64
	Cardinality int64
	rng         *RNG
}

// NewUniform returns a uniform generator over [min, min+cardinality).
func NewUniform(seed uint64, min, cardinality int64) *Uniform {
	if cardinality <= 0 {
		panic("datagen: uniform cardinality must be positive")
	}
	return &Uniform{Min: min, Cardinality: cardinality, rng: NewRNG(seed)}
}

// Next returns the next uniform value.
func (u *Uniform) Next() int64 { return u.Min + u.rng.Int63n(u.Cardinality) }

// Zipf generates Zipf-distributed values with exponent S over a fixed
// cardinality. Rank r (1-based) has probability proportional to 1/r^S.
// S = 0 degenerates to uniform; the paper sweeps S ∈ {0, 0.35, 0.75, 1.0}
// in Fig 20 with cardinality 2048.
//
// Unlike math/rand's Zipf (which requires S > 1), this generator supports
// the full S >= 0 range by inverting a precomputed CDF, which is exact for
// the moderate cardinalities used in the evaluation.
type Zipf struct {
	Min         int64
	Cardinality int64
	S           float64

	cdf []float64 // cdf[i] = P(rank <= i+1)
	val []int64   // value assigned to rank i (shuffled so that rank != value order)
	rng *RNG
}

// NewZipf builds a Zipf generator. When shuffle is true the mapping from
// rank to value is a random permutation (so the heavy hitters are scattered
// across the value domain, as in real columns); when false rank i maps to
// value min+i, which is convenient for tests.
func NewZipf(seed uint64, min, cardinality int64, s float64, shuffle bool) *Zipf {
	if cardinality <= 0 {
		panic("datagen: zipf cardinality must be positive")
	}
	if s < 0 {
		panic("datagen: zipf exponent must be non-negative")
	}
	z := &Zipf{
		Min:         min,
		Cardinality: cardinality,
		S:           s,
		cdf:         make([]float64, cardinality),
		val:         make([]int64, cardinality),
		rng:         NewRNG(seed),
	}
	sum := 0.0
	for i := int64(0); i < cardinality; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	z.cdf[cardinality-1] = 1.0 // guard against rounding
	for i := int64(0); i < cardinality; i++ {
		z.val[i] = min + i
	}
	if shuffle {
		perm := z.rng.Perm(int(cardinality))
		for i, p := range perm {
			z.val[i] = min + int64(p)
		}
	}
	return z
}

// Next returns the next Zipf-distributed value.
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	rank := sort.SearchFloat64s(z.cdf, u)
	if rank >= len(z.val) {
		rank = len(z.val) - 1
	}
	return z.val[rank]
}

// Rank returns the value assigned to 0-based frequency rank r (rank 0 is the
// most frequent value). Useful for constructing test oracles.
func (z *Zipf) Rank(r int) int64 { return z.val[r] }

// Spike describes one artificially inflated value: Count extra occurrences
// of Value are blended into a base stream.
type Spike struct {
	Value int64
	Count int64
}

// Spiked wraps a base generator and blends in spikes: each call emits either
// a pending spike occurrence (with probability proportional to the remaining
// spike mass) or the base generator's next value. Over n calls the expected
// number of occurrences of each spike value is its Count (exact when the
// stream length equals base mass + spike mass).
type Spiked struct {
	base      Generator
	remaining []Spike
	totalLeft int64 // spike occurrences not yet emitted
	baseLeft  int64 // base values not yet emitted
	rng       *RNG
}

// NewSpiked builds a spiked stream of exactly n values: n - sum(counts)
// values from base interleaved uniformly at random with the spike
// occurrences. It panics if the spikes alone exceed n.
func NewSpiked(seed uint64, base Generator, n int64, spikes []Spike) *Spiked {
	var spikeMass int64
	for _, s := range spikes {
		if s.Count < 0 {
			panic("datagen: negative spike count")
		}
		spikeMass += s.Count
	}
	if spikeMass > n {
		panic(fmt.Sprintf("datagen: spike mass %d exceeds stream length %d", spikeMass, n))
	}
	rem := make([]Spike, len(spikes))
	copy(rem, spikes)
	return &Spiked{
		base:      base,
		remaining: rem,
		totalLeft: spikeMass,
		baseLeft:  n - spikeMass,
		rng:       NewRNG(seed),
	}
}

// Next returns the next value of the spiked stream. After the configured
// length is exhausted it keeps returning base values.
func (s *Spiked) Next() int64 {
	total := s.totalLeft + s.baseLeft
	if total > 0 && s.totalLeft > 0 && s.rng.Int63n(total) < s.totalLeft {
		// Emit one spike occurrence, chosen proportionally to remaining counts.
		pick := s.rng.Int63n(s.totalLeft)
		for i := range s.remaining {
			if pick < s.remaining[i].Count {
				s.remaining[i].Count--
				s.totalLeft--
				return s.remaining[i].Value
			}
			pick -= s.remaining[i].Count
		}
		panic("datagen: spike selection out of range")
	}
	if s.baseLeft > 0 {
		s.baseLeft--
	}
	return s.base.Next()
}

// Hotspot draws a fraction of the stream from a small hot region at the
// start of the domain and the rest uniformly from the whole domain — the
// classic 80/20 access pattern, useful as a middle ground between uniform
// and Zipf when exercising the Binner's cache.
type Hotspot struct {
	Min         int64
	Cardinality int64
	// HotFraction of draws land in the hot set; HotSetFraction of the
	// domain is hot.
	HotFraction    float64
	HotSetFraction float64
	rng            *RNG
}

// NewHotspot builds an 80/20-style generator; fractions must be in (0, 1].
func NewHotspot(seed uint64, min, cardinality int64, hotFraction, hotSetFraction float64) *Hotspot {
	if cardinality <= 0 {
		panic("datagen: hotspot cardinality must be positive")
	}
	if hotFraction <= 0 || hotFraction > 1 || hotSetFraction <= 0 || hotSetFraction > 1 {
		panic("datagen: hotspot fractions must be in (0, 1]")
	}
	return &Hotspot{
		Min: min, Cardinality: cardinality,
		HotFraction: hotFraction, HotSetFraction: hotSetFraction,
		rng: NewRNG(seed),
	}
}

// Next returns the next hotspot-distributed value.
func (h *Hotspot) Next() int64 {
	hotSet := int64(float64(h.Cardinality) * h.HotSetFraction)
	if hotSet < 1 {
		hotSet = 1
	}
	if h.rng.Float64() < h.HotFraction {
		return h.Min + h.rng.Int63n(hotSet)
	}
	return h.Min + h.rng.Int63n(h.Cardinality)
}

// Sequential emits min, min+1, min+2, ... wrapping after cardinality values.
// It models dense key columns such as l_orderkey.
type Sequential struct {
	Min         int64
	Cardinality int64
	next        int64
}

// NewSequential returns a sequential generator.
func NewSequential(min, cardinality int64) *Sequential {
	if cardinality <= 0 {
		panic("datagen: sequential cardinality must be positive")
	}
	return &Sequential{Min: min, Cardinality: cardinality}
}

// Next returns the next sequential value.
func (s *Sequential) Next() int64 {
	v := s.Min + s.next
	s.next++
	if s.next == s.Cardinality {
		s.next = 0
	}
	return v
}

// Take draws n values from g into a fresh slice.
func Take(g Generator, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Counts tallies the exact frequency of every value in vs; a test oracle.
func Counts(vs []int64) map[int64]int64 {
	m := make(map[int64]int64)
	for _, v := range vs {
		m[v]++
	}
	return m
}
