package datagen

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestUniformRange(t *testing.T) {
	u := NewUniform(4, 100, 50)
	counts := make(map[int64]int)
	for i := 0; i < 50000; i++ {
		v := u.Next()
		if v < 100 || v >= 150 {
			t.Fatalf("uniform value %d out of [100,150)", v)
		}
		counts[v]++
	}
	if len(counts) != 50 {
		t.Errorf("saw %d distinct values, want 50", len(counts))
	}
	// Chi-squared-ish sanity: each value should be near 1000.
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("value %d count %d implausible for uniform", v, c)
		}
	}
}

func TestZipfUniformDegenerate(t *testing.T) {
	// s = 0 must behave like uniform.
	z := NewZipf(5, 0, 100, 0, false)
	counts := make(map[int64]int)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for v, c := range counts {
		if c < n/100-400 || c > n/100+400 {
			t.Errorf("s=0: value %d count %d far from uniform", v, c)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher s must concentrate more mass on the top rank.
	shares := make([]float64, 0, 3)
	for _, s := range []float64{0.35, 0.75, 1.0} {
		z := NewZipf(6, 0, 2048, s, false)
		n := 200000
		top := 0
		for i := 0; i < n; i++ {
			if z.Next() == z.Rank(0) {
				top++
			}
		}
		shares = append(shares, float64(top)/float64(n))
	}
	if !(shares[0] < shares[1] && shares[1] < shares[2]) {
		t.Errorf("top-rank shares not increasing with skew: %v", shares)
	}
}

func TestZipfTheoreticalShare(t *testing.T) {
	// For s=1, cardinality N, top value share should be ~ 1/H_N.
	const card = 2048
	z := NewZipf(7, 0, card, 1.0, false)
	h := 0.0
	for i := 1; i <= card; i++ {
		h += 1 / float64(i)
	}
	want := 1 / h
	n := 400000
	top := 0
	for i := 0; i < n; i++ {
		if z.Next() == z.Rank(0) {
			top++
		}
	}
	got := float64(top) / float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("s=1 top share = %.4f, theoretical %.4f", got, want)
	}
}

func TestZipfShuffleCoversDomain(t *testing.T) {
	z := NewZipf(8, 1000, 64, 0.75, true)
	seen := make(map[int64]bool)
	for i := 0; i < 64; i++ {
		v := z.Rank(i)
		if v < 1000 || v >= 1064 {
			t.Fatalf("rank value %d outside domain", v)
		}
		if seen[v] {
			t.Fatal("duplicate rank value after shuffle")
		}
		seen[v] = true
	}
}

func TestZipfRejectsBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(1, 0, 0, 1, false) },
		func() { NewZipf(1, 0, 10, -1, false) },
		func() { NewUniform(1, 0, 0) },
		func() { NewSequential(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSpikedExactMass(t *testing.T) {
	base := NewUniform(9, 0, 1000)
	spikes := []Spike{{Value: 5000, Count: 300}, {Value: 6000, Count: 700}}
	s := NewSpiked(10, base, 10000, spikes)
	vals := Take(s, 10000)
	counts := Counts(vals)
	if counts[5000] != 300 {
		t.Errorf("spike 5000 count = %d, want 300", counts[5000])
	}
	if counts[6000] != 700 {
		t.Errorf("spike 6000 count = %d, want 700", counts[6000])
	}
	var baseMass int64
	for v, c := range counts {
		if v < 1000 {
			baseMass += c
		}
	}
	if baseMass != 9000 {
		t.Errorf("base mass = %d, want 9000", baseMass)
	}
}

func TestSpikedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when spikes exceed stream length")
		}
	}()
	NewSpiked(1, NewUniform(1, 0, 10), 5, []Spike{{Value: 1, Count: 10}})
}

func TestSpikedInterleaving(t *testing.T) {
	// Spikes must be spread through the stream, not clumped at one end.
	base := NewUniform(11, 0, 10)
	s := NewSpiked(12, base, 10000, []Spike{{Value: 99, Count: 1000}})
	firstHalf := 0
	for i := 0; i < 10000; i++ {
		v := s.Next()
		if v == 99 && i < 5000 {
			firstHalf++
		}
	}
	if firstHalf < 300 || firstHalf > 700 {
		t.Errorf("spike occurrences in first half = %d, want ~500", firstHalf)
	}
}

func TestHotspotConcentration(t *testing.T) {
	h := NewHotspot(13, 0, 10_000, 0.8, 0.2)
	n := 100_000
	hot := 0
	hotLimit := int64(2000)
	for i := 0; i < n; i++ {
		v := h.Next()
		if v < 0 || v >= 10_000 {
			t.Fatalf("value %d out of domain", v)
		}
		if v < hotLimit {
			hot++
		}
	}
	// 80% targeted + 20%·20% incidental ≈ 84% in the hot set.
	share := float64(hot) / float64(n)
	if share < 0.80 || share > 0.88 {
		t.Errorf("hot-set share = %.3f, want ≈0.84", share)
	}
}

func TestHotspotRejectsBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHotspot(1, 0, 0, 0.8, 0.2) },
		func() { NewHotspot(1, 0, 10, 0, 0.2) },
		func() { NewHotspot(1, 0, 10, 0.8, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSequentialWraps(t *testing.T) {
	s := NewSequential(10, 3)
	got := Take(s, 7)
	want := []int64{10, 11, 12, 10, 11, 12, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequential = %v, want %v", got, want)
		}
	}
}

func TestCountsMatchesSort(t *testing.T) {
	f := func(raw []int16) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v % 50)
		}
		counts := Counts(vals)
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var total int64
		for _, c := range counts {
			total += c
		}
		return total == int64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
