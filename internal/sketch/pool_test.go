package sketch

import (
	"bytes"
	"testing"
)

func poolChainRun(t *testing.T, spec ChainSpec, vals []int64) [][]byte {
	t.Helper()
	c := NewChain(spec)
	c.PushAll(vals)
	raws, err := EncodeBlocks(c.Blocks())
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	return raws
}

// TestChainReleaseReuseBitIdentical: a chain whose blocks come out of the
// pools (previous chains' released HLL register files, SpaceSaving arenas,
// window heaps) must encode byte-for-byte like a chain built cold. Enough
// distinct values are pushed to promote the HLL to dense, so the retired
// dense register file round-trips through denseSpare and back.
func TestChainReleaseReuseBitIdentical(t *testing.T) {
	spec := ChainSpec{NDVPrecision: 10, HeavyK: 16, WindowW: 64}
	vals := make([]int64, 20_000)
	for i := range vals {
		vals[i] = int64(i*i%9973) * 3 // plenty of distinct values: dense HLL
	}
	want := poolChainRun(t, spec, vals)
	for round := 0; round < 4; round++ {
		got := poolChainRun(t, spec, vals)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("round %d: block %d encoding drifted under pooled reuse", round, i)
			}
		}
	}
}

// TestChainReuseAcrossGeometries: pooled blocks are only reused when their
// geometry matches the requested spec; a chain asking for different
// parameters right after a release must not inherit the stale shape.
func TestChainReuseAcrossGeometries(t *testing.T) {
	vals := make([]int64, 5_000)
	for i := range vals {
		vals[i] = int64(i % 701)
	}
	// Warm the pools with one geometry, then run a different one twice —
	// the first of the pair misses the pool, the second reuses the first's
	// release. Both must agree.
	poolChainRun(t, ChainSpec{NDVPrecision: 12, HeavyK: 32, WindowW: 128}, vals)
	other := ChainSpec{NDVPrecision: 9, HeavyK: 8, WindowW: 16}
	want := poolChainRun(t, other, vals)
	got := poolChainRun(t, other, vals)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("block %d encoding depends on pool history across geometries", i)
		}
	}
}

// TestChainReuseAfterDegradedRelease: a chain that took sketch faults
// (degraded and retired blocks) releases state in an unusual shape — a
// retired HLL's dense file parked in denseSpare, degraded flags set. The
// next chain built over that state must be indistinguishable from clean.
func TestChainReuseAfterDegradedRelease(t *testing.T) {
	spec := ChainSpec{NDVPrecision: 10, HeavyK: 16, WindowW: 64}
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = int64((i * 37) % 4096)
	}
	want := poolChainRun(t, spec, vals)

	dirty := NewChain(spec)
	dirty.PushAll(vals[:4_000])
	for _, b := range dirty.Blocks() {
		b.MarkDegraded()
	}
	dirty.Release()

	got := poolChainRun(t, spec, vals)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("block %d encoding drifted after a degraded chain's release", i)
		}
	}
}
