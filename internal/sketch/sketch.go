// Package sketch generalises the side path into the paper's daisy chain of
// pluggable statistic blocks: small bounded-state summaries that consume the
// raw value stream as it moves, are cycle-accounted like every other module
// of the simulated accelerator, merge across parallel lanes the way
// core.Binner partial states do, and serialise with a versioned encoding for
// the catalog and the wire.
//
// Where core.Block runs over the *binned* view after the stream has passed,
// a StatBlock here sees every raw value in stream order — the HyperLogLog
// distinct counter, the SpaceSaving heavy-hitter summary, and the
// sliding-window aggregate all need the values themselves, not bin counts.
//
// Every Push carries the value's global stream position (its row ordinal in
// storage order). Positions are what make the parallel path's merge exact:
// pages are distributed across lanes out of order, but a position-tagged
// window can still reconstruct "the last W values of the stream", and the
// other blocks are order-insensitive by construction. Relation pages are
// fully packed (page.Encode), so the position of row k of page p is
// p·capacity + k, which each lane computes locally via SetPos.
//
// A nil *Chain is the disabled configuration and is safe to use everywhere:
// every method degrades to a pointer test, the same "nil IS the no-op
// baseline" discipline as internal/obs and internal/faults.
package sketch

import (
	"fmt"

	"streamhist/internal/faults"
	"streamhist/internal/hwprof"
)

// Kind identifies a StatBlock implementation, both in code and on the wire.
type Kind uint8

// The defined block kinds. Wire encodings carry these values, so they are
// append-only.
const (
	// KindHLL is the HyperLogLog distinct-count sketch.
	KindHLL Kind = 1
	// KindSpaceSaving is the SpaceSaving heavy-hitter summary.
	KindSpaceSaving Kind = 2
	// KindWindow is the bounded-state sliding-window aggregate.
	KindWindow Kind = 3
)

// String names the kind the way the CLIs render it.
func (k Kind) String() string {
	switch k {
	case KindHLL:
		return "hll"
	case KindSpaceSaving:
		return "spacesaving"
	case KindWindow:
		return "window"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// StatBlock is one statistic block of the daisy chain. Implementations hold
// bounded state, accept the raw stream via Push, and must be mergeable: for
// HLL and the window the merged result is *identical* to the serial result
// whatever the lane sharding; for SpaceSaving identity holds exactly when
// capacity covers the distinct count, and the ε = N/k error guarantee is
// preserved under merge otherwise (order-sensitive summaries cannot do
// better; see DESIGN.md).
type StatBlock interface {
	// Kind identifies the implementation.
	Kind() Kind
	// Name is the block's chain name (stable, used for hwprof nodes and
	// metric labels).
	Name() string
	// Push consumes one value at global stream position pos.
	Push(pos, v int64)
	// PushBatch consumes len(vals) values at consecutive stream positions
	// pos, pos+1, …; it is the hot-path form (one devirtualised call per
	// page chunk instead of an interface dispatch per value).
	PushBatch(pos int64, vals []int64)
	// Merge folds another block of the same kind into this one. The other
	// block must not be pushed to afterwards.
	Merge(other StatBlock) error
	// Items is how many values this block consumed (merged lanes included).
	Items() int64
	// Degraded reports that the block's state is suspect: a fault corrupted
	// or retired it mid-stream. A degraded sketch is still served — with the
	// flag, never silently.
	Degraded() bool
	// MarkDegraded sets the degraded flag (fault path; sticky).
	MarkDegraded()
	// MarshalBinary encodes the block with the versioned layout of
	// serialize.go. Encodings of equal state are byte-identical — merged
	// lanes can be compared against a serial run bytewise.
	MarshalBinary() ([]byte, error)
}

// blockBase carries the accounting every block shares.
type blockBase struct {
	items    int64
	degraded bool
}

func (b *blockBase) Items() int64   { return b.items }
func (b *blockBase) Degraded() bool { return b.degraded }
func (b *blockBase) MarkDegraded()  { b.degraded = true }

// absorb folds another base in: consumed counts add, degradation is sticky.
func (b *blockBase) absorb(o *blockBase) {
	b.items += o.items
	b.degraded = b.degraded || o.degraded
}

// Default per-value processing costs, in simulated cycles. Like the Table 2
// chain constants these are model parameters, not measurements: the blocks
// are pipelined beside the Binner, so their cost is a per-value rate charged
// to their own hwprof reason, never a stall of the host stream.
const (
	DefaultHLLCyclesPerValue    = 2
	DefaultHeavyCyclesPerValue  = 4
	DefaultWindowCyclesPerValue = 3
)

// ChainSpec configures a chain. The zero value disables everything (and
// NewChain returns nil — the zero-cost baseline).
type ChainSpec struct {
	// NDVPrecision enables the HyperLogLog block with 2^p registers,
	// 4 ≤ p ≤ 16. 0 disables the block.
	NDVPrecision int
	// HeavyK enables the SpaceSaving block with k counters. 0 disables.
	HeavyK int
	// WindowW enables the sliding-window aggregate over the last W stream
	// values. 0 disables.
	WindowW int
	// Cycles-per-value overrides; 0 means the block's default.
	NDVCyclesPerValue    int64
	HeavyCyclesPerValue  int64
	WindowCyclesPerValue int64
}

// DefaultChainSpec is the serving default: NDV, heavy hitters, and a
// 1024-value window refreshed by every scan.
func DefaultChainSpec() ChainSpec {
	return ChainSpec{NDVPrecision: 12, HeavyK: 16, WindowW: 1024}
}

// Enabled reports whether the spec asks for at least one block.
func (s ChainSpec) Enabled() bool {
	return s.NDVPrecision > 0 || s.HeavyK > 0 || s.WindowW > 0
}

// chainSlot is one block riding the chain plus its lane-local feed state.
type chainSlot struct {
	block StatBlock
	cpv   int64
	// retired: an injected fault detached the block from the stream; it
	// stops consuming (and stops accruing cycles) but is still merged and
	// served, marked Degraded.
	retired bool
}

// Chain is a daisy chain of statistic blocks fed by one lane of the side
// path. It tracks the global stream position, applies the sketch fault
// points at page boundaries, accounts cycles per block, and merges with the
// chains of other lanes at fan-in. All methods are nil-receiver safe.
type Chain struct {
	slots []chainSlot
	pos   int64
	inj   *faults.Injector

	flushed bool
}

// NewChain builds a chain from the spec, or returns nil when the spec
// disables every block — the nil chain is the no-op baseline.
func NewChain(spec ChainSpec) *Chain {
	if !spec.Enabled() {
		return nil
	}
	c := &Chain{}
	cpv := func(override, def int64) int64 {
		if override > 0 {
			return override
		}
		return def
	}
	if spec.NDVPrecision > 0 {
		c.slots = append(c.slots, chainSlot{
			block: pooledHLL(spec.NDVPrecision),
			cpv:   cpv(spec.NDVCyclesPerValue, DefaultHLLCyclesPerValue),
		})
	}
	if spec.HeavyK > 0 {
		c.slots = append(c.slots, chainSlot{
			block: pooledSpaceSaving(spec.HeavyK),
			cpv:   cpv(spec.HeavyCyclesPerValue, DefaultHeavyCyclesPerValue),
		})
	}
	if spec.WindowW > 0 {
		c.slots = append(c.slots, chainSlot{
			block: pooledWindow(spec.WindowW),
			cpv:   cpv(spec.WindowCyclesPerValue, DefaultWindowCyclesPerValue),
		})
	}
	return c
}

// SetFaults wires the sketch injection points (faults.SketchCorrupt,
// faults.SketchRetire) into this chain. They are evaluated at SetPos —
// page boundaries — never per value.
func (c *Chain) SetFaults(inj *faults.Injector) {
	if c != nil {
		c.inj = inj
	}
}

// SetPos repositions the stream cursor (the feeding path calls this with
// pageIndex·pageCapacity at each page boundary) and gives the fault points
// one shot at the chain. A corrupted block keeps consuming but is marked
// Degraded; a retired block detaches from the stream entirely — in both
// cases the histogram path is untouched (fail open, sketch-only blast
// radius).
func (c *Chain) SetPos(pos int64) {
	if c == nil {
		return
	}
	c.pos = pos
	if c.inj == nil {
		return
	}
	if c.inj.Should(faults.SketchCorrupt) {
		i := int(c.inj.Intn(faults.SketchCorrupt, int64(len(c.slots))))
		c.slots[i].block.MarkDegraded()
	}
	if c.inj.Should(faults.SketchRetire) {
		i := int(c.inj.Intn(faults.SketchRetire, int64(len(c.slots))))
		c.slots[i].retired = true
		c.slots[i].block.MarkDegraded()
	}
}

// Pos returns the current stream cursor (tests).
func (c *Chain) Pos() int64 {
	if c == nil {
		return 0
	}
	return c.pos
}

// Push feeds one raw value to every live block and advances the cursor.
func (c *Chain) Push(v int64) {
	if c == nil {
		return
	}
	for i := range c.slots {
		if !c.slots[i].retired {
			c.slots[i].block.Push(c.pos, v)
		}
	}
	c.pos++
}

// PushAll feeds a batch of values at consecutive stream positions,
// block-major: each live block consumes the whole batch in one call instead
// of paying a slot walk and an interface dispatch per value.
func (c *Chain) PushAll(vals []int64) {
	if c == nil || len(vals) == 0 {
		return
	}
	for i := range c.slots {
		if !c.slots[i].retired {
			c.slots[i].block.PushBatch(c.pos, vals)
		}
	}
	c.pos += int64(len(vals))
}

// Release returns every block's state to the package pools for a future
// chain to reuse (pool.go). The chain must not be used afterwards, and
// Release must never be called on a chain whose Blocks() escaped — catalog
// entries and scan results keep the blocks alive.
func (c *Chain) Release() {
	if c == nil {
		return
	}
	for i := range c.slots {
		releaseBlock(c.slots[i].block)
		c.slots[i] = chainSlot{}
	}
	c.slots = nil
}

// Merge folds another lane's chain into this one, blockwise. Both chains
// must come from the same spec. The other chain must not be fed afterwards.
func (c *Chain) Merge(other *Chain) error {
	if c == nil || other == nil {
		return nil
	}
	if len(c.slots) != len(other.slots) {
		return fmt.Errorf("sketch: merging chains with %d and %d blocks", len(c.slots), len(other.slots))
	}
	for i := range c.slots {
		if err := c.slots[i].block.Merge(other.slots[i].block); err != nil {
			return err
		}
	}
	return nil
}

// TotalCycles is the chain's simulated processing cost: Σ items·cpv per
// block. The products are integer, so profile attribution is exact by
// construction — no rounding residue to force anywhere.
func (c *Chain) TotalCycles() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.slots {
		total += c.slots[i].block.Items() * c.slots[i].cpv
	}
	return total
}

// Charge publishes the chain's cycle attribution to the profiler under the
// given lane frame, one node per block with the sketch reason, exactly once
// (Finish paths can run more than once; merged chains were already folded
// into this one's items). The node values sum exactly to TotalCycles.
func (c *Chain) Charge(p *hwprof.Profiler, lane string) {
	if c == nil || p == nil || c.flushed {
		return
	}
	c.flushed = true
	for i := range c.slots {
		b := c.slots[i].block
		n := p.Node(lane, "sketch", b.Name(), hwprof.ReasonSketch)
		n.Add(b.Items() * c.slots[i].cpv)
		n.AddEvents(b.Items())
	}
}

// MarkDegraded flags every block (e.g. when the surrounding scan's side
// path is known incomplete — quarantined pages, lost frames).
func (c *Chain) MarkDegraded() {
	if c == nil {
		return
	}
	for i := range c.slots {
		c.slots[i].block.MarkDegraded()
	}
}

// Blocks returns the chain's blocks in chain order.
func (c *Chain) Blocks() Blocks {
	if c == nil {
		return nil
	}
	out := make(Blocks, len(c.slots))
	for i := range c.slots {
		out[i] = c.slots[i].block
	}
	return out
}

// Retired counts blocks detached from the stream by faults.
func (c *Chain) Retired() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.slots {
		if c.slots[i].retired {
			n++
		}
	}
	return n
}

// Blocks is a set of statistic blocks (a chain's output, a catalog entry's
// sketches, a STATS response) with typed accessors.
type Blocks []StatBlock

// HLL returns the first HyperLogLog block, or nil.
func (bs Blocks) HLL() *HLL {
	for _, b := range bs {
		if h, ok := b.(*HLL); ok {
			return h
		}
	}
	return nil
}

// Heavy returns the first SpaceSaving block, or nil.
func (bs Blocks) Heavy() *SpaceSaving {
	for _, b := range bs {
		if s, ok := b.(*SpaceSaving); ok {
			return s
		}
	}
	return nil
}

// Window returns the first sliding-window block, or nil.
func (bs Blocks) Window() *Window {
	for _, b := range bs {
		if w, ok := b.(*Window); ok {
			return w
		}
	}
	return nil
}

// NDVEstimate returns the HLL distinct-count estimate when an HLL block is
// present and healthy enough to trust its items (a degraded block still
// reports, the caller decides).
func (bs Blocks) NDVEstimate() (float64, bool) {
	h := bs.HLL()
	if h == nil {
		return 0, false
	}
	return h.Estimate(), true
}
