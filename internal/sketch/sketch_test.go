package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"streamhist/internal/faults"
	"streamhist/internal/hwprof"
)

// --- HLL ---

func TestHLLEmpty(t *testing.T) {
	h := NewHLL(12)
	if got := h.Estimate(); got != 0 {
		t.Fatalf("empty HLL estimate = %v, want 0", got)
	}
	if h.Items() != 0 {
		t.Fatalf("empty HLL items = %d", h.Items())
	}
	if !h.Sparse() {
		t.Fatal("empty HLL should be sparse")
	}
}

func TestHLLSingleValue(t *testing.T) {
	h := NewHLL(12)
	for i := 0; i < 1000; i++ {
		h.Push(int64(i), 42)
	}
	est := h.Estimate()
	if est < 0.5 || est > 1.5 {
		t.Fatalf("single-value HLL estimate = %v, want ~1", est)
	}
	if h.Items() != 1000 {
		t.Fatalf("items = %d, want 1000", h.Items())
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 10_000, 200_000} {
		h := NewHLL(12)
		for i := 0; i < n; i++ {
			h.Push(int64(i), int64(i))
		}
		est := h.Estimate()
		// Standard error for p=12 is ~1.04/sqrt(4096) ≈ 1.6%; allow 5σ.
		tol := 0.09 * float64(n)
		if math.Abs(est-float64(n)) > tol {
			t.Errorf("n=%d: estimate %v off by more than %v", n, est, tol)
		}
	}
}

func TestHLLMergeWithEmpty(t *testing.T) {
	h := NewHLL(10)
	for i := 0; i < 5000; i++ {
		h.Push(int64(i), int64(i%777))
	}
	before, _ := h.MarshalBinary()
	beforeItems := h.Items()

	if err := h.Merge(NewHLL(10)); err != nil {
		t.Fatal(err)
	}
	after, _ := h.MarshalBinary()
	if !bytes.Equal(before, after) {
		t.Fatal("merging an empty HLL changed register state")
	}
	if h.Items() != beforeItems {
		t.Fatalf("merging empty changed items: %d -> %d", beforeItems, h.Items())
	}

	// The other direction: empty.Merge(full) must equal full.
	empty := NewHLL(10)
	if err := empty.Merge(h); err != nil {
		t.Fatal(err)
	}
	got, _ := empty.MarshalBinary()
	if !bytes.Equal(got, after) {
		t.Fatal("empty.Merge(full) is not byte-identical to full")
	}
}

func TestHLLSparseDenseBoundary(t *testing.T) {
	// p=4 → m=16 registers, promotion threshold m/8 = 2 touched registers:
	// the boundary is crossed almost immediately, exercising both paths.
	h := NewHLL(4)
	if !h.Sparse() {
		t.Fatal("fresh HLL not sparse")
	}
	var crossed bool
	for i := 0; i < 1000; i++ {
		h.Push(int64(i), int64(i))
		if !h.Sparse() {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Fatal("HLL never promoted to dense")
	}

	// A sparse and a dense sketch over the same values must estimate alike:
	// run the same stream into a big-p (stays sparse) and verify a serial
	// sparse sketch merged into a dense one equals the all-serial dense.
	serial := NewHLL(8)
	left := NewHLL(8)
	right := NewHLL(8)
	for i := 0; i < 600; i++ {
		serial.Push(int64(i), int64(i*37))
		if i < 300 {
			left.Push(int64(i), int64(i*37))
		} else {
			right.Push(int64(i), int64(i*37))
		}
	}
	if !serial.Sparse() == false && left.Sparse() {
		// serial promoted; left may still be sparse — exactly the mixed merge
		// we want to cover.
		_ = left
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	want, _ := serial.MarshalBinary()
	got, _ := left.MarshalBinary()
	if !bytes.Equal(want, got) {
		t.Fatal("sparse/dense mixed merge not byte-identical to serial")
	}
}

func TestHLLMergeErrors(t *testing.T) {
	h := NewHLL(10)
	if err := h.Merge(NewHLL(12)); err == nil {
		t.Fatal("merging mismatched precision should fail")
	}
	if err := h.Merge(NewWindow(4)); err == nil {
		t.Fatal("merging wrong kind should fail")
	}
}

func TestHLLPrecisionClamped(t *testing.T) {
	if p := NewHLL(0).Precision(); p != hllMinPrecision {
		t.Fatalf("precision 0 clamped to %d, want %d", p, hllMinPrecision)
	}
	if p := NewHLL(99).Precision(); p != hllMaxPrecision {
		t.Fatalf("precision 99 clamped to %d, want %d", p, hllMaxPrecision)
	}
}

// --- SpaceSaving ---

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := NewSpaceSaving(16)
	freq := map[int64]int64{1: 100, 2: 50, 3: 25, 4: 12}
	pos := int64(0)
	for v, n := range freq {
		for i := int64(0); i < n; i++ {
			s.Push(pos, v)
			pos++
		}
	}
	for v, want := range freq {
		hh, ok := s.Estimate(v)
		if !ok || hh.Count != want || hh.Err != 0 {
			t.Fatalf("value %d: got (%+v, %v), want exact count %d", v, hh, ok, want)
		}
	}
	top := s.Top(2)
	if len(top) != 2 || top[0].Value != 1 || top[1].Value != 2 {
		t.Fatalf("Top(2) = %+v", top)
	}
}

func TestSpaceSavingTiesAtCapacity(t *testing.T) {
	// Fill k=3 counters with one occurrence each — a three-way tie — then
	// push a newcomer. The eviction must be deterministic: ties break toward
	// the LARGEST tracked value.
	s := NewSpaceSaving(3)
	s.Push(0, 10)
	s.Push(1, 20)
	s.Push(2, 30)
	s.Push(3, 40) // evicts 30 (largest value among count-1 ties)

	if _, ok := s.Estimate(30); ok {
		t.Fatal("value 30 should have been evicted (largest of the tied minimums)")
	}
	for _, v := range []int64{10, 20} {
		if _, ok := s.Estimate(v); !ok {
			t.Fatalf("value %d unexpectedly evicted", v)
		}
	}
	hh, ok := s.Estimate(40)
	if !ok || hh.Count != 2 || hh.Err != 1 {
		t.Fatalf("newcomer bounds = %+v, want count 2 err 1", hh)
	}

	// Determinism: the same stream always evicts the same victim.
	for trial := 0; trial < 10; trial++ {
		s2 := NewSpaceSaving(3)
		s2.Push(0, 10)
		s2.Push(1, 20)
		s2.Push(2, 30)
		s2.Push(3, 40)
		b1, _ := s.MarshalBinary()
		b2, _ := s2.MarshalBinary()
		if !bytes.Equal(b1, b2) {
			t.Fatal("tie eviction is not deterministic")
		}
	}
}

func TestSpaceSavingGuaranteeBounds(t *testing.T) {
	// Zipf-ish stream with many more distinct values than counters: the
	// invariant f(v) ≤ Count ≤ f(v) + Err must hold for every tracked value.
	s := NewSpaceSaving(8)
	truth := map[int64]int64{}
	rng := rand.New(rand.NewSource(7))
	var pos int64
	for i := 0; i < 50_000; i++ {
		// Skewed: value j with probability ~ 1/(j+1).
		v := int64(rng.Intn(rng.Intn(100) + 1))
		truth[v]++
		s.Push(pos, v)
		pos++
	}
	for _, hh := range s.Top(0) {
		f := truth[hh.Value]
		if hh.Count < f {
			t.Errorf("value %d: count %d underestimates true %d", hh.Value, hh.Count, f)
		}
		if hh.Count-hh.Err > f {
			t.Errorf("value %d: lower bound %d exceeds true %d", hh.Value, hh.Count-hh.Err, f)
		}
	}
	// Any value with f > N/k is guaranteed tracked.
	threshold := s.Items() / int64(s.Capacity())
	for v, f := range truth {
		if f > threshold {
			if _, ok := s.Estimate(v); !ok {
				t.Errorf("heavy value %d (f=%d > N/k=%d) untracked", v, f, threshold)
			}
		}
	}
}

func TestSpaceSavingMergePreservesGuarantee(t *testing.T) {
	truth := map[int64]int64{}
	shards := make([]*SpaceSaving, 4)
	for i := range shards {
		shards[i] = NewSpaceSaving(8)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40_000; i++ {
		v := int64(rng.Intn(rng.Intn(80) + 1))
		truth[v]++
		shards[i%4].Push(int64(i), v)
	}
	merged := shards[0]
	for _, sh := range shards[1:] {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Items() != 40_000 {
		t.Fatalf("merged items = %d", merged.Items())
	}
	if len(merged.entries) > merged.k {
		t.Fatalf("merge left %d counters, capacity %d", len(merged.entries), merged.k)
	}
	for _, hh := range merged.Top(0) {
		f := truth[hh.Value]
		if hh.Count < f || hh.Count-hh.Err > f {
			t.Errorf("after merge, value %d: bounds [%d, %d] miss true %d",
				hh.Value, hh.Count-hh.Err, hh.Count, f)
		}
	}
}

func TestSpaceSavingMergeIdenticalWhenUnderCapacity(t *testing.T) {
	serial := NewSpaceSaving(64)
	a := NewSpaceSaving(64)
	b := NewSpaceSaving(64)
	for i := 0; i < 10_000; i++ {
		v := int64(i % 40) // 40 distinct < 64 capacity
		serial.Push(int64(i), v)
		if i%2 == 0 {
			a.Push(int64(i), v)
		} else {
			b.Push(int64(i), v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want, _ := serial.MarshalBinary()
	got, _ := a.MarshalBinary()
	if !bytes.Equal(want, got) {
		t.Fatal("under-capacity merge not byte-identical to serial")
	}
}

// --- Window ---

func TestWindowZeroWidth(t *testing.T) {
	w := NewWindow(0)
	for i := 0; i < 100; i++ {
		w.Push(int64(i), int64(i))
	}
	if agg := w.Aggregate(); agg.Count != 0 {
		t.Fatalf("W=0 window aggregated %d values", agg.Count)
	}
	if w.Items() != 100 {
		t.Fatalf("W=0 window items = %d, want 100 (it still consumed the stream)", w.Items())
	}
}

func TestWindowWidthOne(t *testing.T) {
	w := NewWindow(1)
	w.Push(0, 7)
	w.Push(1, -3)
	w.Push(2, 99)
	agg := w.Aggregate()
	if agg.Count != 1 || agg.Sum != 99 || agg.Min != 99 || agg.Max != 99 {
		t.Fatalf("W=1 aggregate = %+v, want the single last value 99", agg)
	}
	// Out-of-order positions: the LAST stream position wins, not arrival.
	w2 := NewWindow(1)
	w2.Push(5, 50)
	w2.Push(2, 20) // earlier position, must not displace pos 5
	if agg := w2.Aggregate(); agg.Sum != 50 {
		t.Fatalf("W=1 out-of-order aggregate = %+v, want value at pos 5", agg)
	}
}

func TestWindowWiderThanStream(t *testing.T) {
	w := NewWindow(1000)
	var sum int64
	for i := 0; i < 10; i++ {
		w.Push(int64(i), int64(i*i))
		sum += int64(i * i)
	}
	agg := w.Aggregate()
	if agg.Count != 10 || agg.Sum != sum || agg.Min != 0 || agg.Max != 81 {
		t.Fatalf("wide window aggregate = %+v", agg)
	}
}

func TestWindowSlides(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 10; i++ {
		w.Push(int64(i), int64(i))
	}
	agg := w.Aggregate()
	if agg.Count != 3 || agg.Sum != 7+8+9 || agg.Min != 7 || agg.Max != 9 {
		t.Fatalf("sliding aggregate = %+v, want last three {7,8,9}", agg)
	}
}

func TestWindowMergeEqualsSerial(t *testing.T) {
	// Shard a stream across lanes in round-robin (worst case for ordering)
	// and check the merged window is byte-identical to the serial one.
	const n, wWidth, lanes = 5000, 128, 7
	serial := NewWindow(wWidth)
	shards := make([]*Window, lanes)
	for i := range shards {
		shards[i] = NewWindow(wWidth)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		v := rng.Int63n(1 << 40)
		serial.Push(int64(i), v)
		shards[i%lanes].Push(int64(i), v)
	}
	merged := shards[0]
	for _, sh := range shards[1:] {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := serial.MarshalBinary()
	got, _ := merged.MarshalBinary()
	if !bytes.Equal(want, got) {
		t.Fatal("merged window not byte-identical to serial")
	}
}

// --- Chain ---

func TestNilChainIsSafe(t *testing.T) {
	var c *Chain
	c.SetPos(10)
	c.Push(1)
	c.PushAll([]int64{1, 2, 3})
	c.SetFaults(nil)
	c.Charge(nil, "lane")
	c.MarkDegraded()
	if err := c.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if c.TotalCycles() != 0 || c.Pos() != 0 || c.Retired() != 0 || c.Blocks() != nil {
		t.Fatal("nil chain leaked state")
	}
}

func TestNewChainDisabledSpecIsNil(t *testing.T) {
	if NewChain(ChainSpec{}) != nil {
		t.Fatal("zero spec should produce a nil chain")
	}
	if !DefaultChainSpec().Enabled() {
		t.Fatal("default spec should be enabled")
	}
	if c := NewChain(DefaultChainSpec()); c == nil || len(c.Blocks()) != 3 {
		t.Fatal("default chain should carry three blocks")
	}
}

func TestChainCycleAccounting(t *testing.T) {
	c := NewChain(ChainSpec{NDVPrecision: 8, HeavyK: 4, WindowW: 16})
	c.PushAll([]int64{1, 2, 3, 4, 5})
	want := int64(5) * (DefaultHLLCyclesPerValue + DefaultHeavyCyclesPerValue + DefaultWindowCyclesPerValue)
	if got := c.TotalCycles(); got != want {
		t.Fatalf("TotalCycles = %d, want %d", got, want)
	}

	prof := hwprof.New()
	c.Charge(prof, "merged")
	if got := prof.TotalCycles(); got != want {
		t.Fatalf("profiled cycles = %d, want %d", got, want)
	}
	// Charge is flush-once: a second call must not double the profile.
	c.Charge(prof, "merged")
	if got := prof.TotalCycles(); got != want {
		t.Fatalf("double Charge inflated profile to %d", got)
	}
}

func TestChainCyclesPerValueOverride(t *testing.T) {
	c := NewChain(ChainSpec{NDVPrecision: 8, NDVCyclesPerValue: 10})
	c.PushAll(make([]int64, 7))
	if got := c.TotalCycles(); got != 70 {
		t.Fatalf("override cycles = %d, want 70", got)
	}
}

func TestChainMergeEqualsSerialAcrossPositions(t *testing.T) {
	// Two lanes fed disjoint page ranges via SetPos must merge to the serial
	// chain over the concatenated stream.
	spec := ChainSpec{NDVPrecision: 10, HeavyK: 32, WindowW: 64}
	serial := NewChain(spec)
	laneA := NewChain(spec)
	laneB := NewChain(spec)

	rng := rand.New(rand.NewSource(17))
	vals := make([]int64, 2000)
	for i := range vals {
		vals[i] = rng.Int63n(25) // few distinct → SpaceSaving exact too
	}
	serial.PushAll(vals)

	// Lane B gets the SECOND half first (out-of-order delivery).
	laneB.SetPos(1000)
	laneB.PushAll(vals[1000:])
	laneA.SetPos(0)
	laneA.PushAll(vals[:1000])
	if err := laneA.Merge(laneB); err != nil {
		t.Fatal(err)
	}

	sb := serial.Blocks()
	mb := laneA.Blocks()
	for i := range sb {
		want, _ := sb[i].MarshalBinary()
		got, _ := mb[i].MarshalBinary()
		if !bytes.Equal(want, got) {
			t.Errorf("block %s: merged ≠ serial", sb[i].Name())
		}
	}
}

func TestChainMergeMismatchedSpecs(t *testing.T) {
	a := NewChain(ChainSpec{NDVPrecision: 10})
	b := NewChain(ChainSpec{NDVPrecision: 10, HeavyK: 4})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging chains of different shapes should fail")
	}
}

func TestChainFaultPoints(t *testing.T) {
	// A chain wired to an injector firing sketch faults at every page
	// boundary must mark blocks degraded / retire them — and a retired block
	// stops consuming — without ever touching the others' correctness.
	inj := faults.New(1, faults.Profile{
		faults.SketchCorrupt: 1.0,
		faults.SketchRetire:  1.0,
	})
	c := NewChain(DefaultChainSpec())
	c.SetFaults(inj)
	c.SetPos(0) // boundary: both fault points fire
	c.PushAll([]int64{1, 2, 3})

	if c.Retired() == 0 {
		t.Fatal("retire fault at rate 1.0 retired nothing")
	}
	degraded := 0
	for _, b := range c.Blocks() {
		if b.Degraded() {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("corrupt fault at rate 1.0 degraded nothing")
	}
	// Retired blocks consumed nothing; live blocks consumed everything.
	for _, b := range c.Blocks() {
		if b.Items() != 0 && b.Items() != 3 {
			t.Fatalf("block %s consumed %d of 3 values", b.Name(), b.Items())
		}
	}
}

func TestChainMergeOfRetiredLanePartials(t *testing.T) {
	// Lane B's blocks all retire mid-stream (partial state); merging the
	// partial into lane A must keep A's data, flag degradation, and never
	// crash — the fail-open posture.
	spec := ChainSpec{NDVPrecision: 10, HeavyK: 8, WindowW: 32}
	laneA := NewChain(spec)
	laneB := NewChain(spec)

	laneA.SetPos(0)
	for i := 0; i < 500; i++ {
		laneA.Push(int64(i % 13))
	}
	laneB.SetPos(500)
	for i := 0; i < 250; i++ {
		laneB.Push(int64(i % 13))
	}
	// Retire blocks in lane B halfway: each page boundary retires one
	// randomly chosen block with certainty (which block is up to the
	// injector's stream, and repeats can hit the same slot).
	inj := faults.New(1, faults.Profile{faults.SketchRetire: 1.0})
	laneB.SetFaults(inj)
	for i := 0; i < 4; i++ {
		laneB.SetPos(750)
	}
	if laneB.Retired() == 0 {
		t.Fatal("retire at rate 1.0 left every block attached")
	}
	retired := make([]bool, len(laneB.Blocks()))
	for i, b := range laneB.Blocks() {
		retired[i] = b.Degraded() // only retirement degrades here
	}
	for i := 0; i < 250; i++ {
		laneB.Push(0) // retired blocks must ignore this
	}

	if err := laneA.Merge(laneB); err != nil {
		t.Fatal(err)
	}
	for i, b := range laneA.Blocks() {
		if retired[i] {
			if !b.Degraded() {
				t.Errorf("block %s lost the degraded flag through merge", b.Name())
			}
			if b.Items() != 750 {
				t.Errorf("retired block %s items = %d, want 750 (500 + 250 pre-retirement)", b.Name(), b.Items())
			}
		} else {
			if b.Items() != 1000 {
				t.Errorf("live block %s items = %d, want 1000", b.Name(), b.Items())
			}
		}
	}
}

func TestBlocksAccessors(t *testing.T) {
	c := NewChain(DefaultChainSpec())
	bs := c.Blocks()
	if bs.HLL() == nil || bs.Heavy() == nil || bs.Window() == nil {
		t.Fatal("default chain missing a block")
	}
	if _, ok := bs.NDVEstimate(); !ok {
		t.Fatal("NDVEstimate not available with an HLL present")
	}
	var empty Blocks
	if empty.HLL() != nil || empty.Heavy() != nil || empty.Window() != nil {
		t.Fatal("empty Blocks returned a block")
	}
	if _, ok := empty.NDVEstimate(); ok {
		t.Fatal("empty Blocks claimed an NDV estimate")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindHLL: "hll", KindSpaceSaving: "spacesaving", KindWindow: "window", Kind(9): "kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}
