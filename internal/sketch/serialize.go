package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Binary serialisation for catalog persistence and the STATS wire, in the
// style of hist/serialize.go. Version 1 is a compact little-endian layout:
//
//	magic   uint16 = 0x4B53 ("SK")
//	version uint8  = 0x01
//	kind    uint8  (Kind)
//	flags   uint8  (bit 0: Degraded)
//	items   uint64
//	payload, per kind:
//	  hll:          precision u8, mode u8 (0 sparse / 1 dense);
//	                sparse: n u32, then n × (idx u32, rank u8), idx ascending
//	                dense:  m u32, then m register bytes
//	  spacesaving:  k u32, n u32, then n × (value, count, err) int64
//	                triples, count descending then value ascending
//	  window:       w u32, n u32, then n × (pos, value) int64 pairs,
//	                pos ascending
//
// Every repeated section is emitted in a canonical order, so two blocks with
// equal state always encode to identical bytes — the property the
// parallel ≡ serial tests compare on. Future layout changes bump the version
// byte; decoders keep reading every older version (the same forward-decode
// discipline as the histogram encoding, pinned by golden files).

const (
	sketchMagic    uint16 = 0x4B53
	sketchVersion1 byte   = 0x01

	sketchFlagDegraded byte = 1 << 0
)

// headerSize is the fixed prefix before the kind payload.
const headerSize = 2 + 1 + 1 + 1 + 8

// ErrCorruptSketch reports an undecodable sketch byte stream.
var ErrCorruptSketch = errors.New("sketch: corrupt serialized sketch")

func appendHeader(out []byte, kind Kind, degraded bool, items int64) []byte {
	out = binary.LittleEndian.AppendUint16(out, sketchMagic)
	out = append(out, sketchVersion1, byte(kind))
	var flags byte
	if degraded {
		flags |= sketchFlagDegraded
	}
	out = append(out, flags)
	return binary.LittleEndian.AppendUint64(out, uint64(items))
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *HLL) MarshalBinary() ([]byte, error) {
	out := appendHeader(make([]byte, 0, headerSize+2+4+int(h.m)), KindHLL, h.degraded, h.items)
	out = append(out, h.p)
	if h.dense != nil {
		out = append(out, 1)
		out = binary.LittleEndian.AppendUint32(out, h.m)
		out = append(out, h.dense...)
		return out, nil
	}
	out = append(out, 0)
	idxs := make([]uint32, 0, len(h.sparse))
	for idx := range h.sparse {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	out = binary.LittleEndian.AppendUint32(out, uint32(len(idxs)))
	for _, idx := range idxs {
		out = binary.LittleEndian.AppendUint32(out, idx)
		out = append(out, h.sparse[idx])
	}
	return out, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *SpaceSaving) MarshalBinary() ([]byte, error) {
	top := s.Top(0)
	out := appendHeader(make([]byte, 0, headerSize+8+24*len(top)), KindSpaceSaving, s.degraded, s.items)
	out = binary.LittleEndian.AppendUint32(out, uint32(s.k))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(top)))
	for _, hh := range top {
		out = binary.LittleEndian.AppendUint64(out, uint64(hh.Value))
		out = binary.LittleEndian.AppendUint64(out, uint64(hh.Count))
		out = binary.LittleEndian.AppendUint64(out, uint64(hh.Err))
	}
	return out, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (w *Window) MarshalBinary() ([]byte, error) {
	es := w.entries()
	out := appendHeader(make([]byte, 0, headerSize+8+16*len(es)), KindWindow, w.degraded, w.items)
	out = binary.LittleEndian.AppendUint32(out, uint32(w.w))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(es)))
	for _, e := range es {
		out = binary.LittleEndian.AppendUint64(out, uint64(e.pos))
		out = binary.LittleEndian.AppendUint64(out, uint64(e.val))
	}
	return out, nil
}

// decoder is a bounds-checked little-endian cursor.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail("truncated u8")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || len(d.buf) < n {
		d.fail("truncated bytes")
		return nil
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorruptSketch, msg)
	}
}

// Decode parses one serialized sketch. It accepts every published version
// (currently only v1); unknown kinds and versions are errors, not guesses.
func Decode(buf []byte) (StatBlock, error) {
	d := &decoder{buf: buf}
	magicBytes := d.bytes(2)
	if d.err != nil {
		return nil, d.err
	}
	if magic := binary.LittleEndian.Uint16(magicBytes); magic != sketchMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorruptSketch, magic)
	}
	version := d.u8()
	kind := Kind(d.u8())
	flags := d.u8()
	items := int64(d.u64())
	if d.err != nil {
		return nil, d.err
	}
	if version != sketchVersion1 {
		return nil, fmt.Errorf("%w: unknown version %#x", ErrCorruptSketch, version)
	}
	if flags&^sketchFlagDegraded != 0 {
		return nil, fmt.Errorf("%w: bad flags %#x", ErrCorruptSketch, flags)
	}
	if items < 0 {
		return nil, fmt.Errorf("%w: negative item count", ErrCorruptSketch)
	}

	var b StatBlock
	switch kind {
	case KindHLL:
		b = decodeHLL(d)
	case KindSpaceSaving:
		b = decodeSpaceSaving(d)
	case KindWindow:
		b = decodeWindow(d)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorruptSketch, uint8(kind))
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSketch, len(d.buf))
	}
	switch blk := b.(type) {
	case *HLL:
		blk.items = items
		blk.degraded = flags&sketchFlagDegraded != 0
	case *SpaceSaving:
		blk.items = items
		blk.degraded = flags&sketchFlagDegraded != 0
	case *Window:
		blk.items = items
		blk.degraded = flags&sketchFlagDegraded != 0
	}
	return b, nil
}

func decodeHLL(d *decoder) *HLL {
	p := d.u8()
	mode := d.u8()
	if d.err != nil {
		return nil
	}
	if p < hllMinPrecision || p > hllMaxPrecision {
		d.fail(fmt.Sprintf("hll precision %d out of range", p))
		return nil
	}
	h := NewHLL(int(p))
	maxRank := uint8(64 - p + 1)
	switch mode {
	case 0:
		n := d.u32()
		if d.err == nil && n > h.m {
			d.fail("hll sparse count exceeds register file")
			return nil
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			idx := d.u32()
			rank := d.u8()
			if d.err != nil {
				break
			}
			if idx >= h.m || rank == 0 || rank > maxRank {
				d.fail("hll sparse entry out of range")
				break
			}
			h.sparse[idx] = rank
		}
	case 1:
		m := d.u32()
		if d.err == nil && m != h.m {
			d.fail("hll dense register count mismatch")
			return nil
		}
		regs := d.bytes(int(m))
		if d.err != nil {
			return nil
		}
		h.dense = make([]uint8, m)
		copy(h.dense, regs)
		h.sparse = nil
		for _, r := range h.dense {
			if r > maxRank {
				d.fail("hll dense register out of range")
				break
			}
		}
	default:
		d.fail("hll unknown representation")
	}
	return h
}

func decodeSpaceSaving(d *decoder) *SpaceSaving {
	k := d.u32()
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if k == 0 || k > 1<<20 || n > k {
		d.fail("spacesaving geometry out of range")
		return nil
	}
	s := NewSpaceSaving(int(k))
	for i := uint32(0); i < n && d.err == nil; i++ {
		v := int64(d.u64())
		count := int64(d.u64())
		errBound := int64(d.u64())
		if d.err != nil {
			break
		}
		if count < 0 || errBound < 0 || errBound > count {
			d.fail("spacesaving counter out of range")
			break
		}
		if _, dup := s.index[v]; dup {
			d.fail("spacesaving duplicate value")
			break
		}
		s.insertRaw(v, count, errBound)
	}
	return s
}

func decodeWindow(d *decoder) *Window {
	wcap := d.u32()
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if wcap > 1<<24 || n > wcap {
		d.fail("window geometry out of range")
		return nil
	}
	w := NewWindow(int(wcap))
	lastPos := int64(-1)
	for i := uint32(0); i < n && d.err == nil; i++ {
		pos := int64(d.u64())
		val := int64(d.u64())
		if d.err != nil {
			break
		}
		if pos <= lastPos {
			d.fail("window positions not strictly ascending")
			break
		}
		lastPos = pos
		w.h = append(w.h, winEntry{pos: pos, val: val})
		w.seen = true
	}
	// Restore the heap invariant over the sorted entries (already valid for
	// a min-heap, but heap.Init keeps this robust against layout changes).
	if len(w.h) > 1 {
		for i := len(w.h)/2 - 1; i >= 0; i-- {
			siftDown(w.h, i)
		}
	}
	return w
}

// siftDown restores the min-heap property at index i.
func siftDown(h posHeap, i int) {
	n := len(h)
	for {
		l, r, smallest := 2*i+1, 2*i+2, i
		if l < n && h[l].pos < h[smallest].pos {
			smallest = l
		}
		if r < n && h[r].pos < h[smallest].pos {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// DecodeBlocks parses a list of serialized sketches.
func DecodeBlocks(raws [][]byte) (Blocks, error) {
	if len(raws) == 0 {
		return nil, nil
	}
	out := make(Blocks, 0, len(raws))
	for i, raw := range raws {
		b, err := Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("sketch %d: %w", i, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// EncodeBlocks serialises a list of sketches.
func EncodeBlocks(bs Blocks) ([][]byte, error) {
	if len(bs) == 0 {
		return nil, nil
	}
	out := make([][]byte, 0, len(bs))
	for _, b := range bs {
		raw, err := b.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = append(out, raw)
	}
	return out, nil
}
