package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog distinct-count sketch with the classic sparse→dense
// promotion: while few registers are touched the sketch stores (index, rank)
// pairs in a map, and once the map outgrows an eighth of the register file
// it promotes to the dense 2^p-byte array. Register state is a pointwise
// maximum, so merge is commutative and associative and the merged sketch is
// byte-identical to the serial one under any lane sharding.
type HLL struct {
	blockBase
	p uint8  // precision: 2^p registers
	m uint32 // register count

	sparse map[uint32]uint8 // idx → max rank; nil once dense
	dense  []uint8
	// denseSpare is a retired register file kept across pooled reuse so a
	// re-promoted sketch does not reallocate (see pool.go).
	denseSpare []uint8
}

// hllMinPrecision..hllMaxPrecision bound the register file: 16 registers to
// 64 Ki registers.
const (
	hllMinPrecision = 4
	hllMaxPrecision = 16
)

// clampPrecision bounds p into [hllMinPrecision, hllMaxPrecision].
func clampPrecision(precision int) int {
	if precision < hllMinPrecision {
		precision = hllMinPrecision
	}
	if precision > hllMaxPrecision {
		precision = hllMaxPrecision
	}
	return precision
}

// NewHLL returns a sketch with 2^p registers, clamping p into [4, 16].
func NewHLL(precision int) *HLL {
	precision = clampPrecision(precision)
	return &HLL{
		p:      uint8(precision),
		m:      1 << precision,
		sparse: make(map[uint32]uint8, 1<<precision/8+1),
	}
}

// Kind implements StatBlock.
func (h *HLL) Kind() Kind { return KindHLL }

// Name implements StatBlock.
func (h *HLL) Name() string { return "hll" }

// Precision returns p (tests, rendering).
func (h *HLL) Precision() int { return int(h.p) }

// Sparse reports whether the sketch is still in its sparse representation.
func (h *HLL) Sparse() bool { return h.sparse != nil }

// hashValue mixes a column value into 64 well-distributed bits (the
// splitmix64 finaliser — the same mixer the fault injector's streams use).
func hashValue(v int64) uint64 {
	x := uint64(v) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Push implements StatBlock. The stream position is irrelevant to a
// distinct count; the signature is the chain's uniform contract.
func (h *HLL) Push(_, v int64) {
	h.items++
	h.observe(v)
}

// PushBatch implements StatBlock. The position argument is irrelevant to a
// distinct count.
func (h *HLL) PushBatch(_ int64, vals []int64) {
	h.items += int64(len(vals))
	for _, v := range vals {
		h.observe(v)
	}
}

func (h *HLL) observe(v int64) {
	x := hashValue(v)
	idx := uint32(x >> (64 - h.p))
	rest := x << h.p
	var rank uint8
	if rest == 0 {
		rank = uint8(64 - h.p + 1)
	} else {
		rank = uint8(bits.LeadingZeros64(rest)) + 1
	}
	h.set(idx, rank)
}

func (h *HLL) set(idx uint32, rank uint8) {
	if h.dense != nil {
		if rank > h.dense[idx] {
			h.dense[idx] = rank
		}
		return
	}
	if rank > h.sparse[idx] {
		h.sparse[idx] = rank
	}
	if uint32(len(h.sparse)) > h.m/8 {
		h.promote()
	}
}

// promote moves the sparse pairs into the dense register file, reusing a
// pooled spare file when one is available.
func (h *HLL) promote() {
	if uint32(len(h.denseSpare)) == h.m {
		h.dense = h.denseSpare
		h.denseSpare = nil
		clear(h.dense)
	} else {
		h.dense = make([]uint8, h.m)
	}
	for idx, rank := range h.sparse {
		h.dense[idx] = rank
	}
	h.sparse = nil
}

// register reads one register in either representation.
func (h *HLL) register(idx uint32) uint8 {
	if h.dense != nil {
		return h.dense[idx]
	}
	return h.sparse[idx]
}

// Estimate returns the distinct-count estimate: the standard bias-corrected
// harmonic mean, with linear counting below 2.5·m where raw HLL is biased.
func (h *HLL) Estimate() float64 {
	m := float64(h.m)
	var sum float64
	var zeros float64
	for idx := uint32(0); idx < h.m; idx++ {
		r := h.register(idx)
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	raw := alpha(h.m) * m * m / sum
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/zeros)
	}
	return raw
}

// alpha is the HyperLogLog bias-correction constant for m registers.
func alpha(m uint32) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge implements StatBlock: registers take the pointwise maximum, which
// is exactly what a serial run over the union of the streams would hold.
func (h *HLL) Merge(other StatBlock) error {
	o, ok := other.(*HLL)
	if !ok {
		return fmt.Errorf("sketch: merging %s into hll", other.Kind())
	}
	if o.p != h.p {
		return fmt.Errorf("sketch: merging hll precision %d into %d", o.p, h.p)
	}
	if o.dense != nil {
		if h.dense == nil {
			h.promote()
		}
		for idx, rank := range o.dense {
			if rank > h.dense[idx] {
				h.dense[idx] = rank
			}
		}
	} else {
		for idx, rank := range o.sparse {
			h.set(idx, rank)
		}
	}
	h.absorb(&o.blockBase)
	return nil
}
