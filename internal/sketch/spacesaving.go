package sketch

import (
	"fmt"
	"sort"
)

// SpaceSaving is the k-counter heavy-hitter summary (Metwally et al.): every
// tracked value v carries an over-estimate Count with a per-entry error
// bound, maintaining
//
//	f(v) ≤ Count(v) ≤ f(v) + Err(v)
//
// for the true frequency f, and any value with f(v) > N/k is guaranteed to
// be tracked. Merging sums counters pairwise — a value absent from one side
// is charged that side's minimum count into both Count and Err, since an
// untracked value may have occurred up to min times there — then truncates
// back to the k largest. Each side's minimum is at most N_i/k, so the merged
// ε = N/k error bound survives (the mergeable-summaries result).
//
// Unlike HLL and the window, a merged SpaceSaving summary is byte-identical
// to the serial one only when capacity covers the distinct count (then no
// eviction ever fires and every counter is exact). In the approximate regime
// the summary is order-sensitive and identity under resharding is
// information-theoretically impossible — the property tests check the
// guarantees instead, and DESIGN.md spells the distinction out.
//
// The k counters live in a flat entries arena indexed by a value→slot map:
// the steady state (hits and evictions alike) recycles slots in place and
// never allocates, which is what lets the summary ride the hot side path.
type SpaceSaving struct {
	blockBase
	k       int
	entries []ssEntry
	index   map[int64]int32 // value → index into entries
}

// ssEntry is one tracked value's state, stored in the arena.
type ssEntry struct {
	val   int64
	count int64 // over-estimate of the value's frequency
	err   int64 // count − err is a guaranteed lower bound
}

// HeavyHitter is one reported entry.
type HeavyHitter struct {
	Value int64
	// Count over-estimates the value's frequency; Count − Err is a
	// guaranteed lower bound.
	Count int64
	Err   int64
}

// NewSpaceSaving returns a summary with k counters (minimum 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{
		k:       k,
		entries: make([]ssEntry, 0, k),
		index:   make(map[int64]int32, k),
	}
}

// Kind implements StatBlock.
func (s *SpaceSaving) Kind() Kind { return KindSpaceSaving }

// Name implements StatBlock.
func (s *SpaceSaving) Name() string { return "spacesaving" }

// Capacity returns k.
func (s *SpaceSaving) Capacity() int { return s.k }

// Push implements StatBlock. A full summary evicts the minimum counter —
// ties broken toward the largest value, so eviction is deterministic — and
// the newcomer inherits the evicted count as its error bound.
func (s *SpaceSaving) Push(_, v int64) {
	s.items++
	if i, ok := s.index[v]; ok {
		s.entries[i].count++
		return
	}
	s.admit(v)
}

// PushBatch implements StatBlock.
func (s *SpaceSaving) PushBatch(_ int64, vals []int64) {
	s.items += int64(len(vals))
	for _, v := range vals {
		if i, ok := s.index[v]; ok {
			s.entries[i].count++
			continue
		}
		s.admit(v)
	}
}

// admit tracks a previously-unseen value, evicting the minimum counter when
// the summary is full. The evicted slot is recycled in place — no
// allocation on the steady-state path.
func (s *SpaceSaving) admit(v int64) {
	if len(s.entries) < s.k {
		s.index[v] = int32(len(s.entries))
		s.entries = append(s.entries, ssEntry{val: v, count: 1})
		return
	}
	min := 0
	for i := 1; i < len(s.entries); i++ {
		e, m := &s.entries[i], &s.entries[min]
		if e.count < m.count || (e.count == m.count && e.val > m.val) {
			min = i
		}
	}
	minCount := s.entries[min].count
	delete(s.index, s.entries[min].val)
	s.entries[min] = ssEntry{val: v, count: minCount + 1, err: minCount}
	s.index[v] = int32(min)
}

// insertRaw installs a counter verbatim (merge spill, decode). Unlike admit
// it may grow the arena past k; Merge truncates afterwards.
func (s *SpaceSaving) insertRaw(v, count, errBound int64) {
	s.index[v] = int32(len(s.entries))
	s.entries = append(s.entries, ssEntry{val: v, count: count, err: errBound})
}

// Top returns up to n entries ordered by count descending, ties by value
// ascending — the same deterministic order the binary encoding uses.
func (s *SpaceSaving) Top(n int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(s.entries))
	for i := range s.entries {
		e := &s.entries[i]
		out = append(out, HeavyHitter{Value: e.val, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Estimate returns the count bounds for one value. ok is false when the
// value is untracked, in which case its true frequency is at most the
// summary's minimum count.
func (s *SpaceSaving) Estimate(v int64) (hh HeavyHitter, ok bool) {
	i, ok := s.index[v]
	if !ok {
		return HeavyHitter{}, false
	}
	e := &s.entries[i]
	return HeavyHitter{Value: e.val, Count: e.count, Err: e.err}, true
}

// minCount returns the summary's minimum tracked count when at capacity, or
// 0 otherwise — the upper bound on any untracked value's true frequency.
func (s *SpaceSaving) minCount() int64 {
	if len(s.entries) < s.k {
		return 0
	}
	min := int64(-1)
	for i := range s.entries {
		if min < 0 || s.entries[i].count < min {
			min = s.entries[i].count
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Merge implements StatBlock: counters for the same value sum (counts and
// error bounds both); a value tracked on only one side also absorbs the
// other side's minimum count into count and error, because the value may
// have occurred up to that many times there before being evicted — without
// this the merged Count could undershoot the true frequency and break the
// f ≤ Count invariant. The summary then truncates back to the k largest
// counts, ties kept toward smaller values. When both sides are under
// capacity the minima are zero and the merge is the exact pairwise sum.
func (s *SpaceSaving) Merge(other StatBlock) error {
	o, ok := other.(*SpaceSaving)
	if !ok {
		return fmt.Errorf("sketch: merging %s into spacesaving", other.Kind())
	}
	if o.k != s.k {
		return fmt.Errorf("sketch: merging spacesaving k=%d into k=%d", o.k, s.k)
	}
	minS, minO := s.minCount(), o.minCount()
	for i := range s.entries {
		e := &s.entries[i]
		if _, shared := o.index[e.val]; !shared {
			e.count += minO
			e.err += minO
		}
	}
	for j := range o.entries {
		oe := &o.entries[j]
		if i, exists := s.index[oe.val]; exists {
			s.entries[i].count += oe.count
			s.entries[i].err += oe.err
		} else {
			s.insertRaw(oe.val, oe.count+minS, oe.err+minS)
		}
	}
	if len(s.entries) > s.k {
		all := s.Top(0)
		s.entries = s.entries[:0]
		clear(s.index)
		for _, hh := range all[:s.k] {
			s.insertRaw(hh.Value, hh.Count, hh.Err)
		}
	}
	s.absorb(&o.blockBase)
	return nil
}
