package sketch

import (
	"fmt"
	"sort"
)

// SpaceSaving is the k-counter heavy-hitter summary (Metwally et al.): every
// tracked value v carries an over-estimate Count with a per-entry error
// bound, maintaining
//
//	f(v) ≤ Count(v) ≤ f(v) + Err(v)
//
// for the true frequency f, and any value with f(v) > N/k is guaranteed to
// be tracked. Merging sums counters pairwise — a value absent from one side
// is charged that side's minimum count into both Count and Err, since an
// untracked value may have occurred up to min times there — then truncates
// back to the k largest. Each side's minimum is at most N_i/k, so the merged
// ε = N/k error bound survives (the mergeable-summaries result).
//
// Unlike HLL and the window, a merged SpaceSaving summary is byte-identical
// to the serial one only when capacity covers the distinct count (then no
// eviction ever fires and every counter is exact). In the approximate regime
// the summary is order-sensitive and identity under resharding is
// information-theoretically impossible — the property tests check the
// guarantees instead, and DESIGN.md spells the distinction out.
type SpaceSaving struct {
	blockBase
	k        int
	counters map[int64]*ssCounter
}

// ssCounter is one tracked value's state.
type ssCounter struct {
	count int64 // over-estimate of the value's frequency
	err   int64 // count − err is a guaranteed lower bound
}

// HeavyHitter is one reported entry.
type HeavyHitter struct {
	Value int64
	// Count over-estimates the value's frequency; Count − Err is a
	// guaranteed lower bound.
	Count int64
	Err   int64
}

// NewSpaceSaving returns a summary with k counters (minimum 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{k: k, counters: make(map[int64]*ssCounter, k)}
}

// Kind implements StatBlock.
func (s *SpaceSaving) Kind() Kind { return KindSpaceSaving }

// Name implements StatBlock.
func (s *SpaceSaving) Name() string { return "spacesaving" }

// Capacity returns k.
func (s *SpaceSaving) Capacity() int { return s.k }

// Push implements StatBlock. A full summary evicts the minimum counter —
// ties broken toward the largest value, so eviction is deterministic — and
// the newcomer inherits the evicted count as its error bound.
func (s *SpaceSaving) Push(_, v int64) {
	s.items++
	if c, ok := s.counters[v]; ok {
		c.count++
		return
	}
	if len(s.counters) < s.k {
		s.counters[v] = &ssCounter{count: 1}
		return
	}
	evict, minCount := int64(0), int64(-1)
	for val, c := range s.counters {
		if minCount < 0 || c.count < minCount || (c.count == minCount && val > evict) {
			evict, minCount = val, c.count
		}
	}
	delete(s.counters, evict)
	s.counters[v] = &ssCounter{count: minCount + 1, err: minCount}
}

// Top returns up to n entries ordered by count descending, ties by value
// ascending — the same deterministic order the binary encoding uses.
func (s *SpaceSaving) Top(n int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(s.counters))
	for v, c := range s.counters {
		out = append(out, HeavyHitter{Value: v, Count: c.count, Err: c.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Estimate returns the count bounds for one value. ok is false when the
// value is untracked, in which case its true frequency is at most the
// summary's minimum count.
func (s *SpaceSaving) Estimate(v int64) (hh HeavyHitter, ok bool) {
	c, ok := s.counters[v]
	if !ok {
		return HeavyHitter{}, false
	}
	return HeavyHitter{Value: v, Count: c.count, Err: c.err}, true
}

// minCount returns the summary's minimum tracked count when at capacity, or
// 0 otherwise — the upper bound on any untracked value's true frequency.
func (s *SpaceSaving) minCount() int64 {
	if len(s.counters) < s.k {
		return 0
	}
	min := int64(-1)
	for _, c := range s.counters {
		if min < 0 || c.count < min {
			min = c.count
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Merge implements StatBlock: counters for the same value sum (counts and
// error bounds both); a value tracked on only one side also absorbs the
// other side's minimum count into count and error, because the value may
// have occurred up to that many times there before being evicted — without
// this the merged Count could undershoot the true frequency and break the
// f ≤ Count invariant. The summary then truncates back to the k largest
// counts, ties kept toward smaller values. When both sides are under
// capacity the minima are zero and the merge is the exact pairwise sum.
func (s *SpaceSaving) Merge(other StatBlock) error {
	o, ok := other.(*SpaceSaving)
	if !ok {
		return fmt.Errorf("sketch: merging %s into spacesaving", other.Kind())
	}
	if o.k != s.k {
		return fmt.Errorf("sketch: merging spacesaving k=%d into k=%d", o.k, s.k)
	}
	minS, minO := s.minCount(), o.minCount()
	for v, c := range s.counters {
		if _, shared := o.counters[v]; !shared {
			c.count += minO
			c.err += minO
		}
	}
	for v, oc := range o.counters {
		if c, exists := s.counters[v]; exists {
			c.count += oc.count
			c.err += oc.err
		} else {
			s.counters[v] = &ssCounter{count: oc.count + minS, err: oc.err + minS}
		}
	}
	if len(s.counters) > s.k {
		all := s.Top(0)
		for _, hh := range all[s.k:] {
			delete(s.counters, hh.Value)
		}
	}
	s.absorb(&o.blockBase)
	return nil
}
