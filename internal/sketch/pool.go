package sketch

import "sync"

// Block-state pools. A scan's parallel side path builds one chain per lane
// and throws all but the merge survivor away; without reuse that is three
// map/slice allocations per lane per scan, plus every buffer the blocks grew
// during the stream. Chain.Release parks the retired blocks here once the
// lane goroutine is joined (and only when the blocks provably did not escape
// into a catalog entry or scan result), and NewChain prefers pooled state
// with matching geometry.
//
// Reset discipline: a reused block must be observationally identical to a
// fresh one — same encoding bytes for the same stream, same degraded flag,
// same sparse/dense representation. The pooled-reuse property tests compare
// a recycled lane against a fresh lane bytewise.
var (
	hllPool sync.Pool
	ssPool  sync.Pool
	winPool sync.Pool
)

// pooledHLL returns a reset pooled sketch when one with the right precision
// is available, else a fresh one.
func pooledHLL(precision int) *HLL {
	if v := hllPool.Get(); v != nil {
		h := v.(*HLL)
		if int(h.p) == clampPrecision(precision) {
			h.reset()
			return h
		}
	}
	return NewHLL(precision)
}

func pooledSpaceSaving(k int) *SpaceSaving {
	if v := ssPool.Get(); v != nil {
		s := v.(*SpaceSaving)
		if s.k == k || (s.k == 1 && k < 1) {
			s.reset()
			return s
		}
	}
	return NewSpaceSaving(k)
}

func pooledWindow(w int) *Window {
	if v := winPool.Get(); v != nil {
		win := v.(*Window)
		if win.w == w || (win.w == 0 && w < 0) {
			win.reset()
			return win
		}
	}
	return NewWindow(w)
}

// releaseBlock parks one block's state for reuse. Geometry mismatches are
// resolved at Get time, so every block kind is accepted here.
func releaseBlock(b StatBlock) {
	switch blk := b.(type) {
	case *HLL:
		hllPool.Put(blk)
	case *SpaceSaving:
		ssPool.Put(blk)
	case *Window:
		winPool.Put(blk)
	}
}

// reset restores the sketch to its freshly-constructed state, keeping the
// grown buffers. A retired dense register file is kept as the spare so a
// later promotion does not reallocate.
func (h *HLL) reset() {
	h.blockBase = blockBase{}
	if h.dense != nil {
		h.denseSpare = h.dense
		h.dense = nil
	}
	if h.sparse == nil {
		h.sparse = make(map[uint32]uint8, h.m/8+1)
	} else {
		clear(h.sparse)
	}
}

func (s *SpaceSaving) reset() {
	s.blockBase = blockBase{}
	s.entries = s.entries[:0]
	clear(s.index)
}

func (w *Window) reset() {
	w.blockBase = blockBase{}
	w.h = w.h[:0]
	w.seen = false
}
