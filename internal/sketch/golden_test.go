package sketch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenFixtures pin every on-wire shape of the v1 sketch encoding: both HLL
// representations, a SpaceSaving summary that has evicted, a partially filled
// window, and a degraded block. Construction is fully deterministic, so the
// bytes are stable across runs and Go versions.
func goldenFixtures() map[string]StatBlock {
	hllSparse := NewHLL(12)
	for i := int64(0); i < 5; i++ {
		hllSparse.Push(i, i*1000)
	}

	hllDense := NewHLL(4) // m=16, promotes after 2 touched registers
	for i := int64(0); i < 64; i++ {
		hllDense.Push(i, i)
	}

	ss := NewSpaceSaving(4)
	for pos, v := range []int64{1, 1, 1, 2, 2, 3, 4, 5} { // 5 evicts a min
		ss.Push(int64(pos), v)
	}

	win := NewWindow(8)
	for i := int64(0); i < 5; i++ {
		win.Push(i, i*i-3)
	}

	winDeg := NewWindow(4)
	for i := int64(0); i < 6; i++ {
		winDeg.Push(i, i)
	}
	winDeg.MarkDegraded()

	return map[string]StatBlock{
		"hll_sparse":      hllSparse,
		"hll_dense":       hllDense,
		"spacesaving":     ss,
		"window_partial":  win,
		"window_degraded": winDeg,
	}
}

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoding drifted from golden file (%d bytes vs %d).\n"+
			"If the format change is intentional, bump the version byte and add a new golden file.",
			name, len(got), len(want))
	}
}

// Every fixture's encoding must match its pinned bytes, decode back to equal
// state, and re-encode to identical bytes (the canonical-order property the
// parallel ≡ serial comparisons rely on).
func TestGoldenRoundTrip(t *testing.T) {
	for name, b := range goldenFixtures() {
		t.Run(name, func(t *testing.T) {
			data, err := b.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			goldenCompare(t, name, data)

			// The version byte sits right after the 2-byte magic.
			if data[2] != sketchVersion1 {
				t.Fatalf("version byte = %#x, want %#x", data[2], sketchVersion1)
			}

			back, err := Decode(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if back.Kind() != b.Kind() || back.Items() != b.Items() || back.Degraded() != b.Degraded() {
				t.Fatalf("round trip lost header state: got (%v,%d,%v) want (%v,%d,%v)",
					back.Kind(), back.Items(), back.Degraded(), b.Kind(), b.Items(), b.Degraded())
			}
			again, err := back.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatal("decode → encode is not byte-identical")
			}
		})
	}
}

// buildV1HLL hand-assembles a v1 sparse HLL payload byte by byte, straight
// from the layout comment in serialize.go — NOT via MarshalBinary. If the
// decoder ever drifts from the spec, this catches it independently of the
// encoder; it is also exactly what "keep reading every older version" means
// once a v2 exists.
func buildV1HLL() []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint16(out, 0x4B53) // magic "SK"
	out = append(out, 0x01)                             // version 1
	out = append(out, 0x01)                             // kind hll
	out = append(out, 0x00)                             // flags: clean
	out = binary.LittleEndian.AppendUint64(out, 3)      // items
	out = append(out, 10)                               // precision
	out = append(out, 0)                                // sparse mode
	out = binary.LittleEndian.AppendUint32(out, 2)      // 2 pairs
	out = binary.LittleEndian.AppendUint32(out, 7)      // idx 7
	out = append(out, 3)                                //   rank 3
	out = binary.LittleEndian.AppendUint32(out, 900)    // idx 900
	out = append(out, 1)                                //   rank 1
	return out
}

func TestGoldenV1ForwardDecode(t *testing.T) {
	raw := buildV1HLL()
	goldenCompare(t, "hll_v1_handbuilt", raw)
	b, err := Decode(raw)
	if err != nil {
		t.Fatalf("hand-built v1 payload rejected: %v", err)
	}
	h, ok := b.(*HLL)
	if !ok {
		t.Fatalf("decoded %T, want *HLL", b)
	}
	if h.Precision() != 10 || h.Items() != 3 || h.Degraded() || !h.Sparse() {
		t.Fatalf("v1 decode drift: p=%d items=%d degraded=%v sparse=%v",
			h.Precision(), h.Items(), h.Degraded(), h.Sparse())
	}
	if h.register(7) != 3 || h.register(900) != 1 {
		t.Fatal("v1 decode lost register state")
	}
}

// Corrupt inputs must error with ErrCorruptSketch, never construct a block.
func TestDecodeRejectsCorruptInput(t *testing.T) {
	valid := buildV1HLL()
	mutate := func(mod func(b []byte) []byte) []byte {
		c := append([]byte(nil), valid...)
		return mod(c)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short_header":   valid[:5],
		"bad_magic":      mutate(func(b []byte) []byte { b[0] = 0xFF; return b }),
		"future_version": mutate(func(b []byte) []byte { b[2] = 0x02; return b }),
		"unknown_kind":   mutate(func(b []byte) []byte { b[3] = 0x77; return b }),
		"bad_flags":      mutate(func(b []byte) []byte { b[5-1] = 0xF0; return b }),
		"truncated_body": valid[:len(valid)-3],
		"trailing_bytes": append(append([]byte(nil), valid...), 0xAA),
		"precision_oob":  mutate(func(b []byte) []byte { b[13] = 99; return b }),
	}
	for name, raw := range cases {
		if _, err := Decode(raw); !errors.Is(err, ErrCorruptSketch) {
			t.Errorf("%s: Decode = %v, want ErrCorruptSketch", name, err)
		}
	}
}

func TestDecodeRejectsInvalidGeometry(t *testing.T) {
	// SpaceSaving with err > count.
	var ss []byte
	ss = binary.LittleEndian.AppendUint16(ss, 0x4B53)
	ss = append(ss, 0x01, 0x02, 0x00)
	ss = binary.LittleEndian.AppendUint64(ss, 10)
	ss = binary.LittleEndian.AppendUint32(ss, 4) // k
	ss = binary.LittleEndian.AppendUint32(ss, 1) // n
	ss = binary.LittleEndian.AppendUint64(ss, 5) // value
	ss = binary.LittleEndian.AppendUint64(ss, 2) // count
	ss = binary.LittleEndian.AppendUint64(ss, 9) // err > count
	if _, err := Decode(ss); !errors.Is(err, ErrCorruptSketch) {
		t.Errorf("err>count accepted: %v", err)
	}

	// Window with positions out of order.
	var w []byte
	w = binary.LittleEndian.AppendUint16(w, 0x4B53)
	w = append(w, 0x01, 0x03, 0x00)
	w = binary.LittleEndian.AppendUint64(w, 2)
	w = binary.LittleEndian.AppendUint32(w, 8) // W
	w = binary.LittleEndian.AppendUint32(w, 2) // n
	w = binary.LittleEndian.AppendUint64(w, 9) // pos 9
	w = binary.LittleEndian.AppendUint64(w, 1)
	w = binary.LittleEndian.AppendUint64(w, 4) // pos 4 < 9
	w = binary.LittleEndian.AppendUint64(w, 2)
	if _, err := Decode(w); !errors.Is(err, ErrCorruptSketch) {
		t.Errorf("unordered window positions accepted: %v", err)
	}
}

func TestEncodeDecodeBlocks(t *testing.T) {
	c := NewChain(ChainSpec{NDVPrecision: 10, HeavyK: 4, WindowW: 8})
	for i := 0; i < 100; i++ {
		c.Push(int64(i % 9))
	}
	raws, err := EncodeBlocks(c.Blocks())
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBlocks(raws)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back.HLL() == nil || back.Heavy() == nil || back.Window() == nil {
		t.Fatalf("DecodeBlocks lost blocks: %d", len(back))
	}
	for i, b := range back {
		want, _ := c.Blocks()[i].MarshalBinary()
		got, _ := b.MarshalBinary()
		if !bytes.Equal(want, got) {
			t.Errorf("block %d not byte-identical after wire round trip", i)
		}
	}
	// Empty in, empty out — the no-sketch wire shape.
	if raws, err := EncodeBlocks(nil); err != nil || raws != nil {
		t.Fatal("EncodeBlocks(nil) should be (nil, nil)")
	}
	if bs, err := DecodeBlocks(nil); err != nil || bs != nil {
		t.Fatal("DecodeBlocks(nil) should be (nil, nil)")
	}
}
