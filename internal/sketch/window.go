package sketch

import (
	"fmt"
)

// Window is the bounded-state sliding-window aggregate: count, sum, min, and
// max over the last W values of the stream. "Last" is defined by the global
// stream position each Push carries, not by arrival order — the parallel
// path delivers pages to lanes out of order (and replays retired lanes'
// chunks late), so the block keeps the W entries with the largest positions
// in a min-heap and evicts by position. Positions are unique per row, which
// makes the kept set — and therefore the merged aggregate — identical to the
// serial path's, whatever the sharding or replay interleaving.
type Window struct {
	blockBase
	w    int
	h    posHeap
	seen bool // at least one value consumed with w > 0
}

// winEntry is one retained (position, value) pair.
type winEntry struct {
	pos int64
	val int64
}

// posHeap is a min-heap on stream position, maintained by the hand-rolled
// siftUp/siftDown below: container/heap would box every winEntry through an
// interface value, and the window's Push is on the side path's hot loop.
type posHeap []winEntry

// siftUp restores the min-heap property after appending at index i.
func siftUp(h posHeap, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].pos <= h[i].pos {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// NewWindow returns a window over the last w values. w = 0 is legal and
// aggregates nothing (count stays 0); w larger than the stream keeps
// everything.
func NewWindow(w int) *Window {
	if w < 0 {
		w = 0
	}
	return &Window{w: w}
}

// Kind implements StatBlock.
func (w *Window) Kind() Kind { return KindWindow }

// Name implements StatBlock.
func (w *Window) Name() string { return "window" }

// W returns the configured window width.
func (w *Window) W() int { return w.w }

// Push implements StatBlock.
func (w *Window) Push(pos, v int64) {
	w.items++
	if w.w == 0 {
		return
	}
	w.seen = true
	w.push1(pos, v)
}

// PushBatch implements StatBlock: value i carries position pos+i.
func (w *Window) PushBatch(pos int64, vals []int64) {
	w.items += int64(len(vals))
	if w.w == 0 || len(vals) == 0 {
		return
	}
	w.seen = true
	for _, v := range vals {
		w.push1(pos, v)
		pos++
	}
}

func (w *Window) push1(pos, v int64) {
	if len(w.h) < w.w {
		w.h = append(w.h, winEntry{pos: pos, val: v})
		siftUp(w.h, len(w.h)-1)
		return
	}
	if pos > w.h[0].pos {
		w.h[0] = winEntry{pos: pos, val: v}
		siftDown(w.h, 0)
	}
}

// Aggregate is the windowed result.
type Aggregate struct {
	// Count is how many values the window holds (min(W, stream length)).
	Count int64
	Sum   int64
	// Min and Max are only meaningful when Count > 0.
	Min, Max int64
}

// Aggregate computes count/sum/min/max over the retained window.
func (w *Window) Aggregate() Aggregate {
	var a Aggregate
	for i, e := range w.h {
		a.Count++
		a.Sum += e.val
		if i == 0 || e.val < a.Min {
			a.Min = e.val
		}
		if i == 0 || e.val > a.Max {
			a.Max = e.val
		}
	}
	return a
}

// entries returns the retained pairs sorted by position (serialization,
// tests). The heap itself stays untouched.
func (w *Window) entries() []winEntry {
	out := make([]winEntry, len(w.h))
	copy(out, w.h)
	sortEntries(out)
	return out
}

func sortEntries(es []winEntry) {
	// Positions are unique, so ordering by pos alone is total.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].pos < es[j-1].pos; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Merge implements StatBlock: the union's W largest positions win, exactly
// reproducing the serial window over the combined stream.
func (w *Window) Merge(other StatBlock) error {
	o, ok := other.(*Window)
	if !ok {
		return fmt.Errorf("sketch: merging %s into window", other.Kind())
	}
	if o.w != w.w {
		return fmt.Errorf("sketch: merging window W=%d into W=%d", o.w, w.w)
	}
	if w.w > 0 {
		for _, e := range o.h {
			w.push1(e.pos, e.val)
		}
	}
	w.seen = w.seen || o.seen
	w.absorb(&o.blockBase)
	return nil
}
