package sketch

import (
	"container/heap"
	"fmt"
)

// Window is the bounded-state sliding-window aggregate: count, sum, min, and
// max over the last W values of the stream. "Last" is defined by the global
// stream position each Push carries, not by arrival order — the parallel
// path delivers pages to lanes out of order (and replays retired lanes'
// chunks late), so the block keeps the W entries with the largest positions
// in a min-heap and evicts by position. Positions are unique per row, which
// makes the kept set — and therefore the merged aggregate — identical to the
// serial path's, whatever the sharding or replay interleaving.
type Window struct {
	blockBase
	w    int
	h    posHeap
	seen bool // at least one value consumed with w > 0
}

// winEntry is one retained (position, value) pair.
type winEntry struct {
	pos int64
	val int64
}

// posHeap is a min-heap on stream position.
type posHeap []winEntry

func (h posHeap) Len() int            { return len(h) }
func (h posHeap) Less(i, j int) bool  { return h[i].pos < h[j].pos }
func (h posHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *posHeap) Push(x any)         { *h = append(*h, x.(winEntry)) }
func (h *posHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewWindow returns a window over the last w values. w = 0 is legal and
// aggregates nothing (count stays 0); w larger than the stream keeps
// everything.
func NewWindow(w int) *Window {
	if w < 0 {
		w = 0
	}
	return &Window{w: w}
}

// Kind implements StatBlock.
func (w *Window) Kind() Kind { return KindWindow }

// Name implements StatBlock.
func (w *Window) Name() string { return "window" }

// W returns the configured window width.
func (w *Window) W() int { return w.w }

// Push implements StatBlock.
func (w *Window) Push(pos, v int64) {
	w.items++
	if w.w == 0 {
		return
	}
	w.seen = true
	if len(w.h) < w.w {
		heap.Push(&w.h, winEntry{pos: pos, val: v})
		return
	}
	if pos > w.h[0].pos {
		w.h[0] = winEntry{pos: pos, val: v}
		heap.Fix(&w.h, 0)
	}
}

// Aggregate is the windowed result.
type Aggregate struct {
	// Count is how many values the window holds (min(W, stream length)).
	Count int64
	Sum   int64
	// Min and Max are only meaningful when Count > 0.
	Min, Max int64
}

// Aggregate computes count/sum/min/max over the retained window.
func (w *Window) Aggregate() Aggregate {
	var a Aggregate
	for i, e := range w.h {
		a.Count++
		a.Sum += e.val
		if i == 0 || e.val < a.Min {
			a.Min = e.val
		}
		if i == 0 || e.val > a.Max {
			a.Max = e.val
		}
	}
	return a
}

// entries returns the retained pairs sorted by position (serialization,
// tests). The heap itself stays untouched.
func (w *Window) entries() []winEntry {
	out := make([]winEntry, len(w.h))
	copy(out, w.h)
	sortEntries(out)
	return out
}

func sortEntries(es []winEntry) {
	// Positions are unique, so ordering by pos alone is total.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].pos < es[j-1].pos; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Merge implements StatBlock: the union's W largest positions win, exactly
// reproducing the serial window over the combined stream.
func (w *Window) Merge(other StatBlock) error {
	o, ok := other.(*Window)
	if !ok {
		return fmt.Errorf("sketch: merging %s into window", other.Kind())
	}
	if o.w != w.w {
		return fmt.Errorf("sketch: merging window W=%d into W=%d", o.w, w.w)
	}
	for _, e := range o.h {
		if len(w.h) < w.w {
			heap.Push(&w.h, e)
		} else if w.w > 0 && e.pos > w.h[0].pos {
			w.h[0] = e
			heap.Fix(&w.h, 0)
		}
	}
	w.seen = w.seen || o.seen
	w.absorb(&o.blockBase)
	return nil
}
