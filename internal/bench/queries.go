package bench

import (
	"fmt"

	"streamhist/internal/dbms"
	"streamhist/internal/table"
	"streamhist/internal/tpch"
)

// Fig1Config scales the §2 motivating experiment. The paper runs lineitem
// at SF10 (60M rows) with the price-2001 spike inflated to 120k rows; the
// default here is a 1/20 replica, which preserves the spike fraction and
// the plan-choice mechanics while executing in seconds.
type Fig1Config struct {
	LineitemRows int
	CustomerRows int
	SpikeRows    int
	XValues      []int64
}

// DefaultFig1Config returns the 1/20-scale replica.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{
		LineitemRows: 3_000_000,
		CustomerRows: 150_000,
		SpikeRows:    6_000,
		XValues:      []int64{2000, 5000, 10000, 20000},
	}
}

const spikePriceCents = 200100 // the "2001" price literal, in cents

// Fig1 reproduces Figure 1: Q1 join time as a function of x, with accurate
// versus outdated statistics. Both configurations run the same real
// executor; only the catalog contents differ, so the gap is genuinely the
// cost of the mis-planned join.
func Fig1(cfg Fig1Config) *Report {
	r := &Report{
		ID:      "fig1",
		Title:   "Effect of fresh statistics on query plans (Q1 join time)",
		Columns: []string{"x (line 10 of Q1)", "accurate stats", "plan", "outdated stats", "plan", "slowdown"},
	}
	db := dbms.NewDatabase(dbms.DBx())
	db.AddTable(tpch.Lineitem(cfg.LineitemRows, 10, 61))
	db.AddTable(tpch.Customer(cfg.CustomerRows, 62))

	// Stats gathered BEFORE the update: the "outdated" catalog.
	mustGather(db, "lineitem", "l_extendedprice")
	mustGather(db, "customer", "c_custkey")
	db.MutateColumn("lineitem", func(rel *table.Relation) {
		tpch.InflateValue(rel, "l_extendedprice", spikePriceCents, cfg.SpikeRows, 63)
	})
	staleEst := db.Catalog.EstimateEquals("lineitem", "l_extendedprice", spikePriceCents)

	type point struct {
		stale, fresh *dbms.Q1Result
	}
	points := make([]point, 0, len(cfg.XValues))
	for _, x := range cfg.XValues {
		res := dbms.RunQ1(db, dbms.Q1Params{Price: spikePriceCents, KeyLimit: x})
		points = append(points, point{stale: res})
	}

	// Refresh the statistics (what the accelerator would have done for
	// free on the next scan) and rerun.
	mustGather(db, "lineitem", "l_extendedprice")
	freshEst := db.Catalog.EstimateEquals("lineitem", "l_extendedprice", spikePriceCents)
	for i, x := range cfg.XValues {
		points[i].fresh = dbms.RunQ1(db, dbms.Q1Params{Price: spikePriceCents, KeyLimit: x})
	}

	for i, x := range cfg.XValues {
		st, fr := points[i].stale, points[i].fresh
		slow := float64(st.JoinTime) / float64(fr.JoinTime)
		r.AddRaw("fresh", fr.JoinTime.Seconds())
		r.AddRaw("stale", st.JoinTime.Seconds())
		r.AddRaw("slowdown", slow)
		r.AddRow(fmt.Sprintf("%d", x),
			fr.JoinTime.String(), fr.Plan.Method.String(),
			st.JoinTime.String(), st.Plan.Method.String(),
			fmt.Sprintf("%.1fx", slow))
	}
	r.AddRaw("staleEstimate", staleEst)
	r.AddRaw("freshEstimate", freshEst)
	r.AddRaw("actualOuter", float64(points[0].stale.ActualOuter))
	r.Notes = append(r.Notes,
		fmt.Sprintf("outdated catalog estimates %d spike rows as %.1f; fresh sees %.0f (actual %d)",
			cfg.SpikeRows, staleEst, freshEst, points[0].stale.ActualOuter),
		fmt.Sprintf("1/20-scale replica of the paper's SF10 setup (%d lineitem rows, spike %d)",
			cfg.LineitemRows, cfg.SpikeRows),
		"expected shape: outdated-stats times grow steeply with x; accurate-stats times stay near-flat")
	return r
}

// Fig21Config scales the PostgreSQL plan-oscillation experiment.
type Fig21Config struct {
	LineitemRows int
	SpikeRows    int
	// JoinCustomers are the x values: the paper's 2000×{5000,10000,15000}.
	JoinCustomers []int64
	// OscillationTrials and OscillationPct drive the sampling-detection
	// side experiment.
	OscillationTrials int
	OscillationPct    float64
}

// DefaultFig21Config returns a 1/10-scale SF1 replica.
func DefaultFig21Config() Fig21Config {
	return Fig21Config{
		LineitemRows:  600_000,
		SpikeRows:     2_000,
		JoinCustomers: []int64{5000, 10000, 15000},
		// 0.035% puts the expected number of sampled spike rows near one —
		// the marginal-detection regime PostgreSQL's fixed 30k-row sample
		// created for the paper's 2000-row spikes, where ANALYZE detects
		// each spike "only with roughly 50% probability".
		OscillationTrials: 40,
		OscillationPct:    0.035,
	}
}

// Fig21 reproduces Figure 21: in PostgreSQL, wrongly chosen plans (NLJ when
// the spike went undetected by sampling vs SMJ with accurate histograms)
// lead to significant performance differences that grow with the join size.
// It also quantifies the §6.2 oscillation: how often under-sampling misses
// the spike and flips the plan.
func Fig21(cfg Fig21Config) *Report {
	r := &Report{
		ID:      "fig21",
		Title:   "PostgreSQL plan oscillation: join time with accurate vs inaccurate statistics",
		Columns: []string{"join size (items x customers)", "accurate stats (SMJ)", "inaccurate stats (NLJ)", "slowdown"},
	}
	db := dbms.NewDatabase(dbms.Postgres())
	db.AddTable(tpch.Lineitem(cfg.LineitemRows, 1, 71))
	db.AddTable(tpch.Customer(20000, 72))
	db.MutateColumn("lineitem", func(rel *table.Relation) {
		tpch.InflateValue(rel, "l_extendedprice", spikePriceCents, cfg.SpikeRows, 73)
	})
	// Make the equality join productive: plant the somelines val into some
	// customer balances. val = l_tax * l_extendedprice; use tax=0 rows so
	// val=0 and give some customers balance 0.
	mustGather(db, "customer", "c_custkey")

	smj := dbms.SortMerge
	nlj := dbms.NestedLoops
	for _, x := range cfg.JoinCustomers {
		good := dbms.RunQ1(db, dbms.Q1Params{
			Price: spikePriceCents, KeyLimit: x, Equality: true, ForceMethod: &smj,
		})
		bad := dbms.RunQ1(db, dbms.Q1Params{
			Price: spikePriceCents, KeyLimit: x, Equality: true, ForceMethod: &nlj,
		})
		r.AddRaw("smj", good.JoinTime.Seconds())
		r.AddRaw("nlj", bad.JoinTime.Seconds())
		r.AddRow(fmt.Sprintf("%dx%d", cfg.SpikeRows, x),
			good.JoinTime.String(), bad.JoinTime.String(),
			fmt.Sprintf("%.1fx", float64(bad.JoinTime)/float64(good.JoinTime)))
	}

	// Oscillation: repeat ANALYZE with different sampling seeds and count
	// how often the planner would pick NLJ (spike missed or diluted).
	nljPicks := 0
	for trial := 0; trial < cfg.OscillationTrials; trial++ {
		res, err := db.Analyzer.Analyze(db.Table("lineitem"), dbms.AnalyzeOptions{
			Column:    "l_extendedprice",
			SamplePct: cfg.OscillationPct,
			Seed:      uint64(100 + trial),
		})
		if err != nil {
			panic(err)
		}
		est := res.Histogram.EstimateEquals(spikePriceCents)
		plan := dbms.ChooseJoin(db.Costs, est, 15000, true)
		if plan.Method == dbms.NestedLoops {
			nljPicks++
		}
	}
	r.AddRaw("nljPicks", float64(nljPicks))
	r.AddRaw("trials", float64(cfg.OscillationTrials))
	r.Notes = append(r.Notes,
		fmt.Sprintf("oscillation: with %.2f%%-row samples the planner picked NLJ in %d/%d ANALYZE runs (spike detection is probabilistic)",
			cfg.OscillationPct, nljPicks, cfg.OscillationTrials),
		fmt.Sprintf("1/10-scale SF1 replica (%d rows, %d-row spikes); PostgreSQL's fixed 30k-row sample corresponds to the sub-percent rate used here",
			cfg.LineitemRows, cfg.SpikeRows),
		"expected shape: NLJ times grow with the customer count; SMJ stays near-flat")
	return r
}

func mustGather(db *dbms.Database, tbl, col string) {
	if _, err := db.GatherStats(tbl, col, 100, 7); err != nil {
		panic(err)
	}
}
