package bench

import (
	"fmt"

	"streamhist/internal/core"
	"streamhist/internal/datagen"
	"streamhist/internal/dbms"
	"streamhist/internal/tpch"
)

// Paper-scale constants.
const (
	sf10Rows      = 60e6   // TPC-H SF10 lineitem
	eightColBytes = 64.0   // our 8-numeric-column lineitem row
	oneColBytes   = 8.0    // 1-column variant
	priceDistinct = 900e3  // l_extendedprice cardinality at SF10
	orderDistinct = 15e6   // l_orderkey cardinality at SF10
	quantDistinct = 50.0   // l_quantity cardinality
	sampleRows    = 300000 // scaled sample used to measure circuit rates
)

// fig16RowCounts are the x axis of Figs 16–18 (TPC-H SF 5..75).
var fig16RowCounts = []float64{30e6, 60e6, 150e6, 300e6, 450e6}

// lineitemSample generates a scaled lineitem column for circuit-rate
// measurement.
func lineitemSample(column string, seed uint64) []int64 {
	return tpch.Lineitem(sampleRows, 10, seed).ColumnByName(column)
}

// Fig2 reproduces Figure 2: even with sampling, statistics gathering costs
// more than a full table scan, on disk and in memory (lineitem SF10).
func Fig2() *Report {
	r := &Report{
		ID:      "fig2",
		Title:   "Analysis vs full table scan, lineitem SF10 (60M rows)",
		Columns: []string{"Database task", "Lineitem on disk", "Lineitem in memory"},
	}
	p := dbms.DBx()
	st := dbms.DefaultStorage()
	in := dbms.AnalyzeCostInput{
		Rows:      sf10Rows,
		RowWidth:  eightColBytes,
		NDistinct: priceDistinct,
		Decimal:   true,
	}
	for _, pct := range []float64{100, 50, 20, 10, 5} {
		in.SamplePct = pct
		in.Medium = dbms.OnDisk
		disk := dbms.EstimateAnalyzeSeconds(p, st, in)
		in.Medium = dbms.InMemory
		mem := dbms.EstimateAnalyzeSeconds(p, st, in)
		r.AddRow(fmt.Sprintf("Histogram %.0f%%", pct), seconds(disk), seconds(mem))
		r.AddRaw("disk", disk)
		r.AddRaw("memory", mem)
	}
	scanDisk := dbms.EstimateTableScanSeconds(p, st, sf10Rows, eightColBytes, dbms.OnDisk)
	scanMem := dbms.EstimateTableScanSeconds(p, st, sf10Rows, eightColBytes, dbms.InMemory)
	r.AddRow("Table scan", seconds(scanDisk), seconds(scanMem))
	r.AddRaw("scan", scanDisk)
	r.AddRaw("scan", scanMem)
	r.Notes = append(r.Notes,
		"expected shape: every sampling level costs more than the plain scan; disk > memory",
		"modelled seconds (DBx personality) at the paper's full 60M rows")
	return r
}

// Fig16 reproduces Figure 16: histogram creation time vs table size for the
// accelerator and the two commercial engines at 100% and 5% sampling
// (8-column lineitem, equi-depth).
func Fig16() *Report {
	r := &Report{
		ID:      "fig16",
		Title:   "Histogram creation time vs millions of rows (8-column lineitem)",
		Columns: []string{"rows", "FPGA", "DBx 100%", "DBx 5%", "DBy 100%", "DBy 5%"},
	}
	st := dbms.DefaultStorage()
	dbx, dby := dbms.DBx(), dbms.DBy()
	sample := lineitemSample("l_quantity", 1)
	for _, rows := range fig16RowCounts {
		fpga := fpgaSecondsAtScale(sample, rows, nil)
		r.AddRaw("fpga", fpga)
		in := dbms.AnalyzeCostInput{
			Rows: rows, RowWidth: eightColBytes,
			NDistinct: quantDistinct, Medium: dbms.InMemory,
		}
		cells := []string{millions(rows), seconds(fpga)}
		for _, p := range []dbms.Personality{dbx, dby} {
			for _, pct := range []float64{100, 5} {
				in.SamplePct = pct
				sec := dbms.EstimateAnalyzeSeconds(p, st, in)
				r.AddRaw(fmt.Sprintf("%s%.0f", p.Name, pct), sec)
				cells = append(cells, seconds(sec))
			}
		}
		r.AddRow(cells...)
	}
	r.Notes = append(r.Notes,
		"expected shape: FPGA far below both engines at every size; DBy's 5% line stays close to its 100% line (full prescan)",
		"FPGA seconds extrapolate the measured circuit rate (l_quantity distribution) to paper-scale row counts")
	return r
}

// Fig17 reproduces Figure 17: the 1-column vs 8-column comparison without
// sampling. The FPGA processes only the selected column, so its line is
// identical for both widths.
func Fig17() *Report {
	r := &Report{
		ID:      "fig17",
		Title:   "Histogram creation time: 1-column vs 8-column tables, no sampling",
		Columns: []string{"rows", "FPGA (1&8 cols)", "DBx 8 columns", "DBx 1 column", "DBy 8 columns", "DBy 1 column"},
	}
	st := dbms.DefaultStorage()
	dbx, dby := dbms.DBx(), dbms.DBy()
	sample := lineitemSample("l_quantity", 2)
	for _, rows := range fig16RowCounts {
		fpga := fpgaSecondsAtScale(sample, rows, nil)
		r.AddRaw("fpga", fpga)
		cells := []string{millions(rows), seconds(fpga)}
		for _, p := range []dbms.Personality{dbx, dby} {
			for _, width := range []float64{eightColBytes, oneColBytes} {
				in := dbms.AnalyzeCostInput{
					Rows: rows, RowWidth: width, SamplePct: 100,
					NDistinct: quantDistinct, Medium: dbms.InMemory,
				}
				sec := dbms.EstimateAnalyzeSeconds(p, st, in)
				r.AddRaw(fmt.Sprintf("%s-w%.0f", p.Name, width), sec)
				cells = append(cells, seconds(sec))
			}
		}
		r.AddRow(cells...)
	}
	r.Notes = append(r.Notes,
		"expected shape: even the 1-column best case stays well above the FPGA (paper: ~an order of magnitude)")
	return r
}

// Fig18 reproduces Figure 18: DBx analyzing indexed columns (Index1 on the
// 1-column table, Index8 on the 8-column table) at 100% and 5% sampling.
func Fig18() *Report {
	r := &Report{
		ID:      "fig18",
		Title:   "Histograms on indexed tables in DBx",
		Columns: []string{"rows", "FPGA", "Index1 100%", "Index1 5%", "Index8 100%", "Index8 5%"},
	}
	st := dbms.DefaultStorage()
	dbx := dbms.DBx()
	sample := lineitemSample("l_quantity", 3)
	for _, rows := range fig16RowCounts {
		fpga := fpgaSecondsAtScale(sample, rows, nil)
		r.AddRaw("fpga", fpga)
		cells := []string{millions(rows), seconds(fpga)}
		for _, width := range []float64{oneColBytes, eightColBytes} {
			for _, pct := range []float64{100, 5} {
				in := dbms.AnalyzeCostInput{
					Rows: rows, RowWidth: width, SamplePct: pct,
					NDistinct: quantDistinct, Medium: dbms.InMemory,
					UseIndex: true,
				}
				sec := dbms.EstimateAnalyzeSeconds(dbx, st, in)
				r.AddRaw(fmt.Sprintf("index-w%.0f-%.0f", width, pct), sec)
				cells = append(cells, seconds(sec))
			}
		}
		r.AddRow(cells...)
	}
	r.Notes = append(r.Notes,
		"expected shape: Index1 ≈ Index8 (the index hides row width); 5% sampling catches up with the FPGA",
		"index creation and maintenance costs are deliberately absent, as in the paper")
	return r
}

// Fig19 reproduces Figure 19: the effect of column cardinality and type on
// DBx's analyze time (lineitem SF10), against the cardinality-insensitive
// accelerator.
func Fig19() *Report {
	r := &Report{
		ID:      "fig19",
		Title:   "Effect of cardinality on histogram creation (lineitem SF10, 60M rows)",
		Columns: []string{"column", "FPGA", "DBx 100%", "DBx 20%", "DBx 10%", "DBx 5%"},
	}
	st := dbms.DefaultStorage()
	dbx := dbms.DBx()
	cols := []struct {
		name      string
		ndistinct float64
		decimal   bool
	}{
		{"l_quantity", quantDistinct, false},
		{"l_orderkey", orderDistinct, false},
		{"l_extendedprice", priceDistinct, true},
	}
	for _, c := range cols {
		sample := lineitemSample(c.name, 4)
		fpga := fpgaSecondsAtScale(sample, sf10Rows, nil)
		r.AddRaw("fpga", fpga)
		cells := []string{c.name, seconds(fpga)}
		for _, pct := range []float64{100, 20, 10, 5} {
			in := dbms.AnalyzeCostInput{
				Rows: sf10Rows, RowWidth: eightColBytes, SamplePct: pct,
				NDistinct: c.ndistinct, Decimal: c.decimal, Medium: dbms.InMemory,
			}
			sec := dbms.EstimateAnalyzeSeconds(dbx, st, in)
			r.AddRaw(fmt.Sprintf("dbx%.0f", pct), sec)
			cells = append(cells, seconds(sec))
		}
		r.AddRow(cells...)
	}
	r.Notes = append(r.Notes,
		"expected shape: low-cardinality l_quantity cheapest for DBx; fixed-point l_extendedprice dearest; FPGA flat across columns")
	return r
}

// Fig20 reproduces Figure 20: skew has little effect on analysis time
// (synthetic 8-column table, cardinality 2048, Zipf sweep).
func Fig20() *Report {
	r := &Report{
		ID:      "fig20",
		Title:   "Effect of Zipf skew on analysis time (cardinality 2048, 8 columns, 60M rows)",
		Columns: []string{"skew", "FPGA", "DBx 100%", "DBx 20%", "DBx 5%"},
	}
	st := dbms.DefaultStorage()
	dbx := dbms.DBx()
	names := []string{"Uniform", "Zipf 0.35", "Zipf 0.75", "Zipf 1"}
	for i, s := range []float64{0, 0.35, 0.75, 1.0} {
		var sample []int64
		if s == 0 {
			sample = datagen.Take(datagen.NewUniform(uint64(40+i), 0, 2048), sampleRows)
		} else {
			sample = datagen.Take(datagen.NewZipf(uint64(40+i), 0, 2048, s, true), sampleRows)
		}
		fpga := fpgaSecondsAtScale(sample, sf10Rows, func(c core.Config) core.Config {
			c.Min, c.Max = 0, 2047
			return c
		})
		r.AddRaw("fpga", fpga)
		cells := []string{names[i], seconds(fpga)}
		for _, pct := range []float64{100, 20, 5} {
			in := dbms.AnalyzeCostInput{
				Rows: sf10Rows, RowWidth: eightColBytes, SamplePct: pct,
				NDistinct: 2048, Medium: dbms.InMemory,
			}
			sec := dbms.EstimateAnalyzeSeconds(dbx, st, in)
			r.AddRaw(fmt.Sprintf("dbx%.0f", pct), sec)
			cells = append(cells, seconds(sec))
		}
		r.AddRow(cells...)
	}
	r.Notes = append(r.Notes,
		"expected shape: DBx flat across skew (cardinality, not skew, drives its cost)",
		"the FPGA gets slightly faster with skew (cache hits), the effect §6.1 describes")
	return r
}
