package bench

import (
	"fmt"

	"streamhist/internal/bins"
	"streamhist/internal/core"
	"streamhist/internal/datagen"
	"streamhist/internal/hist"
	"streamhist/internal/hw"
)

// Ablations for the design decisions DESIGN.md calls out: the on-chip
// cache (§5.1.3), Binner replication (§7), memory-region double buffering
// (§4), and the preprocessor's divisor (§5.1.1 granularity/memory
// trade-off). These have no direct counterpart figure in the paper; they
// quantify the contribution of each mechanism on the same platform model.

// AblationCache sweeps the write-through cache size across three input
// patterns, showing (a) that the cache makes throughput skew-independent
// and (b) what disabling it costs.
func AblationCache() *Report {
	r := &Report{
		ID:      "ablation-cache",
		Title:   "Ablation: on-chip cache size vs Binner throughput (M values/s) and RAW stalls",
		Columns: []string{"cache", "anti-cache stream", "Zipf 1.0", "constant value", "stalls (constant)"},
	}
	const n = 150_000
	anti := make([]int64, n)
	for i := range anti {
		anti[i] = int64(i%4096) * int64(hw.DefaultBinsPerLine)
	}
	zipf := datagen.Take(datagen.NewZipf(201, 0, 1<<15, 1.0, false), n)
	constant := make([]int64, n)

	run := func(vals []int64, cacheBytes int) (rate float64, stalls int64) {
		cfg := core.DefaultBinnerConfig()
		cfg.CacheBytes = cacheBytes
		pre, err := core.RangeFor(0, 4096*8, 1)
		if err != nil {
			panic(err)
		}
		b := core.NewBinner(cfg, pre)
		b.PushAll(vals)
		_, stats := b.Finish()
		return stats.ValuesPerSecond(clk), stats.StallCycles
	}
	for _, cache := range []int{0, 128, 256, 512, 1024, 4096} {
		ra, _ := run(anti, cache)
		rz, _ := run(zipf, cache)
		rc, stalls := run(constant, cache)
		r.AddRaw("anti", ra)
		r.AddRaw("zipf", rz)
		r.AddRaw("const", rc)
		r.AddRaw("stalls", float64(stalls))
		label := fmt.Sprintf("%dB", cache)
		if cache == 0 {
			label = "disabled"
		}
		r.AddRow(label,
			fmt.Sprintf("%.1fM/s", ra/1e6),
			fmt.Sprintf("%.1fM/s", rz/1e6),
			fmt.Sprintf("%.1fM/s", rc/1e6),
			fmt.Sprintf("%d", stalls))
	}
	r.Notes = append(r.Notes,
		"without the cache the constant-value stream stalls on every read-after-write (§5.1.3); from 1KB up the latency window is covered and stalls vanish",
		"the anti-cache stream never benefits — the cache costs nothing when it cannot help")
	return r
}

// AblationMemory sweeps the memory op rate — the §7 suggestion to "move
// the prototype to an FPGA board with faster memory": the worst-case
// Binner rate follows the memory until the 2-cycle pipeline issue rate
// (75 M/s) becomes "the next bottleneck".
func AblationMemory() *Report {
	r := &Report{
		ID:      "ablation-memory",
		Title:   "Ablation: memory op rate (§7 'faster memory') vs worst-case Binner rate",
		Columns: []string{"memory (random ops/s)", "Binner rate", "bottleneck"},
	}
	const n = 150_000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i%4096) * int64(hw.DefaultBinsPerLine)
	}
	for _, ops := range []int64{40e6, 80e6, 160e6, 320e6, 1 << 40} {
		cfg := core.DefaultBinnerConfig()
		cfg.Mem.RandomOpsPerSec = ops
		if burst := ops + ops/4; burst > cfg.Mem.BurstOpsPerSec {
			cfg.Mem.BurstOpsPerSec = burst
		}
		pre, err := core.RangeFor(0, 4096*8, 1)
		if err != nil {
			panic(err)
		}
		b := core.NewBinner(cfg, pre)
		b.PushAll(vals)
		_, stats := b.Finish()
		rate := stats.ValuesPerSecond(clk)
		r.AddRaw("rate", rate)
		bottleneck := "memory"
		if rate > 70e6 {
			bottleneck = "pipeline (Parser/Binner issue rate)"
		}
		label := fmt.Sprintf("%.0fM/s", float64(ops)/1e6)
		if ops == 1<<40 {
			label = "unbounded"
		}
		r.AddRow(label, fmt.Sprintf("%.1fM/s", rate/1e6), bottleneck)
	}
	r.Notes = append(r.Notes,
		"the rate tracks the memory until it saturates at the 75M/s pipeline issue rate — §7's 'then the Parser and Binner modules would become the next bottleneck'")
	return r
}

// AblationScaleUp sweeps the §7 Binner replication and reports the
// aggregate rate and the single-column line rate it can absorb.
func AblationScaleUp() *Report {
	r := &Report{
		ID:      "ablation-scaleup",
		Title:   "Ablation: Binner replication (§7) vs sustained line rate",
		Columns: []string{"replicas", "aggregate rate", "line rate", "keeps up with 10Gbps?"},
	}
	const n = 800_000 // long enough that the constant aggregation tail is negligible
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i%4096) * int64(hw.DefaultBinsPerLine)
	}
	for _, reps := range []int{1, 2, 4, 8, 16} {
		pb, err := core.NewParallelBinner(reps, core.DefaultBinnerConfig(), 0, 4096*8, 1)
		if err != nil {
			panic(err)
		}
		pb.PushAll(vals)
		_, stats, err := pb.Finish()
		if err != nil {
			panic(err)
		}
		rate := stats.ValuesPerSecond(clk)
		gbps := core.LineRateGbps(rate)
		r.AddRaw("rate", rate)
		r.AddRaw("gbps", gbps)
		keeps := "no"
		if gbps >= 10 {
			keeps = "yes"
		}
		r.AddRow(fmt.Sprintf("%d", reps),
			fmt.Sprintf("%.0fM/s", rate/1e6),
			fmt.Sprintf("%.1fGbps", gbps),
			keeps)
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("worst-case binning at 20M/s per replica: %d replicas reach a 10Gbps single-column stream",
			core.ReplicasForLineRate(10, 20e6)),
		"partial-count aggregation is constant in the replica count (Δ/8 cycles), so the Histogram module is unchanged (§7)")
	return r
}

// AblationRegions quantifies the §4 producer–consumer decoupling: the time
// to process a batch of table scans with 1, 2 and 3 bin-memory regions.
func AblationRegions() *Report {
	r := &Report{
		ID:      "ablation-regions",
		Title:   "Ablation: memory regions (§4 double buffering) over an 8-table batch",
		Columns: []string{"regions", "total time", "vs sequential", "overlap"},
	}
	scans := make([]core.TableScan, 8)
	for i := range scans {
		scans[i] = core.TableScan{
			Name:   fmt.Sprintf("t%d", i),
			Values: datagen.Take(datagen.NewUniform(uint64(211+i), 0, 1<<21), 60_000),
			Min:    0, Max: 1<<21 - 1, Divisor: 1,
		}
	}
	spec := core.DefaultConfig(core.ColumnSpec{}, 0, 1<<21-1)
	for _, regions := range []int{1, 2, 3} {
		pc, err := core.NewPipelinedCircuit(spec, regions)
		if err != nil {
			panic(err)
		}
		res, err := pc.Process(scans)
		if err != nil {
			panic(err)
		}
		r.AddRaw("total", res.Seconds(clk))
		r.AddRaw("overlap", res.Overlap())
		r.AddRow(fmt.Sprintf("%d", regions),
			seconds(res.Seconds(clk)),
			fmt.Sprintf("%.0f%%", 100*float64(res.TotalCycles)/float64(res.SequentialCycles)),
			fmt.Sprintf("%.0f%%", 100*res.Overlap()))
	}
	r.Notes = append(r.Notes,
		"with one region the Histogram module blocks the Binner (no overlap); two regions overlap table N's histograms with table N+1's binning",
		"a third region only helps when histogram creation is slower than binning, which it is not for these Δ")
	return r
}

// AblationDivisor sweeps the preprocessor divisor: coarser bins shrink Δ
// (memory and histogram-phase time) at an accuracy cost — the §5.1.1
// granularity trade-off.
func AblationDivisor() *Report {
	r := &Report{
		ID:      "ablation-divisor",
		Title:   "Ablation: preprocessor divisor — memory/time vs accuracy",
		Columns: []string{"divisor", "bins (Δ)", "histogram phase", "mean range error"},
	}
	const card = 1 << 20
	vals := datagen.Take(datagen.NewZipf(221, 0, card, 0.8, true), 400_000)
	truth := bins.Build(vals, 1)
	for _, div := range []int64{1, 4, 16, 64, 256} {
		cfg := core.DefaultConfig(core.ColumnSpec{}, 0, card-1)
		cfg.Divisor = div
		circuit, err := core.NewCircuit(cfg)
		if err != nil {
			panic(err)
		}
		res := circuit.ProcessValues(vals)
		errRange := hist.RangeError(res.EquiDepth, truth, 300, 222)
		r.AddRaw("delta", float64(res.Bins.NumBins()))
		r.AddRaw("hist", res.HistogramSeconds)
		r.AddRaw("err", errRange)
		r.AddRow(fmt.Sprintf("%d", div),
			fmt.Sprintf("%d", res.Bins.NumBins()),
			seconds(res.HistogramSeconds),
			fmt.Sprintf("%.6f", errRange))
	}
	r.Notes = append(r.Notes,
		"the divisor maps several consecutive values to one bin (§5.1.1's timestamp-to-day example): Δ and scan time shrink linearly, range-estimate error grows as bucket boundaries coarsen")
	return r
}
